package repro

// Top-level integration tests: the full pipeline from benchmark port to
// regenerated experiment, crossing every subsystem.

import (
	"strings"
	"testing"

	"repro/internal/bench"
	"repro/internal/inncabs"
	"repro/internal/machine"
	"repro/internal/sim"
)

// simRun is shared with bench_test.go.
func simRun(m machine.Machine, g *sim.Graph) (sim.Result, error) {
	return sim.Run(sim.Config{Machine: m, Cores: 20, Mode: sim.HPX}, g)
}

// TestPaperHeadlineShapes asserts the paper's three headline results on
// the Test-size graphs: (1) for fine grains the lightweight runtime
// beats thread-per-task decisively, (2) for coarse grains they tie,
// (3) the counter framework's derived overhead explains the difference.
func TestPaperHeadlineShapes(t *testing.T) {
	m := machine.IvyBridge()
	run := func(name string, mode sim.Mode) sim.Result {
		b, err := inncabs.ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		r, err := sim.Run(sim.Config{Machine: m, Cores: 10, Mode: mode}, b.TaskGraph(inncabs.Small))
		if err != nil {
			t.Fatal(err)
		}
		return r
	}
	// (1) fib (1.37 µs grain): std at least 3x slower or dead.
	fibH, fibS := run("fib", sim.HPX), run("fib", sim.Std)
	if !fibS.Failed && float64(fibS.MakespanNs) < 3*float64(fibH.MakespanNs) {
		t.Errorf("fib: std/hpx = %.2f, want >= 3",
			float64(fibS.MakespanNs)/float64(fibH.MakespanNs))
	}
	// (2) alignment (2.7 ms grain): within 15%.
	alH, alS := run("alignment", sim.HPX), run("alignment", sim.Std)
	if ratio := float64(alS.MakespanNs) / float64(alH.MakespanNs); ratio > 1.15 || ratio < 0.85 {
		t.Errorf("alignment: std/hpx = %.2f, want ~1", ratio)
	}
	// (3) overhead share: fib pays a large overhead fraction, alignment
	// a negligible one — the counters the paper uses to explain (1)+(2).
	if fibShare := float64(fibH.OverheadNs) / float64(fibH.TaskTimeNs); fibShare < 0.10 {
		t.Errorf("fib overhead share = %.3f, want substantial", fibShare)
	}
	if alShare := float64(alH.OverheadNs) / float64(alH.TaskTimeNs); alShare > 0.01 {
		t.Errorf("alignment overhead share = %.4f, want negligible", alShare)
	}
}

// TestRunAllExperiments drives the complete cmd/repro path at Test size.
func TestRunAllExperiments(t *testing.T) {
	var sb strings.Builder
	if err := bench.RunAll(&sb, inncabs.Test, machine.IvyBridge()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, id := range bench.IDs() {
		want := map[byte]string{'t': "Table", 'f': "Figure"}[id[0]]
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %s section", id)
		}
	}
	if len(out) < 5000 {
		t.Fatalf("full run produced only %d bytes", len(out))
	}
}

// TestSocketBoundaryVisibleInOverheadFigure checks the defining feature
// of figures 11/12: for a very fine benchmark, per-task overhead grows
// across the socket boundary.
func TestSocketBoundaryVisibleInOverheadFigure(t *testing.T) {
	b, err := inncabs.ByName("uts")
	if err != nil {
		t.Fatal(err)
	}
	m := machine.IvyBridge()
	s, err := bench.StrongScaling(b, inncabs.Small, m, []int{10, 20})
	if err != nil {
		t.Fatal(err)
	}
	within := s.Result(sim.HPX, 10)
	beyond := s.Result(sim.HPX, 20)
	if beyond.AvgOverheadNs() < 1.3*within.AvgOverheadNs() {
		t.Errorf("overhead did not jump across the socket boundary: %v -> %v",
			within.AvgOverheadNs(), beyond.AvgOverheadNs())
	}
	if beyond.AvgTaskNs() < within.AvgTaskNs() {
		t.Errorf("task duration did not grow across the socket boundary: %v -> %v",
			within.AvgTaskNs(), beyond.AvgTaskNs())
	}
}

// TestAblationsAreLoadBearing verifies that removing each modelled cost
// term actually erases its published effect — the model is not
// over-parameterised decoration.
func TestAblationsAreLoadBearing(t *testing.T) {
	rows, err := bench.RunAblations(inncabs.Small, machine.IvyBridge())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("ablation rows = %d", len(rows))
	}
	byName := map[string]bench.Ablation{}
	for _, a := range rows {
		byName[a.Name] = a
	}
	uts := byName["remote contention (socket boundary)"]
	if uts.Full <= 1 || uts.Removed >= 1 {
		t.Errorf("remote contention: full %v removed %v; the post-socket slowdown must vanish", uts.Full, uts.Removed)
	}
	bw := byName["bandwidth saturation + NUMA penalty"]
	if bw.Full >= 1.6 || bw.Removed <= 1.8 {
		t.Errorf("bandwidth model: full %v removed %v; flattening must vanish", bw.Full, bw.Removed)
	}
	create := byName["pthread creation cost"]
	if create.Full < 2 || create.Removed > 1.5 {
		t.Errorf("creation cost: full %v removed %v; the fine-grain gap must collapse", create.Full, create.Removed)
	}
}
