#!/usr/bin/env bash
# Aggregation-overlay smoke test. Run under a timeout in CI:
#
#   timeout 120 bash scripts/tree_smoke.sh
#
# Two stages:
#   1. scripts/treesmoke — a 3-level simulated tree with real parcel
#      servers under the deepest leaves; an interior node is killed
#      mid-run and the program asserts the self-healing contract:
#      children re-attach to the grandparent by rank arithmetic, the
#      root keeps serving a digest that is partial but labelled partial
#      (dead subtree excluded exactly once), and the root's per-tick
#      parcel load stays within k·depth.
#   2. perfmon -tree — the fleet-watching mode end to end: the folded
#      view must come out of /metrics with the wildcard locality label,
#      /series as JSON, and /tree as a parseable topology dump.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
WORK=$(mktemp -d)
cleanup() {
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT
go build -o "$BIN" ./scripts/treesmoke ./cmd/perfmon

# --- 1. kill-and-repair contract --------------------------------------------
"$BIN/treesmoke"

# --- 2. the folded view over HTTP -------------------------------------------
HTTP=127.0.0.1:${SMOKE_TREE_PORT:-7321}
LOG="$WORK/perfmon.log"
"$BIN/perfmon" -tree -fleet 64 -fanout 4 -tree-wire 2 \
    -n 40 -interval 250ms -http "$HTTP" >"$LOG" 2>&1 &
RUN=$!

METRICS="$WORK/metrics.txt"
TOPO="$WORK/tree.json"
SERIES="$WORK/series.json"
OK=0
for _ in $(seq 1 40); do
    if curl -sf "http://$HTTP/metrics" -o "$METRICS" 2>/dev/null \
        && grep -q 'locality="\*"' "$METRICS" \
        && curl -sf "http://$HTTP/tree" -o "$TOPO" 2>/dev/null \
        && curl -sf "http://$HTTP/series" -o "$SERIES" 2>/dev/null
    then OK=1; break; fi
    sleep 0.25
done
if [ "$OK" -ne 1 ]; then
    echo "tree_smoke: FAIL — folded telemetry never came up on $HTTP"
    cat "$LOG"; kill "$RUN" 2>/dev/null || true; exit 1
fi

python3 - "$METRICS" "$TOPO" "$SERIES" <<'EOF'
import json, sys

metrics, topo_path, series_path = sys.argv[1:4]

# /metrics: the fleet-folded digests carry the wildcard locality label
# (a fold over every locality must not masquerade as locality 0) and the
# @avg/@sum statistics of the standard thread counters.
text = open(metrics).read()
assert 'locality="*"' in text, "no wildcard-locality label in /metrics"
assert "taskrt_threads_idle_rate" in text, "no folded idle-rate metric"
assert "taskrt_agas_tree_subtree_age_ns" in text, "no per-subtree freshness series"

topo = json.load(open(topo_path))
assert topo["localities"] == 64, topo["localities"]
assert topo["fanout"] == 4, topo["fanout"]
assert topo["dead"] == 0, topo["dead"]
root = topo["nodes"][0]
assert root["kind"] == "root" and root["rank"] == 0
assert 1 <= len(root["children"]) <= 4, f"root has {len(root['children'])} children"
total = sum(c["localities"] for c in root["children"]) + 1
assert total == 64, f"root children fold {total} localities, want 64"
assert not any(c["stale"] for c in root["children"]), "healthy overlay reports stale subtrees"

series = json.load(open(series_path))["series"]
names = {s["name"] for s in series}
assert any("@avg" in n for n in names), f"no @avg digest series: {sorted(names)[:5]}"
assert any("subtree-age-ns" in n for n in names), "no freshness series in /series"

print(f"tree_smoke: folded view OK ({len(series)} series, "
      f"root children {len(root['children'])}, {total} localities)")
EOF

RC=0
wait "$RUN" || RC=$?
if [ "$RC" -ne 0 ]; then
    echo "tree_smoke: FAIL — perfmon -tree exited $RC"; cat "$LOG"; exit "$RC"
fi
grep -q "fold gen" "$LOG" || {
    echo "tree_smoke: FAIL — no fold summary printed"; cat "$LOG"; exit 1; }

echo "tree_smoke: OK"
