#!/usr/bin/env bash
# Fault smoke test: a perfmon sampling loop must survive its target
# being killed and restarted mid-run. Run under a 60s timeout in CI:
#
#   timeout 60 bash scripts/perfmon_smoke.sh
#
# The script starts smokeserver, points a 40-sample perfmon loop at it,
# kills the server one second in, restarts it a second later on the
# same port, and requires the loop to finish with exit code 0.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN" ./cmd/perfmon ./scripts/smokeserver

ADDR=127.0.0.1:${SMOKE_PORT:-7117}
COUNTER='/threads{locality#0/total}/count/cumulative'

"$BIN/smokeserver" -addr "$ADDR" &
SRV=$!
sleep 0.5

"$BIN/perfmon" -addr "$ADDR" -counter "$COUNTER" \
  -n 40 -interval 100ms -timeout 500ms -retries 2 &
MON=$!

sleep 1
echo "perfmon_smoke: killing server mid-sampling"
kill "$SRV"
wait "$SRV" 2>/dev/null || true

sleep 1
echo "perfmon_smoke: restarting server"
"$BIN/smokeserver" -addr "$ADDR" &
SRV=$!

RC=0
wait "$MON" || RC=$?
kill "$SRV" 2>/dev/null || true
wait "$SRV" 2>/dev/null || true

if [ "$RC" -ne 0 ]; then
    echo "perfmon_smoke: FAIL — sampling loop died with exit code $RC"
    exit "$RC"
fi
echo "perfmon_smoke: OK — loop survived the restart"
