#!/usr/bin/env bash
# Flight-recorder smoke test: the anomaly-triggered capture path must
# work end to end on a real binary. Run under a 120s timeout in CI:
#
#   timeout 120 bash scripts/flight_smoke.sh
#
# One inncabs run with fault injection (-inject-stall) and the telemetry
# plane armed (-budget, -flight, -http), then three checks:
#   1. The watchdog saw the injected stall and the flight recorder
#      captured a burst: the dump carries the trigger reason on a frame,
#      and the frames around the trigger arrive at >= 5x the base
#      sampling cadence (the recorder escalates 10x; 5x is the smoke
#      floor under CI scheduling noise).
#   2. The dump file is valid JSON with the documented shape (frames,
#      burst count, per-frame counter values).
#   3. /flight on the live HTTP endpoint serves the same dump shape
#      while the run is still going.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
WORK=$(mktemp -d)
cleanup() {
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT
go build -o "$BIN" ./cmd/inncabs ./cmd/perfmon

HTTP=127.0.0.1:${SMOKE_FLIGHT_PORT:-7319}
DUMP="$WORK/flight.json"
LOG="$WORK/run.log"
BASE_MS=50

# A healthy benchmark plus one injected 1.2s stall: the watchdog's
# stalled_task event must flip the collector to burst rate. The stall
# outlives the benchmark, which keeps the HTTP endpoint up long enough
# to probe /flight mid-burst.
"$BIN/inncabs" -bench fib -size test -samples 1 \
    -budget 5 -flight -flight-dump "$DUMP" \
    -telemetry-interval ${BASE_MS}ms -stall-threshold 200ms -inject-stall 1200ms \
    -http "$HTTP" >"$LOG" 2>&1 &
RUN=$!

# --- 3. live /flight while the burst is (likely) open ------------------------
LIVE="$WORK/flight_live.json"
LIVE_OK=0
for _ in $(seq 1 40); do
    if curl -sf "http://$HTTP/flight" -o "$LIVE" 2>/dev/null \
        && python3 -c 'import json,sys; d=json.load(open(sys.argv[1])); sys.exit(0 if d.get("frames",0) > 0 else 1)' "$LIVE" 2>/dev/null
    then LIVE_OK=1; break; fi
    sleep 0.2
done

RC=0
wait "$RUN" || RC=$?
if [ "$RC" -ne 0 ]; then
    echo "flight_smoke: FAIL — inncabs exited $RC"; cat "$LOG"; exit "$RC"
fi
grep -q "verification: OK" "$LOG" || {
    echo "flight_smoke: FAIL — run did not verify"; cat "$LOG"; exit 1; }
grep -q "inncabs: health: stalled_task" "$LOG" || {
    echo "flight_smoke: FAIL — watchdog never reported the injected stall"; cat "$LOG"; exit 1; }
if [ "$LIVE_OK" -ne 1 ]; then
    echo "flight_smoke: FAIL — /flight endpoint never served a dump"; cat "$LOG"; exit 1
fi
echo "flight_smoke: live /flight OK"

# --- 1 + 2. dump shape and burst cadence around the trigger ------------------
python3 - "$DUMP" "$BASE_MS" <<'EOF'
import json, sys
from datetime import datetime

d = json.load(open(sys.argv[1]))
base_ms = float(sys.argv[2])
frames = d["ring"]
assert d["frames"] == len(frames) > 0, "empty flight ring"
assert d["triggers"] >= 1, "no trigger recorded"

trig = [f for f in frames if f.get("trigger")]
assert len(trig) >= 1, "no frame carries the trigger reason"
assert "stalled_task" in trig[0]["trigger"], f"unexpected trigger: {trig[0]['trigger']}"

burst = [f for f in frames if f.get("burst")]
assert d["burst_frames"] == len(burst), "burst count disagrees with frames"
assert len(burst) >= 5, f"only {len(burst)} burst frames captured"

def ts(f):
    return datetime.fromisoformat(f["t"].replace("Z", "+00:00")).timestamp()

# Burst cadence: mean spacing of the burst frames must beat the base
# interval by >= 5x (configured escalation is 10x).
times = sorted(ts(f) for f in burst)
spacing_ms = 1000 * (times[-1] - times[0]) / (len(times) - 1)
assert spacing_ms <= base_ms / 5, \
    f"burst cadence {spacing_ms:.1f}ms not >=5x faster than base {base_ms}ms"

# The burst brackets the trigger: the trigger frame sits inside the
# captured window, with context on both sides.
t_trig = ts(trig[0])
assert ts(frames[0]) <= t_trig <= ts(frames[-1]), "trigger outside captured window"

# Frames carry real counter values.
assert frames[-1]["values"], "frames carry no counter values"
names = {v["name"] for v in frames[-1]["values"]}
assert any("/threads{" in n for n in names), f"no thread counters in frames: {names}"

print(f"flight_smoke: dump OK ({d['frames']} frames, {len(burst)} burst, "
      f"cadence {spacing_ms:.1f}ms vs base {base_ms:.0f}ms, "
      f"trigger: {trig[0]['trigger']!r})")
EOF

echo "flight_smoke: OK"
