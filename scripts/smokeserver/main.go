// Command smokeserver is a minimal counter server for the CI fault
// smoke test (scripts/perfmon_smoke.sh): it exposes one ticking
// counter over the parcel transport on a fixed address, so a perfmon
// loop can be pointed at it while the script kills and restarts it
// mid-sampling.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/parcel"
)

func main() {
	var (
		addr = flag.String("addr", "127.0.0.1:7117", "parcel address to serve on")
		dur  = flag.Duration("for", time.Minute, "exit after this long (safety net)")
	)
	flag.Parse()

	reg := core.NewRegistry()
	c := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative", HelpText: "smoke ticks"})
	reg.MustRegister(c)
	go func() {
		for range time.Tick(10 * time.Millisecond) {
			c.Inc()
		}
	}()

	srv, err := parcel.Serve(*addr, reg, 0)
	if err != nil {
		fmt.Fprintln(os.Stderr, "smokeserver:", err)
		os.Exit(1)
	}
	fmt.Printf("smokeserver: serving on %s\n", srv.Addr())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	select {
	case <-sig:
	case <-time.After(*dur):
	}
	srv.Close()
}
