#!/usr/bin/env bash
# Chaos smoke: a 30-second seeded partition/heal soak of the remote
# spawn plane (scripts/chaossoak). Run under a timeout in CI:
#
#   timeout 120 bash scripts/chaos_smoke.sh
#
# Two in-process replicas serve an action through chaos injectors while
# their links are cut and healed continuously; a bounded pool of
# deadline-carrying remote spawns must all resolve (no hangs) with the
# /remote/count/* accounting exact. The fault schedule is seeded, so a
# failure reproduces with the same CHAOS_SEED.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
trap 'rm -rf "$BIN"' EXIT
go build -o "$BIN" ./scripts/chaossoak

"$BIN/chaossoak" \
  -duration "${CHAOS_DURATION:-30s}" \
  -seed "${CHAOS_SEED:-1}" \
  -deadline 2s \
  -inflight "${CHAOS_INFLIGHT:-256}"
