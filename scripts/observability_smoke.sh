#!/usr/bin/env bash
# Observability smoke test: the tracing and live-telemetry planes must
# work end to end on real binaries. Run under a 120s timeout in CI:
#
#   timeout 120 bash scripts/observability_smoke.sh
#
# Three checks:
#   1. inncabs -trace/-profile on a small run: the run verifies, the
#      Chrome trace parses as JSON with task and flow events, and the
#      printed DAG profile reports positive work and span with
#      span <= work.
#   2. perfmon -http against a live server: /metrics serves well-formed
#      Prometheus text (TYPE line + a sample with the expected value)
#      and /series serves JSON.
#   3. perfmon -csv: the capture file has the header row and one row
#      per successful sample.
set -euo pipefail
cd "$(dirname "$0")/.."

BIN=$(mktemp -d)
WORK=$(mktemp -d)
cleanup() {
    kill "${SRV:-}" "${MON:-}" 2>/dev/null || true
    rm -rf "$BIN" "$WORK"
}
trap cleanup EXIT
go build -o "$BIN" ./cmd/inncabs ./cmd/perfmon ./scripts/smokeserver

# --- 1. tracing + DAG profile ------------------------------------------------

TRACE="$WORK/trace.json"
PROFILE="$WORK/profile.txt"
"$BIN/inncabs" -bench fib -size small -samples 1 \
    -trace "$TRACE" -profile >"$PROFILE" 2>&1

grep -q "verification: OK" "$PROFILE" || {
    echo "observability_smoke: FAIL — traced run did not verify"; cat "$PROFILE"; exit 1; }
grep -q "DAG profile" "$PROFILE" || {
    echo "observability_smoke: FAIL — no DAG profile printed"; cat "$PROFILE"; exit 1; }

# The trace must be valid JSON containing task slices and flow arrows.
python3 - "$TRACE" <<'EOF'
import json, sys
events = json.load(open(sys.argv[1]))
phases = [e.get("ph") for e in events]
assert phases.count("X") > 0, "no task slices in trace"
assert phases.count("s") == phases.count("f") > 0, "unpaired flow events"
assert any(e.get("ph") == "M" and e.get("name") == "thread_name" for e in events), \
    "no thread_name metadata"
print(f"observability_smoke: trace OK ({phases.count('X')} tasks, "
      f"{phases.count('s')} flows)")
EOF

# Work and span must be positive and self-consistent (span <= work).
python3 - "$PROFILE" <<'EOF'
import re, sys
text = open(sys.argv[1]).read()
def dur(label):
    m = re.search(rf"^{label}\s+([\d.]+)(ns|µs|us|ms|s)$", text, re.M)
    assert m, f"no '{label}' line in profile:\n{text}"
    scale = {"ns": 1e-9, "µs": 1e-6, "us": 1e-6, "ms": 1e-3, "s": 1.0}
    return float(m.group(1)) * scale[m.group(2)]
work, span = dur("work"), dur(r"span \(critical path\)")
assert work > 0, "work is zero"
assert span > 0, "span is zero"
assert span <= work, f"span {span} > work {work}"
m = re.search(r"parallelism\s+([\d.]+) logical", text)
assert m and float(m.group(1)) >= 1.0, "logical parallelism < 1"
print(f"observability_smoke: profile OK (work {work:.4f}s, span {span:.4f}s)")
EOF

# --- 2 + 3. live telemetry export --------------------------------------------

ADDR=127.0.0.1:${SMOKE_PORT:-7119}
HTTP=127.0.0.1:${SMOKE_HTTP_PORT:-7219}
COUNTER='/threads{locality#0/total}/count/cumulative'
CSV="$WORK/samples.csv"

"$BIN/smokeserver" -addr "$ADDR" &
SRV=$!
sleep 0.5

"$BIN/perfmon" -addr "$ADDR" -counter "$COUNTER" \
    -n 30 -interval 100ms -timeout 500ms \
    -http "$HTTP" -csv "$CSV" >/dev/null &
MON=$!
sleep 1

METRICS=$(curl -sf "http://$HTTP/metrics")
echo "$METRICS" | grep -q "^# TYPE taskrt_threads_count_cumulative gauge$" || {
    echo "observability_smoke: FAIL — no TYPE line in /metrics:"; echo "$METRICS"; exit 1; }
echo "$METRICS" | grep -Eq '^taskrt_threads_count_cumulative\{locality="0",instance="total"\} [0-9.e+]+$' || {
    echo "observability_smoke: FAIL — no sample line in /metrics:"; echo "$METRICS"; exit 1; }
curl -sf "http://$HTTP/series" | python3 -c '
import json, sys
s = json.load(sys.stdin)["series"]
assert s and s[0]["points"], "empty series"
' || { echo "observability_smoke: FAIL — bad /series JSON"; exit 1; }
echo "observability_smoke: /metrics and /series OK"

RC=0
wait "$MON" || RC=$?
kill "$SRV" 2>/dev/null || true
wait "$SRV" 2>/dev/null || true
if [ "$RC" -ne 0 ]; then
    echo "observability_smoke: FAIL — perfmon exited $RC"
    exit "$RC"
fi

LINES=$(wc -l <"$CSV")
head -1 "$CSV" | grep -q '^counter,timestamp,value,count,status$' || {
    echo "observability_smoke: FAIL — bad CSV header"; cat "$CSV"; exit 1; }
# The loop tolerates the odd missed sample; gross breakage does not.
if [ "$LINES" -lt 21 ] || [ "$LINES" -gt 31 ]; then
    echo "observability_smoke: FAIL — CSV has $LINES lines, want header + ~30"
    exit 1
fi
echo "observability_smoke: CSV OK ($((LINES - 1)) samples)"
echo "observability_smoke: OK"
