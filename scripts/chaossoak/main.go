// Command chaossoak is the CI soak for the remote-spawn fault plane
// (scripts/chaos_smoke.sh): two in-process replica localities serve an
// action through seeded chaos injectors whose links are partitioned and
// healed continuously, while a bounded pool of deadline-carrying remote
// spawns flows through the AGAS router. The run fails if any future
// outlives its deadline plus slack (a hang), or if the terminal
// accounting invariant
//
//	spawned == completed + failed + cancelled
//
// does not hold exactly on the /runtime{...}/remote/count/* counters at
// quiesce. Exit code 0 means the fault plane held.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/agas"
	"repro/internal/core"
	"repro/internal/parcel"
	"repro/internal/parcel/chaos"
)

func main() {
	var (
		duration = flag.Duration("duration", 30*time.Second, "how long to keep spawning")
		seed     = flag.Int64("seed", 1, "chaos PRNG seed (same seed, same fault schedule)")
		deadline = flag.Duration("deadline", 2*time.Second, "per-spawn deadline budget")
		slack    = flag.Duration("slack", 10*time.Second, "extra wait past the deadline before a future counts as hung")
		inflight = flag.Int("inflight", 256, "concurrent in-flight spawns")
	)
	flag.Parse()
	if err := run(*duration, *seed, *deadline, *slack, *inflight); err != nil {
		fmt.Fprintln(os.Stderr, "chaossoak: FAIL:", err)
		os.Exit(1)
	}
}

// replica is one action-serving locality behind a chaos injector.
type replica struct {
	srv *parcel.Server
	inj *chaos.Injector
	cli *parcel.Client
}

func newReplica(id, seed int64) (*replica, error) {
	reg := core.NewRegistry()
	srv, err := parcel.Serve("127.0.0.1:0", reg, id)
	if err != nil {
		return nil, err
	}
	actions := parcel.NewActionMap()
	if err := parcel.RegisterActionCtx(actions, "work",
		func(ctx context.Context, n int) (int, error) {
			select {
			case <-time.After(time.Duration(n%10) * time.Millisecond):
				return n * 2, nil
			case <-ctx.Done():
				return 0, ctx.Err()
			}
		}); err != nil {
		srv.Close()
		return nil, err
	}
	srv.WithActions(actions)
	inj := chaos.New(chaos.Config{Seed: seed, DropProb: 0.01, CorruptProb: 0.005})
	// A short breaker cooldown matters here: the toggler heals links on
	// a sub-second cadence, and a replica must come back into rotation
	// soon after healing rather than sitting out a long open window.
	cli, err := parcel.DialContext(context.Background(), srv.Addr(), nil, id,
		parcel.ClientOptions{Timeout: 2 * time.Second, Dialer: inj.Dialer(),
			BreakerCooldown: 100 * time.Millisecond})
	if err != nil {
		srv.Close()
		return nil, err
	}
	return &replica{srv: srv, inj: inj, cli: cli}, nil
}

func run(duration time.Duration, seed int64, deadline, slack time.Duration, inflight int) error {
	reps := make([]*replica, 2)
	for i := range reps {
		rep, err := newReplica(int64(i), seed+int64(i))
		if err != nil {
			return err
		}
		defer rep.srv.Close()
		defer rep.cli.Close()
		reps[i] = rep
	}
	r := agas.NewResolver()
	monReg := core.NewRegistry()
	if err := r.EnableRemoteCounters(monReg, 9); err != nil {
		return err
	}
	for i, rep := range reps {
		if err := r.BindRemote(int64(i), rep.cli); err != nil {
			return err
		}
		if err := r.BindActions(int64(i), "work"); err != nil {
			return err
		}
	}

	// Partition one replica at a time, healing between cuts.
	stop := make(chan struct{})
	var togglerWG sync.WaitGroup
	togglerWG.Add(1)
	go func() {
		defer togglerWG.Done()
		for i := 0; ; i++ {
			inj := reps[i%2].inj
			inj.Partition(true)
			select {
			case <-time.After(150 * time.Millisecond):
			case <-stop:
				inj.Partition(false)
				return
			}
			inj.Partition(false)
			select {
			case <-time.After(100 * time.Millisecond):
			case <-stop:
				return
			}
		}
	}()

	var launched, completed, failed, cancelled, hung atomic.Int64
	sem := make(chan struct{}, inflight)
	var flightWG sync.WaitGroup
	end := time.Now().Add(duration)
	pace := time.NewTicker(time.Millisecond)
	defer pace.Stop()
	for i := 0; time.Now().Before(end); i++ {
		// Paced admission: without it, a fast-failing window (both
		// breakers open) recycles in-flight slots at CPU speed and the
		// soak degenerates into millions of instant ErrNoReplica spawns.
		<-pace.C
		sem <- struct{}{}
		launched.Add(1)
		flightWG.Add(1)
		go func(i int) {
			defer flightWG.Done()
			defer func() { <-sem }()
			ctx, cancel := context.WithTimeout(context.Background(), deadline)
			defer cancel()
			f := agas.SpawnRemoteCtx[int, int](ctx, r, "work", i)
			guard, gcancel := context.WithTimeout(context.Background(), deadline+slack)
			defer gcancel()
			v, err := f.GetContext(guard)
			switch {
			case err == nil:
				if v != i*2 {
					fmt.Fprintf(os.Stderr, "chaossoak: work(%d) = %d\n", i, v)
					hung.Add(1) // wrong result is as fatal as a hang
					return
				}
				completed.Add(1)
			case guard.Err() != nil:
				hung.Add(1)
				fmt.Fprintf(os.Stderr, "chaossoak: future %d unresolved past deadline+slack\n", i)
			case errors.Is(err, context.DeadlineExceeded),
				errors.Is(err, context.Canceled),
				errors.Is(err, parcel.ErrSpawnCancelled),
				errors.Is(err, agas.ErrNoReplica):
				cancelled.Add(1)
			default:
				failed.Add(1)
			}
		}(i)
	}
	flightWG.Wait()
	close(stop)
	togglerWG.Wait()

	read := func(name string) int64 {
		v, err := monReg.Evaluate("/runtime{locality#9/total}/remote/count/"+name, false)
		if err != nil {
			panic(err)
		}
		return v.Raw
	}
	spawned := read("spawned")
	cComp, cFail, cCanc := read("completed"), read("failed"), read("cancelled")
	fmt.Printf("chaossoak: %d spawned over %v: %d completed, %d failed, %d cancelled (retried %d, redirected %d; chaos %+v / %+v)\n",
		spawned, duration, cComp, cFail, cCanc, read("retried"), read("redirected"),
		reps[0].inj.Stats(), reps[1].inj.Stats())

	switch {
	case hung.Load() != 0:
		return fmt.Errorf("%d futures hung past deadline+slack", hung.Load())
	case spawned != launched.Load():
		return fmt.Errorf("spawned counter %d != %d launches", spawned, launched.Load())
	case cComp+cFail+cCanc != spawned:
		return fmt.Errorf("completed %d + failed %d + cancelled %d != spawned %d",
			cComp, cFail, cCanc, spawned)
	case cComp != completed.Load() || cFail != failed.Load() || cCanc != cancelled.Load():
		return fmt.Errorf("counters (%d/%d/%d) disagree with observed outcomes (%d/%d/%d)",
			cComp, cFail, cCanc, completed.Load(), failed.Load(), cancelled.Load())
	case cComp == 0:
		return errors.New("nothing completed — the plane never worked")
	}
	fmt.Println("chaossoak: OK — accounting exact, no hangs")
	return nil
}
