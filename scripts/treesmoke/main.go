// Command treesmoke is the aggregation-overlay smoke test driven by
// scripts/tree_smoke.sh: a 3-level simulated tree with real parcel
// servers under the deepest leaves, one interior node killed mid-run.
// It asserts the self-healing contract end to end — orphans re-attach
// by rank arithmetic, the root keeps serving a digest that is partial
// but *labelled* partial, the dead subtree is never double-counted,
// and the root's per-tick parcel load stays within the k·depth bound —
// and exits non-zero with a message when any of it does not hold.
package main

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/agas/tree"
	"repro/internal/parcel"
)

const (
	fleetN = 13 // 3 levels at k=3: root, ranks 1-3, ranks 4-12
	fanout = 3
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "treesmoke: FAIL — "+format+"\n", args...)
	os.Exit(1)
}

func main() {
	f, err := tree.NewFleet(tree.FleetConfig{
		N: fleetN, Fanout: fanout, WireLeaves: 3,
		Interval: 100 * time.Millisecond,
	})
	if err != nil {
		fail("fleet: %v", err)
	}
	defer f.Close()
	ctx := context.Background()

	// Healthy round: every locality folds, nothing is partial.
	snap, err := f.Tick(ctx)
	if err != nil {
		fail("healthy tick: %v", err)
	}
	if snap.Localities != fleetN || snap.Partial {
		fail("healthy fold: localities=%d partial=%v, want %d/false",
			snap.Localities, snap.Partial, fleetN)
	}
	if snap.Depth != 2 {
		fail("healthy fold depth = %d, want 2", snap.Depth)
	}
	fullSum := entrySum(snap, "/threads{locality#*/total}/count/cumulative")

	// Kill the interior rank 1 (children 4, 5, 6). Its loopback server —
	// if any — goes down with it, like a crashed locality.
	f.KillRank(1)

	snap, err = f.Tick(ctx)
	if err != nil {
		fail("post-kill tick: %v", err)
	}

	// 1. The orphans re-attached to the grandparent (the root), each
	//    counting its own repair.
	for _, r := range []int{4, 5, 6} {
		n := f.Nodes[r]
		if p := n.Parent(); p != 0 {
			fail("rank %d parent = %d after interior death, want 0 (grandparent)", r, p)
		}
		if n.Reparents() < 1 {
			fail("rank %d performed no re-parenting repair", r)
		}
	}

	// 2. The root still serves a digest — partial but labelled: the dead
	//    locality's own sample is the only thing missing, and the fold
	//    says so instead of silently shrinking.
	if !snap.Partial {
		fail("root fold after interior death is not labelled partial")
	}
	if snap.Localities != fleetN-1 {
		fail("root folds %d localities after death, want %d (no double count, no extra loss)",
			snap.Localities, fleetN-1)
	}
	if snap.Reparents < 3 {
		fail("root digest carries %d reparents, want >= 3", snap.Reparents)
	}
	partialSum := entrySum(snap, "/threads{locality#*/total}/count/cumulative")
	if partialSum >= fullSum || partialSum <= 0 {
		fail("partial sum %g vs full %g: dead locality not excluded exactly once",
			partialSum, fullSum)
	}

	// 3. Root parcel load: even with the adopted orphans the root's
	//    attached children stay within k·depth per tick.
	top := f.Topology(time.Now(), 0)
	rootChildren := len(top.Nodes[0].Children)
	bound := fanout * snap.Depth
	if rootChildren > bound {
		fail("root holds %d child subtrees, above the k·depth bound %d", rootChildren, bound)
	}

	// Stability: the repaired topology must hold, not flap, on following
	// rounds.
	snap, err = f.Tick(ctx)
	if err != nil {
		fail("settled tick: %v", err)
	}
	if snap.Localities != fleetN-1 || !snap.Partial {
		fail("repaired overlay did not hold: localities=%d partial=%v",
			snap.Localities, snap.Partial)
	}

	fmt.Printf("treesmoke: OK — %d/%d localities after interior death, partial labelled, "+
		"%d reparents, root children %d <= %d\n",
		snap.Localities, fleetN, snap.Reparents, rootChildren, bound)
}

// entrySum digs one digest entry's sum out of a snapshot.
func entrySum(snap *parcel.TreeDigest, key string) float64 {
	for _, e := range snap.Entries {
		if e.Key == key {
			return e.Sum
		}
	}
	fail("digest has no entry %s", key)
	return 0
}
