#!/usr/bin/env sh
# Regenerates the "current" section of BENCH_taskrt.json (spawn/join
# round trip, goroutine-id cost, and the counter-overhead-vs-grain table
# from the paper's Section VI) and prints the classic microbenchmarks.
# The "seed" section is the committed pre-optimization baseline and is
# preserved. Run on a quiet machine; every number here is a timing.
set -eu

cd "$(dirname "$0")/.."

echo "== microbenchmarks =="
go test -run=XXX -bench='SpawnGet|GoroutineID|CurrentWorkerLookup' \
    -benchtime=200ms ./internal/taskrt/

echo "== regenerating BENCH_taskrt.json =="
TASKRT_BENCH_JSON="$(pwd)/BENCH_taskrt.json" \
    go test -count=1 -run TestWriteBenchJSON -v ./internal/taskrt/

echo "== done =="
git --no-pager diff --stat BENCH_taskrt.json || true
