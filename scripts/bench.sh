#!/usr/bin/env sh
# Regenerates the "current" section of BENCH_taskrt.json (spawn/join
# round trip, goroutine-id cost, and the counter-overhead-vs-grain table
# from the paper's Section VI), the "parcel_bulk" section (K remote
# counters per sample: one evaluate_bulk round trip versus the K-round-
# trip per-counter loop), the "aggregation_tree" section (per-tick root
# cost of the k-ary counter overlay vs the flat O(n) sweep at n = 10..
# 10k localities), and then enforces the perf budgets against the fresh
# numbers. The "seed" section is the committed pre-optimization
# baseline and is preserved. Run on a quiet machine; every number here
# is a timing.
set -eu

cd "$(dirname "$0")/.."

echo "== microbenchmarks =="
go test -run=XXX -bench='SpawnGet|BatchSpawn|GoroutineID|CurrentWorkerLookup' \
    -benchtime=200ms ./internal/taskrt/
go test -run=XXX -bench='EvaluateBulk|EvaluatePerCounter' \
    -benchtime=50x ./internal/parcel/
go test -run=XXX -bench='HandleEvaluate|EvaluateBatch|EvaluateActive' \
    -benchtime=200ms ./internal/core/

echo "== regenerating BENCH_taskrt.json =="
# TestWriteBenchJSON includes the workers=1,4 x {1,10}us sweep
# (overhead_by_workers), so the batch publish is also drained by
# thieves, not only by its owning worker.
TASKRT_BENCH_JSON="$(pwd)/BENCH_taskrt.json" \
    go test -count=1 -run TestWriteBenchJSON -timeout 20m -v ./internal/taskrt/
TASKRT_BENCH_JSON="$(pwd)/BENCH_taskrt.json" \
    go test -count=1 -run TestWriteBulkBenchJSON -v ./internal/parcel/
TASKRT_BENCH_JSON="$(pwd)/BENCH_taskrt.json" \
    go test -count=1 -run TestWriteTelemetryBudgetJSON -v ./internal/telemetry/
TASKRT_BENCH_JSON="$(pwd)/BENCH_taskrt.json" \
    go test -count=1 -run TestWriteTreeBenchJSON -timeout 20m -v ./internal/agas/tree/

echo "== perf budget gate =="
# Fails when the 1us-grain counter overhead exceeds 8%, the 1us-grain
# scheduling overhead exceeds 40%, the spawn+get round trip regresses
# >2x, or the batch per-child spawn cost regresses >8% over the
# committed baseline.
TASKRT_BENCH_GATE=1 TASKRT_BENCH_BASELINE="$(pwd)/BENCH_taskrt.json" \
    go test -count=1 -run TestBenchGate -v ./internal/taskrt/

echo "== done =="
git --no-pager diff --stat BENCH_taskrt.json || true
