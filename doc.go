// Package repro reproduces "Using Intrinsic Performance Counters to
// Assess Efficiency in Task-Based Parallel Applications" (Grubel,
// Kaiser, Huck, Cook): an HPX-style in-runtime performance-counter
// framework (internal/core), a lightweight work-stealing task runtime
// (internal/taskrt) and a std::async thread-per-task baseline
// (internal/stdrt), the fourteen-benchmark Inncabs suite ported to both
// (internal/inncabs), a discrete-event scheduler simulator of the
// paper's 20-core Ivy Bridge node (internal/machine, internal/sim), and
// the harness that regenerates every table and figure of the paper's
// evaluation (internal/bench, cmd/repro).
//
// See README.md for the tour, DESIGN.md for the system inventory and
// experiment index, and EXPERIMENTS.md for paper-versus-measured results.
package repro
