package bench

import (
	"fmt"
	"io"
	"os"
	"path/filepath"

	"repro/internal/inncabs"
	"repro/internal/machine"
)

// ExportFigureCSV writes the raw data series behind one figure as CSV,
// for external plotting tools. Every figure shares one schema so a
// single plotting script covers all fourteen.
func ExportFigureCSV(w io.Writer, id string, size inncabs.Size, m machine.Machine) error {
	spec, ok := figures[id]
	if !ok {
		return fmt.Errorf("bench: %q is not a figure id", id)
	}
	b, err := inncabs.ByName(spec.benchmark)
	if err != nil {
		return err
	}
	s, err := StrongScaling(b, size, m, CoresFor(m))
	if err != nil {
		return err
	}
	header := []string{
		"benchmark", "cores",
		"hpx_time_s", "hpx_failed", "std_time_s", "std_failed",
		"hpx_task_time_per_core_s", "hpx_overhead_per_core_s",
		"hpx_avg_task_us", "hpx_avg_overhead_us",
		"hpx_bandwidth_gbs", "hpx_idle_rate",
	}
	rows := make([][]string, 0, len(s.Points))
	for _, p := range s.Points {
		k := float64(p.Cores)
		rows = append(rows, []string{
			s.Benchmark,
			fmt.Sprintf("%d", p.Cores),
			fmt.Sprintf("%.6f", float64(p.HPX.MakespanNs)/1e9),
			fmt.Sprintf("%v", p.HPX.Failed),
			fmt.Sprintf("%.6f", float64(p.Std.MakespanNs)/1e9),
			fmt.Sprintf("%v", p.Std.Failed),
			fmt.Sprintf("%.6f", float64(p.HPX.TaskTimeNs)/1e9/k),
			fmt.Sprintf("%.6f", float64(p.HPX.OverheadNs)/1e9/k),
			fmt.Sprintf("%.3f", p.HPX.AvgTaskNs()/1000),
			fmt.Sprintf("%.3f", p.HPX.AvgOverheadNs()/1000),
			fmt.Sprintf("%.3f", p.HPX.Bandwidth()/1e9),
			fmt.Sprintf("%.4f", p.HPX.IdleRate()),
		})
	}
	WriteCSV(w, header, rows)
	return nil
}

// ExportAllCSV writes one CSV per figure into dir (created if needed),
// named fig<N>.csv, and returns the files written.
func ExportAllCSV(dir string, size inncabs.Size, m machine.Machine) ([]string, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	var written []string
	for _, id := range IDs() {
		if _, ok := figures[id]; !ok {
			continue
		}
		path := filepath.Join(dir, id+".csv")
		f, err := os.Create(path)
		if err != nil {
			return written, err
		}
		err = ExportFigureCSV(f, id, size, m)
		cerr := f.Close()
		if err != nil {
			return written, err
		}
		if cerr != nil {
			return written, cerr
		}
		written = append(written, path)
	}
	return written, nil
}
