package bench

import (
	"fmt"
	"io"

	"repro/internal/inncabs"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Ablation quantifies which cost-model term produces which published
// effect, by re-running two shape-critical experiments with individual
// terms removed:
//
//   - UTS (fig 6/12): removing the remote-contention term must erase
//     the post-socket-boundary slowdown.
//   - Pyramids (fig 14): removing bandwidth saturation must restore
//     linear bandwidth scaling.
//   - FFT (fig 5): removing the std creation cost must collapse the
//     HPX-vs-std gap.
//
// DESIGN.md calls these three terms out as the load-bearing model
// choices; this table is the evidence.
type Ablation struct {
	// Name identifies the removed term.
	Name string
	// Benchmark and Metric say what was measured.
	Benchmark string
	Metric    string
	// Full is the metric with the complete model, Removed without the
	// term, and Effect a one-line reading.
	Full    float64
	Removed float64
	Effect  string
}

// RunAblations computes the ablation table at the given size.
func RunAblations(size inncabs.Size, base machine.Machine) ([]Ablation, error) {
	var out []Ablation

	// 1. Remote contention off -> UTS 20-core/10-core time ratio.
	utsRatio := func(m machine.Machine) (float64, error) {
		b, err := inncabs.ByName("uts")
		if err != nil {
			return 0, err
		}
		s, err := StrongScaling(b, size, m, []int{10, 20})
		if err != nil {
			return 0, err
		}
		return float64(s.Result(sim.HPX, 20).MakespanNs) /
			float64(s.Result(sim.HPX, 10).MakespanNs), nil
	}
	noRemote := base
	noRemote.HPXRemoteContentionNs = 0
	noRemote.HPXCrossSocketOverhead = 1
	full, err := utsRatio(base)
	if err != nil {
		return nil, err
	}
	removed, err := utsRatio(noRemote)
	if err != nil {
		return nil, err
	}
	out = append(out, Ablation{
		Name: "remote contention (socket boundary)", Benchmark: "uts",
		Metric: "T(20)/T(10)", Full: full, Removed: removed,
		Effect: "ratio > 1 (slowdown past the socket) only with the term present",
	})

	// 2. Bandwidth saturation off -> Pyramids bandwidth scaling factor
	// from 10 to 20 cores.
	pyrBW := func(m machine.Machine) (float64, error) {
		b, err := inncabs.ByName("pyramids")
		if err != nil {
			return 0, err
		}
		s, err := StrongScaling(b, size, m, []int{10, 20})
		if err != nil {
			return 0, err
		}
		return s.Result(sim.HPX, 20).Bandwidth() / s.Result(sim.HPX, 10).Bandwidth(), nil
	}
	noBW := base
	noBW.SocketBandwidth = 1e18
	noBW.CrossSocketPenalty = 0
	full, err = pyrBW(base)
	if err != nil {
		return nil, err
	}
	removed, err = pyrBW(noBW)
	if err != nil {
		return nil, err
	}
	out = append(out, Ablation{
		Name: "bandwidth saturation + NUMA penalty", Benchmark: "pyramids",
		Metric: "BW(20)/BW(10)", Full: full, Removed: removed,
		Effect: "the figure-14 flattening (ratio << 2) needs the memory model",
	})

	// 3. Thread-creation cost off -> FFT std/hpx time ratio at 10 cores.
	fftGap := func(m machine.Machine) (float64, error) {
		b, err := inncabs.ByName("fft")
		if err != nil {
			return 0, err
		}
		g := b.TaskGraph(size)
		h, err := sim.Run(sim.Config{Machine: m, Cores: 10, Mode: sim.HPX}, g)
		if err != nil {
			return 0, err
		}
		s, err := sim.Run(sim.Config{Machine: m, Cores: 10, Mode: sim.Std}, g)
		if err != nil {
			return 0, err
		}
		return float64(s.MakespanNs) / float64(h.MakespanNs), nil
	}
	noCreate := base
	noCreate.StdThreadCreateNs = 0
	noCreate.StdCreateContention = 0
	full, err = fftGap(base)
	if err != nil {
		return nil, err
	}
	removed, err = fftGap(noCreate)
	if err != nil {
		return nil, err
	}
	out = append(out, Ablation{
		Name: "pthread creation cost", Benchmark: "fft",
		Metric: "T_std/T_hpx @10 cores", Full: full, Removed: removed,
		Effect: "the headline fine-grain gap is carried by creation cost",
	})
	return out, nil
}

// Ablations renders the ablation table.
func Ablations(w io.Writer, size inncabs.Size, m machine.Machine) error {
	rows, err := RunAblations(size, m)
	if err != nil {
		return err
	}
	table := make([][]string, len(rows))
	for i, a := range rows {
		table[i] = []string{
			a.Name, a.Benchmark, a.Metric,
			fmt.Sprintf("%.2f", a.Full),
			fmt.Sprintf("%.2f", a.Removed),
			a.Effect,
		}
	}
	RenderTable(w,
		fmt.Sprintf("Ablations: cost-model terms vs published effects (%s size)", size),
		[]string{"Removed term", "Benchmark", "Metric", "Full model", "Term removed", "Reading"},
		table)
	return nil
}
