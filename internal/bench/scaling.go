// Package bench regenerates every table and figure of the paper's
// evaluation: strong-scaling series of the Inncabs suite under both
// runtime models on the modelled Ivy Bridge node, the external-tool
// outcome matrix, the benchmark classification table, and the overhead
// and bandwidth figures — each as the same rows/series the paper
// reports, rendered as ASCII tables/charts and optional CSV.
package bench

import (
	"fmt"
	"sort"

	"repro/internal/inncabs"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Point is one core count of a strong-scaling series.
type Point struct {
	// Cores is the x axis.
	Cores int
	// HPX and Std are the two runtime models' results.
	HPX sim.Result
	Std sim.Result
}

// Series is a benchmark's full strong-scaling sweep.
type Series struct {
	// Benchmark names the workload.
	Benchmark string
	// Size is the workload preset used.
	Size inncabs.Size
	// Points are ordered by core count.
	Points []Point
	// Stats are the static graph properties.
	Stats sim.Stats
}

// DefaultCores is the paper's strong-scaling x axis on the 20-core node.
func DefaultCores() []int {
	return []int{1, 2, 4, 6, 8, 10, 12, 14, 16, 18, 20}
}

// CoresFor picks the strong-scaling x axis for a platform: the paper's
// grid on the 20-core node, else powers of two plus the socket boundary
// and the full machine.
func CoresFor(m machine.Machine) []int {
	total := m.TotalCores()
	if total == 20 {
		return DefaultCores()
	}
	seen := map[int]bool{}
	var out []int
	add := func(k int) {
		if k >= 1 && k <= total && !seen[k] {
			seen[k] = true
			out = append(out, k)
		}
	}
	for k := 1; k <= total; k *= 2 {
		add(k)
	}
	add(m.CoresPerSocket)
	add(m.CoresPerSocket + 2)
	add(total)
	sort.Ints(out)
	return out
}

// StrongScaling sweeps the benchmark's task graph over the core counts
// under both runtime models. The graph builds once; each point is an
// independent virtual-time run.
func StrongScaling(b *inncabs.Benchmark, size inncabs.Size, m machine.Machine, cores []int) (Series, error) {
	g := b.TaskGraph(size)
	s := Series{Benchmark: b.Name, Size: size, Stats: g.Stats()}
	for _, k := range cores {
		var p Point
		p.Cores = k
		var err error
		if p.HPX, err = sim.Run(sim.Config{Machine: m, Cores: k, Mode: sim.HPX}, g); err != nil {
			return s, fmt.Errorf("bench: %s hpx %d cores: %w", b.Name, k, err)
		}
		if p.Std, err = sim.Run(sim.Config{Machine: m, Cores: k, Mode: sim.Std}, g); err != nil {
			return s, fmt.Errorf("bench: %s std %d cores: %w", b.Name, k, err)
		}
		s.Points = append(s.Points, p)
	}
	return s, nil
}

// Speedup returns T(1)/T(k) for the given mode, or 0 on failure.
func (s Series) Speedup(mode sim.Mode, cores int) float64 {
	var t1, tk int64
	for _, p := range s.Points {
		r := p.HPX
		if mode == sim.Std {
			r = p.Std
		}
		if r.Failed {
			continue
		}
		if p.Cores == 1 {
			t1 = r.MakespanNs
		}
		if p.Cores == cores {
			tk = r.MakespanNs
		}
	}
	if t1 == 0 || tk == 0 {
		return 0
	}
	return float64(t1) / float64(tk)
}

// ScalesTo reports the Table V scaling classification for a mode:
// "fail" when any point failed, "no scaling" when the best time barely
// beats one core, otherwise "to k" for the knee — the smallest measured
// core count whose time is within 5% of the series minimum (execution
// time stops improving meaningfully beyond it, the paper's criterion).
func (s Series) ScalesTo(mode sim.Mode) string {
	res := func(p Point) sim.Result {
		if mode == sim.Std {
			return p.Std
		}
		return p.HPX
	}
	var t1 int64
	best := int64(1 << 62)
	for _, p := range s.Points {
		r := res(p)
		if r.Failed {
			return "fail"
		}
		if p.Cores == 1 {
			t1 = r.MakespanNs
		}
		if r.MakespanNs < best {
			best = r.MakespanNs
		}
	}
	if t1 == 0 {
		return "n/a"
	}
	if float64(best) > float64(t1)/1.3 {
		return "no scaling"
	}
	for _, p := range s.Points {
		if float64(res(p).MakespanNs) <= 1.05*float64(best) {
			return fmt.Sprintf("to %d", p.Cores)
		}
	}
	return "n/a"
}

// Result selects the mode's result at a core count (zero Result if the
// point is absent).
func (s Series) Result(mode sim.Mode, cores int) sim.Result {
	for _, p := range s.Points {
		if p.Cores == cores {
			if mode == sim.Std {
				return p.Std
			}
			return p.HPX
		}
	}
	return sim.Result{}
}
