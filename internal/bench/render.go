package bench

import (
	"fmt"
	"io"
	"math"
	"strings"
)

// RenderTable writes an aligned ASCII table.
func RenderTable(w io.Writer, title string, headers []string, rows [][]string) {
	if title != "" {
		fmt.Fprintf(w, "%s\n", title)
	}
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(headers))
		for i := range headers {
			cell := ""
			if i < len(cells) {
				cell = cells[i]
			}
			parts[i] = fmt.Sprintf("%-*s", widths[i], cell)
		}
		fmt.Fprintf(w, "| %s |\n", strings.Join(parts, " | "))
	}
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(headers)
	line(sep)
	for _, row := range rows {
		line(row)
	}
}

// ChartSeries is one line of an ASCII chart.
type ChartSeries struct {
	// Name labels the series in the legend.
	Name string
	// Marker is the plot character.
	Marker byte
	// X and Y are the data (NaN Y values are skipped — failed runs).
	X []float64
	Y []float64
}

// RenderChart plots the series on a log-scaled Y axis, the paper's
// presentation for execution times. Failed points (NaN) leave gaps.
func RenderChart(w io.Writer, title, xLabel, yLabel string, series []ChartSeries) {
	const width, height = 64, 18
	minX, maxX := math.Inf(1), math.Inf(-1)
	minY, maxY := math.Inf(1), math.Inf(-1)
	any := false
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || s.Y[i] <= 0 {
				continue
			}
			any = true
			minX = math.Min(minX, s.X[i])
			maxX = math.Max(maxX, s.X[i])
			minY = math.Min(minY, s.Y[i])
			maxY = math.Max(maxY, s.Y[i])
		}
	}
	fmt.Fprintf(w, "%s\n", title)
	if !any {
		fmt.Fprintln(w, "  (no data: all runs failed)")
		return
	}
	if maxY <= minY {
		maxY = minY * 1.1
	}
	if maxX <= minX {
		maxX = minX + 1
	}
	logMin, logMax := math.Log10(minY), math.Log10(maxY)
	grid := make([][]byte, height)
	for r := range grid {
		grid[r] = []byte(strings.Repeat(" ", width))
	}
	for _, s := range series {
		for i := range s.X {
			if math.IsNaN(s.Y[i]) || s.Y[i] <= 0 {
				continue
			}
			col := int((s.X[i] - minX) / (maxX - minX) * float64(width-1))
			var rowF float64
			if logMax > logMin {
				rowF = (math.Log10(s.Y[i]) - logMin) / (logMax - logMin)
			}
			row := height - 1 - int(rowF*float64(height-1))
			grid[row][col] = s.Marker
		}
	}
	fmt.Fprintf(w, "  %s (log scale)\n", yLabel)
	for r, rowBytes := range grid {
		label := ""
		switch r {
		case 0:
			label = formatSI(maxY)
		case height - 1:
			label = formatSI(minY)
		}
		fmt.Fprintf(w, "  %10s |%s|\n", label, string(rowBytes))
	}
	fmt.Fprintf(w, "  %10s +%s+\n", "", strings.Repeat("-", width))
	fmt.Fprintf(w, "  %10s  %-10g%*s\n", "", minX, width-10, fmt.Sprintf("%g  %s", maxX, xLabel))
	for _, s := range series {
		fmt.Fprintf(w, "      %c = %s\n", s.Marker, s.Name)
	}
}

// formatSI renders a value with an SI suffix.
func formatSI(v float64) string {
	switch {
	case v >= 1e9:
		return fmt.Sprintf("%.3gG", v/1e9)
	case v >= 1e6:
		return fmt.Sprintf("%.3gM", v/1e6)
	case v >= 1e3:
		return fmt.Sprintf("%.3gk", v/1e3)
	default:
		return fmt.Sprintf("%.3g", v)
	}
}

// WriteCSV emits the series as CSV for external plotting.
func WriteCSV(w io.Writer, header []string, rows [][]string) {
	fmt.Fprintln(w, strings.Join(header, ","))
	for _, row := range rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}
