package bench

import (
	"fmt"
	"io"
	"math"
	"sort"

	"repro/internal/inncabs"
	"repro/internal/machine"
	"repro/internal/sim"
)

// figureKind selects what a figure plots.
type figureKind int

const (
	execFigure figureKind = iota
	overheadFigure
	bandwidthFigure
)

// figureSpec maps the paper's figure numbers to content.
type figureSpec struct {
	kind      figureKind
	benchmark string
	caption   string
}

var figures = map[string]figureSpec{
	"fig1":  {execFigure, "alignment", "Execution time of Alignment (HPX vs C++11 Standard)"},
	"fig2":  {execFigure, "pyramids", "Execution time of Pyramids (HPX vs C++11 Standard)"},
	"fig3":  {execFigure, "strassen", "Execution time of Strassen (HPX vs C++11 Standard)"},
	"fig4":  {execFigure, "sort", "Execution time of Sort (HPX vs C++11 Standard)"},
	"fig5":  {execFigure, "fft", "Execution time of FFT (HPX vs C++11 Standard)"},
	"fig6":  {execFigure, "uts", "Execution time of UTS (HPX vs C++11 Standard)"},
	"fig7":  {execFigure, "intersim", "Execution time of Intersim (HPX vs C++11 Standard)"},
	"fig8":  {overheadFigure, "alignment", "Alignment overheads"},
	"fig9":  {overheadFigure, "pyramids", "Pyramids overheads"},
	"fig10": {overheadFigure, "strassen", "Strassen overheads"},
	"fig11": {overheadFigure, "fft", "FFT overheads"},
	"fig12": {overheadFigure, "uts", "UTS overheads"},
	"fig13": {bandwidthFigure, "alignment", "Alignment OFFCORE bandwidth"},
	"fig14": {bandwidthFigure, "pyramids", "Pyramids OFFCORE bandwidth"},
}

// tables maps table ids to runners; see Run.
var tableIDs = []string{"table1", "table3", "table4", "table5", "ablation", "grainsweep"}

// IDs returns every regenerable experiment id, tables first, then
// figures in paper order.
func IDs() []string {
	ids := append([]string(nil), tableIDs...)
	figs := make([]string, 0, len(figures))
	for id := range figures {
		figs = append(figs, id)
	}
	sort.Slice(figs, func(i, j int) bool {
		var a, b int
		fmt.Sscanf(figs[i], "fig%d", &a)
		fmt.Sscanf(figs[j], "fig%d", &b)
		return a < b
	})
	return append(ids, figs...)
}

// Describe returns a one-line description of an experiment id.
func Describe(id string) string {
	switch id {
	case "table1":
		return "External tools (TAU, HPCToolkit) on the std::async baseline"
	case "table3":
		return "Platform specification"
	case "table4":
		return "Experiment synopsis"
	case "table5":
		return "Benchmark classification, task granularity and scaling"
	case "ablation":
		return "Cost-model ablations: which term produces which published effect"
	case "grainsweep":
		return "Granularity sweep: the paper's dominant-factor claim on a synthetic workload"
	}
	if spec, ok := figures[id]; ok {
		return spec.caption
	}
	return "unknown"
}

// Run regenerates one table or figure to w.
func Run(w io.Writer, id string, size inncabs.Size, m machine.Machine) error {
	switch id {
	case "table1":
		return Table1(w, size, m)
	case "ablation":
		return Ablations(w, size, m)
	case "grainsweep":
		return GrainSweepTable(w, m, 16)
	case "table3":
		Table3(w, m)
		return nil
	case "table4":
		Table4(w)
		return nil
	case "table5":
		return Table5(w, size, m)
	}
	spec, ok := figures[id]
	if !ok {
		return fmt.Errorf("bench: unknown experiment id %q (have %v)", id, IDs())
	}
	b, err := inncabs.ByName(spec.benchmark)
	if err != nil {
		return err
	}
	series, err := StrongScaling(b, size, m, CoresFor(m))
	if err != nil {
		return err
	}
	switch spec.kind {
	case execFigure:
		renderExecFigure(w, id, spec, series)
	case overheadFigure:
		renderOverheadFigure(w, id, spec, series)
	case bandwidthFigure:
		renderBandwidthFigure(w, id, spec, series)
	}
	return nil
}

// RunAll regenerates every experiment in order.
func RunAll(w io.Writer, size inncabs.Size, m machine.Machine) error {
	for _, id := range IDs() {
		if err := Run(w, id, size, m); err != nil {
			return err
		}
		fmt.Fprintln(w)
	}
	return nil
}

func secondsOrNaN(r sim.Result) float64 {
	if r.Failed || r.MakespanNs == 0 {
		return math.NaN()
	}
	return float64(r.MakespanNs) / 1e9
}

func renderExecFigure(w io.Writer, id string, spec figureSpec, s Series) {
	var xs, hpxY, stdY []float64
	rows := make([][]string, 0, len(s.Points))
	for _, p := range s.Points {
		xs = append(xs, float64(p.Cores))
		hpxY = append(hpxY, secondsOrNaN(p.HPX))
		stdY = append(stdY, secondsOrNaN(p.Std))
		stdCell := "FAIL"
		if !p.Std.Failed {
			stdCell = fmt.Sprintf("%.3f", secondsOrNaN(p.Std))
		}
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Cores),
			fmt.Sprintf("%.3f", secondsOrNaN(p.HPX)),
			stdCell,
		})
	}
	title := fmt.Sprintf("Figure %s: %s [%s size]", id[3:], spec.caption, s.Size)
	RenderTable(w, title, []string{"Cores", "HPX [s]", "C++11 Std [s]"}, rows)
	RenderChart(w, "", "cores", "execution time [s]", []ChartSeries{
		{Name: "HPX", Marker: 'H', X: xs, Y: hpxY},
		{Name: "C++11 Std", Marker: 'S', X: xs, Y: stdY},
	})
	maxCores := s.Points[len(s.Points)-1].Cores
	fmt.Fprintf(w, "  HPX speedup at %d cores: %.1fx; Std: %.1fx\n",
		maxCores, s.Speedup(sim.HPX, maxCores), s.Speedup(sim.Std, maxCores))
}

func renderOverheadFigure(w io.Writer, id string, spec figureSpec, s Series) {
	one := s.Result(sim.HPX, 1)
	var xs, execY, idealY, taskY, idealTaskY, ovhY []float64
	rows := make([][]string, 0, len(s.Points))
	for _, p := range s.Points {
		r := p.HPX
		k := float64(p.Cores)
		xs = append(xs, k)
		execY = append(execY, secondsOrNaN(r))
		idealY = append(idealY, float64(one.MakespanNs)/1e9/k)
		taskY = append(taskY, float64(r.TaskTimeNs)/1e9/k)
		idealTaskY = append(idealTaskY, float64(one.TaskTimeNs)/1e9/k)
		ovhY = append(ovhY, float64(r.OverheadNs)/1e9/k)
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Cores),
			fmt.Sprintf("%.3f", secondsOrNaN(r)),
			fmt.Sprintf("%.3f", float64(one.MakespanNs)/1e9/k),
			fmt.Sprintf("%.3f", float64(r.TaskTimeNs)/1e9/k),
			fmt.Sprintf("%.3f", float64(one.TaskTimeNs)/1e9/k),
			fmt.Sprintf("%.4f", float64(r.OverheadNs)/1e9/k),
		})
	}
	title := fmt.Sprintf("Figure %s: %s (HPX) [%s size]", id[3:], spec.caption, s.Size)
	RenderTable(w, title,
		[]string{"Cores", "exec_time [s]", "ideal_scaling [s]",
			"task time/core [s]", "ideal task time [s]", "sched_overhd/core [s]"},
		rows)
	RenderChart(w, "", "cores", "time [s]", []ChartSeries{
		{Name: "exec_time", Marker: 'E', X: xs, Y: execY},
		{Name: "ideal_scaling", Marker: 'i', X: xs, Y: idealY},
		{Name: "task time/core", Marker: 'T', X: xs, Y: taskY},
		{Name: "ideal task time", Marker: '.', X: xs, Y: idealTaskY},
		{Name: "sched_overhd/core", Marker: 'o', X: xs, Y: ovhY},
	})
}

func renderBandwidthFigure(w io.Writer, id string, spec figureSpec, s Series) {
	var xs, bwY []float64
	rows := make([][]string, 0, len(s.Points))
	for _, p := range s.Points {
		r := p.HPX
		xs = append(xs, float64(p.Cores))
		bw := r.Bandwidth() / 1e9
		bwY = append(bwY, bw)
		rows = append(rows, []string{
			fmt.Sprintf("%d", p.Cores),
			fmt.Sprintf("%.2f", bw),
			fmt.Sprintf("%.2f", bw/float64(p.Cores)),
		})
	}
	title := fmt.Sprintf("Figure %s: %s [%s size]", id[3:], spec.caption, s.Size)
	RenderTable(w, title, []string{"Cores", "OFFCORE bandwidth [GB/s]", "per core [GB/s]"}, rows)
	RenderChart(w, "", "cores", "bandwidth [GB/s]", []ChartSeries{
		{Name: "OFFCORE bandwidth", Marker: 'B', X: xs, Y: bwY},
	})
}
