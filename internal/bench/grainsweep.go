package bench

import (
	"fmt"
	"io"
	"math"

	"repro/internal/machine"
	"repro/internal/sim"
)

// GrainPoint is one task-granularity sample of the sweep.
type GrainPoint struct {
	// GrainUs is the task duration in microseconds.
	GrainUs float64
	// HPXSpeedup and StdSpeedup are T(1)/T(cores) for each model (0 on
	// failure).
	HPXSpeedup float64
	StdSpeedup float64
	// StdOverHPX is the ratio of absolute execution times at the swept
	// core count (∞ represented as 0 on std failure).
	StdOverHPX float64
	// HPXOverheadShare is scheduling overhead over task time for the
	// lightweight model.
	HPXOverheadShare float64
}

// GrainSweep quantifies the paper's central claim — task granularity is
// the dominant factor — on a synthetic workload: a flat fan-out of
// fixed total work (1 second of compute) whose task size sweeps from
// 1 µs to 10 ms, executed on `cores` cores under both runtime models.
// The result shows where the lightweight runtime's advantage comes from
// and where the thread-per-task baseline stops being competitive.
func GrainSweep(m machine.Machine, cores int) ([]GrainPoint, error) {
	const totalWorkNs = 1e9
	grains := []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 10000}
	out := make([]GrainPoint, 0, len(grains))
	for _, us := range grains {
		workNs := int64(us * 1000)
		tasks := int(totalWorkNs / float64(workNs))
		if tasks < cores {
			tasks = cores
		}
		root := &sim.Node{}
		for i := 0; i < tasks; i++ {
			root.Children = append(root.Children, sim.Leaf(workNs, 0))
		}
		g := &sim.Graph{Label: fmt.Sprintf("grain-%gus", us), Root: root}

		p := GrainPoint{GrainUs: us}
		h1, err := sim.Run(sim.Config{Machine: m, Cores: 1, Mode: sim.HPX}, g)
		if err != nil {
			return nil, err
		}
		hk, err := sim.Run(sim.Config{Machine: m, Cores: cores, Mode: sim.HPX}, g)
		if err != nil {
			return nil, err
		}
		p.HPXSpeedup = float64(h1.MakespanNs) / float64(hk.MakespanNs)
		if hk.TaskTimeNs > 0 {
			p.HPXOverheadShare = float64(hk.OverheadNs) / float64(hk.TaskTimeNs)
		}
		s1, err := sim.Run(sim.Config{Machine: m, Cores: 1, Mode: sim.Std}, g)
		if err != nil {
			return nil, err
		}
		sk, err := sim.Run(sim.Config{Machine: m, Cores: cores, Mode: sim.Std}, g)
		if err != nil {
			return nil, err
		}
		if !s1.Failed && !sk.Failed {
			p.StdSpeedup = float64(s1.MakespanNs) / float64(sk.MakespanNs)
			p.StdOverHPX = float64(sk.MakespanNs) / float64(hk.MakespanNs)
		}
		out = append(out, p)
	}
	return out, nil
}

// GrainSweepTable renders the sweep.
func GrainSweepTable(w io.Writer, m machine.Machine, cores int) error {
	points, err := GrainSweep(m, cores)
	if err != nil {
		return err
	}
	rows := make([][]string, len(points))
	var xs, ratio []float64
	for i, p := range points {
		stdCell := "fail"
		if p.StdOverHPX > 0 {
			stdCell = fmt.Sprintf("%.2f", p.StdOverHPX)
		}
		rows[i] = []string{
			fmt.Sprintf("%g", p.GrainUs),
			fmt.Sprintf("%.1f", p.HPXSpeedup),
			fmt.Sprintf("%.1f", p.StdSpeedup),
			stdCell,
			fmt.Sprintf("%.1f%%", 100*p.HPXOverheadShare),
		}
		xs = append(xs, math.Log10(p.GrainUs))
		if p.StdOverHPX > 0 {
			ratio = append(ratio, p.StdOverHPX)
		} else {
			ratio = append(ratio, math.NaN())
		}
	}
	RenderTable(w,
		fmt.Sprintf("Granularity sweep: 1 s of work split into uniform tasks, %d cores", cores),
		[]string{"Task µs", "HPX speedup", "Std speedup", "Std/HPX time", "HPX overhead share"},
		rows)
	RenderChart(w, "", "log10(task µs)", "Std/HPX time ratio", []ChartSeries{
		{Name: "Std time over HPX time", Marker: 'R', X: xs, Y: ratio},
	})
	fmt.Fprintln(w, "  Reading: below ~10 µs the thread-per-task baseline is several times")
	fmt.Fprintln(w, "  slower (or dead); past ~1 ms the runtimes converge — Table V's")
	fmt.Fprintln(w, "  granularity classes are exactly the bands of this curve.")
	return nil
}
