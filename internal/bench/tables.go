package bench

import (
	"fmt"
	"io"

	"repro/internal/exttool"
	"repro/internal/inncabs"
	"repro/internal/machine"
	"repro/internal/sim"
)

// Table1 regenerates the external-tool matrix: for every benchmark, the
// uninstrumented std::async baseline at full concurrency, then the TAU
// and HPCToolkit outcomes from the tool models.
func Table1(w io.Writer, size inncabs.Size, m machine.Machine) error {
	tau := exttool.TAU()
	hpc := exttool.HPCToolkit()
	rows := make([][]string, 0, 14)
	for _, b := range inncabs.All() {
		g := b.TaskGraph(size)
		baseline, err := sim.Run(sim.Config{Machine: m, Cores: m.TotalCores(), Mode: sim.Std}, g)
		if err != nil {
			return fmt.Errorf("bench: table1 %s: %w", b.Name, err)
		}
		baseTime := "Abort"
		baseTasks := "n/a"
		if !baseline.Failed {
			baseTime = fmt.Sprintf("%.0f ms", float64(baseline.MakespanNs)/1e6)
			baseTasks = fmt.Sprintf("%d", baseline.Tasks)
		}
		rows = append(rows, []string{
			b.Name, baseTime, baseTasks,
			tau.Apply(baseline).String(),
			hpc.Apply(baseline).String(),
		})
	}
	RenderTable(w,
		fmt.Sprintf("Table 1: external tools on the std::async baseline (%d cores, %s size)", m.TotalCores(), size),
		[]string{"Benchmark", "Baseline time", "Baseline tasks", "TAU", "HPCToolkit"},
		rows)
	return nil
}

// Table3 prints the modelled platform specification (the paper's
// Table III).
func Table3(w io.Writer, m machine.Machine) {
	rows := [][]string{
		{"Processor", m.Name},
		{"Clock frequency", fmt.Sprintf("%.2f GHz", m.ClockGHz)},
		{"Sockets x cores", fmt.Sprintf("%d x %d (%d total)", m.Sockets, m.CoresPerSocket, m.TotalCores())},
		{"Cache line", fmt.Sprintf("%d bytes", m.CacheLineBytes)},
		{"RAM", fmt.Sprintf("%d GiB", m.RAMBytes>>30)},
		{"Socket bandwidth (modelled)", fmt.Sprintf("%.0f GB/s", m.SocketBandwidth/1e9)},
		{"HPX task overhead (modelled)", fmt.Sprintf("%.0f ns", m.HPXTaskOverheadNs)},
		{"pthread create (modelled)", fmt.Sprintf("%.0f ns", m.StdThreadCreateNs)},
		{"Thread ceiling (modelled)", fmt.Sprintf("%d", m.StdThreadCeiling)},
	}
	RenderTable(w, "Table 3: platform specification", []string{"Property", "Value"}, rows)
}

// Table4 prints the experiment synopsis (the paper's Table IV): the
// configuration space explored and the settings all reported results
// use.
func Table4(w io.Writer) {
	rows := [][]string{
		{"Runtime", "HPX-model (taskrt/sim), std::async-model (stdrt/sim)", "both compared"},
		{"Launch policy", "async, deferred, fork, sync, optional", "async (paper: fastest)"},
		{"Scaling", "strong scaling, fixed workload, 1-20 cores", "cores fill socket 0 first"},
		{"Hyper-threading", "modelled off", "off (paper: negligible change)"},
		{"Allocator", "contention folded into the machine cost model", "tcmalloc-equivalent"},
		{"Samples", "20 per experiment, medians reported", "stats.Repeat(20, ...)"},
		{"Counters", "evaluated and reset around each sample", "Registry.EvaluateActive(true)"},
	}
	RenderTable(w, "Table 4: experiment synopsis",
		[]string{"Dimension", "Explored", "Reported configuration"}, rows)
}

// Table5 regenerates the benchmark classification: structure, sync,
// task duration measured on one core via /threads/time/average,
// granularity class, and the measured scaling behaviour of both
// runtimes, next to the paper's values.
func Table5(w io.Writer, size inncabs.Size, m machine.Machine) error {
	rows := make([][]string, 0, 14)
	for _, b := range inncabs.All() {
		series, err := StrongScaling(b, size, m, CoresFor(m))
		if err != nil {
			return fmt.Errorf("bench: table5 %s: %w", b.Name, err)
		}
		oneCore := series.Result(sim.HPX, 1)
		rows = append(rows, []string{
			b.Name, b.Class, b.Sync,
			fmt.Sprintf("%.2f", oneCore.AvgTaskNs()/1000),
			fmt.Sprintf("%.2f", b.PaperTaskUs),
			b.Granularity,
			series.ScalesTo(sim.Std), b.PaperStdScaling,
			series.ScalesTo(sim.HPX), b.PaperHPXScaling,
		})
	}
	RenderTable(w,
		fmt.Sprintf("Table 5: benchmark classification and granularity (%s size)", size),
		[]string{"Benchmark", "Class", "Synchronization",
			"Task us (measured)", "Task us (paper)", "Granularity",
			"Std scaling", "Std (paper)", "HPX scaling", "HPX (paper)"},
		rows)
	return nil
}
