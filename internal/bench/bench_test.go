package bench

import (
	"math"
	"os"
	"strings"
	"testing"

	"repro/internal/inncabs"
	"repro/internal/machine"
	"repro/internal/sim"
)

func TestStrongScalingSeries(t *testing.T) {
	b, err := inncabs.ByName("alignment")
	if err != nil {
		t.Fatal(err)
	}
	s, err := StrongScaling(b, inncabs.Test, machine.IvyBridge(), []int{1, 4, 20})
	if err != nil {
		t.Fatal(err)
	}
	if len(s.Points) != 3 || s.Benchmark != "alignment" {
		t.Fatalf("series = %+v", s)
	}
	if s.Result(sim.HPX, 4).Cores != 4 {
		t.Fatal("Result lookup broken")
	}
	if s.Result(sim.HPX, 99).Cores != 0 {
		t.Fatal("missing point not zero")
	}
	// Coarse tasks: near-perfect speedup at 4 cores.
	if sp := s.Speedup(sim.HPX, 4); sp < 3 || sp > 4.1 {
		t.Fatalf("4-core speedup = %v", sp)
	}
	if got := s.ScalesTo(sim.HPX); got != "to 20" {
		t.Fatalf("ScalesTo = %q", got)
	}
}

func TestScalesToClassifications(t *testing.T) {
	mkSeries := func(times map[int]int64) Series {
		var s Series
		for _, k := range []int{1, 2, 4, 10, 20} {
			s.Points = append(s.Points, Point{Cores: k, HPX: sim.Result{MakespanNs: times[k]}})
		}
		return s
	}
	flat := mkSeries(map[int]int64{1: 1000, 2: 990, 4: 985, 10: 980, 20: 978})
	if got := flat.ScalesTo(sim.HPX); got != "no scaling" {
		t.Errorf("flat series = %q", got)
	}
	knee := mkSeries(map[int]int64{1: 1000, 2: 500, 4: 245, 10: 240, 20: 238})
	if got := knee.ScalesTo(sim.HPX); got != "to 4" {
		t.Errorf("knee series = %q", got)
	}
	failed := knee
	failed.Points[2].HPX.Failed = true
	if got := failed.ScalesTo(sim.HPX); got != "fail" {
		t.Errorf("failed series = %q", got)
	}
}

func TestDefaultCores(t *testing.T) {
	cores := DefaultCores()
	if cores[0] != 1 || cores[len(cores)-1] != 20 {
		t.Fatalf("DefaultCores = %v", cores)
	}
	for i := 1; i < len(cores); i++ {
		if cores[i] <= cores[i-1] {
			t.Fatal("cores not increasing")
		}
	}
}

func TestIDsAndDescribe(t *testing.T) {
	ids := IDs()
	if len(ids) != 6+14 {
		t.Fatalf("IDs = %v", ids)
	}
	if ids[0] != "table1" || ids[6] != "fig1" || ids[len(ids)-1] != "fig14" {
		t.Fatalf("ordering: %v", ids)
	}
	for _, id := range ids {
		if Describe(id) == "unknown" {
			t.Errorf("no description for %s", id)
		}
	}
	if Describe("nope") != "unknown" {
		t.Error("unknown id described")
	}
}

func TestRunEveryExperimentAtTestSize(t *testing.T) {
	m := machine.IvyBridge()
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			var sb strings.Builder
			if err := Run(&sb, id, inncabs.Test, m); err != nil {
				t.Fatalf("Run(%s): %v", id, err)
			}
			if sb.Len() == 0 {
				t.Fatalf("Run(%s) produced no output", id)
			}
		})
	}
	var sb strings.Builder
	if err := Run(&sb, "fig99", inncabs.Test, m); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestTable1Cells(t *testing.T) {
	var sb strings.Builder
	if err := Table1(&sb, inncabs.Test, machine.IvyBridge()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"alignment", "uts", "TAU", "HPCToolkit"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table1 missing %q:\n%s", want, out)
		}
	}
}

func TestTable5Cells(t *testing.T) {
	var sb strings.Builder
	if err := Table5(&sb, inncabs.Test, machine.IvyBridge()); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"alignment", "Loop Like", "Recursive Unbalanced",
		"mult. mutex/task", "coarse", "very fine"} {
		if !strings.Contains(out, want) {
			t.Fatalf("table5 missing %q", want)
		}
	}
	// Every benchmark appears exactly once.
	for _, b := range inncabs.All() {
		if strings.Count(out, b.Name+" ") == 0 {
			t.Errorf("table5 missing row for %s", b.Name)
		}
	}
}

func TestRenderTableAlignment(t *testing.T) {
	var sb strings.Builder
	RenderTable(&sb, "T", []string{"a", "bb"}, [][]string{{"xxx", "y"}, {"z"}})
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), sb.String())
	}
	if len(lines[1]) != len(lines[3]) || len(lines[3]) != len(lines[4]) {
		t.Fatalf("ragged table:\n%s", sb.String())
	}
}

func TestRenderChart(t *testing.T) {
	var sb strings.Builder
	RenderChart(&sb, "title", "x", "y", []ChartSeries{
		{Name: "s1", Marker: 'A', X: []float64{1, 2, 4}, Y: []float64{100, 50, 25}},
	})
	out := sb.String()
	if !strings.Contains(out, "A") || !strings.Contains(out, "s1") {
		t.Fatalf("chart = %q", out)
	}
	// All-failed series renders a notice, not a panic.
	sb.Reset()
	nan := []float64{0, 0}
	RenderChart(&sb, "t", "x", "y", []ChartSeries{{Name: "f", Marker: 'F', X: []float64{1, 2}, Y: nan}})
	if !strings.Contains(sb.String(), "no data") {
		t.Fatalf("empty chart = %q", sb.String())
	}
}

func TestFormatSI(t *testing.T) {
	cases := map[float64]string{
		5:       "5",
		5000:    "5k",
		5e6:     "5M",
		5e9:     "5G",
		1234567: "1.23M",
	}
	for v, want := range cases {
		if got := formatSI(v); got != want {
			t.Errorf("formatSI(%v) = %q want %q", v, got, want)
		}
	}
}

func TestWriteCSV(t *testing.T) {
	var sb strings.Builder
	WriteCSV(&sb, []string{"a", "b"}, [][]string{{"1", "2"}, {"3", "4"}})
	if sb.String() != "a,b\n1,2\n3,4\n" {
		t.Fatalf("csv = %q", sb.String())
	}
}

func TestExportFigureCSV(t *testing.T) {
	var sb strings.Builder
	if err := ExportFigureCSV(&sb, "fig1", inncabs.Test, machine.IvyBridge()); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	if len(lines) != 1+len(DefaultCores()) {
		t.Fatalf("csv lines = %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "benchmark,cores,hpx_time_s") {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "alignment,1,") {
		t.Fatalf("first row = %q", lines[1])
	}
	if err := ExportFigureCSV(&sb, "table5", inncabs.Test, machine.IvyBridge()); err == nil {
		t.Fatal("table id accepted as figure")
	}
}

func TestExportAllCSV(t *testing.T) {
	dir := t.TempDir()
	files, err := ExportAllCSV(dir, inncabs.Test, machine.IvyBridge())
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 14 {
		t.Fatalf("exported %d files", len(files))
	}
	for _, f := range files {
		st, err := os.Stat(f)
		if err != nil || st.Size() == 0 {
			t.Fatalf("file %s: %v (size %d)", f, err, st.Size())
		}
	}
}

func TestGrainSweepShape(t *testing.T) {
	points, err := GrainSweep(machine.IvyBridge(), 16)
	if err != nil {
		t.Fatal(err)
	}
	if len(points) < 8 {
		t.Fatalf("sweep points = %d", len(points))
	}
	first, last := points[0], points[len(points)-1]
	// Very fine tasks: the baseline fails or loses badly.
	if first.StdOverHPX != 0 && first.StdOverHPX < 3 {
		t.Fatalf("fine grain std/hpx = %v, want fail or >= 3", first.StdOverHPX)
	}
	// Coarse tasks: the runtimes converge.
	if last.StdOverHPX < 0.8 || last.StdOverHPX > 1.25 {
		t.Fatalf("coarse grain std/hpx = %v, want ~1", last.StdOverHPX)
	}
	// HPX overhead share decays monotonically with grain.
	for i := 1; i < len(points); i++ {
		if points[i].HPXOverheadShare > points[i-1].HPXOverheadShare+1e-9 {
			t.Fatalf("overhead share not decaying at %gus: %v -> %v",
				points[i].GrainUs, points[i-1].HPXOverheadShare, points[i].HPXOverheadShare)
		}
	}
	// The std/hpx ratio decays monotonically over the completed range.
	prev := math.Inf(1)
	for _, p := range points {
		if p.StdOverHPX == 0 {
			continue
		}
		if p.StdOverHPX > prev+1e-9 {
			t.Fatalf("std/hpx ratio not decaying at %gus", p.GrainUs)
		}
		prev = p.StdOverHPX
	}
}

func TestCoresForEpyc(t *testing.T) {
	cores := CoresFor(machine.EpycRome())
	if cores[0] != 1 || cores[len(cores)-1] != 64 {
		t.Fatalf("epyc cores = %v", cores)
	}
	has := func(k int) bool {
		for _, c := range cores {
			if c == k {
				return true
			}
		}
		return false
	}
	if !has(32) || !has(34) {
		t.Fatalf("socket boundary points missing: %v", cores)
	}
	if got := CoresFor(machine.IvyBridge()); len(got) != len(DefaultCores()) {
		t.Fatalf("ivybridge cores = %v", got)
	}
}

func TestFigureOnEpyc(t *testing.T) {
	var sb strings.Builder
	if err := Run(&sb, "fig6", inncabs.Test, machine.EpycRome()); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "64") {
		t.Fatalf("epyc figure lacks the 64-core point:\n%s", sb.String())
	}
}
