// Package tree implements the hierarchical counter aggregation overlay:
// a deterministic k-ary reduction tree over localities in which every
// node samples its own registry with one zero-alloc batch, folds its
// children's subtree digests with the commutative core.Digest algebra,
// and forwards exactly one bounded parcel upward per tick. The root's
// per-tick cost is O(k·log_k n) parcels instead of the flat monitor's
// O(n), which is what makes a 10k-locality fleet observable from one
// process.
//
// Freshness is explicit, never assumed: each subtree digest carries its
// sample generation and fold time, a parent serves a child's data as
// stale once it misses a round (StaleAfter) and drops it entirely after
// DropAfter, and anything less than a full, current fold is labelled
// Partial all the way to the root. Interior failures self-heal: a child
// whose parent stops accepting pushes re-attaches to its grandparent
// (walking further up the ancestor chain if needed) by pure rank
// arithmetic — no coordination, no new protocol — and the adopting node
// evicts the dead interior's digest the moment the first orphan arrives,
// so a repaired subtree is never counted twice.
package tree

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/parcel"
)

// ErrNodeDown reports an operation on a killed node — the in-process
// stand-in for a crashed locality, treated by peers exactly like a
// transport failure.
var ErrNodeDown = errors.New("tree: node is down")

// Transport pushes one subtree digest to a peer node. Implementations:
// LocalTransport (same-process fleets) and ClientTransport (loopback or
// remote parcel wire).
type Transport interface {
	Push(ctx context.Context, d *parcel.TreeDigest) error
}

// Config parameterises one overlay node.
type Config struct {
	// Fanout is k, the tree arity. Default 4.
	Fanout int
	// Interval is the expected tick period; it sizes the default
	// freshness windows.
	Interval time.Duration
	// StaleAfter is the child age beyond which its data is folded as
	// stale (default 2×Interval); DropAfter the age beyond which it is
	// excluded from the fold entirely (default 4×Interval). Dropping is
	// what prevents double-counting once the child re-attaches elsewhere.
	StaleAfter time.Duration
	DropAfter  time.Duration
	// Counters are the counter type paths every locality samples, e.g.
	// "/threads/idle-rate"; each node binds them against its own
	// locality instance.
	Counters []string
	// Resolve returns a transport to the node holding the given rank.
	// Required on non-root nodes; consulted again after re-parenting.
	Resolve func(rank int) (Transport, error)
	// Now is the clock (default time.Now); tests and the fleet bench
	// substitute a virtual one.
	Now func() time.Time
	// PushTimeout bounds one upward push (default 2s).
	PushTimeout time.Duration
}

func (c Config) withDefaults() Config {
	if c.Fanout <= 0 {
		c.Fanout = 4
	}
	if c.Interval <= 0 {
		c.Interval = time.Second
	}
	if c.StaleAfter <= 0 {
		c.StaleAfter = 2 * c.Interval
	}
	if c.DropAfter <= 0 {
		c.DropAfter = 4 * c.Interval
	}
	if c.Now == nil {
		c.Now = time.Now
	}
	if c.PushTimeout <= 0 {
		c.PushTimeout = 2 * time.Second
	}
	return c
}

// ParentRank returns a rank's structural parent in the k-ary layout
// (rank 0 is the root and its own parent).
func ParentRank(rank, k int) int {
	if rank <= 0 {
		return 0
	}
	return (rank - 1) / k
}

// ChildRanks appends rank's structural children under fanout k within a
// fleet of n ranks.
func ChildRanks(rank, k, n int, dst []int) []int {
	for c := k*rank + 1; c <= k*rank+k && c < n; c++ {
		dst = append(dst, c)
	}
	return dst
}

// Depth returns a rank's depth in edges below the root.
func Depth(rank, k int) int {
	d := 0
	for rank > 0 {
		rank = ParentRank(rank, k)
		d++
	}
	return d
}

// repairCandidates is the deterministic re-attachment order when the
// parent stops answering: first the grandparent, then the failed
// parent's siblings ascending, then recursively the same list one level
// higher. Every orphan of one dead interior computes the same list, so
// the repaired topology is a function of (dead set, rank arithmetic)
// alone.
func repairCandidates(parent, k int, dst []int) []int {
	for parent > 0 {
		gp := ParentRank(parent, k)
		dst = append(dst, gp)
		for c := k*gp + 1; c <= k*gp+k; c++ {
			if c != parent {
				dst = append(dst, c)
			}
		}
		parent = gp
	}
	return dst
}

// childState is what a parent holds per attached child subtree.
type childState struct {
	last *parcel.TreeDigest
	recv time.Time
}

// Node is one overlay participant: a sampler of its own locality, an
// aggregator of its children, and a pusher to its parent.
type Node struct {
	reg  *core.Registry
	loc  int64
	rank int
	cfg  Config

	set *core.BindSet

	mu        sync.Mutex
	dead      bool
	parent    int // current parent rank (-1 once fallen back past root)
	transport Transport
	children  map[int]*childState
	// evicted holds structural children whose digests were evicted when
	// their orphans re-attached here: the interior is dead, its own
	// locality's sample is missing, and the fold stays Partial until the
	// rank pushes again.
	evicted   map[int]bool
	gen       int64
	snapshot  *parcel.TreeDigest
	reparents int64

	// Overlay gauges, exported through the node's registry as
	// /agas{locality#L/total}/tree/*.
	depthC     *core.RawCounter
	childrenC  *core.RawCounter
	reparentsC *core.RawCounter
	partialC   *core.RawCounter
	pushNsC    *core.RawCounter

	// scratch buffers reused across ticks (zero steady-state allocs on
	// the sampling path).
	valBuf  []core.Value
	keyBuf  []string
	digests map[string]*core.Digest
}

// NewNode builds the overlay node for one locality. The registry may be
// private to the locality (wire fleets) or shared (in-process fleets —
// counter names carry the locality id, so one registry can host the
// whole simulated fleet without per-locality registry overhead).
// Counters that don't resolve yet bind leniently and are skipped until
// registered.
func NewNode(reg *core.Registry, locality int64, rank int, cfg Config) (*Node, error) {
	cfg = cfg.withDefaults()
	names := make([]string, 0, len(cfg.Counters))
	for _, tp := range cfg.Counters {
		full, err := core.LocalityFullName(tp, locality)
		if err != nil {
			return nil, fmt.Errorf("tree: counter %q: %w", tp, err)
		}
		names = append(names, full)
	}
	n := &Node{
		reg: reg, loc: locality, rank: rank, cfg: cfg,
		set:      reg.BindSetLenient(names),
		parent:   ParentRank(rank, cfg.Fanout),
		children: map[int]*childState{},
		digests:  map[string]*core.Digest{},
	}
	mk := func(counter, help, unit string) (*core.RawCounter, error) {
		c := core.NewLocalityRaw("agas", "tree/"+counter, locality, help, unit)
		if err := reg.Register(c); err != nil {
			return nil, err
		}
		return c, nil
	}
	var err error
	if n.depthC, err = mk("depth", "this node's depth in the aggregation overlay (edges below root)", core.UnitNone); err != nil {
		return nil, err
	}
	if n.childrenC, err = mk("children", "child subtrees currently attached to this node", core.UnitNone); err != nil {
		return nil, err
	}
	if n.reparentsC, err = mk("reparents", "re-parenting repairs performed by this node", core.UnitEvents); err != nil {
		return nil, err
	}
	if n.partialC, err = mk("partial-subtrees", "attached subtrees folded stale or dropped last tick", core.UnitNone); err != nil {
		return nil, err
	}
	if n.pushNsC, err = mk("push-ns", "last tick's fold+push cost", core.UnitNanoseconds); err != nil {
		return nil, err
	}
	n.depthC.Add(int64(Depth(rank, cfg.Fanout)))
	return n, nil
}

// Rank returns the node's overlay rank.
func (n *Node) Rank() int { return n.rank }

// Locality returns the node's locality id.
func (n *Node) Locality() int64 { return n.loc }

// Parent returns the current parent rank (which repairs may have moved
// above the structural parent).
func (n *Node) Parent() int {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.parent
}

// Reparents returns how many re-parenting repairs this node performed.
func (n *Node) Reparents() int64 {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.reparents
}

// Kill marks the node dead: pushes to it, pulls from it and its own
// ticks all fail, as on a crashed locality.
func (n *Node) Kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	n.dead = true
}

// TreePush implements parcel.TreeNode: accept one child subtree's
// digest. Pushes are generation-keyed — replays and reordered retries
// of older folds are dropped — and a push from a rank deeper than a
// structural child evicts the dead interior it must have replaced, so a
// re-attached subtree never counts twice.
func (n *Node) TreePush(d *parcel.TreeDigest) error {
	if d == nil {
		return errors.New("tree: nil digest")
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead {
		return ErrNodeDown
	}
	cs := n.children[d.Rank]
	if cs == nil {
		cs = &childState{}
		n.children[d.Rank] = cs
		n.adoptLocked(d.Rank)
	}
	delete(n.evicted, d.Rank) // a push from an evicted rank means it is back
	if cs.last != nil && d.Gen <= cs.last.Gen {
		return nil // replay of an already-folded generation
	}
	cs.last = d
	cs.recv = n.cfg.Now()
	return nil
}

// adoptLocked handles a first push from rank r. If r is not one of this
// node's structural children, it is an orphan re-attached by repair;
// the structural child whose subtree contains r is therefore dead, and
// holding on to its digest would double-count the orphan, so it is
// evicted immediately.
func (n *Node) adoptLocked(r int) {
	k := n.cfg.Fanout
	if ParentRank(r, k) == n.rank {
		return // structural child
	}
	// Walk the orphan's ancestor chain; the ancestor that is our direct
	// structural child is the interior it escaped from.
	for a := ParentRank(r, k); a > n.rank; a = ParentRank(a, k) {
		if ParentRank(a, k) == n.rank {
			if _, held := n.children[a]; held {
				delete(n.children, a)
				if n.evicted == nil {
					n.evicted = map[int]bool{}
				}
				n.evicted[a] = true
			}
			return
		}
	}
}

// TreeSnapshot implements parcel.TreeNode: the latest folded view.
func (n *Node) TreeSnapshot() (*parcel.TreeDigest, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.dead {
		return nil, ErrNodeDown
	}
	if n.snapshot == nil {
		return nil, errors.New("tree: no fold yet")
	}
	return n.snapshot, nil
}

// Tick performs one overlay round: sample the local registry, fold the
// attached children, publish the snapshot, and (on non-root nodes) push
// it upward — repairing the parent link if the push fails like a dead
// peer. Returns the snapshot.
func (n *Node) Tick(ctx context.Context) (*parcel.TreeDigest, error) {
	n.mu.Lock()
	if n.dead {
		n.mu.Unlock()
		return nil, ErrNodeDown
	}
	start := n.cfg.Now()

	// Local sample: one zero-alloc batch over the bound counters.
	n.valBuf = n.set.EvaluateBatch(n.valBuf[:0], false)
	for k := range n.digests {
		delete(n.digests, k)
	}
	for i, v := range n.valBuf {
		key := core.WildcardLocality(v.Name)
		d := n.digests[key]
		if d == nil {
			d = &core.Digest{Key: key}
		}
		if !d.FoldValue(v) {
			continue // unknown/invalid: a gap, not a zero
		}
		n.digests[key] = d
		// Histogram-backed counters carry their full distribution so the
		// root answers fleet quantiles, not just moments.
		if h := n.set.Handle(i); h.Valid() {
			if ds, ok := h.Counter().(core.DistributionSnapshotter); ok {
				hs := ds.HistogramSnapshot().Compact()
				d.Merge(core.Digest{Hist: &hs})
			}
		}
	}

	// Fold children by age class: fresh folds as-is, stale folds with
	// every sample reclassified, dropped is excluded (it re-attached
	// elsewhere or is gone — either way its data no longer belongs here).
	snap := &parcel.TreeDigest{
		Root: n.loc, Rank: n.rank,
		Localities: 1, Depth: 0,
	}
	partialChildren := int64(0)
	for r, cs := range n.children {
		if cs.last == nil {
			continue
		}
		age := start.Sub(cs.recv)
		if age > n.cfg.DropAfter {
			// Excluded and remembered: the subtree stays a labelled gap
			// (not silently forgotten) until its root pushes again.
			delete(n.children, r)
			if n.evicted == nil {
				n.evicted = map[int]bool{}
			}
			n.evicted[r] = true
			continue
		}
		stale := age > n.cfg.StaleAfter
		if stale {
			snap.Partial = true
			partialChildren++
			snap.StaleLocalities += cs.last.Localities - cs.last.StaleLocalities
		}
		for _, e := range cs.last.Entries {
			if stale {
				e.MarkStale()
			}
			d := n.digests[e.Key]
			if d == nil {
				d = &core.Digest{Key: e.Key}
				n.digests[e.Key] = d
			}
			d.Merge(e)
		}
		snap.Localities += cs.last.Localities
		snap.StaleLocalities += cs.last.StaleLocalities
		snap.Reparents += cs.last.Reparents
		if cs.last.Partial {
			snap.Partial = true
		}
		if cs.last.Depth+1 > snap.Depth {
			snap.Depth = cs.last.Depth + 1
		}
	}

	if len(n.evicted) > 0 {
		// Subtrees evicted on adoption or dropped for age are still
		// gone: their data is missing from this fold.
		snap.Partial = true
		partialChildren += int64(len(n.evicted))
	}

	n.gen++
	snap.Gen = n.gen
	snap.Time = start
	snap.Reparents += n.reparents
	n.keyBuf = n.keyBuf[:0]
	for k := range n.digests {
		n.keyBuf = append(n.keyBuf, k)
	}
	sort.Strings(n.keyBuf)
	snap.Entries = make([]core.Digest, 0, len(n.keyBuf))
	for _, k := range n.keyBuf {
		snap.Entries = append(snap.Entries, *n.digests[k])
	}
	n.snapshot = snap
	n.childrenC.Set(int64(len(n.children)))
	n.partialC.Set(partialChildren)

	rank := n.rank
	parent := n.parent
	transport := n.transport
	n.mu.Unlock()

	var pushErr error
	if rank != 0 && parent >= 0 {
		pushErr = n.pushUp(ctx, snap, parent, transport)
	}
	n.pushNsC.Set(n.cfg.Now().Sub(start).Nanoseconds())
	return snap, pushErr
}

// pushUp ships the snapshot to the current parent, advancing through
// the deterministic repair candidates when the peer looks dead. Bounded
// by the candidate list length, so one tick never spins.
func (n *Node) pushUp(ctx context.Context, snap *parcel.TreeDigest, parent int, transport Transport) error {
	candidates := repairCandidates(parent, n.cfg.Fanout, []int{parent})
	baseReparents := snap.Reparents
	for _, cand := range candidates {
		if cand == n.rank {
			continue // never adopt ourselves
		}
		if transport == nil || cand != parent {
			if n.cfg.Resolve == nil {
				return fmt.Errorf("tree: rank %d has no Resolve", n.rank)
			}
			t, err := n.cfg.Resolve(cand)
			if err != nil {
				continue
			}
			transport = t
		}
		if cand != parent {
			// This push, if it lands, is itself the repair — count it in
			// the digest being delivered, not one round later.
			snap.Reparents = baseReparents + 1
		}
		pctx, cancel := context.WithTimeout(ctx, n.cfg.PushTimeout)
		err := transport.Push(pctx, snap)
		cancel()
		if err == nil {
			n.mu.Lock()
			if cand != n.parent {
				n.reparents++
				n.reparentsC.Inc()
			}
			n.parent = cand
			n.transport = transport
			n.mu.Unlock()
			return nil
		}
		if !isDownErr(err) {
			return err
		}
		transport = nil
	}
	return fmt.Errorf("tree: rank %d found no live parent (tried %v): %w",
		n.rank, candidates, ErrNodeDown)
}

// isDownErr classifies a push failure as "the peer is not there":
// breaker-open, dial failure, killed in-process node, or a peer that is
// up but no longer runs a tree node. Anything else (timeouts on a live
// connection, protocol errors) is ambiguous and does NOT trigger
// re-parenting — the generation key makes retrying on the same parent
// safe.
func isDownErr(err error) bool {
	if errors.Is(err, parcel.ErrCircuitOpen) || errors.Is(err, ErrNodeDown) ||
		errors.Is(err, parcel.ErrNoTreeNode) {
		return true
	}
	var de *parcel.DialError
	return errors.As(err, &de)
}

// LocalTransport delivers pushes to a same-process node directly.
type LocalTransport struct{ Dst *Node }

// Push implements Transport.
func (t LocalTransport) Push(_ context.Context, d *parcel.TreeDigest) error {
	return t.Dst.TreePush(d)
}

// ClientTransport delivers pushes over a parcel client.
type ClientTransport struct{ Client *parcel.Client }

// Push implements Transport.
func (t ClientTransport) Push(ctx context.Context, d *parcel.TreeDigest) error {
	return t.Client.TreePush(ctx, d)
}

// ExportValues renders the node's latest fold as counter values for the
// telemetry plane: every digest entry's statistics plus one freshness
// series per attached child subtree
// (/agas{locality#L/total}/tree/subtree-age-ns@child=R, StatusStale when
// the subtree has missed a round). Appends to dst.
func (n *Node) ExportValues(dst []core.Value) []core.Value {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.snapshot == nil {
		return dst
	}
	at := n.snapshot.Time
	for _, e := range n.snapshot.Entries {
		dst = e.Values(at, dst)
	}
	ageName := core.Name{Object: "agas", Counter: "tree/subtree-age-ns"}.
		WithInstances(core.LocalityInstance(n.loc, "total", -1)...)
	ranks := make([]int, 0, len(n.children))
	for r := range n.children {
		ranks = append(ranks, r)
	}
	sort.Ints(ranks)
	for _, r := range ranks {
		cs := n.children[r]
		if cs.last == nil {
			continue
		}
		nm := ageName
		nm.Parameters = fmt.Sprintf("child=%d", r)
		age := at.Sub(cs.recv)
		status := core.StatusValid
		if age > n.cfg.StaleAfter {
			status = core.StatusStale
		}
		dst = append(dst, core.Value{
			Name: nm.String(), Raw: age.Nanoseconds(),
			Count: int64(cs.last.Localities), Time: at, Status: status,
		})
	}
	return dst
}
