package tree

// Fleet builds a whole simulated aggregation overlay in one process:
// n localities, each with task-runtime counters derived from the paper's
// simulator, arranged in the deterministic k-ary layout. All in-process
// localities share ONE registry — counter names carry the locality id,
// so the shared registry hosts the fleet at a fraction of the per-
// locality-registry footprint (a private registry costs ~31KB of cost
// histograms alone; 10k of them would be >300MB for nothing).
//
// To keep the transport honest, the bottom fan-in can be real: the last
// WireLeaves leaves run their own registry behind a loopback parcel
// server and push digests through the actual tree_push wire op, breaker
// and all, while the interior stays in-process.

import (
	"context"
	"fmt"
	"io"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
	"repro/internal/parcel"
	"repro/internal/sim"
)

// FleetCounters is the default counter set every fleet locality samples
// into the overlay.
var FleetCounters = []string{
	"/threads/count/cumulative",
	"/threads/time/cumulative",
	"/threads/idle-rate",
	"/threads/time/task-duration",
	"/runtime/uptime",
}

// FleetConfig parameterises a simulated overlay.
type FleetConfig struct {
	// N is the number of localities (= overlay ranks).
	N int
	// Fanout is the tree arity (default 4).
	Fanout int
	// WireLeaves is how many of the deepest leaves attach over real
	// loopback parcel servers instead of in-process transports.
	WireLeaves int
	// Counters overrides FleetCounters when non-nil.
	Counters []string
	// Interval is the overlay tick period (freshness windows derive from
	// it; the fleet itself ticks on demand).
	Interval time.Duration
	// Now substitutes a virtual clock.
	Now func() time.Time
}

// wireLeaf is one leaf locality running behind a real parcel server.
type wireLeaf struct {
	node *Node
	srv  *parcel.Server
	cli  *parcel.Client // to the structural parent's server
}

// Fleet is a fully wired simulated overlay.
type Fleet struct {
	// Reg is the registry shared by all in-process localities; the root's
	// counters (and every interior's) live here.
	Reg *core.Registry
	// Nodes holds every overlay node, indexed by rank. Rank r is
	// locality r.
	Nodes []*Node

	cfg     FleetConfig
	servers map[int]*parcel.Server // loopback servers for wire parents
	clients []*parcel.Client
	wires   []*wireLeaf
}

// NewFleet builds the overlay: shared-registry nodes for the interior
// and in-process leaves, simulator-derived counters per locality, and
// (optionally) real parcel servers under the deepest leaves.
func NewFleet(cfg FleetConfig) (*Fleet, error) {
	if cfg.N <= 0 {
		return nil, fmt.Errorf("tree: fleet size %d", cfg.N)
	}
	if cfg.Fanout <= 0 {
		cfg.Fanout = 4
	}
	if cfg.Interval <= 0 {
		cfg.Interval = time.Second
	}
	if cfg.Counters == nil {
		cfg.Counters = FleetCounters
	}
	if cfg.WireLeaves > cfg.N-1 {
		cfg.WireLeaves = cfg.N - 1
	}
	reg := core.NewRegistry()
	f := &Fleet{Reg: reg, cfg: cfg, servers: map[int]*parcel.Server{}}

	profiles, err := fleetProfiles()
	if err != nil {
		return nil, err
	}

	f.Nodes = make([]*Node, cfg.N)
	nodeCfg := Config{
		Fanout:   cfg.Fanout,
		Interval: cfg.Interval,
		Counters: cfg.Counters,
		Now:      cfg.Now,
		Resolve:  f.resolve,
	}
	wireStart := cfg.N - cfg.WireLeaves
	for r := 0; r < cfg.N; r++ {
		nodeReg := reg
		if r >= wireStart {
			// Wire leaves own a private registry, like a real remote
			// locality would.
			nodeReg = core.NewRegistry()
		}
		if err := registerFleetLocality(nodeReg, int64(r), profiles[r%len(profiles)], r); err != nil {
			f.Close()
			return nil, err
		}
		n, err := NewNode(nodeReg, int64(r), r, nodeCfg)
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Nodes[r] = n
	}

	// Wire the bottom fan-in: each wire leaf pushes to its structural
	// parent through a loopback parcel server attached to that parent.
	for r := wireStart; r < cfg.N; r++ {
		leaf := f.Nodes[r]
		parent := ParentRank(r, cfg.Fanout)
		srv, err := f.serverFor(parent)
		if err != nil {
			f.Close()
			return nil, err
		}
		cli, err := parcel.Dial(srv.Addr(), nil, int64(r))
		if err != nil {
			f.Close()
			return nil, err
		}
		f.clients = append(f.clients, cli)
		leaf.mu.Lock()
		leaf.transport = ClientTransport{Client: cli}
		leaf.mu.Unlock()
		f.wires = append(f.wires, &wireLeaf{node: leaf, srv: srv, cli: cli})
	}
	return f, nil
}

// serverFor lazily starts a loopback parcel server fronting rank r's
// node, so wire leaves (and tests) can reach it through the real
// transport.
func (f *Fleet) serverFor(r int) (*parcel.Server, error) {
	if srv, ok := f.servers[r]; ok {
		return srv, nil
	}
	srv, err := parcel.Serve("127.0.0.1:0", core.NewRegistry(), int64(r))
	if err != nil {
		return nil, err
	}
	srv.SetTreeNode(f.Nodes[r])
	f.servers[r] = srv
	return srv, nil
}

// resolve maps a rank to a transport: in-process nodes are reached
// directly, wire-fronted ones through their server.
func (f *Fleet) resolve(rank int) (Transport, error) {
	if rank < 0 || rank >= len(f.Nodes) {
		return nil, fmt.Errorf("tree: no rank %d", rank)
	}
	return LocalTransport{Dst: f.Nodes[rank]}, nil
}

// Root returns the overlay root.
func (f *Fleet) Root() *Node { return f.Nodes[0] }

// Tick runs one overlay round, deepest ranks first so every digest
// reaches the root within the round (in a distributed deployment the
// same convergence takes depth ticks; ordering here just makes tests
// and benchmarks deterministic). Returns the root's snapshot.
func (f *Fleet) Tick(ctx context.Context) (*parcel.TreeDigest, error) {
	var rootSnap *parcel.TreeDigest
	var firstErr error
	for r := len(f.Nodes) - 1; r >= 0; r-- {
		snap, err := f.Nodes[r].Tick(ctx)
		if r == 0 {
			rootSnap = snap
		}
		if err != nil && firstErr == nil && !isDownErr(err) {
			// Down errors are the overlay's normal partial/repair regime,
			// visible in the digests; anything else is a real fault.
			firstErr = err
		}
	}
	return rootSnap, firstErr
}

// Close shuts down any loopback servers and clients.
func (f *Fleet) Close() {
	for _, c := range f.clients {
		c.Close()
	}
	for _, s := range f.servers {
		s.Close()
	}
}

// fleetProfiles runs the paper's simulator once per workload profile;
// localities reuse the handful of results (with per-rank jitter applied
// at registration) instead of paying 10k simulator runs at startup.
func fleetProfiles() ([]sim.Result, error) {
	m := machine.IvyBridge()
	graphs := []*sim.Graph{
		fanGraph("balanced", 256, 40_000),
		fanGraph("fine", 1024, 4_000),
		fanGraph("coarse", 64, 400_000),
	}
	out := make([]sim.Result, 0, len(graphs))
	for _, g := range graphs {
		res, err := sim.Run(sim.Config{Machine: m, Cores: 16, Mode: sim.HPX}, g)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// fanGraph builds a flat fork/join of n leaves of the given grain.
func fanGraph(label string, n int, grainNs int64) *sim.Graph {
	root := &sim.Node{PreNs: grainNs}
	for i := 0; i < n; i++ {
		root.Children = append(root.Children, sim.Leaf(grainNs, grainNs/4))
	}
	return &sim.Graph{Label: label, Root: root}
}

// registerFleetLocality registers one locality's counters: the profile's
// values with deterministic per-rank jitter, under the standard
// /threads and /runtime names, plus a histogram-backed task-duration
// distribution so fleet-wide quantiles exercise the digest's histogram
// path.
func registerFleetLocality(reg *core.Registry, loc int64, p sim.Result, rank int) error {
	// jitter in [0.9, 1.1), deterministic in rank.
	j := 0.9 + float64((rank*2654435761)%1000)/5000.0
	scale := func(v int64) int64 { return int64(float64(v) * j) }

	specs := []struct {
		object, counter, help, unit string
		value                       int64
	}{
		{"threads", "count/cumulative", "tasks executed (simulated)", core.UnitEvents, scale(p.Tasks)},
		{"threads", "time/cumulative", "cumulative task time (simulated)", core.UnitNanoseconds, scale(p.TaskTimeNs)},
		{"threads", "idle-rate", "idle rate (simulated, 0.01%)", "0.01%", scale(int64(p.IdleRate() * 10000))},
		{"runtime", "uptime", "makespan (simulated)", core.UnitNanoseconds, scale(p.MakespanNs)},
	}
	for _, s := range specs {
		v := s.value
		name := core.Name{Object: s.object, Counter: s.counter}.
			WithInstances(core.LocalityInstance(loc, "total", -1)...)
		info := core.Info{TypeName: "/" + s.object + "/" + s.counter,
			HelpText: s.help, Unit: s.unit, Version: "1.0"}
		if err := reg.Register(core.NewFuncCounter(name, info, 0,
			func() int64 { return v }, nil)); err != nil {
			return err
		}
	}

	// A histogram-backed task-duration distribution on a slice of the
	// fleet (full bucket tables are ~8KB a piece — every 8th locality
	// keeps a 10k fleet cheap while still exercising the digest's
	// histogram merge up the tree; the others are lenient-bind gaps).
	if rank%8 == 0 {
		hname := core.Name{Object: "threads", Counter: "time/task-duration"}.
			WithInstances(core.LocalityInstance(loc, "total", -1)...)
		hc := core.NewHistogramCounter(hname, core.Info{
			TypeName: "/threads/time/task-duration",
			HelpText: "per-task duration distribution (simulated)",
			Unit:     core.UnitNanoseconds, Version: "1.0"})
		avg := scale(int64(p.AvgTaskNs()))
		if avg <= 0 {
			avg = 1
		}
		for i := 0; i < 32; i++ {
			hc.Record(avg * int64(i%7+1) / 4)
		}
		if err := reg.Register(hc); err != nil {
			return err
		}
	}
	return nil
}

// KillRank marks a rank dead and closes its loopback server if one
// exists, so both in-process and wire children see it vanish.
func (f *Fleet) KillRank(r int) {
	f.Nodes[r].Kill()
	if srv, ok := f.servers[r]; ok {
		srv.Close()
		delete(f.servers, r)
	}
}

// TopologyChild is one attached subtree in a topology dump, with its
// freshness at dump time.
type TopologyChild struct {
	Rank       int   `json:"rank"`
	Localities int   `json:"localities"`
	Depth      int   `json:"depth"`
	Gen        int64 `json:"gen"`
	AgeNs      int64 `json:"age_ns"`
	Stale      bool  `json:"stale"`
	Partial    bool  `json:"partial"`
}

// TopologyNode is one overlay rank in a topology dump.
type TopologyNode struct {
	Rank      int             `json:"rank"`
	Locality  int64           `json:"locality"`
	Depth     int             `json:"depth"`
	Parent    int             `json:"parent"`
	Kind      string          `json:"kind"` // root | node | dead
	Reparents int64           `json:"reparents,omitempty"`
	Children  []TopologyChild `json:"children,omitempty"`
}

// Topology is the overlay shape at one instant: the deterministic k-ary
// layout plus whatever repairs have moved links off it.
type Topology struct {
	Localities int            `json:"localities"`
	Fanout     int            `json:"fanout"`
	MaxDepth   int            `json:"max_depth"`
	Dead       int            `json:"dead"`
	Nodes      []TopologyNode `json:"nodes"`
}

// Topology captures the overlay shape — rank, locality, depth, parent,
// attached children and per-subtree freshness. maxDepth limits how far
// below the root nodes are included (< 0 = the whole overlay); on a 10k
// fleet the top few levels are what an operator can actually read.
func (f *Fleet) Topology(now time.Time, maxDepth int) Topology {
	top := Topology{
		Localities: len(f.Nodes),
		Fanout:     f.cfg.Fanout,
		MaxDepth:   Depth(len(f.Nodes)-1, f.cfg.Fanout),
	}
	for _, n := range f.Nodes {
		n.mu.Lock()
		depth := Depth(n.rank, n.cfg.Fanout)
		if n.dead {
			top.Dead++
		}
		if maxDepth >= 0 && depth > maxDepth {
			n.mu.Unlock()
			continue
		}
		kind := "node"
		if n.rank == 0 {
			kind = "root"
		} else if n.dead {
			kind = "dead"
		}
		tn := TopologyNode{
			Rank: n.rank, Locality: n.loc, Depth: depth,
			Parent: n.parent, Kind: kind, Reparents: n.reparents,
		}
		ranks := make([]int, 0, len(n.children))
		for r := range n.children {
			ranks = append(ranks, r)
		}
		sort.Ints(ranks)
		for _, r := range ranks {
			cs := n.children[r]
			if cs.last == nil {
				continue
			}
			age := now.Sub(cs.recv)
			tn.Children = append(tn.Children, TopologyChild{
				Rank: r, Localities: cs.last.Localities, Depth: cs.last.Depth,
				Gen: cs.last.Gen, AgeNs: age.Nanoseconds(),
				Stale: age > n.cfg.StaleAfter, Partial: cs.last.Partial,
			})
		}
		n.mu.Unlock()
		top.Nodes = append(top.Nodes, tn)
	}
	return top
}

// PrintTopology writes the overlay shape in human-readable form, for
// counterls -tree and debugging.
func (f *Fleet) PrintTopology(w io.Writer, now time.Time) {
	top := f.Topology(now, -1)
	fmt.Fprintf(w, "overlay: %d localities, fanout %d, depth %d, %d dead\n",
		top.Localities, top.Fanout, top.MaxDepth, top.Dead)
	for _, n := range top.Nodes {
		fmt.Fprintf(w, "rank %-5d locality#%-5d depth %d parent %-5d %-4s children %d\n",
			n.Rank, n.Locality, n.Depth, n.Parent, n.Kind, len(n.Children))
		for _, c := range n.Children {
			state := "fresh"
			if c.Stale {
				state = "stale"
			}
			fmt.Fprintf(w, "  child rank %-5d localities %-5d depth %d gen %-6d age %-10v %s partial %v\n",
				c.Rank, c.Localities, c.Depth, c.Gen,
				time.Duration(c.AgeNs).Round(time.Millisecond), state, c.Partial)
		}
	}
}
