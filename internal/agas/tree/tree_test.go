package tree

import (
	"context"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/parcel"
)

func TestRankArithmetic(t *testing.T) {
	if ParentRank(0, 4) != 0 {
		t.Fatal("root's parent must be itself")
	}
	// k=2: 0 -> {1,2}, 1 -> {3,4}, 2 -> {5,6}
	for child, parent := range map[int]int{1: 0, 2: 0, 3: 1, 4: 1, 5: 2, 6: 2} {
		if got := ParentRank(child, 2); got != parent {
			t.Fatalf("ParentRank(%d, 2) = %d, want %d", child, got, parent)
		}
	}
	kids := ChildRanks(1, 2, 7, nil)
	if len(kids) != 2 || kids[0] != 3 || kids[1] != 4 {
		t.Fatalf("ChildRanks(1,2,7) = %v", kids)
	}
	if kids := ChildRanks(3, 2, 7, nil); len(kids) != 0 {
		t.Fatalf("leaf has children: %v", kids)
	}
	if Depth(0, 2) != 0 || Depth(2, 2) != 1 || Depth(6, 2) != 2 {
		t.Fatal("depth arithmetic wrong")
	}
	// Every orphan of dead rank 1 (k=2) computes the same deterministic
	// repair order: grandparent 0, then sibling 2 of the dead parent.
	c := repairCandidates(1, 2, nil)
	if len(c) < 2 || c[0] != 0 || c[1] != 2 {
		t.Fatalf("repairCandidates(1,2) = %v, want [0 2]", c)
	}
	// Deeper: rank 7's parent 3 dies (k=2) -> gp 1, uncle 4, then 1's
	// repair chain (0, 2).
	c = repairCandidates(3, 2, nil)
	if len(c) != 4 || c[0] != 1 || c[1] != 4 || c[2] != 0 || c[3] != 2 {
		t.Fatalf("repairCandidates(3,2) = %v", c)
	}
}

// virtualClock is a manually advanced clock shared by a fleet.
type virtualClock struct{ t time.Time }

func (c *virtualClock) now() time.Time          { return c.t }
func (c *virtualClock) advance(d time.Duration) { c.t = c.t.Add(d) }

func newTestFleet(t *testing.T, n, fanout, wireLeaves int) (*Fleet, *virtualClock) {
	t.Helper()
	clk := &virtualClock{t: time.Unix(1700000000, 0)}
	f, err := NewFleet(FleetConfig{
		N: n, Fanout: fanout, WireLeaves: wireLeaves,
		Interval: time.Second, Now: clk.now,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(f.Close)
	return f, clk
}

// flatSum evaluates one counter across every live locality directly —
// the O(n) ground truth the tree must reproduce exactly.
func flatSum(t *testing.T, f *Fleet, typePath string) (sum float64, count int64) {
	t.Helper()
	for _, n := range f.Nodes {
		full, err := core.LocalityFullName(typePath, n.loc)
		if err != nil {
			t.Fatal(err)
		}
		v, err := n.reg.Evaluate(full, false)
		if err != nil {
			continue // gap (e.g. histogram slice)
		}
		if v.Valid() {
			sum += v.Float64()
			count++
		}
	}
	return sum, count
}

func TestFleetFoldMatchesFlatSweep(t *testing.T) {
	f, clk := newTestFleet(t, 21, 4, 0)
	clk.advance(time.Second)
	snap, err := f.Tick(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if snap.Localities != 21 {
		t.Fatalf("root folded %d localities, want 21", snap.Localities)
	}
	if snap.Partial || snap.StaleLocalities != 0 {
		t.Fatalf("healthy fleet reported partial/stale: %+v", snap)
	}
	if snap.Depth != Depth(20, 4) {
		t.Fatalf("root depth = %d, want %d", snap.Depth, Depth(20, 4))
	}

	byKey := map[string]core.Digest{}
	for _, e := range snap.Entries {
		byKey[e.Key] = e
	}
	for _, tp := range []string{"/threads/count/cumulative", "/threads/idle-rate", "/runtime/uptime"} {
		key := core.WildcardLocality(mustFullName(t, tp, 0))
		d, ok := byKey[key]
		if !ok {
			t.Fatalf("no digest for %s (have %v)", key, keys(byKey))
		}
		wantSum, wantCount := flatSum(t, f, tp)
		if d.Count != wantCount {
			t.Fatalf("%s count = %d, want %d", key, d.Count, wantCount)
		}
		if diff := d.Sum - wantSum; diff > 1e-6 || diff < -1e-6 {
			t.Fatalf("%s sum = %v, want %v", key, d.Sum, wantSum)
		}
		if d.Min > d.Max || d.Sum < d.Min*float64(d.Count)-1e-6 || d.Sum > d.Max*float64(d.Count)+1e-6 {
			t.Fatalf("%s moments inconsistent: %+v", key, d)
		}
	}

	// The histogram slice (every 8th rank) merged up: 21 localities ->
	// ranks 0, 8, 16 -> 3×32 observations at the root.
	hkey := core.WildcardLocality(mustFullName(t, "/threads/time/task-duration", 0))
	hd, ok := byKey[hkey]
	if !ok || hd.Hist == nil {
		t.Fatalf("no merged histogram at root: %+v", hd)
	}
	if hd.Count != 3 || hd.Hist.N != 3*32 {
		t.Fatalf("histogram fold = count %d, N %d; want 3 and 96", hd.Count, hd.Hist.N)
	}
	if _, ok := hd.Hist.Quantile(0.5); !ok {
		t.Fatal("merged histogram serves no median")
	}
}

func mustFullName(t *testing.T, typePath string, loc int64) string {
	t.Helper()
	full, err := core.LocalityFullName(typePath, loc)
	if err != nil {
		t.Fatal(err)
	}
	return full
}

func keys(m map[string]core.Digest) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return out
}

func TestStaleAndDropComposition(t *testing.T) {
	f, clk := newTestFleet(t, 7, 2, 0)
	ctx := context.Background()
	clk.advance(time.Second)
	if _, err := f.Tick(ctx); err != nil {
		t.Fatal(err)
	}

	// Leaf 6 stops ticking. One missed round: still fresh enough
	// (StaleAfter = 2×Interval).
	tickAllBut := func(skip int) {
		clk.advance(time.Second)
		for r := len(f.Nodes) - 1; r >= 0; r-- {
			if r == skip {
				continue
			}
			f.Nodes[r].Tick(ctx)
		}
	}
	tickAllBut(6)
	snap, _ := f.Root().TreeSnapshot()
	if snap.Partial || snap.Localities != 7 {
		t.Fatalf("one missed round already partial: %+v", snap)
	}

	// Once leaf 6's digest ages past StaleAfter (2×Interval) it is
	// folded stale: root partial, but still counted.
	tickAllBut(6)
	tickAllBut(6)
	snap, _ = f.Root().TreeSnapshot()
	if !snap.Partial || snap.Localities != 7 || snap.StaleLocalities != 1 {
		t.Fatalf("stale subtree not labelled: %+v", snap)
	}
	// The per-key digests carry the stale share without going stale
	// themselves (partial-but-live composition).
	for _, e := range snap.Entries {
		if e.Key == core.WildcardLocality(mustFullName(t, "/threads/idle-rate", 0)) {
			if e.Stale != 1 || e.AllStale() {
				t.Fatalf("stale composition on %s: %+v", e.Key, e)
			}
		}
	}

	// Past DropAfter the subtree is excluded entirely: no double
	// counting, count drops to 6, still partial.
	tickAllBut(6)
	tickAllBut(6)
	tickAllBut(6)
	snap, _ = f.Root().TreeSnapshot()
	if !snap.Partial || snap.Localities != 6 {
		t.Fatalf("dropped subtree still counted: %+v", snap)
	}
}

func TestInteriorDeathRepairs(t *testing.T) {
	f, clk := newTestFleet(t, 7, 2, 0)
	ctx := context.Background()
	clk.advance(time.Second)
	if _, err := f.Tick(ctx); err != nil {
		t.Fatal(err)
	}

	// Kill interior rank 1 (children 3 and 4, parent 0).
	f.KillRank(1)
	clk.advance(time.Second)
	snap, err := f.Tick(ctx)
	if err != nil {
		t.Fatal(err)
	}

	// Children re-attached deterministically to the grandparent (root).
	if p := f.Nodes[3].Parent(); p != 0 {
		t.Fatalf("rank 3 re-attached to %d, want grandparent 0", p)
	}
	if p := f.Nodes[4].Parent(); p != 0 {
		t.Fatalf("rank 4 re-attached to %d, want grandparent 0", p)
	}
	if f.Nodes[3].Reparents() < 1 || f.Nodes[4].Reparents() < 1 {
		t.Fatal("re-parenting not counted")
	}

	// The root adopted the orphans, evicted the dead interior's digest
	// immediately (no double count), and labels the fold partial:
	// locality 1's own sample is gone until the node returns.
	if snap.Localities != 6 {
		t.Fatalf("root folded %d localities after repair, want 6", snap.Localities)
	}
	if !snap.Partial {
		t.Fatal("repaired fold not labelled partial")
	}
	if snap.Reparents < 2 {
		t.Fatalf("root reparents = %d, want >= 2", snap.Reparents)
	}

	// Sum check: the fold equals the flat sweep minus dead locality 1.
	byKey := map[string]core.Digest{}
	for _, e := range snap.Entries {
		byKey[e.Key] = e
	}
	key := core.WildcardLocality(mustFullName(t, "/threads/count/cumulative", 0))
	full1 := mustFullName(t, "/threads/count/cumulative", 1)
	v1, err := f.Reg.Evaluate(full1, false)
	if err != nil {
		t.Fatal(err)
	}
	wantSum, _ := flatSum(t, f, "/threads/count/cumulative")
	wantSum -= v1.Float64()
	d := byKey[key]
	if d.Count != 6 {
		t.Fatalf("digest count = %d, want 6", d.Count)
	}
	if diff := d.Sum - wantSum; diff > 1e-6 || diff < -1e-6 {
		t.Fatalf("repaired sum = %v, want %v", d.Sum, wantSum)
	}

	// Steady state after repair: next round is clean except the dead
	// locality, and no further re-parenting happens.
	re3 := f.Nodes[3].Reparents()
	clk.advance(time.Second)
	if _, err := f.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	if f.Nodes[3].Reparents() != re3 {
		t.Fatal("repair flapped")
	}
}

func TestNodePushGenerationReplay(t *testing.T) {
	f, clk := newTestFleet(t, 3, 2, 0)
	ctx := context.Background()
	clk.advance(time.Second)
	if _, err := f.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	root := f.Root()
	child := f.Nodes[1]
	snap, err := child.TreeSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	// Replaying the child's current generation must not change the
	// root's held state (retry idempotency).
	before := root.children[1].last.Gen
	if err := root.TreePush(snap); err != nil {
		t.Fatal(err)
	}
	if root.children[1].last.Gen != before {
		t.Fatal("replayed generation displaced state")
	}
	if err := root.TreePush(nil); err == nil {
		t.Fatal("nil digest accepted")
	}
}

func TestWireLeavesFoldThroughParcelServers(t *testing.T) {
	f, clk := newTestFleet(t, 7, 2, 3)
	ctx := context.Background()
	clk.advance(time.Second)
	snap, err := f.Tick(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if snap.Localities != 7 || snap.Partial {
		t.Fatalf("wire-leaf fleet fold = %+v, want all 7 localities", snap)
	}
	// The wire leaves really did go through loopback servers.
	if len(f.wires) != 3 {
		t.Fatalf("wire leaves = %d", len(f.wires))
	}
}

func TestExportValues(t *testing.T) {
	f, clk := newTestFleet(t, 7, 2, 0)
	ctx := context.Background()
	clk.advance(time.Second)
	if _, err := f.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	vals := f.Root().ExportValues(nil)
	if len(vals) == 0 {
		t.Fatal("no exported values")
	}
	var sawAvg, sawAge bool
	for _, v := range vals {
		if strings.Contains(v.Name, "/idle-rate@avg") {
			sawAvg = true
			if !v.Valid() {
				t.Fatalf("healthy digest stat not valid: %+v", v)
			}
		}
		if strings.Contains(v.Name, "tree/subtree-age-ns@child=1") {
			sawAge = true
			if v.Status == core.StatusStale {
				t.Fatalf("fresh subtree exported stale: %+v", v)
			}
		}
	}
	if !sawAvg || !sawAge {
		t.Fatalf("missing exported series (avg=%v age=%v): %v", sawAvg, sawAge, names(vals))
	}

	// Overlay gauges live in the shared registry under the locality's
	// instance.
	v, err := f.Reg.Evaluate("/agas{locality#0/total}/tree/children", false)
	if err != nil || v.Raw != 2 {
		t.Fatalf("children gauge = %+v, %v", v, err)
	}
	v, err = f.Reg.Evaluate("/agas{locality#0/total}/tree/depth", false)
	if err != nil || v.Raw != 0 {
		t.Fatalf("depth gauge = %+v, %v", v, err)
	}
}

func names(vals []core.Value) []string {
	out := make([]string, len(vals))
	for i, v := range vals {
		out[i] = v.Name
	}
	return out
}

func TestKilledNodeRefusesOps(t *testing.T) {
	f, clk := newTestFleet(t, 3, 2, 0)
	ctx := context.Background()
	clk.advance(time.Second)
	if _, err := f.Tick(ctx); err != nil {
		t.Fatal(err)
	}
	f.KillRank(2)
	if _, err := f.Nodes[2].Tick(ctx); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("dead tick err = %v", err)
	}
	if err := f.Nodes[2].TreePush(&parcel.TreeDigest{Rank: 5, Gen: 9}); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("dead push err = %v", err)
	}
	if _, err := f.Nodes[2].TreeSnapshot(); !errors.Is(err, ErrNodeDown) {
		t.Fatalf("dead snapshot err = %v", err)
	}
}
