package tree

// Fleet-scale aggregation benchmark: per-tick cost at the ROOT of the
// overlay versus a flat O(n) sweep of the same counters, at n = 10,
// 100, 1k and 10k simulated localities. The root's work is bounded by
// its fanout — fold k child digests plus one local sample — so its cost
// must stay flat while the baseline grows linearly; that gap is the
// whole point of the tree. TestWriteTreeBenchJSON persists the numbers
// into BENCH_taskrt.json (section "aggregation_tree") via
// scripts/bench.sh.

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
)

var treeBenchSizes = []int{10, 100, 1000, 10000}

// rootTickNs measures the root's steady-state per-tick cost: every
// child digest is already held (one full warm round ran), so this is
// the pure fold-and-publish path the root pays each round regardless of
// fleet size.
func rootTickNs(tb testing.TB, f *Fleet, reps int) float64 {
	tb.Helper()
	ctx := context.Background()
	if _, err := f.Tick(ctx); err != nil {
		tb.Fatal(err)
	}
	begin := time.Now()
	for i := 0; i < reps; i++ {
		if _, err := f.Root().Tick(ctx); err != nil {
			tb.Fatal(err)
		}
	}
	return float64(time.Since(begin).Nanoseconds()) / float64(reps)
}

// flatSweepNs measures the O(n) baseline the tree replaces: one bound
// batch over every locality's counters in the shared registry.
func flatSweepNs(tb testing.TB, f *Fleet, reps int) float64 {
	tb.Helper()
	names := make([]string, 0, len(f.Nodes)*len(FleetCounters))
	for _, n := range f.Nodes {
		for _, tp := range FleetCounters {
			full, err := core.LocalityFullName(tp, n.loc)
			if err != nil {
				tb.Fatal(err)
			}
			names = append(names, full)
		}
	}
	set := f.Reg.BindSetLenient(names)
	var buf []core.Value
	buf = set.EvaluateBatch(buf, false) // warm
	begin := time.Now()
	for i := 0; i < reps; i++ {
		buf = set.EvaluateBatch(buf, false)
	}
	_ = buf
	return float64(time.Since(begin).Nanoseconds()) / float64(reps)
}

func BenchmarkRootTick(b *testing.B) {
	for _, n := range treeBenchSizes {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			f, err := NewFleet(FleetConfig{N: n, Fanout: 8})
			if err != nil {
				b.Fatal(err)
			}
			defer f.Close()
			ctx := context.Background()
			if _, err := f.Tick(ctx); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := f.Root().Tick(ctx); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// treeBenchPoint is one row of the "aggregation_tree" BENCH section.
type treeBenchPoint struct {
	N                int     `json:"n_localities"`
	Fanout           int     `json:"fanout"`
	Depth            int     `json:"depth"`
	RootTickNs       float64 `json:"root_tick_ns"`
	FlatSweepNs      float64 `json:"flat_sweep_ns"`
	RootChildren     int     `json:"root_children"`
	FoldedLoc        int     `json:"folded_localities"`
	DigestEntries    int     `json:"digest_entries"`
	HistObservations int64   `json:"hist_observations"`
}

type treeBenchReport struct {
	GeneratedBy string           `json:"generated_by"`
	CPU         string           `json:"cpu"`
	Note        string           `json:"note"`
	Points      []treeBenchPoint `json:"points"`
}

// TestWriteTreeBenchJSON merges the aggregation-tree numbers into the
// "aggregation_tree" section of BENCH_taskrt.json (path in
// TASKRT_BENCH_JSON), preserving all other sections. Driven by
// scripts/bench.sh; skipped otherwise.
func TestWriteTreeBenchJSON(t *testing.T) {
	path := os.Getenv("TASKRT_BENCH_JSON")
	if path == "" {
		t.Skip("set TASKRT_BENCH_JSON=<path> to record the aggregation-tree benchmark")
	}
	rep := treeBenchReport{
		GeneratedBy: "go test -run TestWriteTreeBenchJSON (scripts/bench.sh)",
		CPU:         runtime.GOARCH,
		Note: "root_tick_ns is the root's steady-state fold+publish cost " +
			"(bounded by fanout, not fleet size); flat_sweep_ns is the O(n) " +
			"monitor it replaces",
	}
	const fanout = 8
	for _, n := range treeBenchSizes {
		f, err := NewFleet(FleetConfig{N: n, Fanout: fanout})
		if err != nil {
			t.Fatal(err)
		}
		reps := 200
		if n >= 10000 {
			reps = 50
		}
		rootNs := rootTickNs(t, f, reps)
		flatNs := flatSweepNs(t, f, reps)
		snap, err := f.Root().TreeSnapshot()
		if err != nil {
			t.Fatal(err)
		}
		var histN int64
		for _, e := range snap.Entries {
			if e.Hist != nil {
				histN += e.Hist.N
			}
		}
		rootChildren := len(f.Root().children)
		f.Close()
		rep.Points = append(rep.Points, treeBenchPoint{
			N: n, Fanout: fanout, Depth: snap.Depth,
			RootTickNs: rootNs, FlatSweepNs: flatNs,
			RootChildren: rootChildren, FoldedLoc: snap.Localities,
			DigestEntries: len(snap.Entries), HistObservations: histN,
		})
		t.Logf("n=%d: root tick %.0f ns (children %d, depth %d), flat sweep %.0f ns",
			n, rootNs, rootChildren, snap.Depth, flatNs)
	}

	doc := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(prev, &doc)
	}
	cur, err := json.MarshalIndent(rep, "  ", "  ")
	if err != nil {
		t.Fatal(err)
	}
	doc["aggregation_tree"] = cur
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
