package agas

// Remote-spawn routing: AGAS does not just name counters, it also
// learns which localities register each action (BindActions) and routes
// SpawnRemote calls to one of them through the parcel spawn plane. The
// router owns failover policy:
//
//   - a failure that proves the spawn never started on the chosen host
//     (open circuit breaker, dial error, unknown action, unknown spawn
//     key, full spawn table) redirects the spawn — same idempotency
//     key, next replica — and counts /remote/count/redirected;
//   - an ambiguous transport failure (the request may have arrived)
//     retries the SAME host with the SAME key, which the server's
//     dedupe table turns into exactly-once execution, and counts
//     /remote/count/retried;
//   - no replica left means a cancelled future carrying ErrNoReplica —
//     never a hang.
//
// The plane observes itself through the same counter fabric it serves:
// /runtime{locality#N/total}/remote/count/{spawned,completed,failed,
// retried,redirected,cancelled} here, plus .../orphaned on each parcel
// server (docs/COUNTERS.md).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
	"repro/internal/parcel"
)

// ErrNoReplica reports a spawn that could not be placed: no bound
// locality registers the action, or every replica was already ruled out
// by a definitely-not-executed failure. The future resolves cancelled.
var ErrNoReplica = errors.New("agas: no replica for action")

// remoteMeters is the spawn plane's self-observation. Exactly one of
// completed/failed/cancelled fires per spawned increment, so at
// quiesce spawned == completed + failed + cancelled always holds;
// retried and redirected count extra attempts on top.
type remoteMeters struct {
	spawned    *core.RawCounter
	completed  *core.RawCounter
	failed     *core.RawCounter
	retried    *core.RawCounter
	redirected *core.RawCounter
	cancelled  *core.RawCounter
}

func newRemoteMeters(locality int64) *remoteMeters {
	mk := func(name, help string) *core.RawCounter {
		return core.NewLocalityRaw("runtime", "remote/count/"+name, locality, help, core.UnitEvents)
	}
	return &remoteMeters{
		spawned:    mk("spawned", "remote spawns launched through the resolver"),
		completed:  mk("completed", "remote spawns that returned a result"),
		failed:     mk("failed", "remote spawns that ended in an action or transport failure"),
		retried:    mk("retried", "spawn attempts re-issued to the same replica after an ambiguous failure"),
		redirected: mk("redirected", "spawn attempts moved to another replica after a definitely-not-executed failure"),
		cancelled:  mk("cancelled", "remote spawns cancelled: caller context, remote cancel, or no replica"),
	}
}

func (m *remoteMeters) all() []*core.RawCounter {
	return []*core.RawCounter{m.spawned, m.completed, m.failed, m.retried, m.redirected, m.cancelled}
}

// noopRemoteMeters absorbs accounting on resolvers that never called
// EnableRemoteCounters; the counters exist but are registered nowhere.
var noopRemoteMeters = newRemoteMeters(-1)

// EnableRemoteCounters registers the spawn plane's six
// /runtime{locality#N/total}/remote/count/* counters into reg and
// activates accounting on this resolver.
func (r *Resolver) EnableRemoteCounters(reg *core.Registry, locality int64) error {
	m := newRemoteMeters(locality)
	for _, c := range m.all() {
		if err := reg.Register(c); err != nil {
			return err
		}
	}
	r.spawnMeters.Store(m)
	return nil
}

func (r *Resolver) meters() *remoteMeters {
	if m := r.spawnMeters.Load(); m != nil {
		return m
	}
	return noopRemoteMeters
}

// ActionSpawner is the capability the router needs from a remote
// binding to place work on it — *parcel.Client provides it. A remote
// bound with a provider lacking it simply never receives spawns.
type ActionSpawner interface {
	// SpawnAction launches (or dedupes into) the spawn under key.
	SpawnAction(ctx context.Context, action string, arg json.RawMessage, key string) (parcel.SpawnStatus, error)
	// WaitSpawn waits for the spawn's terminal state.
	WaitSpawn(ctx context.Context, key string) (parcel.SpawnStatus, error)
	// CancelSpawn abandons the spawn best-effort.
	CancelSpawn(ctx context.Context, key string) error
}

// BindActions records that locality id registers the named actions, so
// SpawnRemote can route (and fail over) to it. The id must already be
// bound; binding the same action on several localities declares them
// replicas of each other.
func (r *Resolver) BindActions(id int64, actions ...string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	_, local := r.localities[id]
	_, remote := r.remotes[id]
	if !local && !remote {
		return fmt.Errorf("%w #%d", ErrUnknownLocality, id)
	}
	for _, a := range actions {
		if a == "" {
			return errors.New("agas: empty action name")
		}
		hosts := r.actions[a]
		dup := false
		for _, h := range hosts {
			if h == id {
				dup = true
				break
			}
		}
		if !dup {
			r.actions[a] = append(hosts, id)
		}
	}
	return nil
}

// ActionHosts returns the locality ids currently registering action, in
// binding order.
func (r *Resolver) ActionHosts(action string) []int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return append([]int64(nil), r.actions[action]...)
}

// spawnRoute picks the next replica for action: an untried spawner-
// capable host, preferring ones whose last counter query succeeded.
func (r *Resolver) spawnRoute(action string, tried map[int64]bool) (int64, ActionSpawner, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	var fbID int64
	var fb ActionSpawner
	for _, id := range r.actions[action] {
		if tried[id] {
			continue
		}
		sp, ok := r.remotes[id].(ActionSpawner)
		if !ok {
			continue
		}
		if h := r.health[id]; h == nil || h.Healthy() {
			return id, sp, true
		}
		if fb == nil {
			fbID, fb = id, sp
		}
	}
	return fbID, fb, fb != nil
}

// redirectable reports whether err proves the spawn is NOT executing on
// the host that produced it, making same-key placement on another
// replica safe: the breaker fast-failed before sending, the dial never
// connected, the host does not know the action, its table never
// admitted the key, or it refused admission outright.
func redirectable(err error) bool {
	var de *parcel.DialError
	return errors.Is(err, parcel.ErrCircuitOpen) ||
		errors.As(err, &de) ||
		errors.Is(err, parcel.ErrActionUnknown) ||
		errors.Is(err, parcel.ErrSpawnUnknown) ||
		errors.Is(err, parcel.ErrSpawnLimit)
}

// finishSpawn books the spawn's single terminal outcome.
func finishSpawn(m *remoteMeters, res json.RawMessage, err error) (json.RawMessage, error) {
	switch {
	case err == nil:
		m.completed.Inc()
	case errors.Is(err, context.Canceled),
		errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, parcel.ErrSpawnCancelled),
		errors.Is(err, ErrNoReplica):
		m.cancelled.Inc()
	default:
		m.failed.Inc()
	}
	return res, err
}

// spawnHostAttempts bounds same-host retries of an ambiguous failure
// before the spawn gives up on that outcome entirely.
const spawnHostAttempts = 3

// runSpawn is the failover loop behind SpawnRemoteCtx: one idempotency
// key for the spawn's whole life, replicas tried at most once each.
func (r *Resolver) runSpawn(ctx context.Context, action string, arg json.RawMessage) (json.RawMessage, error) {
	m := r.meters()
	m.spawned.Inc()
	key := fmt.Sprintf("r%x-%x", r.spawnEpoch, r.spawnSeq.Add(1))
	tried := make(map[int64]bool)
	var lastErr error
	first := true
	for {
		if err := ctx.Err(); err != nil {
			return finishSpawn(m, nil, err)
		}
		id, sp, ok := r.spawnRoute(action, tried)
		if !ok {
			err := fmt.Errorf("%w %q", ErrNoReplica, action)
			if lastErr != nil {
				err = fmt.Errorf("%w %q: last replica failed: %w", ErrNoReplica, action, lastErr)
			}
			return finishSpawn(m, nil, err)
		}
		if !first {
			m.redirected.Inc()
		}
		first = false
		tried[id] = true
		res, err, redirect := r.spawnOn(ctx, m, id, sp, action, arg, key)
		if redirect {
			lastErr = err
			continue
		}
		return finishSpawn(m, res, err)
	}
}

// spawnOn drives one replica to a terminal state. redirect=true means
// the spawn provably never started there and the caller should try the
// next replica under the same key.
func (r *Resolver) spawnOn(ctx context.Context, m *remoteMeters, id int64, sp ActionSpawner, action string, arg json.RawMessage, key string) (res json.RawMessage, err error, redirect bool) {
	var lastErr error
	for attempt := 0; attempt < spawnHostAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err, false
		}
		st, err := sp.SpawnAction(ctx, action, arg, key)
		if err != nil {
			r.recordHealth(id, err, false)
			if redirectable(err) {
				return nil, err, true
			}
			if ctx.Err() != nil {
				return nil, ctx.Err(), false
			}
			// Ambiguous: the spawn op may or may not have landed.
			// Re-issuing the same key is exactly-once either way.
			lastErr = err
			m.retried.Inc()
			continue
		}
		r.recordHealth(id, nil, false)
		if !st.Done {
			st, err = sp.WaitSpawn(ctx, key)
			if err != nil {
				// ctx ended mid-wait; WaitSpawn already sent the remote
				// cancel best-effort.
				return nil, err, false
			}
		}
		if st.Err != nil {
			if redirectable(st.Err) {
				return nil, st.Err, true
			}
			return nil, st.Err, false
		}
		return st.Result, nil, false
	}
	// The ambiguity persisted through every attempt: bound whatever may
	// be running server-side, then report the last failure.
	cctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = sp.CancelSpawn(cctx, key)
	return nil, lastErr, false
}

// SpawnFuture carries an in-flight routed remote spawn.
type SpawnFuture[R any] struct {
	done  chan struct{}
	value R
	err   error
}

// GetContext waits for the result until ctx is done, whichever comes
// first. Abandoning the wait does not cancel the remote work — the
// context the spawn was launched under governs that.
func (f *SpawnFuture[R]) GetContext(ctx context.Context) (R, error) {
	select {
	case <-f.done:
		return f.value, f.err
	case <-ctx.Done():
		var zero R
		return zero, ctx.Err()
	}
}

// Get waits for the result.
//
// Deprecated: Get blocks unboundedly even when the caller holds a
// deadline; prefer GetContext. It remains safe — the router never
// leaves a future unresolved, even with every replica partitioned —
// but GetContext makes the bound explicit at the wait site.
func (f *SpawnFuture[R]) Get() (R, error) {
	<-f.done
	return f.value, f.err
}

// Err waits for the future and reports how it completed: nil, a typed
// action failure (*parcel.ActionError, parcel.ErrActionUnknown), a
// cancellation (context errors, parcel.ErrSpawnCancelled, ErrNoReplica)
// or a transport failure.
func (f *SpawnFuture[R]) Err() error {
	<-f.done
	return f.err
}

// Ready reports whether Get would not block.
func (f *SpawnFuture[R]) Ready() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// SpawnRemote routes a remote action spawn to a locality registering it
// and returns a future — HPX's async(locality, action) with the
// locality chosen, and failed over, by AGAS.
func SpawnRemote[A, R any](r *Resolver, action string, arg A) *SpawnFuture[R] {
	return SpawnRemoteCtx[A, R](context.Background(), r, action, arg)
}

// SpawnRemoteCtx is SpawnRemote under a caller context: the remaining
// deadline budget ships with the spawn and bounds the action body on
// the remote side, and cancelling ctx sends a best-effort remote
// cancel. Pass a taskrt scope context (Runtime.CurrentContext) to tie
// the remote task's life to the local task tree's.
func SpawnRemoteCtx[A, R any](ctx context.Context, r *Resolver, action string, arg A) *SpawnFuture[R] {
	f := &SpawnFuture[R]{done: make(chan struct{})}
	raw, err := json.Marshal(arg)
	if err != nil {
		f.err = fmt.Errorf("agas: spawn %q argument marshal: %w", action, err)
		close(f.done)
		return f
	}
	go func() {
		defer close(f.done)
		res, err := r.runSpawn(ctx, action, raw)
		if err != nil {
			f.err = err
			return
		}
		if len(res) > 0 {
			f.err = json.Unmarshal(res, &f.value)
		}
	}()
	return f
}
