package agas

import (
	"errors"
	"testing"

	"repro/internal/core"
)

// bulkProvider is a CounterProvider+BulkProvider double that records how
// it was called, so tests can assert one exchange per locality.
type bulkProvider struct {
	flakyProvider
	bulkCalls  int
	lastNames  []string
	bulkErr    error
	shortReply bool
}

func (b *bulkProvider) EvaluateBulk(names []string, reset bool) ([]core.Value, error) {
	b.bulkCalls++
	b.lastNames = append([]string(nil), names...)
	if b.bulkErr != nil {
		return nil, b.bulkErr
	}
	vals := make([]core.Value, len(names))
	for i, n := range names {
		v, _ := b.flakyProvider.Evaluate(n, reset)
		vals[i] = v
	}
	if b.shortReply {
		vals = vals[:len(vals)-1]
	}
	return vals, nil
}

func TestEvaluateAcrossBulkGrouping(t *testing.T) {
	r := NewResolver()
	l0 := NewLocality(0, "local")
	if err := r.Bind(l0); err != nil {
		t.Fatal(err)
	}
	c := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative"})
	l0.Registry().MustRegister(c)
	c.Add(5)

	bp := &bulkProvider{flakyProvider: flakyProvider{v: core.Value{Raw: 9, Status: core.StatusValid}}}
	if err := r.BindRemote(2, bp); err != nil {
		t.Fatal(err)
	}
	plain := &flakyProvider{v: core.Value{Raw: 3, Status: core.StatusValid}}
	if err := r.BindRemote(4, plain); err != nil {
		t.Fatal(err)
	}

	// Interleaved on purpose: three names for the bulk remote must
	// collapse into ONE EvaluateBulk call while keeping input order.
	names := []string{
		"/threads{locality#2/worker-thread#0}/count/cumulative",
		"/threads{locality#0/total}/count/cumulative",
		"/threads{locality#2/worker-thread#1}/count/cumulative",
		"/threads{locality#4/total}/count/cumulative",
		"/threads{locality#2/worker-thread#2}/count/cumulative",
	}
	vals := r.EvaluateAcross(names, false)
	if bp.bulkCalls != 1 {
		t.Fatalf("bulk remote called %d times, want 1", bp.bulkCalls)
	}
	if len(bp.lastNames) != 3 {
		t.Fatalf("bulk call carried %d names, want 3: %v", len(bp.lastNames), bp.lastNames)
	}
	for i, v := range vals {
		if v.Name != names[i] {
			t.Fatalf("result %d is %q, want %q (order lost)", i, v.Name, names[i])
		}
	}
	for _, i := range []int{0, 2, 4} {
		if vals[i].Raw != 9 || !vals[i].Valid() {
			t.Fatalf("bulk slot %d = %+v", i, vals[i])
		}
	}
	if vals[1].Raw != 5 || vals[3].Raw != 3 {
		t.Fatalf("non-bulk slots = %+v / %+v", vals[1], vals[3])
	}
	h, _ := r.Health(2)
	if !h.Healthy() || h.Successes != 3 {
		t.Fatalf("bulk health = %+v, want 3 successes", h)
	}
}

func TestEvaluateAcrossBulkFallback(t *testing.T) {
	r := NewResolver()
	bp := &bulkProvider{
		flakyProvider: flakyProvider{v: core.Value{Raw: 7, Status: core.StatusValid}},
		bulkErr:       errors.New("bulk: wire down"),
	}
	if err := r.BindRemote(1, bp); err != nil {
		t.Fatal(err)
	}
	names := []string{
		"/threads{locality#1/worker-thread#0}/count/cumulative",
		"/threads{locality#1/worker-thread#1}/count/cumulative",
	}

	// Bulk exchange fails → per-name path still answers.
	vals := r.EvaluateAcross(names, false)
	if bp.bulkCalls != 1 {
		t.Fatalf("bulk attempted %d times, want 1", bp.bulkCalls)
	}
	for i, v := range vals {
		if v.Raw != 7 || !v.Valid() {
			t.Fatalf("fallback slot %d = %+v", i, v)
		}
	}

	// A malformed (short) reply is treated the same as a failure.
	bp.bulkErr = nil
	bp.shortReply = true
	vals = r.EvaluateAcross(names, false)
	for i, v := range vals {
		if v.Raw != 7 || !v.Valid() {
			t.Fatalf("short-reply fallback slot %d = %+v", i, v)
		}
	}
}

func TestEvaluateAcrossBulkGapsAndHealth(t *testing.T) {
	r := NewResolver()
	bp := &bulkProvider{flakyProvider: flakyProvider{v: core.Value{Raw: 1, Status: core.StatusValid}}}
	if err := r.BindRemote(6, bp); err != nil {
		t.Fatal(err)
	}
	names := []string{"/threads{locality#6/total}/count/cumulative"}

	// Stale values flow through but count against health, exactly like
	// the per-name path.
	bp.stale = true
	vals := r.EvaluateAcross(names, false)
	if vals[0].Status != core.StatusStale || vals[0].Raw != 1 {
		t.Fatalf("stale slot = %+v", vals[0])
	}
	h, _ := r.Health(6)
	if h.Healthy() || h.Failures != 1 {
		t.Fatalf("health after stale bulk = %+v", h)
	}

	// Unknown-counter gaps inside an otherwise-successful bulk reply are
	// per-name failures, not set-wide ones.
	bp.stale = false
	bp.v = core.Value{Status: core.StatusCounterUnknown}
	vals = r.EvaluateAcross(names, false)
	if vals[0].Valid() || vals[0].Name != names[0] {
		t.Fatalf("unknown slot = %+v", vals[0])
	}
	h, _ = r.Health(6)
	if h.Failures != 2 {
		t.Fatalf("health after unknown gap = %+v", h)
	}
}

func TestEvaluateAcrossDeduplicatesNames(t *testing.T) {
	r := NewResolver()

	// Local counter with destructive (reset) read semantics: if duplicates
	// were evaluated independently, the second read would see 0.
	l0 := NewLocality(0, "local")
	if err := r.Bind(l0); err != nil {
		t.Fatal(err)
	}
	c := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative"})
	l0.Registry().MustRegister(c)
	c.Add(5)

	bp := &bulkProvider{flakyProvider: flakyProvider{v: core.Value{Raw: 9, Status: core.StatusValid}}}
	if err := r.BindRemote(2, bp); err != nil {
		t.Fatal(err)
	}

	local := "/threads{locality#0/total}/count/cumulative"
	remote := "/threads{locality#2/total}/count/cumulative"
	names := []string{remote, local, remote, remote, local}
	vals := r.EvaluateAcross(names, true)

	// The bulk wire carried the remote name exactly once.
	if bp.bulkCalls != 1 {
		t.Fatalf("bulk remote called %d times, want 1", bp.bulkCalls)
	}
	if len(bp.lastNames) != 1 || bp.lastNames[0] != remote {
		t.Fatalf("bulk call carried %v, want exactly [%s]", bp.lastNames, remote)
	}

	// Every occurrence got the single evaluation's result — including the
	// duplicates of the reset local read, which must not observe the reset.
	for _, i := range []int{0, 2, 3} {
		if vals[i].Raw != 9 || !vals[i].Valid() {
			t.Fatalf("remote slot %d = %+v", i, vals[i])
		}
	}
	for _, i := range []int{1, 4} {
		if vals[i].Raw != 5 || !vals[i].Valid() {
			t.Fatalf("local slot %d = %+v (duplicate observed the reset?)", i, vals[i])
		}
	}
	for i, v := range vals {
		if v.Name != names[i] {
			t.Fatalf("result %d is %q, want %q (order lost)", i, v.Name, names[i])
		}
	}
	// One reset applied exactly once.
	if c.Load() != 0 {
		t.Fatal("reset did not apply")
	}
	// Health charged one success for the one exchange, not three.
	h, _ := r.Health(2)
	if h.Successes != 1 {
		t.Fatalf("bulk health = %+v, want exactly 1 success", h)
	}
}
