// Package agas is a miniature Active Global Address Space: it names
// localities (the HPX term for processes/nodes), holds each locality's
// counter registry, and resolves full counter names — including their
// locality#N instance prefix — to the owning locality. This is the
// mechanism behind the paper's claim that "any Performance Counter can
// be accessed remotely (from a different locality) or locally": the
// name itself carries the location.
//
// AGAS operations are themselves counted and exposed as
// /agas{locality#L/total}/count/{bind,resolve,unbind} counters.
package agas

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// ErrUnknownLocality is the typed failure for a resolution against an
// id that is not (or no longer) bound — what an Unbind racing an
// in-flight EvaluateAcross or SpawnRemote surfaces.
var ErrUnknownLocality = errors.New("agas: unknown locality")

// Locality is one participant: an id, a human-readable name and a
// counter registry.
type Locality struct {
	id       int64
	name     string
	registry *core.Registry

	binds    *core.RawCounter
	resolves *core.RawCounter
	unbinds  *core.RawCounter
}

// NewLocality creates a locality with a fresh registry and its AGAS
// counters registered.
func NewLocality(id int64, name string) *Locality {
	l := &Locality{id: id, name: name, registry: core.NewRegistry()}
	mk := func(op, help string) *core.RawCounter {
		cn := core.Name{Object: "agas", Counter: "count/" + op}.
			WithInstances(core.LocalityInstance(id, "total", -1)...)
		c := core.NewRawCounter(cn, core.Info{
			TypeName: "/agas/count/" + op, HelpText: help,
			Unit: core.UnitEvents, Version: "1.0",
		})
		l.registry.MustRegister(c)
		return c
	}
	l.binds = mk("bind", "names bound into AGAS")
	l.resolves = mk("resolve", "name resolutions served")
	l.unbinds = mk("unbind", "names removed from AGAS")
	return l
}

// ID returns the locality id used in counter instance names.
func (l *Locality) ID() int64 { return l.id }

// Name returns the locality's label.
func (l *Locality) Name() string { return l.name }

// Registry returns the locality's counter registry.
func (l *Locality) Registry() *core.Registry { return l.registry }

// CounterProvider is the minimal capability AGAS needs to route a
// counter query: local registries and remote parcel clients both
// provide it, so in-process and over-the-wire localities resolve
// identically.
type CounterProvider interface {
	// Evaluate reads one counter by full name, optionally resetting it.
	Evaluate(fullName string, reset bool) (core.Value, error)
}

// BulkProvider is the optional capability of sampling many counters in
// one exchange — *parcel.Client implements it via the evaluate_bulk
// wire op. EvaluateAcross groups names by locality and uses it when
// available, turning K counters per remote into one round trip per
// sample instead of K.
type BulkProvider interface {
	// EvaluateBulk reads the named counters together, results in input
	// order, optionally resetting each as part of the same read.
	EvaluateBulk(fullNames []string, reset bool) ([]core.Value, error)
}

// Health is the observed condition of one remote endpoint, updated on
// every routed counter query. Stale answers (core.StatusStale) count as
// failures: the transport delivered a cached value, not the endpoint.
type Health struct {
	// Consecutive is the current run of failed queries; 0 means the last
	// query succeeded.
	Consecutive int
	// Successes and Failures count queries over the endpoint's lifetime.
	Successes, Failures int64
	// LastError describes the most recent failure.
	LastError string
	// LastSuccess and LastFailure timestamp the most recent outcomes.
	LastSuccess, LastFailure time.Time
}

// Healthy reports whether the endpoint answered its last query.
func (h Health) Healthy() bool { return h.Consecutive == 0 }

// Resolver maps locality ids to localities (in-process) and remote
// counter providers (other processes, reached through package parcel),
// and tracks each remote endpoint's health.
type Resolver struct {
	mu         sync.RWMutex
	localities map[int64]*Locality
	remotes    map[int64]CounterProvider
	health     map[int64]*Health
	// actions maps an action name to the locality ids registering it —
	// the placement table SpawnRemote routes and fails over with
	// (spawn.go).
	actions map[string][]int64

	// The remote-spawn plane's self-observation (spawn.go).
	spawnMeters atomic.Pointer[remoteMeters]
	spawnSeq    atomic.Int64
	spawnEpoch  int64
}

// NewResolver creates an empty resolver.
func NewResolver() *Resolver {
	return &Resolver{
		localities: make(map[int64]*Locality),
		remotes:    make(map[int64]CounterProvider),
		health:     make(map[int64]*Health),
		actions:    make(map[string][]int64),
		spawnEpoch: time.Now().UnixNano(),
	}
}

// BindRemote registers a remote locality by its counter provider
// (typically a *parcel.Client). The id must not collide with a local or
// remote binding.
func (r *Resolver) BindRemote(id int64, p CounterProvider) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.localities[id]; dup {
		return fmt.Errorf("agas: locality#%d already bound locally", id)
	}
	if _, dup := r.remotes[id]; dup {
		return fmt.Errorf("agas: locality#%d already bound remotely", id)
	}
	r.remotes[id] = p
	r.health[id] = &Health{}
	return nil
}

// Health returns the recorded condition of a remote endpoint; ok is
// false for ids never bound via BindRemote.
func (r *Resolver) Health(id int64) (Health, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	h := r.health[id]
	if h == nil {
		return Health{}, false
	}
	return *h, true
}

// recordHealth folds one remote query outcome into the endpoint's
// health record.
func (r *Resolver) recordHealth(id int64, err error, stale bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.health[id]
	if h == nil {
		return
	}
	if err == nil && !stale {
		h.Consecutive = 0
		h.Successes++
		h.LastSuccess = time.Now()
		return
	}
	h.Consecutive++
	h.Failures++
	h.LastFailure = time.Now()
	if err != nil {
		h.LastError = err.Error()
	} else {
		h.LastError = "stale value served (endpoint unreachable)"
	}
}

// Bind registers a locality; rebinding an id is an error.
func (r *Resolver) Bind(l *Locality) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.localities[l.id]; dup {
		return fmt.Errorf("agas: locality#%d already bound", l.id)
	}
	r.localities[l.id] = l
	l.binds.Inc()
	return nil
}

// Unbind removes a locality — local or remote — together with any
// action placements it registered. Queries and spawns already in flight
// against it complete or fail with typed errors (ErrUnknownLocality,
// ErrNoReplica); new ones no longer route there.
func (r *Resolver) Unbind(id int64) {
	r.mu.Lock()
	l := r.localities[id]
	delete(r.localities, id)
	delete(r.remotes, id)
	delete(r.health, id)
	for action, hosts := range r.actions {
		kept := hosts[:0]
		for _, h := range hosts {
			if h != id {
				kept = append(kept, h)
			}
		}
		if len(kept) == 0 {
			delete(r.actions, action)
		} else {
			r.actions[action] = kept
		}
	}
	r.mu.Unlock()
	if l != nil {
		l.unbinds.Inc()
	}
}

// Resolve returns the locality with the given id.
func (r *Resolver) Resolve(id int64) (*Locality, error) {
	r.mu.RLock()
	l := r.localities[id]
	r.mu.RUnlock()
	if l == nil {
		return nil, fmt.Errorf("%w #%d", ErrUnknownLocality, id)
	}
	l.resolves.Inc()
	return l, nil
}

// Localities returns the bound ids in unspecified order.
func (r *Resolver) Localities() []int64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	ids := make([]int64, 0, len(r.localities))
	for id := range r.localities {
		ids = append(ids, id)
	}
	return ids
}

// LocalityOf extracts the owning locality id from a full counter name:
// the leading "locality#N" instance element. Statistics meta counters
// delegate to their embedded base counter.
func LocalityOf(n core.Name) (int64, error) {
	if n.BaseCounter != "" {
		base, err := core.ParseName(n.BaseCounter)
		if err != nil {
			return 0, err
		}
		return LocalityOf(base)
	}
	if len(n.Instances) == 0 || n.Instances[0].Name != "locality" || !n.Instances[0].HasIndex {
		return 0, fmt.Errorf("agas: counter %q carries no locality#N prefix", n)
	}
	return n.Instances[0].Index, nil
}

// EvaluateCounter resolves a full counter name across localities and
// evaluates it on its owner — local access and access to any other
// locality in the process are indistinguishable, as in HPX.
func (r *Resolver) EvaluateCounter(fullName string, reset bool) (core.Value, error) {
	n, err := core.ParseName(fullName)
	if err != nil {
		return core.Value{Name: fullName, Status: core.StatusCounterUnknown}, err
	}
	id, err := LocalityOf(n)
	if err != nil {
		return core.Value{Name: fullName, Status: core.StatusCounterUnknown}, err
	}
	r.mu.RLock()
	remote := r.remotes[id]
	r.mu.RUnlock()
	if remote != nil {
		v, err := remote.Evaluate(fullName, reset)
		r.recordHealth(id, err, v.Status == core.StatusStale)
		return v, err
	}
	l, err := r.Resolve(id)
	if err != nil {
		return core.Value{Name: fullName, Status: core.StatusCounterUnknown}, err
	}
	return l.registry.Evaluate(fullName, reset)
}

// EvaluateAcross evaluates one counter per full name, across however
// many localities the names resolve to, and never fails the batch: a
// name whose locality is down or unknown yields a gap — a Value whose
// Status says why (stale, unknown, invalid) — so aggregation degrades
// to partial results instead of erroring because one locality died.
//
// Names owned by a bulk-capable remote (BulkProvider) are grouped and
// sampled in one exchange per locality; everything else takes the
// per-name path. Results keep input order either way.
//
// Repeated full names (same spelling) are de-duplicated before routing:
// the counter is evaluated once and the result fanned out to every
// occurrence, so one careless caller cannot double-charge the bulk wire
// — or, with reset, read-and-reset the same counter twice in one batch.
func (r *Resolver) EvaluateAcross(fullNames []string, reset bool) []core.Value {
	out := make([]core.Value, len(fullNames))

	// firstIdx maps each distinct name to its first occurrence; dupsOf
	// collects the later occurrences to copy into after evaluation.
	firstIdx := make(map[string]int, len(fullNames))
	var dupsOf map[int][]int

	// Group names by bulk-capable remote locality; indices not routable
	// that way fall through to the per-name path below.
	type group struct {
		bp    BulkProvider
		names []string
		idxs  []int
	}
	groups := make(map[int64]*group)
	var rest []int
	for i, name := range fullNames {
		if j, seen := firstIdx[name]; seen {
			if dupsOf == nil {
				dupsOf = make(map[int][]int)
			}
			dupsOf[j] = append(dupsOf[j], i)
			continue
		}
		firstIdx[name] = i
		id, bp, ok := r.bulkRouteFor(name)
		if !ok {
			rest = append(rest, i)
			continue
		}
		g := groups[id]
		if g == nil {
			g = &group{bp: bp}
			groups[id] = g
		}
		g.names = append(g.names, name)
		g.idxs = append(g.idxs, i)
	}

	for id, g := range groups {
		vals, err := g.bp.EvaluateBulk(g.names, reset)
		if err != nil || len(vals) != len(g.names) {
			// The whole exchange failed (or answered malformed): fall
			// back to per-name queries, which record health themselves.
			rest = append(rest, g.idxs...)
			continue
		}
		for j, v := range vals {
			if v.Name == "" {
				v.Name = g.names[j]
			}
			out[g.idxs[j]] = v
			r.recordHealth(id, valueErr(v), v.Status == core.StatusStale)
		}
	}

	for _, i := range rest {
		v, err := r.EvaluateCounter(fullNames[i], reset)
		if err != nil {
			if v.Name == "" {
				v.Name = fullNames[i]
			}
			if v.Valid() {
				v.Status = core.StatusInvalidData
			}
		}
		out[i] = v
	}

	for j, idxs := range dupsOf {
		for _, i := range idxs {
			out[i] = out[j]
		}
	}
	return out
}

// bulkRouteFor resolves a full name to its owning locality's
// BulkProvider, if it has one.
func (r *Resolver) bulkRouteFor(fullName string) (int64, BulkProvider, bool) {
	n, err := core.ParseName(fullName)
	if err != nil {
		return 0, nil, false
	}
	id, err := LocalityOf(n)
	if err != nil {
		return 0, nil, false
	}
	r.mu.RLock()
	remote := r.remotes[id]
	r.mu.RUnlock()
	bp, ok := remote.(BulkProvider)
	return id, bp, ok
}

// valueErr maps a gap Value from a bulk result onto the error shape the
// per-name health accounting expects: unknown/invalid slots count as
// failures with a descriptive LastError, valid and stale ones do not
// (stale is handled by the caller's stale flag).
func valueErr(v core.Value) error {
	switch v.Status {
	case core.StatusCounterUnknown:
		return fmt.Errorf("agas: counter %q unknown on its locality", v.Name)
	case core.StatusInvalidData:
		return fmt.Errorf("agas: counter %q answered invalid data", v.Name)
	default:
		return nil
	}
}
