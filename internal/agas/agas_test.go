package agas

import (
	"testing"

	"repro/internal/core"
)

func TestLocalityCounters(t *testing.T) {
	l := NewLocality(2, "node-2")
	if l.ID() != 2 || l.Name() != "node-2" {
		t.Fatalf("identity: %d %q", l.ID(), l.Name())
	}
	for _, op := range []string{"bind", "resolve", "unbind"} {
		name := "/agas{locality#2/total}/count/" + op
		v, err := l.Registry().Evaluate(name, false)
		if err != nil {
			t.Fatalf("Evaluate(%s): %v", name, err)
		}
		if v.Raw != 0 {
			t.Fatalf("%s initial = %d", op, v.Raw)
		}
	}
}

func TestResolverBindResolve(t *testing.T) {
	r := NewResolver()
	l0 := NewLocality(0, "root")
	l1 := NewLocality(1, "peer")
	if err := r.Bind(l0); err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(l1); err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(NewLocality(0, "dup")); err == nil {
		t.Fatal("duplicate bind accepted")
	}
	got, err := r.Resolve(1)
	if err != nil || got != l1 {
		t.Fatalf("Resolve(1) = %v, %v", got, err)
	}
	if _, err := r.Resolve(9); err == nil {
		t.Fatal("unknown locality resolved")
	}
	if len(r.Localities()) != 2 {
		t.Fatalf("Localities = %v", r.Localities())
	}
	// Resolve was counted on the target locality.
	v, _ := l1.Registry().Evaluate("/agas{locality#1/total}/count/resolve", false)
	if v.Raw != 1 {
		t.Fatalf("resolve count = %d", v.Raw)
	}
	r.Unbind(1)
	if _, err := r.Resolve(1); err == nil {
		t.Fatal("unbound locality still resolves")
	}
}

func TestLocalityOf(t *testing.T) {
	cases := map[string]int64{
		"/threads{locality#0/total}/time/average":                              0,
		"/threads{locality#7/worker-thread#3}/idle-rate":                       7,
		"/statistics{/threads{locality#4/total}/count/cumulative}/average@100": 4,
	}
	for s, want := range cases {
		n, err := core.ParseName(s)
		if err != nil {
			t.Fatalf("ParseName(%q): %v", s, err)
		}
		got, err := LocalityOf(n)
		if err != nil || got != want {
			t.Errorf("LocalityOf(%q) = %d, %v want %d", s, got, err, want)
		}
	}
	bad, _ := core.ParseName("/arithmetics/add@/x{a#0/b}/c,/x{a#0/b}/d")
	if _, err := LocalityOf(bad); err == nil {
		t.Error("name without locality prefix accepted")
	}
}

func TestEvaluateCounterCrossLocality(t *testing.T) {
	r := NewResolver()
	l0 := NewLocality(0, "here")
	l1 := NewLocality(1, "there")
	if err := r.Bind(l0); err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(l1); err != nil {
		t.Fatal(err)
	}
	c := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(1, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative"})
	l1.Registry().MustRegister(c)
	c.Add(42)

	// Access by name alone: the resolver routes to locality 1.
	v, err := r.EvaluateCounter("/threads{locality#1/total}/count/cumulative", false)
	if err != nil || v.Raw != 42 {
		t.Fatalf("cross-locality evaluate = %+v, %v", v, err)
	}
	// Errors: unknown locality, unparsable name, missing counter.
	if _, err := r.EvaluateCounter("/threads{locality#5/total}/count/cumulative", false); err == nil {
		t.Fatal("unknown locality accepted")
	}
	if _, err := r.EvaluateCounter("garbage", false); err == nil {
		t.Fatal("garbage name accepted")
	}
	if _, err := r.EvaluateCounter("/threads{locality#0/total}/count/cumulative", false); err == nil {
		t.Fatal("missing counter on locality 0 accepted")
	}
}
