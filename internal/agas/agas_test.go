package agas

import (
	"errors"
	"testing"

	"repro/internal/core"
)

func TestLocalityCounters(t *testing.T) {
	l := NewLocality(2, "node-2")
	if l.ID() != 2 || l.Name() != "node-2" {
		t.Fatalf("identity: %d %q", l.ID(), l.Name())
	}
	for _, op := range []string{"bind", "resolve", "unbind"} {
		name := "/agas{locality#2/total}/count/" + op
		v, err := l.Registry().Evaluate(name, false)
		if err != nil {
			t.Fatalf("Evaluate(%s): %v", name, err)
		}
		if v.Raw != 0 {
			t.Fatalf("%s initial = %d", op, v.Raw)
		}
	}
}

func TestResolverBindResolve(t *testing.T) {
	r := NewResolver()
	l0 := NewLocality(0, "root")
	l1 := NewLocality(1, "peer")
	if err := r.Bind(l0); err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(l1); err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(NewLocality(0, "dup")); err == nil {
		t.Fatal("duplicate bind accepted")
	}
	got, err := r.Resolve(1)
	if err != nil || got != l1 {
		t.Fatalf("Resolve(1) = %v, %v", got, err)
	}
	if _, err := r.Resolve(9); err == nil {
		t.Fatal("unknown locality resolved")
	}
	if len(r.Localities()) != 2 {
		t.Fatalf("Localities = %v", r.Localities())
	}
	// Resolve was counted on the target locality.
	v, _ := l1.Registry().Evaluate("/agas{locality#1/total}/count/resolve", false)
	if v.Raw != 1 {
		t.Fatalf("resolve count = %d", v.Raw)
	}
	r.Unbind(1)
	if _, err := r.Resolve(1); err == nil {
		t.Fatal("unbound locality still resolves")
	}
}

func TestLocalityOf(t *testing.T) {
	cases := map[string]int64{
		"/threads{locality#0/total}/time/average":                              0,
		"/threads{locality#7/worker-thread#3}/idle-rate":                       7,
		"/statistics{/threads{locality#4/total}/count/cumulative}/average@100": 4,
	}
	for s, want := range cases {
		n, err := core.ParseName(s)
		if err != nil {
			t.Fatalf("ParseName(%q): %v", s, err)
		}
		got, err := LocalityOf(n)
		if err != nil || got != want {
			t.Errorf("LocalityOf(%q) = %d, %v want %d", s, got, err, want)
		}
	}
	bad, _ := core.ParseName("/arithmetics/add@/x{a#0/b}/c,/x{a#0/b}/d")
	if _, err := LocalityOf(bad); err == nil {
		t.Error("name without locality prefix accepted")
	}
}

func TestEvaluateCounterCrossLocality(t *testing.T) {
	r := NewResolver()
	l0 := NewLocality(0, "here")
	l1 := NewLocality(1, "there")
	if err := r.Bind(l0); err != nil {
		t.Fatal(err)
	}
	if err := r.Bind(l1); err != nil {
		t.Fatal(err)
	}
	c := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(1, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative"})
	l1.Registry().MustRegister(c)
	c.Add(42)

	// Access by name alone: the resolver routes to locality 1.
	v, err := r.EvaluateCounter("/threads{locality#1/total}/count/cumulative", false)
	if err != nil || v.Raw != 42 {
		t.Fatalf("cross-locality evaluate = %+v, %v", v, err)
	}
	// Errors: unknown locality, unparsable name, missing counter.
	if _, err := r.EvaluateCounter("/threads{locality#5/total}/count/cumulative", false); err == nil {
		t.Fatal("unknown locality accepted")
	}
	if _, err := r.EvaluateCounter("garbage", false); err == nil {
		t.Fatal("garbage name accepted")
	}
	if _, err := r.EvaluateCounter("/threads{locality#0/total}/count/cumulative", false); err == nil {
		t.Fatal("missing counter on locality 0 accepted")
	}
}

// flakyProvider is a CounterProvider whose behaviour the test flips:
// healthy, erroring, or serving stale values.
type flakyProvider struct {
	fail  bool
	stale bool
	v     core.Value
}

func (f *flakyProvider) Evaluate(name string, reset bool) (core.Value, error) {
	if f.fail {
		return core.Value{Name: name, Status: core.StatusCounterUnknown},
			errors.New("flaky: endpoint down")
	}
	v := f.v
	v.Name = name
	if f.stale {
		v.Status = core.StatusStale
	}
	return v, nil
}

func TestRemoteEndpointHealthTracking(t *testing.T) {
	r := NewResolver()
	fp := &flakyProvider{v: core.Value{Raw: 7, Status: core.StatusValid}}
	if err := r.BindRemote(3, fp); err != nil {
		t.Fatal(err)
	}
	name := "/threads{locality#3/total}/count/cumulative"

	if _, ok := r.Health(99); ok {
		t.Fatal("health reported for an unbound locality")
	}
	h, ok := r.Health(3)
	if !ok || !h.Healthy() || h.Successes != 0 {
		t.Fatalf("initial health = %+v, %v", h, ok)
	}

	if _, err := r.EvaluateCounter(name, false); err != nil {
		t.Fatal(err)
	}
	h, _ = r.Health(3)
	if !h.Healthy() || h.Successes != 1 || h.LastSuccess.IsZero() {
		t.Fatalf("health after success = %+v", h)
	}

	fp.fail = true
	for i := 0; i < 2; i++ {
		if _, err := r.EvaluateCounter(name, false); err == nil {
			t.Fatal("failing endpoint reported success")
		}
	}
	h, _ = r.Health(3)
	if h.Healthy() || h.Consecutive != 2 || h.Failures != 2 ||
		h.LastError != "flaky: endpoint down" || h.LastFailure.IsZero() {
		t.Fatalf("health after failures = %+v", h)
	}

	// A stale answer means the endpoint did NOT answer — transport served
	// a cache — so it counts against health despite the nil error.
	fp.fail = false
	fp.stale = true
	if _, err := r.EvaluateCounter(name, false); err != nil {
		t.Fatal(err)
	}
	h, _ = r.Health(3)
	if h.Healthy() || h.Consecutive != 3 {
		t.Fatalf("health after stale = %+v", h)
	}

	// Recovery resets the consecutive run.
	fp.stale = false
	if _, err := r.EvaluateCounter(name, false); err != nil {
		t.Fatal(err)
	}
	h, _ = r.Health(3)
	if !h.Healthy() || h.Consecutive != 0 || h.Successes != 2 {
		t.Fatalf("health after recovery = %+v", h)
	}
}

func TestEvaluateAcrossPartialResults(t *testing.T) {
	r := NewResolver()
	l0 := NewLocality(0, "up")
	if err := r.Bind(l0); err != nil {
		t.Fatal(err)
	}
	c := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative"})
	l0.Registry().MustRegister(c)
	c.Add(11)
	down := &flakyProvider{fail: true}
	if err := r.BindRemote(1, down); err != nil {
		t.Fatal(err)
	}

	names := []string{
		"/threads{locality#0/total}/count/cumulative", // healthy local
		"/threads{locality#1/total}/count/cumulative", // dead remote
		"/threads{locality#5/total}/count/cumulative", // unknown locality
		"garbage", // unparsable
	}
	vals := r.EvaluateAcross(names, false)
	if len(vals) != len(names) {
		t.Fatalf("EvaluateAcross returned %d values for %d names", len(vals), len(names))
	}
	if vals[0].Raw != 11 || !vals[0].Valid() {
		t.Fatalf("healthy entry = %+v", vals[0])
	}
	for i := 1; i < len(vals); i++ {
		if vals[i].Valid() {
			t.Fatalf("gap %d reported valid: %+v", i, vals[i])
		}
		if vals[i].Name == "" {
			t.Fatalf("gap %d lost its name", i)
		}
	}
}
