package agas

// The spawn router's failover policy, pinned deterministically first
// (each redirect/retry/cancel trigger in isolation, exact counter
// deltas), then the chaos soak: ~1k in-flight remote futures across two
// replicas under partition/heal mid-flight, all resolving within their
// deadline plus slack, with the accounting invariant
// spawned == completed + failed + cancelled holding exactly.

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/parcel"
	"repro/internal/parcel/chaos"
	"repro/internal/taskrt"
)

// replica is one action-serving locality for router tests.
type replica struct {
	id      int64
	actions *parcel.ActionMap
	srv     *parcel.Server
	inj     *chaos.Injector
	cli     *parcel.Client
}

// newReplica starts a server (locality id) reached through a chaos
// injector and returns the wired pieces.
func newReplica(t *testing.T, id int64, seed int64, cfg chaos.Config) *replica {
	t.Helper()
	cfg.Seed = seed
	reg := core.NewRegistry()
	srv, err := parcel.ServeOptions("127.0.0.1:0", reg, id, parcel.ServerOptions{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	actions := parcel.NewActionMap()
	srv.WithActions(actions)
	inj := chaos.New(cfg)
	cli, err := parcel.DialContext(context.Background(), srv.Addr(), nil, id,
		parcel.ClientOptions{Timeout: 2 * time.Second, Dialer: inj.Dialer()})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return &replica{id: id, actions: actions, srv: srv, inj: inj, cli: cli}
}

// newRouter binds the replicas into a resolver with remote-spawn
// counters registered under monitor locality 9.
func newRouter(t *testing.T, reps ...*replica) (*Resolver, *core.Registry) {
	t.Helper()
	r := NewResolver()
	for _, rep := range reps {
		if err := r.BindRemote(rep.id, rep.cli); err != nil {
			t.Fatal(err)
		}
	}
	reg := core.NewRegistry()
	if err := r.EnableRemoteCounters(reg, 9); err != nil {
		t.Fatal(err)
	}
	return r, reg
}

// remoteCount reads one /remote/count/* counter of the monitor
// locality.
func remoteCount(t *testing.T, reg *core.Registry, name string) int64 {
	t.Helper()
	v, err := reg.Evaluate("/runtime{locality#9/total}/remote/count/"+name, false)
	if err != nil {
		t.Fatal(err)
	}
	return v.Raw
}

func registerEcho(t *testing.T, rep *replica) {
	t.Helper()
	if err := parcel.RegisterActionCtx(rep.actions, "echo",
		func(_ context.Context, n int) (int, error) { return n, nil }); err != nil {
		t.Fatal(err)
	}
}

func TestSpawnRemoteRoutesAndCounts(t *testing.T) {
	rep := newReplica(t, 0, 1, chaos.Config{})
	registerEcho(t, rep)
	r, reg := newRouter(t, rep)
	if err := r.BindActions(0, "echo"); err != nil {
		t.Fatal(err)
	}
	f := SpawnRemote[int, int](r, "echo", 7)
	v, err := f.Get()
	if err != nil || v != 7 {
		t.Fatalf("echo = %d, %v", v, err)
	}
	for name, want := range map[string]int64{
		"spawned": 1, "completed": 1,
		"failed": 0, "retried": 0, "redirected": 0, "cancelled": 0,
	} {
		if got := remoteCount(t, reg, name); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestSpawnRemoteRedirectsOffMissingAction(t *testing.T) {
	// Replica 0 is *claimed* to register "echo" but does not — the
	// typed ErrActionUnknown proves the spawn never started there, so
	// the router must move to replica 1 under the same key.
	rep0 := newReplica(t, 0, 2, chaos.Config{})
	rep1 := newReplica(t, 1, 3, chaos.Config{})
	registerEcho(t, rep1)
	r, reg := newRouter(t, rep0, rep1)
	if err := r.BindActions(0, "echo"); err != nil {
		t.Fatal(err)
	}
	if err := r.BindActions(1, "echo"); err != nil {
		t.Fatal(err)
	}
	f := SpawnRemote[int, int](r, "echo", 11)
	v, err := f.Get()
	if err != nil || v != 11 {
		t.Fatalf("echo = %d, %v", v, err)
	}
	for name, want := range map[string]int64{
		"spawned": 1, "completed": 1, "redirected": 1, "retried": 0, "failed": 0,
	} {
		if got := remoteCount(t, reg, name); got != want {
			t.Fatalf("%s = %d, want %d", name, got, want)
		}
	}
}

func TestSpawnRemoteFailsOverAcrossPartition(t *testing.T) {
	rep0 := newReplica(t, 0, 4, chaos.Config{})
	rep1 := newReplica(t, 1, 5, chaos.Config{})
	registerEcho(t, rep0)
	registerEcho(t, rep1)
	r, reg := newRouter(t, rep0, rep1)
	for id := int64(0); id < 2; id++ {
		if err := r.BindActions(id, "echo"); err != nil {
			t.Fatal(err)
		}
	}
	// Cut replica 0 off mid-life (its client already holds a live
	// connection): the spawn's write fails ambiguously, the reconnect
	// is refused typed (DialError), and the router moves to replica 1.
	rep0.inj.Partition(true)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	f := SpawnRemoteCtx[int, int](ctx, r, "echo", 23)
	v, err := f.GetContext(ctx)
	if err != nil || v != 23 {
		t.Fatalf("echo across partition = %d, %v", v, err)
	}
	if got := remoteCount(t, reg, "completed"); got != 1 {
		t.Fatalf("completed = %d, want 1", got)
	}
	if got := remoteCount(t, reg, "redirected"); got != 1 {
		t.Fatalf("redirected = %d, want 1", got)
	}
	if got := remoteCount(t, reg, "cancelled"); got != 0 {
		t.Fatalf("cancelled = %d, want 0", got)
	}
}

func TestSpawnRemoteRetriesSameReplicaOnAmbiguousFault(t *testing.T) {
	rep := newReplica(t, 0, 6, chaos.Config{})
	var mu sync.Mutex
	execs := 0
	if err := parcel.RegisterActionCtx(rep.actions, "once",
		func(_ context.Context, _ struct{}) (int, error) {
			mu.Lock()
			execs++
			n := execs
			mu.Unlock()
			return n, nil
		}); err != nil {
		t.Fatal(err)
	}
	r, reg := newRouter(t, rep)
	if err := r.BindActions(0, "once"); err != nil {
		t.Fatal(err)
	}
	// Warm the connection, then lose exactly one frame: the spawn op's
	// outcome is ambiguous, so the router re-issues the SAME key to the
	// SAME replica — dedupe makes that exactly-once.
	if _, err := rep.cli.Types(); err != nil {
		t.Fatal(err)
	}
	rep.inj.ForceDrop(1)
	f := SpawnRemote[struct{}, int](r, "once", struct{}{})
	v, err := f.Get()
	if err != nil || v != 1 {
		t.Fatalf("once = %d, %v (want exactly-once)", v, err)
	}
	if got := remoteCount(t, reg, "retried"); got != 1 {
		t.Fatalf("retried = %d, want 1", got)
	}
	if got := remoteCount(t, reg, "redirected"); got != 0 {
		t.Fatalf("redirected = %d, want 0", got)
	}
	if got := remoteCount(t, reg, "completed"); got != 1 {
		t.Fatalf("completed = %d, want 1", got)
	}
}

func TestSpawnRemoteNoReplicaResolvesCancelled(t *testing.T) {
	rep := newReplica(t, 0, 7, chaos.Config{})
	r, reg := newRouter(t, rep)

	// Nothing registers the action at all.
	start := time.Now()
	f := SpawnRemote[int, int](r, "ghost", 1)
	if err := f.Err(); !errors.Is(err, ErrNoReplica) {
		t.Fatalf("error = %v, want ErrNoReplica", err)
	}
	if time.Since(start) > 2*time.Second {
		t.Fatal("no-replica spawn took the slow path; must fail fast, never hang")
	}

	// Every claimed replica is ruled out typed (action unknown on the
	// wire): the future still resolves, cancelled, carrying the last
	// replica failure.
	if err := r.BindActions(0, "ghost"); err != nil {
		t.Fatal(err)
	}
	f = SpawnRemote[int, int](r, "ghost", 1)
	err := f.Err()
	if !errors.Is(err, ErrNoReplica) || !errors.Is(err, parcel.ErrActionUnknown) {
		t.Fatalf("error = %v, want ErrNoReplica wrapping ErrActionUnknown", err)
	}
	if got := remoteCount(t, reg, "cancelled"); got != 2 {
		t.Fatalf("cancelled = %d, want 2", got)
	}
	if got := remoteCount(t, reg, "spawned"); got != 2 {
		t.Fatalf("spawned = %d, want 2", got)
	}
}

func TestSpawnRemoteUnderTaskScope(t *testing.T) {
	// The taskrt integration: a task body hands its ambient cancellation
	// scope (Runtime.CurrentContext) to SpawnRemoteCtx, so cancelling
	// the local task tree cancels the remote spawn too.
	rep := newReplica(t, 0, 8, chaos.Config{})
	bodySawCancel := make(chan struct{})
	if err := parcel.RegisterActionCtx(rep.actions, "stall",
		func(ctx context.Context, _ struct{}) (int, error) {
			<-ctx.Done()
			close(bodySawCancel)
			return 0, ctx.Err()
		}); err != nil {
		t.Fatal(err)
	}
	r, reg := newRouter(t, rep)
	if err := r.BindActions(0, "stall"); err != nil {
		t.Fatal(err)
	}

	rt := taskrt.New(taskrt.WithWorkers(2))
	defer rt.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	fut := taskrt.AsyncCtx(ctx, rt, func() error {
		rf := SpawnRemoteCtx[struct{}, int](rt.CurrentContext(), r, "stall", struct{}{})
		return rf.Err()
	})
	time.Sleep(100 * time.Millisecond)
	cancel() // cancel the task tree, not the remote directly
	err, terr := fut.GetErr()
	if terr != nil {
		t.Fatal(terr)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("remote spawn under cancelled scope = %v", err)
	}
	select {
	case <-bodySawCancel:
	case <-time.After(2 * time.Second):
		t.Fatal("remote body kept running after local task-scope cancel")
	}
	if got := remoteCount(t, reg, "cancelled"); got != 1 {
		t.Fatalf("cancelled = %d, want 1", got)
	}
}

func TestUnbindRacesSpawnAndEvaluate(t *testing.T) {
	// Unbind must be race-clean against in-flight routing, and the
	// losers must see typed errors (ErrUnknownLocality, ErrNoReplica) —
	// never a panic, a hang, or an untyped failure.
	rep := newReplica(t, 0, 9, chaos.Config{})
	registerEcho(t, rep)
	counterName := fmt.Sprintf("/parcels{locality#%d/total}/count/sent", rep.id)

	const rounds = 40
	for i := 0; i < rounds; i++ {
		r := NewResolver()
		if err := r.BindRemote(0, rep.cli); err != nil {
			t.Fatal(err)
		}
		if err := r.BindActions(0, "echo"); err != nil {
			t.Fatal(err)
		}
		var wg sync.WaitGroup
		wg.Add(3)
		go func() {
			defer wg.Done()
			f := SpawnRemote[int, int](r, "echo", i)
			err := f.Err()
			if err != nil && !errors.Is(err, ErrNoReplica) && !errors.Is(err, parcel.ErrSpawnCancelled) {
				t.Errorf("spawn vs unbind: %v", err)
			}
		}()
		go func() {
			defer wg.Done()
			vals := r.EvaluateAcross([]string{counterName}, false)
			if len(vals) != 1 {
				t.Errorf("EvaluateAcross returned %d values", len(vals))
			}
			// A lost race shows up as a gap value, never an error escape.
		}()
		go func() {
			defer wg.Done()
			r.Unbind(0)
		}()
		wg.Wait()
		if _, err := r.Resolve(0); !errors.Is(err, ErrUnknownLocality) {
			t.Fatalf("post-unbind Resolve = %v, want ErrUnknownLocality", err)
		}
		if hosts := r.ActionHosts("echo"); len(hosts) != 0 {
			t.Fatalf("post-unbind placements = %v, want none", hosts)
		}
	}
}

// TestChaosSoakRemoteSpawns is the acceptance soak: ~1k in-flight
// remote futures against two replicas whose links partition and heal
// mid-flight, every future resolving within its deadline plus slack,
// with the counter invariant spawned == completed + failed + cancelled
// holding exactly at quiesce.
func TestChaosSoakRemoteSpawns(t *testing.T) {
	const (
		fan      = 1000
		deadline = 2 * time.Second
		slack    = 8 * time.Second // poller patience + scheduling headroom
	)
	mix := chaos.Config{DropProb: 0.01, CorruptProb: 0.005}
	rep0 := newReplica(t, 0, 101, mix)
	rep1 := newReplica(t, 1, 102, mix)
	for _, rep := range []*replica{rep0, rep1} {
		if err := parcel.RegisterActionCtx(rep.actions, "work",
			func(ctx context.Context, n int) (int, error) {
				select {
				case <-time.After(time.Duration(n%10) * time.Millisecond):
					return n * 2, nil
				case <-ctx.Done():
					return 0, ctx.Err()
				}
			}); err != nil {
			t.Fatal(err)
		}
	}
	r, reg := newRouter(t, rep0, rep1)
	for id := int64(0); id < 2; id++ {
		if err := r.BindActions(id, "work"); err != nil {
			t.Fatal(err)
		}
	}

	// Partition one side at a time, healing between cuts, for the whole
	// flight window.
	stop := make(chan struct{})
	var togglerWG sync.WaitGroup
	togglerWG.Add(1)
	go func() {
		defer togglerWG.Done()
		victims := []*chaos.Injector{rep0.inj, rep1.inj}
		for i := 0; ; i++ {
			v := victims[i%2]
			v.Partition(true)
			select {
			case <-time.After(120 * time.Millisecond):
			case <-stop:
				v.Partition(false)
				return
			}
			v.Partition(false)
			select {
			case <-time.After(80 * time.Millisecond):
			case <-stop:
				return
			}
		}
	}()

	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	futs := make([]*SpawnFuture[int], fan)
	for i := range futs {
		futs[i] = SpawnRemoteCtx[int, int](ctx, r, "work", i)
	}

	completed, failed, cancelledN := 0, 0, 0
	guard, guardCancel := context.WithTimeout(context.Background(), deadline+slack)
	defer guardCancel()
	for i, f := range futs {
		v, err := f.GetContext(guard)
		switch {
		case err == nil:
			if v != i*2 {
				t.Fatalf("work(%d) = %d", i, v)
			}
			completed++
		case errors.Is(err, context.DeadlineExceeded) && guard.Err() != nil:
			t.Fatalf("future %d unresolved past deadline+slack: HANG", i)
		case errors.Is(err, context.DeadlineExceeded),
			errors.Is(err, context.Canceled),
			errors.Is(err, parcel.ErrSpawnCancelled),
			errors.Is(err, ErrNoReplica):
			cancelledN++
		default:
			failed++
		}
	}
	close(stop)
	togglerWG.Wait()

	if completed == 0 {
		t.Fatal("no spawn completed under chaos — transport never worked")
	}
	t.Logf("soak: %d completed, %d failed, %d cancelled; faults: %+v / %+v; redirected=%d retried=%d",
		completed, failed, cancelledN, rep0.inj.Stats(), rep1.inj.Stats(),
		remoteCount(t, reg, "redirected"), remoteCount(t, reg, "retried"))

	// The accounting invariant, exactly: every spawned future booked one
	// terminal counter, matching what the futures themselves reported.
	if got := remoteCount(t, reg, "spawned"); got != fan {
		t.Fatalf("spawned = %d, want %d", got, fan)
	}
	gotCompleted := remoteCount(t, reg, "completed")
	gotFailed := remoteCount(t, reg, "failed")
	gotCancelled := remoteCount(t, reg, "cancelled")
	if gotCompleted+gotFailed+gotCancelled != fan {
		t.Fatalf("completed %d + failed %d + cancelled %d != spawned %d",
			gotCompleted, gotFailed, gotCancelled, fan)
	}
	if gotCompleted != int64(completed) || gotFailed != int64(failed) || gotCancelled != int64(cancelledN) {
		t.Fatalf("counters (%d/%d/%d) disagree with future outcomes (%d/%d/%d)",
			gotCompleted, gotFailed, gotCancelled, completed, failed, cancelledN)
	}
}
