package taskrt

import (
	"sync"
	"sync/atomic"
)

// notifier is an eventcount: workers that find no runnable work wait on
// it, and producers wake them after publishing a task.
//
// Protocol (waiter):
//
//	g := n.prepare()        // registers as a sleeper
//	if workAvailable() {    // re-check under registration
//	    n.cancel()
//	} else {
//	    n.wait(g)
//	}
//
// Registration happens before the re-check, so a producer that publishes
// work after the waiter's check is guaranteed to observe sleepers > 0 and
// issue the wakeup (the increment happens-before the queue read, which
// happens-before the producer's queue write via the queue mutex, which
// happens-before the producer's sleeper load). This makes the producer's
// sleepers==0 fast path free of lost wakeups.
type notifier struct {
	mu       sync.Mutex
	cond     *sync.Cond
	gen      uint64
	sleepers atomic.Int64
}

func newNotifier() *notifier {
	n := &notifier{}
	n.cond = sync.NewCond(&n.mu)
	return n
}

// prepare registers the caller as a prospective sleeper and returns the
// current generation. It must be balanced by exactly one wait or cancel.
func (n *notifier) prepare() uint64 {
	n.sleepers.Add(1)
	n.mu.Lock()
	g := n.gen
	n.mu.Unlock()
	return g
}

// cancel deregisters a prepared sleeper that found work after all.
func (n *notifier) cancel() {
	n.sleepers.Add(-1)
}

// wait blocks until a notify strictly after the observed generation.
func (n *notifier) wait(gen uint64) {
	n.mu.Lock()
	for n.gen == gen {
		n.cond.Wait()
	}
	n.mu.Unlock()
	n.sleepers.Add(-1)
}

// notify wakes all registered sleepers. With no sleepers it is a single
// atomic load.
func (n *notifier) notify() {
	if n.sleepers.Load() == 0 {
		return
	}
	n.mu.Lock()
	n.gen++
	n.cond.Broadcast()
	n.mu.Unlock()
}
