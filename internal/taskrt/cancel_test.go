package taskrt

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
	"time"
)

// gateWorkers blocks every worker of rt inside a task until the returned
// release function is called, so subsequently spawned tasks stay queued.
func gateWorkers(t *testing.T, rt *Runtime) (release func()) {
	t.Helper()
	gate := make(chan struct{})
	running := make(chan struct{}, rt.NumWorkers())
	for i := 0; i < rt.NumWorkers(); i++ {
		AsyncF(rt, func() int {
			running <- struct{}{}
			<-gate
			return 0
		})
	}
	for i := 0; i < rt.NumWorkers(); i++ {
		select {
		case <-running:
		case <-time.After(5 * time.Second):
			t.Fatal("workers did not pick up gate tasks")
		}
	}
	var once atomic.Bool
	return func() {
		if once.CompareAndSwap(false, true) {
			close(gate)
		}
	}
}

// TestCancelDropsQueuedTasks is the exact-accounting test: every task
// that was queued but not started when the context died must be dropped
// at dispatch and show up in the cancelled counter — no more, no fewer.
func TestCancelDropsQueuedTasks(t *testing.T) {
	rt := newTestRuntime(t, 1)
	release := gateWorkers(t, rt)

	ctx, cancel := context.WithCancel(context.Background())
	const n = 200
	var ran atomic.Int64
	fs := make([]*Future[int], n)
	for i := range fs {
		fs[i] = AsyncCtx(ctx, rt, func() int { ran.Add(1); return 1 })
	}
	cancel()
	release()

	for i, f := range fs {
		if err := f.Err(); !errors.Is(err, ErrCancelled) {
			t.Fatalf("future %d: Err() = %v, want ErrCancelled", i, err)
		}
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d task bodies ran after cancel", got)
	}
	if got := rt.Cancelled(); got != n {
		t.Fatalf("Cancelled() = %d, want exactly %d", got, n)
	}
}

// TestCancelPropagatesToDescendants: children spawned with plain Spawn
// from inside a SpawnCtx task join the parent's cancellation tree.
func TestCancelPropagatesToDescendants(t *testing.T) {
	rt := newTestRuntime(t, 2)
	ctx, cancel := context.WithCancel(context.Background())

	var childErr error
	root := AsyncCtx(ctx, rt, func() int {
		cancel()                                     // scope dies while the root is running
		child := AsyncF(rt, func() int { return 7 }) // inherits the scope
		childErr = child.Err()
		return 1
	})
	if err := root.Err(); err != nil {
		t.Fatalf("root Err() = %v (root already started, should finish)", err)
	}
	if !errors.Is(childErr, ErrCancelled) {
		t.Fatalf("child Err() = %v, want ErrCancelled", childErr)
	}
	if got := root.Get(); got != 1 {
		t.Fatalf("root Get() = %d", got)
	}
}

// TestCancelDeadOnArrival: spawning under an already-cancelled context
// never runs the body, for every launch policy.
func TestCancelDeadOnArrival(t *testing.T) {
	rt := newTestRuntime(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	for _, p := range []Policy{Async, Sync, Fork, Deferred, Optional} {
		var ran atomic.Bool
		f := SpawnCtx(ctx, rt, p, func() int { ran.Store(true); return 1 })
		v, err := f.GetErr()
		if !errors.Is(err, ErrCancelled) {
			t.Fatalf("%v: GetErr err = %v, want ErrCancelled", p, err)
		}
		if v != 0 || ran.Load() {
			t.Fatalf("%v: body ran under dead context", p)
		}
	}
}

// TestCancelGetPanics: Get on a cancelled future panics with
// ErrCancelled rather than returning a zero value silently.
func TestCancelGetPanics(t *testing.T) {
	rt := newTestRuntime(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	f := AsyncCtx(ctx, rt, func() int { return 1 })
	defer func() {
		if r := recover(); !errors.Is(r.(error), ErrCancelled) {
			t.Fatalf("recovered %v, want ErrCancelled", r)
		}
	}()
	f.Get()
	t.Fatal("Get did not panic on cancelled future")
}

// TestCancelRuntimeTaskDeadline: WithTaskDeadline bounds queued tasks —
// a task still waiting when the default deadline passes is dropped.
func TestCancelRuntimeTaskDeadline(t *testing.T) {
	rt := New(WithWorkers(1), WithTaskDeadline(20*time.Millisecond))
	defer rt.Shutdown()
	release := gateWorkers(t, rt)

	f := AsyncF(rt, func() int { return 1 })
	time.Sleep(60 * time.Millisecond) // let the deadline lapse in-queue
	release()
	if err := f.Err(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("Err() = %v, want ErrCancelled after task deadline", err)
	}
	if rt.Cancelled() == 0 {
		t.Fatal("deadline drop not accounted in Cancelled()")
	}
}

// TestCancelSpawnTimeout: the per-spawn deadline drops a queued task and
// leaves a promptly-completing task untouched.
func TestCancelSpawnTimeout(t *testing.T) {
	rt := newTestRuntime(t, 1)

	fast := SpawnTimeout(context.Background(), rt, Async, time.Second, func() int { return 9 })
	if v, err := fast.GetErr(); err != nil || v != 9 {
		t.Fatalf("fast GetErr = %d, %v", v, err)
	}

	release := gateWorkers(t, rt)
	slow := SpawnTimeout(context.Background(), rt, Async, 20*time.Millisecond, func() int { return 1 })
	time.Sleep(60 * time.Millisecond)
	release()
	if err := slow.Err(); !errors.Is(err, ErrCancelled) {
		t.Fatalf("slow Err() = %v, want ErrCancelled", err)
	}
}

// TestCancelWaitContext: WaitContext returns the context error while the
// future is incomplete and nil once it completes; abandoning the wait
// does not cancel the task.
func TestCancelWaitContext(t *testing.T) {
	rt := newTestRuntime(t, 2)
	block := make(chan struct{})
	f := AsyncF(rt, func() int { <-block; return 3 })

	wctx, wcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer wcancel()
	if err := f.WaitContext(wctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("WaitContext = %v, want DeadlineExceeded", err)
	}

	close(block)
	if err := f.WaitContext(context.Background()); err != nil {
		t.Fatalf("WaitContext after completion = %v", err)
	}
	if got := f.Get(); got != 3 {
		t.Fatalf("Get = %d; abandoned wait must not cancel the task", got)
	}
}

// TestCancelWaitContextOnWorker: a worker abandoning a WaitContext keeps
// scheduling — the helped wait returns with the context error while the
// runtime stays usable.
func TestCancelWaitContextOnWorker(t *testing.T) {
	rt := newTestRuntime(t, 2)
	block := make(chan struct{})
	defer close(block)
	inner := AsyncF(rt, func() int { <-block; return 1 })

	outer := AsyncF(rt, func() error {
		wctx, wcancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
		defer wcancel()
		return inner.WaitContext(wctx)
	})
	if err := outer.Get(); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("worker WaitContext = %v, want DeadlineExceeded", err)
	}
	// The worker that abandoned the wait must still run tasks.
	if got := AsyncF(rt, func() int { return 5 }).Get(); got != 5 {
		t.Fatal("runtime unusable after abandoned WaitContext")
	}
}

// TestShedExactCount: past the high-water mark every Async spawn runs
// inline on the spawner — counted exactly, with no task lost.
func TestShedExactCount(t *testing.T) {
	rt := New(WithWorkers(1), WithShedding(4))
	defer rt.Shutdown()
	release := gateWorkers(t, rt)

	const n = 100
	var ran atomic.Int64
	fs := make([]*Future[int], n)
	for i := range fs {
		fs[i] = AsyncF(rt, func() int { ran.Add(1); return 1 })
	}
	// The single worker is gated, so exactly 4 spawns reached the queue
	// before the pending count hit the mark; the rest ran inline on this
	// goroutine, completing before their spawn call returned.
	if got := rt.Shed(); got != n-4 {
		t.Fatalf("Shed() = %d, want exactly %d", got, n-4)
	}
	if got := ran.Load(); got != n-4 {
		t.Fatalf("%d bodies ran before release, want %d inline", got, n-4)
	}
	release()
	for i, f := range fs {
		if v, err := f.GetErr(); err != nil || v != 1 {
			t.Fatalf("future %d: GetErr = %d, %v", i, v, err)
		}
	}
	if got := ran.Load(); got != n {
		t.Fatalf("%d bodies ran in total, want %d", got, n)
	}
}

// TestShedDisabledByDefault: without WithShedding nothing is shed even
// under a long queue.
func TestShedDisabledByDefault(t *testing.T) {
	rt := newTestRuntime(t, 1)
	release := gateWorkers(t, rt)
	fs := make([]*Future[int], 500)
	for i := range fs {
		fs[i] = AsyncF(rt, func() int { return 1 })
	}
	if got := rt.Shed(); got != 0 {
		t.Fatalf("Shed() = %d with shedding disabled", got)
	}
	release()
	WaitAllOf(fs)
}
