package taskrt

// Causal task tracing: when enabled, the runtime records one event per
// executed task — including the task's identity, its parent in the
// spawn tree, the call site that spawned it, and the worker it was
// stolen from — into a bounded in-memory buffer. The recorded events
// form the task DAG: AnalyzeTrace replays it post-mortem for work,
// span (critical path) and logical-parallelism metrics (the TASKPROF
// quantities), and WriteChromeTrace exports it in the Chrome
// trace-event format with Perfetto flow arrows from spawn to run.
//
// This is the post-mortem complement the paper contrasts with in-situ
// counters: counters answer questions at runtime; the trace
// reconstructs the schedule afterwards. Tracing is off by default; the
// tracing-off hot path is unchanged (one atomic load per task).

import (
	"encoding/json"
	"fmt"
	"io"
	"path/filepath"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// siteDepth is how many program-counter frames are captured at each
// spawn; the spawn site is the innermost captured frame outside the
// runtime (and outside any registered wrapper packages).
const siteDepth = 6

// TraceEvent is one executed task.
type TraceEvent struct {
	// ID is the task id, unique and increasing within one tracing
	// session (ids start at 1). 0 means the task was spawned while
	// tracing was off (or before this session) and has no identity.
	ID int64
	// Parent is the id of the task that spawned this one; 0 for tasks
	// spawned from outside any traced task (roots).
	Parent int64
	// Worker is the executing worker id.
	Worker int
	// SpawnWorker is the worker whose task spawned this one; -1 when
	// the spawn came from a goroutine outside the pool.
	SpawnWorker int
	// StolenFrom is the worker this task was stolen from, when the
	// executing worker obtained it by work stealing; -1 otherwise.
	StolenFrom int
	// Start is the task's begin time.
	Start time.Time
	// SpawnTime is when the task was spawned (queued); the interval to
	// Start is queueing delay plus dispatch.
	SpawnTime time.Time
	// Duration is the task's own execution time (nested inline tasks
	// excluded, as in the counters).
	Duration time.Duration
	// Inline marks tasks executed inline (Fork/Sync or help-first
	// waiting) rather than from the scheduling loop.
	Inline bool
	// Site is the source location of the spawn call ("file.go:123"),
	// resolved lazily when the events are retrieved. Empty for tasks
	// recorded without identity.
	Site string

	// sitePCs is the raw captured spawn stack, resolved into Site at
	// retrieval time so the spawn hot path never touches the symbol
	// table.
	sitePCs [siteDepth]uintptr
}

// taskMeta is the causal identity a task carries while tracing is
// enabled. It is allocated per spawn only when a tracer is installed;
// with tracing off tasks carry a nil meta and the spawn path is
// unchanged.
type taskMeta struct {
	id          int64
	parent      int64
	spawnNs     int64
	spawnWorker int32
	stolenFrom  int32
	sitePCs     [siteDepth]uintptr
}

// tracer is the bounded event sink. The hot path appends to per-worker
// chunks (one short lock on an uncontended per-worker mutex) flushed
// into the shared buffer in blocks of traceChunkCap, so concurrent
// workers — and the recording worker vs. a concurrent retrieval — never
// serialize on the shared append per event.
type tracer struct {
	mu      sync.Mutex
	events  []TraceEvent
	limit   int
	dropped atomic.Int64
	// ids hands out task identities for this session.
	ids atomic.Int64
	// chunks holds one event block per worker; retrieval flushes them.
	chunks []traceChunk
}

// traceChunk is one worker's private event block. The mutex is only
// contended when a retrieval (TraceEvents) races the recording worker;
// padding keeps neighbouring workers' chunks off one cache line.
type traceChunk struct {
	_   [cacheLineSize]byte
	mu  sync.Mutex
	buf []TraceEvent
	_   [cacheLineSize]byte
}

// traceChunkCap is the per-worker block size: events move into the
// shared buffer one block — not one event — at a time.
const traceChunkCap = 256

const defaultTraceLimit = 1 << 20

// EnableTracing starts recording task events (up to limit events;
// pass 0 for the 1M default). Re-enabling clears the buffer and
// restarts task ids from 1.
func (rt *Runtime) EnableTracing(limit int) {
	if limit <= 0 {
		limit = defaultTraceLimit
	}
	t := &tracer{limit: limit, chunks: make([]traceChunk, len(rt.workers))}
	rt.trace.Store(t)
}

// DisableTracing stops recording; recorded events remain retrievable
// until the next EnableTracing.
func (rt *Runtime) DisableTracing() {
	if t := rt.loadTracer(); t != nil {
		rt.trace.Store((*tracer)(nil))
		rt.lastTrace.Store(t)
	}
}

// TraceEvents returns a copy of the recorded events (from the live
// buffer if tracing is on, else from the last disabled session) and the
// number of events dropped at the buffer limit. Spawn sites are
// resolved to "file.go:line" strings in the returned copy.
func (rt *Runtime) TraceEvents() ([]TraceEvent, int64) {
	t := rt.currentOrLastTracer()
	if t == nil {
		return nil, 0
	}
	t.flushAll()
	t.mu.Lock()
	out := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	for i := range out {
		out[i].Site = resolveSite(out[i].sitePCs)
	}
	return out, t.dropped.Load()
}

// TraceDropped returns the number of events dropped at the buffer
// limit in the current (or last) tracing session. It backs the
// /runtime{locality#L/total}/trace/dropped counter, so a saturated
// trace buffer is visible through the same plane as everything else.
func (rt *Runtime) TraceDropped() int64 {
	if t := rt.currentOrLastTracer(); t != nil {
		// Block-buffered events only hit the limit at flush time, so a
		// counter read drains the chunks first — the count stays exact.
		t.flushAll()
		return t.dropped.Load()
	}
	return 0
}

// resetTraceDropped clears the drop count (evaluate-and-reset).
func (rt *Runtime) resetTraceDropped() {
	if t := rt.currentOrLastTracer(); t != nil {
		t.dropped.Store(0)
	}
}

func (rt *Runtime) currentOrLastTracer() *tracer {
	if t := rt.loadTracer(); t != nil {
		return t
	}
	if lt, ok := rt.lastTrace.Load().(*tracer); ok && lt != nil {
		return lt
	}
	return nil
}

func (rt *Runtime) loadTracer() *tracer {
	if t, ok := rt.trace.Load().(*tracer); ok {
		return t
	}
	return nil
}

// newMeta assigns a task identity for one spawn: an id from the
// session counter, the spawning task (parent) and worker, the spawn
// time, and the captured call stack. skip is the number of stack
// frames between the caller and the user's spawn call.
func (t *tracer) newMeta(w *worker, nowNs int64, skip int) *taskMeta {
	m := &taskMeta{
		id:          t.ids.Add(1),
		spawnNs:     nowNs,
		spawnWorker: -1,
		stolenFrom:  -1,
	}
	if w != nil {
		m.parent = w.curTaskID
		m.spawnWorker = int32(w.id)
	}
	runtime.Callers(skip, m.sitePCs[:])
	return m
}

// newMetaFrom is newMeta with a pre-captured spawn stack: batch spawns
// capture the call stack once and stamp every member with it.
func (t *tracer) newMetaFrom(w *worker, nowNs int64, pcs [siteDepth]uintptr) *taskMeta {
	m := &taskMeta{
		id:          t.ids.Add(1),
		spawnNs:     nowNs,
		spawnWorker: -1,
		stolenFrom:  -1,
		sitePCs:     pcs,
	}
	if w != nil {
		m.parent = w.curTaskID
		m.spawnWorker = int32(w.id)
	}
	return m
}

// record appends one event: onto the recording worker's private chunk
// when called from a worker, else (external execution paths) onto the
// shared buffer directly.
func (t *tracer) record(w *worker, ev TraceEvent) {
	if w != nil && w.id < len(t.chunks) {
		c := &t.chunks[w.id]
		c.mu.Lock()
		if c.buf == nil {
			c.buf = make([]TraceEvent, 0, traceChunkCap)
		}
		c.buf = append(c.buf, ev)
		if len(c.buf) >= traceChunkCap {
			t.flushChunk(c)
		}
		c.mu.Unlock()
		return
	}
	t.mu.Lock()
	if len(t.events) < t.limit {
		t.events = append(t.events, ev)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.dropped.Add(1)
}

// flushChunk moves a chunk's events into the shared buffer with one
// append, counting whatever the limit rejects. The caller holds c.mu;
// lock order is chunk.mu -> tracer.mu, always.
func (t *tracer) flushChunk(c *traceChunk) {
	t.mu.Lock()
	room := t.limit - len(t.events)
	n := len(c.buf)
	if n > room {
		t.dropped.Add(int64(n - room))
		n = room
	}
	if n > 0 {
		t.events = append(t.events, c.buf[:n]...)
	}
	t.mu.Unlock()
	c.buf = c.buf[:0]
}

// flushAll drains every per-worker chunk into the shared buffer;
// retrieval paths call it so block-buffered events are never missing
// from a snapshot. Event order across workers is not chronological —
// AnalyzeTrace and the Chrome export order by id and timestamp, not
// buffer position.
func (t *tracer) flushAll() {
	for i := range t.chunks {
		c := &t.chunks[i]
		c.mu.Lock()
		if len(c.buf) > 0 {
			t.flushChunk(c)
		}
		c.mu.Unlock()
	}
}

// ---------------------------------------------------------------------------
// Spawn-site resolution.

// taskrtPkgPrefix is this package's import-path prefix ("repro/internal/
// taskrt."), computed from a live function symbol so the skip logic
// survives module renames.
var taskrtPkgPrefix = func() string {
	pc, _, _, ok := runtime.Caller(0)
	if !ok {
		return "taskrt."
	}
	name := runtime.FuncForPC(pc).Name()
	if i := strings.LastIndexByte(name, '/'); i >= 0 {
		if j := strings.IndexByte(name[i:], '.'); j >= 0 {
			return name[:i+j+1]
		}
	}
	return "taskrt."
}()

var (
	siteSkipMu       sync.RWMutex
	siteSkipPrefixes []string
	// siteCache memoises resolved spawn stacks; program counters are
	// stable for the process lifetime.
	siteCache sync.Map // [siteDepth]uintptr -> string
)

// RegisterSiteSkip adds a function-name prefix (typically a package
// path like "repro/internal/inncabs.(*HPX)") whose frames are skipped
// when resolving spawn sites. Runtime adapters that wrap Spawn register
// themselves so traces attribute tasks to the caller of the wrapper,
// not the wrapper.
func RegisterSiteSkip(prefix string) {
	if prefix == "" {
		return
	}
	siteSkipMu.Lock()
	siteSkipPrefixes = append(siteSkipPrefixes, prefix)
	siteSkipMu.Unlock()
}

func siteSkipped(fn string) bool {
	if strings.HasPrefix(fn, taskrtPkgPrefix) {
		return true
	}
	siteSkipMu.RLock()
	defer siteSkipMu.RUnlock()
	for _, p := range siteSkipPrefixes {
		if strings.HasPrefix(fn, p) {
			return true
		}
	}
	return false
}

// resolveSite turns a captured spawn stack into "file.go:line": the
// innermost frame outside the runtime and the registered wrappers, or
// the outermost captured frame when every frame is internal.
func resolveSite(pcs [siteDepth]uintptr) string {
	if pcs[0] == 0 {
		return ""
	}
	if s, ok := siteCache.Load(pcs); ok {
		return s.(string)
	}
	n := 0
	for n < len(pcs) && pcs[n] != 0 {
		n++
	}
	frames := runtime.CallersFrames(pcs[:n])
	site, fallback := "", ""
	for {
		fr, more := frames.Next()
		if fr.File != "" {
			loc := filepath.Base(fr.File) + ":" + strconv.Itoa(fr.Line)
			fallback = loc
			// Frames in _test.go files are user code even when their
			// package matches a skip prefix (in-package tests).
			if strings.HasSuffix(fr.File, "_test.go") || !siteSkipped(fr.Function) {
				site = loc
				break
			}
		}
		if !more {
			break
		}
	}
	if site == "" {
		site = fallback
	}
	siteCache.Store(pcs, site)
	return site
}

// ---------------------------------------------------------------------------
// Chrome trace-event export.

// chromeEvent is the trace-event JSON schema (phase "X" = complete
// event; "M" = metadata; "s"/"f" = flow start/finish; ts/dur in
// microseconds).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	ID   string         `json:"id,omitempty"`
	BP   string         `json:"bp,omitempty"`
	Args map[string]any `json:"args,omitempty"`
}

// externalTid is the synthetic thread id used for spawns that came
// from goroutines outside the pool.
const externalTid = 1 << 20

// WriteChromeTrace serialises events in the Chrome trace-event format
// (chrome://tracing, ui.perfetto.dev). Timestamps are relative to the
// earliest event. Each worker appears as a named thread
// ("worker-0".."worker-N"); tasks with identity are linked by flow
// arrows from their spawn point to their execution slice, so Perfetto
// draws the task DAG over the schedule.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	if len(events) == 0 {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	epoch := events[0].Start
	for _, ev := range events {
		if ev.Start.Before(epoch) {
			epoch = ev.Start
		}
		if !ev.SpawnTime.IsZero() && ev.SpawnTime.Before(epoch) {
			epoch = ev.SpawnTime
		}
	}
	us := func(t time.Time) float64 {
		return float64(t.Sub(epoch).Nanoseconds()) / 1e3
	}

	// Metadata: name the process and every thread that appears, so
	// Perfetto shows "worker-3" instead of a bare tid.
	tids := map[int]bool{}
	for _, ev := range events {
		tids[ev.Worker] = true
		if !ev.SpawnTime.IsZero() {
			if ev.SpawnWorker >= 0 {
				tids[ev.SpawnWorker] = true
			} else {
				tids[externalTid] = true
			}
		}
	}
	out := make([]chromeEvent, 0, 2*len(events)+len(tids)+1)
	out = append(out, chromeEvent{
		Name: "process_name", Ph: "M", Pid: 0,
		Args: map[string]any{"name": "taskrt"},
	})
	sorted := make([]int, 0, len(tids))
	for tid := range tids {
		sorted = append(sorted, tid)
	}
	sort.Ints(sorted)
	for _, tid := range sorted {
		name := fmt.Sprintf("worker-%d", tid)
		if tid == externalTid {
			name = "external"
		}
		out = append(out, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: 0, Tid: tid,
			Args: map[string]any{"name": name},
		})
	}

	for i, ev := range events {
		cat := "task"
		if ev.Inline {
			cat = "task-inline"
		}
		name := fmt.Sprintf("task-%d", i)
		args := map[string]any{}
		if ev.ID != 0 {
			name = fmt.Sprintf("task-%d", ev.ID)
			args["parent"] = ev.Parent
			if ev.Site != "" {
				args["site"] = ev.Site
			}
			if ev.StolenFrom >= 0 {
				args["stolen_from"] = ev.StolenFrom
			}
		}
		out = append(out, chromeEvent{
			Name: name,
			Cat:  cat,
			Ph:   "X",
			Ts:   us(ev.Start),
			Dur:  float64(ev.Duration.Nanoseconds()) / 1e3,
			Pid:  0,
			Tid:  ev.Worker,
			Args: args,
		})
		if ev.ID != 0 && !ev.SpawnTime.IsZero() {
			// Flow arrow spawn -> run. The start binds to the spawning
			// worker's timeline at spawn time; the finish binds to the
			// start of the task's execution slice (bp "e" = enclosing).
			spawnTid := ev.SpawnWorker
			if spawnTid < 0 {
				spawnTid = externalTid
			}
			id := strconv.FormatInt(ev.ID, 10)
			out = append(out,
				chromeEvent{Name: "spawn", Cat: "spawn", Ph: "s",
					Ts: us(ev.SpawnTime), Pid: 0, Tid: spawnTid, ID: id},
				chromeEvent{Name: "spawn", Cat: "spawn", Ph: "f", BP: "e",
					Ts: us(ev.Start), Pid: 0, Tid: ev.Worker, ID: id},
			)
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
