package taskrt

// Optional task tracing: when enabled, the runtime records one event
// per executed task (worker, start, duration, inline flag) into a
// bounded in-memory buffer, exportable in the Chrome trace-event format
// (chrome://tracing, Perfetto). This is the post-mortem complement the
// paper contrasts with in-situ counters: counters answer questions at
// runtime; the trace reconstructs the schedule afterwards. Tracing is
// off by default and costs two atomics per task when enabled.

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// TraceEvent is one executed task.
type TraceEvent struct {
	// Worker is the executing worker id.
	Worker int
	// Start is the task's begin time.
	Start time.Time
	// Duration is the task's own execution time (nested inline tasks
	// excluded, as in the counters).
	Duration time.Duration
	// Inline marks tasks executed inline (Fork/Sync or help-first
	// waiting) rather than from the scheduling loop.
	Inline bool
}

// tracer is the bounded event sink.
type tracer struct {
	mu      sync.Mutex
	events  []TraceEvent
	limit   int
	dropped atomic.Int64
}

const defaultTraceLimit = 1 << 20

// EnableTracing starts recording task events (up to limit events;
// pass 0 for the 1M default). Re-enabling clears the buffer.
func (rt *Runtime) EnableTracing(limit int) {
	if limit <= 0 {
		limit = defaultTraceLimit
	}
	t := &tracer{limit: limit}
	rt.trace.Store(t)
}

// DisableTracing stops recording; recorded events remain retrievable
// until the next EnableTracing.
func (rt *Runtime) DisableTracing() {
	if t := rt.loadTracer(); t != nil {
		rt.trace.Store((*tracer)(nil))
		rt.lastTrace.Store(t)
	}
}

// TraceEvents returns a copy of the recorded events (from the live
// buffer if tracing is on, else from the last disabled session) and the
// number of events dropped at the buffer limit.
func (rt *Runtime) TraceEvents() ([]TraceEvent, int64) {
	t := rt.loadTracer()
	if t == nil {
		if lt, ok := rt.lastTrace.Load().(*tracer); ok && lt != nil {
			t = lt
		}
	}
	if t == nil {
		return nil, 0
	}
	t.mu.Lock()
	out := append([]TraceEvent(nil), t.events...)
	t.mu.Unlock()
	return out, t.dropped.Load()
}

func (rt *Runtime) loadTracer() *tracer {
	if t, ok := rt.trace.Load().(*tracer); ok {
		return t
	}
	return nil
}

// record appends one event if tracing is enabled.
func (rt *Runtime) record(ev TraceEvent) {
	t := rt.loadTracer()
	if t == nil {
		return
	}
	t.mu.Lock()
	if len(t.events) < t.limit {
		t.events = append(t.events, ev)
		t.mu.Unlock()
		return
	}
	t.mu.Unlock()
	t.dropped.Add(1)
}

// chromeEvent is the trace-event JSON schema (phase "X" = complete
// event; ts/dur in microseconds).
type chromeEvent struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace serialises events in the Chrome trace-event format.
// Timestamps are relative to the earliest event.
func WriteChromeTrace(w io.Writer, events []TraceEvent) error {
	if len(events) == 0 {
		_, err := io.WriteString(w, "[]\n")
		return err
	}
	epoch := events[0].Start
	for _, ev := range events {
		if ev.Start.Before(epoch) {
			epoch = ev.Start
		}
	}
	out := make([]chromeEvent, len(events))
	for i, ev := range events {
		cat := "task"
		if ev.Inline {
			cat = "task-inline"
		}
		out[i] = chromeEvent{
			Name: fmt.Sprintf("task-%d", i),
			Cat:  cat,
			Ph:   "X",
			Ts:   float64(ev.Start.Sub(epoch).Nanoseconds()) / 1e3,
			Dur:  float64(ev.Duration.Nanoseconds()) / 1e3,
			Pid:  0,
			Tid:  ev.Worker,
		}
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}
