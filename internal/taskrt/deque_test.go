package taskrt

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"testing/quick"
)

func TestDequeLIFOOwner(t *testing.T) {
	var d deque
	t1, t2, t3 := &task{}, &task{}, &task{}
	d.pushBack(t1)
	d.pushBack(t2)
	if n := d.pushBack(t3); n != 3 {
		t.Fatalf("len after pushes = %d", n)
	}
	if d.popBack() != t3 || d.popBack() != t2 || d.popBack() != t1 {
		t.Fatal("owner pops not LIFO")
	}
	if d.popBack() != nil {
		t.Fatal("empty popBack != nil")
	}
}

func TestDequeFIFOThief(t *testing.T) {
	var d deque
	t1, t2, t3 := &task{}, &task{}, &task{}
	d.pushBack(t1)
	d.pushBack(t2)
	d.pushBack(t3)
	if d.popFront() != t1 || d.popFront() != t2 || d.popFront() != t3 {
		t.Fatal("thief pops not FIFO")
	}
	if d.popFront() != nil {
		t.Fatal("empty popFront != nil")
	}
}

func TestDequeMixed(t *testing.T) {
	var d deque
	t1, t2, t3, t4 := &task{}, &task{}, &task{}, &task{}
	d.pushBack(t1)
	d.pushBack(t2)
	d.pushBack(t3)
	d.pushBack(t4)
	if d.popFront() != t1 {
		t.Fatal("front")
	}
	if d.popBack() != t4 {
		t.Fatal("back")
	}
	if d.len() != 2 {
		t.Fatalf("len = %d", d.len())
	}
}

// TestDequeQuickAgainstModel drives the deque with random operation
// sequences and cross-checks against a plain-slice reference model.
func TestDequeQuickAgainstModel(t *testing.T) {
	type op struct{ kind int } // 0 push, 1 popBack, 2 popFront
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			ops := make([]op, r.Intn(200))
			for i := range ops {
				ops[i] = op{r.Intn(3)}
			}
			args[0] = reflect.ValueOf(ops)
		},
	}
	prop := func(ops []op) bool {
		var d deque
		var model []*task
		next := 0
		for _, o := range ops {
			switch o.kind {
			case 0:
				tk := &task{}
				_ = next
				d.pushBack(tk)
				model = append(model, tk)
			case 1:
				got := d.popBack()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if got != want {
						return false
					}
				}
			case 2:
				got := d.popFront()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					want := model[0]
					model = model[1:]
					if got != want {
						return false
					}
				}
			}
			if d.len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestDequeConcurrent hammers the deque from an owner and several thieves
// and verifies every task is dispensed exactly once.
func TestDequeConcurrent(t *testing.T) {
	var d deque
	const n = 10000
	seen := make([]atomic32, n)
	tasks := make([]*task, n)
	idx := make(map[*task]int, n)
	for i := range tasks {
		tasks[i] = &task{}
		idx[tasks[i]] = i
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // owner: pushes all, pops some
		defer wg.Done()
		for i, tk := range tasks {
			d.pushBack(tk)
			if i%3 == 0 {
				if got := d.popBack(); got != nil {
					seen[idx[got]].add()
				}
			}
		}
	}()
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() { // thieves
			defer wg.Done()
			for i := 0; i < n; i++ {
				if got := d.popFront(); got != nil {
					seen[idx[got]].add()
				}
			}
		}()
	}
	wg.Wait()
	for { // drain the rest
		got := d.popFront()
		if got == nil {
			break
		}
		seen[idx[got]].add()
	}
	for i := range seen {
		if c := seen[i].load(); c != 1 {
			t.Fatalf("task %d dispensed %d times", i, c)
		}
	}
}

type atomic32 struct{ v int32 }

func (a *atomic32) add()        { atomicAdd32(&a.v) }
func (a *atomic32) load() int32 { return atomicLoad32(&a.v) }

func TestNotifier(t *testing.T) {
	n := newNotifier()
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		g := n.prepare()
		close(release)
		n.wait(g)
		close(done)
	}()
	<-release
	// Wait for the sleeper to register so notify's fast path sees it.
	for n.sleepers.Load() == 0 {
	}
	n.notify()
	select {
	case <-done:
	case <-timeoutC():
		t.Fatal("waiter not woken")
	}
	// cancel path: prepare then cancel leaves no sleepers.
	_ = n.prepare()
	n.cancel()
	if n.sleepers.Load() != 0 {
		t.Fatal("cancel did not deregister")
	}
	n.notify() // no sleepers: no-op, must not block
}

func TestNotifierNoLostWakeup(t *testing.T) {
	// A notify issued between prepare and wait must still wake the
	// waiter: the generation observed at prepare is stale by wait time.
	n := newNotifier()
	g := n.prepare()
	n.notify() // bump happens while registered
	done := make(chan struct{})
	go func() {
		n.wait(g)
		close(done)
	}()
	select {
	case <-done:
	case <-timeoutC():
		t.Fatal("wakeup lost")
	}
}
