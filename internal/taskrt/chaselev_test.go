package taskrt

import (
	"math/rand"
	"reflect"
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
	"time"
)

// TestChaseLevGrowth pushes far past the initial buffer capacity and
// checks that every task survives the grows, in FIFO order from the
// thief side.
func TestChaseLevGrowth(t *testing.T) {
	var d deque
	const n = initialDequeCap*8 + 3
	tasks := make([]*task, n)
	for i := range tasks {
		tasks[i] = &task{}
		d.pushBack(tasks[i])
	}
	if d.len() != n {
		t.Fatalf("len = %d want %d", d.len(), n)
	}
	for i := 0; i < n; i++ {
		if got := d.popFront(); got != tasks[i] {
			t.Fatalf("popFront %d: wrong task", i)
		}
	}
	if d.popFront() != nil || d.popBack() != nil || d.len() != 0 {
		t.Fatal("deque not empty after drain")
	}
}

// TestChaseLevGrowthInterleaved interleaves pops with growth so the
// circular buffer wraps: the copy in grow must preserve live indices
// modulo both the old and new masks.
func TestChaseLevGrowthInterleaved(t *testing.T) {
	var d deque
	var model []*task
	for round := 0; round < 500; round++ {
		tk := &task{}
		d.pushBack(tk)
		model = append(model, tk)
		if round%3 == 0 {
			if got, want := d.popFront(), model[0]; got != want {
				t.Fatalf("round %d: popFront mismatch", round)
			}
			model = model[1:]
		}
		if d.len() != len(model) {
			t.Fatalf("round %d: len = %d want %d", round, d.len(), len(model))
		}
	}
}

// TestChaseLevQuickAgainstModel drives the deque with random owner and
// thief operation sequences (sequentially, where the thief CAS cannot
// spuriously fail) and cross-checks owner-LIFO/thief-FIFO order against
// a plain-slice reference model, including across buffer grows.
func TestChaseLevQuickAgainstModel(t *testing.T) {
	type op struct{ kind int } // 0,1 push (bias growth), 2 popBack, 3 popFront
	cfg := &quick.Config{
		MaxCount: 300,
		Values: func(args []reflect.Value, r *rand.Rand) {
			ops := make([]op, r.Intn(400))
			for i := range ops {
				ops[i] = op{r.Intn(4)}
			}
			args[0] = reflect.ValueOf(ops)
		},
	}
	prop := func(ops []op) bool {
		var d deque
		var model []*task
		for _, o := range ops {
			switch o.kind {
			case 0, 1:
				tk := &task{}
				if n := d.pushBack(tk); n != len(model)+1 {
					return false
				}
				model = append(model, tk)
			case 2:
				got := d.popBack()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					want := model[len(model)-1]
					model = model[:len(model)-1]
					if got != want {
						return false
					}
				}
			case 3:
				got := d.popFront()
				if len(model) == 0 {
					if got != nil {
						return false
					}
				} else {
					want := model[0]
					model = model[1:]
					if got != want {
						return false
					}
				}
			}
			if d.len() != len(model) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestChaseLevMultiThiefStress is the exactly-once guarantee under real
// contention: one owner pushing and popping, several thieves stealing
// until the deque is provably drained. Every task must be dispensed to
// exactly one consumer. Run with -race; the atomic buffer slots and the
// top CAS are precisely what make this pass.
func TestChaseLevMultiThiefStress(t *testing.T) {
	const (
		nTasks  = 50000
		thieves = 4
	)
	var d deque
	tasks := make([]*task, nTasks)
	idx := make(map[*task]int, nTasks)
	for i := range tasks {
		tasks[i] = &task{}
		idx[tasks[i]] = i
	}
	seen := make([]atomic.Int32, nTasks)
	var dispensed atomic.Int64
	var pushed atomic.Int64
	take := func(tk *task) {
		seen[idx[tk]].Add(1)
		dispensed.Add(1)
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // owner: pushes all, pops some, drains at the end
		defer wg.Done()
		for i, tk := range tasks {
			d.pushBack(tk)
			pushed.Add(1)
			if i%5 == 0 {
				if got := d.popBack(); got != nil {
					take(got)
				}
			}
		}
		for {
			got := d.popBack()
			if got == nil {
				// A thief may still be mid-steal (top CAS pending); the
				// deque reports empty only once top catches bottom.
				if dispensed.Load() == nTasks {
					return
				}
				runtime.Gosched()
				continue
			}
			take(got)
		}
	}()
	for g := 0; g < thieves; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for dispensed.Load() < nTasks {
				if got := d.popFront(); got != nil {
					take(got)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("stress did not converge: pushed=%d dispensed=%d len=%d",
			pushed.Load(), dispensed.Load(), d.len())
	}
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("task %d dispensed %d times", i, c)
		}
	}
}

// TestInjectorMPMCStress checks the Michael-Scott injection queue for
// the same exactly-once property with multiple concurrent producers and
// consumers (the external-submitter pattern).
func TestInjectorMPMCStress(t *testing.T) {
	const (
		producers   = 4
		consumers   = 4
		perProducer = 20000
		total       = producers * perProducer
	)
	q := newInjector()
	tasks := make([]*task, total)
	idx := make(map[*task]int, total)
	for i := range tasks {
		tasks[i] = &task{}
		idx[tasks[i]] = i
	}
	seen := make([]atomic.Int32, total)
	var consumed atomic.Int64

	var wg sync.WaitGroup
	for p := 0; p < producers; p++ {
		p := p
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < perProducer; i++ {
				q.pushBack(tasks[p*perProducer+i])
			}
		}()
	}
	for c := 0; c < consumers; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for consumed.Load() < total {
				if tk := q.popFront(); tk != nil {
					seen[idx[tk]].Add(1)
					consumed.Add(1)
				} else {
					runtime.Gosched()
				}
			}
		}()
	}

	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	select {
	case <-done:
	case <-time.After(60 * time.Second):
		t.Fatalf("MPMC stress did not converge: consumed=%d len=%d",
			consumed.Load(), q.len())
	}
	for i := range seen {
		if c := seen[i].Load(); c != 1 {
			t.Fatalf("task %d consumed %d times", i, c)
		}
	}
	if q.popFront() != nil || q.len() != 0 {
		t.Fatal("injector not empty after drain")
	}
}

// TestGoidFastMatchesSlow cross-checks the calibrated fast goroutine-id
// path against the runtime.Stack parse from many goroutines. On
// architectures without the fast path this still exercises the slow
// parse for self-consistency.
func TestGoidFastMatchesSlow(t *testing.T) {
	check := func() error {
		slow := goroutineIDSlow()
		if got := goroutineID(); got != slow {
			t.Errorf("goroutineID() = %d, stack header says %d", got, slow)
		}
		return nil
	}
	check()
	var wg sync.WaitGroup
	for i := 0; i < 50; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			check()
		}()
	}
	wg.Wait()
}

// TestWorkerMapShardedLookup exercises register/lookup/unregister and
// the negative-result cache across many distinct goroutine ids.
func TestWorkerMapShardedLookup(t *testing.T) {
	wm := newWorkerMap()
	w := &worker{}
	// Ids chosen to collide in the direct-mapped cache (same low bits).
	a := uint64(5)
	b := a + wmapCacheSize
	wm.register(a, w)
	if wm.lookup(a) != w {
		t.Fatal("registered id not found")
	}
	if wm.lookup(b) != nil {
		t.Fatal("unregistered id resolved")
	}
	// The b lookup displaced a's cache entry; a must still resolve via
	// its shard.
	if wm.lookup(a) != w {
		t.Fatal("id lost after cache displacement")
	}
	wm.unregister(a)
	if wm.lookup(a) != nil {
		t.Fatal("unregistered id still resolves")
	}
}
