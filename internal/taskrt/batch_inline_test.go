package taskrt

import (
	"context"
	"errors"
	"sync/atomic"
	"testing"
)

// intBodies builds n task bodies that each bump ran and return their
// index, for order-preservation checks.
func intBodies(n int, ran *atomic.Int64) []func() int {
	fns := make([]func() int, n)
	for i := range fns {
		i := i
		fns[i] = func() int { ran.Add(1); return i }
	}
	return fns
}

// TestBatchExternalCaller drives SpawnBatch from a non-worker goroutine:
// the batch takes the injector bulk-push path and every future must
// resolve to its own body's value, in order.
func TestBatchExternalCaller(t *testing.T) {
	rt := newTestRuntime(t, 2)
	var ran atomic.Int64
	const n = 64
	fs := AsyncBatch(rt, intBodies(n, &ran))
	for i, f := range fs {
		if got := f.Get(); got != i {
			t.Fatalf("future %d resolved to %d", i, got)
		}
	}
	if got := ran.Load(); got != n {
		t.Fatalf("%d bodies ran, want %d", got, n)
	}
}

// TestBatchWorkerCaller drives SpawnBatch from inside a task: the batch
// is published as one Chase–Lev deque window on the spawning worker.
func TestBatchWorkerCaller(t *testing.T) {
	rt := newTestRuntime(t, 1)
	var ran atomic.Int64
	const n = 100
	root := AsyncF(rt, func() int {
		fs := SpawnBatch(rt, Async, intBodies(n, &ran))
		sum := 0
		for _, f := range fs {
			sum += f.Get()
		}
		return sum
	})
	if got, want := root.Get(), n*(n-1)/2; got != want {
		t.Fatalf("batch sum = %d, want %d", got, want)
	}
	if got := ran.Load(); got != n {
		t.Fatalf("%d bodies ran, want %d", got, n)
	}
}

// TestBatchStealPath publishes a wide batch window from one worker in a
// multi-worker pool while the other workers are idle: thieves must be
// able to drain the window (the one-store bottom publish still hands
// every slot to popFront), so the whole batch completes.
func TestBatchStealPath(t *testing.T) {
	rt := newTestRuntime(t, 4)
	var ran atomic.Int64
	const n = 256
	root := AsyncF(rt, func() int {
		fs := AsyncBatch(rt, intBodies(n, &ran))
		WaitAllOf(fs)
		ok := 0
		for i, f := range fs {
			if f.Get() == i {
				ok++
			}
		}
		return ok
	})
	if got := root.Get(); got != n {
		t.Fatalf("%d futures carried the right value, want %d", got, n)
	}
	if got := ran.Load(); got != n {
		t.Fatalf("%d bodies ran, want %d", got, n)
	}
}

// TestBatchNonAsyncPolicies: Sync/Fork batches run at the spawn point,
// Deferred batches run at first Wait — per-task semantics are kept.
func TestBatchNonAsyncPolicies(t *testing.T) {
	rt := newTestRuntime(t, 2)
	for _, p := range []Policy{Sync, Fork} {
		var ran atomic.Int64
		fs := SpawnBatch(rt, p, intBodies(8, &ran))
		if got := ran.Load(); got != 8 {
			t.Fatalf("%v batch: %d bodies ran at spawn, want 8", p, got)
		}
		for i, f := range fs {
			if got := f.Get(); got != i {
				t.Fatalf("%v future %d resolved to %d", p, i, got)
			}
		}
	}
	var ran atomic.Int64
	fs := SpawnBatch(rt, Deferred, intBodies(8, &ran))
	if got := ran.Load(); got != 0 {
		t.Fatalf("Deferred batch: %d bodies ran before Wait", got)
	}
	for i, f := range fs {
		if got := f.Get(); got != i {
			t.Fatalf("Deferred future %d resolved to %d", i, got)
		}
	}
}

// TestBatchEmpty: a zero-length batch is a no-op, not a panic.
func TestBatchEmpty(t *testing.T) {
	rt := newTestRuntime(t, 1)
	if fs := AsyncBatch[int](rt, nil); len(fs) != 0 {
		t.Fatalf("empty batch returned %d futures", len(fs))
	}
}

// TestBatchAfterShutdown: a batch spawned after Shutdown falls back to
// deferred execution — every future still completes when queried.
func TestBatchAfterShutdown(t *testing.T) {
	rt := New(WithWorkers(1))
	rt.Shutdown()
	var ran atomic.Int64
	fs := AsyncBatch(rt, intBodies(8, &ran))
	for i, f := range fs {
		if got := f.Get(); got != i {
			t.Fatalf("future %d resolved to %d after shutdown", i, got)
		}
	}
	if got := ran.Load(); got != 8 {
		t.Fatalf("%d bodies ran, want 8", got)
	}
}

// TestBatchCancelDeadOnArrival: a batch spawned under an already-dead
// scope drops every member before any body runs, with each drop counted
// in the cancelled counter — no more, no fewer.
func TestBatchCancelDeadOnArrival(t *testing.T) {
	rt := newTestRuntime(t, 2)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	const n = 50
	fs := AsyncBatchCtx(ctx, rt, intBodies(n, &ran))
	for i, f := range fs {
		if err := f.Err(); !errors.Is(err, ErrCancelled) {
			t.Fatalf("future %d: Err() = %v, want ErrCancelled", i, err)
		}
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d bodies ran under dead scope", got)
	}
	if got := rt.Cancelled(); got != n {
		t.Fatalf("Cancelled() = %d, want exactly %d", got, n)
	}
}

// TestBatchCancelDropsQueued: a scope that dies while a batch sits in
// the queues drops each member at dispatch, counted exactly.
func TestBatchCancelDropsQueued(t *testing.T) {
	rt := newTestRuntime(t, 1)
	release := gateWorkers(t, rt)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	const n = 120
	fs := AsyncBatchCtx(ctx, rt, intBodies(n, &ran))
	cancel()
	release()
	for i, f := range fs {
		if err := f.Err(); !errors.Is(err, ErrCancelled) {
			t.Fatalf("future %d: Err() = %v, want ErrCancelled", i, err)
		}
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d bodies ran after cancel", got)
	}
	if got := rt.Cancelled(); got != n {
		t.Fatalf("Cancelled() = %d, want exactly %d", got, n)
	}
}

// TestBatchShedCountsEveryChild: a batch arriving past the shedding
// high-water mark is degraded to inline execution with every member
// counted in /count/shed — the batch path must not under-report.
func TestBatchShedCountsEveryChild(t *testing.T) {
	rt := New(WithWorkers(1), WithShedding(2))
	defer rt.Shutdown()
	release := gateWorkers(t, rt)

	// Fill the queue to the mark with single spawns, then land the batch.
	pre := make([]*Future[int], 2)
	for i := range pre {
		pre[i] = AsyncF(rt, func() int { return 1 })
	}
	var ran atomic.Int64
	const n = 40
	fs := AsyncBatch(rt, intBodies(n, &ran))
	if got := rt.Shed(); got != n {
		t.Fatalf("Shed() = %d, want exactly %d (every batch member)", got, n)
	}
	if got := ran.Load(); got != n {
		t.Fatalf("%d bodies ran inline before release, want %d", got, n)
	}
	release()
	for i, f := range fs {
		if got := f.Get(); got != i {
			t.Fatalf("shed future %d resolved to %d", i, got)
		}
	}
	WaitAllOf(pre)
}

// seedInlineRuntime builds a 1-worker runtime with adaptive inlining on
// and the spawn-cost EWMAs pre-seeded, so the inline threshold is a
// known 4×(500+500) = 4000 ns without a warm-up phase.
func seedInlineRuntime(t *testing.T) *Runtime {
	t.Helper()
	rt := New(WithWorkers(1), WithAdaptiveInlining())
	t.Cleanup(rt.Shutdown)
	rt.submitCostNs.Store(500)
	rt.dispatchCostNs.Store(500)
	if thr := rt.InlineThresholdNs(); thr != 4000 {
		t.Fatalf("seeded InlineThresholdNs() = %d, want 4000", thr)
	}
	return rt
}

// TestAdaptiveInlineRuns: with the policy on, a measured threshold, a
// grain hint below it and a backlog covering the pool, an AsyncGrain
// spawn runs inline at the spawn point — complete before the spawn call
// returns, and counted in /grain/inlined.
func TestAdaptiveInlineRuns(t *testing.T) {
	rt := seedInlineRuntime(t)
	root := AsyncF(rt, func() int {
		// One queued task is backlog >= the 1-worker pool: inlining no
		// longer trades away parallelism.
		backlog := AsyncF(rt, func() int { return 1 })
		inlinedBefore := rt.GrainInlined()
		f := AsyncGrain(rt, 100, func() int { return 7 })
		if !f.Ready() {
			t.Error("inline-eligible spawn did not complete at the spawn point")
		}
		if got := rt.GrainInlined(); got != inlinedBefore+1 {
			t.Errorf("GrainInlined() = %d, want %d", got, inlinedBefore+1)
		}
		return f.Get() + backlog.Get()
	})
	if got := root.Get(); got != 8 {
		t.Fatalf("root = %d, want 8", got)
	}
}

// TestAdaptiveInlineRequiresBacklog: with idle capacity in the pool the
// same spawn must be enqueued, not inlined — the policy trades overhead,
// never parallelism.
func TestAdaptiveInlineRequiresBacklog(t *testing.T) {
	rt := seedInlineRuntime(t)
	root := AsyncF(rt, func() int {
		// No backlog: pending is 0 while this root runs.
		inlinedBefore := rt.GrainInlined()
		spawnedBefore := rt.GrainSpawned()
		f := AsyncGrain(rt, 100, func() int { return 3 })
		if got := rt.GrainInlined(); got != inlinedBefore {
			t.Errorf("GrainInlined() = %d, want %d (no backlog)", got, inlinedBefore)
		}
		if got := rt.GrainSpawned(); got != spawnedBefore+1 {
			t.Errorf("GrainSpawned() = %d, want %d", got, spawnedBefore+1)
		}
		return f.Get()
	})
	if got := root.Get(); got != 3 {
		t.Fatalf("root = %d, want 3", got)
	}
}

// TestAdaptiveInlineCancelledScope is the inline-run × cancellation
// test: a child that the adaptive policy would run inline must still be
// dropped at dispatch — body never runs — when its inherited scope is
// already dead, with the drop (and nothing else) in /count/cancelled.
func TestAdaptiveInlineCancelledScope(t *testing.T) {
	rt := seedInlineRuntime(t)
	ctx, cancel := context.WithCancel(context.Background())
	var childRan atomic.Bool
	root := AsyncCtx(ctx, rt, func() int {
		backlog := AsyncGrain(rt, 100, func() int { return 1 })
		_ = backlog // queued before the cancel; dropped at its own dispatch
		cancel()    // the scope dies while this task runs
		cancelledBefore := rt.Cancelled()
		inlinedBefore := rt.GrainInlined()
		child := AsyncGrain(rt, 100, func() int { childRan.Store(true); return 1 })
		if err := child.Err(); !errors.Is(err, ErrCancelled) {
			t.Errorf("inline child Err() = %v, want ErrCancelled", err)
		}
		if got := rt.Cancelled(); got != cancelledBefore+1 {
			t.Errorf("Cancelled() = %d, want %d (exactly the inline child)", got, cancelledBefore+1)
		}
		if got := rt.GrainInlined(); got != inlinedBefore {
			t.Errorf("GrainInlined() = %d, want %d (a dropped child is not an inlined child)", got, inlinedBefore)
		}
		return 9
	})
	if got := root.Get(); got != 9 {
		t.Fatalf("root = %d, want 9", got)
	}
	if childRan.Load() {
		t.Fatal("inline child body ran under dead scope")
	}
}

// TestBatchInlineSplit: below the grain threshold a batch enqueues only
// enough members to feed idle workers and inlines the rest. With a
// 1-worker pool already backlogged, that is the whole batch.
func TestBatchInlineSplit(t *testing.T) {
	rt := seedInlineRuntime(t)
	var ran atomic.Int64
	root := AsyncF(rt, func() int {
		backlog := AsyncF(rt, func() int { return 0 })
		inlinedBefore := rt.GrainInlined()
		const n = 8
		fs := AsyncBatchGrain(rt, 100, intBodies(n, &ran))
		for i, f := range fs {
			if !f.Ready() {
				t.Errorf("batch member %d not complete at the spawn point", i)
			}
		}
		if got := rt.GrainInlined(); got != inlinedBefore+n {
			t.Errorf("GrainInlined() = %d, want %d", got, inlinedBefore+n)
		}
		sum := 0
		for _, f := range fs {
			sum += f.Get()
		}
		return sum + backlog.Get()
	})
	if got, want := root.Get(), 8*7/2; got != want {
		t.Fatalf("root = %d, want %d", got, want)
	}
}

// TestBatchInlineCancelledScope: the batch analogue of the inline ×
// cancellation test — a dead scope drops every member of a batch the
// policy would have inlined, each counted.
func TestBatchInlineCancelledScope(t *testing.T) {
	rt := seedInlineRuntime(t)
	ctx, cancel := context.WithCancel(context.Background())
	var ran atomic.Int64
	root := AsyncF(rt, func() int {
		_ = AsyncGrain(rt, 100, func() int { return 1 }) // backlog
		cancel()
		cancelledBefore := rt.Cancelled()
		const n = 16
		fs := AsyncBatchCtx(ctx, rt, intBodies(n, &ran))
		for i, f := range fs {
			if err := f.Err(); !errors.Is(err, ErrCancelled) {
				t.Errorf("member %d: Err() = %v, want ErrCancelled", i, err)
			}
		}
		if got := rt.Cancelled(); got != cancelledBefore+n {
			t.Errorf("Cancelled() = %d, want %d", got, cancelledBefore+n)
		}
		return 1
	})
	if root.Get() != 1 {
		t.Fatal("root failed")
	}
	if got := ran.Load(); got != 0 {
		t.Fatalf("%d batch bodies ran under dead scope", got)
	}
}

// TestReleaseRecycles: Release returns a completed future to the spawn
// pool; a double Release is a harmless no-op.
func TestReleaseRecycles(t *testing.T) {
	rt := newTestRuntime(t, 1)
	f := AsyncF(rt, func() int { return 42 })
	if got := f.Get(); got != 42 {
		t.Fatalf("Get = %d", got)
	}
	f.Release()
	f.Release() // second call must not double-pool or panic

	fs := make([]*Future[int], 32)
	for i := range fs {
		i := i
		fs[i] = AsyncF(rt, func() int { return i })
	}
	for i, f := range fs {
		if got := f.Get(); got != i {
			t.Fatalf("recycled future %d resolved to %d", i, got)
		}
	}
	ReleaseAll(fs)
}

// TestSpawnGetAllocFree asserts the fused-lifecycle guarantee: once the
// per-type pool is warm, the Spawn→Get→Release steady state on a worker
// allocates nothing — the future is the task is the pool object, and
// the help-first Get never builds a wait channel.
func TestSpawnGetAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("the race detector instruments allocations")
	}
	rt := newTestRuntime(t, 1)
	body := func() int { return 1 }
	root := AsyncF(rt, func() float64 {
		for i := 0; i < 64; i++ { // warm the per-type future pool
			f := AsyncF(rt, body)
			f.Get()
			f.Release()
		}
		// Min of several runs: a GC between AllocsPerRun's measurements
		// can clear the sync.Pool and charge the refill to the loop.
		best := testing.AllocsPerRun(100, func() {
			f := AsyncF(rt, body)
			f.Get()
			f.Release()
		})
		for r := 0; r < 4 && best > 0; r++ {
			if a := testing.AllocsPerRun(100, func() {
				f := AsyncF(rt, body)
				f.Get()
				f.Release()
			}); a < best {
				best = a
			}
		}
		return best
	})
	if got := root.Get(); got != 0 {
		t.Errorf("Spawn→Get→Release steady state allocates %.1f objects/op, want 0", got)
	}
}
