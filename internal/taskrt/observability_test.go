package taskrt

import (
	"testing"
	"time"
)

// The new observability counters: duration percentiles backed by the
// per-worker histograms, the online critical-path estimate, and the
// trace-drop count.

func TestCounterDurationPercentile(t *testing.T) {
	rt, reg := newInstrumentedRuntime(t, 2)
	const n = 100
	const spin = 100 * time.Microsecond
	fs := make([]*Future[int], n)
	for i := range fs {
		fs[i] = AsyncF(rt, func() int {
			busySpin(spin)
			return 0
		})
	}
	WaitAllOf(fs)
	for _, q := range []string{"50", "95", "99"} {
		v, err := reg.Evaluate("/statistics{/threads{locality#0/total}/time/average}/percentile@"+q, false)
		if err != nil {
			t.Fatalf("Evaluate p%s: %v", q, err)
		}
		if !v.Valid() {
			t.Fatalf("p%s invalid: %+v", q, v)
		}
		// Every task spins ~100µs; percentiles must be at least that
		// and not absurdly larger.
		if f := v.Float64(); f < float64(spin.Nanoseconds())*0.9 || f > float64(spin.Nanoseconds())*100 {
			t.Fatalf("p%s = %v ns, want ~%v ns", q, f, spin.Nanoseconds())
		}
	}
	// p50 <= p95 <= p99.
	p := func(q string) float64 {
		v, err := reg.Evaluate("/statistics{/threads{locality#0/total}/time/average}/percentile@"+q, false)
		if err != nil {
			t.Fatal(err)
		}
		return v.Float64()
	}
	p50, p95, p99 := p("50"), p("95"), p("99")
	if p50 > p95 || p95 > p99 {
		t.Fatalf("percentiles not monotone: p50=%v p95=%v p99=%v", p50, p95, p99)
	}
	// Overhead percentile evaluates too (may be invalid when no task
	// accrued measurable dispatch overhead, but must not error).
	if _, err := reg.Evaluate("/statistics{/threads{locality#0/total}/time/average-overhead}/percentile@95", false); err != nil {
		t.Fatalf("overhead percentile: %v", err)
	}
}

func TestCounterCriticalPath(t *testing.T) {
	rt, reg := newInstrumentedRuntime(t, 2)
	// A chain of dependent tasks: span ~= work.
	const links = 8
	const spin = 200 * time.Microsecond
	var chain func(n int) int
	chain = func(n int) int {
		busySpin(spin)
		if n == 0 {
			return 0
		}
		return AsyncF(rt, func() int { return chain(n - 1) }).Get()
	}
	AsyncF(rt, func() int { return chain(links) }).Get()

	span, err := reg.Evaluate("/runtime{locality#0/total}/critical-path/span", false)
	if err != nil {
		t.Fatalf("Evaluate span: %v", err)
	}
	work, err := reg.Evaluate("/threads{locality#0/total}/time/cumulative", false)
	if err != nil {
		t.Fatalf("Evaluate work: %v", err)
	}
	wantMin := int64(links+1) * spin.Nanoseconds()
	if span.Raw < wantMin {
		t.Fatalf("span = %v ns, want >= %v ns (chain of %d x %v)", span.Raw, wantMin, links+1, spin)
	}
	if span.Raw > work.Raw {
		t.Fatalf("span %d > work %d", span.Raw, work.Raw)
	}
	par, err := reg.Evaluate("/runtime{locality#0/total}/critical-path/parallelism", false)
	if err != nil {
		t.Fatalf("Evaluate parallelism: %v", err)
	}
	// Work and span are read at slightly different instants, so allow
	// a little slack above the chain's ideal parallelism of 1.
	if f := par.Float64(); f < 0.9 || f > 1.5 {
		t.Fatalf("chain parallelism = %v, want ~1", f)
	}

	// Reset clears the estimate.
	if _, err := reg.Evaluate("/runtime{locality#0/total}/critical-path/span", true); err != nil {
		t.Fatal(err)
	}
	span2, err := reg.Evaluate("/runtime{locality#0/total}/critical-path/span", false)
	if err != nil {
		t.Fatal(err)
	}
	if span2.Raw != 0 {
		t.Fatalf("span after reset = %d", span2.Raw)
	}
	_ = rt
}

func TestCounterCriticalPathOnlineVsExact(t *testing.T) {
	rt, reg := newInstrumentedRuntime(t, 4)
	rt.EnableTracing(0)
	if got := fibRT(rt, 15); got != 610 {
		t.Fatalf("fib = %d", got)
	}
	events, _ := rt.TraceEvents()
	exact := AnalyzeTrace(events)
	online, err := reg.Evaluate("/runtime{locality#0/total}/critical-path/span", false)
	if err != nil {
		t.Fatal(err)
	}
	// The online estimate tracks spawn-path depth only (it cannot see
	// join edges), so it lower-bounds within noise and never exceeds
	// total work.
	work, _ := reg.Evaluate("/threads{locality#0/total}/time/cumulative", false)
	if online.Raw <= 0 {
		t.Fatalf("online span = %d", online.Raw)
	}
	if online.Raw > work.Raw {
		t.Fatalf("online span %d > work %d", online.Raw, work.Raw)
	}
	if exact.Span <= 0 {
		t.Fatalf("exact span = %v", exact.Span)
	}
}

func TestCounterTraceDropped(t *testing.T) {
	rt, reg := newInstrumentedRuntime(t, 1)
	rt.EnableTracing(4)
	fs := make([]*Future[int], 10)
	for i := range fs {
		fs[i] = AsyncF(rt, func() int { return 0 })
	}
	WaitAllOf(fs)
	v, err := reg.Evaluate("/runtime{locality#0/total}/trace/dropped", true)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if v.Raw != 6 {
		t.Fatalf("dropped = %d want 6", v.Raw)
	}
	// Evaluate-and-reset cleared it.
	v2, err := reg.Evaluate("/runtime{locality#0/total}/trace/dropped", false)
	if err != nil {
		t.Fatal(err)
	}
	if v2.Raw != 0 {
		t.Fatalf("dropped after reset = %d", v2.Raw)
	}
}

func TestCounterTraceDroppedNoTracer(t *testing.T) {
	_, reg := newInstrumentedRuntime(t, 1)
	v, err := reg.Evaluate("/runtime{locality#0/total}/trace/dropped", false)
	if err != nil {
		t.Fatal(err)
	}
	if v.Raw != 0 {
		t.Fatalf("dropped with no tracer = %d", v.Raw)
	}
}
