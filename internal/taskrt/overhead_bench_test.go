package taskrt

// The real-runtime analogue of the paper's Section VI overhead table:
// how much does intrinsic-counter monitoring cost, as a fraction of the
// task grain? The paper's claim is 0-10 % for HPX; this harness measures
// the same quantity for taskrt by running batches of tasks whose bodies
// busy-spin for a known grain and comparing a bare run against a run
// with the full counter set registered and sampled at 1 kHz (the
// perfcli --print-counter-interval access pattern).
//
// Two numbers come out per grain:
//
//   - sched_overhead_pct: (per-task wall time - grain) / grain. The
//     Task Bench "minimum effective task granularity" view: how small a
//     task can be before the runtime's own spawn/steal/accounting path
//     dominates.
//   - counter_sampling_overhead_pct: relative slowdown from concurrent
//     counter evaluation. This is the paper's intrinsic-counter cost.
//
// `scripts/bench.sh` persists the table to BENCH_taskrt.json via
// TestWriteBenchJSON so the perf trajectory is tracked across PRs.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
)

// spin busy-waits for d, the standard Inncabs-style synthetic grain.
func spin(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
	}
}

// totalCounterPatterns is the counter set a monitoring session would
// watch, matching the paper's per-run counter selection.
func totalCounterPatterns() []string {
	return []string{
		"/threads{locality#0/total}/count/cumulative",
		"/threads{locality#0/total}/time/average",
		"/threads{locality#0/total}/time/average-overhead",
		"/threads{locality#0/total}/time/cumulative",
		"/threads{locality#0/total}/time/cumulative-overhead",
		"/threads{locality#0/total}/idle-rate",
		"/threads{locality#0/total}/count/stolen",
		"/threads{locality#0/total}/count/instantaneous/pending",
	}
}

// runGrainLoad executes nTasks tasks of the given grain from a root
// worker task (so spawns take the in-pool fast path) and returns the
// elapsed wall time of the whole batch.
func runGrainLoad(rt *Runtime, nTasks int, grain time.Duration) time.Duration {
	const wave = 256 // bounded fan-out per wait, like the Inncabs loops
	root := AsyncF(rt, func() time.Duration {
		begin := time.Now()
		fs := make([]*Future[int], 0, wave)
		for i := 0; i < nTasks; i++ {
			fs = append(fs, AsyncF(rt, func() int { spin(grain); return 1 }))
			if len(fs) == wave {
				WaitAllOf(fs)
				fs = fs[:0]
			}
		}
		WaitAllOf(fs)
		return time.Since(begin)
	})
	return root.Get()
}

// measureGrain times one batch, optionally with the counter set
// registered and polled at interval during the run, optionally with
// the default watchdog sweeping the health heuristics, and optionally
// with causal tracing recording every task.
func measureGrain(workers, nTasks int, grain time.Duration, sampled, watchdog, traced bool) time.Duration {
	rt := New(WithWorkers(workers))
	defer rt.Shutdown()
	if watchdog {
		rt.StartWatchdog(WatchdogConfig{})
	}
	if traced {
		rt.EnableTracing(nTasks + 16) // roomy: no drops during the measurement
	}

	stop := make(chan struct{})
	samplerDone := make(chan struct{})
	if sampled {
		reg := core.NewRegistry()
		if err := rt.RegisterCounters(reg); err != nil {
			panic(err)
		}
		for _, p := range totalCounterPatterns() {
			if _, err := reg.AddActive(p); err != nil {
				panic(err)
			}
		}
		// Sample through a compiled BindSet into a reused buffer — the
		// intended steady-state monitoring loop: no name parsing, no
		// sorting, no allocation per tick.
		set := reg.BindActive()
		buf := make([]core.Value, 0, set.Len())
		go func() {
			defer close(samplerDone)
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					buf = set.EvaluateBatch(buf, false)
				}
			}
		}()
	} else {
		close(samplerDone)
	}
	elapsed := runGrainLoad(rt, nTasks, grain)
	close(stop)
	<-samplerDone
	return elapsed
}

// grainPoint is one row of the overhead-vs-grain table.
type grainPoint struct {
	GrainUs            float64 `json:"grain_us"`
	Tasks              int     `json:"tasks"`
	PerTaskUs          float64 `json:"per_task_us"`
	SchedOverheadPct   float64 `json:"sched_overhead_pct"`
	CounterOverheadPct float64 `json:"counter_sampling_overhead_pct"`
	SampledPerTaskUs   float64 `json:"sampled_per_task_us"`
}

// overheadGrains is the sweep the paper's Section VI covers (HPX showed
// fine grains where the runtime saturates and coarse grains where
// counters are free).
var overheadGrains = []time.Duration{
	1 * time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	1 * time.Millisecond,
}

// tasksForGrain sizes the batch so each measurement runs long enough to
// average out scheduler noise without making the sweep minutes long.
func tasksForGrain(g time.Duration) int {
	const budget = 150 * time.Millisecond
	n := int(budget / g)
	if n > 20000 {
		n = 20000
	}
	if n < 100 {
		n = 100
	}
	return n
}

// measureGrainPoint produces one table row, taking the minimum of reps
// runs to suppress scheduling noise.
func measureGrainPoint(workers int, grain time.Duration, reps int) grainPoint {
	nTasks := tasksForGrain(grain)
	best := func(sampled bool) time.Duration {
		min := time.Duration(1<<62 - 1)
		for i := 0; i < reps; i++ {
			if d := measureGrain(workers, nTasks, grain, sampled, false, false); d < min {
				min = d
			}
		}
		return min
	}
	bare := best(false)
	sampled := best(true)
	perTask := float64(bare.Nanoseconds()) / float64(nTasks)
	// Per-worker ideal: tasks run grain-long bodies spread over the pool.
	ideal := float64(grain.Nanoseconds()) * float64(nTasks) / float64(workers)
	schedPct := (float64(bare.Nanoseconds()) - ideal) / ideal * 100
	counterPct := (float64(sampled.Nanoseconds()) - float64(bare.Nanoseconds())) /
		float64(bare.Nanoseconds()) * 100
	if counterPct < 0 {
		counterPct = 0 // run-to-run noise: sampling cannot speed the run up
	}
	return grainPoint{
		GrainUs:            float64(grain.Nanoseconds()) / 1e3,
		Tasks:              nTasks,
		PerTaskUs:          perTask / 1e3,
		SchedOverheadPct:   schedPct,
		CounterOverheadPct: counterPct,
		SampledPerTaskUs:   float64(sampled.Nanoseconds()) / float64(nTasks) / 1e3,
	}
}

// measureWatchdogOverheadPct compares the 10 µs grain batch with and
// without the default watchdog (100 ms sweeps over per-worker atomics).
// The watchdog only reads counters the scheduler already maintains, so
// the issue budgets it at <= 1 % on this grain.
func measureWatchdogOverheadPct(workers, reps int) float64 {
	const grain = 10 * time.Microsecond
	nTasks := tasksForGrain(grain)
	// Interleave the two configurations so machine-load drift hits both
	// minima equally; an unpaired min-of-N can swing several percent.
	bare := time.Duration(1<<62 - 1)
	guarded := bare
	for i := 0; i < reps; i++ {
		if d := measureGrain(workers, nTasks, grain, false, false, false); d < bare {
			bare = d
		}
		if d := measureGrain(workers, nTasks, grain, false, true, false); d < guarded {
			guarded = d
		}
	}
	pct := (float64(guarded.Nanoseconds()) - float64(bare.Nanoseconds())) /
		float64(bare.Nanoseconds()) * 100
	if pct < 0 {
		pct = 0 // run-to-run noise: the watchdog cannot speed the run up
	}
	return pct
}

// measureTracingOverheadPct compares the 10 µs grain batch with and
// without causal tracing. Tracing allocates a taskMeta per spawn,
// captures the spawn stack's raw PCs, and appends one event per task
// under the tracer mutex; the issue budgets it at <= 25 % on this
// grain. The tracing-OFF path adds only one atomic tracer load per
// task over the previous runtime, which is below measurement noise —
// the bare configuration here IS the tracing-off cost, tracked across
// PRs through SpawnGetNs and the grain table in BENCH_taskrt.json.
func measureTracingOverheadPct(workers, reps int) float64 {
	const grain = 10 * time.Microsecond
	nTasks := tasksForGrain(grain)
	// Interleaved minima, like the watchdog measurement: machine-load
	// drift hits both configurations equally.
	bare := time.Duration(1<<62 - 1)
	traced := bare
	for i := 0; i < reps; i++ {
		if d := measureGrain(workers, nTasks, grain, false, false, false); d < bare {
			bare = d
		}
		if d := measureGrain(workers, nTasks, grain, false, false, true); d < traced {
			traced = d
		}
	}
	pct := (float64(traced.Nanoseconds()) - float64(bare.Nanoseconds())) /
		float64(bare.Nanoseconds()) * 100
	if pct < 0 {
		pct = 0 // run-to-run noise: tracing cannot speed the run up
	}
	return pct
}

// TestTracingOverheadWithinBudget asserts causal tracing's cost at the
// 10 µs grain stays within the issue's 25 % budget.
func TestTracingOverheadWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing measurement; the race detector skews the ratio")
	}
	pct := measureTracingOverheadPct(runtime.GOMAXPROCS(0), 5)
	t.Logf("tracing overhead at 10µs grain: %.2f%%", pct)
	if pct > 25 {
		t.Errorf("tracing overhead %.2f%% exceeds the 25%% budget", pct)
	}
}

// TestWatchdogOverheadWithinBudget asserts the watchdog's cost on the
// 10 µs grain stays within budget. The design figure is <= 1 %; the CI
// assertion leaves the same noise margin as the counter-overhead test.
func TestWatchdogOverheadWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing measurement; the race detector skews the ratio")
	}
	pct := measureWatchdogOverheadPct(runtime.GOMAXPROCS(0), 5)
	t.Logf("watchdog overhead at 10µs grain: %.2f%%", pct)
	if pct > 5 {
		t.Errorf("watchdog overhead %.2f%% exceeds budget", pct)
	}
}

// BenchmarkOverheadGrain reports per-task cost and overhead percentages
// for each grain; run with -bench=OverheadGrain -benchtime=1x.
func BenchmarkOverheadGrain(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	for _, g := range overheadGrains {
		g := g
		b.Run(fmt.Sprintf("grain=%v", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := measureGrainPoint(workers, g, 1)
				b.ReportMetric(p.SchedOverheadPct, "sched-overhead-%")
				b.ReportMetric(p.CounterOverheadPct, "counter-overhead-%")
				b.ReportMetric(p.PerTaskUs*1e3, "ns/task")
			}
		})
	}
}

// TestCounterOverheadWithinPaperBudget asserts the paper's headline
// claim on the real runtime: at coarse grains (>= 100 µs) the intrinsic
// counters plus a 1 kHz sampler must cost <= 10 % of the grain. Skipped
// in -short mode (it is a timing measurement, ~2 s).
func TestCounterOverheadWithinPaperBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing measurement; the race detector skews the ratio")
	}
	workers := runtime.GOMAXPROCS(0)
	for _, g := range []time.Duration{100 * time.Microsecond, time.Millisecond} {
		p := measureGrainPoint(workers, g, 3)
		t.Logf("grain=%v per-task=%.1fµs sched=%.1f%% counters=%.1f%%",
			g, p.PerTaskUs, p.SchedOverheadPct, p.CounterOverheadPct)
		// Generous CI margin over the 10 % claim: shared runners can
		// inflate any single timing run. BENCH_taskrt.json records the
		// quiet-machine numbers.
		if p.CounterOverheadPct > 25 {
			t.Errorf("grain %v: counter sampling overhead %.1f%% exceeds budget",
				g, p.CounterOverheadPct)
		}
	}
}

// TestBenchGate is the CI perf budget (scripts/bench.sh and the CI
// bench smoke run it with TASKRT_BENCH_GATE=1): it live-measures the
// 1 µs grain counter-sampling overhead and the spawn+get round trip,
// failing when the former exceeds 8 % or the latter regresses more
// than 2× over the committed BENCH_taskrt.json "current" baseline.
// Both budgets leave headroom over the quiet-machine numbers (≤5 %
// and 1×) so shared-runner noise does not flake the gate while real
// regressions — a lock back on the sampling path, an allocation per
// sample — blow straight through it.
func TestBenchGate(t *testing.T) {
	if os.Getenv("TASKRT_BENCH_GATE") == "" {
		t.Skip("set TASKRT_BENCH_GATE=1 to enforce the perf budgets")
	}
	if raceEnabled {
		t.Skip("timing measurement; the race detector skews the ratio")
	}
	workers := runtime.GOMAXPROCS(0)

	p := measureGrainPoint(workers, 1*time.Microsecond, 3)
	t.Logf("1µs grain: counter sampling overhead %.2f%% (budget 8%%)", p.CounterOverheadPct)
	if p.CounterOverheadPct > 8 {
		t.Errorf("counter sampling overhead at 1µs grain is %.2f%%, budget is 8%%",
			p.CounterOverheadPct)
	}

	baselinePath := os.Getenv("TASKRT_BENCH_BASELINE")
	if baselinePath == "" {
		baselinePath = "../../BENCH_taskrt.json"
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("read baseline %s: %v", baselinePath, err)
	}
	var doc struct {
		Current struct {
			SpawnGetNs float64 `json:"spawn_get_ns"`
		} `json:"current"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	if doc.Current.SpawnGetNs <= 0 {
		t.Fatalf("baseline %s has no current.spawn_get_ns", baselinePath)
	}
	spawn := measureSpawnGetNs()
	t.Logf("spawn+get: %.1f ns (baseline %.1f ns, budget 2×)", spawn, doc.Current.SpawnGetNs)
	if spawn > 2*doc.Current.SpawnGetNs {
		t.Errorf("spawn+get %.1f ns regressed more than 2× over the committed %.1f ns",
			spawn, doc.Current.SpawnGetNs)
	}
}

// benchReport is the schema of BENCH_taskrt.json.
type benchReport struct {
	GeneratedBy string       `json:"generated_by"`
	CPU         string       `json:"cpu"`
	Workers     int          `json:"workers"`
	SpawnGetNs  float64      `json:"spawn_get_ns"`
	GoidNs      float64      `json:"goroutine_id_ns"`
	LookupNs    float64      `json:"current_worker_lookup_ns"`
	WatchdogPct float64      `json:"watchdog_overhead_pct_10us"`
	TracingPct  float64      `json:"tracing_overhead_pct_10us"`
	Grains      []grainPoint `json:"overhead_by_grain"`
}

// measureSpawnGetNs times the canonical spawn+join round trip from a
// worker task (the BenchmarkSpawnGet loop, without the testing harness).
func measureSpawnGetNs() float64 {
	rt := New(WithWorkers(1))
	defer rt.Shutdown()
	const n = 20000
	root := AsyncF(rt, func() time.Duration {
		begin := time.Now()
		for i := 0; i < n; i++ {
			f := AsyncF(rt, func() int { return 1 })
			f.Get()
		}
		return time.Since(begin)
	})
	return float64(root.Get().Nanoseconds()) / n
}

func measureNs(n int, fn func()) float64 {
	begin := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return float64(time.Since(begin).Nanoseconds()) / float64(n)
}

// TestWriteBenchJSON regenerates the "current" section of
// BENCH_taskrt.json (path in TASKRT_BENCH_JSON), preserving any other
// top-level sections (e.g. the committed seed baseline). Driven by
// scripts/bench.sh; skipped otherwise.
func TestWriteBenchJSON(t *testing.T) {
	path := os.Getenv("TASKRT_BENCH_JSON")
	if path == "" {
		t.Skip("set TASKRT_BENCH_JSON=<path> to regenerate the benchmark record")
	}
	workers := runtime.GOMAXPROCS(0)
	rep := benchReport{
		GeneratedBy: "go test -run TestWriteBenchJSON (scripts/bench.sh)",
		CPU:         runtime.GOARCH,
		Workers:     workers,
		SpawnGetNs:  measureSpawnGetNs(),
		GoidNs:      measureNs(100000, func() { goroutineID() }),
		WatchdogPct: measureWatchdogOverheadPct(workers, 8),
		TracingPct:  measureTracingOverheadPct(workers, 8),
	}
	rt := New(WithWorkers(1))
	rep.LookupNs = measureNs(100000, func() { rt.currentWorker() })
	rt.Shutdown()
	for _, g := range overheadGrains {
		rep.Grains = append(rep.Grains, measureGrainPoint(workers, g, 3))
	}

	doc := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(prev, &doc) // keep unknown sections on failure below
	}
	cur, err := json.MarshalIndent(rep, "  ", "  ")
	if err != nil {
		t.Fatal(err)
	}
	doc["current"] = cur
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
