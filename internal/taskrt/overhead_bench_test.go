package taskrt

// The real-runtime analogue of the paper's Section VI overhead table:
// how much does intrinsic-counter monitoring cost, as a fraction of the
// task grain? The paper's claim is 0-10 % for HPX; this harness measures
// the same quantity for taskrt by running batches of tasks whose bodies
// busy-spin for a known grain and comparing a bare run against a run
// with the full counter set registered and sampled at 1 kHz (the
// perfcli --print-counter-interval access pattern).
//
// Two numbers come out per grain:
//
//   - sched_overhead_pct: (per-task wall time - serial body cost) /
//     serial body cost, with the body cost calibrated by running the
//     same spin loop outside the runtime. The Task Bench "minimum
//     effective task granularity" view: how small a task can be before
//     the runtime's own spawn/steal/accounting path dominates.
//   - counter_sampling_overhead_pct: relative slowdown from concurrent
//     counter evaluation. This is the paper's intrinsic-counter cost.
//
// `scripts/bench.sh` persists the table to BENCH_taskrt.json via
// TestWriteBenchJSON so the perf trajectory is tracked across PRs.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
)

// spin busy-waits for d, the standard Inncabs-style synthetic grain.
func spin(d time.Duration) {
	start := time.Now()
	for time.Since(start) < d {
	}
}

// totalCounterPatterns is the counter set a monitoring session would
// watch, matching the paper's per-run counter selection.
func totalCounterPatterns() []string {
	return []string{
		"/threads{locality#0/total}/count/cumulative",
		"/threads{locality#0/total}/time/average",
		"/threads{locality#0/total}/time/average-overhead",
		"/threads{locality#0/total}/time/cumulative",
		"/threads{locality#0/total}/time/cumulative-overhead",
		"/threads{locality#0/total}/idle-rate",
		"/threads{locality#0/total}/count/stolen",
		"/threads{locality#0/total}/count/instantaneous/pending",
	}
}

// runGrainLoad executes nTasks tasks of the given grain from a root
// worker task and returns the elapsed wall time of the whole run. It
// uses the fast spawn surface a tuned wide node uses: one batch spawn
// per wave (one deque-window publish, one notify), the known grain
// passed as the adaptive-inline hint, and futures recycled with
// Release so the steady state allocates nothing.
func runGrainLoad(rt *Runtime, nTasks int, grain time.Duration) time.Duration {
	const wave = 256 // bounded fan-out per wait, like the Inncabs loops
	grainNs := grain.Nanoseconds()
	root := AsyncF(rt, func() time.Duration {
		body := func() int { spin(grain); return 1 }
		fns := make([]func() int, wave)
		for i := range fns {
			fns[i] = body
		}
		begin := time.Now()
		for remaining := nTasks; remaining > 0; {
			n := wave
			if remaining < n {
				n = remaining
			}
			fs := AsyncBatchGrain(rt, grainNs, fns[:n])
			WaitAllOf(fs)
			ReleaseAll(fs)
			remaining -= n
		}
		return time.Since(begin)
	})
	return root.Get()
}

// measureGrain times one batch, optionally with the counter set
// registered and polled at interval during the run, optionally with
// the default watchdog sweeping the health heuristics, and optionally
// with causal tracing recording every task.
func measureGrain(workers, nTasks int, grain time.Duration, sampled, watchdog, traced bool) time.Duration {
	rt := New(WithWorkers(workers), WithAdaptiveInlining())
	defer rt.Shutdown()
	if watchdog {
		rt.StartWatchdog(WatchdogConfig{})
	}
	if traced {
		rt.EnableTracing(nTasks + 16) // roomy: no drops during the measurement
	}

	stop := make(chan struct{})
	samplerDone := make(chan struct{})
	if sampled {
		reg := core.NewRegistry()
		if err := rt.RegisterCounters(reg); err != nil {
			panic(err)
		}
		for _, p := range totalCounterPatterns() {
			if _, err := reg.AddActive(p); err != nil {
				panic(err)
			}
		}
		// Sample through a compiled BindSet into a reused buffer — the
		// intended steady-state monitoring loop: no name parsing, no
		// sorting, no allocation per tick.
		set := reg.BindActive()
		buf := make([]core.Value, 0, set.Len())
		go func() {
			defer close(samplerDone)
			tick := time.NewTicker(time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-stop:
					return
				case <-tick.C:
					buf = set.EvaluateBatch(buf, false)
				}
			}
		}()
	} else {
		close(samplerDone)
	}
	elapsed := runGrainLoad(rt, nTasks, grain)
	close(stop)
	<-samplerDone
	return elapsed
}

// grainPoint is one row of the overhead-vs-grain table. BodyUs is the
// calibrated serial cost of one task body — what the same work costs
// with no runtime under it — and is the baseline the overhead
// percentage is computed against.
type grainPoint struct {
	GrainUs            float64 `json:"grain_us"`
	BodyUs             float64 `json:"body_us"`
	Tasks              int     `json:"tasks"`
	PerTaskUs          float64 `json:"per_task_us"`
	SchedOverheadPct   float64 `json:"sched_overhead_pct"`
	CounterOverheadPct float64 `json:"counter_sampling_overhead_pct"`
	SampledPerTaskUs   float64 `json:"sampled_per_task_us"`
}

// calibrateBodyNs measures the serial per-iteration cost of the spin
// body outside the runtime. spin overshoots its nominal grain by one
// clock-poll interval (~10 % at 1 µs on a slow clock), and that
// overshoot is work the body does, not work the scheduler adds — the
// Task Bench efficiency metric divides by the serial time for the same
// reason. Minimum over reps runs.
func calibrateBodyNs(grain time.Duration, reps int) float64 {
	// Short exposures: on a shared vCPU a long serial run eats steal
	// time that the per-wave runtime runs dodge, so keep each rep well
	// under a scheduling quantum and take the minimum.
	n := tasksForGrain(grain)
	if n > 1000 {
		n = 1000
	}
	for int64(n)*grain.Nanoseconds() > 20e6 && n > 10 {
		n /= 2
	}
	best := float64(1 << 62)
	for r := 0; r < reps; r++ {
		begin := time.Now()
		for i := 0; i < n; i++ {
			spin(grain)
		}
		if v := float64(time.Since(begin).Nanoseconds()) / float64(n); v < best {
			best = v
		}
	}
	return best
}

// overheadGrains is the sweep the paper's Section VI covers (HPX showed
// fine grains where the runtime saturates and coarse grains where
// counters are free).
var overheadGrains = []time.Duration{
	1 * time.Microsecond,
	10 * time.Microsecond,
	100 * time.Microsecond,
	1 * time.Millisecond,
}

// tasksForGrain sizes the batch so each measurement runs long enough to
// average out scheduler noise without making the sweep minutes long.
func tasksForGrain(g time.Duration) int {
	const budget = 150 * time.Millisecond
	n := int(budget / g)
	if n > 20000 {
		n = 20000
	}
	if n < 100 {
		n = 100
	}
	return n
}

// measureGrainPoint produces one table row, taking the minimum of reps
// runs to suppress scheduling noise.
func measureGrainPoint(workers int, grain time.Duration, reps int) grainPoint {
	nTasks := tasksForGrain(grain)
	best := func(sampled bool) time.Duration {
		min := time.Duration(1<<62 - 1)
		for i := 0; i < reps; i++ {
			if d := measureGrain(workers, nTasks, grain, sampled, false, false); d < min {
				min = d
			}
		}
		return min
	}
	bare := best(false)
	sampled := best(true)
	bodyNs := calibrateBodyNs(grain, 3)
	perTask := float64(bare.Nanoseconds()) / float64(nTasks)
	// Per-worker ideal: the measured serial body cost spread over the
	// pool. A pool wider than the machine cannot run more than NumCPU
	// bodies at once, so the ideal is bounded by the effective
	// parallelism — otherwise an oversubscribed sweep reports phantom
	// overhead.
	eff := workers
	if n := runtime.NumCPU(); eff > n {
		eff = n
	}
	ideal := bodyNs * float64(nTasks) / float64(eff)
	schedPct := (float64(bare.Nanoseconds()) - ideal) / ideal * 100
	if schedPct < 0 {
		schedPct = 0 // calibration noise: the runtime cannot beat the serial body
	}
	counterPct := (float64(sampled.Nanoseconds()) - float64(bare.Nanoseconds())) /
		float64(bare.Nanoseconds()) * 100
	if counterPct < 0 {
		counterPct = 0 // run-to-run noise: sampling cannot speed the run up
	}
	return grainPoint{
		GrainUs:            float64(grain.Nanoseconds()) / 1e3,
		BodyUs:             bodyNs / 1e3,
		Tasks:              nTasks,
		PerTaskUs:          perTask / 1e3,
		SchedOverheadPct:   schedPct,
		CounterOverheadPct: counterPct,
		SampledPerTaskUs:   float64(sampled.Nanoseconds()) / float64(nTasks) / 1e3,
	}
}

// measureWatchdogOverheadPct compares the 10 µs grain batch with and
// without the default watchdog (100 ms sweeps over per-worker atomics).
// The watchdog only reads counters the scheduler already maintains, so
// the issue budgets it at <= 1 % on this grain.
func measureWatchdogOverheadPct(workers, reps int) float64 {
	const grain = 10 * time.Microsecond
	nTasks := tasksForGrain(grain)
	// Interleave the two configurations so machine-load drift hits both
	// minima equally; an unpaired min-of-N can swing several percent.
	bare := time.Duration(1<<62 - 1)
	guarded := bare
	for i := 0; i < reps; i++ {
		if d := measureGrain(workers, nTasks, grain, false, false, false); d < bare {
			bare = d
		}
		if d := measureGrain(workers, nTasks, grain, false, true, false); d < guarded {
			guarded = d
		}
	}
	pct := (float64(guarded.Nanoseconds()) - float64(bare.Nanoseconds())) /
		float64(bare.Nanoseconds()) * 100
	if pct < 0 {
		pct = 0 // run-to-run noise: the watchdog cannot speed the run up
	}
	return pct
}

// measureTracingOverheadPct compares the 10 µs grain batch with and
// without causal tracing. Tracing allocates a taskMeta per spawn,
// captures the spawn stack's raw PCs, and appends one event per task
// under the tracer mutex; the issue budgets it at <= 25 % on this
// grain. The tracing-OFF path adds only one atomic tracer load per
// task over the previous runtime, which is below measurement noise —
// the bare configuration here IS the tracing-off cost, tracked across
// PRs through SpawnGetNs and the grain table in BENCH_taskrt.json.
func measureTracingOverheadPct(workers, reps int) float64 {
	const grain = 10 * time.Microsecond
	nTasks := tasksForGrain(grain)
	// Interleaved minima, like the watchdog measurement: machine-load
	// drift hits both configurations equally.
	bare := time.Duration(1<<62 - 1)
	traced := bare
	for i := 0; i < reps; i++ {
		if d := measureGrain(workers, nTasks, grain, false, false, false); d < bare {
			bare = d
		}
		if d := measureGrain(workers, nTasks, grain, false, false, true); d < traced {
			traced = d
		}
	}
	pct := (float64(traced.Nanoseconds()) - float64(bare.Nanoseconds())) /
		float64(bare.Nanoseconds()) * 100
	if pct < 0 {
		pct = 0 // run-to-run noise: tracing cannot speed the run up
	}
	return pct
}

// TestTracingOverheadWithinBudget asserts causal tracing's cost at the
// 10 µs grain stays within the issue's 25 % budget.
func TestTracingOverheadWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing measurement; the race detector skews the ratio")
	}
	pct := measureTracingOverheadPct(runtime.GOMAXPROCS(0), 5)
	t.Logf("tracing overhead at 10µs grain: %.2f%%", pct)
	if pct > 25 {
		t.Errorf("tracing overhead %.2f%% exceeds the 25%% budget", pct)
	}
}

// TestWatchdogOverheadWithinBudget asserts the watchdog's cost on the
// 10 µs grain stays within budget. The design figure is <= 1 %; the CI
// assertion leaves the same noise margin as the counter-overhead test.
func TestWatchdogOverheadWithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing measurement; the race detector skews the ratio")
	}
	pct := measureWatchdogOverheadPct(runtime.GOMAXPROCS(0), 5)
	t.Logf("watchdog overhead at 10µs grain: %.2f%%", pct)
	if pct > 5 {
		t.Errorf("watchdog overhead %.2f%% exceeds budget", pct)
	}
}

// BenchmarkOverheadGrain reports per-task cost and overhead percentages
// for each grain; run with -bench=OverheadGrain -benchtime=1x.
func BenchmarkOverheadGrain(b *testing.B) {
	workers := runtime.GOMAXPROCS(0)
	for _, g := range overheadGrains {
		g := g
		b.Run(fmt.Sprintf("grain=%v", g), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				p := measureGrainPoint(workers, g, 1)
				b.ReportMetric(p.SchedOverheadPct, "sched-overhead-%")
				b.ReportMetric(p.CounterOverheadPct, "counter-overhead-%")
				b.ReportMetric(p.PerTaskUs*1e3, "ns/task")
			}
		})
	}
}

// TestCounterOverheadWithinPaperBudget asserts the paper's headline
// claim on the real runtime: at coarse grains (>= 100 µs) the intrinsic
// counters plus a 1 kHz sampler must cost <= 10 % of the grain. Skipped
// in -short mode (it is a timing measurement, ~2 s).
func TestCounterOverheadWithinPaperBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("timing measurement; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("timing measurement; the race detector skews the ratio")
	}
	workers := runtime.GOMAXPROCS(0)
	for _, g := range []time.Duration{100 * time.Microsecond, time.Millisecond} {
		p := measureGrainPoint(workers, g, 3)
		t.Logf("grain=%v per-task=%.1fµs sched=%.1f%% counters=%.1f%%",
			g, p.PerTaskUs, p.SchedOverheadPct, p.CounterOverheadPct)
		// Generous CI margin over the 10 % claim: shared runners can
		// inflate any single timing run. BENCH_taskrt.json records the
		// quiet-machine numbers.
		if p.CounterOverheadPct > 25 {
			t.Errorf("grain %v: counter sampling overhead %.1f%% exceeds budget",
				g, p.CounterOverheadPct)
		}
	}
}

// TestBenchGate is the CI perf budget (scripts/bench.sh and the CI
// bench smoke run it with TASKRT_BENCH_GATE=1). Live measurements:
// the 1 µs grain counter-sampling overhead (≤ 8 %), the 1 µs grain
// scheduling overhead (≤ 40 % — the fine-grain budget batch spawn and
// adaptive inlining exist to hold), the spawn+get round trip (≤ 2×
// the committed BENCH_taskrt.json "current" baseline) and the batch
// per-child spawn cost (≤ 1.08× its committed baseline). Every budget
// leaves headroom over the quiet-machine numbers so shared-runner
// noise does not flake the gate while real regressions — a lock back
// on the sampling path, a per-child notify in the batch publish —
// blow straight through it.
func TestBenchGate(t *testing.T) {
	if os.Getenv("TASKRT_BENCH_GATE") == "" {
		t.Skip("set TASKRT_BENCH_GATE=1 to enforce the perf budgets")
	}
	if raceEnabled {
		t.Skip("timing measurement; the race detector skews the ratio")
	}
	workers := runtime.GOMAXPROCS(0)

	p := measureGrainPoint(workers, 1*time.Microsecond, 3)
	t.Logf("1µs grain: counter sampling overhead %.2f%% (budget 8%%), sched overhead %.2f%% (budget 40%%)",
		p.CounterOverheadPct, p.SchedOverheadPct)
	if p.CounterOverheadPct > 8 {
		t.Errorf("counter sampling overhead at 1µs grain is %.2f%%, budget is 8%%",
			p.CounterOverheadPct)
	}
	// The fine-grain scheduling budget: batch spawn + adaptive inlining
	// must keep the runtime's own share of a 1 µs task under 40 % (the
	// pre-batching runtime sat near 80 %).
	if p.SchedOverheadPct > 40 {
		t.Errorf("sched overhead at 1µs grain is %.2f%%, budget is 40%%", p.SchedOverheadPct)
	}

	baselinePath := os.Getenv("TASKRT_BENCH_BASELINE")
	if baselinePath == "" {
		baselinePath = "../../BENCH_taskrt.json"
	}
	raw, err := os.ReadFile(baselinePath)
	if err != nil {
		t.Fatalf("read baseline %s: %v", baselinePath, err)
	}
	var doc struct {
		Current struct {
			SpawnGetNs   float64 `json:"spawn_get_ns"`
			BatchSpawnNs float64 `json:"batch_spawn_ns"`
		} `json:"current"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("parse baseline: %v", err)
	}
	if doc.Current.SpawnGetNs <= 0 {
		t.Fatalf("baseline %s has no current.spawn_get_ns", baselinePath)
	}
	spawn := measureSpawnGetNs()
	t.Logf("spawn+get: %.1f ns (baseline %.1f ns, budget 2×)", spawn, doc.Current.SpawnGetNs)
	if spawn > 2*doc.Current.SpawnGetNs {
		t.Errorf("spawn+get %.1f ns regressed more than 2× over the committed %.1f ns",
			spawn, doc.Current.SpawnGetNs)
	}
	if doc.Current.BatchSpawnNs > 0 {
		// The batch path's budget is much tighter than spawn+get's 2×:
		// its whole point is a stable low per-child constant, so more
		// than 8 % over the committed number is a regression. Min of
		// several runs keeps machine noise out of the comparison.
		batch := measureBatchSpawnNs()
		for i := 0; i < 4; i++ {
			if b := measureBatchSpawnNs(); b < batch {
				batch = b
			}
		}
		t.Logf("batch spawn: %.1f ns/child (baseline %.1f ns, budget +8%%)",
			batch, doc.Current.BatchSpawnNs)
		if batch > 1.08*doc.Current.BatchSpawnNs {
			t.Errorf("batch spawn %.1f ns/child regressed more than 8%% over the committed %.1f ns",
				batch, doc.Current.BatchSpawnNs)
		}
	}
}

// benchReport is the schema of BENCH_taskrt.json.
type benchReport struct {
	GeneratedBy  string  `json:"generated_by"`
	CPU          string  `json:"cpu"`
	Workers      int     `json:"workers"`
	SpawnGetNs   float64 `json:"spawn_get_ns"`
	BatchSpawnNs float64 `json:"batch_spawn_ns"`
	GoidNs       float64 `json:"goroutine_id_ns"`
	LookupNs     float64 `json:"current_worker_lookup_ns"`
	WatchdogPct  float64 `json:"watchdog_overhead_pct_10us"`
	TracingPct   float64 `json:"tracing_overhead_pct_10us"`
	// Adaptive-inline decision state after the 1 µs grain run: the
	// /runtime{locality#0/total}/grain/* counter values.
	InlineThresholdNs int64              `json:"inline_threshold_ns"`
	GrainInlined      int64              `json:"grain_inlined"`
	GrainSpawned      int64              `json:"grain_spawned"`
	Grains            []grainPoint       `json:"overhead_by_grain"`
	WorkerSweep       []workerSweepPoint `json:"overhead_by_workers"`
}

// workerSweepPoint is one row of the workers×grain sweep: the same
// sched-overhead quantity as the grain table, at an explicit pool
// width, so the batch/steal path is exercised beyond one worker.
type workerSweepPoint struct {
	Workers          int     `json:"workers"`
	GrainUs          float64 `json:"grain_us"`
	PerTaskUs        float64 `json:"per_task_us"`
	SchedOverheadPct float64 `json:"sched_overhead_pct"`
}

// measureSpawnGetNs times the canonical spawn+join round trip from a
// worker task (the BenchmarkSpawnGet loop, without the testing harness).
// The loop recycles each future, so it times the allocation-free fused
// lifecycle a spawn-heavy caller gets. Minimum over a few short runs:
// one long run is a sitting target for vCPU steal.
func measureSpawnGetNs() float64 {
	rt := New(WithWorkers(1))
	defer rt.Shutdown()
	const n = 5000
	best := float64(1 << 62)
	for r := 0; r < 4; r++ {
		root := AsyncF(rt, func() time.Duration {
			begin := time.Now()
			for i := 0; i < n; i++ {
				f := AsyncF(rt, func() int { return 1 })
				f.Get()
				f.Release()
			}
			return time.Since(begin)
		})
		if v := float64(root.Get().Nanoseconds()) / n; v < best {
			best = v
		}
	}
	return best
}

// measureBatchSpawnNs times the per-child cost of the batch spawn path:
// SpawnBatch waves of empty tasks, joined and recycled, from a worker
// task. The quantity TestBenchGate budgets against regression.
func measureBatchSpawnNs() float64 {
	rt := New(WithWorkers(1))
	defer rt.Shutdown()
	const wave = 256
	const waves = 20
	best := float64(1 << 62)
	for r := 0; r < 3; r++ {
		root := AsyncF(rt, func() time.Duration {
			body := func() int { return 1 }
			fns := make([]func() int, wave)
			for i := range fns {
				fns[i] = body
			}
			begin := time.Now()
			for i := 0; i < waves; i++ {
				fs := AsyncBatch(rt, fns)
				WaitAllOf(fs)
				ReleaseAll(fs)
			}
			return time.Since(begin)
		})
		if v := float64(root.Get().Nanoseconds()) / (wave * waves); v < best {
			best = v
		}
	}
	return best
}

func measureNs(n int, fn func()) float64 {
	begin := time.Now()
	for i := 0; i < n; i++ {
		fn()
	}
	return float64(time.Since(begin).Nanoseconds()) / float64(n)
}

// TestWriteBenchJSON regenerates the "current" section of
// BENCH_taskrt.json (path in TASKRT_BENCH_JSON), preserving any other
// top-level sections (e.g. the committed seed baseline). Driven by
// scripts/bench.sh; skipped otherwise.
func TestWriteBenchJSON(t *testing.T) {
	path := os.Getenv("TASKRT_BENCH_JSON")
	if path == "" {
		t.Skip("set TASKRT_BENCH_JSON=<path> to regenerate the benchmark record")
	}
	workers := runtime.GOMAXPROCS(0)
	rep := benchReport{
		GeneratedBy:  "go test -run TestWriteBenchJSON (scripts/bench.sh)",
		CPU:          runtime.GOARCH,
		Workers:      workers,
		SpawnGetNs:   measureSpawnGetNs(),
		BatchSpawnNs: measureBatchSpawnNs(),
		GoidNs:       measureNs(100000, func() { goroutineID() }),
		WatchdogPct:  measureWatchdogOverheadPct(workers, 8),
		TracingPct:   measureTracingOverheadPct(workers, 8),
	}
	rt := New(WithWorkers(1))
	rep.LookupNs = measureNs(100000, func() { rt.currentWorker() })
	rt.Shutdown()
	// Grain counters: one 1 µs run on a fresh adaptive runtime, its
	// /grain/* decision state snapshotted after the load drains.
	grt := New(WithWorkers(workers), WithAdaptiveInlining())
	runGrainLoad(grt, tasksForGrain(time.Microsecond), time.Microsecond)
	rep.InlineThresholdNs = grt.InlineThresholdNs()
	rep.GrainInlined = grt.GrainInlined()
	rep.GrainSpawned = grt.GrainSpawned()
	grt.Shutdown()
	for _, g := range overheadGrains {
		rep.Grains = append(rep.Grains, measureGrainPoint(workers, g, 3))
	}
	// Pool-width sweep: the 1 and 10 µs grains at 1 and 4 workers, so
	// the batch publish is drained by thieves as well as by its owner.
	for _, w := range []int{1, 4} {
		for _, g := range []time.Duration{time.Microsecond, 10 * time.Microsecond} {
			p := measureGrainPoint(w, g, 2)
			rep.WorkerSweep = append(rep.WorkerSweep, workerSweepPoint{
				Workers:          w,
				GrainUs:          p.GrainUs,
				PerTaskUs:        p.PerTaskUs,
				SchedOverheadPct: p.SchedOverheadPct,
			})
		}
	}

	doc := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(prev, &doc) // keep unknown sections on failure below
	}
	cur, err := json.MarshalIndent(rep, "  ", "  ")
	if err != nil {
		t.Fatal(err)
	}
	doc["current"] = cur
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
