package taskrt

import (
	"sync"
	"sync/atomic"
)

// Mutex is a drop-in replacement for sync.Mutex that counts acquisitions
// and contention, so the co-dependent Inncabs benchmarks (Intersim,
// Round) can expose their synchronization behaviour through counters.
//
// Tasks that block on a Mutex block their worker goroutine; unlike HPX's
// suspending mutexes this removes a worker from the pool for the duration
// of the wait. The Inncabs benchmarks hold their locks only for short
// critical sections, so the difference is not observable there; programs
// with long waits under lock should restructure around futures instead.
type Mutex struct {
	mu         sync.Mutex
	acquired   atomic.Int64
	contended  atomic.Int64
	registered atomic.Bool
}

// Lock acquires the mutex, counting the acquisition and whether it had to
// wait.
func (m *Mutex) Lock() {
	if m.mu.TryLock() {
		m.acquired.Add(1)
		return
	}
	m.contended.Add(1)
	m.mu.Lock()
	m.acquired.Add(1)
}

// Unlock releases the mutex.
func (m *Mutex) Unlock() { m.mu.Unlock() }

// Acquisitions returns the number of successful Lock calls.
func (m *Mutex) Acquisitions() int64 { return m.acquired.Load() }

// Contentions returns the number of Lock calls that had to wait.
func (m *Mutex) Contentions() int64 { return m.contended.Load() }

// ResetStats clears both counters.
func (m *Mutex) ResetStats() {
	m.acquired.Store(0)
	m.contended.Store(0)
}
