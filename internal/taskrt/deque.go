package taskrt

import (
	"context"
	"sync/atomic"
)

// task is one unit of schedulable work: the scheduling core every
// Future[T] embeds as its first field. Fusing the future into the task
// means one object carries a spawn from creation through queueing,
// execution and the consumer's Get — one allocation (or pool round
// trip, see Future.Release) per spawn instead of the former
// future+task+closure triple.
type task struct {
	// runner points back at the typed Future embedding this task; the
	// scheduler calls it to execute the body. Pointer-to-interface
	// conversion happens once, when the future is allocated.
	runner runnable
	// rt is the owning runtime; completion accounting (drop counters)
	// and the consumer-side wait paths need it.
	rt *Runtime
	// ctx is the task's cancellation scope (nil when the task is not
	// cancellable). The worker publishes it as its current scope while
	// the task runs, so tasks spawned from inside inherit it.
	ctx context.Context
	// meta is the task's causal-tracing identity; nil whenever tracing
	// was off at spawn time.
	meta *taskMeta
	// depthNs is the spawn-path depth at spawn time: the critical-path
	// length (in ns of own task time) accumulated from the root to this
	// task's spawn point. Completion depth (depthNs + own duration)
	// feeds the online span estimator behind the
	// /runtime{...}/critical-path counters.
	depthNs int64
	// onDone releases per-task deadline resources (a context.CancelFunc)
	// exactly once, when the task completes.
	onDone func()
	// state is the future lifecycle: futCreated -> futRunning -> futDone.
	// The producer's very last store after a run is state=futDone; a
	// consumer that observes it owns the object exclusively (Release).
	state atomic.Int32
	// doneCh is the lazily-allocated wait channel: only waiters that
	// actually park pay for a channel. After completion it holds the
	// package-wide pre-closed sentinel.
	doneCh atomic.Pointer[doneChan]
	// err is nil after a normal completion, ErrCancelled when the task
	// was dropped because its context died, or a *PanicError when the
	// task body panicked. Written before the completion publication.
	err error
	// deferred marks a Deferred-policy task (first Wait runs it inline)
	// and doubles as the shutdown fallback for spawns that raced Close.
	deferred bool
}

// runnable is the type-erased execution hook of a fused future.
type runnable interface {
	// runTask executes the task body exactly once: dispatch-time
	// cancellation check, claim, run, publish.
	runTask()
}

// doneChan wraps the wait channel so an atomic.Pointer can hold both
// "no waiter yet" (nil) and the pre-closed completion sentinel.
type doneChan struct{ ch chan struct{} }

// closedDoneChan is the sentinel a completed task publishes: any late
// waiter receives immediately without allocating a channel.
var closedDoneChan = func() *doneChan {
	d := &doneChan{ch: make(chan struct{})}
	close(d.ch)
	return d
}()

// deque is a Chase-Lev work-stealing deque (Chase & Lev, SPAA'05; the
// C11 formulation of Lê et al., PPoPP'13). The owning worker pushes and
// pops at the back (LIFO, preserving locality and bounding queue growth
// in recursive decompositions); thieves steal from the front (FIFO,
// taking the oldest - usually largest - task).
//
// The owner's pushBack/popBack never take a lock and never CAS except
// when popping the last remaining element races a thief; thieves CAS
// top once per successful steal. This replaces the seed's mutex deque,
// whose lock round trip dominated the spawn path at Inncabs-scale
// grains (1-10 us).
//
// Elements are stored as atomic pointers: a thief may read a slot that
// the owner concurrently recycles after a wrap-around; the subsequent
// top CAS rejects the stale value, and the atomic access keeps the race
// detector happy (the read-discard is benign by construction).
//
// top only ever grows; bottom grows on push and steps back on pop. The
// buffer is a power-of-two circular array that the owner doubles when
// full; thieves may keep reading a stale buffer, which is safe because
// grow preserves every live index and retired buffers are garbage
// collected, so no index is ever reused for a different task within a
// buffer a thief can still see.
type deque struct {
	top    atomic.Int64
	_      [cacheLineSize - 8]byte // keep thief-side CAS traffic off the owner's line
	bottom atomic.Int64
	_      [cacheLineSize - 8]byte
	buf    atomic.Pointer[dequeBuf]
}

const cacheLineSize = 64

// initialDequeCap must be a power of two.
const initialDequeCap = 64

type dequeBuf struct {
	mask  int64
	slots []atomic.Pointer[task]
}

func newDequeBuf(capacity int64) *dequeBuf {
	return &dequeBuf{mask: capacity - 1, slots: make([]atomic.Pointer[task], capacity)}
}

// pushBack appends a task at the owner's end and reports the new length.
// Owner-only.
func (d *deque) pushBack(t *task) int {
	b := d.bottom.Load()
	tp := d.top.Load()
	buf := d.buf.Load()
	if buf == nil {
		buf = newDequeBuf(initialDequeCap)
		d.buf.Store(buf)
	}
	if b-tp >= int64(len(buf.slots)) {
		buf = d.grow(buf, tp, b)
	}
	buf.slots[b&buf.mask].Store(t)
	d.bottom.Store(b + 1)
	return int(b + 1 - tp)
}

// pushBackN appends a whole batch of tasks at the owner's end with one
// bottom-pointer publish and reports the new length. Owner-only. This
// is the deque half of SpawnBatch: thieves cannot see any of the batch
// until the single bottom store, so the reservation window [b, b+n) is
// filled without per-task synchronisation.
func (d *deque) pushBackN(ts []*task) int {
	n := int64(len(ts))
	if n == 0 {
		return d.len()
	}
	b := d.bottom.Load()
	tp := d.top.Load()
	buf := d.buf.Load()
	if buf == nil {
		capacity := int64(initialDequeCap)
		for capacity < n {
			capacity *= 2
		}
		buf = newDequeBuf(capacity)
		d.buf.Store(buf)
	}
	for b-tp+n > int64(len(buf.slots)) {
		buf = d.grow(buf, tp, b)
	}
	for i, t := range ts {
		buf.slots[(b+int64(i))&buf.mask].Store(t)
	}
	d.bottom.Store(b + n)
	return int(b + n - tp)
}

// grow doubles the buffer, copying live elements [tp, b). Owner-only;
// thieves holding the old buffer still see correct values for any index
// they can successfully claim.
func (d *deque) grow(old *dequeBuf, tp, b int64) *dequeBuf {
	nb := newDequeBuf(int64(len(old.slots)) * 2)
	for i := tp; i < b; i++ {
		nb.slots[i&nb.mask].Store(old.slots[i&old.mask].Load())
	}
	d.buf.Store(nb)
	return nb
}

// popBack removes the most recently pushed task. Owner-only; CAS-free
// except when racing thieves for the final element.
func (d *deque) popBack() *task {
	b := d.bottom.Load() - 1
	buf := d.buf.Load()
	if buf == nil {
		return nil
	}
	// Publish the claim on slot b before reading top: a thief that
	// observes the old bottom may still race us for the last element;
	// the CAS below arbitrates.
	d.bottom.Store(b)
	tp := d.top.Load()
	if b < tp {
		// Queue was empty: undo the reservation.
		d.bottom.Store(tp)
		return nil
	}
	t := buf.slots[b&buf.mask].Load()
	if b > tp {
		// More than one element: slot b is exclusively ours.
		buf.slots[b&buf.mask].Store(nil)
		return t
	}
	// Last element: race thieves for it via top.
	if !d.top.CompareAndSwap(tp, tp+1) {
		t = nil // a thief won
	} else {
		buf.slots[b&buf.mask].Store(nil)
	}
	d.bottom.Store(tp + 1)
	return t
}

// popFront removes the oldest task (thief side). Any goroutine. Returns
// nil when empty or when it loses the top CAS to a concurrent pop; the
// caller treats both as "try elsewhere", so a spurious nil only delays,
// never loses, work.
func (d *deque) popFront() *task {
	tp := d.top.Load()
	b := d.bottom.Load()
	if tp >= b {
		return nil
	}
	buf := d.buf.Load()
	if buf == nil {
		return nil
	}
	t := buf.slots[tp&buf.mask].Load()
	if !d.top.CompareAndSwap(tp, tp+1) {
		return nil
	}
	return t
}

// len returns the current queue length (approximate under concurrency,
// exact when quiescent).
func (d *deque) len() int {
	b := d.bottom.Load()
	tp := d.top.Load()
	if n := b - tp; n > 0 {
		return int(n)
	}
	return 0
}
