package taskrt

import "sync"

// task is one unit of schedulable work.
type task struct {
	fn func(w *worker)
}

// deque is a double-ended task queue. The owning worker pushes and pops at
// the back (LIFO, preserving locality and bounding queue growth in
// recursive decompositions); thieves steal from the front (FIFO, taking
// the oldest — usually largest — task). A mutex suffices here: with
// Inncabs-scale task grains (≥1 µs) queue operations are not the
// bottleneck, and correctness is trivially auditable.
type deque struct {
	mu    sync.Mutex
	tasks []*task
}

// pushBack appends a task at the owner's end and reports the new length.
func (d *deque) pushBack(t *task) int {
	d.mu.Lock()
	d.tasks = append(d.tasks, t)
	n := len(d.tasks)
	d.mu.Unlock()
	return n
}

// popBack removes the most recently pushed task (owner side).
func (d *deque) popBack() *task {
	d.mu.Lock()
	n := len(d.tasks)
	if n == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.tasks[n-1]
	d.tasks[n-1] = nil
	d.tasks = d.tasks[:n-1]
	d.mu.Unlock()
	return t
}

// popFront removes the oldest task (thief side).
func (d *deque) popFront() *task {
	d.mu.Lock()
	if len(d.tasks) == 0 {
		d.mu.Unlock()
		return nil
	}
	t := d.tasks[0]
	d.tasks[0] = nil
	d.tasks = d.tasks[1:]
	d.mu.Unlock()
	return t
}

// len returns the current queue length.
func (d *deque) len() int {
	d.mu.Lock()
	n := len(d.tasks)
	d.mu.Unlock()
	return n
}
