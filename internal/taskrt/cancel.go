package taskrt

// Cancellation trees: tasks spawned with SpawnCtx carry a
// context.Context, and every task they spawn — directly or through any
// depth of plain Spawn calls — inherits that scope automatically.
// Cancelling the root context therefore cancels the whole subtree:
// tasks that have not started yet are dropped at dispatch (counted in
// /runtime{locality#L/total}/count/cancelled, never run), and running
// tasks observe ctx.Err() cooperatively. A future whose task was
// dropped reports ErrCancelled through Err/GetErr.
//
// This is the runtime-intrinsic recovery half of the paper's thesis:
// the same scheduler that measures pathological behaviour (stalls,
// backlogs — see watchdog.go) is the layer that can actually stop it,
// because it sits under every task.

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// ErrCancelled is reported by a future whose task was dropped because
// its cancellation scope ended before the task body ran.
var ErrCancelled = errors.New("taskrt: task cancelled")

// PanicError wraps a panic raised inside a task body: the original
// panic value plus the stack of the panicking task goroutine, captured
// at recovery time. Future.Get re-raises it; Future.Err returns it.
type PanicError struct {
	// Value is the original value passed to panic.
	Value any
	// Stack is the panicking task's stack trace (debug.Stack form).
	Stack []byte
}

// Error implements error.
func (e *PanicError) Error() string {
	return fmt.Sprintf("taskrt: task panicked: %v", e.Value)
}

// SpawnCtx launches fn under the given policy with ctx as the task's
// cancellation scope. The scope propagates to every descendant task
// spawned from inside fn (including plain Spawn/AsyncF calls). If ctx
// is already cancelled the task is dropped immediately; if it is
// cancelled while the task is queued, the task is dropped at dispatch.
// Dropped tasks complete their future with ErrCancelled and are counted
// in the runtime's cancelled counter.
func SpawnCtx[T any](ctx context.Context, rt *Runtime, policy Policy, fn func() T) *Future[T] {
	if ctx == nil {
		ctx = context.Background()
	}
	return spawn(rt, ctx, policy, 0, fn, nil)
}

// AsyncCtx is SpawnCtx with the Async policy.
func AsyncCtx[T any](ctx context.Context, rt *Runtime, fn func() T) *Future[T] {
	return SpawnCtx(ctx, rt, Async, fn)
}

// CurrentContext returns the cancellation scope of the task executing
// the call — the same ambient scope plain Spawn inherits — or
// context.Background() off a worker or inside a scope-less task. It is
// how a task body hands its own life to work the runtime cannot see:
// pass it to agas.SpawnRemoteCtx and cancelling the local task tree
// cancels (and deadline-bounds) the remote spawn too.
func (rt *Runtime) CurrentContext() context.Context {
	// curCtx is only mutated by the worker goroutine itself, and this
	// call runs on that goroutine when a task body makes it.
	if w := rt.currentWorker(); w != nil && w.curCtx != nil {
		return w.curCtx
	}
	return context.Background()
}

// SpawnTimeout is SpawnCtx with a per-spawn deadline: the task's scope
// is ctx bounded by d, and the derived timer is released when the
// future completes. The per-runtime WithTaskDeadline default, if set,
// still applies on top (the earlier deadline wins).
func SpawnTimeout[T any](ctx context.Context, rt *Runtime, policy Policy, d time.Duration, fn func() T) *Future[T] {
	if ctx == nil {
		ctx = context.Background()
	}
	dctx, cancel := context.WithTimeout(ctx, d)
	// The release hook rides into spawn so it is installed before the
	// task is published; spawn chains it with the per-runtime deadline's
	// cancel when both apply.
	return spawn(rt, dctx, policy, 0, fn, cancel)
}

// Err waits for the future and reports how it completed: nil for a
// normal completion, ErrCancelled if the task was dropped by its
// cancellation scope, or a *PanicError if the task body panicked.
// Unlike Get it never re-panics, so library code can diagnose a failed
// task without a recover.
func (f *Future[T]) Err() error {
	f.Wait()
	return f.err
}

// GetErr waits for the future and returns the value together with the
// completion error (see Err). On cancellation or panic the value is the
// zero value of T.
func (f *Future[T]) GetErr() (T, error) {
	f.Wait()
	return f.value, f.err
}

// WaitContext waits until the future completes or ctx is done,
// whichever comes first, returning nil or ctx.Err() respectively. On a
// worker goroutine the wait helps execute other pending tasks, like
// Wait. Abandoning the wait does not cancel the task: the task's own
// spawn context governs that.
func (f *Future[T]) WaitContext(ctx context.Context) error {
	if f.state.Load() == futDone {
		return nil
	}
	if err := ctx.Err(); err != nil {
		return err
	}
	w := f.rt.currentWorker()
	if f.deferred && f.state.Load() == futCreated {
		// Deferred: the first waiter runs the task inline.
		runOn(w, f.rt, &f.task)
		if f.state.Load() == futDone {
			return nil
		}
	}
	if w != nil {
		if !f.rt.helpWaitTask(w, &f.task, ctx.Done()) {
			return ctx.Err()
		}
		return nil
	}
	select {
	case <-f.waitChan():
		f.settleDone()
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
