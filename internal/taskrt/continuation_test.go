package taskrt

import (
	"sync/atomic"
	"testing"
	"time"
)

func TestThenChains(t *testing.T) {
	rt := newTestRuntime(t, 2)
	a := AsyncF(rt, func() int { return 21 })
	b := Then(a, Async, func(v int) int { return v * 2 })
	c := Then(b, Async, func(v int) string {
		if v == 42 {
			return "ok"
		}
		return "bad"
	})
	if got := c.Get(); got != "ok" {
		t.Fatalf("chained continuation = %q", got)
	}
}

func TestThenOnCompletedFuture(t *testing.T) {
	rt := newTestRuntime(t, 2)
	a := AsyncF(rt, func() int { return 7 })
	a.Wait()
	if got := Then(a, Sync, func(v int) int { return v + 1 }).Get(); got != 8 {
		t.Fatalf("continuation on completed = %d", got)
	}
}

func TestThenDeferred(t *testing.T) {
	rt := newTestRuntime(t, 2)
	var ran atomic.Bool
	a := AsyncF(rt, func() int { return 1 })
	c := Then(a, Deferred, func(v int) int { ran.Store(true); return v })
	a.Wait()
	time.Sleep(5 * time.Millisecond)
	if ran.Load() {
		t.Fatal("deferred continuation ran before Get")
	}
	if c.Get() != 1 || !ran.Load() {
		t.Fatal("deferred continuation wrong")
	}
}

func TestWhenAll(t *testing.T) {
	rt := newTestRuntime(t, 2)
	var done atomic.Int32
	mk := func(d time.Duration) *Future[int] {
		return AsyncF(rt, func() int {
			time.Sleep(d)
			done.Add(1)
			return 0
		})
	}
	all := WhenAll(rt, mk(time.Millisecond), mk(2*time.Millisecond), mk(0))
	all.Get()
	if done.Load() != 3 {
		t.Fatalf("WhenAll completed with %d/3 done", done.Load())
	}
}

func TestWhenAny(t *testing.T) {
	rt := newTestRuntime(t, 2)
	slow := AsyncF(rt, func() int { time.Sleep(50 * time.Millisecond); return 0 })
	fast := AsyncF(rt, func() int { return 1 })
	fast.Wait()
	idx := WhenAny(rt, slow, fast).Get()
	if idx != 1 {
		t.Fatalf("WhenAny = %d want 1 (the completed one)", idx)
	}
	slow.Wait()
}

func TestWhenAnySingle(t *testing.T) {
	rt := newTestRuntime(t, 1)
	f := AsyncF(rt, func() int { time.Sleep(2 * time.Millisecond); return 0 })
	if idx := WhenAny(rt, f).Get(); idx != 0 {
		t.Fatalf("WhenAny single = %d", idx)
	}
}
