package taskrt

import (
	"runtime"
	"sync"
)

// goroutineID extracts the numeric id of the calling goroutine from its
// stack-trace header ("goroutine 123 [running]:"). The standard library
// deliberately hides goroutine identity; parsing the header is the only
// stdlib-pure way to recover it. It costs on the order of a microsecond,
// so the runtime only consults it on the Future slow path and at task
// submission, never per queue operation.
func goroutineID() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine ".
	const prefix = len("goroutine ")
	var id uint64
	for i := prefix; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// workerMap associates worker goroutines with their worker structure so
// that Async and Future.Get can detect whether they run on a worker (and
// which) without threading a context through user code.
type workerMap struct {
	mu sync.RWMutex
	m  map[uint64]*worker
}

func newWorkerMap() *workerMap {
	return &workerMap{m: make(map[uint64]*worker)}
}

func (wm *workerMap) register(id uint64, w *worker) {
	wm.mu.Lock()
	wm.m[id] = w
	wm.mu.Unlock()
}

func (wm *workerMap) unregister(id uint64) {
	wm.mu.Lock()
	delete(wm.m, id)
	wm.mu.Unlock()
}

func (wm *workerMap) lookup(id uint64) *worker {
	wm.mu.RLock()
	w := wm.m[id]
	wm.mu.RUnlock()
	return w
}
