package taskrt

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// goroutineID returns the numeric id of the calling goroutine.
//
// On amd64/arm64 this is a few nanoseconds: an assembly helper reads the
// goid field straight out of the runtime's g struct, at an offset
// calibrated (and cross-checked against the stack-header parse) once at
// package init; see goid_fast.go. If calibration fails - e.g. a future
// Go release rearranges the g struct - or on other architectures, it
// falls back to parsing the runtime.Stack header, which costs on the
// order of a microsecond. The fallback keeps correctness independent of
// runtime internals; the fast path is what lets the spawn hot path
// consult goroutine identity at all.
func goroutineID() uint64 {
	if id, ok := fastGoroutineID(); ok {
		return id
	}
	return goroutineIDSlow()
}

// goroutineIDSlow extracts the goroutine id from its stack-trace header
// ("goroutine 123 [running]:"). The standard library deliberately hides
// goroutine identity; parsing the header is the only stdlib-pure way to
// recover it.
func goroutineIDSlow() uint64 {
	var buf [40]byte
	n := runtime.Stack(buf[:], false)
	// Skip "goroutine ".
	const prefix = len("goroutine ")
	var id uint64
	for i := prefix; i < n; i++ {
		c := buf[i]
		if c < '0' || c > '9' {
			break
		}
		id = id*10 + uint64(c-'0')
	}
	return id
}

// workerMap associates worker goroutines with their worker structure so
// that Async and Future.Get can detect whether they run on a worker (and
// which) without threading a context through user code.
//
// Lookups are on the spawn hot path, so the map is sharded by goid hash
// (registration from different workers never contends) and fronted by a
// lock-free direct-mapped cache holding the most recent resolution per
// goid slot - including negative results for external submitters, which
// is safe because the Go runtime never reuses goroutine ids.
type workerMap struct {
	cache  [wmapCacheSize]atomic.Pointer[wmapEntry]
	shards [wmapShardCount]wmapShard
}

const (
	wmapShardCount = 16  // power of two
	wmapCacheSize  = 256 // power of two
)

type wmapEntry struct {
	id uint64
	w  *worker // nil caches a negative lookup
}

type wmapShard struct {
	mu sync.RWMutex
	m  map[uint64]*worker
	_  [cacheLineSize - 8]byte // keep shard locks off each other's lines
}

func newWorkerMap() *workerMap {
	wm := &workerMap{}
	for i := range wm.shards {
		wm.shards[i].m = make(map[uint64]*worker)
	}
	return wm
}

func (wm *workerMap) shard(id uint64) *wmapShard {
	// Fibonacci hash: sequential goids spread across shards.
	return &wm.shards[(id*0x9e3779b97f4a7c15)>>(64-4)&(wmapShardCount-1)]
}

func (wm *workerMap) register(id uint64, w *worker) {
	s := wm.shard(id)
	s.mu.Lock()
	s.m[id] = w
	s.mu.Unlock()
	wm.cache[id&(wmapCacheSize-1)].Store(&wmapEntry{id: id, w: w})
}

func (wm *workerMap) unregister(id uint64) {
	s := wm.shard(id)
	s.mu.Lock()
	delete(s.m, id)
	s.mu.Unlock()
	slot := &wm.cache[id&(wmapCacheSize-1)]
	if e := slot.Load(); e != nil && e.id == id {
		slot.CompareAndSwap(e, nil)
	}
}

func (wm *workerMap) lookup(id uint64) *worker {
	slot := &wm.cache[id&(wmapCacheSize-1)]
	if e := slot.Load(); e != nil && e.id == id {
		return e.w
	}
	s := wm.shard(id)
	s.mu.RLock()
	w := s.m[id]
	s.mu.RUnlock()
	// Cache hits and misses alike: a goroutine that submits once tends
	// to submit again, and goids are never reused, so a stale negative
	// entry can only be displaced, never wrong.
	slot.Store(&wmapEntry{id: id, w: w})
	return w
}
