package taskrt

import "time"

// Continuations: hpx::future::then and hpx::when_all equivalents. A
// continuation schedules automatically when its antecedent completes,
// without a blocked waiter — the composition style HPX programs use to
// avoid suspension entirely.

// Then schedules fn to run with f's value once f completes, under the
// given policy, and returns the continuation's future. If f is already
// complete, the continuation is spawned immediately; otherwise a
// lightweight watcher task performs the wait (on a worker it helps run
// other tasks, so no OS thread blocks beyond the pool).
func Then[T, U any](f *Future[T], policy Policy, fn func(T) U) *Future[U] {
	// Sync/Fork block the spawning goroutine on the antecedent, which
	// is the documented semantic of those policies; Async/Deferred
	// defer the wait to the pool or to the consumer.
	return Spawn(f.rt, policy, func() U {
		return fn(f.Get())
	})
}

// WhenAll returns a future that completes when every given future has
// completed (hpx::when_all). The returned future carries no value; use
// GetAll for homogeneous value collection.
func WhenAll(rt *Runtime, fs ...Waiter) *Future[struct{}] {
	return Spawn(rt, Async, func() struct{} {
		for _, f := range fs {
			f.Wait()
		}
		return struct{}{}
	})
}

// WhenAny returns a future resolving to the index of the first future
// observed complete (hpx::when_any). With none complete it polls by
// helping the scheduler, so a worker spent here still makes progress.
func WhenAny(rt *Runtime, fs ...Waiter) *Future[int] {
	return Spawn(rt, Async, func() int {
		for {
			for i, f := range fs {
				if f.Ready() {
					return i
				}
			}
			// Make progress instead of spinning: run one pending task
			// if on a worker; otherwise back off briefly.
			if w := rt.currentWorker(); w != nil {
				if t := w.find(); t != nil {
					w.executeInline(t)
					continue
				}
			}
			if len(fs) == 1 {
				fs[0].Wait()
				return 0
			}
			time.Sleep(20 * time.Microsecond)
		}
	})
}
