package taskrt

// The runtime watchdog turns the metrics the scheduler already keeps
// (task start times, park times, queue lengths, completion counts) into
// typed health events, following the paper's argument that intrinsic
// instrumentation keeps working exactly when external tools fail. The
// watchdog allocates nothing per sweep and reads only atomics the
// workers publish anyway, so its overhead is a handful of loads every
// Interval — measured at well under 1% on the 10 µs-grain benchmark
// (see overhead_bench_test.go / BENCH_taskrt.json).

import (
	"fmt"
	"time"
)

// HealthKind classifies a watchdog health event.
type HealthKind int

const (
	// HealthStalledTask: a task has been executing on one worker for
	// longer than StallThreshold.
	HealthStalledTask HealthKind = iota
	// HealthStarvedWorker: a worker has been parked past
	// StarvationThreshold while tasks were pending somewhere.
	HealthStarvedWorker
	// HealthBacklogGrowth: the injector backlog grew over
	// BacklogSamples consecutive sweeps.
	HealthBacklogGrowth
	// HealthDeadlockSuspected: workers are active (inside tasks) but no
	// task has completed and no work is queued for a full stall
	// threshold — the signature of a Wait cycle.
	HealthDeadlockSuspected
)

// String returns the stable event name used in logs and tests.
func (k HealthKind) String() string {
	switch k {
	case HealthStalledTask:
		return "stalled_task"
	case HealthStarvedWorker:
		return "starved_worker"
	case HealthBacklogGrowth:
		return "backlog_growth"
	case HealthDeadlockSuspected:
		return "deadlock_suspected"
	default:
		return fmt.Sprintf("health(%d)", int(k))
	}
}

// HealthEvent is one observation the watchdog raised.
type HealthEvent struct {
	Kind HealthKind
	// Worker is the worker the event is attributed to, or -1 for
	// runtime-wide events (backlog growth, suspected deadlock).
	Worker int
	// Age is how long the offending condition had lasted when detected
	// (task runtime for stalls, park time for starvation, observation
	// window for deadlock suspicion).
	Age time.Duration
	// Backlog is the injector length for backlog events, 0 otherwise.
	Backlog int
	// Time is when the sweep observed the condition.
	Time time.Time
}

// String formats the event for log lines.
func (e HealthEvent) String() string {
	switch e.Kind {
	case HealthBacklogGrowth:
		return fmt.Sprintf("%s: injector backlog at %d and growing", e.Kind, e.Backlog)
	case HealthDeadlockSuspected:
		return fmt.Sprintf("%s: no completions for %v with active workers and empty queues", e.Kind, e.Age)
	default:
		return fmt.Sprintf("%s: worker#%d for %v", e.Kind, e.Worker, e.Age)
	}
}

// WatchdogConfig tunes the monitor. Zero values select the defaults.
type WatchdogConfig struct {
	// Interval between sweeps. Default 100ms.
	Interval time.Duration
	// StallThreshold: a task running longer than this raises
	// stalled_task; also the observation window for deadlock suspicion.
	// Default 1s.
	StallThreshold time.Duration
	// StarvationThreshold: a worker parked longer than this while work
	// is pending raises starved_worker. Default 1s.
	StarvationThreshold time.Duration
	// BacklogSamples: consecutive sweeps of injector growth that raise
	// backlog_growth. Default 5.
	BacklogSamples int
	// OnEvent, if non-nil, is called synchronously from the watchdog
	// goroutine for every event. It must not block.
	OnEvent func(HealthEvent)
}

func (c *WatchdogConfig) setDefaults() {
	if c.Interval <= 0 {
		c.Interval = 100 * time.Millisecond
	}
	if c.StallThreshold <= 0 {
		c.StallThreshold = time.Second
	}
	if c.StarvationThreshold <= 0 {
		c.StarvationThreshold = time.Second
	}
	if c.BacklogSamples <= 0 {
		c.BacklogSamples = 5
	}
}

// watchdog is the monitor state. All fields are touched only by the
// watchdog goroutine (or by a test driving sweep directly).
type watchdog struct {
	rt   *Runtime
	cfg  WatchdogConfig
	stop chan struct{}
	done chan struct{}

	// Deduplication: one event per episode, keyed on the episode's
	// start timestamp — a new task (new taskStartNs) or a new park
	// (new parkedSince) begins a new episode.
	lastStallStart []int64
	lastParkStart  []int64

	lastBacklog   int
	backlogStreak int

	lastExecuted     int64
	lastActiveIdle   int64
	stuckFor         time.Duration
	deadlockReported bool
}

// StartWatchdog launches the background monitor. It is a no-op when a
// watchdog is already running or the runtime is shut down. Health
// events increment the /runtime{...}/health/* counters and are passed
// to cfg.OnEvent when set. Shutdown stops the watchdog; StopWatchdog
// stops it early.
func (rt *Runtime) StartWatchdog(cfg WatchdogConfig) {
	rt.wdMu.Lock()
	defer rt.wdMu.Unlock()
	if rt.wd != nil || rt.closed.Load() {
		return
	}
	cfg.setDefaults()
	wd := newWatchdog(rt, cfg)
	rt.wd = wd
	go wd.loop()
}

// StopWatchdog stops the monitor and waits for its goroutine to exit.
// No-op when no watchdog is running.
func (rt *Runtime) StopWatchdog() {
	rt.wdMu.Lock()
	wd := rt.wd
	rt.wd = nil
	rt.wdMu.Unlock()
	if wd == nil {
		return
	}
	close(wd.stop)
	<-wd.done
}

func newWatchdog(rt *Runtime, cfg WatchdogConfig) *watchdog {
	return &watchdog{
		rt:             rt,
		cfg:            cfg,
		stop:           make(chan struct{}),
		done:           make(chan struct{}),
		lastStallStart: make([]int64, len(rt.workers)),
		lastParkStart:  make([]int64, len(rt.workers)),
	}
}

func (wd *watchdog) loop() {
	defer close(wd.done)
	tick := time.NewTicker(wd.cfg.Interval)
	defer tick.Stop()
	for {
		select {
		case <-wd.stop:
			return
		case now := <-tick.C:
			wd.sweep(now)
		}
	}
}

// emit books an event into the counters and forwards it to the callback.
func (wd *watchdog) emit(ev HealthEvent) {
	wd.rt.healthEvents.Add(1)
	switch ev.Kind {
	case HealthStalledTask:
		wd.rt.workers[ev.Worker].metrics.healthStalled.Add(1)
	case HealthStarvedWorker:
		wd.rt.workers[ev.Worker].metrics.healthStarved.Add(1)
	case HealthBacklogGrowth:
		wd.rt.healthBacklog.Add(1)
	case HealthDeadlockSuspected:
		wd.rt.healthDeadlock.Add(1)
	}
	if wd.cfg.OnEvent != nil {
		wd.safeOnEvent(ev)
	}
}

// safeOnEvent isolates the subscriber: a panicking OnEvent callback is
// recovered and counted into /runtime{...}/health/callback-errors, and
// the watchdog keeps sweeping — a buggy subscriber must not take down
// health monitoring, which matters most exactly when things are already
// going wrong.
func (wd *watchdog) safeOnEvent(ev HealthEvent) {
	defer func() {
		if recover() != nil {
			wd.rt.healthCbErrors.Add(1)
		}
	}()
	wd.cfg.OnEvent(ev)
}

// sweep takes one sample of the runtime's health. Separated from loop so
// tests can drive it with a synthetic clock.
func (wd *watchdog) sweep(now time.Time) {
	rt := wd.rt
	nowNs := now.UnixNano()
	pending := rt.pending.Load()

	var executed, activeWorkers, activeIdle int64
	for i, w := range rt.workers {
		m := &w.metrics
		executed += m.tasksExecuted.Load() + m.inlineExecuted.Load()
		if m.active.Load() != 0 {
			activeWorkers++
			// Idle time booked by a worker that is inside a task means
			// the task is help-waiting on a future (the help loop polls
			// in short parked slices) — the signature that separates a
			// blocked Wait cycle from a merely long-running task.
			activeIdle += m.idleNs.Load()
		}

		// Stalled task: the innermost task on this worker has been
		// running past the threshold. One event per task episode —
		// keyed on the start timestamp.
		if start := m.taskStartNs.Load(); start != 0 && nowNs-start > int64(wd.cfg.StallThreshold) {
			if wd.lastStallStart[i] != start {
				wd.lastStallStart[i] = start
				wd.emit(HealthEvent{Kind: HealthStalledTask, Worker: i,
					Age: time.Duration(nowNs - start), Time: now})
			}
		}

		// Starved worker: parked past the threshold while work was
		// pending. Throttled workers park by design and are skipped.
		if parked := m.parkedSince.Load(); parked != 0 && pending > 0 &&
			nowNs-parked > int64(wd.cfg.StarvationThreshold) && !w.throttled() {
			if wd.lastParkStart[i] != parked {
				wd.lastParkStart[i] = parked
				wd.emit(HealthEvent{Kind: HealthStarvedWorker, Worker: i,
					Age: time.Duration(nowNs - parked), Time: now})
			}
		}
	}

	// Injector backlog growth: strictly increasing length over
	// BacklogSamples consecutive sweeps.
	backlog := rt.injector.len()
	if backlog > wd.lastBacklog {
		wd.backlogStreak++
		if wd.backlogStreak >= wd.cfg.BacklogSamples {
			wd.backlogStreak = 0
			wd.emit(HealthEvent{Kind: HealthBacklogGrowth, Worker: -1,
				Backlog: backlog, Time: now})
		}
	} else {
		wd.backlogStreak = 0
	}
	wd.lastBacklog = backlog

	// Deadlocked Wait cycle heuristic: workers are inside tasks, yet
	// nothing completes, nothing is queued anywhere, and the active
	// workers keep booking help-poll idle time — every active task is
	// waiting on a future only another waiter could complete. (A task
	// that is simply slow books no idle time and is reported as a stall
	// instead.) Observed continuously for a full StallThreshold before
	// reporting, once per episode (progress rearms it).
	if executed == wd.lastExecuted && activeWorkers > 0 && pending == 0 &&
		activeIdle > wd.lastActiveIdle {
		wd.stuckFor += wd.cfg.Interval
		if wd.stuckFor >= wd.cfg.StallThreshold && !wd.deadlockReported {
			wd.deadlockReported = true
			wd.emit(HealthEvent{Kind: HealthDeadlockSuspected, Worker: -1,
				Age: wd.stuckFor, Time: now})
		}
	} else {
		wd.stuckFor = 0
		wd.deadlockReported = false
	}
	wd.lastExecuted = executed
	wd.lastActiveIdle = activeIdle
}
