//go:build arm64

#include "textflag.h"

// func getgoid(off uintptr) uint64
//
// The g pointer lives in a dedicated register (R28, spelled "g") on
// arm64. Returns the word at byte offset off within the g struct.
TEXT ·getgoid(SB), NOSPLIT, $0-16
	MOVD off+0(FP), R1
	MOVD g, R0
	ADD  R1, R0, R0
	MOVD (R0), R0
	MOVD R0, ret+8(FP)
	RET
