package taskrt

import (
	"context"
	"runtime"
	"sync/atomic"
	"time"
)

// Batch spawn: launching the N children of a wide node as one scheduler
// transaction. A single spawn pays a queue publish, a pending-count
// add, a peak update and a wakeup notify; SpawnBatch pays each of those
// once for the whole batch — one Chase–Lev bottom-pointer publish (or
// one injector chain splice from outside the pool), one metrics add,
// one notify. At Inncabs grains (1–10µs) that turns the dominant
// per-child cost of wide nodes into a per-wave cost.

// SpawnBatch launches every fn under the given policy and returns
// their futures, in order. Async and Optional batches are enqueued as
// one scheduler transaction; other policies keep their per-task
// semantics (Sync/Fork run each body at the spawn point, Deferred
// defers each to its first Wait).
func SpawnBatch[T any](rt *Runtime, policy Policy, fns []func() T) []*Future[T] {
	return spawnBatch(rt, nil, policy, 0, fns)
}

// AsyncBatch is SpawnBatch with the Async policy.
func AsyncBatch[T any](rt *Runtime, fns []func() T) []*Future[T] {
	return spawnBatch(rt, nil, Async, 0, fns)
}

// AsyncBatchCtx is AsyncBatch with ctx as every member's cancellation
// scope: one scope covers the batch, and a scope that dies while
// members are queued drops each of them at dispatch with exact
// cancelled-counter accounting, like single spawns.
func AsyncBatchCtx[T any](ctx context.Context, rt *Runtime, fns []func() T) []*Future[T] {
	if ctx == nil {
		ctx = context.Background()
	}
	return spawnBatch(rt, ctx, Async, 0, fns)
}

// AsyncBatchGrain is AsyncBatch with a caller-supplied estimate of each
// member's body duration in nanoseconds, feeding the adaptive-inline
// policy (see AsyncGrain).
func AsyncBatchGrain[T any](rt *Runtime, grainNs int64, fns []func() T) []*Future[T] {
	return spawnBatch(rt, nil, Async, grainNs, fns)
}

// spawnBatch is the batch launch path. Per-batch bookkeeping that
// single spawns pay per task — the clock read, the spawn-depth
// computation, the spawn-site stack capture, the deadline scope — is
// paid once and stamped onto every member.
func spawnBatch[T any](rt *Runtime, ctx context.Context, policy Policy, grainNs int64, fns []func() T) []*Future[T] {
	out := make([]*Future[T], len(fns))
	if len(fns) == 0 {
		return out
	}
	if policy != Async && policy != Optional {
		for i, fn := range fns {
			out[i] = spawn(rt, ctx, policy, grainNs, fn, nil)
		}
		return out
	}
	w := rt.currentWorker()
	tr := rt.loadTracer()
	var depth, nowNs int64
	if tr != nil || w != nil {
		nowNs = time.Now().UnixNano()
		if w != nil {
			depth = w.spawnDepthNs(nowNs)
		}
	}
	var pcs [siteDepth]uintptr
	if tr != nil {
		runtime.Callers(2, pcs[:])
	}
	if ctx == nil && w != nil {
		ctx = w.curCtx // join the running task's cancellation tree
	}
	var onDone func()
	if d := rt.taskDeadline; d > 0 {
		// One deadline scope covers the whole batch; its timer is
		// released when the last member completes.
		base := ctx
		if base == nil {
			base = context.Background()
		}
		dctx, cancel := context.WithTimeout(base, d)
		ctx = dctx
		var left atomic.Int64
		left.Store(int64(len(fns)))
		onDone = func() {
			if left.Add(-1) == 0 {
				cancel()
			}
		}
	}
	for i, fn := range fns {
		f := newFuture[T](rt)
		f.fn = fn
		f.ctx = ctx
		f.onDone = onDone
		f.depthNs = depth
		if tr != nil {
			f.meta = tr.newMetaFrom(w, nowNs, pcs)
		}
		out[i] = f
	}
	if ctx != nil && ctx.Err() != nil {
		// Dead on arrival: every member is dropped and counted, exactly
		// like single spawns.
		for _, f := range out {
			f.drop()
		}
		return out
	}
	if rt.shouldShed() {
		// Overload: the whole batch is shed to inline execution, each
		// member counted.
		rt.shed.Add(int64(len(out)))
		for _, f := range out {
			runOn(w, rt, &f.task)
		}
		return out
	}
	// Adaptive inlining over a batch: enqueue just enough members to
	// feed idle workers, run the rest inline (see batchInlineSplit).
	k := rt.batchInlineSplit(w, grainNs, len(out))
	if rt.adaptiveInline {
		rt.grainSpawned.Add(int64(k))
		rt.grainInlined.Add(int64(len(out) - k))
	}
	if k > 0 {
		ts := make([]*task, k)
		for i := range ts {
			ts[i] = &out[i].task
		}
		if err := rt.submitBatchFrom(w, ts); err != nil {
			// Runtime shut down: fall back to deferred execution so the
			// futures still complete when queried.
			for _, f := range out[:k] {
				f.deferred = true
			}
		}
	}
	for _, f := range out[k:] {
		runOn(w, rt, &f.task)
	}
	return out
}
