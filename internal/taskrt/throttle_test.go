package taskrt

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestConcurrencyLimitBounds(t *testing.T) {
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	if rt.ConcurrencyLimit() != 4 {
		t.Fatalf("default limit = %d", rt.ConcurrencyLimit())
	}
	rt.SetConcurrencyLimit(2)
	if rt.ConcurrencyLimit() != 2 {
		t.Fatalf("limit = %d", rt.ConcurrencyLimit())
	}
	rt.SetConcurrencyLimit(0) // restores full concurrency
	if rt.ConcurrencyLimit() != 4 {
		t.Fatalf("limit after 0 = %d", rt.ConcurrencyLimit())
	}
	rt.SetConcurrencyLimit(99) // clamped
	if rt.ConcurrencyLimit() != 4 {
		t.Fatalf("limit after 99 = %d", rt.ConcurrencyLimit())
	}
}

func TestThrottledRuntimeStillCorrect(t *testing.T) {
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	rt.SetConcurrencyLimit(1)
	if got := fibRT(rt, 18); got != 2584 {
		t.Fatalf("fib(18) under throttle = %d", got)
	}
	// Raising the limit mid-flight must not lose tasks.
	var count atomic.Int64
	fs := make([]*Future[int], 100)
	for i := range fs {
		fs[i] = AsyncF(rt, func() int {
			count.Add(1)
			time.Sleep(100 * time.Microsecond)
			return 0
		})
	}
	rt.SetConcurrencyLimit(4)
	WaitAllOf(fs)
	if count.Load() != 100 {
		t.Fatalf("executed %d/100", count.Load())
	}
}

func TestThrottledWorkersConcurrency(t *testing.T) {
	// With limit 1, at most one task executes at a time even under a
	// flood (except inline help from the waiting spawner, which there
	// is none of here: the spawner is not a worker).
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	rt.SetConcurrencyLimit(1)
	var inFlight, maxInFlight atomic.Int64
	fs := make([]*Future[int], 50)
	for i := range fs {
		fs[i] = AsyncF(rt, func() int {
			cur := inFlight.Add(1)
			for {
				prev := maxInFlight.Load()
				if cur <= prev || maxInFlight.CompareAndSwap(prev, cur) {
					break
				}
			}
			time.Sleep(200 * time.Microsecond)
			inFlight.Add(-1)
			return 0
		})
	}
	WaitAllOf(fs)
	if maxInFlight.Load() > 1 {
		t.Fatalf("max in-flight = %d under limit 1", maxInFlight.Load())
	}
}

func TestUtilizationCounter(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	reg := core.NewRegistry()
	if err := rt.RegisterCounters(reg); err != nil {
		t.Fatal(err)
	}
	name := "/scheduler{locality#0/total}/utilization/instantaneous"
	if v, err := reg.Evaluate(name, false); err != nil || v.Raw != 0 {
		t.Fatalf("idle utilization = %+v (%v)", v, err)
	}
	block := make(chan struct{})
	fs := []*Future[int]{
		AsyncF(rt, func() int { <-block; return 0 }),
		AsyncF(rt, func() int { <-block; return 0 }),
	}
	time.Sleep(5 * time.Millisecond)
	if v, _ := reg.Evaluate(name, false); v.Raw != 100 {
		t.Fatalf("saturated utilization = %d", v.Raw)
	}
	close(block)
	WaitAllOf(fs)
	w, _ := reg.Evaluate("/threads{locality#0/total}/count/workers-active", false)
	if w.Raw != 2 {
		t.Fatalf("workers-active = %d", w.Raw)
	}
}

func TestNestedTimeAccounting(t *testing.T) {
	// A parent that spends all its time waiting on a child must not
	// absorb the child's execution time: total task time stays close to
	// the actual compute, not 2x.
	rt := New(WithWorkers(1))
	defer rt.Shutdown()
	reg := core.NewRegistry()
	if err := rt.RegisterCounters(reg); err != nil {
		t.Fatal(err)
	}
	const spinTime = 20 * time.Millisecond
	parent := AsyncF(rt, func() int {
		child := AsyncF(rt, func() int {
			busySpin(spinTime)
			return 1
		})
		return child.Get()
	})
	if parent.Get() != 1 {
		t.Fatal("wrong result")
	}
	v, err := reg.Evaluate("/threads{locality#0/total}/time/cumulative", false)
	if err != nil {
		t.Fatal(err)
	}
	total := time.Duration(v.Raw)
	if total < spinTime {
		t.Fatalf("cumulative task time %v below the actual compute %v", total, spinTime)
	}
	if total > spinTime*3/2 {
		t.Fatalf("cumulative task time %v double-counts the nested child (compute %v)", total, spinTime)
	}
}

// TestChaos mixes policies, panics, throttling changes and tracing under
// concurrent load: the runtime must stay correct throughout.
func TestChaos(t *testing.T) {
	rt := New(WithWorkers(4))
	defer rt.Shutdown()
	rt.EnableTracing(1 << 16)
	policies := []Policy{Async, Sync, Fork, Deferred, Optional}
	var sum atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				p := policies[(g+i)%len(policies)]
				if i%3 == 0 {
					rt.SetConcurrencyLimit(1 + (g+i)%4)
				}
				if i%17 == 0 {
					// A panicking task must not corrupt the runtime.
					f := Spawn(rt, p, func() int { panic("chaos") })
					func() {
						defer func() { recover() }()
						f.Get()
					}()
					continue
				}
				f := Spawn(rt, p, func() int {
					inner := AsyncF(rt, func() int { return 1 })
					return inner.Get() + 1
				})
				sum.Add(int64(f.Get()))
			}
		}()
	}
	wg.Wait()
	rt.SetConcurrencyLimit(0)
	// 4 goroutines x 200 iterations, of which every 17th panics:
	// the rest contribute exactly 2 each.
	want := int64(0)
	for g := 0; g < 4; g++ {
		for i := 0; i < 200; i++ {
			if i%17 != 0 {
				want += 2
			}
		}
	}
	if sum.Load() != want {
		t.Fatalf("sum = %d want %d", sum.Load(), want)
	}
	// The runtime still works afterwards.
	if got := fibRT(rt, 15); got != 610 {
		t.Fatalf("post-chaos fib = %d", got)
	}
}
