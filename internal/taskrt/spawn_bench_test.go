package taskrt

import "testing"

func BenchmarkSpawnGet(b *testing.B) {
	rt := New(WithWorkers(1))
	defer rt.Shutdown()
	root := AsyncF(rt, func() int {
		for i := 0; i < b.N; i++ {
			f := AsyncF(rt, func() int { return 1 })
			f.Get()
		}
		return 0
	})
	root.Get()
}

func BenchmarkGoroutineID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		goroutineID()
	}
}

func BenchmarkCurrentWorkerLookup(b *testing.B) {
	rt := New(WithWorkers(1))
	defer rt.Shutdown()
	for i := 0; i < b.N; i++ {
		rt.currentWorker()
	}
}
