package taskrt

import "testing"

func BenchmarkSpawnGet(b *testing.B) {
	rt := New(WithWorkers(1))
	defer rt.Shutdown()
	root := AsyncF(rt, func() int {
		for i := 0; i < b.N; i++ {
			f := AsyncF(rt, func() int { return 1 })
			f.Get()
		}
		return 0
	})
	root.Get()
}

// BenchmarkSpawnGetRelease is the allocation-free steady state: the
// future is recycled into the spawn pool after each join.
func BenchmarkSpawnGetRelease(b *testing.B) {
	rt := New(WithWorkers(1))
	defer rt.Shutdown()
	root := AsyncF(rt, func() int {
		for i := 0; i < b.N; i++ {
			f := AsyncF(rt, func() int { return 1 })
			f.Get()
			f.Release()
		}
		return 0
	})
	root.Get()
	b.ReportAllocs()
}

// BenchmarkBatchSpawn measures the per-child cost of the batch spawn
// path: 256-wide waves published as one scheduler transaction, joined
// and recycled.
func BenchmarkBatchSpawn(b *testing.B) {
	rt := New(WithWorkers(1))
	defer rt.Shutdown()
	const wave = 256
	body := func() int { return 1 }
	fns := make([]func() int, wave)
	for i := range fns {
		fns[i] = body
	}
	root := AsyncF(rt, func() int {
		b.ResetTimer()
		for i := 0; i < b.N; i += wave {
			fs := AsyncBatch(rt, fns)
			WaitAllOf(fs)
			ReleaseAll(fs)
		}
		return 0
	})
	root.Get()
	b.ReportAllocs()
}

func BenchmarkGoroutineID(b *testing.B) {
	for i := 0; i < b.N; i++ {
		goroutineID()
	}
}

func BenchmarkCurrentWorkerLookup(b *testing.B) {
	rt := New(WithWorkers(1))
	defer rt.Shutdown()
	for i := 0; i < b.N; i++ {
		rt.currentWorker()
	}
}
