package taskrt

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// workerMetrics aggregates the per-worker event counts the thread-manager
// counters report. All fields are atomics: producers (the worker loop)
// never block on consumers (counter evaluations). The struct is padded
// to cache-line boundaries on both sides: worker structs of one pool
// come from the same allocation size class, so without padding the hot
// atomics of adjacent workers can share a line and turn every counter
// increment into cross-core traffic.
type workerMetrics struct {
	_              [cacheLineSize]byte
	tasksExecuted  atomic.Int64 // completed tasks
	taskTimeNs     atomic.Int64 // cumulative task execution time
	overheadNs     atomic.Int64 // cumulative scheduling overhead
	idleNs         atomic.Int64 // cumulative parked time
	stolen         atomic.Int64 // tasks this worker stole from others
	parkedSince    atomic.Int64 // wall-clock ns when the current park began; 0 if running
	pendingPeak    atomic.Int64 // high-water mark of the local queue
	started        atomic.Int64 // wall-clock ns when the worker started
	active         atomic.Int64 // 1 while executing a task
	inlineExecuted atomic.Int64 // tasks run inline (Fork/Sync/helping)
	taskStartNs    atomic.Int64 // wall-clock ns the current task began; 0 if idle
	healthStalled  atomic.Int64 // stalled_task events attributed to this worker
	healthStarved  atomic.Int64 // starved_worker events attributed to this worker
	spanMaxNs      atomic.Int64 // running max of task completion depth (online span estimate)
	_              [cacheLineSize]byte
}

func (m *workerMetrics) reset() {
	m.tasksExecuted.Store(0)
	m.taskTimeNs.Store(0)
	m.overheadNs.Store(0)
	m.idleNs.Store(0)
	m.stolen.Store(0)
	m.pendingPeak.Store(0)
	m.inlineExecuted.Store(0)
	m.healthStalled.Store(0)
	m.healthStarved.Store(0)
	m.spanMaxNs.Store(0)
}

func (m *workerMetrics) notePending(n int) {
	for {
		old := m.pendingPeak.Load()
		if int64(n) <= old || m.pendingPeak.CompareAndSwap(old, int64(n)) {
			return
		}
	}
}

// counterSpec describes one thread-manager counter type and how to read
// it for a single worker. Per-worker instances sum one worker; the total
// instance sums all workers.
type counterSpec struct {
	counter string
	help    string
	unit    string
	read    func(m *workerMetrics) int64
	reset   func(m *workerMetrics)
	// derived counters (averages, rates) need the whole metrics set.
	total func(rt *Runtime, workers []int) int64
}

// RegisterCounters registers the runtime's full thread-manager counter
// set with reg under locality loc. Counter names follow the HPX scheme
// used in the paper:
//
//	/threads{locality#L/total}/count/cumulative
//	/threads{locality#L/worker-thread#W}/time/average
//	/threads{locality#L/total}/time/average-overhead
//	/threads{locality#L/total}/time/cumulative
//	/threads{locality#L/total}/time/cumulative-overhead
//	/threads{locality#L/total}/idle-rate
//	/threads{locality#L/total}/count/stolen
//	/threads{locality#L/total}/count/instantaneous/pending
//	/threadqueue{locality#L/worker-thread#W}/length
//	/runtime{locality#L/total}/uptime
//	/runtime{locality#L/total}/memory/allocated
//	/runtime{locality#L/total}/memory/resident
//
// The registration is idempotent per registry+locality pair only in the
// sense that registering twice returns an error from the registry.
func (rt *Runtime) RegisterCounters(reg *core.Registry) error {
	loc := rt.locality
	n := len(rt.workers)
	allWorkers := make([]int, n)
	for i := range allWorkers {
		allWorkers[i] = i
	}

	sumOver := func(workers []int, read func(m *workerMetrics) int64) int64 {
		var s int64
		for _, w := range workers {
			s += read(&rt.workers[w].metrics)
		}
		return s
	}

	type simpleSpec struct {
		counter, help, unit string
		read                func(m *workerMetrics) int64
		reset               func(m *workerMetrics)
	}
	simple := []simpleSpec{
		{"count/cumulative", "number of tasks executed", core.UnitEvents,
			func(m *workerMetrics) int64 { return m.tasksExecuted.Load() },
			func(m *workerMetrics) { m.tasksExecuted.Store(0) }},
		{"time/cumulative", "cumulative task execution time", core.UnitNanoseconds,
			func(m *workerMetrics) int64 { return m.taskTimeNs.Load() },
			func(m *workerMetrics) { m.taskTimeNs.Store(0) }},
		{"time/cumulative-overhead", "cumulative scheduling overhead", core.UnitNanoseconds,
			func(m *workerMetrics) int64 { return m.overheadNs.Load() },
			func(m *workerMetrics) { m.overheadNs.Store(0) }},
		{"count/stolen", "tasks stolen from other workers", core.UnitEvents,
			func(m *workerMetrics) int64 { return m.stolen.Load() },
			func(m *workerMetrics) { m.stolen.Store(0) }},
		{"count/inline", "tasks executed inline (fork/sync/helping)", core.UnitEvents,
			func(m *workerMetrics) int64 { return m.inlineExecuted.Load() },
			func(m *workerMetrics) { m.inlineExecuted.Store(0) }},
		{"time/idle", "cumulative parked time", core.UnitNanoseconds,
			func(m *workerMetrics) int64 { return m.idleNs.Load() },
			func(m *workerMetrics) { m.idleNs.Store(0) }},
	}

	register := func(name core.Name, info core.Info, workers []int,
		read func(m *workerMetrics) int64, reset func(m *workerMetrics)) error {
		ws := workers
		var resetAll func()
		if reset != nil {
			resetAll = func() {
				for _, w := range ws {
					reset(&rt.workers[w].metrics)
				}
			}
		}
		return reg.Register(core.NewFuncCounter(name, info, 0,
			func() int64 { return sumOver(ws, read) }, resetAll))
	}

	for _, s := range simple {
		info := core.Info{
			TypeName: "/threads/" + s.counter,
			HelpText: s.help, Unit: s.unit, Version: "1.0",
		}
		total := core.Name{Object: "threads", Counter: s.counter}.
			WithInstances(core.LocalityInstance(loc, "total", -1)...)
		if err := register(total, info, allWorkers, s.read, s.reset); err != nil {
			return err
		}
		for w := 0; w < n; w++ {
			name := core.Name{Object: "threads", Counter: s.counter}.
				WithInstances(core.LocalityInstance(loc, "worker-thread", int64(w))...)
			if err := register(name, info, []int{w}, s.read, s.reset); err != nil {
				return err
			}
		}
	}

	// Average task duration and average overhead: ratio counters over the
	// cumulative sums, matching /threads/time/average and
	// /threads/time/average-overhead in the paper.
	type ratioSpec struct {
		counter, help string
		num           func(m *workerMetrics) int64
		resetNum      func(m *workerMetrics)
		// hist is the per-worker duration distribution behind this
		// average; it makes the registered counter histogram-backed so
		// /statistics{...}/percentile@Q answers exactly.
		hist func(w *worker) *core.Histogram
	}
	ratios := []ratioSpec{
		{"time/average", "average task duration (task granularity)",
			func(m *workerMetrics) int64 { return m.taskTimeNs.Load() },
			func(m *workerMetrics) { m.taskTimeNs.Store(0); m.tasksExecuted.Store(0) },
			func(w *worker) *core.Histogram { return &w.durHist }},
		{"time/average-overhead", "average per-task scheduling overhead",
			func(m *workerMetrics) int64 { return m.overheadNs.Load() },
			func(m *workerMetrics) { m.overheadNs.Store(0); m.tasksExecuted.Store(0) },
			func(w *worker) *core.Histogram { return &w.ovhHist }},
	}
	for _, s := range ratios {
		s := s
		info := core.Info{TypeName: "/threads/" + s.counter, HelpText: s.help,
			Unit: core.UnitNanoseconds, Version: "1.0"}
		registerRatio := func(name core.Name, workers []int) error {
			ws := workers
			rc := newRatioCounter(name, info,
				func() (int64, int64) {
					var num, den int64
					for _, w := range ws {
						num += s.num(&rt.workers[w].metrics)
						den += rt.workers[w].metrics.tasksExecuted.Load()
					}
					return num, den
				},
				func() {
					for _, w := range ws {
						s.resetNum(&rt.workers[w].metrics)
						s.hist(rt.workers[w]).Reset()
					}
				})
			return reg.Register(&histRatioCounter{ratioCounter: rc,
				snapshot: func() core.HistogramSnapshot {
					var m core.HistogramSnapshot
					for _, w := range ws {
						m.Merge(s.hist(rt.workers[w]).Snapshot())
					}
					return m
				}})
		}
		total := core.Name{Object: "threads", Counter: s.counter}.
			WithInstances(core.LocalityInstance(loc, "total", -1)...)
		if err := registerRatio(total, allWorkers); err != nil {
			return err
		}
		for w := 0; w < n; w++ {
			name := core.Name{Object: "threads", Counter: s.counter}.
				WithInstances(core.LocalityInstance(loc, "worker-thread", int64(w))...)
			if err := registerRatio(name, []int{w}); err != nil {
				return err
			}
		}
	}

	// Idle rate: parked time over wall time, in 0.01% units like HPX.
	idleInfo := core.Info{TypeName: "/threads/idle-rate",
		HelpText: "ratio of parked time to wall time", Unit: "0.01%", Version: "1.0"}
	registerIdle := func(name core.Name, workers []int) error {
		ws := workers
		return reg.Register(newRatioCounter(name, idleInfo,
			func() (int64, int64) {
				var idle, wall int64
				nowNs := time.Now().UnixNano()
				for _, w := range ws {
					m := &rt.workers[w].metrics
					i := m.idleNs.Load()
					if since := m.parkedSince.Load(); since != 0 && nowNs > since {
						i += nowNs - since // park still in progress
					}
					idle += i * 10000
					wall += nowNs - m.started.Load()
				}
				return idle, wall
			},
			func() {
				nowNs := time.Now().UnixNano()
				for _, w := range ws {
					m := &rt.workers[w].metrics
					m.idleNs.Store(0)
					m.started.Store(nowNs)
					if m.parkedSince.Load() != 0 {
						m.parkedSince.Store(nowNs) // restart the in-progress park
					}
				}
			}))
	}
	totalIdle := core.Name{Object: "threads", Counter: "idle-rate"}.
		WithInstances(core.LocalityInstance(loc, "total", -1)...)
	if err := registerIdle(totalIdle, allWorkers); err != nil {
		return err
	}
	for w := 0; w < n; w++ {
		name := core.Name{Object: "threads", Counter: "idle-rate"}.
			WithInstances(core.LocalityInstance(loc, "worker-thread", int64(w))...)
		if err := registerIdle(name, []int{w}); err != nil {
			return err
		}
	}

	// Instantaneous pending tasks and per-queue lengths.
	pendInfo := core.Info{TypeName: "/threads/count/instantaneous/pending",
		HelpText: "tasks currently queued", Unit: core.UnitEvents, Version: "1.0"}
	pendName := core.Name{Object: "threads", Counter: "count/instantaneous/pending"}.
		WithInstances(core.LocalityInstance(loc, "total", -1)...)
	if err := reg.Register(core.NewFuncCounter(pendName, pendInfo, 0, func() int64 {
		var s int64
		for _, w := range rt.workers {
			s += int64(w.queue.len())
		}
		s += int64(rt.injector.len())
		return s
	}, nil)); err != nil {
		return err
	}
	activeInfo := core.Info{TypeName: "/threads/count/instantaneous/active",
		HelpText: "tasks currently executing", Unit: core.UnitEvents, Version: "1.0"}
	activeName := core.Name{Object: "threads", Counter: "count/instantaneous/active"}.
		WithInstances(core.LocalityInstance(loc, "total", -1)...)
	if err := reg.Register(core.NewFuncCounter(activeName, activeInfo, 0, func() int64 {
		var s int64
		for _, w := range rt.workers {
			s += w.metrics.active.Load()
		}
		return s
	}, nil)); err != nil {
		return err
	}
	qlenInfo := core.Info{TypeName: "/threadqueue/length",
		HelpText: "length of one worker's task queue", Unit: core.UnitEvents, Version: "1.0"}
	for w := 0; w < n; w++ {
		w := w
		name := core.Name{Object: "threadqueue", Counter: "length"}.
			WithInstances(core.LocalityInstance(loc, "worker-thread", int64(w))...)
		if err := reg.Register(core.NewFuncCounter(name, qlenInfo, 0, func() int64 {
			return int64(rt.workers[w].queue.len())
		}, nil)); err != nil {
			return err
		}
	}

	// Instantaneous scheduler utilization: executing workers over
	// allowed workers, in percent (HPX's
	// /scheduler/utilization/instantaneous).
	utilName := core.Name{Object: "scheduler", Counter: "utilization/instantaneous"}.
		WithInstances(core.LocalityInstance(loc, "total", -1)...)
	utilInfo := core.Info{TypeName: "/scheduler/utilization/instantaneous",
		HelpText: "workers currently executing a task, as a percentage of the active pool",
		Unit:     core.UnitPercent, Version: "1.0"}
	if err := reg.Register(core.NewFuncCounter(utilName, utilInfo, 0, func() int64 {
		var busy int64
		for _, w := range rt.workers {
			busy += w.metrics.active.Load()
		}
		allowed := int64(rt.ConcurrencyLimit())
		if allowed == 0 {
			return 0
		}
		return busy * 100 / allowed
	}, nil)); err != nil {
		return err
	}

	// Current concurrency limit (the APEX throttling knob).
	limName := core.Name{Object: "threads", Counter: "count/workers-active"}.
		WithInstances(core.LocalityInstance(loc, "total", -1)...)
	limInfo := core.Info{TypeName: "/threads/count/workers-active",
		HelpText: "workers allowed to run under the current concurrency limit",
		Unit:     core.UnitEvents, Version: "1.0"}
	if err := reg.Register(core.NewFuncCounter(limName, limInfo, 0, func() int64 {
		return int64(rt.ConcurrencyLimit())
	}, nil)); err != nil {
		return err
	}

	// Runtime counters: uptime and memory, from the Go runtime.
	uptime := core.NewElapsedTimeCounter(
		core.Name{Object: "runtime", Counter: "uptime"}.
			WithInstances(core.LocalityInstance(loc, "total", -1)...),
		core.Info{TypeName: "/runtime/uptime", HelpText: "elapsed wall time", Unit: core.UnitNanoseconds, Version: "1.0"})
	if err := reg.Register(uptime); err != nil {
		return err
	}
	memSpecs := []struct {
		counter, help string
		read          func(ms *runtime.MemStats) int64
	}{
		{"memory/allocated", "heap bytes allocated and in use",
			func(ms *runtime.MemStats) int64 { return int64(ms.HeapAlloc) }},
		{"memory/resident", "total bytes obtained from the OS",
			func(ms *runtime.MemStats) int64 { return int64(ms.Sys) }},
		{"memory/total-allocated", "cumulative bytes allocated",
			func(ms *runtime.MemStats) int64 { return int64(ms.TotalAlloc) }},
	}
	for _, s := range memSpecs {
		s := s
		name := core.Name{Object: "runtime", Counter: s.counter}.
			WithInstances(core.LocalityInstance(loc, "total", -1)...)
		info := core.Info{TypeName: "/runtime/" + s.counter, HelpText: s.help,
			Unit: core.UnitBytes, Version: "1.0"}
		if err := reg.Register(core.NewFuncCounter(name, info, 0, func() int64 {
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			return s.read(&ms)
		}, nil)); err != nil {
			return err
		}
	}

	// Resilience counters: tasks dropped by cancellation, spawns shed by
	// the admission controller, and the watchdog's health events.
	resSpecs := []struct {
		counter, help string
		val           *atomic.Int64
	}{
		{"count/cancelled", "tasks dropped at dispatch by cancellation", &rt.cancelled},
		{"count/shed", "async spawns degraded to inline by overload shedding", &rt.shed},
		{"health/backlog-growth", "watchdog: sustained injector backlog growth episodes", &rt.healthBacklog},
		{"health/deadlocks", "watchdog: suspected deadlocked wait cycles", &rt.healthDeadlock},
		{"health/events", "watchdog: total health events raised", &rt.healthEvents},
		{"health/callback-errors", "watchdog: OnEvent callbacks that panicked (recovered)", &rt.healthCbErrors},
	}
	for _, s := range resSpecs {
		s := s
		name := core.Name{Object: "runtime", Counter: s.counter}.
			WithInstances(core.LocalityInstance(loc, "total", -1)...)
		info := core.Info{TypeName: "/runtime/" + s.counter, HelpText: s.help,
			Unit: core.UnitEvents, Version: "1.0"}
		if err := reg.Register(core.NewFuncCounter(name, info, 0,
			s.val.Load, func() { s.val.Store(0) })); err != nil {
			return err
		}
	}

	// Adaptive-inline grain counters: the self-measured inline threshold
	// plus exact counts of the policy's decisions (see inline.go). The
	// threshold is a gauge (no reset); the decision counts reset like
	// the other event counters.
	grainSpecs := []struct {
		counter, help string
		val           *atomic.Int64
	}{
		{"grain/inlined", "async spawns run inline by the adaptive grain policy", &rt.grainInlined},
		{"grain/spawned", "async spawns enqueued while the adaptive grain policy was active", &rt.grainSpawned},
	}
	for _, s := range grainSpecs {
		s := s
		name := core.Name{Object: "runtime", Counter: s.counter}.
			WithInstances(core.LocalityInstance(loc, "total", -1)...)
		info := core.Info{TypeName: "/runtime/" + s.counter, HelpText: s.help,
			Unit: core.UnitEvents, Version: "1.0"}
		if err := reg.Register(core.NewFuncCounter(name, info, 0,
			s.val.Load, func() { s.val.Store(0) })); err != nil {
			return err
		}
	}
	thrName := core.Name{Object: "runtime", Counter: "grain/threshold-ns"}.
		WithInstances(core.LocalityInstance(loc, "total", -1)...)
	thrInfo := core.Info{TypeName: "/runtime/grain/threshold-ns",
		HelpText: "adaptive-inline grain threshold derived from the runtime's self-measured spawn cost",
		Unit:     core.UnitNanoseconds, Version: "1.0"}
	if err := reg.Register(core.NewFuncCounter(thrName, thrInfo, 0,
		rt.InlineThresholdNs, nil)); err != nil {
		return err
	}

	// Critical-path counters: the online span estimate and the derived
	// logical parallelism. Each completing task's spawn-path depth plus
	// its own time is a lower bound on the critical path; the running
	// max over all completions estimates the span without replaying the
	// DAG (AnalyzeTrace gives the exact value post-mortem).
	spanRead := func() int64 {
		var max int64
		for _, w := range rt.workers {
			if v := w.metrics.spanMaxNs.Load(); v > max {
				max = v
			}
		}
		return max
	}
	spanName := core.Name{Object: "runtime", Counter: "critical-path/span"}.
		WithInstances(core.LocalityInstance(loc, "total", -1)...)
	spanInfo := core.Info{TypeName: "/runtime/critical-path/span",
		HelpText: "online estimate of the critical path (longest spawn-chain of task own-times)",
		Unit:     core.UnitNanoseconds, Version: "1.0"}
	if err := reg.Register(core.NewFuncCounter(spanName, spanInfo, 0, spanRead, func() {
		for _, w := range rt.workers {
			w.metrics.spanMaxNs.Store(0)
		}
	})); err != nil {
		return err
	}
	parName := core.Name{Object: "runtime", Counter: "critical-path/parallelism"}.
		WithInstances(core.LocalityInstance(loc, "total", -1)...)
	parInfo := core.Info{TypeName: "/runtime/critical-path/parallelism",
		HelpText: "logical parallelism: total task time over the online span estimate",
		Unit:     core.UnitNone, Version: "1.0"}
	if err := reg.Register(newRatioCounter(parName, parInfo,
		func() (int64, int64) {
			var work int64
			for _, w := range rt.workers {
				work += w.metrics.taskTimeNs.Load()
			}
			return work, spanRead()
		},
		func() {})); err != nil {
		return err
	}

	// Trace-buffer drops: a saturated trace buffer silently truncates
	// the DAG, so the drop count is surfaced through the counter plane.
	trcName := core.Name{Object: "runtime", Counter: "trace/dropped"}.
		WithInstances(core.LocalityInstance(loc, "total", -1)...)
	trcInfo := core.Info{TypeName: "/runtime/trace/dropped",
		HelpText: "trace events dropped at the buffer limit",
		Unit:     core.UnitEvents, Version: "1.0"}
	if err := reg.Register(core.NewFuncCounter(trcName, trcInfo, 0,
		rt.TraceDropped, rt.resetTraceDropped)); err != nil {
		return err
	}

	// Per-worker-attributable health events, with a summed total.
	healthSpecs := []struct {
		counter, help string
		read          func(m *workerMetrics) int64
		reset         func(m *workerMetrics)
	}{
		{"health/stalled-tasks", "watchdog: tasks running past the stall threshold",
			func(m *workerMetrics) int64 { return m.healthStalled.Load() },
			func(m *workerMetrics) { m.healthStalled.Store(0) }},
		{"health/starved-workers", "watchdog: workers parked with work pending past the starvation threshold",
			func(m *workerMetrics) int64 { return m.healthStarved.Load() },
			func(m *workerMetrics) { m.healthStarved.Store(0) }},
	}
	for _, s := range healthSpecs {
		info := core.Info{TypeName: "/runtime/" + s.counter, HelpText: s.help,
			Unit: core.UnitEvents, Version: "1.0"}
		total := core.Name{Object: "runtime", Counter: s.counter}.
			WithInstances(core.LocalityInstance(loc, "total", -1)...)
		if err := register(total, info, allWorkers, s.read, s.reset); err != nil {
			return err
		}
		for w := 0; w < n; w++ {
			name := core.Name{Object: "runtime", Counter: s.counter}.
				WithInstances(core.LocalityInstance(loc, "worker-thread", int64(w))...)
			if err := register(name, info, []int{w}, s.read, s.reset); err != nil {
				return err
			}
		}
	}
	return nil
}

// ratioCounter reports numerator/denominator with the denominator carried
// as the Value scaling, like the HPX average counters.
type ratioCounter struct {
	name core.Name
	// nameStr caches name.String() so Value allocates nothing per read.
	nameStr string
	info    core.Info
	read    func() (num, den int64)
	reset   func()
}

func newRatioCounter(name core.Name, info core.Info, read func() (int64, int64), reset func()) *ratioCounter {
	return &ratioCounter{name: name, nameStr: name.String(), info: info, read: read, reset: reset}
}

func (c *ratioCounter) Name() core.Name { return c.name }
func (c *ratioCounter) Info() core.Info { return c.info }

func (c *ratioCounter) Value(reset bool) core.Value {
	num, den := c.read()
	if reset {
		c.reset()
	}
	scaling := den
	if scaling == 0 {
		scaling = 1
	}
	return core.Value{Name: c.nameStr, Raw: num, Scaling: scaling, Count: den,
		Time: time.Now(), Status: core.StatusValid}
}

func (c *ratioCounter) Reset() { c.reset() }

// histRatioCounter is a ratioCounter whose distribution is also
// available as a histogram, so the /statistics/percentile meta counter
// can answer quantiles exactly instead of sampling.
type histRatioCounter struct {
	*ratioCounter
	snapshot func() core.HistogramSnapshot
}

// Quantile implements core.Quantiler.
func (c *histRatioCounter) Quantile(q float64) (int64, bool) {
	return c.snapshot().Quantile(q)
}

var _ core.Quantiler = (*histRatioCounter)(nil)
