package taskrt

import (
	"sync/atomic"
	"testing"
	"time"
)

func newTestRuntime(t testing.TB, workers int) *Runtime {
	t.Helper()
	rt := New(WithWorkers(workers))
	t.Cleanup(rt.Shutdown)
	return rt
}

func TestAsyncBasic(t *testing.T) {
	rt := newTestRuntime(t, 2)
	f := AsyncF(rt, func() int { return 42 })
	if got := f.Get(); got != 42 {
		t.Fatalf("Get = %d", got)
	}
	if !f.Ready() {
		t.Fatal("future not ready after Get")
	}
}

func TestAsyncManyTasks(t *testing.T) {
	rt := newTestRuntime(t, 4)
	const n = 2000
	var sum atomic.Int64
	fs := make([]*Future[int], n)
	for i := 0; i < n; i++ {
		i := i
		fs[i] = AsyncF(rt, func() int {
			sum.Add(1)
			return i
		})
	}
	for i, f := range fs {
		if got := f.Get(); got != i {
			t.Fatalf("task %d returned %d", i, got)
		}
	}
	if sum.Load() != n {
		t.Fatalf("executed %d tasks", sum.Load())
	}
}

// fibRT is the canonical nested fork/join: every task spawns children and
// waits on them, exercising help-first waiting on workers.
func fibRT(rt *Runtime, n int) int64 {
	if n < 2 {
		return int64(n)
	}
	a := AsyncF(rt, func() int64 { return fibRT(rt, n-1) })
	b := fibRT(rt, n-2)
	return a.Get() + b
}

func TestNestedForkJoin(t *testing.T) {
	for _, workers := range []int{1, 2, 4} {
		rt := New(WithWorkers(workers))
		if got := fibRT(rt, 20); got != 6765 {
			t.Errorf("workers=%d: fib(20) = %d", workers, got)
		}
		rt.Shutdown()
	}
}

func TestPolicies(t *testing.T) {
	rt := newTestRuntime(t, 2)
	for _, p := range []Policy{Async, Sync, Fork, Deferred, Optional} {
		ran := false
		f := Spawn(rt, p, func() int { ran = true; return 7 })
		if p == Sync || p == Fork {
			if !f.Ready() {
				t.Errorf("%v: not ready immediately after spawn", p)
			}
		}
		if p == Deferred && f.Ready() {
			t.Errorf("deferred ran before Get")
		}
		if got := f.Get(); got != 7 || !ran {
			t.Errorf("%v: Get = %d ran=%v", p, got, ran)
		}
	}
}

func TestDeferredRunsOnGetOnly(t *testing.T) {
	rt := newTestRuntime(t, 2)
	var ran atomic.Bool
	f := Spawn(rt, Deferred, func() int { ran.Store(true); return 1 })
	time.Sleep(10 * time.Millisecond)
	if ran.Load() {
		t.Fatal("deferred task ran without Get")
	}
	f.Get()
	if !ran.Load() {
		t.Fatal("deferred task did not run on Get")
	}
}

func TestPolicyString(t *testing.T) {
	for p, want := range map[Policy]string{
		Async: "async", Sync: "sync", Fork: "fork",
		Deferred: "deferred", Optional: "optional", Policy(42): "policy(42)",
	} {
		if p.String() != want {
			t.Errorf("String() = %q want %q", p.String(), want)
		}
	}
	for _, s := range []string{"async", "sync", "fork", "deferred", "optional"} {
		p, err := ParsePolicy(s)
		if err != nil || p.String() != s {
			t.Errorf("ParsePolicy(%q) = %v, %v", s, p, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("ParsePolicy accepted bogus")
	}
}

func TestPanicPropagation(t *testing.T) {
	rt := newTestRuntime(t, 2)
	f := AsyncF(rt, func() int { panic("boom") })
	// Err exposes the panic without re-panicking, carrying the original
	// value and the task's stack.
	pe, ok := f.Err().(*PanicError)
	if !ok {
		t.Fatalf("Err() = %v, want *PanicError", f.Err())
	}
	if pe.Value != "boom" {
		t.Fatalf("PanicError.Value = %v, want boom", pe.Value)
	}
	if len(pe.Stack) == 0 {
		t.Fatal("PanicError.Stack is empty")
	}
	// Get re-raises the same *PanicError.
	defer func() {
		r := recover()
		if r != pe {
			t.Fatalf("recovered %v, want the future's *PanicError", r)
		}
	}()
	f.Get()
	t.Fatal("Get did not re-panic")
}

func TestWaitAll(t *testing.T) {
	rt := newTestRuntime(t, 2)
	a := AsyncF(rt, func() int { return 1 })
	b := AsyncF(rt, func() string { return "x" })
	WaitAll(a, b)
	if !a.Ready() || !b.Ready() {
		t.Fatal("WaitAll returned before completion")
	}
	fs := make([]*Future[int], 10)
	for i := range fs {
		i := i
		fs[i] = AsyncF(rt, func() int { return i * i })
	}
	WaitAllOf(fs)
	vals := GetAll(fs)
	for i, v := range vals {
		if v != i*i {
			t.Fatalf("vals[%d] = %d", i, v)
		}
	}
}

func TestGetFromNonWorker(t *testing.T) {
	rt := newTestRuntime(t, 1)
	f := AsyncF(rt, func() int {
		time.Sleep(5 * time.Millisecond)
		return 9
	})
	if got := f.Get(); got != 9 { // main goroutine parks on channel
		t.Fatalf("Get = %d", got)
	}
}

func TestShutdownIdempotentAndSpawnAfter(t *testing.T) {
	rt := New(WithWorkers(2))
	rt.Shutdown()
	rt.Shutdown() // must not hang or panic
	// Spawning after shutdown falls back to deferred execution.
	f := AsyncF(rt, func() int { return 3 })
	if got := f.Get(); got != 3 {
		t.Fatalf("post-shutdown Get = %d", got)
	}
}

func TestSubmitAfterClose(t *testing.T) {
	rt := New(WithWorkers(1))
	rt.Shutdown()
	if err := rt.submit(&task{}); err != ErrClosed {
		t.Fatalf("submit after close = %v", err)
	}
}

func TestNumWorkersAndLocality(t *testing.T) {
	rt := New(WithWorkers(3), WithLocality(5))
	defer rt.Shutdown()
	if rt.NumWorkers() != 3 || rt.Locality() != 5 {
		t.Fatalf("NumWorkers=%d Locality=%d", rt.NumWorkers(), rt.Locality())
	}
}

func TestWorkStealingHappens(t *testing.T) {
	rt := newTestRuntime(t, 4)
	// A single task fans out many children from one worker; with 4
	// workers, some children must be stolen.
	root := AsyncF(rt, func() int {
		fs := make([]*Future[int], 64)
		for i := range fs {
			fs[i] = AsyncF(rt, func() int {
				time.Sleep(time.Millisecond)
				return 1
			})
		}
		total := 0
		for _, f := range fs {
			total += f.Get()
		}
		return total
	})
	if got := root.Get(); got != 64 {
		t.Fatalf("root = %d", got)
	}
	var stolen int64
	for _, w := range rt.workers {
		stolen += w.metrics.stolen.Load()
	}
	if stolen == 0 {
		t.Fatal("no tasks were stolen despite fan-out across 4 workers")
	}
}

func TestMutexCounts(t *testing.T) {
	rt := newTestRuntime(t, 4)
	var m Mutex
	counter := 0
	fs := make([]*Future[int], 32)
	for i := range fs {
		fs[i] = AsyncF(rt, func() int {
			m.Lock()
			counter++
			time.Sleep(100 * time.Microsecond)
			m.Unlock()
			return 0
		})
	}
	WaitAllOf(fs)
	if counter != 32 {
		t.Fatalf("counter = %d (mutex did not exclude)", counter)
	}
	if m.Acquisitions() != 32 {
		t.Fatalf("acquisitions = %d", m.Acquisitions())
	}
	m.ResetStats()
	if m.Acquisitions() != 0 || m.Contentions() != 0 {
		t.Fatal("ResetStats did not clear")
	}
}

func TestGoroutineID(t *testing.T) {
	id1 := goroutineID()
	if id1 == 0 {
		t.Fatal("goroutineID returned 0")
	}
	if id2 := goroutineID(); id2 != id1 {
		t.Fatalf("unstable id: %d then %d", id1, id2)
	}
	ch := make(chan uint64)
	go func() { ch <- goroutineID() }()
	if other := <-ch; other == id1 {
		t.Fatal("two goroutines share an id")
	}
}
