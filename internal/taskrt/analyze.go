package taskrt

// Post-mortem DAG analysis over a recorded trace: the TASKPROF
// quantities. Work is the sum of all task own-times; span (the critical
// path) is the longest chain of own-times through the spawn tree;
// logical parallelism work/span bounds the speedup the task structure
// admits on any number of workers, while achieved parallelism
// work/makespan reports what this run actually extracted. Comparing the
// two separates "the program does not expose parallelism" from "the
// runtime failed to exploit it" — the distinction the paper's intrinsic
// counters are built to make, applied after the fact.

import (
	"fmt"
	"sort"
	"strings"
	"time"
)

// SiteStats aggregates the tasks spawned from one source location.
type SiteStats struct {
	// Site is the spawn call site ("file.go:123"); "<unknown>" for
	// tasks recorded without identity.
	Site string
	// Count is the number of tasks spawned there.
	Count int64
	// Total is the summed own-time of those tasks.
	Total time.Duration
	// Steals is how many of those tasks ran on a worker other than the
	// one that spawned them via work stealing.
	Steals int64
}

// TraceAnalysis is the result of AnalyzeTrace.
type TraceAnalysis struct {
	// Tasks is the number of recorded task executions.
	Tasks int
	// Roots is the number of tasks with no traced parent.
	Roots int
	// Steals is the number of tasks obtained by work stealing.
	Steals int
	// Inline is the number of tasks executed inline rather than from
	// the scheduling loop.
	Inline int
	// Work is the total own execution time across all tasks.
	Work time.Duration
	// Span is the critical path: the longest parent-to-leaf chain of
	// own-times through the spawn tree. Span <= Work always.
	Span time.Duration
	// Makespan is the wall-clock extent of the trace, from the
	// earliest spawn to the latest task completion.
	Makespan time.Duration
	// LogicalParallelism is Work/Span: the parallelism inherent in the
	// task structure. It may far exceed the worker count.
	LogicalParallelism float64
	// AchievedParallelism is Work/Makespan: the average number of
	// workers that were doing useful work. At most the worker count.
	AchievedParallelism float64
	// Sites attributes work to spawn sites, sorted by Total descending.
	Sites []SiteStats
}

// AnalyzeTrace replays a recorded trace as a spawn tree and computes
// work, span and parallelism. Task ids increase parent-to-child, so a
// single pass in decreasing-id order finalises every child before its
// parent; tasks whose parent is absent from the trace (or that have no
// identity) count as roots.
func AnalyzeTrace(events []TraceEvent) TraceAnalysis {
	a := TraceAnalysis{Tasks: len(events)}
	if len(events) == 0 {
		return a
	}
	idx := make(map[int64]int, len(events))
	siteAgg := make(map[string]*SiteStats)
	var minT, maxT time.Time
	for i, ev := range events {
		a.Work += ev.Duration
		stolen := ev.StolenFrom >= 0
		if stolen {
			a.Steals++
		}
		if ev.Inline {
			a.Inline++
		}
		begin := ev.SpawnTime
		if begin.IsZero() {
			begin = ev.Start
		}
		if minT.IsZero() || begin.Before(minT) {
			minT = begin
		}
		if end := ev.Start.Add(ev.Duration); end.After(maxT) {
			maxT = end
		}
		site := ev.Site
		if site == "" {
			site = "<unknown>"
		}
		s := siteAgg[site]
		if s == nil {
			s = &SiteStats{Site: site}
			siteAgg[site] = s
		}
		s.Count++
		s.Total += ev.Duration
		if stolen {
			s.Steals++
		}
		if ev.ID != 0 {
			idx[ev.ID] = i
		}
	}
	a.Makespan = maxT.Sub(minT)

	order := make([]int, len(events))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(x, y int) bool {
		return events[order[x]].ID > events[order[y]].ID
	})
	// childSpan[i]: the largest finalised subtree span among task i's
	// children, filled in as children are processed.
	childSpan := make([]time.Duration, len(events))
	for _, i := range order {
		ev := events[i]
		s := ev.Duration + childSpan[i]
		if pi, ok := lookupParent(idx, ev); ok {
			if s > childSpan[pi] {
				childSpan[pi] = s
			}
			continue
		}
		a.Roots++
		if s > a.Span {
			a.Span = s
		}
	}
	if a.Span > 0 {
		a.LogicalParallelism = float64(a.Work) / float64(a.Span)
	}
	if a.Makespan > 0 {
		a.AchievedParallelism = float64(a.Work) / float64(a.Makespan)
	}

	a.Sites = make([]SiteStats, 0, len(siteAgg))
	for _, s := range siteAgg {
		a.Sites = append(a.Sites, *s)
	}
	sort.Slice(a.Sites, func(x, y int) bool {
		if a.Sites[x].Total != a.Sites[y].Total {
			return a.Sites[x].Total > a.Sites[y].Total
		}
		return a.Sites[x].Site < a.Sites[y].Site
	})
	return a
}

func lookupParent(idx map[int64]int, ev TraceEvent) (int, bool) {
	if ev.ID == 0 || ev.Parent == 0 {
		return 0, false
	}
	pi, ok := idx[ev.Parent]
	return pi, ok
}

// Summary renders the analysis for humans: the headline quantities plus
// the top spawn sites by attributed work.
func (a TraceAnalysis) Summary(topSites int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "tasks                %d (%d roots, %d stolen, %d inline)\n",
		a.Tasks, a.Roots, a.Steals, a.Inline)
	fmt.Fprintf(&b, "work                 %v\n", a.Work)
	fmt.Fprintf(&b, "span (critical path) %v\n", a.Span)
	fmt.Fprintf(&b, "makespan             %v\n", a.Makespan)
	fmt.Fprintf(&b, "parallelism          %.2f logical (work/span), %.2f achieved (work/makespan)\n",
		a.LogicalParallelism, a.AchievedParallelism)
	if topSites > 0 && len(a.Sites) > 0 {
		fmt.Fprintf(&b, "top spawn sites:\n")
		n := topSites
		if n > len(a.Sites) {
			n = len(a.Sites)
		}
		for _, s := range a.Sites[:n] {
			pct := 0.0
			if a.Work > 0 {
				pct = 100 * float64(s.Total) / float64(a.Work)
			}
			fmt.Fprintf(&b, "  %-24s %8d tasks  %12v  %5.1f%% of work  (%d stolen)\n",
				s.Site, s.Count, s.Total, pct, s.Steals)
		}
	}
	return b.String()
}
