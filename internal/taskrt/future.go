package taskrt

import (
	"context"
	"fmt"
	"runtime/debug"
	"sync/atomic"
	"time"
)

// Policy selects how an Async task is launched, mirroring HPX's launch
// policies (the paper evaluates async, deferred, fork and optional).
type Policy int

const (
	// Async schedules the task for asynchronous execution on the pool
	// (HPX launch::async) — the policy the paper found fastest and used
	// for all reported results.
	Async Policy = iota
	// Sync executes the task immediately on the calling goroutine
	// (HPX launch::sync).
	Sync
	// Fork executes the task eagerly at the spawn point, approximating
	// HPX launch::fork's continuation stealing (see package docs).
	Fork
	// Deferred delays execution until the first Get/Wait, which then runs
	// the task inline (HPX launch::deferred).
	Deferred
	// Optional lets the runtime choose; it behaves like Async.
	Optional
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Async:
		return "async"
	case Sync:
		return "sync"
	case Fork:
		return "fork"
	case Deferred:
		return "deferred"
	case Optional:
		return "optional"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name as used on benchmark command lines.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "async":
		return Async, nil
	case "sync":
		return Sync, nil
	case "fork":
		return Fork, nil
	case "deferred":
		return Deferred, nil
	case "optional":
		return Optional, nil
	default:
		return Async, fmt.Errorf("taskrt: unknown launch policy %q", s)
	}
}

const (
	futCreated int32 = iota
	futRunning
	futDone
)

// Waiter is the type-erased view of a Future, usable in WaitAll.
type Waiter interface {
	// Wait blocks until the future's value is available.
	Wait()
	// Ready reports whether the value is already available.
	Ready() bool
}

// Future holds the eventual result of an Async call. The zero value is
// not usable; futures are created by Spawn.
type Future[T any] struct {
	rt    *Runtime
	state atomic.Int32
	done  chan struct{}
	fn    func() T
	// ctx is the task's cancellation scope; nil when not cancellable.
	ctx context.Context
	// onDone releases per-task deadline resources (a context.CancelFunc)
	// exactly once, when the future completes.
	onDone func()
	value  T
	// err is nil after a normal completion, ErrCancelled when the task
	// was dropped because its context died, or a *PanicError when the
	// task body panicked.
	err error
	// meta is the task's causal-tracing identity (nil with tracing
	// off); it rides on the future so Deferred bodies executed at Wait
	// keep their place in the spawn DAG.
	meta *taskMeta
	// depthNs is the spawn-path depth at the spawn point, feeding the
	// online critical-path estimator.
	depthNs int64
}

// bodyTask wraps the future's body into a pooled task carrying the
// future's cancellation scope and causal identity.
func (f *Future[T]) bodyTask(fn func() T) *task {
	t := newTask(func(*worker) { f.run(fn) })
	t.ctx = f.ctx
	t.meta = f.meta
	t.depthNs = f.depthNs
	return t
}

// Spawn launches fn under the given policy on rt and returns a Future for
// its result. Task submission from inside another task lands on the
// submitting worker's own queue (child tasks are executed or stolen in
// LIFO/FIFO order as in HPX's local-priority scheduler). When called from
// inside a task spawned with SpawnCtx, the child joins the parent's
// cancellation tree.
func Spawn[T any](rt *Runtime, policy Policy, fn func() T) *Future[T] {
	return spawn(rt, nil, policy, fn, nil)
}

// spawn is the shared launch path: ctx == nil means "inherit the
// spawning task's scope, if any". onDone, if non-nil, is invoked when
// the future completes (used to release per-spawn deadline timers); it
// must be installed here, before the task is published, because finish
// may run concurrently on a worker the moment the task is queued.
func spawn[T any](rt *Runtime, ctx context.Context, policy Policy, fn func() T, onDone func()) *Future[T] {
	f := &Future[T]{rt: rt, done: make(chan struct{}), onDone: onDone}
	// One worker resolution per spawn: every path below that needs the
	// caller's identity reuses w instead of consulting goroutine id
	// again.
	w := rt.currentWorker()
	// Spawn-path depth (always, for the online span estimator) and
	// causal identity (only while tracing): both need one clock read;
	// with tracing off and an external caller neither is taken.
	if tr := rt.loadTracer(); tr != nil {
		nowNs := time.Now().UnixNano()
		if w != nil {
			f.depthNs = w.spawnDepthNs(nowNs)
		}
		f.meta = tr.newMeta(w, nowNs, 3)
	} else if w != nil {
		f.depthNs = w.spawnDepthNs(time.Now().UnixNano())
	}
	if ctx == nil && w != nil {
		ctx = w.curCtx // join the running task's cancellation tree
	}
	if d := rt.taskDeadline; d > 0 {
		// Per-runtime default task deadline, folded into the scope so
		// dispatch-side dropping and descendant propagation both apply.
		base := ctx
		if base == nil {
			base = context.Background()
		}
		dctx, cancel := context.WithTimeout(base, d)
		ctx = dctx
		if prev := f.onDone; prev != nil {
			f.onDone = func() { prev(); cancel() }
		} else {
			f.onDone = cancel
		}
	}
	f.ctx = ctx
	if ctx != nil && ctx.Err() != nil {
		// Dead on arrival: dropped before it is ever queued, and
		// accounted exactly like a dispatch-side drop.
		f.drop()
		return f
	}
	switch policy {
	case Sync, Fork:
		// Work-first execution at the spawn point. When on a worker, the
		// execution is accounted as an inline task.
		if w != nil {
			w.executeInline(f.bodyTask(fn))
		} else {
			f.run(fn)
		}
	case Deferred:
		f.fn = fn
	default: // Async, Optional
		if rt.shouldShed() {
			// Overload: past the pending high-water mark new spawns run
			// inline (work-first), trading parallelism for bounded
			// queues — the task still executes, only its queueing is
			// shed.
			rt.shed.Add(1)
			if w != nil {
				w.executeInline(f.bodyTask(fn))
			} else {
				f.run(fn)
			}
			return f
		}
		t := f.bodyTask(fn)
		if err := rt.submitFrom(w, t); err != nil {
			// Runtime shut down: fall back to deferred execution so the
			// future still completes when queried.
			freeTask(t)
			f.fn = fn
		}
	}
	return f
}

// AsyncF is shorthand for Spawn with the Async policy, matching the
// paper's hpx::async usage.
func AsyncF[T any](rt *Runtime, fn func() T) *Future[T] {
	return Spawn(rt, Async, fn)
}

// run executes the task body exactly once and publishes the result. A
// task whose cancellation scope died while it sat in a queue is dropped
// here — at dispatch — without running user code.
func (f *Future[T]) run(fn func() T) {
	if f.ctx != nil && f.ctx.Err() != nil {
		f.drop()
		return
	}
	if !f.state.CompareAndSwap(futCreated, futRunning) {
		return // already claimed (raced Deferred Get vs something else)
	}
	defer func() {
		if r := recover(); r != nil {
			f.err = &PanicError{Value: r, Stack: debug.Stack()}
		}
		f.finish()
	}()
	f.value = fn()
}

// drop completes the future as cancelled without running the task body
// and counts the drop in the runtime's cancelled counter.
func (f *Future[T]) drop() {
	if !f.state.CompareAndSwap(futCreated, futRunning) {
		return
	}
	f.err = ErrCancelled
	if f.rt != nil {
		f.rt.cancelled.Add(1)
	}
	f.finish()
}

// finish publishes completion: state, the done channel, and any deadline
// release hook. Called exactly once per future.
func (f *Future[T]) finish() {
	f.state.Store(futDone)
	close(f.done)
	if f.onDone != nil {
		f.onDone()
	}
}

// Ready reports whether the result is available without blocking.
func (f *Future[T]) Ready() bool { return f.state.Load() == futDone }

// Wait blocks until the result is available. On a worker goroutine it
// executes other pending tasks while waiting (help-first stealing); on
// any other goroutine it parks.
func (f *Future[T]) Wait() {
	if f.state.Load() == futDone {
		return
	}
	w := f.rt.currentWorker()
	if f.fn != nil && f.state.Load() == futCreated {
		// Deferred: the first waiter runs the task inline.
		fn := f.fn
		if w != nil {
			w.executeInline(f.bodyTask(fn))
		} else {
			f.run(fn)
		}
		if f.state.Load() == futDone {
			return
		}
	}
	if w != nil {
		f.rt.helpWait(w, f.done)
		return
	}
	<-f.done
}

// Get waits for and returns the result. A panic in the task body is
// re-raised in the caller as a *PanicError carrying the original value
// and the task's stack, as a future's get would rethrow in C++; Get on
// a cancelled future panics with ErrCancelled. Use GetErr or Err to
// observe those outcomes without re-panicking.
func (f *Future[T]) Get() T {
	f.Wait()
	if f.err != nil {
		panic(f.err)
	}
	return f.value
}

// WaitAll waits for every given future, matching hpx::wait_all.
func WaitAll(fs ...Waiter) {
	for _, f := range fs {
		f.Wait()
	}
}

// WaitAllOf waits for a homogeneous slice of futures.
func WaitAllOf[T any](fs []*Future[T]) {
	for _, f := range fs {
		f.Wait()
	}
}

// GetAll waits for all futures and collects their values.
func GetAll[T any](fs []*Future[T]) []T {
	out := make([]T, len(fs))
	for i, f := range fs {
		out[i] = f.Get()
	}
	return out
}
