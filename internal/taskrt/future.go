package taskrt

import (
	"fmt"
	"sync/atomic"
)

// Policy selects how an Async task is launched, mirroring HPX's launch
// policies (the paper evaluates async, deferred, fork and optional).
type Policy int

const (
	// Async schedules the task for asynchronous execution on the pool
	// (HPX launch::async) — the policy the paper found fastest and used
	// for all reported results.
	Async Policy = iota
	// Sync executes the task immediately on the calling goroutine
	// (HPX launch::sync).
	Sync
	// Fork executes the task eagerly at the spawn point, approximating
	// HPX launch::fork's continuation stealing (see package docs).
	Fork
	// Deferred delays execution until the first Get/Wait, which then runs
	// the task inline (HPX launch::deferred).
	Deferred
	// Optional lets the runtime choose; it behaves like Async.
	Optional
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Async:
		return "async"
	case Sync:
		return "sync"
	case Fork:
		return "fork"
	case Deferred:
		return "deferred"
	case Optional:
		return "optional"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name as used on benchmark command lines.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "async":
		return Async, nil
	case "sync":
		return Sync, nil
	case "fork":
		return Fork, nil
	case "deferred":
		return Deferred, nil
	case "optional":
		return Optional, nil
	default:
		return Async, fmt.Errorf("taskrt: unknown launch policy %q", s)
	}
}

const (
	futCreated int32 = iota
	futRunning
	futDone
)

// Waiter is the type-erased view of a Future, usable in WaitAll.
type Waiter interface {
	// Wait blocks until the future's value is available.
	Wait()
	// Ready reports whether the value is already available.
	Ready() bool
}

// Future holds the eventual result of an Async call. The zero value is
// not usable; futures are created by Spawn.
type Future[T any] struct {
	rt    *Runtime
	state atomic.Int32
	done  chan struct{}
	fn    func() T
	value T
	panic any
}

// Spawn launches fn under the given policy on rt and returns a Future for
// its result. Task submission from inside another task lands on the
// submitting worker's own queue (child tasks are executed or stolen in
// LIFO/FIFO order as in HPX's local-priority scheduler).
func Spawn[T any](rt *Runtime, policy Policy, fn func() T) *Future[T] {
	f := &Future[T]{rt: rt, done: make(chan struct{})}
	// One worker resolution per spawn: every path below that needs the
	// caller's identity reuses w instead of consulting goroutine id
	// again.
	w := rt.currentWorker()
	switch policy {
	case Sync, Fork:
		// Work-first execution at the spawn point. When on a worker, the
		// execution is accounted as an inline task.
		if w != nil {
			w.executeInline(newTask(func(*worker) { f.run(fn) }))
		} else {
			f.run(fn)
		}
	case Deferred:
		f.fn = fn
	default: // Async, Optional
		t := newTask(func(*worker) { f.run(fn) })
		if err := rt.submitFrom(w, t); err != nil {
			// Runtime shut down: fall back to deferred execution so the
			// future still completes when queried.
			freeTask(t)
			f.fn = fn
		}
	}
	return f
}

// AsyncF is shorthand for Spawn with the Async policy, matching the
// paper's hpx::async usage.
func AsyncF[T any](rt *Runtime, fn func() T) *Future[T] {
	return Spawn(rt, Async, fn)
}

// run executes the task body exactly once and publishes the result.
func (f *Future[T]) run(fn func() T) {
	if !f.state.CompareAndSwap(futCreated, futRunning) {
		return // already claimed (raced Deferred Get vs something else)
	}
	defer func() {
		if r := recover(); r != nil {
			f.panic = r
		}
		f.state.Store(futDone)
		close(f.done)
	}()
	f.value = fn()
}

// Ready reports whether the result is available without blocking.
func (f *Future[T]) Ready() bool { return f.state.Load() == futDone }

// Wait blocks until the result is available. On a worker goroutine it
// executes other pending tasks while waiting (help-first stealing); on
// any other goroutine it parks.
func (f *Future[T]) Wait() {
	if f.state.Load() == futDone {
		return
	}
	w := f.rt.currentWorker()
	if f.fn != nil && f.state.Load() == futCreated {
		// Deferred: the first waiter runs the task inline.
		fn := f.fn
		if w != nil {
			w.executeInline(newTask(func(*worker) { f.run(fn) }))
		} else {
			f.run(fn)
		}
		if f.state.Load() == futDone {
			return
		}
	}
	if w != nil {
		f.rt.helpWait(w, f.done)
		return
	}
	<-f.done
}

// Get waits for and returns the result. A panic in the task body is
// re-raised in the caller, as a future's get would rethrow in C++.
func (f *Future[T]) Get() T {
	f.Wait()
	if f.panic != nil {
		panic(f.panic)
	}
	return f.value
}

// WaitAll waits for every given future, matching hpx::wait_all.
func WaitAll(fs ...Waiter) {
	for _, f := range fs {
		f.Wait()
	}
}

// WaitAllOf waits for a homogeneous slice of futures.
func WaitAllOf[T any](fs []*Future[T]) {
	for _, f := range fs {
		f.Wait()
	}
}

// GetAll waits for all futures and collects their values.
func GetAll[T any](fs []*Future[T]) []T {
	out := make([]T, len(fs))
	for i, f := range fs {
		out[i] = f.Get()
	}
	return out
}
