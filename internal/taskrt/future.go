package taskrt

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"runtime/debug"
	"sync"
	"time"
)

// Policy selects how an Async task is launched, mirroring HPX's launch
// policies (the paper evaluates async, deferred, fork and optional).
type Policy int

const (
	// Async schedules the task for asynchronous execution on the pool
	// (HPX launch::async) — the policy the paper found fastest and used
	// for all reported results.
	Async Policy = iota
	// Sync executes the task immediately on the calling goroutine
	// (HPX launch::sync).
	Sync
	// Fork executes the task eagerly at the spawn point, approximating
	// HPX launch::fork's continuation stealing (see package docs).
	Fork
	// Deferred delays execution until the first Get/Wait, which then runs
	// the task inline (HPX launch::deferred).
	Deferred
	// Optional lets the runtime choose; it behaves like Async.
	Optional
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case Async:
		return "async"
	case Sync:
		return "sync"
	case Fork:
		return "fork"
	case Deferred:
		return "deferred"
	case Optional:
		return "optional"
	default:
		return fmt.Sprintf("policy(%d)", int(p))
	}
}

// ParsePolicy converts a policy name as used on benchmark command lines.
func ParsePolicy(s string) (Policy, error) {
	switch s {
	case "async":
		return Async, nil
	case "sync":
		return Sync, nil
	case "fork":
		return Fork, nil
	case "deferred":
		return Deferred, nil
	case "optional":
		return Optional, nil
	default:
		return Async, fmt.Errorf("taskrt: unknown launch policy %q", s)
	}
}

const (
	futCreated int32 = iota
	futRunning
	futDone
)

// Waiter is the type-erased view of a Future, usable in WaitAll.
type Waiter interface {
	// Wait blocks until the future's value is available.
	Wait()
	// Ready reports whether the value is already available.
	Ready() bool
}

// Future holds the eventual result of an Async call. The zero value is
// not usable; futures are created by Spawn.
//
// The future IS the task: the scheduling core (the embedded task) and
// the typed result live in one object, so a spawn costs a single
// allocation — or none at all once the consumer recycles completed
// futures with Release, which is what keeps the Spawn→Get steady state
// at zero allocations per task.
type Future[T any] struct {
	task
	// fn is the task body; cleared on Release.
	fn func() T
	// value is the result, valid once the task completed with a nil err.
	value T
	// pool is the per-result-type recycle pool this future came from.
	pool *sync.Pool
}

// futurePools maps a result type T to the *sync.Pool of *Future[T]
// recycled by Release. Pooling is per type because the pool must hand
// back the exact generic instantiation.
var futurePools sync.Map // reflect.Type -> *sync.Pool

// newFuture draws a future from the per-type pool (allocating on a
// miss) and binds it to rt. The runner hook — the task's type-erased
// pointer back to its typed future — is installed once, at allocation.
func newFuture[T any](rt *Runtime) *Future[T] {
	key := reflect.TypeFor[T]()
	p, ok := futurePools.Load(key)
	if !ok {
		p, _ = futurePools.LoadOrStore(key, &sync.Pool{New: func() any {
			f := new(Future[T])
			f.runner = f
			return f
		}})
	}
	pool := p.(*sync.Pool)
	f := pool.Get().(*Future[T])
	f.pool = pool
	f.rt = rt
	return f
}

// Release recycles a completed future into the per-type spawn pool,
// waiting for completion first (a Deferred future is executed). After
// Release the future must not be touched again by anyone: the caller
// is asserting it is the only goroutine still holding a reference.
// Release on an already-released future is a no-op, and futures that
// are never released are simply garbage collected — Release is an
// optimization for spawn-heavy loops, not an obligation.
func (f *Future[T]) Release() {
	if f.state.Load() == futCreated && f.fn == nil {
		// Already released: a live future always has its body installed
		// before it is published, so created-with-no-body can only be a
		// recycled object. Waiting on it would park forever.
		return
	}
	f.Wait()
	// Claiming futDone→futCreated makes a double Release harmless and,
	// because the producer's final store is state=futDone, guarantees
	// the producer side is entirely done with the object.
	if !f.state.CompareAndSwap(futDone, futCreated) {
		return
	}
	var zero T
	f.fn = nil
	f.value = zero
	f.err = nil
	f.ctx = nil
	f.meta = nil
	f.depthNs = 0
	f.onDone = nil
	f.deferred = false
	f.doneCh.Store(nil)
	f.pool.Put(f)
}

// ReleaseAll releases every future in fs (see Release).
func ReleaseAll[T any](fs []*Future[T]) {
	for _, f := range fs {
		f.Release()
	}
}

// Spawn launches fn under the given policy on rt and returns a Future for
// its result. Task submission from inside another task lands on the
// submitting worker's own queue (child tasks are executed or stolen in
// LIFO/FIFO order as in HPX's local-priority scheduler). When called from
// inside a task spawned with SpawnCtx, the child joins the parent's
// cancellation tree.
func Spawn[T any](rt *Runtime, policy Policy, fn func() T) *Future[T] {
	return spawn(rt, nil, policy, 0, fn, nil)
}

// spawn is the shared launch path: ctx == nil means "inherit the
// spawning task's scope, if any"; grainNs > 0 is the caller's estimate
// of the task body's duration, feeding the adaptive-inline policy.
// onDone, if non-nil, is invoked when the future completes (used to
// release per-spawn deadline timers); it must be installed here, before
// the task is published, because completion may run concurrently on a
// worker the moment the task is queued.
func spawn[T any](rt *Runtime, ctx context.Context, policy Policy, grainNs int64, fn func() T, onDone func()) *Future[T] {
	f := newFuture[T](rt)
	f.fn = fn
	f.onDone = onDone
	// One worker resolution per spawn: every path below that needs the
	// caller's identity reuses w instead of consulting goroutine id
	// again.
	w := rt.currentWorker()
	// Spawn-path depth (always, for the online span estimator) and
	// causal identity (only while tracing): both need one clock read;
	// with tracing off and an external caller neither is taken.
	if tr := rt.loadTracer(); tr != nil {
		nowNs := time.Now().UnixNano()
		if w != nil {
			f.depthNs = w.spawnDepthNs(nowNs)
		}
		f.meta = tr.newMeta(w, nowNs, 3)
	} else if w != nil {
		f.depthNs = w.spawnDepthNs(time.Now().UnixNano())
	}
	if ctx == nil && w != nil {
		ctx = w.curCtx // join the running task's cancellation tree
	}
	if d := rt.taskDeadline; d > 0 {
		// Per-runtime default task deadline, folded into the scope so
		// dispatch-side dropping and descendant propagation both apply.
		base := ctx
		if base == nil {
			base = context.Background()
		}
		dctx, cancel := context.WithTimeout(base, d)
		ctx = dctx
		if prev := f.onDone; prev != nil {
			f.onDone = func() { prev(); cancel() }
		} else {
			f.onDone = cancel
		}
	}
	f.ctx = ctx
	if ctx != nil && ctx.Err() != nil {
		// Dead on arrival: dropped before it is ever queued, and
		// accounted exactly like a dispatch-side drop.
		f.drop()
		return f
	}
	switch policy {
	case Sync, Fork:
		// Work-first execution at the spawn point. When on a worker, the
		// execution is accounted as an inline task.
		runOn(w, rt, &f.task)
	case Deferred:
		f.deferred = true
	default: // Async, Optional
		if rt.shouldShed() {
			// Overload: past the pending high-water mark new spawns run
			// inline (work-first), trading parallelism for bounded
			// queues — the task still executes, only its queueing is
			// shed.
			rt.shed.Add(1)
			runOn(w, rt, &f.task)
			return f
		}
		if rt.inlineEligible(w, grainNs) {
			// Adaptive inlining: the task is cheaper to run here than
			// to schedule, by the runtime's own measurement.
			rt.grainInlined.Add(1)
			w.executeInline(&f.task)
			return f
		}
		if rt.adaptiveInline {
			rt.grainSpawned.Add(1)
		}
		if err := rt.submitFrom(w, &f.task); err != nil {
			// Runtime shut down: fall back to deferred execution so the
			// future still completes when queried.
			f.deferred = true
		}
	}
	return f
}

// AsyncF is shorthand for Spawn with the Async policy, matching the
// paper's hpx::async usage.
func AsyncF[T any](rt *Runtime, fn func() T) *Future[T] {
	return Spawn(rt, Async, fn)
}

// AsyncGrain is AsyncF with a caller-supplied estimate of the task
// body's duration in nanoseconds — the hint the adaptive-inline policy
// compares against the runtime's measured spawn cost (see
// WithAdaptiveInlining). Pass what the workload knows (a per-element
// cost, a calibrated kernel grain); 0 means "unknown", falling back to
// the runtime's own profiled task-duration EWMA.
func AsyncGrain[T any](rt *Runtime, grainNs int64, fn func() T) *Future[T] {
	return spawn(rt, nil, Async, grainNs, fn, nil)
}

// runOn executes a fused task at the spawn point: as an accounted
// inline task when on a worker of rt, directly on the calling
// goroutine otherwise.
func runOn(w *worker, rt *Runtime, t *task) {
	if w != nil && w.rt == rt {
		w.executeInline(t)
	} else {
		t.exec()
	}
}

// exec runs the fused future's body via its type-erased hook. Tasks
// without a runner (constructed directly by tests) are ignored.
func (t *task) exec() {
	if t.runner != nil {
		t.runner.runTask()
	}
}

// runTask executes the task body exactly once and publishes the result.
// A task whose cancellation scope died while it sat in a queue is
// dropped here — at dispatch — without running user code.
func (f *Future[T]) runTask() {
	if f.ctx != nil && f.ctx.Err() != nil {
		f.drop()
		return
	}
	if !f.state.CompareAndSwap(futCreated, futRunning) {
		return // already claimed (raced Deferred Get vs something else)
	}
	defer func() {
		if r := recover(); r != nil {
			f.err = &PanicError{Value: r, Stack: debug.Stack()}
		}
		f.complete()
	}()
	f.value = f.fn()
}

// drop completes the task as cancelled without running the body and
// counts the drop in the runtime's cancelled counter.
func (t *task) drop() {
	if !t.state.CompareAndSwap(futCreated, futRunning) {
		return
	}
	t.err = ErrCancelled
	if t.rt != nil {
		t.rt.cancelled.Add(1)
	}
	t.complete()
}

// complete publishes completion. Ordering matters: the deadline hook
// and the wait-channel close come first, and the state store comes
// last — it is the producer's final touch of the object, so a consumer
// that observes futDone owns the task exclusively and may Release it.
func (t *task) complete() {
	if t.onDone != nil {
		t.onDone()
	}
	if h := t.doneCh.Swap(closedDoneChan); h != nil && h != closedDoneChan {
		close(h.ch)
	}
	t.state.Store(futDone)
}

// waitChan returns the channel closed at completion, allocating it on
// first use: only waiters that actually park pay for a channel, which
// is what keeps the help-first Spawn→Get loop allocation-free.
func (t *task) waitChan() chan struct{} {
	if h := t.doneCh.Load(); h != nil {
		return h.ch
	}
	h := &doneChan{ch: make(chan struct{})}
	if t.doneCh.CompareAndSwap(nil, h) {
		return h.ch
	}
	return t.doneCh.Load().ch
}

// settleDone spins out the producer's last two stores: the wait channel
// closes just before state=futDone is published, so a channel-woken
// waiter may beat the state store by a few instructions.
func (t *task) settleDone() {
	for t.state.Load() != futDone {
		runtime.Gosched()
	}
}

// Ready reports whether the result is available without blocking.
func (t *task) Ready() bool { return t.state.Load() == futDone }

// Wait blocks until the result is available. On a worker goroutine it
// executes other pending tasks while waiting (help-first stealing); on
// any other goroutine it parks.
func (f *Future[T]) Wait() {
	if f.state.Load() == futDone {
		return
	}
	w := f.rt.currentWorker()
	if f.deferred && f.state.Load() == futCreated {
		// Deferred: the first waiter runs the task inline.
		runOn(w, f.rt, &f.task)
		if f.state.Load() == futDone {
			return
		}
	}
	if w != nil {
		f.rt.helpWaitTask(w, &f.task, nil)
		return
	}
	<-f.waitChan()
	f.settleDone()
}

// Get waits for and returns the result. A panic in the task body is
// re-raised in the caller as a *PanicError carrying the original value
// and the task's stack, as a future's get would rethrow in C++; Get on
// a cancelled future panics with ErrCancelled. Use GetErr or Err to
// observe those outcomes without re-panicking.
func (f *Future[T]) Get() T {
	f.Wait()
	if f.err != nil {
		panic(f.err)
	}
	return f.value
}

// WaitAll waits for every given future, matching hpx::wait_all.
func WaitAll(fs ...Waiter) {
	for _, f := range fs {
		f.Wait()
	}
}

// WaitAllOf waits for a homogeneous slice of futures.
func WaitAllOf[T any](fs []*Future[T]) {
	for _, f := range fs {
		f.Wait()
	}
}

// GetAll waits for all futures and collects their values.
func GetAll[T any](fs []*Future[T]) []T {
	out := make([]T, len(fs))
	for i, f := range fs {
		out[i] = f.Get()
	}
	return out
}
