// Package taskrt implements a lightweight task runtime modelled on HPX:
// fine-grained tasks scheduled by a fixed pool of worker goroutines with
// per-worker queues and work stealing, futures with HPX launch policies
// (Async, Sync, Fork, Deferred), and full performance-counter
// instrumentation exposed through the core counter framework
// (/threads{locality#L/worker-thread#W}/... and .../total/...).
//
// Differences from HPX forced by Go's execution model are deliberate and
// documented in DESIGN.md:
//
//   - HPX suspends user-level threads that wait on unready futures. Go
//     closures cannot be suspended mid-execution, so Future.Get performs
//     help-first work stealing: when called on a worker it executes
//     pending tasks (its own children first, then stolen work) until the
//     awaited future becomes ready, and only parks when no work exists.
//     For strict fork/join programs — all of the Inncabs suite — this is
//     semantically equivalent to suspension.
//
//   - launch::fork (continuation stealing) is approximated by eager
//     inline execution of the spawned task at the spawn point
//     (work-first), which preserves fork/join ordering.
//
// The runtime never creates more OS-level concurrency than its worker
// count: tasks are multiplexed onto the workers exactly as HPX multiplexes
// its user-level threads onto OS threads. This is the property the paper
// contrasts with the std::async thread-per-task model (package stdrt).
package taskrt
