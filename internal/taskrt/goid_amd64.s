//go:build amd64

#include "textflag.h"

// func getgoid(off uintptr) uint64
//
// Loads the current g pointer from TLS and returns the word at byte
// offset off within the g struct. The offset is validated by the
// calibration in goid_fast.go before it is ever trusted.
TEXT ·getgoid(SB), NOSPLIT, $0-16
	MOVQ (TLS), AX
	ADDQ off+0(FP), AX
	MOVQ (AX), AX
	MOVQ AX, ret+8(FP)
	RET
