package taskrt

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// eventLog collects watchdog events for assertions.
type eventLog struct {
	mu     sync.Mutex
	events []HealthEvent
}

func (l *eventLog) add(ev HealthEvent) {
	l.mu.Lock()
	l.events = append(l.events, ev)
	l.mu.Unlock()
}

func (l *eventLog) count(kind HealthKind) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, ev := range l.events {
		if ev.Kind == kind {
			n++
		}
	}
	return n
}

// TestWatchdogCleanRunNoEvents: a healthy fork/join workload under an
// aggressive sampling interval must raise zero health events.
func TestWatchdogCleanRunNoEvents(t *testing.T) {
	rt := newTestRuntime(t, 4)
	// The aggressive part is the 2 ms sweep; the thresholds only need to
	// stay above the whole run's duration, with headroom for the race
	// detector's ~10x slowdown (a fork/join root legitimately spans most
	// of the run).
	threshold := time.Second
	if raceEnabled {
		threshold = 10 * time.Second
	}
	var log eventLog
	rt.StartWatchdog(WatchdogConfig{
		Interval:            2 * time.Millisecond,
		StallThreshold:      threshold,
		StarvationThreshold: threshold,
		OnEvent:             log.add,
	})

	var fib func(n int) int
	fib = func(n int) int {
		if n < 2 {
			return n
		}
		a := AsyncF(rt, func() int { return fib(n - 1) })
		b := fib(n - 2)
		return a.Get() + b
	}
	if got := fib(22); got != 17711 {
		t.Fatalf("fib(22) = %d", got)
	}
	rt.StopWatchdog()
	log.mu.Lock()
	defer log.mu.Unlock()
	if len(log.events) != 0 {
		t.Fatalf("clean run raised %d health events: %v", len(log.events), log.events)
	}
	if rt.healthEvents.Load() != 0 {
		t.Fatalf("health/events counter = %d on a clean run", rt.healthEvents.Load())
	}
}

// TestWatchdogStalledTask: one deliberately stalled task raises exactly
// one stalled_task event — repeated sweeps over the same episode are
// deduplicated.
func TestWatchdogStalledTask(t *testing.T) {
	rt := newTestRuntime(t, 2)
	var log eventLog
	rt.StartWatchdog(WatchdogConfig{
		Interval:       3 * time.Millisecond,
		StallThreshold: 25 * time.Millisecond,
		OnEvent:        log.add,
	})
	f := AsyncF(rt, func() int {
		time.Sleep(150 * time.Millisecond) // stall well past the threshold
		return 1
	})
	f.Wait()
	rt.StopWatchdog()

	if got := log.count(HealthStalledTask); got != 1 {
		t.Fatalf("stalled_task events = %d, want exactly 1 (%v)", got, log.events)
	}
	if got := log.count(HealthDeadlockSuspected); got != 0 {
		t.Fatalf("a sleeping task was misreported as deadlock (%v)", log.events)
	}
	var perWorker int64
	for _, w := range rt.workers {
		perWorker += w.metrics.healthStalled.Load()
	}
	if perWorker != 1 || rt.healthEvents.Load() != int64(len(log.events)) {
		t.Fatalf("counters disagree: stalled=%d events=%d log=%d",
			perWorker, rt.healthEvents.Load(), len(log.events))
	}
}

// TestWatchdogDeadlockSuspected: a genuine Wait cycle (two tasks each
// waiting on the other's future) is reported once as deadlock_suspected.
// The tasks wait with WaitContext so the test can break the cycle.
func TestWatchdogDeadlockSuspected(t *testing.T) {
	rt := New(WithWorkers(2))
	defer rt.Shutdown()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // breaks the cycle before Shutdown

	var log eventLog
	rt.StartWatchdog(WatchdogConfig{
		Interval:       3 * time.Millisecond,
		StallThreshold: 30 * time.Millisecond,
		OnEvent:        log.add,
	})

	ready := make(chan struct{})
	var fa, fb *Future[int]
	fa = AsyncF(rt, func() int { <-ready; _ = fb.WaitContext(ctx); return 1 })
	fb = AsyncF(rt, func() int { <-ready; _ = fa.WaitContext(ctx); return 2 })
	close(ready)

	deadline := time.After(5 * time.Second)
	for log.count(HealthDeadlockSuspected) == 0 {
		select {
		case <-deadline:
			t.Fatal("deadlock cycle never reported")
		case <-time.After(5 * time.Millisecond):
		}
	}
	cancel()
	fa.Wait()
	fb.Wait()
	time.Sleep(20 * time.Millisecond) // a few more sweeps after progress
	rt.StopWatchdog()

	if got := log.count(HealthDeadlockSuspected); got != 1 {
		t.Fatalf("deadlock_suspected events = %d, want exactly 1", got)
	}
	if rt.healthDeadlock.Load() != 1 {
		t.Fatalf("health/deadlocks counter = %d", rt.healthDeadlock.Load())
	}
}

// TestWatchdogStarvedWorker drives sweep directly: a parked worker with
// work pending past the threshold is reported once per park episode.
func TestWatchdogStarvedWorker(t *testing.T) {
	rt := newTestRuntime(t, 2)
	// Let the workers go idle (parked).
	deadline := time.Now().Add(5 * time.Second)
	parked := func() int {
		n := 0
		for _, w := range rt.workers {
			if w.metrics.parkedSince.Load() != 0 {
				n++
			}
		}
		return n
	}
	for parked() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("workers never parked")
		}
		time.Sleep(time.Millisecond)
	}

	var log eventLog
	cfg := WatchdogConfig{OnEvent: log.add}
	cfg.setDefaults()
	wd := newWatchdog(rt, cfg)

	// Pretend a task is pending that nobody picks up (the counter is
	// what sweep consults; the queues stay untouched).
	rt.pending.Add(1)
	defer rt.pending.Add(-1)

	future := time.Now().Add(2 * cfg.StarvationThreshold)
	wd.sweep(future)
	if got := log.count(HealthStarvedWorker); got != 2 {
		t.Fatalf("starved_worker events = %d, want 2 (both workers)", got)
	}
	// Same park episode: a second sweep must not re-report.
	wd.sweep(future.Add(cfg.Interval))
	if got := log.count(HealthStarvedWorker); got != 2 {
		t.Fatalf("starvation re-reported within one episode: %d events", got)
	}
	// Throttled workers park by design and are skipped.
	rt.SetConcurrencyLimit(1)
	wd2 := newWatchdog(rt, cfg)
	var log2 eventLog
	wd2.cfg.OnEvent = log2.add
	wd2.sweep(future)
	if got := log2.count(HealthStarvedWorker); got != 1 {
		t.Fatalf("throttled-aware sweep reported %d starvations, want 1", got)
	}
	rt.SetConcurrencyLimit(0)
}

// TestWatchdogBacklogGrowth drives sweep over a growing injector: the
// event fires after exactly BacklogSamples consecutive growth samples.
func TestWatchdogBacklogGrowth(t *testing.T) {
	rt := newTestRuntime(t, 1)
	release := gateWorkers(t, rt)
	defer release()

	var log eventLog
	cfg := WatchdogConfig{BacklogSamples: 3, OnEvent: log.add}
	cfg.setDefaults()
	wd := newWatchdog(rt, cfg)

	now := time.Now()
	fs := make([]*Future[int], 0, 8)
	for i := 0; i < 3; i++ {
		// Spawned from a non-worker goroutine: lands on the injector.
		fs = append(fs, AsyncF(rt, func() int { return 1 }))
		wd.sweep(now.Add(time.Duration(i) * cfg.Interval))
	}
	if got := log.count(HealthBacklogGrowth); got != 1 {
		t.Fatalf("backlog_growth events after 3 growth samples = %d, want 1", got)
	}
	// Flat backlog: streak resets, no further events.
	wd.sweep(now.Add(10 * cfg.Interval))
	wd.sweep(now.Add(11 * cfg.Interval))
	if got := log.count(HealthBacklogGrowth); got != 1 {
		t.Fatalf("flat backlog raised events: %d", got)
	}
	release()
	WaitAllOf(fs)
}

// TestWatchdogStartStop: starting twice is a no-op, stopping twice is
// safe, and Shutdown stops an active watchdog.
func TestWatchdogStartStop(t *testing.T) {
	rt := New(WithWorkers(1))
	rt.StartWatchdog(WatchdogConfig{Interval: time.Millisecond})
	first := rt.wd
	rt.StartWatchdog(WatchdogConfig{Interval: time.Millisecond})
	if rt.wd != first {
		t.Fatal("second StartWatchdog replaced the running watchdog")
	}
	rt.StopWatchdog()
	rt.StopWatchdog() // idempotent
	rt.StartWatchdog(WatchdogConfig{Interval: time.Millisecond})
	rt.Shutdown() // must stop the watchdog
	rt.wdMu.Lock()
	if rt.wd != nil {
		t.Fatal("Shutdown left the watchdog running")
	}
	rt.wdMu.Unlock()
	rt.StartWatchdog(WatchdogConfig{}) // after shutdown: no-op
	if rt.wd != nil {
		t.Fatal("StartWatchdog ran on a closed runtime")
	}
}

// TestWatchdogOnEventPanicIsolated: a panicking OnEvent subscriber is
// recovered and counted, and the watchdog keeps raising events — two
// separate stall episodes both arrive despite the callback blowing up
// on every one of them.
func TestWatchdogOnEventPanicIsolated(t *testing.T) {
	rt := newTestRuntime(t, 2)
	var log eventLog
	rt.StartWatchdog(WatchdogConfig{
		Interval:       3 * time.Millisecond,
		StallThreshold: 25 * time.Millisecond,
		OnEvent: func(ev HealthEvent) {
			log.add(ev)
			panic("buggy subscriber")
		},
	})
	for i := 0; i < 2; i++ {
		AsyncF(rt, func() int {
			time.Sleep(100 * time.Millisecond)
			return 1
		}).Wait()
	}
	rt.StopWatchdog()

	if got := log.count(HealthStalledTask); got != 2 {
		t.Fatalf("stalled_task events after panics = %d, want 2 (%v)", got, log.events)
	}
	if got, want := rt.healthCbErrors.Load(), int64(len(log.events)); got != want {
		t.Fatalf("callback-errors = %d, want %d (one per delivered event)", got, want)
	}
	reg := core.NewRegistry()
	if err := rt.RegisterCounters(reg); err != nil {
		t.Fatal(err)
	}
	v, err := reg.Evaluate("/runtime{locality#0/total}/health/callback-errors", false)
	if err != nil || !v.Valid() || v.Raw != rt.healthCbErrors.Load() {
		t.Fatalf("callback-errors counter = %+v, %v", v, err)
	}
}
