package taskrt

import (
	"sync/atomic"
	"time"
)

func atomicAdd32(p *int32) { atomic.AddInt32(p, 1) }

func atomicLoad32(p *int32) int32 { return atomic.LoadInt32(p) }

// timeoutC returns a generous test timeout channel.
func timeoutC() <-chan time.Time { return time.After(5 * time.Second) }
