package taskrt

import (
	"testing"
	"time"
)

// synthEvent builds a hand-crafted trace event for shape tests.
func synthEvent(id, parent int64, start time.Time, dur time.Duration) TraceEvent {
	return TraceEvent{
		ID: id, Parent: parent,
		Worker: 0, SpawnWorker: 0, StolenFrom: -1,
		Start: start, SpawnTime: start,
		Duration: dur, Site: "synth.go:1",
	}
}

func TestAnalyzeEmpty(t *testing.T) {
	a := AnalyzeTrace(nil)
	if a.Tasks != 0 || a.Work != 0 || a.Span != 0 {
		t.Fatalf("empty analysis = %+v", a)
	}
}

// A pure chain has span == work: parallelism exactly 1.
func TestAnalyzeChain(t *testing.T) {
	base := time.Unix(0, 0)
	var events []TraceEvent
	for i := int64(1); i <= 10; i++ {
		events = append(events,
			synthEvent(i, i-1, base.Add(time.Duration(i)*10*time.Millisecond), 10*time.Millisecond))
	}
	a := AnalyzeTrace(events)
	if a.Work != 100*time.Millisecond {
		t.Fatalf("work = %v", a.Work)
	}
	if a.Span != a.Work {
		t.Fatalf("chain span = %v, want == work %v", a.Span, a.Work)
	}
	if a.LogicalParallelism != 1 {
		t.Fatalf("chain parallelism = %v, want 1", a.LogicalParallelism)
	}
	if a.Roots != 1 {
		t.Fatalf("roots = %d", a.Roots)
	}
}

// A balanced binary tree of uniform tasks: work = (2^(d+1)-1)*own,
// span = (d+1)*own (root-to-leaf chain).
func TestAnalyzeBalancedTree(t *testing.T) {
	const depth = 4
	const own = time.Millisecond
	base := time.Unix(0, 0)
	var events []TraceEvent
	next := int64(1)
	var build func(parent int64, level int)
	build = func(parent int64, level int) {
		id := next
		next++
		events = append(events, synthEvent(id, parent, base, own))
		if level < depth {
			build(id, level+1)
			build(id, level+1)
		}
	}
	build(0, 0)
	a := AnalyzeTrace(events)
	wantWork := time.Duration(1<<(depth+1)-1) * own
	wantSpan := time.Duration(depth+1) * own
	if a.Work != wantWork {
		t.Fatalf("work = %v want %v", a.Work, wantWork)
	}
	if a.Span != wantSpan {
		t.Fatalf("span = %v want %v", a.Span, wantSpan)
	}
	wantPar := float64(wantWork) / float64(wantSpan)
	if a.LogicalParallelism < wantPar-0.01 || a.LogicalParallelism > wantPar+0.01 {
		t.Fatalf("parallelism = %v want %v", a.LogicalParallelism, wantPar)
	}
}

// Orphaned parents (dropped from the trace) make their children roots
// instead of corrupting the span computation.
func TestAnalyzeOrphans(t *testing.T) {
	base := time.Unix(0, 0)
	events := []TraceEvent{
		synthEvent(5, 3, base, 2*time.Millisecond), // parent 3 not in trace
		synthEvent(6, 5, base, 3*time.Millisecond),
	}
	a := AnalyzeTrace(events)
	if a.Roots != 1 {
		t.Fatalf("roots = %d want 1", a.Roots)
	}
	if a.Span != 5*time.Millisecond {
		t.Fatalf("span = %v want 5ms", a.Span)
	}
}

// A traced run on a real multi-worker runtime: every invariant the
// analyzer promises must hold against real scheduling (steals, inline
// execution, help-first waiting). Runs under -race in CI.
func TestAnalyzeTracedRun(t *testing.T) {
	const workers = 4
	rt := newTestRuntime(t, workers)
	rt.EnableTracing(0)
	start := time.Now()
	if got := fibRT(rt, 16); got != 987 {
		t.Fatalf("fib = %d", got)
	}
	elapsed := time.Since(start)
	events, dropped := rt.TraceEvents()
	if dropped != 0 {
		t.Fatalf("dropped = %d", dropped)
	}
	a := AnalyzeTrace(events)
	if a.Tasks != len(events) || a.Tasks == 0 {
		t.Fatalf("tasks = %d events = %d", a.Tasks, len(events))
	}
	if a.Work <= 0 || a.Span <= 0 {
		t.Fatalf("work = %v span = %v, want positive", a.Work, a.Span)
	}
	if a.Span > a.Work {
		t.Fatalf("span %v > work %v", a.Span, a.Work)
	}
	if a.Makespan <= 0 || a.Makespan > 2*elapsed+10*time.Millisecond {
		t.Fatalf("makespan = %v (run took %v)", a.Makespan, elapsed)
	}
	// Achieved parallelism is bounded by the worker count (with slack
	// for timer granularity); logical parallelism is not.
	if a.AchievedParallelism > float64(workers)*1.5 {
		t.Fatalf("achieved parallelism %v > %d workers x slack", a.AchievedParallelism, workers)
	}
	// Spawn-site attribution partitions the work.
	var siteWork time.Duration
	var siteCount int64
	for _, s := range a.Sites {
		siteWork += s.Total
		siteCount += s.Count
	}
	if siteWork != a.Work {
		t.Fatalf("site work %v != total work %v", siteWork, a.Work)
	}
	if siteCount != int64(a.Tasks) {
		t.Fatalf("site count %d != tasks %d", siteCount, a.Tasks)
	}
	// fib spawns from exactly one site (runtime_test.go:55).
	if len(a.Sites) != 1 || a.Sites[0].Site == "<unknown>" {
		t.Fatalf("sites = %+v, want single known site", a.Sites)
	}
	if a.Steals != countSteals(events) {
		t.Fatalf("steals = %d, events say %d", a.Steals, countSteals(events))
	}
	if s := a.Summary(5); s == "" {
		t.Fatal("empty summary")
	}
}

func countSteals(events []TraceEvent) int {
	n := 0
	for _, ev := range events {
		if ev.StolenFrom >= 0 {
			n++
		}
	}
	return n
}

// Work stealing shows up in the trace: a long-running root that spawns
// parked tasks from worker 0 forces other workers to steal.
func TestAnalyzeObservesSteals(t *testing.T) {
	rt := newTestRuntime(t, 4)
	rt.EnableTracing(0)
	fs := make([]*Future[int], 64)
	root := AsyncF(rt, func() int {
		for i := range fs {
			fs[i] = AsyncF(rt, func() int {
				busySpin(200 * time.Microsecond)
				return 1
			})
		}
		busySpin(2 * time.Millisecond)
		return 0
	})
	root.Get()
	WaitAllOf(fs)
	events, _ := rt.TraceEvents()
	a := AnalyzeTrace(events)
	if a.Steals == 0 {
		t.Skip("no steals observed in this run (single-core scheduling)")
	}
	for _, s := range a.Sites {
		if s.Steals < 0 || s.Steals > s.Count {
			t.Fatalf("site steals out of range: %+v", s)
		}
	}
}
