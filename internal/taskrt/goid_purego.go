//go:build !amd64 && !arm64

package taskrt

// Architectures without a getgoid assembly helper always use the
// runtime.Stack fallback in goroutineID.

func fastGoroutineID() (uint64, bool) { return 0, false }
