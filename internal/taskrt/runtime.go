package taskrt

import (
	"context"
	"errors"
	"math/rand"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Option configures a Runtime.
type Option func(*config)

type config struct {
	workers        int
	locality       int64
	taskDeadline   time.Duration
	shedLimit      int64
	adaptiveInline bool
}

// WithWorkers sets the number of worker goroutines (the paper's
// "OS threads" / cores used). Defaults to runtime.GOMAXPROCS(0).
func WithWorkers(n int) Option {
	return func(c *config) {
		if n > 0 {
			c.workers = n
		}
	}
}

// WithLocality sets the locality id used in counter instance names.
func WithLocality(id int64) Option {
	return func(c *config) { c.locality = id }
}

// WithTaskDeadline sets a default per-task deadline: every spawned task
// gets a cancellation scope bounded by d, so a task that is still queued
// when its deadline passes is dropped at dispatch (counted in the
// cancelled counter) instead of running arbitrarily late. Per-spawn
// deadlines (SpawnTimeout) and caller contexts compose with it — the
// earliest deadline wins.
func WithTaskDeadline(d time.Duration) Option {
	return func(c *config) {
		if d > 0 {
			c.taskDeadline = d
		}
	}
}

// WithShedding installs an admission controller: once more than hwm
// tasks are pending across all queues, new Async spawns degrade to
// inline (work-first) execution on the spawning goroutine instead of
// being enqueued. The queue stays bounded at the high-water mark plus
// the worker count; no task is refused — only its queueing is shed.
// Sheds are counted in /runtime{locality#L/total}/count/shed.
func WithShedding(hwm int) Option {
	return func(c *config) {
		if hwm > 0 {
			c.shedLimit = int64(hwm)
		}
	}
}

// Runtime is a lightweight-task scheduler: a fixed pool of workers with
// per-worker lock-free deques, work stealing and a lock-free injection
// queue for submissions from non-worker goroutines.
type Runtime struct {
	workers  []*worker
	injector *injector
	wakeup   *notifier
	wmap     *workerMap
	locality int64
	rng      atomic.Uint64 // xorshift state for victim selection
	limit    atomic.Int64  // concurrency limit; 0 = all workers
	closed   atomic.Bool
	wg       sync.WaitGroup

	// taskDeadline is the default per-task deadline (0 = none); set at
	// construction, read-only afterwards.
	taskDeadline time.Duration
	// shedLimit is the pending-task high-water mark past which Async
	// spawns run inline (0 = shedding off); read-only after New.
	shedLimit int64
	// pending tracks tasks currently sitting in any queue (local deques
	// plus injector). Incremented at submit, decremented at dequeue; the
	// shedding and watchdog paths read it.
	pending atomic.Int64
	// cancelled counts tasks dropped at dispatch because their
	// cancellation scope ended before they ran.
	cancelled atomic.Int64
	// shed counts Async spawns degraded to inline execution by the
	// admission controller.
	shed atomic.Int64

	// Adaptive-inline state (see inline.go): the policy flag (read-only
	// after New), the self-measured spawn-cost EWMAs, the profiled
	// task-grain EWMA, and the decision counters behind the
	// /runtime{locality#L/total}/grain/* family.
	adaptiveInline bool
	submitCostNs   atomic.Int64 // EWMA: submit-side cost of one single spawn
	dispatchCostNs atomic.Int64 // EWMA: dispatch-side cost of one dequeue
	grainNsEWMA    atomic.Int64 // EWMA: task own-time (profiled grain)
	grainInlined   atomic.Int64 // children run inline by the policy
	grainSpawned   atomic.Int64 // children enqueued while the policy was on

	// Watchdog state: cumulative health-event counts by kind that have
	// no per-worker attribution, plus the monitor itself.
	healthBacklog  atomic.Int64 // backlog_growth events
	healthDeadlock atomic.Int64 // deadlock_suspected events
	healthEvents   atomic.Int64 // all health events
	healthCbErrors atomic.Int64 // OnEvent callbacks that panicked (recovered)
	wdMu           sync.Mutex
	wd             *watchdog

	trace     atomic.Value // *tracer; nil when tracing is off
	lastTrace atomic.Value // *tracer of the previous session
}

// worker is one scheduling loop with its own queue.
type worker struct {
	rt      *Runtime
	id      int
	queue   deque
	metrics workerMetrics
	rng     uint64
	// nestedNs accumulates time spent in tasks executed inline within
	// the currently running task (help-first waiting), so each task's
	// recorded duration covers only its own execution — matching HPX,
	// where a suspended thread's wait time is not part of its duration.
	// Only touched from the worker's own goroutine.
	nestedNs int64
	// curCtx is the cancellation scope of the task currently running on
	// this worker (nil between tasks or for scope-less tasks). Tasks
	// spawned from inside inherit it, forming the cancellation tree.
	// Only touched from the worker's own goroutine.
	curCtx context.Context
	// curTaskID is the tracing id of the task currently running on this
	// worker (0 between tasks or for untraced tasks); children spawned
	// from inside record it as their parent. Only touched from the
	// worker's own goroutine.
	curTaskID int64
	// curDepthNs is the spawn-path depth of the currently running task,
	// the base the online critical-path estimator extends at every
	// nested spawn. Only touched from the worker's own goroutine.
	curDepthNs int64
	// durHist and ovhHist are per-worker log-bucketed histograms of own
	// task duration and per-task dispatch overhead, backing the
	// percentile counters. Owner-recorded, concurrently snapshotted.
	durHist core.Histogram
	ovhHist core.Histogram
}

// ErrClosed is returned by operations on a shut-down runtime.
var ErrClosed = errors.New("taskrt: runtime is shut down")

// New creates and starts a runtime.
func New(opts ...Option) *Runtime {
	cfg := config{workers: runtime.GOMAXPROCS(0)}
	for _, o := range opts {
		o(&cfg)
	}
	rt := &Runtime{
		injector:       newInjector(),
		wakeup:         newNotifier(),
		wmap:           newWorkerMap(),
		locality:       cfg.locality,
		taskDeadline:   cfg.taskDeadline,
		shedLimit:      cfg.shedLimit,
		adaptiveInline: cfg.adaptiveInline,
	}
	rt.rng.Store(uint64(time.Now().UnixNano()) | 1)
	rt.workers = make([]*worker, cfg.workers)
	started := make(chan struct{})
	for i := range rt.workers {
		w := &worker{rt: rt, id: i, rng: rand.Uint64() | 1}
		rt.workers[i] = w
		w.metrics.started.Store(time.Now().UnixNano())
	}
	for _, w := range rt.workers {
		rt.wg.Add(1)
		go w.run(started)
	}
	close(started)
	return rt
}

// NumWorkers returns the worker count.
func (rt *Runtime) NumWorkers() int { return len(rt.workers) }

// SetConcurrencyLimit throttles the runtime to at most n active workers
// (n <= 0 or n >= NumWorkers restores full concurrency). Throttled
// workers park; their queued tasks remain stealable. This is the
// runtime-adaptive knob the paper's outlook (APEX) drives from the
// idle-rate counter to trade parallelism for efficiency.
func (rt *Runtime) SetConcurrencyLimit(n int) {
	if n <= 0 || n > len(rt.workers) {
		n = len(rt.workers)
	}
	rt.limit.Store(int64(n))
	rt.wakeup.notify() // release throttled workers if the limit grew
}

// ConcurrencyLimit returns the current limit (NumWorkers when unset).
func (rt *Runtime) ConcurrencyLimit() int {
	if l := rt.limit.Load(); l > 0 {
		return int(l)
	}
	return len(rt.workers)
}

// throttled reports whether the worker is parked out by the limit.
func (w *worker) throttled() bool {
	l := w.rt.limit.Load()
	return l > 0 && int64(w.id) >= l
}

// Locality returns the locality id used in counter names.
func (rt *Runtime) Locality() int64 { return rt.locality }

// Shutdown stops all workers; the queues drain is NOT awaited: the
// caller is expected to have joined its futures (fork/join structure).
// Pending tasks that were never awaited are dropped.
func (rt *Runtime) Shutdown() {
	if rt.closed.Swap(true) {
		return
	}
	rt.StopWatchdog()
	// One waiter goroutine observes the pool exit; the loop just
	// re-notifies periodically to cover a worker that was between its
	// closed-flag check and its park when the first notify fired.
	done := make(chan struct{})
	go func() {
		rt.wg.Wait()
		close(done)
	}()
	tick := time.NewTicker(time.Millisecond)
	defer tick.Stop()
	for {
		rt.wakeup.notify()
		select {
		case <-done:
			return
		case <-tick.C:
		}
	}
}

// submit enqueues a task from an arbitrary goroutine, resolving the
// caller's worker identity first. Internal spawn paths that already
// know their worker call submitFrom directly and skip the lookup.
func (rt *Runtime) submit(t *task) error {
	return rt.submitFrom(rt.currentWorker(), t)
}

// submitFrom enqueues a task: onto the submitting worker's own queue
// when w belongs to this runtime, otherwise onto the injection queue.
func (rt *Runtime) submitFrom(w *worker, t *task) error {
	if rt.closed.Load() {
		return ErrClosed
	}
	if w != nil && w.rt == rt {
		// Submission cost (queue push, metrics) is scheduling overhead
		// paid by the spawning task's worker. Measured before the
		// wakeup, which may hand the CPU over.
		begin := time.Now()
		n := w.queue.pushBack(t)
		rt.pending.Add(1)
		w.metrics.notePending(n)
		elapsed := time.Since(begin).Nanoseconds()
		w.metrics.overheadNs.Add(elapsed)
		if rt.adaptiveInline {
			rt.noteSubmitCost(elapsed)
		}
		rt.wakeup.notify()
		return nil
	}
	if rt.adaptiveInline {
		begin := time.Now()
		rt.injector.pushBack(t)
		rt.pending.Add(1)
		rt.noteSubmitCost(time.Since(begin).Nanoseconds())
	} else {
		rt.injector.pushBack(t)
		rt.pending.Add(1)
	}
	rt.wakeup.notify()
	return nil
}

// submitBatchFrom enqueues a whole batch as one scheduler transaction:
// one deque window publish (or one injector chain splice from outside
// the pool), one pending add, one peak update, one wakeup notify.
// Batch submits do not feed the spawn-cost EWMA — the inline threshold
// models the cost of scheduling one child singly, the counterfactual
// the adaptive policy decides against.
func (rt *Runtime) submitBatchFrom(w *worker, ts []*task) error {
	if rt.closed.Load() {
		return ErrClosed
	}
	if len(ts) == 0 {
		return nil
	}
	if w != nil && w.rt == rt {
		begin := time.Now()
		n := w.queue.pushBackN(ts)
		rt.pending.Add(int64(len(ts)))
		w.metrics.notePending(n)
		w.metrics.overheadNs.Add(time.Since(begin).Nanoseconds())
		rt.wakeup.notify()
		return nil
	}
	rt.injector.pushBackN(ts)
	rt.pending.Add(int64(len(ts)))
	rt.wakeup.notify()
	return nil
}

// shouldShed reports whether the admission controller is active and the
// pending-task count has reached the high-water mark.
func (rt *Runtime) shouldShed() bool {
	return rt.shedLimit > 0 && rt.pending.Load() >= rt.shedLimit
}

// Cancelled returns the cumulative number of tasks dropped at dispatch
// because their cancellation scope ended before they ran.
func (rt *Runtime) Cancelled() int64 { return rt.cancelled.Load() }

// Shed returns the cumulative number of Async spawns degraded to inline
// execution by the admission controller.
func (rt *Runtime) Shed() int64 { return rt.shed.Load() }

// run is the worker scheduling loop.
func (w *worker) run(started <-chan struct{}) {
	defer w.rt.wg.Done()
	id := goroutineID()
	w.rt.wmap.register(id, w)
	defer w.rt.wmap.unregister(id)
	<-started

	for {
		if w.rt.closed.Load() {
			return
		}
		if w.throttled() {
			gen := w.rt.wakeup.prepare()
			if w.rt.closed.Load() || !w.throttled() {
				w.rt.wakeup.cancel()
				continue
			}
			w.metrics.parkedSince.Store(time.Now().UnixNano())
			w.rt.wakeup.wait(gen)
			if since := w.metrics.parkedSince.Swap(0); since != 0 {
				w.metrics.idleNs.Add(time.Now().UnixNano() - since)
			}
			continue
		}
		searchStart := time.Now()
		t := w.find()
		if t != nil {
			// The search interval is folded into the task-start
			// timestamp taken inside execute — one clock read serves
			// both overhead accounting and the trace event.
			w.execute(t, searchStart)
			continue
		}
		// Nothing anywhere: park until new work arrives.
		gen := w.rt.wakeup.prepare()
		if w.rt.closed.Load() || w.peek() {
			w.rt.wakeup.cancel()
			continue
		}
		w.metrics.overheadNs.Add(time.Since(searchStart).Nanoseconds())
		w.metrics.parkedSince.Store(time.Now().UnixNano())
		w.rt.wakeup.wait(gen)
		if since := w.metrics.parkedSince.Swap(0); since != 0 {
			w.metrics.idleNs.Add(time.Now().UnixNano() - since)
		}
	}
}

// find locates a runnable task: own queue (LIFO), injection queue, then
// steal from a random victim (FIFO).
func (w *worker) find() *task {
	t := w.queue.popBack()
	if t == nil {
		t = w.rt.injector.popFront()
	}
	if t == nil {
		t = w.steal()
	}
	if t != nil {
		// Every dequeue path funnels through here, so pending is
		// balanced against the submitFrom increments exactly once.
		w.rt.pending.Add(-1)
	}
	return t
}

// peek reports whether any queue holds work, without removing it.
func (w *worker) peek() bool {
	if w.queue.len() > 0 || w.rt.injector.len() > 0 {
		return true
	}
	for _, v := range w.rt.workers {
		if v != w && v.queue.len() > 0 {
			return true
		}
	}
	return false
}

// steal takes the oldest task of a random victim, sweeping all victims
// once starting at a random offset.
func (w *worker) steal() *task {
	n := len(w.rt.workers)
	if n <= 1 {
		return nil
	}
	// xorshift64 for cheap per-worker randomness.
	w.rng ^= w.rng << 13
	w.rng ^= w.rng >> 7
	w.rng ^= w.rng << 17
	start := int(w.rng % uint64(n))
	for i := 0; i < n; i++ {
		v := w.rt.workers[(start+i)%n]
		if v == w {
			continue
		}
		if t := v.queue.popFront(); t != nil {
			w.metrics.stolen.Add(1)
			if t.meta != nil {
				t.meta.stolenFrom = int32(v.id)
			}
			return t
		}
	}
	return nil
}

// timeTask runs one task body, accounting only the task's own time (the
// total duration minus any tasks it executed inline while waiting).
// A non-zero searchStart charges the interval up to the task's begin
// timestamp as scheduling overhead, reusing the one clock read.
func (w *worker) timeTask(t *task, inline bool, searchStart time.Time) {
	begin := time.Now()
	var dispatchNs int64
	if !searchStart.IsZero() {
		dispatchNs = begin.Sub(searchStart).Nanoseconds()
		w.metrics.overheadNs.Add(dispatchNs)
		if w.rt.adaptiveInline {
			w.rt.noteDispatchCost(dispatchNs)
		}
	}
	saved := w.nestedNs
	w.nestedNs = 0
	// The consumer may Release (recycle) the fused task the instant it
	// completes, so everything needed after the body is snapshotted
	// before exec; the producer's last touch of t happens inside exec.
	tMeta, tDepth := t.meta, t.depthNs
	// Publish the running task's scope (for cancellation inheritance),
	// identity and spawn-path depth (for causal tracing and the online
	// span estimator), and start time (for watchdog stall detection);
	// restore the enclosing task's view afterwards so nested inline
	// execution is transparent.
	savedCtx := w.curCtx
	w.curCtx = t.ctx
	savedID, savedDepth := w.curTaskID, w.curDepthNs
	w.curTaskID = 0
	if tMeta != nil {
		w.curTaskID = tMeta.id
	}
	w.curDepthNs = tDepth
	savedStart := w.metrics.taskStartNs.Swap(begin.UnixNano())
	t.exec()
	w.metrics.taskStartNs.Store(savedStart)
	w.curCtx = savedCtx
	w.curTaskID, w.curDepthNs = savedID, savedDepth
	total := time.Since(begin).Nanoseconds()
	own := total - w.nestedNs
	if own < 0 {
		own = 0
	}
	w.nestedNs = saved + total
	w.metrics.taskTimeNs.Add(own)
	w.metrics.tasksExecuted.Add(1)
	// Derived-counter feeds: duration/overhead histograms (percentile
	// counters) and the running span maximum (critical-path counters).
	// All owner-local; the stores stay on this worker's cache lines.
	w.durHist.Record(own)
	if dispatchNs > 0 {
		w.ovhHist.Record(dispatchNs)
	}
	if w.rt.adaptiveInline {
		core.EWMAUpdate(&w.rt.grainNsEWMA, own)
	}
	if d := tDepth + own; d > w.metrics.spanMaxNs.Load() {
		w.metrics.spanMaxNs.Store(d)
	}
	if tr := w.rt.loadTracer(); tr != nil {
		ev := TraceEvent{
			Worker:      w.id,
			SpawnWorker: -1,
			StolenFrom:  -1,
			Start:       begin,
			Duration:    time.Duration(own),
			Inline:      inline,
		}
		if m := tMeta; m != nil {
			ev.ID = m.id
			ev.Parent = m.parent
			ev.SpawnWorker = int(m.spawnWorker)
			ev.StolenFrom = int(m.stolenFrom)
			ev.SpawnTime = time.Unix(0, m.spawnNs)
			ev.sitePCs = m.sitePCs
		}
		tr.record(w, ev)
	}
}

// execute runs one task from the scheduling loop. searchStart is when
// the dispatch search for this task began.
func (w *worker) execute(t *task, searchStart time.Time) {
	w.metrics.active.Store(1)
	w.nestedNs = 0 // top of the stack: nothing to report up
	w.timeTask(t, false, searchStart)
	w.metrics.active.Store(0)
}

// executeInline runs a task on the current goroutine (Fork/Sync
// policies, adaptive inlining and help-first waiting), accounting it
// like a scheduled task but tagging it as inline. The task must not be
// touched afterwards: its consumer may already have released it.
func (w *worker) executeInline(t *task) {
	w.timeTask(t, true, time.Time{})
	w.metrics.inlineExecuted.Add(1)
}

// spawnDepthNs returns the spawn-path depth for a task being spawned
// now from w's current task: the running task's depth base plus the
// task's own elapsed time so far (the wall time since the task began,
// minus time spent in nested inline tasks). Called only from w's own
// goroutine mid-task; between tasks it degrades to the depth base.
func (w *worker) spawnDepthNs(nowNs int64) int64 {
	start := w.metrics.taskStartNs.Load()
	if start == 0 {
		return w.curDepthNs
	}
	elapsed := nowNs - start - w.nestedNs
	if elapsed < 0 {
		elapsed = 0
	}
	return w.curDepthNs + elapsed
}

// currentWorker returns the worker the calling goroutine belongs to, or
// nil when called from outside the pool.
func (rt *Runtime) currentWorker() *worker {
	return rt.wmap.lookup(goroutineID())
}

// helpWaitTask runs helpUntilDone and accounts the whole wait as
// non-own time of the enclosing task: a task's recorded duration
// excludes the time it spent waiting on futures, matching HPX's
// suspended-thread semantics. Returns true when t completed, false
// when the optional abort channel (nil = never) closed first.
func (rt *Runtime) helpWaitTask(w *worker, t *task, abort <-chan struct{}) bool {
	saved := w.nestedNs
	begin := time.Now()
	ok := rt.helpUntilDone(w, t, abort)
	w.nestedNs = saved + time.Since(begin).Nanoseconds()
	return ok
}

// helpPollInterval is the backoff while waiting for a future with no
// runnable work; it only matters in genuinely idle phases.
const helpPollInterval = 20 * time.Microsecond

// helpUntilDone lets the calling worker make progress while it waits
// for t to complete: it executes local tasks first, then stolen ones,
// and parks on the task's wait channel when no work exists. The
// completion check polls the task's state directly, so the common case
// — the waited-for child found and run by this very loop — never
// allocates the channel. Returns true when t completed, false when the
// optional abort channel (nil = never) closed first.
func (rt *Runtime) helpUntilDone(w *worker, t *task, abort <-chan struct{}) bool {
	// One reusable timer across poll iterations: allocated lazily the
	// first time this wait actually idles, reset thereafter.
	var timer *time.Timer
	for {
		if t.state.Load() == futDone {
			return true
		}
		if abort != nil {
			select {
			case <-abort:
				return false
			default:
			}
		}
		if nt := w.find(); nt != nil {
			w.executeInline(nt)
			continue
		}
		// No runnable work: block until the future completes or the
		// poll interval elapses. We poll with a short backoff rather
		// than integrating done into the notifier, keeping the wait
		// structure simple. A nil abort case never fires, so the
		// three-way select also serves the two-channel wait.
		done := t.waitChan()
		if t.state.Load() == futDone {
			return true
		}
		idleStart := time.Now()
		if timer == nil {
			timer = time.NewTimer(helpPollInterval)
		} else {
			timer.Reset(helpPollInterval)
		}
		stopTimer := func() {
			if !timer.Stop() {
				// Drain so a later Reset starts clean (pre-1.23 timer
				// channel semantics; harmless under 1.23+).
				select {
				case <-timer.C:
				default:
				}
			}
		}
		select {
		case <-done:
			// The state store trails the channel close by a couple of
			// instructions; the loop head re-checks it.
			stopTimer()
			w.metrics.idleNs.Add(time.Since(idleStart).Nanoseconds())
		case <-abort:
			stopTimer()
			w.metrics.idleNs.Add(time.Since(idleStart).Nanoseconds())
			return false
		case <-timer.C:
			w.metrics.idleNs.Add(time.Since(idleStart).Nanoseconds())
		}
	}
}
