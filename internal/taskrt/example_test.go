package taskrt_test

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/taskrt"
)

// The basic fork/join pattern: spawn, compute, join.
func ExampleAsyncF() {
	rt := taskrt.New(taskrt.WithWorkers(2))
	defer rt.Shutdown()

	future := taskrt.AsyncF(rt, func() int { return 6 * 7 })
	fmt.Println(future.Get())
	// Output: 42
}

// Launch policies mirror HPX: Sync and Fork run at the spawn point,
// Deferred runs at the first Get.
func ExampleSpawn() {
	rt := taskrt.New(taskrt.WithWorkers(2))
	defer rt.Shutdown()

	sync := taskrt.Spawn(rt, taskrt.Sync, func() string { return "ran eagerly" })
	fmt.Println(sync.Ready(), sync.Get())

	deferred := taskrt.Spawn(rt, taskrt.Deferred, func() string { return "ran lazily" })
	fmt.Println(deferred.Ready())
	fmt.Println(deferred.Get())
	// Output:
	// true ran eagerly
	// false
	// ran lazily
}

// Continuations compose without blocking a goroutine on the antecedent.
func ExampleThen() {
	rt := taskrt.New(taskrt.WithWorkers(2))
	defer rt.Shutdown()

	a := taskrt.AsyncF(rt, func() int { return 20 })
	b := taskrt.Then(a, taskrt.Async, func(v int) int { return v + 22 })
	fmt.Println(b.Get())
	// Output: 42
}

// The runtime's counters register into a core.Registry and are read by
// hierarchical name — the paper's central mechanism.
func ExampleRuntime_RegisterCounters() {
	rt := taskrt.New(taskrt.WithWorkers(2))
	defer rt.Shutdown()
	reg := core.NewRegistry()
	if err := rt.RegisterCounters(reg); err != nil {
		panic(err)
	}

	fs := make([]*taskrt.Future[int], 10)
	for i := range fs {
		fs[i] = taskrt.AsyncF(rt, func() int { return 0 })
	}
	taskrt.WaitAllOf(fs)

	v, err := reg.Evaluate("/threads{locality#0/total}/count/cumulative", false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("tasks executed: %d\n", v.Raw)
	// Output: tasks executed: 10
}
