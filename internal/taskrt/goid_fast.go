//go:build amd64 || arm64

package taskrt

// Fast goroutine identity. The runtime's g struct stores the goroutine
// id at a fixed (but unexported, version-dependent) offset. Rather than
// hardcoding per-release offsets, the offset is discovered at package
// init by probing: getgoid(off) reads one word of the current g at a
// candidate offset (in assembly, so neither checkptr nor the race
// detector object), and an offset is accepted only if it reproduces the
// runtime.Stack-derived id from several distinct goroutines. If no
// unique offset survives - say a future Go release moves the field out
// of the probed window - the package permanently falls back to the slow
// parse, trading speed, never correctness.
//
// The g pointer is stable for the life of a goroutine (stack growth
// moves the stack, not the g), and the goid field is written once at
// goroutine creation, so reading it from the owning goroutine is safe.

// getgoid returns the word of the calling goroutine's g struct at byte
// offset off. Implemented in goid_amd64.s / goid_arm64.s.
func getgoid(off uintptr) uint64

const invalidGoidOffset = ^uintptr(0)

// goidScanBytes bounds the probe window. The goid field has lived in
// the first ~200 bytes of the g struct for every Go release to date;
// 384 bytes is comfortably inside the struct (so the probe never reads
// foreign memory) while leaving room for future growth.
const goidScanBytes = 384

// goidOffset is written once during package init (which happens-before
// any other use of this package) and read-only afterwards.
var goidOffset = invalidGoidOffset

func fastGoroutineID() (uint64, bool) {
	if off := goidOffset; off != invalidGoidOffset {
		return getgoid(off), true
	}
	return 0, false
}

// goidCandidates probes every word-aligned offset in the window and
// returns those matching the calling goroutine's true id.
func goidCandidates() map[uintptr]bool {
	id := goroutineIDSlow()
	c := make(map[uintptr]bool)
	for off := uintptr(0); off < goidScanBytes; off += 8 {
		if getgoid(off) == id {
			c[off] = true
		}
	}
	return c
}

func init() {
	cands := goidCandidates()
	// Cross-check against fresh goroutines (distinct goids) until a
	// single candidate remains: a field that coincidentally equals the
	// goid of one goroutine will not equal the goids of several.
	for probe := 0; probe < 4 && len(cands) > 0; probe++ {
		ch := make(chan map[uintptr]bool)
		go func() { ch <- goidCandidates() }()
		other := <-ch
		for off := range cands {
			if !other[off] {
				delete(cands, off)
			}
		}
		if len(cands) == 1 {
			break
		}
	}
	if len(cands) == 1 {
		for off := range cands {
			goidOffset = off
		}
	}
}
