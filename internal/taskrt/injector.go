package taskrt

import "sync/atomic"

// injector is the queue tasks submitted from outside the pool land on.
// It is a Michael-Scott MPMC linked queue (PODC'96): external producers
// enqueue with two CASes and workers dequeue with one, so submitters
// never serialize on a mutex the way the seed's locked deque forced
// them to. Retired nodes are reclaimed by the garbage collector, which
// is what makes the unbounded-node variant safe against ABA in Go.
type injector struct {
	head atomic.Pointer[injNode] // dummy; head.next is the queue front
	_    [cacheLineSize - 8]byte
	tail atomic.Pointer[injNode]
	_    [cacheLineSize - 8]byte
	size atomic.Int64
}

type injNode struct {
	next atomic.Pointer[injNode]
	task atomic.Pointer[task]
}

func newInjector() *injector {
	q := &injector{}
	dummy := &injNode{}
	q.head.Store(dummy)
	q.tail.Store(dummy)
	return q
}

// pushBack enqueues t. Safe from any goroutine.
func (q *injector) pushBack(t *task) {
	n := &injNode{}
	n.task.Store(t)
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if next != nil {
			// Tail is lagging: help the other producer along.
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, n) {
			q.tail.CompareAndSwap(tail, n)
			q.size.Add(1)
			return
		}
	}
}

// pushBackN enqueues a whole batch with a single linearising CAS: the
// nodes are chained privately first, then the head of the chain is
// spliced after the current tail exactly like a single push. Safe from
// any goroutine; consumers observe the batch in order.
func (q *injector) pushBackN(ts []*task) {
	if len(ts) == 0 {
		return
	}
	head := &injNode{}
	head.task.Store(ts[0])
	chainTail := head
	for _, t := range ts[1:] {
		n := &injNode{}
		n.task.Store(t)
		chainTail.next.Store(n)
		chainTail = n
	}
	for {
		tail := q.tail.Load()
		next := tail.next.Load()
		if next != nil {
			q.tail.CompareAndSwap(tail, next)
			continue
		}
		if tail.next.CompareAndSwap(nil, head) {
			q.tail.CompareAndSwap(tail, chainTail)
			q.size.Add(int64(len(ts)))
			return
		}
	}
}

// popFront dequeues the oldest task, or nil when the queue is empty.
// Safe from any goroutine.
func (q *injector) popFront() *task {
	for {
		head := q.head.Load()
		next := head.next.Load()
		if next == nil {
			return nil
		}
		t := next.task.Load()
		if q.head.CompareAndSwap(head, next) {
			// next is the new dummy; drop its payload reference so the
			// task is collectable as soon as it finishes.
			next.task.Store(nil)
			q.size.Add(-1)
			return t
		}
	}
}

// len returns the approximate queue length.
func (q *injector) len() int {
	if n := q.size.Load(); n > 0 {
		return int(n)
	}
	return 0
}
