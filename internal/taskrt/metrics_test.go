package taskrt

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func newInstrumentedRuntime(t *testing.T, workers int) (*Runtime, *core.Registry) {
	t.Helper()
	rt := New(WithWorkers(workers))
	t.Cleanup(rt.Shutdown)
	reg := core.NewRegistry()
	if err := rt.RegisterCounters(reg); err != nil {
		t.Fatalf("RegisterCounters: %v", err)
	}
	return rt, reg
}

func TestCountersCumulativeTasks(t *testing.T) {
	rt, reg := newInstrumentedRuntime(t, 2)
	const n = 100
	fs := make([]*Future[int], n)
	for i := range fs {
		fs[i] = AsyncF(rt, func() int {
			time.Sleep(50 * time.Microsecond)
			return 0
		})
	}
	WaitAllOf(fs)
	v, err := reg.Evaluate("/threads{locality#0/total}/count/cumulative", false)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if v.Raw != n {
		t.Fatalf("cumulative tasks = %d want %d", v.Raw, n)
	}
	// Per-worker counters sum to the total.
	var perWorker int64
	for w := 0; w < rt.NumWorkers(); w++ {
		name := core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "worker-thread", int64(w))...)
		wv, err := reg.Evaluate(name.String(), false)
		if err != nil {
			t.Fatalf("Evaluate worker %d: %v", w, err)
		}
		perWorker += wv.Raw
	}
	if perWorker != n {
		t.Fatalf("per-worker sum = %d", perWorker)
	}
}

func TestCounterTaskDuration(t *testing.T) {
	rt, reg := newInstrumentedRuntime(t, 1)
	const n = 50
	const sleep = 200 * time.Microsecond
	fs := make([]*Future[int], n)
	for i := range fs {
		fs[i] = AsyncF(rt, func() int {
			busySpin(sleep)
			return 0
		})
	}
	WaitAllOf(fs)
	v, err := reg.Evaluate("/threads{locality#0/total}/time/average", false)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	avg := time.Duration(v.Float64())
	if avg < sleep || avg > 20*sleep {
		t.Fatalf("average task duration = %v, want >= %v", avg, sleep)
	}
	cum, _ := reg.Evaluate("/threads{locality#0/total}/time/cumulative", false)
	if cum.Raw < int64(n)*sleep.Nanoseconds() {
		t.Fatalf("cumulative task time = %d", cum.Raw)
	}
}

func TestCounterEvaluateAndResetBetweenSamples(t *testing.T) {
	// The paper's measurement protocol: evaluate+reset active counters
	// around each computation sample.
	rt, reg := newInstrumentedRuntime(t, 2)
	if _, err := reg.AddActive("/threads{locality#0/total}/count/cumulative"); err != nil {
		t.Fatal(err)
	}
	runSample := func(k int) int64 {
		fs := make([]*Future[int], k)
		for i := range fs {
			fs[i] = AsyncF(rt, func() int { return 0 })
		}
		WaitAllOf(fs)
		vals := reg.EvaluateActive(true)
		return vals[0].Raw
	}
	if got := runSample(30); got != 30 {
		t.Fatalf("sample 1 = %d", got)
	}
	if got := runSample(20); got != 20 {
		t.Fatalf("sample 2 = %d (reset between samples failed)", got)
	}
}

func TestCounterIdleRate(t *testing.T) {
	rt, reg := newInstrumentedRuntime(t, 2)
	// Let the workers idle a while.
	time.Sleep(30 * time.Millisecond)
	v, err := reg.Evaluate("/threads{locality#0/total}/idle-rate", false)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	// idle-rate is in 0.01% units: an idle runtime should be near 10000.
	if rate := v.Float64(); rate < 5000 {
		t.Fatalf("idle-rate = %v (runtime was idle)", rate)
	}
	_ = rt
}

func TestCounterPendingAndQueueLength(t *testing.T) {
	rt, reg := newInstrumentedRuntime(t, 1)
	block := make(chan struct{})
	// Occupy the single worker, then queue more tasks.
	head := AsyncF(rt, func() int { <-block; return 0 })
	time.Sleep(5 * time.Millisecond)
	tail := make([]*Future[int], 5)
	for i := range tail {
		tail[i] = AsyncF(rt, func() int { return 0 })
	}
	v, err := reg.Evaluate("/threads{locality#0/total}/count/instantaneous/pending", false)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if v.Raw != 5 {
		t.Fatalf("pending = %d want 5", v.Raw)
	}
	a, _ := reg.Evaluate("/threads{locality#0/total}/count/instantaneous/active", false)
	if a.Raw != 1 {
		t.Fatalf("active = %d want 1", a.Raw)
	}
	close(block)
	head.Get()
	WaitAllOf(tail)
}

func TestCounterMemoryAndUptime(t *testing.T) {
	_, reg := newInstrumentedRuntime(t, 1)
	for _, name := range []string{
		"/runtime{locality#0/total}/memory/allocated",
		"/runtime{locality#0/total}/memory/resident",
		"/runtime{locality#0/total}/memory/total-allocated",
		"/runtime{locality#0/total}/uptime",
	} {
		v, err := reg.Evaluate(name, false)
		if err != nil {
			t.Fatalf("Evaluate(%q): %v", name, err)
		}
		if v.Raw <= 0 {
			t.Fatalf("%s = %d", name, v.Raw)
		}
	}
}

func TestCounterDiscoveryOfRuntimeCounters(t *testing.T) {
	rt, reg := newInstrumentedRuntime(t, 3)
	names, err := reg.Discover("/threads{locality#0/worker-thread#*}/time/average")
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(names) != rt.NumWorkers() {
		t.Fatalf("discovered %d worker counters, want %d: %v", len(names), rt.NumWorkers(), names)
	}
	types := reg.Types()
	var haveAvg, haveIdle bool
	for _, info := range types {
		if info.TypeName == "/threads/time/average" {
			haveAvg = true
		}
		if info.TypeName == "/threads/idle-rate" {
			haveIdle = true
		}
	}
	if !haveAvg || !haveIdle {
		t.Fatalf("expected counter types missing from %d types", len(types))
	}
}

func TestStatisticsOverRuntimeCounter(t *testing.T) {
	// Integration: a /statistics meta counter over a live runtime
	// counter.
	rt, reg := newInstrumentedRuntime(t, 2)
	c, err := reg.Get("/statistics{/threads{locality#0/total}/count/cumulative}/max@100")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	sc := c.(*core.StatisticsCounter)
	for i := 0; i < 3; i++ {
		fs := make([]*Future[int], 10)
		for j := range fs {
			fs[j] = AsyncF(rt, func() int { return 0 })
		}
		WaitAllOf(fs)
		sc.Sample()
	}
	if got := sc.Value(false).Float64(); got != 30 {
		t.Fatalf("max cumulative = %v", got)
	}
}

func TestCounterNamesWellFormed(t *testing.T) {
	_, reg := newInstrumentedRuntime(t, 2)
	names, err := reg.Discover("/threads/count/cumulative")
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if _, err := core.ParseName(n.String()); err != nil {
			t.Errorf("registered counter name %q does not re-parse: %v", n, err)
		}
		if !strings.HasPrefix(n.String(), "/threads{locality#0/") {
			t.Errorf("unexpected instance prefix in %q", n)
		}
	}
}

// busySpin spins for roughly d without sleeping, so task duration is
// attributable CPU time even on a loaded host.
func busySpin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}
