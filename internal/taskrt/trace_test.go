package taskrt

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracingRecordsTasks(t *testing.T) {
	rt := newTestRuntime(t, 2)
	rt.EnableTracing(0)
	fs := make([]*Future[int], 20)
	for i := range fs {
		fs[i] = AsyncF(rt, func() int {
			busySpin(50 * time.Microsecond)
			return 0
		})
	}
	WaitAllOf(fs)
	events, dropped := rt.TraceEvents()
	if len(events) != 20 || dropped != 0 {
		t.Fatalf("events = %d dropped = %d", len(events), dropped)
	}
	for _, ev := range events {
		if ev.Worker < 0 || ev.Worker >= rt.NumWorkers() {
			t.Fatalf("bad worker id %d", ev.Worker)
		}
		if ev.Duration <= 0 {
			t.Fatalf("non-positive duration %v", ev.Duration)
		}
	}
	rt.DisableTracing()
	// Events survive disable.
	if events, _ := rt.TraceEvents(); len(events) != 20 {
		t.Fatalf("events lost at disable: %d", len(events))
	}
	// New tasks after disable are not recorded.
	AsyncF(rt, func() int { return 0 }).Get()
	if events, _ := rt.TraceEvents(); len(events) != 20 {
		t.Fatal("recording continued after disable")
	}
}

func TestTracingBufferLimit(t *testing.T) {
	rt := newTestRuntime(t, 1)
	rt.EnableTracing(5)
	fs := make([]*Future[int], 12)
	for i := range fs {
		fs[i] = AsyncF(rt, func() int { return 0 })
	}
	WaitAllOf(fs)
	events, dropped := rt.TraceEvents()
	if len(events) != 5 {
		t.Fatalf("events = %d want 5", len(events))
	}
	if dropped != 7 {
		t.Fatalf("dropped = %d want 7", dropped)
	}
}

func TestTracingCausalFields(t *testing.T) {
	rt := newTestRuntime(t, 2)
	rt.EnableTracing(0)
	f := AsyncF(rt, func() int {
		c1 := AsyncF(rt, func() int { busySpin(20 * time.Microsecond); return 1 })
		c2 := AsyncF(rt, func() int { busySpin(20 * time.Microsecond); return 2 })
		return c1.Get() + c2.Get()
	})
	if got := f.Get(); got != 3 {
		t.Fatalf("result = %d", got)
	}
	events, _ := rt.TraceEvents()
	if len(events) != 3 {
		t.Fatalf("events = %d want 3", len(events))
	}
	byID := map[int64]TraceEvent{}
	var rootID int64
	for _, ev := range events {
		if ev.ID <= 0 {
			t.Fatalf("task without identity: %+v", ev)
		}
		if _, dup := byID[ev.ID]; dup {
			t.Fatalf("duplicate task id %d", ev.ID)
		}
		byID[ev.ID] = ev
		if ev.Parent == 0 {
			rootID = ev.ID
		}
		if ev.Site == "" || !strings.HasPrefix(ev.Site, "trace_test.go:") {
			t.Fatalf("spawn site = %q, want trace_test.go:N", ev.Site)
		}
		if ev.SpawnTime.IsZero() || ev.SpawnTime.After(ev.Start) {
			t.Fatalf("spawn time %v not before start %v", ev.SpawnTime, ev.Start)
		}
	}
	if rootID == 0 {
		t.Fatal("no root task (Parent == 0)")
	}
	children := 0
	for _, ev := range events {
		if ev.ID == rootID {
			continue
		}
		if ev.Parent != rootID {
			t.Fatalf("task %d has parent %d, want root %d", ev.ID, ev.Parent, rootID)
		}
		children++
	}
	if children != 2 {
		t.Fatalf("children of root = %d want 2", children)
	}
}

func TestTracingOffByDefault(t *testing.T) {
	rt := newTestRuntime(t, 1)
	AsyncF(rt, func() int { return 0 }).Get()
	if events, _ := rt.TraceEvents(); events != nil {
		t.Fatalf("events recorded without tracing: %d", len(events))
	}
}

func TestWriteChromeTrace(t *testing.T) {
	rt := newTestRuntime(t, 2)
	rt.EnableTracing(0)
	f := AsyncF(rt, func() int {
		child := AsyncF(rt, func() int { busySpin(20 * time.Microsecond); return 1 })
		return child.Get()
	})
	f.Get()
	events, _ := rt.TraceEvents()
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, events); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	counts := map[string]int{}
	for _, ev := range parsed {
		ph, _ := ev["ph"].(string)
		counts[ph]++
		switch ph {
		case "X":
			if ev["ts"].(float64) < 0 || ev["dur"].(float64) <= 0 {
				t.Fatalf("malformed slice %v", ev)
			}
		case "M":
			name, _ := ev["name"].(string)
			if name != "process_name" && name != "thread_name" {
				t.Fatalf("unexpected metadata %v", ev)
			}
		case "s", "f":
			if ev["id"] == "" {
				t.Fatalf("flow event without id: %v", ev)
			}
		default:
			t.Fatalf("unexpected phase %q in %v", ph, ev)
		}
	}
	if counts["X"] != len(events) {
		t.Fatalf("slices = %d, recorded = %d", counts["X"], len(events))
	}
	if counts["M"] == 0 {
		t.Fatal("no process/thread name metadata emitted")
	}
	if counts["s"] != counts["f"] {
		t.Fatalf("unbalanced flow events: %d starts, %d finishes", counts["s"], counts["f"])
	}
	// Empty trace: valid empty JSON array.
	sb.Reset()
	if err := WriteChromeTrace(&sb, nil); err != nil || strings.TrimSpace(sb.String()) != "[]" {
		t.Fatalf("empty trace = %q (%v)", sb.String(), err)
	}
}
