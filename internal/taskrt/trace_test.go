package taskrt

import (
	"encoding/json"
	"strings"
	"testing"
	"time"
)

func TestTracingRecordsTasks(t *testing.T) {
	rt := newTestRuntime(t, 2)
	rt.EnableTracing(0)
	fs := make([]*Future[int], 20)
	for i := range fs {
		fs[i] = AsyncF(rt, func() int {
			busySpin(50 * time.Microsecond)
			return 0
		})
	}
	WaitAllOf(fs)
	events, dropped := rt.TraceEvents()
	if len(events) != 20 || dropped != 0 {
		t.Fatalf("events = %d dropped = %d", len(events), dropped)
	}
	for _, ev := range events {
		if ev.Worker < 0 || ev.Worker >= rt.NumWorkers() {
			t.Fatalf("bad worker id %d", ev.Worker)
		}
		if ev.Duration <= 0 {
			t.Fatalf("non-positive duration %v", ev.Duration)
		}
	}
	rt.DisableTracing()
	// Events survive disable.
	if events, _ := rt.TraceEvents(); len(events) != 20 {
		t.Fatalf("events lost at disable: %d", len(events))
	}
	// New tasks after disable are not recorded.
	AsyncF(rt, func() int { return 0 }).Get()
	if events, _ := rt.TraceEvents(); len(events) != 20 {
		t.Fatal("recording continued after disable")
	}
}

func TestTracingBufferLimit(t *testing.T) {
	rt := newTestRuntime(t, 1)
	rt.EnableTracing(5)
	fs := make([]*Future[int], 12)
	for i := range fs {
		fs[i] = AsyncF(rt, func() int { return 0 })
	}
	WaitAllOf(fs)
	events, dropped := rt.TraceEvents()
	if len(events) != 5 {
		t.Fatalf("events = %d want 5", len(events))
	}
	if dropped != 7 {
		t.Fatalf("dropped = %d want 7", dropped)
	}
}

func TestTracingOffByDefault(t *testing.T) {
	rt := newTestRuntime(t, 1)
	AsyncF(rt, func() int { return 0 }).Get()
	if events, _ := rt.TraceEvents(); events != nil {
		t.Fatalf("events recorded without tracing: %d", len(events))
	}
}

func TestWriteChromeTrace(t *testing.T) {
	rt := newTestRuntime(t, 2)
	rt.EnableTracing(0)
	f := AsyncF(rt, func() int {
		child := AsyncF(rt, func() int { busySpin(20 * time.Microsecond); return 1 })
		return child.Get()
	})
	f.Get()
	events, _ := rt.TraceEvents()
	var sb strings.Builder
	if err := WriteChromeTrace(&sb, events); err != nil {
		t.Fatal(err)
	}
	var parsed []map[string]any
	if err := json.Unmarshal([]byte(sb.String()), &parsed); err != nil {
		t.Fatalf("invalid JSON: %v", err)
	}
	if len(parsed) != len(events) {
		t.Fatalf("chrome events = %d, recorded = %d", len(parsed), len(events))
	}
	for _, ev := range parsed {
		if ev["ph"] != "X" || ev["ts"].(float64) < 0 {
			t.Fatalf("malformed event %v", ev)
		}
	}
	// Empty trace: valid empty JSON array.
	sb.Reset()
	if err := WriteChromeTrace(&sb, nil); err != nil || strings.TrimSpace(sb.String()) != "[]" {
		t.Fatalf("empty trace = %q (%v)", sb.String(), err)
	}
}
