//go:build race

package taskrt

const raceEnabled = true
