package taskrt

// Counter-driven adaptive inlining: the runtime meters its own spawn
// machinery — the submit-side queue publish and the dispatch-side
// search — into per-runtime EWMAs (the PR 8 cost-metering cell), and
// runs a child inline at the spawn point whenever the child's estimated
// grain is below a threshold derived from those measurements. This is
// the paper's "assess efficiency" loop closed into the scheduler
// itself: the same numbers exported as counters decide, per spawn,
// whether scheduling the task is worth more than the task.
//
// The decision is observable through three counters:
//
//	/runtime{locality#L/total}/grain/threshold-ns   current threshold
//	/runtime{locality#L/total}/grain/inlined        children run inline
//	/runtime{locality#L/total}/grain/spawned        children enqueued
//
// Inlining trades parallelism for overhead, so the policy only inlines
// while the queues already hold enough work to keep every worker busy;
// a batch enqueues just enough members to feed idle workers and inlines
// the rest.

import "repro/internal/core"

const (
	// inlineCostFactor scales the measured per-spawn cost into the
	// inline threshold. The target is ≈2× the full spawn+get round
	// trip; the EWMA pair only observes the submit and dispatch halves
	// of that round trip (the join/wakeup half has no per-task
	// attribution point), which together run about half of it, so the
	// factor is 2×2.
	inlineCostFactor = 4
	// costSampleCapNs clamps individual submit/dispatch samples: a
	// dispatch that absorbed a long failed-steal sweep or an unlucky
	// preemption must not swing the threshold by orders of magnitude.
	costSampleCapNs = 2_000
	// maxInlineThresholdNs bounds the threshold outright, so even a
	// saturated pair of EWMAs cannot inline genuinely coarse tasks.
	maxInlineThresholdNs = 20_000
)

// WithAdaptiveInlining enables counter-driven adaptive inlining: Async
// spawns whose estimated grain (caller-supplied via AsyncGrain /
// AsyncBatchGrain, else the runtime's profiled task-duration EWMA)
// falls below ≈2× the runtime's measured spawn cost run inline on the
// spawning worker instead of being enqueued — but only while the
// queues hold enough work to keep every worker fed. Off by default:
// the policy changes scheduling order within a worker (children run
// depth-first at the spawn point), which fork/join workloads tolerate
// but free-running pipelines may not.
func WithAdaptiveInlining() Option {
	return func(c *config) { c.adaptiveInline = true }
}

// costSample clamps one spawn-cost measurement before it enters an
// EWMA cell.
func costSample(ns int64) int64 {
	if ns > costSampleCapNs {
		return costSampleCapNs
	}
	return ns
}

// InlineThresholdNs returns the current adaptive-inline threshold in
// nanoseconds: tasks estimated to run shorter than this are candidates
// for inline execution. Zero until the runtime has measured itself (or
// with the policy disabled and no samples taken). Backs the
// /runtime{...}/grain/threshold-ns counter.
func (rt *Runtime) InlineThresholdNs() int64 {
	thr := inlineCostFactor * (rt.submitCostNs.Load() + rt.dispatchCostNs.Load())
	if thr > maxInlineThresholdNs {
		thr = maxInlineThresholdNs
	}
	return thr
}

// GrainInlined returns the cumulative number of Async spawns the
// adaptive policy ran inline.
func (rt *Runtime) GrainInlined() int64 { return rt.grainInlined.Load() }

// GrainSpawned returns the cumulative number of Async spawns the
// adaptive policy enqueued (only counted while the policy is enabled).
func (rt *Runtime) GrainSpawned() int64 { return rt.grainSpawned.Load() }

// noteSubmitCost folds one submit-side cost sample into the spawn-cost
// EWMA. Batch submits deliberately do not feed this: the threshold
// models the cost of scheduling one child singly — the counterfactual
// the inline decision is choosing against.
func (rt *Runtime) noteSubmitCost(ns int64) {
	core.EWMAUpdate(&rt.submitCostNs, costSample(ns))
}

// noteDispatchCost folds one dispatch-side cost sample (queue pop plus
// search) into the spawn-cost EWMA.
func (rt *Runtime) noteDispatchCost(ns int64) {
	core.EWMAUpdate(&rt.dispatchCostNs, costSample(ns))
}

// grainEstimate resolves the grain estimate for an inline decision:
// the caller's hint when given, else the runtime's profiled EWMA of
// task own-time; 0 means "unknown" and disables inlining.
func (rt *Runtime) grainEstimate(grainNs int64) int64 {
	if grainNs > 0 {
		return grainNs
	}
	return rt.grainNsEWMA.Load()
}

// inlineEligible decides, at a single Async spawn point, whether to
// run the child inline. Inlining requires: the policy on, a worker
// caller (external callers keep queueing so the pool stays the place
// work runs), a measured threshold, a grain estimate below it, and a
// backlog already deep enough to keep every worker busy without this
// task — inlining must never trade away parallelism, only overhead.
func (rt *Runtime) inlineEligible(w *worker, grainNs int64) bool {
	if !rt.adaptiveInline || w == nil || w.rt != rt {
		return false
	}
	thr := rt.InlineThresholdNs()
	if thr <= 0 {
		return false
	}
	est := rt.grainEstimate(grainNs)
	if est <= 0 || est >= thr {
		return false
	}
	return rt.pending.Load() >= int64(len(rt.workers))
}

// batchInlineSplit returns how many members of an n-task Async batch
// to enqueue; the remaining n-k run inline at the spawn point. With
// the policy off or the batch above the grain threshold the whole
// batch is enqueued. Below the threshold, exactly enough members are
// queued to cover workers not already fed by the pending backlog.
func (rt *Runtime) batchInlineSplit(w *worker, grainNs int64, n int) int {
	if !rt.adaptiveInline || w == nil || w.rt != rt || n == 0 {
		return n
	}
	thr := rt.InlineThresholdNs()
	if thr <= 0 {
		return n
	}
	est := rt.grainEstimate(grainNs)
	if est <= 0 || est >= thr {
		return n
	}
	k := int(int64(len(rt.workers)) - rt.pending.Load())
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}
