// Package hwsim substitutes for the PAPI hardware-counter access the
// paper reaches through HPX's /papi counters. Real off-core request
// counters are not available in this reproduction, so the package
// provides the same counter names backed by two sources:
//
//   - an Accumulator fed with modelled off-core traffic (the simulator's
//     memory model or an instrumented application), split across the
//     three request types the paper sums for its bandwidth estimate;
//
//   - a Go-runtime source approximating traffic from allocation volume,
//     for live processes on the real task runtime.
//
// The paper's bandwidth metric is reproduced by Bandwidth: the summed
// request counts times the cache-line size divided by elapsed time.
package hwsim

import (
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
)

// The offcore request events the paper queries through PAPI.
const (
	EventAllDataRead  = "ALL_DATA_RD"
	EventDemandCodeRd = "DEMAND_CODE_RD"
	EventDemandRFO    = "DEMAND_RFO"
)

// Events lists the three modelled request types in the paper's order.
var Events = []string{EventAllDataRead, EventDemandCodeRd, EventDemandRFO}

// trafficSplit is the modelled share of each request type in total
// off-core traffic: reads dominate, with a small code-read share and the
// store (read-for-ownership) remainder.
var trafficSplit = map[string]float64{
	EventAllDataRead:  0.70,
	EventDemandCodeRd: 0.05,
	EventDemandRFO:    0.25,
}

// Accumulator models the uncore request counters of one locality. The
// traffic source (simulator or instrumented code) calls AddTraffic; the
// counters report line-granular request counts per event type.
type Accumulator struct {
	machine  machine.Machine
	locality int64
	bytes    atomic.Int64
}

// NewAccumulator creates an accumulator for the given platform model.
func NewAccumulator(m machine.Machine, locality int64) *Accumulator {
	return &Accumulator{machine: m, locality: locality}
}

// AddTraffic records off-core traffic in bytes.
func (a *Accumulator) AddTraffic(bytes int64) { a.bytes.Add(bytes) }

// Bytes returns the accumulated traffic.
func (a *Accumulator) Bytes() int64 { return a.bytes.Load() }

// Reset clears the accumulated traffic.
func (a *Accumulator) Reset() { a.bytes.Store(0) }

// count returns the request count for one event type.
func (a *Accumulator) count(event string) int64 {
	share := trafficSplit[event]
	return int64(share * float64(a.bytes.Load()) / float64(a.machine.CacheLineBytes))
}

// RegisterCounters exposes the three events as
// /papi{locality#L/total}/OFFCORE_REQUESTS@<event>, the naming the paper
// uses for its bandwidth estimate.
func (a *Accumulator) RegisterCounters(reg *core.Registry) error {
	for _, ev := range Events {
		ev := ev
		name := core.Name{
			Object:     "papi",
			Counter:    "OFFCORE_REQUESTS",
			Parameters: ev,
		}.WithInstances(core.LocalityInstance(a.locality, "total", -1)...)
		name.Parameters = ev
		info := core.Info{
			TypeName: "/papi/OFFCORE_REQUESTS",
			HelpText: "off-core requests (" + ev + "), modelled from the platform memory-traffic model",
			Unit:     core.UnitEvents, Version: "1.0",
		}
		c := core.NewFuncCounter(name, info, 0,
			func() int64 { return a.count(ev) },
			func() { a.Reset() })
		if err := reg.Register(c); err != nil {
			return err
		}
	}
	return nil
}

// GoRuntimeSource registers the /papi counters for a live Go process,
// approximating off-core traffic from the runtime's cumulative
// allocation volume (every allocated byte is written at least once and
// typically read back; the proxy preserves relative magnitudes between
// phases, which is what the paper's bandwidth comparisons use). This is
// the real-runtime backend of the PAPI substitution; the simulator uses
// an Accumulator instead.
func GoRuntimeSource(m machine.Machine, locality int64, reg *core.Registry) error {
	sample := func() int64 {
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		return int64(ms.TotalAlloc)
	}
	var baseline atomic.Int64
	for _, ev := range Events {
		ev := ev
		name := core.Name{Object: "papi", Counter: "OFFCORE_REQUESTS", Parameters: ev}.
			WithInstances(core.LocalityInstance(locality, "total", -1)...)
		info := core.Info{
			TypeName: "/papi/OFFCORE_REQUESTS",
			HelpText: "off-core requests (" + ev + "), approximated from Go allocation volume",
			Unit:     core.UnitEvents, Version: "1.0",
		}
		c := core.NewFuncCounter(name, info, 0,
			func() int64 {
				bytes := sample() - baseline.Load()
				if bytes < 0 {
					bytes = 0
				}
				return int64(trafficSplit[ev] * float64(bytes) / float64(m.CacheLineBytes))
			},
			func() { baseline.Store(sample()) })
		if err := reg.Register(c); err != nil {
			return err
		}
	}
	return nil
}

// Bandwidth reproduces the paper's estimate: the summed request counts
// multiplied by the cache-line size, divided by the elapsed time.
func Bandwidth(counts []int64, lineBytes int64, elapsed time.Duration) float64 {
	var total int64
	for _, c := range counts {
		total += c
	}
	secs := elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(total*lineBytes) / secs
}

// BandwidthOf evaluates the three counters of a locality in reg and
// derives the bandwidth over the given interval.
func BandwidthOf(reg *core.Registry, locality int64, lineBytes int64, elapsed time.Duration) (float64, error) {
	counts := make([]int64, 0, len(Events))
	for _, ev := range Events {
		name := core.Name{Object: "papi", Counter: "OFFCORE_REQUESTS", Parameters: ev}.
			WithInstances(core.LocalityInstance(locality, "total", -1)...)
		v, err := reg.Evaluate(name.String(), false)
		if err != nil {
			return 0, err
		}
		counts = append(counts, v.Raw)
	}
	return Bandwidth(counts, lineBytes, elapsed), nil
}
