package hwsim

import (
	"math"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/machine"
)

func TestAccumulatorCounters(t *testing.T) {
	m := machine.IvyBridge()
	acc := NewAccumulator(m, 0)
	reg := core.NewRegistry()
	if err := acc.RegisterCounters(reg); err != nil {
		t.Fatalf("RegisterCounters: %v", err)
	}
	acc.AddTraffic(64 * 1000) // 1000 cache lines
	var total int64
	for _, ev := range Events {
		name := "/papi{locality#0/total}/OFFCORE_REQUESTS@" + ev
		v, err := reg.Evaluate(name, false)
		if err != nil {
			t.Fatalf("Evaluate(%s): %v", name, err)
		}
		if v.Raw <= 0 {
			t.Fatalf("%s = %d", ev, v.Raw)
		}
		total += v.Raw
	}
	if total != 1000 {
		t.Fatalf("summed request counts = %d want 1000", total)
	}
}

func TestAccumulatorSplitShares(t *testing.T) {
	m := machine.IvyBridge()
	acc := NewAccumulator(m, 0)
	acc.AddTraffic(64 * 100000)
	reads := acc.count(EventAllDataRead)
	code := acc.count(EventDemandCodeRd)
	rfo := acc.count(EventDemandRFO)
	if reads <= rfo || rfo <= code {
		t.Fatalf("split ordering wrong: reads=%d rfo=%d code=%d", reads, rfo, code)
	}
}

func TestAccumulatorReset(t *testing.T) {
	m := machine.IvyBridge()
	acc := NewAccumulator(m, 0)
	reg := core.NewRegistry()
	if err := acc.RegisterCounters(reg); err != nil {
		t.Fatal(err)
	}
	acc.AddTraffic(6400)
	name := "/papi{locality#0/total}/OFFCORE_REQUESTS@" + EventAllDataRead
	if v, _ := reg.Evaluate(name, true); v.Raw == 0 { // evaluate-and-reset
		t.Fatal("no count before reset")
	}
	if v, _ := reg.Evaluate(name, false); v.Raw != 0 {
		t.Fatalf("count after reset = %d", v.Raw)
	}
	if acc.Bytes() != 0 {
		t.Fatal("accumulator bytes not reset")
	}
}

func TestBandwidthFormula(t *testing.T) {
	// The paper's estimate: counts x 64 bytes / time.
	counts := []int64{700, 50, 250} // 1000 lines
	bw := Bandwidth(counts, 64, time.Second)
	if bw != 64000 {
		t.Fatalf("bandwidth = %v want 64000", bw)
	}
	if Bandwidth(counts, 64, 0) != 0 {
		t.Fatal("zero elapsed must yield zero bandwidth")
	}
}

func TestBandwidthOf(t *testing.T) {
	m := machine.IvyBridge()
	acc := NewAccumulator(m, 3)
	reg := core.NewRegistry()
	if err := acc.RegisterCounters(reg); err != nil {
		t.Fatal(err)
	}
	acc.AddTraffic(64 * 1_000_000) // 64 MB
	bw, err := BandwidthOf(reg, 3, m.CacheLineBytes, time.Second)
	if err != nil {
		t.Fatalf("BandwidthOf: %v", err)
	}
	if math.Abs(bw-64e6)/64e6 > 0.01 {
		t.Fatalf("bandwidth = %v want ~64e6", bw)
	}
	if _, err := BandwidthOf(reg, 9, m.CacheLineBytes, time.Second); err == nil {
		t.Fatal("unknown locality accepted")
	}
}

func TestTrafficSplitSumsToOne(t *testing.T) {
	var sum float64
	for _, ev := range Events {
		sum += trafficSplit[ev]
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("traffic split sums to %v", sum)
	}
}

func TestGoRuntimeSource(t *testing.T) {
	m := machine.IvyBridge()
	reg := core.NewRegistry()
	if err := GoRuntimeSource(m, 5, reg); err != nil {
		t.Fatal(err)
	}
	name := "/papi{locality#5/total}/OFFCORE_REQUESTS@" + EventAllDataRead
	// Reset to a clean window, allocate, and observe counts appear.
	if _, err := reg.Evaluate(name, true); err != nil {
		t.Fatal(err)
	}
	waste := make([][]byte, 64)
	for i := range waste {
		waste[i] = make([]byte, 1<<16)
		waste[i][0] = byte(i)
	}
	v, err := reg.Evaluate(name, false)
	if err != nil {
		t.Fatal(err)
	}
	if v.Raw <= 0 {
		t.Fatalf("no traffic observed after allocating 4 MiB: %d", v.Raw)
	}
	// Keep the allocations alive past the read.
	if waste[63][0] != 63 {
		t.Fatal("unexpected")
	}
}
