package exttool

import (
	"strings"
	"testing"
	"time"

	"repro/internal/sim"
)

func okBaseline(tasks int64, makespanNs int64) sim.Result {
	return sim.Result{Tasks: tasks, ThreadsLaunched: tasks, PeakLive: tasks / 10,
		MakespanNs: makespanNs}
}

func TestTAUCrashesBeyondThreadTable(t *testing.T) {
	tau := TAU()
	// More threads than the 64k table: SegV, as in Table I's fine rows.
	out := tau.Apply(okBaseline(300_000, int64(50*time.Second)))
	if out.Status != SegV {
		t.Fatalf("status = %v", out.Status)
	}
	if !strings.Contains(out.String(), "SegV") {
		t.Fatalf("cell = %q", out.String())
	}
}

func TestTAUOverheadOnCoarse(t *testing.T) {
	tau := TAU()
	// Alignment-like: ~5k threads, 1 s baseline.
	out := tau.Apply(okBaseline(4950, int64(time.Second)))
	if out.Status != OK {
		t.Fatalf("status = %v", out.Status)
	}
	// 4950 x 120 µs = ~0.6 s of bookkeeping: large overhead.
	if out.OverheadPct < 30 {
		t.Fatalf("overhead = %.1f%%, expected substantial", out.OverheadPct)
	}
	if !strings.Contains(out.String(), "%") {
		t.Fatalf("cell = %q", out.String())
	}
}

func TestHPCToolkitTimeout(t *testing.T) {
	hpc := HPCToolkit()
	// 10M threads x 450 µs = 75 min > the 30 min budget (few of them
	// live at once, so memory is not the constraint here).
	base := okBaseline(10_000_000, int64(10*time.Minute))
	base.PeakLive = 1000
	out := hpc.Apply(base)
	if out.Status != Timeout {
		t.Fatalf("status = %v", out.Status)
	}
}

func TestHPCToolkitMemoryAbort(t *testing.T) {
	hpc := HPCToolkit()
	base := okBaseline(50_000, int64(time.Second))
	base.PeakLive = 300_000 // 300k live x 256 KiB > 64 GiB
	out := hpc.Apply(base)
	if out.Status != Abort {
		t.Fatalf("status = %v", out.Status)
	}
}

func TestFailedBaselinePropagates(t *testing.T) {
	failed := sim.Result{Failed: true, FailureReason: "thread ceiling"}
	for _, tool := range []Tool{TAU(), HPCToolkit()} {
		if out := tool.Apply(failed); out.Status != Abort {
			t.Errorf("%s on failed baseline = %v", tool.Name, out.Status)
		}
	}
}

func TestStatusStrings(t *testing.T) {
	for s, want := range map[Status]string{
		OK: "ok", SegV: "SegV", Abort: "Abort", Timeout: "timeout", Status(9): "status(9)",
	} {
		if s.String() != want {
			t.Errorf("Status(%d) = %q want %q", int(s), s.String(), want)
		}
	}
}

func TestOutcomeTimeAccounting(t *testing.T) {
	tool := Tool{Name: "x", PerThreadNs: 1000, Timeout: time.Hour}
	base := okBaseline(1000, 1_000_000)
	out := tool.Apply(base)
	if out.Status != OK {
		t.Fatalf("status = %v", out.Status)
	}
	if out.TimeNs != 2_000_000 {
		t.Fatalf("instrumented time = %d", out.TimeNs)
	}
	if out.OverheadPct != 100 {
		t.Fatalf("overhead = %v", out.OverheadPct)
	}
}
