// Package exttool models the external performance tools of the paper's
// Table I — TAU and HPCToolkit — applied to the std::async baseline.
// The paper's point is negative: both tools assume bounded, long-lived
// OS threads, so the thread-per-task C++ runtime drives them into
// crashes, timeouts or orders-of-magnitude overheads. The models encode
// the documented failure mechanisms:
//
//   - TAU allocates fixed-size per-thread measurement tables at launch;
//     the maximum thread count is a compile-time constant, and even at
//     its 64k maximum the benchmarks crash once more threads appear.
//     Below the limit, per-thread bookkeeping adds large constant cost.
//
//   - HPCToolkit has no thread table limit, but creates measurement
//     files and unwinds stacks per thread; the per-thread file-system
//     cost is so large that fine-grained runs exceed any reasonable
//     time budget or exhaust system resources.
//
// Outcomes reproduce Table I's cells: a completion time with an
// overhead factor, or SegV / Abort / timeout.
package exttool

import (
	"fmt"
	"time"

	"repro/internal/sim"
)

// Status is a Table I cell state.
type Status int

const (
	// OK means the instrumented run completed.
	OK Status = iota
	// SegV means the tool crashed the program.
	SegV
	// Abort means the program itself aborted (resource exhaustion).
	Abort
	// Timeout means the instrumented run exceeded the time budget.
	Timeout
)

// String renders the status as Table I does.
func (s Status) String() string {
	switch s {
	case OK:
		return "ok"
	case SegV:
		return "SegV"
	case Abort:
		return "Abort"
	case Timeout:
		return "timeout"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Tool is one external profiler model.
type Tool struct {
	// Name labels the tool.
	Name string
	// MaxThreads is the hard thread-table limit (0 = unlimited). TAU
	// crashes beyond it.
	MaxThreads int64
	// PerThreadNs is bookkeeping cost per thread created (table setup,
	// file creation, unwind registration).
	PerThreadNs float64
	// PerThreadStackBytes is extra memory per live thread; exceeding
	// MemLimit aborts the run.
	PerThreadStackBytes int64
	// MemLimit bounds the tool's memory use (0 = unlimited).
	MemLimit int64
	// Timeout bounds the instrumented run.
	Timeout time.Duration
}

// TAU returns the TAU model: a 64k thread table (the paper's enlarged
// configuration; the default of 128 fails immediately), with heavyweight
// per-thread measurement structures.
func TAU() Tool {
	return Tool{
		Name:                "TAU",
		MaxThreads:          65536,
		PerThreadNs:         120_000, // table + event registration per thread
		PerThreadStackBytes: 512 << 10,
		MemLimit:            64 << 30,
		Timeout:             30 * time.Minute,
	}
}

// HPCToolkit returns the HPCToolkit model: no thread-table limit, but a
// measurement file and unwind state per thread.
func HPCToolkit() Tool {
	return Tool{
		Name:                "HPCToolkit",
		PerThreadNs:         450_000, // file creation + sampling setup per thread
		PerThreadStackBytes: 256 << 10,
		MemLimit:            64 << 30,
		Timeout:             30 * time.Minute,
	}
}

// Outcome is one Table I cell.
type Outcome struct {
	// Tool names the profiler.
	Tool string
	// Status is the cell state.
	Status Status
	// TimeNs is the instrumented completion time (valid when Status ==
	// OK).
	TimeNs int64
	// OverheadPct is the overhead over the uninstrumented baseline in
	// percent (valid when Status == OK).
	OverheadPct float64
}

// String renders the outcome as a Table I cell.
func (o Outcome) String() string {
	if o.Status != OK {
		return o.Status.String()
	}
	return fmt.Sprintf("%.0f ms (+%.0f%%)", float64(o.TimeNs)/1e6, o.OverheadPct)
}

// Apply computes the tool's outcome on a baseline execution. The
// baseline is the std::async simulation result at full concurrency; a
// failed baseline is reported as Abort regardless of the tool (the
// paper's n/a rows — the program dies before the tool can).
func (t Tool) Apply(baseline sim.Result) Outcome {
	out := Outcome{Tool: t.Name}
	if baseline.Failed {
		out.Status = Abort
		return out
	}
	if t.MaxThreads > 0 && baseline.ThreadsLaunched > t.MaxThreads {
		out.Status = SegV
		return out
	}
	if t.MemLimit > 0 && baseline.PeakLive*t.PerThreadStackBytes > t.MemLimit {
		out.Status = Abort
		return out
	}
	instrumented := baseline.MakespanNs + int64(t.PerThreadNs*float64(baseline.ThreadsLaunched))
	if t.Timeout > 0 && instrumented > t.Timeout.Nanoseconds() {
		out.Status = Timeout
		return out
	}
	out.Status = OK
	out.TimeNs = instrumented
	if baseline.MakespanNs > 0 {
		out.OverheadPct = 100 * float64(instrumented-baseline.MakespanNs) / float64(baseline.MakespanNs)
	}
	return out
}
