package core

import (
	"encoding/json"
	"math"
	"testing"
	"time"
)

func dv(raw int64, status Status) Value {
	return Value{Raw: raw, Status: status, Count: 1}
}

func TestDigestFoldValue(t *testing.T) {
	var d Digest
	if d.FoldValue(Value{Status: StatusCounterUnknown}) {
		t.Fatal("unknown value folded")
	}
	if d.FoldValue(Value{Status: StatusInvalidData}) {
		t.Fatal("invalid value folded")
	}
	if d.Count != 0 {
		t.Fatalf("gaps changed the digest: %+v", d)
	}
	for _, raw := range []int64{5, 1, 9} {
		if !d.FoldValue(dv(raw, StatusValid)) {
			t.Fatalf("valid value %d not folded", raw)
		}
	}
	if !d.FoldValue(dv(3, StatusStale)) {
		t.Fatal("stale value not folded")
	}
	if d.Count != 4 || d.Sum != 18 || d.Min != 1 || d.Max != 9 || d.Stale != 1 || d.Events != 4 {
		t.Fatalf("digest = %+v", d)
	}
	if d.Avg() != 4.5 {
		t.Fatalf("avg = %g", d.Avg())
	}
	if d.AllStale() {
		t.Fatal("partially-stale digest reported AllStale")
	}
}

// TestDigestMergeCommutesAssociates is the correctness property the
// k-ary reduction rests on: fold order must not matter.
func TestDigestMergeCommutesAssociates(t *testing.T) {
	mk := func(vals ...int64) Digest {
		var d Digest
		for _, v := range vals {
			d.FoldValue(dv(v, StatusValid))
		}
		h := &Histogram{}
		for _, v := range vals {
			h.Record(v)
		}
		s := h.Snapshot().Compact()
		d.Hist = &s
		return d
	}
	a, b, c := mk(1, 7), mk(3), mk(10, 2, 5)

	ab := a
	ab.Merge(b)
	ab.Merge(c)

	cb := c
	cb.Merge(b)
	cb.Merge(a)

	bc := b
	bc.Merge(c)
	ba := a
	ba.Merge(bc)

	for _, got := range []Digest{cb, ba} {
		if got.Sum != ab.Sum || got.Min != ab.Min || got.Max != ab.Max ||
			got.Count != ab.Count || got.Events != ab.Events {
			t.Fatalf("merge order changed moments: %+v vs %+v", got, ab)
		}
		if got.Hist.N != ab.Hist.N || got.Hist.Sum != ab.Hist.Sum {
			t.Fatalf("merge order changed histogram totals: %+v vs %+v", got.Hist, ab.Hist)
		}
	}
	if ab.Count != 6 || ab.Min != 1 || ab.Max != 10 || ab.Sum != 28 {
		t.Fatalf("merged digest = %+v", ab)
	}
}

func TestDigestMarkStaleComposition(t *testing.T) {
	var child Digest
	child.FoldValue(dv(4, StatusValid))
	child.FoldValue(dv(6, StatusValid))
	child.MarkStale()
	if !child.AllStale() {
		t.Fatalf("MarkStale left digest fresh: %+v", child)
	}

	var parent Digest
	parent.FoldValue(dv(1, StatusValid))
	parent.Merge(child)
	if parent.Stale != 2 || parent.Count != 3 {
		t.Fatalf("stale accounting after merge: %+v", parent)
	}
	if parent.AllStale() {
		t.Fatal("fresh local sample did not override AllStale")
	}
}

func TestDigestValuesExport(t *testing.T) {
	d := Digest{Key: "/threads{locality#*/total}/idle-rate"}
	d.FoldValue(dv(10, StatusValid))
	d.FoldValue(dv(20, StatusStale))
	at := time.Unix(100, 0)
	vals := d.Values(at, nil)
	if len(vals) != 6 {
		t.Fatalf("got %d exported values: %+v", len(vals), vals)
	}
	byParam := map[string]Value{}
	for _, v := range vals {
		n, err := ParseName(v.Name)
		if err != nil {
			t.Fatalf("exported name %q does not parse: %v", v.Name, err)
		}
		if n.Instances[0].Name != "locality" || !n.Instances[0].Wildcard {
			t.Fatalf("exported name %q lost the locality wildcard", v.Name)
		}
		byParam[n.Parameters] = v
	}
	if got := byParam["sum"].Float64(); got != 30 {
		t.Fatalf("sum = %g", got)
	}
	if got := byParam["avg"].Float64(); got != 15 {
		t.Fatalf("avg = %g", got)
	}
	if got := byParam["min"].Float64(); got != 10 {
		t.Fatalf("min = %g", got)
	}
	if got := byParam["max"].Float64(); got != 20 {
		t.Fatalf("max = %g", got)
	}
	if got := byParam["count"]; got.Raw != 2 {
		t.Fatalf("count = %+v", got)
	}
	if got := byParam["stale"]; got.Raw != 1 {
		t.Fatalf("stale = %+v", got)
	}
	// Partially stale → still served valid (composition rule).
	if byParam["sum"].Status != StatusValid {
		t.Fatalf("partially-stale aggregate status = %s", byParam["sum"].Status)
	}

	d.MarkStale()
	for _, v := range d.Values(at, nil) {
		if v.Status != StatusStale {
			t.Fatalf("all-stale aggregate exported %s as %s", v.Name, v.Status)
		}
	}
}

func TestDigestJSONRoundTrip(t *testing.T) {
	h := &Histogram{}
	for i := int64(1); i <= 100; i++ {
		h.Record(i * 1000)
	}
	snap := h.Snapshot().Compact()
	d := Digest{Key: "/threads{locality#*/total}/time/average",
		Sum: 1.5, Min: 0.5, Max: 1, Count: 2, Events: 7, Stale: 1, Hist: &snap}
	raw, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	var back Digest
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatal(err)
	}
	if back.Sum != d.Sum || back.Count != d.Count || back.Stale != d.Stale {
		t.Fatalf("round trip changed digest: %+v", back)
	}
	if back.Hist == nil || back.Hist.N != 100 {
		t.Fatalf("round trip lost histogram: %+v", back.Hist)
	}
	q, ok := back.Hist.Quantile(0.5)
	if !ok || math.Abs(float64(q)-50_000) > 0.07*50_000 {
		t.Fatalf("median after round trip = %d", q)
	}
}

func TestWildcardLocality(t *testing.T) {
	got := WildcardLocality("/threads{locality#17/total}/idle-rate")
	if got != "/threads{locality#*/total}/idle-rate" {
		t.Fatalf("wildcarded = %q", got)
	}
	// Names without a locality prefix pass through untouched.
	if got := WildcardLocality("/threads/idle-rate"); got != "/threads/idle-rate" {
		t.Fatalf("type path mangled: %q", got)
	}
	if got := WildcardLocality("not-a-name"); got != "not-a-name" {
		t.Fatalf("unparsable name mangled: %q", got)
	}
}

func TestLocalityFullName(t *testing.T) {
	got, err := LocalityFullName("/threads/idle-rate", 12)
	if err != nil {
		t.Fatal(err)
	}
	if got != "/threads{locality#12/total}/idle-rate" {
		t.Fatalf("full name = %q", got)
	}
	if _, err := LocalityFullName("garbage", 0); err == nil {
		t.Fatal("bad type path accepted")
	}
}
