package core

import (
	"sync"
	"testing"
	"time"
)

func mustName(t testing.TB, s string) Name {
	t.Helper()
	n, err := ParseName(s)
	if err != nil {
		t.Fatalf("ParseName(%q): %v", s, err)
	}
	return n
}

func TestRawCounter(t *testing.T) {
	c := NewRawCounter(mustName(t, "/threads{locality#0/total}/count/cumulative"), Info{Unit: UnitEvents})
	c.Inc()
	c.Add(41)
	v := c.Value(false)
	if v.Raw != 42 || v.Float64() != 42 {
		t.Fatalf("value = %+v", v)
	}
	v = c.Value(true) // evaluate-and-reset
	if v.Raw != 42 {
		t.Fatalf("evaluate-and-reset value = %+v", v)
	}
	if got := c.Value(false).Raw; got != 0 {
		t.Fatalf("after reset = %d", got)
	}
	c.Set(7)
	c.Reset()
	if c.Load() != 0 {
		t.Fatal("Reset did not clear")
	}
}

func TestRawCounterConcurrent(t *testing.T) {
	c := NewRawCounter(mustName(t, "/threads{locality#0/total}/count/cumulative"), Info{})
	var wg sync.WaitGroup
	const g, per = 8, 1000
	for i := 0; i < g; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < per; j++ {
				c.Inc()
			}
		}()
	}
	wg.Wait()
	if got := c.Load(); got != g*per {
		t.Fatalf("got %d want %d", got, g*per)
	}
}

func TestFuncCounter(t *testing.T) {
	var src int64 = 500
	c := NewFuncCounter(mustName(t, "/runtime{locality#0/total}/memory/resident"), Info{Unit: UnitBytes},
		0, func() int64 { return src }, func() { src = 0 })
	if v := c.Value(false); v.Raw != 500 {
		t.Fatalf("value = %+v", v)
	}
	if v := c.Value(true); v.Raw != 500 {
		t.Fatalf("evaluate-and-reset = %+v", v)
	}
	if v := c.Value(false); v.Raw != 0 {
		t.Fatalf("after reset = %+v", v)
	}
}

func TestFuncCounterNilReset(t *testing.T) {
	c := NewFuncCounter(mustName(t, "/runtime{locality#0/total}/uptime"), Info{}, 0,
		func() int64 { return 1 }, nil)
	c.Reset() // must not panic
	if v := c.Value(true); v.Raw != 1 {
		t.Fatalf("value = %+v", v)
	}
}

func TestAverageCounter(t *testing.T) {
	c := NewAverageCounter(mustName(t, "/threads{locality#0/total}/time/average"), Info{Unit: UnitNanoseconds})
	c.Record(100)
	c.Record(200)
	c.Record(300)
	v := c.Value(false)
	if v.Float64() != 200 {
		t.Fatalf("mean = %v", v.Float64())
	}
	if v.Count != 3 || v.Raw != 600 {
		t.Fatalf("value = %+v", v)
	}
	c.RecordN(400, 1)
	v = c.Value(true)
	if v.Float64() != 250 || v.Count != 4 {
		t.Fatalf("after RecordN = %+v", v)
	}
	v = c.Value(false)
	if v.Count != 0 || v.Raw != 0 {
		t.Fatalf("after reset = %+v", v)
	}
	if v.Float64() != 0 { // scaling guards against division by zero
		t.Fatalf("empty mean = %v", v.Float64())
	}
}

func TestElapsedTimeCounter(t *testing.T) {
	base := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	cur := base
	defer func(f func() time.Time) { now = f }(now)
	now = func() time.Time { return cur }

	c := NewElapsedTimeCounter(mustName(t, "/runtime{locality#0/total}/uptime"), Info{Unit: UnitNanoseconds})
	cur = base.Add(5 * time.Second)
	if v := c.Value(false); v.Raw != (5 * time.Second).Nanoseconds() {
		t.Fatalf("elapsed = %v", v.Raw)
	}
	if v := c.Value(true); v.Raw != (5 * time.Second).Nanoseconds() {
		t.Fatalf("evaluate-and-reset = %v", v.Raw)
	}
	cur = base.Add(7 * time.Second)
	if v := c.Value(false); v.Raw != (2 * time.Second).Nanoseconds() {
		t.Fatalf("after reset elapsed = %v", v.Raw)
	}
}

func TestValueFloat64(t *testing.T) {
	cases := []struct {
		v    Value
		want float64
	}{
		{Value{Raw: 10}, 10},
		{Value{Raw: 10, Scaling: 1}, 10},
		{Value{Raw: 10, Scaling: 4}, 2.5},
		{Value{Raw: 4, Scaling: 10, Inverse: true}, 2.5},
		{Value{Raw: 0, Scaling: 10, Inverse: true}, 0},
	}
	for i, c := range cases {
		if got := c.v.Float64(); got != c.want {
			t.Errorf("case %d: got %v want %v", i, got, c.want)
		}
	}
	if (Value{Raw: 9, Scaling: 2}).Int64() != 4 {
		t.Error("Int64 truncation")
	}
}

func TestStatusString(t *testing.T) {
	for s, want := range map[Status]string{
		StatusValid:          "valid",
		StatusNewData:        "new-data",
		StatusInvalidData:    "invalid-data",
		StatusCounterUnknown: "unknown",
		Status(99):           "status(99)",
	} {
		if s.String() != want {
			t.Errorf("Status(%d).String() = %q want %q", int(s), s.String(), want)
		}
	}
	if !(Value{Status: StatusNewData}).Valid() || (Value{Status: StatusInvalidData}).Valid() {
		t.Error("Valid() misclassifies")
	}
}
