package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// panicCounter panics on Value and/or Reset.
type panicCounter struct {
	name       Name
	panicValue bool
	panicReset bool
	resets     atomic.Int64
}

func (c *panicCounter) Name() Name { return c.name }
func (c *panicCounter) Info() Info {
	return Info{TypeName: c.name.TypeName(), HelpText: "test", Unit: UnitEvents, Version: "1.0"}
}
func (c *panicCounter) Value(reset bool) Value {
	if c.panicValue {
		panic("counter provider exploded")
	}
	return Value{Name: c.name.String(), Raw: 1, Scaling: 1, Time: time.Now(), Status: StatusValid}
}
func (c *panicCounter) Reset() {
	if c.panicReset {
		panic("reset exploded")
	}
	c.resets.Add(1)
}

func testName(t *testing.T, s string) Name {
	t.Helper()
	n, err := ParseName(s)
	if err != nil {
		t.Fatalf("ParseName(%q): %v", s, err)
	}
	return n
}

// TestPanicIsolatedEvaluateActive: a panicking Counter.Value must not
// abort the sweep — its entry carries StatusInvalidData, the remaining
// counters evaluate normally, and the error self-counter increments.
func TestPanicIsolatedEvaluateActive(t *testing.T) {
	r := NewRegistry()
	good := NewRawCounter(testName(t, "/test{locality#0/total}/good"),
		Info{TypeName: "/test/good", Unit: UnitEvents, Version: "1.0"})
	good.Add(5)
	bad := &panicCounter{name: testName(t, "/test{locality#0/total}/bad"), panicValue: true}
	for _, c := range []Counter{good, bad} {
		if err := r.Register(c); err != nil {
			t.Fatal(err)
		}
		if _, err := r.AddActive(c.Name().String()); err != nil {
			t.Fatal(err)
		}
	}

	values := r.EvaluateActive(false)
	if len(values) != 2 {
		t.Fatalf("EvaluateActive returned %d values, want 2", len(values))
	}
	byName := map[string]Value{}
	for _, v := range values {
		byName[v.Name] = v
	}
	if v := byName[bad.name.String()]; v.Status != StatusInvalidData {
		t.Fatalf("bad counter status = %v, want StatusInvalidData", v.Status)
	}
	if v := byName[good.Name().String()]; v.Status != StatusValid || v.Raw != 5 {
		t.Fatalf("good counter corrupted by neighbor panic: %+v", v)
	}
	if got := r.EvalErrors(); got != 1 {
		t.Fatalf("EvalErrors = %d, want 1", got)
	}

	// The self-counter reports the same number through the normal path.
	v, err := r.Evaluate("/counters{locality#0/total}/count/errors", false)
	if err != nil || v.Raw != 1 || v.Status != StatusValid {
		t.Fatalf("self-counter = %+v, %v", v, err)
	}

	// Single-counter Evaluate is isolated the same way.
	v, err = r.Evaluate(bad.name.String(), false)
	if err != nil {
		t.Fatalf("Evaluate returned error for panicking counter: %v", err)
	}
	if v.Status != StatusInvalidData {
		t.Fatalf("Evaluate status = %v, want StatusInvalidData", v.Status)
	}
	if got := r.EvalErrors(); got != 2 {
		t.Fatalf("EvalErrors = %d, want 2", got)
	}
}

// TestPanicIsolatedResetActive: a panicking Reset must not stop the
// sweep from resetting the remaining counters.
func TestPanicIsolatedResetActive(t *testing.T) {
	r := NewRegistry()
	bad := &panicCounter{name: testName(t, "/test{locality#0/total}/badreset"), panicReset: true}
	ok := &panicCounter{name: testName(t, "/test{locality#0/total}/okreset")}
	for _, c := range []Counter{bad, ok} {
		if err := r.Register(c); err != nil {
			t.Fatal(err)
		}
		if _, err := r.AddActive(c.Name().String()); err != nil {
			t.Fatal(err)
		}
	}
	r.ResetActive() // must not panic
	if ok.resets.Load() == 0 {
		t.Fatal("healthy counter was not reset after neighbor's Reset panicked")
	}
	if r.EvalErrors() == 0 {
		t.Fatal("reset panic not accounted in EvalErrors")
	}
}

// TestPanicIsolatedEvaluateConcurrent exercises the recovery path under
// the race detector: concurrent sweeps over a panicking counter.
func TestPanicIsolatedEvaluateConcurrent(t *testing.T) {
	r := NewRegistry()
	bad := &panicCounter{name: testName(t, "/test{locality#0/total}/bad"), panicValue: true}
	if err := r.Register(bad); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddActive(bad.name.String()); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	const sweeps = 50
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < sweeps; i++ {
				for _, v := range r.EvaluateActive(false) {
					if v.Name == bad.name.String() && v.Status != StatusInvalidData {
						t.Errorf("bad counter status = %v", v.Status)
					}
				}
			}
		}()
	}
	wg.Wait()
	if got := r.EvalErrors(); got != 4*sweeps {
		t.Fatalf("EvalErrors = %d, want %d", got, 4*sweeps)
	}
}

// closableCounter records whether it was closed.
type closableCounter struct {
	name   Name
	closed atomic.Bool
}

func (c *closableCounter) Name() Name { return c.name }
func (c *closableCounter) Info() Info {
	return Info{TypeName: c.name.TypeName(), Unit: UnitEvents, Version: "1.0"}
}
func (c *closableCounter) Value(bool) Value {
	return Value{Name: c.name.String(), Raw: 1, Scaling: 1, Time: time.Now(), Status: StatusValid}
}
func (c *closableCounter) Reset()       {}
func (c *closableCounter) Close() error { c.closed.Store(true); return nil }

// TestRegisterRaceLoserClosed: when concurrent Gets race to instantiate
// the same counter, registration is first-wins — every caller sees one
// shared instance and each losing twin is Closed so factory-held
// resources are not leaked.
func TestRegisterRaceLoserClosed(t *testing.T) {
	r := NewRegistry()
	var created []*closableCounter
	var mu sync.Mutex
	err := r.RegisterType(Info{TypeName: "/raced/value", Unit: UnitEvents, Version: "1.0"},
		func(name Name, _ *Registry) (Counter, error) {
			c := &closableCounter{name: name}
			mu.Lock()
			created = append(created, c)
			mu.Unlock()
			time.Sleep(time.Millisecond) // widen the race window
			return c, nil
		}, nil)
	if err != nil {
		t.Fatal(err)
	}

	const goroutines = 8
	full := "/raced{locality#0/total}/value"
	got := make([]Counter, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c, err := r.Get(full)
			if err != nil {
				t.Error(err)
				return
			}
			got[g] = c
		}()
	}
	wg.Wait()

	for g := 1; g < goroutines; g++ {
		if got[g] != got[0] {
			t.Fatal("racing Gets returned different instances")
		}
	}
	winner := got[0].(*closableCounter)
	mu.Lock()
	defer mu.Unlock()
	if len(created) == 0 {
		t.Fatal("factory never ran")
	}
	for i, c := range created {
		if c == winner {
			if c.closed.Load() {
				t.Fatal("winning instance was closed")
			}
			continue
		}
		if !c.closed.Load() {
			t.Fatalf("losing instance %d of %d not closed", i, len(created))
		}
	}
}

// TestRegisterFirstWins documents Register's own collision semantics:
// the second registration of a full name errors out and the original
// instance keeps serving.
func TestRegisterFirstWins(t *testing.T) {
	r := NewRegistry()
	name := testName(t, "/test{locality#0/total}/dup")
	first := &closableCounter{name: name}
	second := &closableCounter{name: name}
	if err := r.Register(first); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(second); err == nil {
		t.Fatal("duplicate Register did not error")
	}
	c, err := r.Get(name.String())
	if err != nil || c != Counter(first) {
		t.Fatalf("Get after duplicate Register = %v, %v; want the first instance", c, err)
	}
}
