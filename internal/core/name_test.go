package core

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestParseNameTypeOnly(t *testing.T) {
	n, err := ParseName("/threads/time/average")
	if err != nil {
		t.Fatalf("ParseName: %v", err)
	}
	if n.Object != "threads" || n.Counter != "time/average" {
		t.Fatalf("got %+v", n)
	}
	if n.IsFull() {
		t.Fatal("type-only name reported as full")
	}
	if got := n.TypeName(); got != "/threads/time/average" {
		t.Fatalf("TypeName = %q", got)
	}
}

func TestParseNameFull(t *testing.T) {
	n, err := ParseName("/threads{locality#0/worker-thread#3}/count/cumulative")
	if err != nil {
		t.Fatalf("ParseName: %v", err)
	}
	want := []Instance{
		{Name: "locality", Index: 0, HasIndex: true},
		{Name: "worker-thread", Index: 3, HasIndex: true},
	}
	if !reflect.DeepEqual(n.Instances, want) {
		t.Fatalf("instances = %+v", n.Instances)
	}
	if !n.IsFull() {
		t.Fatal("full name not reported as full")
	}
}

func TestParseNameTotalInstance(t *testing.T) {
	n, err := ParseName("/threads{locality#0/total}/time/average")
	if err != nil {
		t.Fatalf("ParseName: %v", err)
	}
	if len(n.Instances) != 2 || n.Instances[1].Name != "total" || n.Instances[1].HasIndex {
		t.Fatalf("instances = %+v", n.Instances)
	}
}

func TestParseNameWildcardIndex(t *testing.T) {
	n, err := ParseName("/threads{locality#0/worker-thread#*}/time/average")
	if err != nil {
		t.Fatalf("ParseName: %v", err)
	}
	if !n.Instances[1].Wildcard {
		t.Fatalf("wildcard not detected: %+v", n.Instances)
	}
}

func TestParseNameParameters(t *testing.T) {
	n, err := ParseName("/papi{locality#0/total}/OFFCORE_REQUESTS@ALL_DATA_RD")
	if err != nil {
		t.Fatalf("ParseName: %v", err)
	}
	if n.Parameters != "ALL_DATA_RD" {
		t.Fatalf("parameters = %q", n.Parameters)
	}
}

func TestParseNameEmbeddedBase(t *testing.T) {
	s := "/statistics{/threads{locality#0/total}/time/average}/rolling_average@100,20"
	n, err := ParseName(s)
	if err != nil {
		t.Fatalf("ParseName: %v", err)
	}
	if n.BaseCounter != "/threads{locality#0/total}/time/average" {
		t.Fatalf("base = %q", n.BaseCounter)
	}
	if n.Counter != "rolling_average" || n.Parameters != "100,20" {
		t.Fatalf("got %+v", n)
	}
	if n.String() != s {
		t.Fatalf("round-trip: %q", n.String())
	}
}

func TestParseNameErrors(t *testing.T) {
	bad := []string{
		"",
		"threads/time",
		"/",
		"//time",
		"/threads",
		"/threads{locality#0/total}",
		"/threads{locality#0/total/time/average", // unbalanced
		"/threads{}/time/average",
		"/threads{locality#x}/time/average",
		"/threads{locality#-1}/time/average",
		"/threads{#3}/time/average",
		"/threads{locality#0}/",
		"/threads{locality#0}//average",
		"/statistics{/bad{{}/average",
	}
	for _, s := range bad {
		if _, err := ParseName(s); err == nil {
			t.Errorf("ParseName(%q) unexpectedly succeeded", s)
		}
	}
}

func TestNameStringRoundTripQuick(t *testing.T) {
	// Property: formatting a randomly generated valid Name and re-parsing
	// it yields the identical structure.
	gen := func(r *rand.Rand) Name {
		objects := []string{"threads", "agas", "parcels", "runtime", "papi"}
		counters := []string{"count/cumulative", "time/average", "idle-rate", "a/b/c"}
		n := Name{
			Object:  objects[r.Intn(len(objects))],
			Counter: counters[r.Intn(len(counters))],
		}
		for i := 0; i < r.Intn(3); i++ {
			inst := Instance{Name: []string{"locality", "total", "worker-thread", "pool"}[r.Intn(4)]}
			switch r.Intn(3) {
			case 0:
				inst.HasIndex, inst.Index = true, int64(r.Intn(100))
			case 1:
				inst.HasIndex, inst.Wildcard = true, true
			}
			n.Instances = append(n.Instances, inst)
		}
		if len(n.Instances) == 0 && r.Intn(2) == 0 {
			n.BaseCounter = "/threads{locality#0/total}/time/average"
		}
		if r.Intn(2) == 0 {
			n.Parameters = "100,20"
		}
		return n
	}
	cfg := &quick.Config{
		MaxCount: 500,
		Values: func(args []reflect.Value, r *rand.Rand) {
			args[0] = reflect.ValueOf(gen(r))
		},
	}
	prop := func(n Name) bool {
		parsed, err := ParseName(n.String())
		if err != nil {
			t.Logf("parse error for %q: %v", n.String(), err)
			return false
		}
		return reflect.DeepEqual(parsed, n)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestMatchPattern(t *testing.T) {
	mk := func(s string) Name {
		n, err := ParseName(s)
		if err != nil {
			t.Fatalf("ParseName(%q): %v", s, err)
		}
		return n
	}
	cases := []struct {
		pattern, name string
		want          bool
	}{
		{"/threads/time/average", "/threads{locality#0/total}/time/average", true},
		{"/threads{locality#0/total}/time/average", "/threads{locality#0/total}/time/average", true},
		{"/threads{locality#0/total}/time/average", "/threads{locality#1/total}/time/average", false},
		{"/threads{locality#*/total}/time/average", "/threads{locality#7/total}/time/average", true},
		{"/threads{locality#0/worker-thread#*}/time/average", "/threads{locality#0/worker-thread#5}/time/average", true},
		{"/threads{locality#0/worker-thread#*}/time/average", "/threads{locality#0/total}/time/average", false},
		{"/threads/count/*", "/threads{locality#0/total}/count/cumulative", true},
		{"/threads/count/*", "/threads{locality#0/total}/time/average", false},
		{"/threads/time/average", "/agas{locality#0/total}/time/average", false},
		{"/threads{*/total}/time/average", "/threads{locality#0/total}/time/average", true},
	}
	for _, c := range cases {
		if got := MatchPattern(mk(c.pattern), mk(c.name)); got != c.want {
			t.Errorf("MatchPattern(%q, %q) = %v, want %v", c.pattern, c.name, got, c.want)
		}
	}
}

func TestLocalityInstance(t *testing.T) {
	n := Name{Object: "threads", Counter: "time/average"}.
		WithInstances(LocalityInstance(0, "worker-thread", 2)...)
	if got := n.String(); got != "/threads{locality#0/worker-thread#2}/time/average" {
		t.Fatalf("got %q", got)
	}
	n2 := Name{Object: "threads", Counter: "time/average"}.
		WithInstances(LocalityInstance(1, "total", -1)...)
	if got := n2.String(); got != "/threads{locality#1/total}/time/average" {
		t.Fatalf("got %q", got)
	}
}

func TestSplitCounterList(t *testing.T) {
	in := "/threads{locality#0/total}/time/average,/statistics{/x{a#0/b}/c}/average@10,20"
	// The second operand contains a comma inside its parameters — the
	// splitter only respects braces, so the "20" splits off; this is the
	// documented HPX behaviour too (parameters of operands must not
	// contain top-level commas). Verify brace-protected commas survive.
	got := splitCounterList("/a{x#0/y}/b,/statistics{/c{d#1/e},weird}/f")
	if len(got) != 2 {
		t.Fatalf("got %d parts: %v", len(got), got)
	}
	_ = in
	if got[1] != "/statistics{/c{d#1/e},weird}/f" {
		t.Fatalf("brace-protected comma split: %v", got)
	}
}

// TestParseNameNeverPanics feeds random byte soup to the parser: it must
// return an error or a Name, never panic, and any accepted name must
// round-trip through String.
func TestParseNameNeverPanics(t *testing.T) {
	prng := rand.New(rand.NewSource(42))
	alphabet := []byte("/{}#@*abz019-_,")
	for i := 0; i < 5000; i++ {
		n := prng.Intn(40)
		b := make([]byte, n)
		for j := range b {
			b[j] = alphabet[prng.Intn(len(alphabet))]
		}
		s := string(b)
		parsed, err := ParseName(s)
		if err != nil {
			continue
		}
		re, err := ParseName(parsed.String())
		if err != nil {
			t.Fatalf("accepted %q but its String %q does not re-parse: %v", s, parsed.String(), err)
		}
		if !reflect.DeepEqual(re, parsed) {
			t.Fatalf("round-trip drift for %q: %+v vs %+v", s, parsed, re)
		}
	}
}
