package core_test

import (
	"fmt"

	"repro/internal/core"
)

// Counter names follow the HPX grammar; ParseName gives structured
// access and String round-trips exactly.
func ExampleParseName() {
	n, err := core.ParseName("/threads{locality#0/worker-thread#3}/time/average")
	if err != nil {
		panic(err)
	}
	fmt.Println(n.Object, n.Counter)
	fmt.Println(n.Instances[0], n.Instances[1])
	fmt.Println(n.TypeName())
	// Output:
	// threads time/average
	// locality#0 worker-thread#3
	// /threads/time/average
}

// The active set implements the paper's measurement protocol: add the
// counters once, then evaluate-and-reset around every sample.
func ExampleRegistry_EvaluateActive() {
	reg := core.NewRegistry()
	tasks := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative"})
	reg.MustRegister(tasks)
	if _, err := reg.AddActive("/threads{locality#0/total}/count/cumulative"); err != nil {
		panic(err)
	}

	tasks.Add(30) // ... sample 1 runs ...
	for _, v := range reg.EvaluateActive(true) {
		fmt.Printf("sample 1: %d\n", v.Raw)
	}
	tasks.Add(20) // ... sample 2 runs ...
	for _, v := range reg.EvaluateActive(true) {
		fmt.Printf("sample 2: %d\n", v.Raw)
	}
	// Output:
	// sample 1: 30
	// sample 2: 20
}

// Arithmetic meta counters derive ratios from other counters with no
// special support from the producers.
func ExampleRegistry_arithmetics() {
	reg := core.NewRegistry()
	mk := func(name string, v int64) {
		c := core.NewRawCounter(
			core.Name{Object: "threads", Counter: name}.
				WithInstances(core.LocalityInstance(0, "total", -1)...),
			core.Info{TypeName: "/threads/" + name})
		reg.MustRegister(c)
		c.Set(v)
	}
	mk("time/cumulative-overhead", 250)
	mk("time/cumulative", 1000)

	ratio, err := reg.Evaluate(
		"/arithmetics/divide@/threads{locality#0/total}/time/cumulative-overhead,"+
			"/threads{locality#0/total}/time/cumulative", false)
	if err != nil {
		panic(err)
	}
	fmt.Printf("overhead share: %.2f\n", ratio.Float64())
	// Output: overhead share: 0.25
}
