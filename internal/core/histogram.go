package core

import (
	"math/bits"
	"sync/atomic"
)

// Log-bucketed histogram: the lock-cheap distribution store behind the
// /statistics{...}/percentile@Q counters. Recording is two uncontended
// atomic adds (no locks, no allocation), so producers on a hot path —
// the task scheduler records every task's duration — stay within the
// counter plane's sampling budget. Buckets are log-linear (16 linear
// sub-buckets per power of two), bounding the relative quantile error
// at ~6% while keeping the whole table in a few KB.

const (
	// histMinorBits sets the linear resolution inside each power of
	// two: 2^histMinorBits sub-buckets per octave.
	histMinorBits  = 4
	histMinorCount = 1 << histMinorBits

	// HistogramBuckets is the fixed bucket count covering all of int64.
	HistogramBuckets = histMinorCount * (65 - histMinorBits)
)

// histBucket maps a non-negative value to its bucket index.
func histBucket(v int64) int {
	u := uint64(v)
	if v < 0 {
		u = 0
	}
	m := bits.Len64(u)
	if m <= histMinorBits {
		return int(u)
	}
	g := m - histMinorBits
	minor := int(u>>uint(g-1)) - histMinorCount
	return histMinorCount*g + minor
}

// histBucketMid returns a representative (midpoint) value for a bucket.
func histBucketMid(b int) int64 {
	if b < histMinorCount {
		return int64(b)
	}
	g := b / histMinorCount
	minor := b % histMinorCount
	low := uint64(histMinorCount+minor) << uint(g-1)
	width := uint64(1) << uint(g-1)
	return int64(low + width/2)
}

// Histogram is a fixed-size log-bucketed value distribution, safe for
// one or many concurrent recorders and concurrent snapshotting. The
// zero value is ready to use.
type Histogram struct {
	counts [HistogramBuckets]atomic.Int64
	sum    atomic.Int64
}

// Record folds one observation into the distribution. Negative values
// are clamped to zero.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[histBucket(v)].Add(1)
	h.sum.Add(v)
}

// Reset clears the distribution. Not atomic with respect to concurrent
// recorders: observations recorded during a reset may be partially
// kept, which the evaluate-and-reset consumers tolerate.
func (h *Histogram) Reset() {
	for i := range h.counts {
		h.counts[i].Store(0)
	}
	h.sum.Store(0)
}

// Totals returns the observation count and value sum without copying
// the bucket table — the allocation-free read used by Counter.Value on
// sampling hot paths (quantiles still need a full Snapshot).
func (h *Histogram) Totals() (n, sum int64) {
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n, h.sum.Load()
}

// Snapshot copies the current distribution.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{Counts: make([]int64, HistogramBuckets)}
	for i := range h.counts {
		c := h.counts[i].Load()
		s.Counts[i] = c
		s.N += c
	}
	s.Sum = h.sum.Load()
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram, mergeable
// across producers (e.g. per-worker histograms into a locality total).
type HistogramSnapshot struct {
	Counts []int64
	N      int64
	Sum    int64
}

// Merge folds another snapshot into s. Bucket tables of different
// lengths merge correctly — s grows to cover the longer one — so
// compacted wire snapshots (Compact) and snapshots from peers built
// with a different bucket count fold without loss or panic.
func (s *HistogramSnapshot) Merge(o HistogramSnapshot) {
	if s.Counts == nil {
		s.Counts = make([]int64, HistogramBuckets)
	}
	if len(o.Counts) > len(s.Counts) {
		grown := make([]int64, len(o.Counts))
		copy(grown, s.Counts)
		s.Counts = grown
	}
	for i, c := range o.Counts {
		s.Counts[i] += c
	}
	s.N += o.N
	s.Sum += o.Sum
}

// Compact returns a copy of the snapshot with trailing zero buckets
// trimmed — the form worth serializing: most distributions occupy a
// narrow band of the full int64 bucket range, and Merge re-grows as
// needed on the receiving side.
func (s HistogramSnapshot) Compact() HistogramSnapshot {
	last := len(s.Counts)
	for last > 0 && s.Counts[last-1] == 0 {
		last--
	}
	out := HistogramSnapshot{N: s.N, Sum: s.Sum}
	if last > 0 {
		out.Counts = append([]int64(nil), s.Counts[:last]...)
	}
	return out
}

// Quantile returns a representative value at quantile q (0 < q <= 1),
// nearest-rank over the bucketed distribution. ok is false when the
// snapshot holds no observations.
func (s HistogramSnapshot) Quantile(q float64) (v int64, ok bool) {
	if s.N == 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(q*float64(s.N) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > s.N {
		rank = s.N
	}
	var cum int64
	for b, c := range s.Counts {
		cum += c
		if cum >= rank {
			return histBucketMid(b), true
		}
	}
	return histBucketMid(len(s.Counts) - 1), true
}

// Mean returns the arithmetic mean of the recorded values (0 when
// empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.N == 0 {
		return 0
	}
	return float64(s.Sum) / float64(s.N)
}

// Quantiler is implemented by counters that can answer distribution
// quantiles exactly (histogram-backed). The /statistics/percentile
// meta counter uses it for direct evaluation instead of aggregating
// periodic samples.
type Quantiler interface {
	// Quantile returns the value at quantile q (0 < q <= 1) of the
	// counter's underlying distribution; ok is false when the
	// distribution is empty.
	Quantile(q float64) (v int64, ok bool)
}

// ---------------------------------------------------------------------------
// HistogramCounter: a Counter over a Histogram.

// HistogramCounter exposes a Histogram through the Counter interface:
// Value reports the mean (sum in Raw, observation count in Scaling and
// Count, like AverageCounter), and Quantile serves the percentile meta
// counters. Producers call Record per event.
type HistogramCounter struct {
	name    Name
	nameStr string
	info    Info
	h       Histogram
}

// NewHistogramCounter creates an empty histogram counter.
func NewHistogramCounter(name Name, info Info) *HistogramCounter {
	return &HistogramCounter{name: name, nameStr: name.String(), info: info}
}

// Record folds one observation into the distribution.
func (c *HistogramCounter) Record(v int64) { c.h.Record(v) }

// Name implements Counter.
func (c *HistogramCounter) Name() Name { return c.name }

// Info implements Counter.
func (c *HistogramCounter) Info() Info { return c.info }

// Value implements Counter: the mean of the recorded values, with the
// observation count in Scaling and Count. Reads totals without copying
// the bucket table, so evaluation is allocation-free.
func (c *HistogramCounter) Value(reset bool) Value {
	n, sum := c.h.Totals()
	if reset {
		c.h.Reset()
	}
	scaling := n
	if scaling == 0 {
		scaling = 1
	}
	return Value{Name: c.nameStr, Raw: sum, Scaling: scaling,
		Count: n, Time: now(), Status: StatusValid}
}

// Reset implements Counter.
func (c *HistogramCounter) Reset() { c.h.Reset() }

// Quantile implements Quantiler.
func (c *HistogramCounter) Quantile(q float64) (int64, bool) {
	return c.h.Snapshot().Quantile(q)
}

// HistogramSnapshot implements DistributionSnapshotter: a mergeable
// copy of the full distribution, used by the aggregation tree to carry
// histograms upward instead of collapsing them to means.
func (c *HistogramCounter) HistogramSnapshot() HistogramSnapshot { return c.h.Snapshot() }

var (
	_ Counter                 = (*HistogramCounter)(nil)
	_ Quantiler               = (*HistogramCounter)(nil)
	_ DistributionSnapshotter = (*HistogramCounter)(nil)
)
