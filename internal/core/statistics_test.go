package core

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

// newStatsFixture registers a raw base counter and returns it with the
// registry.
func newStatsFixture(t *testing.T) (*Registry, *RawCounter) {
	t.Helper()
	r := NewRegistry()
	base := NewRawCounter(mustName(t, "/threads{locality#0/total}/count/cumulative"), Info{Unit: UnitEvents})
	r.MustRegister(base)
	return r, base
}

func getStats(t *testing.T, r *Registry, name string) *StatisticsCounter {
	t.Helper()
	c, err := r.Get(name)
	if err != nil {
		t.Fatalf("Get(%q): %v", name, err)
	}
	sc, ok := c.(*StatisticsCounter)
	if !ok {
		t.Fatalf("got %T", c)
	}
	return sc
}

func TestStatisticsAverage(t *testing.T) {
	r, base := newStatsFixture(t)
	sc := getStats(t, r, "/statistics{/threads{locality#0/total}/count/cumulative}/average@100")
	for _, v := range []int64{10, 20, 60} {
		base.Set(v)
		sc.Sample()
	}
	v := sc.Value(false)
	if got := v.Float64(); got != 30 {
		t.Fatalf("average = %v", got)
	}
	if v.Count != 3 {
		t.Fatalf("count = %d", v.Count)
	}
}

func TestStatisticsRolling(t *testing.T) {
	r, base := newStatsFixture(t)
	sc := getStats(t, r, "/statistics{/threads{locality#0/total}/count/cumulative}/rolling_average@100,3")
	for _, v := range []int64{1000, 10, 20, 60} { // first sample must roll out
		base.Set(v)
		sc.Sample()
	}
	if got := sc.Value(false).Float64(); got != 30 {
		t.Fatalf("rolling average = %v", got)
	}
}

func TestStatisticsMinMaxStddevMedian(t *testing.T) {
	r, base := newStatsFixture(t)
	samples := []int64{5, 1, 9, 3}
	feed := func(name string) *StatisticsCounter {
		sc := getStats(t, r, name)
		for _, v := range samples {
			base.Set(v)
			sc.Sample()
		}
		return sc
	}
	if got := feed("/statistics{/threads{locality#0/total}/count/cumulative}/max@100").Value(false).Float64(); got != 9 {
		t.Errorf("max = %v", got)
	}
	if got := feed("/statistics{/threads{locality#0/total}/count/cumulative}/min@100").Value(false).Float64(); got != 1 {
		t.Errorf("min = %v", got)
	}
	if got := feed("/statistics{/threads{locality#0/total}/count/cumulative}/median@100").Value(false).Float64(); got != 4 {
		t.Errorf("median = %v", got)
	}
	want := math.Sqrt((0.25 + 12.25 + 20.25 + 2.25) / 4.0) // mean 4.5, squared devs / n
	got := feed("/statistics{/threads{locality#0/total}/count/cumulative}/stddev@100").Value(false).Float64()
	if math.Abs(got-want) > 0.01 {
		t.Errorf("stddev = %v want %v", got, want)
	}
}

func TestStatisticsRate(t *testing.T) {
	base0 := time.Date(2026, 7, 5, 12, 0, 0, 0, time.UTC)
	cur := base0
	defer func(f func() time.Time) { now = f }(now)
	now = func() time.Time { return cur }

	r, base := newStatsFixture(t)
	sc := getStats(t, r, "/statistics{/threads{locality#0/total}/count/cumulative}/rate@100")
	base.Set(0)
	sc.Sample()
	cur = base0.Add(time.Second)
	base.Set(500)
	sc.Sample()
	cur = base0.Add(2 * time.Second)
	base.Set(1500)
	sc.Sample()
	// Rates: 500/s then 1000/s; mean 750.
	if got := sc.Value(false).Float64(); got != 750 {
		t.Fatalf("rate = %v", got)
	}
}

func TestStatisticsEmptyInvalid(t *testing.T) {
	r, _ := newStatsFixture(t)
	sc := getStats(t, r, "/statistics{/threads{locality#0/total}/count/cumulative}/average@100")
	if v := sc.Value(false); v.Status != StatusInvalidData {
		t.Fatalf("empty statistics status = %v", v.Status)
	}
}

func TestStatisticsEvaluateAndReset(t *testing.T) {
	r, base := newStatsFixture(t)
	sc := getStats(t, r, "/statistics{/threads{locality#0/total}/count/cumulative}/average@100")
	base.Set(10)
	sc.Sample()
	if v := sc.Value(true); v.Float64() != 10 {
		t.Fatalf("value = %+v", v)
	}
	if v := sc.Value(false); v.Status != StatusInvalidData {
		t.Fatalf("reset did not clear samples: %+v", v)
	}
	base.Set(4)
	sc.Sample()
	sc.Reset()
	if v := sc.Value(false); v.Status != StatusInvalidData {
		t.Fatalf("Reset did not clear samples: %+v", v)
	}
}

func TestStatisticsStartStop(t *testing.T) {
	r, base := newStatsFixture(t)
	base.Set(42)
	sc := getStats(t, r, "/statistics{/threads{locality#0/total}/count/cumulative}/average@1")
	sc.Start()
	sc.Start() // idempotent
	deadline := time.After(2 * time.Second)
	for {
		if v := sc.Value(false); v.Valid() && v.Float64() == 42 {
			break
		}
		select {
		case <-deadline:
			t.Fatal("background sampler produced no samples")
		case <-time.After(5 * time.Millisecond):
		}
	}
	sc.Stop()
	sc.Stop() // idempotent
}

func TestStatisticsErrors(t *testing.T) {
	r, _ := newStatsFixture(t)
	bad := []string{
		"/statistics{locality#0/total}/average",                                          // instance path, not a base counter
		"/statistics{/threads{locality#0/total}/count/cumulative}/average@0",             // zero interval
		"/statistics{/threads{locality#0/total}/count/cumulative}/average@x",             // bad interval
		"/statistics{/threads{locality#0/total}/count/cumulative}/rolling_average@100,0", // bad window
		"/statistics{/nosuch{locality#0/total}/counter}/average@100",                     // unknown base
	}
	for _, s := range bad {
		if _, err := r.Get(s); err == nil {
			t.Errorf("Get(%q) unexpectedly succeeded", s)
		}
	}
}

// TestStatisticsAgainstReference cross-checks the aggregates against a
// brute-force reference on random sample sets (property-based).
func TestStatisticsAgainstReference(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 50,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(40)
			xs := make([]int64, n)
			for i := range xs {
				xs[i] = int64(r.Intn(10000))
			}
			args[0] = reflect.ValueOf(xs)
		},
	}
	prop := func(xs []int64) bool {
		r, base := newStatsFixture(t)
		avg := getStats(t, r, "/statistics{/threads{locality#0/total}/count/cumulative}/average@100")
		mx := getStats(t, r, "/statistics{/threads{locality#0/total}/count/cumulative}/max@100")
		med := getStats(t, r, "/statistics{/threads{locality#0/total}/count/cumulative}/median@100")
		for _, x := range xs {
			base.Set(x)
			avg.Sample()
			mx.Sample()
			med.Sample()
		}
		var sum, max int64
		fs := make([]float64, len(xs))
		for i, x := range xs {
			sum += x
			if x > max {
				max = x
			}
			fs[i] = float64(x)
		}
		sort.Float64s(fs)
		var wantMed float64
		if len(fs)%2 == 1 {
			wantMed = fs[len(fs)/2]
		} else {
			wantMed = (fs[len(fs)/2-1] + fs[len(fs)/2]) / 2
		}
		wantAvg := float64(sum) / float64(len(xs))
		const eps = 0.001 // fixed-point rounding at scale 1000
		return math.Abs(avg.Value(false).Float64()-wantAvg) <= eps &&
			mx.Value(false).Float64() == float64(max) &&
			math.Abs(med.Value(false).Float64()-wantMed) <= eps
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestArithmeticCounters(t *testing.T) {
	r := NewRegistry()
	a := NewRawCounter(mustName(t, "/x{locality#0/total}/a"), Info{})
	b := NewRawCounter(mustName(t, "/x{locality#0/total}/b"), Info{})
	r.MustRegister(a)
	r.MustRegister(b)
	a.Set(30)
	b.Set(6)
	cases := map[string]float64{
		"/arithmetics/add@/x{locality#0/total}/a,/x{locality#0/total}/b":      36,
		"/arithmetics/subtract@/x{locality#0/total}/a,/x{locality#0/total}/b": 24,
		"/arithmetics/multiply@/x{locality#0/total}/a,/x{locality#0/total}/b": 180,
		"/arithmetics/divide@/x{locality#0/total}/a,/x{locality#0/total}/b":   5,
		"/arithmetics/mean@/x{locality#0/total}/a,/x{locality#0/total}/b":     18,
	}
	for name, want := range cases {
		c, err := r.Get(name)
		if err != nil {
			t.Fatalf("Get(%q): %v", name, err)
		}
		if got := c.Value(false).Float64(); got != want {
			t.Errorf("%s = %v want %v", name, got, want)
		}
	}
}

func TestArithmeticDivideByZero(t *testing.T) {
	r := NewRegistry()
	a := NewRawCounter(mustName(t, "/x{locality#0/total}/a"), Info{})
	b := NewRawCounter(mustName(t, "/x{locality#0/total}/b"), Info{})
	r.MustRegister(a)
	r.MustRegister(b)
	a.Set(30)
	c, err := r.Get("/arithmetics/divide@/x{locality#0/total}/a,/x{locality#0/total}/b")
	if err != nil {
		t.Fatal(err)
	}
	if v := c.Value(false); v.Status != StatusInvalidData {
		t.Fatalf("divide by zero status = %v", v.Status)
	}
}

func TestArithmeticReset(t *testing.T) {
	r := NewRegistry()
	a := NewRawCounter(mustName(t, "/x{locality#0/total}/a"), Info{})
	b := NewRawCounter(mustName(t, "/x{locality#0/total}/b"), Info{})
	r.MustRegister(a)
	r.MustRegister(b)
	a.Set(1)
	b.Set(2)
	c, err := r.Get("/arithmetics/add@/x{locality#0/total}/a,/x{locality#0/total}/b")
	if err != nil {
		t.Fatal(err)
	}
	c.Reset()
	if a.Load() != 0 || b.Load() != 0 {
		t.Fatal("Reset did not propagate to operands")
	}
	a.Set(3)
	b.Set(4)
	if got := c.Value(true).Float64(); got != 7 {
		t.Fatalf("value = %v", got)
	}
	if a.Load() != 0 || b.Load() != 0 {
		t.Fatal("evaluate-and-reset did not propagate")
	}
}

func TestArithmeticErrors(t *testing.T) {
	r := NewRegistry()
	a := NewRawCounter(mustName(t, "/x{locality#0/total}/a"), Info{})
	r.MustRegister(a)
	for _, s := range []string{
		"/arithmetics/add@/x{locality#0/total}/a",                             // one operand
		"/arithmetics/add@",                                                   // none
		"/arithmetics/add@/nosuch{locality#0/total}/z,/x{locality#0/total}/a", // unknown operand
	} {
		if _, err := r.Get(s); err == nil {
			t.Errorf("Get(%q) unexpectedly succeeded", s)
		}
	}
}

func TestStatisticsOfArithmetic(t *testing.T) {
	// Meta counters compose: statistics over an arithmetic counter.
	r := NewRegistry()
	a := NewRawCounter(mustName(t, "/x{locality#0/total}/a"), Info{})
	b := NewRawCounter(mustName(t, "/x{locality#0/total}/b"), Info{})
	r.MustRegister(a)
	r.MustRegister(b)
	a.Set(10)
	b.Set(5)
	sc := getStats(t, r, "/statistics{/arithmetics/add@/x{locality#0/total}/a,/x{locality#0/total}/b}/max@50")
	sc.Sample()
	a.Set(100)
	sc.Sample()
	if got := sc.Value(false).Float64(); got != 105 {
		t.Fatalf("max of sum = %v", got)
	}
}
