package core

import (
	"strings"
	"testing"
	"time"
)

// costTestRegistry returns a registry with one registered counter and a
// deterministic clock advancing advance per now() call.
func costTestRegistry(t *testing.T, advance time.Duration) (*Registry, func()) {
	t.Helper()
	base := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	cur := base
	old := now
	now = func() time.Time {
		v := cur
		cur = cur.Add(advance)
		return v
	}
	restore := func() { now = old }
	r := NewRegistry()
	r.MustRegister(NewRawCounter(mustName(t, "/threads{locality#0/total}/count/cumulative"), Info{}))
	return r, restore
}

func TestEvalCostMetersEvaluate(t *testing.T) {
	r, restore := costTestRegistry(t, time.Microsecond)
	defer restore()

	if _, err := r.Evaluate("/threads{locality#0/total}/count/cumulative", false); err != nil {
		t.Fatal(err)
	}
	sweeps, counters, ns := r.SamplingCost()
	if sweeps != 1 || counters != 1 {
		t.Fatalf("sweeps=%d counters=%d, want 1/1", sweeps, counters)
	}
	if ns <= 0 {
		t.Fatalf("metered ns = %d, want > 0", ns)
	}
}

func TestEvalCostMetersActiveSweep(t *testing.T) {
	r, restore := costTestRegistry(t, time.Microsecond)
	defer restore()
	r.MustRegister(NewRawCounter(mustName(t, "/threads{locality#0/total}/idle-rate"), Info{}))
	if _, err := r.AddActive("/threads{locality#0/total}/count/cumulative"); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddActive("/threads{locality#0/total}/idle-rate"); err != nil {
		t.Fatal(err)
	}

	before, _, _ := r.SamplingCost()
	var buf []Value
	for i := 0; i < 5; i++ {
		buf = r.EvaluateActiveInto(buf[:0], false)
	}
	sweeps, counters, ns := r.SamplingCost()
	if got := sweeps - before; got != 5 {
		t.Fatalf("sweeps delta = %d, want 5", got)
	}
	if counters < 10 {
		t.Fatalf("counters = %d, want >= 10 (2 per sweep)", counters)
	}
	if ns <= 0 {
		t.Fatal("no wall cost metered")
	}
	snap := r.EvalCostSnapshot()
	if snap.N < 5 {
		t.Fatalf("histogram count = %d, want >= 5", snap.N)
	}
	if q, ok := snap.Quantile(0.5); !ok || q <= 0 {
		t.Fatalf("p50 = %d ok=%v", q, ok)
	}
}

func TestEvalCostMetersBatch(t *testing.T) {
	r, restore := costTestRegistry(t, time.Microsecond)
	defer restore()
	set, err := r.BindSet([]string{"/threads{locality#0/total}/count/cumulative"})
	if err != nil {
		t.Fatal(err)
	}
	before, _, _ := r.SamplingCost()
	var buf []Value
	for i := 0; i < 3; i++ {
		buf = set.EvaluateBatch(buf, false)
	}
	sweeps, _, _ := r.SamplingCost()
	if got := sweeps - before; got != 3 {
		t.Fatalf("sweeps delta = %d, want 3", got)
	}
}

func TestEvalCostEmptySweepNotBooked(t *testing.T) {
	r := NewRegistry()
	before, _, _ := r.SamplingCost()
	r.EvaluateActiveInto(nil, false) // empty active set
	var empty BindSet
	empty.EvaluateBatch(nil, false)
	sweeps, _, _ := r.SamplingCost()
	if sweeps != before {
		t.Fatalf("empty sweeps booked: %d -> %d", before, sweeps)
	}
}

func TestEvalCostSelfCounters(t *testing.T) {
	r, restore := costTestRegistry(t, time.Microsecond)
	defer restore()
	if _, err := r.Evaluate("/threads{locality#0/total}/count/cumulative", false); err != nil {
		t.Fatal(err)
	}

	v, err := r.Evaluate("/counters{locality#0/total}/cost/eval-ns", false)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Valid() || v.Float64() <= 0 {
		t.Fatalf("eval-ns = %+v", v)
	}
	pc, err := r.Evaluate("/counters{locality#0/total}/cost/per-counter", false)
	if err != nil {
		t.Fatal(err)
	}
	if !pc.Valid() || pc.Float64() <= 0 {
		t.Fatalf("per-counter = %+v", pc)
	}
	// Mean per counter can never exceed mean per sweep.
	if pc.Float64() > v.Float64() {
		t.Fatalf("per-counter %g > per-sweep %g", pc.Float64(), v.Float64())
	}

	// The eval-ns counter answers percentile queries through the
	// statistics plane's Quantiler interface.
	c, err := r.Get("/counters{locality#0/total}/cost/eval-ns")
	if err != nil {
		t.Fatal(err)
	}
	q, ok := c.(Quantiler)
	if !ok {
		t.Fatal("eval-ns counter is not a Quantiler")
	}
	if p, ok := q.Quantile(0.99); !ok || p <= 0 {
		t.Fatalf("p99 = %d ok=%v", p, ok)
	}

	// Evaluate-and-reset clears both counters' shared state.
	if _, err := r.Evaluate("/counters{locality#0/total}/cost/eval-ns", true); err != nil {
		t.Fatal(err)
	}
	sweeps, counters, ns := r.SamplingCost()
	// The reset evaluation itself books new sweeps afterwards, but the
	// pre-reset accumulation (several sweeps) must be gone.
	if sweeps > 2 || counters > 2 || ns < 0 {
		t.Fatalf("after reset: sweeps=%d counters=%d ns=%d", sweeps, counters, ns)
	}
}

func TestEvalCostInTypesAndDiscover(t *testing.T) {
	r := NewRegistry()
	found := 0
	for _, info := range r.Types() {
		if strings.HasPrefix(info.TypeName, "/counters/cost/") {
			found++
		}
	}
	if found != 2 {
		t.Fatalf("cost counter types registered = %d, want 2", found)
	}
	names, err := r.Discover("/counters{locality#0/total}/cost/eval-ns")
	if err != nil || len(names) != 1 {
		t.Fatalf("discover: %v %v", names, err)
	}
}

func TestActiveGenerationBumpsOnChange(t *testing.T) {
	r := NewRegistry()
	r.MustRegister(NewRawCounter(mustName(t, "/threads{locality#0/total}/count/cumulative"), Info{}))
	g0 := r.ActiveGeneration()
	if _, err := r.AddActive("/threads{locality#0/total}/count/cumulative"); err != nil {
		t.Fatal(err)
	}
	g1 := r.ActiveGeneration()
	if g1 <= g0 {
		t.Fatalf("generation did not advance on AddActive: %d -> %d", g0, g1)
	}
	r.RemoveActive("/threads{locality#0/total}/count/cumulative")
	if g2 := r.ActiveGeneration(); g2 <= g1 {
		t.Fatalf("generation did not advance on RemoveActive: %d -> %d", g1, g2)
	}
}
