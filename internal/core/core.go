package core
