package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
)

// registerWorkerType registers a /threads/test counter type whose
// instances are worker-thread#0..n-1 plus total, each backed by a raw
// counter, and returns the created raw counters keyed by full name.
func registerWorkerType(t *testing.T, r *Registry, workers int) map[string]*RawCounter {
	t.Helper()
	made := make(map[string]*RawCounter)
	var mu sync.Mutex
	info := Info{TypeName: "/threads/test/count", HelpText: "test counter", Unit: UnitEvents}
	err := r.RegisterType(info,
		func(n Name, _ *Registry) (Counter, error) {
			c := NewRawCounter(n, info)
			mu.Lock()
			made[n.String()] = c
			mu.Unlock()
			return c, nil
		},
		func(_ *Registry) []Name {
			var names []Name
			base := Name{Object: "threads", Counter: "test/count"}
			names = append(names, base.WithInstances(LocalityInstance(0, "total", -1)...))
			for i := 0; i < workers; i++ {
				names = append(names, base.WithInstances(LocalityInstance(0, "worker-thread", int64(i))...))
			}
			return names
		})
	if err != nil {
		t.Fatalf("RegisterType: %v", err)
	}
	return made
}

func TestRegistryGetCreatesInstance(t *testing.T) {
	r := NewRegistry()
	made := registerWorkerType(t, r, 2)
	c, err := r.Get("/threads{locality#0/worker-thread#1}/test/count")
	if err != nil {
		t.Fatalf("Get: %v", err)
	}
	if len(made) != 1 {
		t.Fatalf("factory invocations = %d", len(made))
	}
	c2, err := r.Get("/threads{locality#0/worker-thread#1}/test/count")
	if err != nil || c2 != c {
		t.Fatalf("second Get returned a different instance (err=%v)", err)
	}
}

func TestRegistryGetErrors(t *testing.T) {
	r := NewRegistry()
	if _, err := r.Get("/nosuch{locality#0/total}/counter"); err == nil {
		t.Error("unknown type did not error")
	}
	if _, err := r.Get("/threads/test/count"); err == nil {
		t.Error("type-only name did not error")
	}
	if _, err := r.Get("not-a-name"); err == nil {
		t.Error("invalid name did not error")
	}
}

func TestRegistryRegisterInstance(t *testing.T) {
	r := NewRegistry()
	c := NewRawCounter(mustName(t, "/custom{locality#0/total}/thing"), Info{HelpText: "h"})
	if err := r.Register(c); err != nil {
		t.Fatalf("Register: %v", err)
	}
	if err := r.Register(c); err == nil {
		t.Fatal("duplicate Register did not error")
	}
	got, err := r.Get("/custom{locality#0/total}/thing")
	if err != nil || got != c {
		t.Fatalf("Get after Register: %v", err)
	}
	// Type was implicitly registered and shows in Types().
	found := false
	for _, info := range r.Types() {
		if info.TypeName == "/custom/thing" {
			found = true
		}
	}
	if !found {
		t.Fatal("implicit type not listed")
	}
	// Type-only instance names are rejected.
	bad := NewRawCounter(Name{Object: "x", Counter: "y"}, Info{})
	if err := r.Register(bad); err == nil {
		t.Fatal("type-only instance registration did not error")
	}
}

func TestRegistryDiscover(t *testing.T) {
	r := NewRegistry()
	registerWorkerType(t, r, 3)
	names, err := r.Discover("/threads{locality#0/worker-thread#*}/test/count")
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(names) != 3 {
		t.Fatalf("got %d names: %v", len(names), names)
	}
	names, err = r.Discover("/threads/test/count")
	if err != nil {
		t.Fatalf("Discover: %v", err)
	}
	if len(names) != 4 { // total + 3 workers
		t.Fatalf("type discovery got %d names: %v", len(names), names)
	}
	// Sorted output.
	for i := 1; i < len(names); i++ {
		if names[i-1].String() >= names[i].String() {
			t.Fatalf("not sorted: %v", names)
		}
	}
	names, err = r.Discover("/threads{locality#1/total}/test/count")
	if err != nil || len(names) != 0 {
		t.Fatalf("foreign locality matched: %v (%v)", names, err)
	}
}

func TestRegistryActiveSet(t *testing.T) {
	r := NewRegistry()
	made := registerWorkerType(t, r, 2)
	added, err := r.AddActive("/threads{locality#0/worker-thread#*}/test/count")
	if err != nil {
		t.Fatalf("AddActive: %v", err)
	}
	if len(added) != 2 {
		t.Fatalf("added = %v", added)
	}
	// Adding again is a no-op.
	added, err = r.AddActive("/threads{locality#0/worker-thread#*}/test/count")
	if err != nil || len(added) != 0 {
		t.Fatalf("re-AddActive added %v (%v)", added, err)
	}
	for _, c := range made {
		c.Add(5)
	}
	vals := r.EvaluateActive(true)
	if len(vals) != 2 {
		t.Fatalf("EvaluateActive returned %d values", len(vals))
	}
	for _, v := range vals {
		if v.Raw != 5 {
			t.Fatalf("value = %+v", v)
		}
	}
	// Ordered by name.
	if !(vals[0].Name < vals[1].Name) {
		t.Fatalf("values unordered: %v then %v", vals[0].Name, vals[1].Name)
	}
	// The evaluate-and-reset cleared them.
	for _, v := range r.EvaluateActive(false) {
		if v.Raw != 0 {
			t.Fatalf("after reset: %+v", v)
		}
	}
	for _, c := range made {
		c.Add(9)
	}
	r.ResetActive()
	for _, v := range r.EvaluateActive(false) {
		if v.Raw != 0 {
			t.Fatalf("after ResetActive: %+v", v)
		}
	}
	names := r.Active()
	if len(names) != 2 || !strings.Contains(names[0], "worker-thread#0") {
		t.Fatalf("Active() = %v", names)
	}
	r.RemoveActive(names[0])
	if len(r.Active()) != 1 {
		t.Fatal("RemoveActive did not remove")
	}
	r.StopActive()
	if len(r.Active()) != 0 {
		t.Fatal("StopActive did not clear")
	}
}

func TestRegistryAddActiveExactUndiscoverable(t *testing.T) {
	r := NewRegistry()
	// A type with a factory but no discoverer: AddActive with an exact
	// name must instantiate it directly.
	info := Info{TypeName: "/lazy/value"}
	r.MustRegisterType(info, func(n Name, _ *Registry) (Counter, error) {
		return NewRawCounter(n, info), nil
	}, nil)
	added, err := r.AddActive("/lazy{locality#0/total}/value")
	if err != nil || len(added) != 1 {
		t.Fatalf("AddActive exact: %v %v", added, err)
	}
	if _, err := r.AddActive("/lazy{locality#0/nope#*}/value"); err == nil {
		t.Fatal("wildcard with no matches did not error")
	}
}

func TestRegistryEvaluate(t *testing.T) {
	r := NewRegistry()
	c := NewRawCounter(mustName(t, "/custom{locality#0/total}/thing"), Info{})
	r.MustRegister(c)
	c.Add(3)
	v, err := r.Evaluate("/custom{locality#0/total}/thing", false)
	if err != nil || v.Raw != 3 {
		t.Fatalf("Evaluate: %+v %v", v, err)
	}
	v, err = r.Evaluate("/custom{locality#0/missing}/thing", false)
	if err == nil || v.Status != StatusCounterUnknown {
		t.Fatalf("missing counter: %+v %v", v, err)
	}
}

func TestRegistryRemove(t *testing.T) {
	r := NewRegistry()
	c := NewRawCounter(mustName(t, "/custom{locality#0/total}/thing"), Info{})
	r.MustRegister(c)
	if _, err := r.AddActive("/custom{locality#0/total}/thing"); err != nil {
		t.Fatal(err)
	}
	r.Remove("/custom{locality#0/total}/thing")
	if len(r.Active()) != 0 {
		t.Fatal("Remove left counter active")
	}
	if _, err := r.Get("/custom{locality#0/total}/thing"); err == nil {
		t.Fatal("Remove left instance gettable")
	}
}

func TestRegistryDuplicateType(t *testing.T) {
	r := NewRegistry()
	info := Info{TypeName: "/dup/type"}
	f := func(n Name, _ *Registry) (Counter, error) { return NewRawCounter(n, info), nil }
	if err := r.RegisterType(info, f, nil); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterType(info, f, nil); err == nil {
		t.Fatal("duplicate type registration did not error")
	}
	if err := r.RegisterType(Info{TypeName: "/bad{locality#0}/x"}, f, nil); err == nil {
		t.Fatal("instance-carrying type name did not error")
	}
}

func TestRegistryConcurrentGet(t *testing.T) {
	r := NewRegistry()
	info := Info{TypeName: "/conc/value"}
	r.MustRegisterType(info, func(n Name, _ *Registry) (Counter, error) {
		return NewRawCounter(n, info), nil
	}, nil)
	var wg sync.WaitGroup
	counters := make([]Counter, 16)
	for i := range counters {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := r.Get("/conc{locality#0/total}/value")
			if err != nil {
				t.Errorf("Get: %v", err)
				return
			}
			counters[i] = c
		}(i)
	}
	wg.Wait()
	for i := 1; i < len(counters); i++ {
		if counters[i] != counters[0] {
			t.Fatal("concurrent Get returned distinct instances")
		}
	}
}

func TestHasWildcard(t *testing.T) {
	cases := map[string]bool{
		"/threads{locality#0/total}/time/average":    false,
		"/threads{locality#*/total}/time/average":    true,
		"/threads{locality#0/total}/count/*":         true,
		"/*{locality#0/total}/time/average":          true,
		"/threads{locality#0/total}/count/*/deep":    true,
		"/threads{*/total}/time/average":             true,
		"/threads{locality#0/worker-thread#3}/x/y/z": false,
	}
	for s, want := range cases {
		n := mustName(t, s)
		if got := hasWildcard(n); got != want {
			t.Errorf("hasWildcard(%q) = %v want %v", s, got, want)
		}
	}
}

func TestRegistryTypesSorted(t *testing.T) {
	r := NewRegistry()
	for _, tn := range []string{"/z/last", "/a/first", "/m/middle"} {
		info := Info{TypeName: tn}
		r.MustRegisterType(info, func(n Name, _ *Registry) (Counter, error) {
			return NewRawCounter(n, info), nil
		}, nil)
	}
	types := r.Types()
	for i := 1; i < len(types); i++ {
		if types[i-1].TypeName >= types[i].TypeName {
			t.Fatalf("Types() unsorted: %v", types)
		}
	}
}

func ExampleRegistry() {
	r := NewRegistry()
	tasks := NewRawCounter(
		Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(LocalityInstance(0, "total", -1)...),
		Info{TypeName: "/threads/count/cumulative", HelpText: "executed tasks", Unit: UnitEvents})
	r.MustRegister(tasks)
	tasks.Add(1234)
	v, _ := r.Evaluate("/threads{locality#0/total}/count/cumulative", false)
	fmt.Printf("%s = %d\n", v.Name, v.Raw)
	// Output: /threads{locality#0/total}/count/cumulative = 1234
}
