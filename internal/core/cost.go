package core

import "sync/atomic"

// Sampling-cost self-observation: the registry meters the wall cost of
// its own evaluation sweeps, so the monitoring plane can observe — and
// budget — what observation itself costs. This is the measurement the
// overhead-budgeted sampler (package telemetry) closes its control loop
// on, applying the paper's thesis to the counter plane itself.
//
// Two self-counters are registered by NewRegistry:
//
//	/counters{locality#0/total}/cost/eval-ns      mean wall cost of one
//	                                              evaluation sweep (ns);
//	                                              histogram-backed, so
//	                                              /statistics{...}/percentile@Q
//	                                              answers tail costs exactly
//	/counters{locality#0/total}/cost/per-counter  mean wall cost per counter
//	                                              evaluated (ns)
//
// Metered paths: Registry.Evaluate, EvaluateActive, EvaluateActiveInto
// and BindSet.EvaluateBatch — every sweep pays exactly one clock pair,
// amortised over its counters, and records into one of costShards
// histograms (two uncontended atomic adds), so metering itself stays
// allocation-free and far below the cost it measures. Single
// Handle.Evaluate calls are deliberately not metered: a lone ~85 ns
// interface call would be dominated by the clock reads around it.

// noteEvalCost books one metered evaluation sweep: its wall cost in
// nanoseconds and the number of counters it evaluated. Empty sweeps are
// not booked.
func (r *Registry) noteEvalCost(ns int64, counters int) {
	if counters <= 0 {
		return
	}
	r.costSweeps.Add(1)
	r.costCounters.Add(int64(counters))
	r.costNs.Add(ns)
	r.costHists[r.costSeq.Add(1)&(costShards-1)].Record(ns)
}

// SamplingCost returns the cumulative metered evaluation cost since
// creation or the last cost reset: the number of evaluation sweeps, the
// number of counter evaluations they covered, and their total wall time
// in nanoseconds.
func (r *Registry) SamplingCost() (sweeps, counters, ns int64) {
	return r.costSweeps.Load(), r.costCounters.Load(), r.costNs.Load()
}

// EvalCostSnapshot returns the distribution of per-sweep evaluation
// costs (nanoseconds), merged across the metering shards.
func (r *Registry) EvalCostSnapshot() HistogramSnapshot {
	var s HistogramSnapshot
	for i := range r.costHists {
		s.Merge(r.costHists[i].Snapshot())
	}
	return s
}

// resetEvalCost clears the cumulative cost meters and the sweep-cost
// distribution. Both cost counters share this state, so resetting one
// resets the other — the same sharing the runtime's ratio counters have.
func (r *Registry) resetEvalCost() {
	r.costSweeps.Store(0)
	r.costCounters.Store(0)
	r.costNs.Store(0)
	for i := range r.costHists {
		r.costHists[i].Reset()
	}
}

// evalCostCounter is /counters/cost/eval-ns: the mean wall cost of one
// evaluation sweep, histogram-backed for exact percentiles.
type evalCostCounter struct {
	name    Name
	nameStr string
	info    Info
	r       *Registry
}

func (c *evalCostCounter) Name() Name { return c.name }
func (c *evalCostCounter) Info() Info { return c.info }

func (c *evalCostCounter) Value(reset bool) Value {
	sweeps := c.r.costSweeps.Load()
	ns := c.r.costNs.Load()
	if reset {
		c.r.resetEvalCost()
	}
	scaling := sweeps
	if scaling == 0 {
		scaling = 1
	}
	return Value{Name: c.nameStr, Raw: ns, Scaling: scaling, Count: sweeps,
		Time: now(), Status: StatusValid}
}

func (c *evalCostCounter) Reset() { c.r.resetEvalCost() }

// Quantile implements Quantiler over the per-sweep cost distribution.
func (c *evalCostCounter) Quantile(q float64) (int64, bool) {
	return c.r.EvalCostSnapshot().Quantile(q)
}

// perCounterCostCounter is /counters/cost/per-counter: cumulative
// metered nanoseconds over cumulative counter evaluations.
type perCounterCostCounter struct {
	name    Name
	nameStr string
	info    Info
	r       *Registry
}

func (c *perCounterCostCounter) Name() Name { return c.name }
func (c *perCounterCostCounter) Info() Info { return c.info }

func (c *perCounterCostCounter) Value(reset bool) Value {
	counters := c.r.costCounters.Load()
	ns := c.r.costNs.Load()
	if reset {
		c.r.resetEvalCost()
	}
	scaling := counters
	if scaling == 0 {
		scaling = 1
	}
	return Value{Name: c.nameStr, Raw: ns, Scaling: scaling, Count: counters,
		Time: now(), Status: StatusValid}
}

func (c *perCounterCostCounter) Reset() { c.r.resetEvalCost() }

var (
	_ Counter   = (*evalCostCounter)(nil)
	_ Quantiler = (*evalCostCounter)(nil)
	_ Counter   = (*perCounterCostCounter)(nil)
)

// ---------------------------------------------------------------------------
// Per-handle cost attribution (optional).
//
// The sweep meters above answer "what does sampling cost"; they cannot
// answer "which counter costs it". EnableCostMetering arms a BindSet
// with a per-handle EWMA of evaluation cost, paid for with one extra
// clock read per counter per sweep (the clock reads are chained), so the
// budget controller can demote the single expensive counter instead of a
// whole tier (telemetry.BudgetController.ShedCounter).

// costEWMAShift sets the EWMA smoothing: each sample moves the estimate
// by 1/2^costEWMAShift of the error, so one slow outlier cannot demote a
// normally-cheap counter.
const costEWMAShift = 3

// EWMAUpdate folds one cost sample into an atomic EWMA cell. The first
// sample seeds the estimate directly. Lost updates under a concurrent
// write are acceptable: the estimate re-converges on the next sweep.
// Exported for other self-metering consumers (the task runtime's
// adaptive-inline policy meters its spawn cost into the same cell).
func EWMAUpdate(a *atomic.Int64, sample int64) {
	if sample < 0 {
		sample = 0
	}
	old := a.Load()
	if old == 0 {
		a.Store(sample | 1) // |1 so a zero-cost first sample still marks "seeded"
		return
	}
	a.Store(old + (sample-old)>>costEWMAShift)
}

// EnableCostMetering arms per-handle cost attribution on the set: every
// subsequent EvaluateBatch updates an EWMA of each handle's evaluation
// cost, readable via CostNs. Idempotent.
func (s *BindSet) EnableCostMetering() {
	if s.costNs == nil && len(s.handles) > 0 {
		s.costNs = make([]atomic.Int64, len(s.handles))
	}
}

// CostNs returns the EWMA evaluation cost of the i-th handle in
// nanoseconds, or 0 when attribution is off or no sweep has run yet.
func (s *BindSet) CostNs(i int) int64 {
	if s.costNs == nil || i < 0 || i >= len(s.costNs) {
		return 0
	}
	return s.costNs[i].Load()
}

// MostExpensive returns the index and EWMA cost of the costliest handle
// with attribution data, skipping indices for which skip returns true
// (nil = skip none). Returns index -1 when no handle qualifies — before
// the first metered sweep, or with attribution off.
func (s *BindSet) MostExpensive(skip func(i int) bool) (int, int64) {
	best, bestNs := -1, int64(0)
	if s.costNs == nil {
		return best, bestNs
	}
	for i := range s.costNs {
		if skip != nil && skip(i) {
			continue
		}
		if ns := s.costNs[i].Load(); ns > bestNs {
			best, bestNs = i, ns
		}
	}
	return best, bestNs
}

// registerEvalCost registers the two sampling-cost self-counters; called
// from NewRegistry.
func registerEvalCost(r *Registry) {
	evalName := Name{Object: "counters", Counter: "cost/eval-ns"}.
		WithInstances(LocalityInstance(0, "total", -1)...)
	r.MustRegister(&evalCostCounter{
		name: evalName, nameStr: evalName.String(), r: r,
		info: Info{TypeName: "/counters/cost/eval-ns",
			HelpText: "mean wall cost of one counter evaluation sweep (histogram-backed)",
			Unit:     UnitNanoseconds, Version: "1.0"},
	})
	perName := Name{Object: "counters", Counter: "cost/per-counter"}.
		WithInstances(LocalityInstance(0, "total", -1)...)
	r.MustRegister(&perCounterCostCounter{
		name: perName, nameStr: perName.String(), r: r,
		info: Info{TypeName: "/counters/cost/per-counter",
			HelpText: "mean wall cost of evaluating one counter",
			Unit:     UnitNanoseconds, Version: "1.0"},
	})
}
