package core

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

func TestHistBucketMonotonic(t *testing.T) {
	prev := -1
	for _, v := range []int64{0, 1, 2, 15, 16, 17, 31, 32, 100, 1000, 1 << 20, 1 << 40, math.MaxInt64} {
		b := histBucket(v)
		if b < prev {
			t.Fatalf("bucket(%d) = %d < previous %d", v, b, prev)
		}
		if b < 0 || b >= HistogramBuckets {
			t.Fatalf("bucket(%d) = %d out of range", v, b)
		}
		prev = b
	}
	if histBucket(-5) != histBucket(0) {
		t.Fatal("negative values must clamp to bucket 0")
	}
}

func TestHistBucketMidInBucket(t *testing.T) {
	for b := 0; b < HistogramBuckets-histMinorCount; b++ {
		mid := histBucketMid(b)
		if mid < 0 {
			// Top octave midpoints overflow int64; skip (unreachable
			// for durations).
			continue
		}
		if got := histBucket(mid); got != b {
			t.Fatalf("bucket(mid(%d)) = %d", b, got)
		}
	}
	// Small values are exact.
	for v := int64(0); v < 16; v++ {
		if histBucketMid(histBucket(v)) != v {
			t.Fatalf("value %d not exact", v)
		}
	}
}

func TestHistogramQuantileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(42))
	values := make([]int64, 10000)
	for i := range values {
		// Log-uniform over ~1µs..100ms in ns, like task durations.
		values[i] = int64(1000 * math.Pow(10, 5*rng.Float64()))
		h.Record(values[i])
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	s := h.Snapshot()
	if s.N != int64(len(values)) {
		t.Fatalf("N = %d", s.N)
	}
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		got, ok := s.Quantile(q)
		if !ok {
			t.Fatalf("q%v not ok", q)
		}
		exact := values[int(q*float64(len(values)))-1]
		if rel := math.Abs(float64(got)-float64(exact)) / float64(exact); rel > 0.07 {
			t.Fatalf("q%v = %d, exact %d, rel err %.3f > 7%%", q, got, exact, rel)
		}
	}
}

func TestHistogramEmptyAndReset(t *testing.T) {
	var h Histogram
	if _, ok := h.Snapshot().Quantile(0.5); ok {
		t.Fatal("empty histogram answered a quantile")
	}
	h.Record(100)
	h.Reset()
	s := h.Snapshot()
	if s.N != 0 || s.Sum != 0 {
		t.Fatalf("after reset: %+v", s)
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := int64(0); i < 100; i++ {
		a.Record(10)
		b.Record(1000)
	}
	var m HistogramSnapshot
	m.Merge(a.Snapshot())
	m.Merge(b.Snapshot())
	if m.N != 200 || m.Sum != 100*10+100*1000 {
		t.Fatalf("merged: N=%d Sum=%d", m.N, m.Sum)
	}
	lo, _ := m.Quantile(0.25)
	hi, _ := m.Quantile(0.75)
	if lo != 10 || hi <= 900 {
		t.Fatalf("q25 = %d q75 = %d", lo, hi)
	}
}

func TestHistogramConcurrentRecord(t *testing.T) {
	var h Histogram
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := int64(0); i < 1000; i++ {
				h.Record(i)
			}
		}()
	}
	wg.Wait()
	if s := h.Snapshot(); s.N != 8000 {
		t.Fatalf("N = %d", s.N)
	}
}

func TestHistogramCounterValue(t *testing.T) {
	c := NewHistogramCounter(mustName(t, "/threads{locality#0/total}/time/average"), Info{Unit: UnitNanoseconds})
	for i := 0; i < 10; i++ {
		c.Record(100)
	}
	v := c.Value(false)
	if v.Float64() != 100 || v.Count != 10 {
		t.Fatalf("value = %v count = %d", v.Float64(), v.Count)
	}
	// Quantiles come back as bucket midpoints (~6% resolution).
	if q, ok := c.Quantile(0.5); !ok || q < 94 || q > 107 {
		t.Fatalf("quantile = %d ok=%v, want ~100", q, ok)
	}
	if v := c.Value(true); v.Count != 10 {
		t.Fatal("evaluate-and-reset must report pre-reset count")
	}
	if v := c.Value(false); v.Count != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestPercentileDirect(t *testing.T) {
	r := NewRegistry()
	base := NewHistogramCounter(mustName(t, "/threads{locality#0/total}/time/average"), Info{Unit: UnitNanoseconds})
	r.MustRegister(base)
	sc := getStats(t, r, "/statistics{/threads{locality#0/total}/time/average}/percentile@95")
	// Empty distribution: invalid.
	if v := sc.Value(false); v.Status != StatusInvalidData {
		t.Fatalf("empty percentile status = %v", v.Status)
	}
	for i := int64(1); i <= 100; i++ {
		base.Record(i * 1000)
	}
	got := sc.Value(false)
	if got.Status != StatusValid {
		t.Fatalf("status = %v", got.Status)
	}
	// Nearest-rank p95 of 1k..100k is 95000; histogram resolution is
	// ~6%, so accept the bucket midpoint near it.
	if f := got.Float64(); f < 88000 || f > 102000 {
		t.Fatalf("p95 = %v, want ~95000", f)
	}
	// Sample and Start are no-ops in direct mode.
	sc.Sample()
	sc.Start()
	defer sc.Stop()
	p50 := getStats(t, r, "/statistics{/threads{locality#0/total}/time/average}/percentile@50")
	if f := p50.Value(false).Float64(); f < 47000 || f > 54000 {
		t.Fatalf("p50 = %v, want ~50500", f)
	}
}

func TestPercentileSampled(t *testing.T) {
	r, base := newStatsFixture(t)
	sc := getStats(t, r, "/statistics{/threads{locality#0/total}/count/cumulative}/percentile@90,100")
	for i := int64(1); i <= 10; i++ {
		base.Set(i)
		sc.Sample()
	}
	// Nearest-rank p90 of 1..10 is 9.
	if got := sc.Value(false).Float64(); got != 9 {
		t.Fatalf("sampled p90 = %v, want 9", got)
	}
}

func TestPercentileBadParams(t *testing.T) {
	r, _ := newStatsFixture(t)
	for _, name := range []string{
		"/statistics{/threads{locality#0/total}/count/cumulative}/percentile",
		"/statistics{/threads{locality#0/total}/count/cumulative}/percentile@0",
		"/statistics{/threads{locality#0/total}/count/cumulative}/percentile@101",
		"/statistics{/threads{locality#0/total}/count/cumulative}/percentile@abc",
	} {
		if _, err := r.Get(name); err == nil {
			t.Fatalf("Get(%q) succeeded, want error", name)
		}
	}
}
