package core

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// statisticsKinds lists the aggregation operations supported by the
// /statistics counter family.
var statisticsKinds = []string{
	"average", "rolling_average", "max", "rolling_max", "min", "rolling_min",
	"stddev", "rolling_stddev", "median", "rate",
}

// statScale is the fixed-point scaling used for fractional statistics.
const statScale = 1000

func registerStatistics(r *Registry) {
	for _, kind := range statisticsKinds {
		kind := kind
		info := Info{
			TypeName: "/statistics/" + kind,
			HelpText: "returns the " + strings.ReplaceAll(kind, "_", " ") +
				" of the values of its base counter, sampled at the given interval " +
				"(/statistics{<base-counter>}/" + kind + "@interval-ms[,window])",
			Unit:    UnitNone,
			Version: "1.0",
		}
		r.MustRegisterType(info, func(n Name, reg *Registry) (Counter, error) {
			return newStatisticsCounter(n, kind, reg)
		}, nil)
	}
	// Percentile: exact when the base counter is histogram-backed
	// (implements Quantiler), otherwise the percentile of periodic
	// samples like the other statistics kinds.
	r.MustRegisterType(Info{
		TypeName: "/statistics/percentile",
		HelpText: "returns the given percentile of its base counter's distribution " +
			"(/statistics{<base-counter>}/percentile@Q[,interval-ms[,window]]); " +
			"exact for histogram-backed bases, sampled otherwise",
		Unit:    UnitNone,
		Version: "1.0",
	}, func(n Name, reg *Registry) (Counter, error) {
		return newStatisticsCounter(n, "percentile", reg)
	}, nil)
}

// StatisticsCounter aggregates periodic samples of a base counter. It
// implements Startable: while active, a background goroutine samples the
// base counter at the configured interval. Sample may also be called
// directly, which the tests and the simulator (virtual time) use.
type StatisticsCounter struct {
	name     Name
	nameStr  string
	info     Info
	kind     string
	base     Counter
	interval time.Duration
	window   int // rolling window size; 0 = unbounded

	mu      sync.Mutex
	samples []float64
	last    float64 // previous sample, for "rate"
	lastT   time.Time
	haveOne bool
	stop    chan struct{}

	// quantile is the requested percentile (0..100) for the
	// "percentile" kind; direct marks a histogram-backed base that
	// answers quantiles exactly, making periodic sampling unnecessary.
	quantile float64
	direct   Quantiler
}

func newStatisticsCounter(n Name, kind string, r *Registry) (*StatisticsCounter, error) {
	if n.BaseCounter == "" {
		return nil, fmt.Errorf("core: statistics counter %q needs a base counter in braces", n)
	}
	base, err := r.Get(n.BaseCounter)
	if err != nil {
		return nil, fmt.Errorf("core: statistics counter %q: base: %w", n, err)
	}
	interval := time.Second
	window := 10
	quantile := 0.0
	params := []string(nil)
	if n.Parameters != "" {
		params = strings.Split(n.Parameters, ",")
	}
	if kind == "percentile" {
		// First parameter is the percentile (50, 95, 99, 99.9, ...);
		// interval and window follow for sampled (non-histogram) bases.
		if len(params) == 0 {
			return nil, fmt.Errorf("core: statistics counter %q needs a percentile parameter", n)
		}
		q, err := strconv.ParseFloat(strings.TrimSpace(params[0]), 64)
		if err != nil || q <= 0 || q > 100 {
			return nil, fmt.Errorf("core: statistics counter %q: bad percentile %q", n, params[0])
		}
		quantile = q
		params = params[1:]
	}
	if len(params) > 0 {
		ms, err := strconv.Atoi(strings.TrimSpace(params[0]))
		if err != nil || ms <= 0 {
			return nil, fmt.Errorf("core: statistics counter %q: bad interval %q", n, params[0])
		}
		interval = time.Duration(ms) * time.Millisecond
		if len(params) > 1 {
			w, err := strconv.Atoi(strings.TrimSpace(params[1]))
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("core: statistics counter %q: bad window %q", n, params[1])
			}
			window = w
		}
	}
	if !strings.HasPrefix(kind, "rolling_") {
		window = 0
	}
	c := &StatisticsCounter{
		name:     n,
		nameStr:  n.String(),
		info:     Info{TypeName: n.TypeName(), HelpText: "statistics/" + kind + " of " + n.BaseCounter, Unit: base.Info().Unit},
		kind:     kind,
		base:     base,
		interval: interval,
		window:   window,
		quantile: quantile,
	}
	if kind == "percentile" {
		if qb, ok := base.(Quantiler); ok {
			c.direct = qb
		}
	}
	return c, nil
}

// Name implements Counter.
func (c *StatisticsCounter) Name() Name { return c.name }

// Info implements Counter.
func (c *StatisticsCounter) Info() Info { return c.info }

// Sample reads the base counter once and folds the observation into the
// aggregation state. A no-op for histogram-backed percentile counters,
// which answer from the base's own distribution.
func (c *StatisticsCounter) Sample() {
	if c.direct != nil {
		return
	}
	v := c.base.Value(false)
	if !v.Valid() {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	f := v.Float64()
	if c.kind == "rate" {
		if c.haveOne {
			dt := v.Time.Sub(c.lastT).Seconds()
			if dt > 0 {
				c.samples = append(c.samples, (f-c.last)/dt)
			}
		}
		c.last, c.lastT, c.haveOne = f, v.Time, true
	} else {
		c.samples = append(c.samples, f)
	}
	if c.window > 0 && len(c.samples) > c.window {
		c.samples = c.samples[len(c.samples)-c.window:]
	}
}

// Start implements Startable: begins periodic sampling. Histogram-
// backed percentile counters need no sampler and start nothing.
func (c *StatisticsCounter) Start() {
	if c.direct != nil {
		return
	}
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	c.stop = stop
	c.mu.Unlock()
	go func() {
		t := time.NewTicker(c.interval)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-t.C:
				c.Sample()
			}
		}
	}()
}

// Stop implements Startable: ends periodic sampling.
func (c *StatisticsCounter) Stop() {
	c.mu.Lock()
	if c.stop != nil {
		close(c.stop)
		c.stop = nil
	}
	c.mu.Unlock()
}

// Value implements Counter. Raw carries the statistic in fixed-point
// (scaling statScale); Count carries the number of samples aggregated.
func (c *StatisticsCounter) Value(reset bool) Value {
	if c.direct != nil {
		// Exact quantile straight from the base histogram; reset is
		// deliberately not forwarded (the base distribution is shared
		// with the base counter and any sibling percentiles).
		v, ok := c.direct.Quantile(c.quantile / 100)
		status := StatusValid
		if !ok {
			status = StatusInvalidData
		}
		return Value{Name: c.nameStr, Raw: v, Time: now(), Status: status}
	}
	c.mu.Lock()
	samples := append([]float64(nil), c.samples...)
	if reset {
		c.samples = c.samples[:0]
	}
	c.mu.Unlock()

	status := StatusValid
	var stat float64
	if len(samples) == 0 {
		status = StatusInvalidData
	} else {
		switch c.kind {
		case "average", "rolling_average", "rate":
			stat = mean(samples)
		case "max", "rolling_max":
			stat = samples[0]
			for _, s := range samples[1:] {
				stat = math.Max(stat, s)
			}
		case "min", "rolling_min":
			stat = samples[0]
			for _, s := range samples[1:] {
				stat = math.Min(stat, s)
			}
		case "stddev", "rolling_stddev":
			stat = stddev(samples)
		case "median":
			stat = median(samples)
		case "percentile":
			stat = percentileOf(samples, c.quantile)
		}
	}
	return Value{
		Name:    c.nameStr,
		Raw:     int64(math.Round(stat * statScale)),
		Scaling: statScale,
		Count:   int64(len(samples)),
		Time:    now(),
		Status:  status,
	}
}

// Reset implements Counter.
func (c *StatisticsCounter) Reset() {
	c.mu.Lock()
	c.samples = c.samples[:0]
	c.haveOne = false
	c.mu.Unlock()
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func stddev(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs)))
}

func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	n := len(s)
	if n%2 == 1 {
		return s[n/2]
	}
	return (s[n/2-1] + s[n/2]) / 2
}

// percentileOf is the nearest-rank percentile (q in 0..100) of xs.
func percentileOf(xs []float64, q float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	rank := int(q/100*float64(len(s)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(s) {
		rank = len(s)
	}
	return s[rank-1]
}
