package core

import "testing"

// Seed corpus: the counter-name shapes documented in docs/COUNTERS.md —
// plain types, full instance names, wildcards, statistics meta counters
// embedding a base name, and arithmetics parameter lists.
var nameSeeds = []string{
	"/threads/count/cumulative",
	"/threads{locality#0/total}/count/cumulative",
	"/threads{locality#0/worker-thread#3}/time/average",
	"/threads{locality#*/worker-thread#*}/idle-rate",
	"/threadqueue{locality#0/worker-thread#0}/length",
	"/runtime{locality#0/total}/uptime",
	"/runtime{locality#0/total}/count/cancelled",
	"/runtime{locality#0/total}/health/stalled-tasks",
	"/runtime{locality#0/worker-thread#1}/health/starved-workers",
	"/counters{locality#0/total}/count/errors",
	"/scheduler{locality#0/total}/utilization/instantaneous",
	"/parcels{locality#0/total}/count/errors",
	"/agas{locality#0/total}/count/resolve",
	"/papi{locality#0/total}/PAPI_TOT_CYC",
	"/statistics{/threads{locality#0/total}/count/cumulative}/average@100",
	"/statistics{/threads{locality#0/total}/idle-rate}/rolling_average@50,10",
	"/arithmetics/add@/threads{locality#0/total}/count/cumulative,/threads{locality#1/total}/count/cumulative",
	"/threads{locality#0/total}/count/instantaneous/pending",
	"/objectname{parentinstancename#2/instancename#3}/counter/path",
	"/threads",
	"/",
	"",
	"threads/count",
	"/threads{}/count",
	"/threads{locality#0/total/count",
	"/threads{locality#-1/total}/count",
	"/threads{locality#999999999999999999999/total}/count",
	"/a{b#0}/c@",
	"/a{{}}/b",
	"/a{b#*}/c@x,y,z",
}

// FuzzParseName checks that ParseName never panics and that accepted
// names survive a format/reparse round trip unchanged.
func FuzzParseName(f *testing.F) {
	for _, s := range nameSeeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, s string) {
		n, err := ParseName(s)
		if err != nil {
			return // rejected input: only panics are failures
		}
		out := n.String()
		n2, err := ParseName(out)
		if err != nil {
			t.Fatalf("ParseName(%q) ok, but reparse of String() %q failed: %v", s, out, err)
		}
		if again := n2.String(); again != out {
			t.Fatalf("String not a fixpoint: %q -> %q -> %q", s, out, again)
		}
	})
}

// FuzzMatchPattern checks that MatchPattern never panics on any pair of
// parseable names and that a wildcard-free name always matches itself.
func FuzzMatchPattern(f *testing.F) {
	for i, p := range nameSeeds {
		f.Add(p, nameSeeds[(i+1)%len(nameSeeds)])
		f.Add(p, p)
	}
	f.Fuzz(func(t *testing.T, pat, name string) {
		pn, err := ParseName(pat)
		if err != nil {
			return
		}
		nn, err := ParseName(name)
		if err != nil {
			return
		}
		_ = MatchPattern(pn, nn) // must not panic
		if !hasWildcard(nn) && !MatchPattern(nn, nn) {
			t.Fatalf("wildcard-free name %q does not match itself", nn.String())
		}
	})
}
