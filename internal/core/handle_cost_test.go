package core

import (
	"testing"
	"time"
)

// TestBindSetCostAttribution plants one deliberately slow counter among
// cheap ones and checks the per-handle EWMA singles it out.
func TestBindSetCostAttribution(t *testing.T) {
	r := NewRegistry()
	mk := func(name string, slow bool) string {
		n := Name{Object: "threads", Counter: "count/" + name}.
			WithInstances(LocalityInstance(0, "total", -1)...)
		var fn func() int64
		if slow {
			fn = func() int64 { time.Sleep(200 * time.Microsecond); return 1 }
		} else {
			fn = func() int64 { return 1 }
		}
		c := NewFuncCounter(n, Info{TypeName: "/threads/count/" + name}, 0, fn, nil)
		r.MustRegister(c)
		return n.String()
	}
	names := []string{mk("a", false), mk("b", true), mk("c", false)}
	set, err := r.BindSet(names)
	if err != nil {
		t.Fatal(err)
	}

	// Attribution off: no data, MostExpensive abstains.
	set.EvaluateBatch(nil, false)
	if i, _ := set.MostExpensive(nil); i != -1 {
		t.Fatalf("unmetered set attributed cost to %d", i)
	}
	if set.CostNs(1) != 0 {
		t.Fatal("unmetered set reported a cost")
	}

	set.EnableCostMetering()
	var buf []Value
	for i := 0; i < 8; i++ {
		buf = set.EvaluateBatch(buf, false)
	}
	i, ns := set.MostExpensive(nil)
	if i != 1 {
		t.Fatalf("most expensive = handle %d (%d ns), want the slow one", i, ns)
	}
	if ns < 100_000 {
		t.Fatalf("slow handle EWMA = %d ns, want >= 100µs", ns)
	}
	if cheap := set.CostNs(0); cheap >= ns/10 {
		t.Fatalf("cheap handle cost %d ns not clearly below slow %d ns", cheap, ns)
	}

	// Skip predicate excludes the winner.
	j, _ := set.MostExpensive(func(k int) bool { return k == 1 })
	if j == 1 {
		t.Fatal("skip predicate ignored")
	}

	// Out-of-range reads are safe.
	if set.CostNs(-1) != 0 || set.CostNs(99) != 0 {
		t.Fatal("out-of-range CostNs not zero")
	}
}
