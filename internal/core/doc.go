// Package core implements the performance-counter framework that is the
// primary contribution of the reproduced paper: a uniform, extensible,
// hierarchically named set of counters that a runtime system and the
// application itself can query while the application is running.
//
// The framework follows the HPX counter design:
//
//   - Counters are identified by structured names of the form
//
//     /object{parentinstance#parentindex/instance#index}/counter/path@parameters
//
//     for example /threads{locality#0/total}/time/average or
//     /threads{locality#0/worker-thread#3}/count/cumulative.
//
//   - Counter *types* (names without an instance part, such as
//     /threads/time/average) are registered once with a factory; counter
//     *instances* are created on demand when a full name is queried.
//
//   - All counters expose the same interface regardless of what they
//     measure, so any consumer (command-line printer, policy engine,
//     remote monitor) can read any counter with no special cases.
//
//   - Meta counters compose other counters: /statistics/... counters
//     aggregate samples of a base counter (average, rolling_average, max,
//     min, stddev, median, rate) and /arithmetics/... counters combine
//     several counters arithmetically.
//
//   - Counters may be evaluated and reset at any time; the registry keeps
//     an "active set" mirroring HPX's evaluate_active_counters /
//     reset_active_counters API, which the paper uses to scope
//     measurements to each computation sample.
//
// Values are returned as core.Value, carrying a raw int64 payload, an
// optional scaling divisor, an invocation count and a timestamp, again
// mirroring the HPX wire format so that local and remote (see package
// parcel) reads are indistinguishable.
package core
