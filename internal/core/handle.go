package core

import (
	"fmt"
	"sync/atomic"
)

// Handle is a compiled counter reference: the name is parsed and the
// instance resolved once at Bind time, so Evaluate is a direct interface
// call — no name parsing, no map lookup, no allocation. Handles are the
// intended read path for sampling loops; string-keyed Registry.Evaluate
// remains for ad-hoc queries.
//
// A handle pins the instance it was bound to. If the counter is later
// Removed from the registry the handle keeps reading the detached
// instance; re-Bind to observe removals. The zero Handle is unbound and
// evaluates to StatusCounterUnknown.
type Handle struct {
	r    *Registry
	c    Counter
	name string
}

// Bind resolves a full counter name against the registry once, creating
// the instance through its type factory if needed, and returns a Handle
// for repeated evaluation.
func (r *Registry) Bind(fullName string) (Handle, error) {
	c, err := r.Get(fullName)
	if err != nil {
		return Handle{r: r, name: fullName}, err
	}
	return Handle{r: r, c: c, name: c.Name().String()}, nil
}

// Valid reports whether the handle is bound to a live counter instance.
func (h Handle) Valid() bool { return h.c != nil }

// Name returns the canonical full name the handle was bound to (or the
// requested name, for an unbound handle).
func (h Handle) Name() string { return h.name }

// Counter returns the bound instance, or nil for an unbound handle.
func (h Handle) Counter() Counter { return h.c }

// Evaluate reads the bound counter, optionally resetting it as part of
// the same read. Panics in the counter are isolated exactly as in
// Registry.Evaluate (StatusInvalidData + error self-counter). An
// unbound handle yields StatusCounterUnknown. Allocation-free at steady
// state.
func (h Handle) Evaluate(reset bool) Value {
	if h.c == nil {
		return Value{Name: h.name, Status: StatusCounterUnknown}
	}
	return h.r.safeValue(h.c, reset)
}

// BindSet is a fixed, ordered set of counter handles bound once and
// evaluated together into a caller-provided buffer — the local analogue
// of the parcel plane's EvaluateBulk. Results keep bind order.
type BindSet struct {
	handles []Handle
	names   []string

	// costNs, when non-nil (EnableCostMetering), holds a per-handle EWMA
	// of evaluation cost in nanoseconds — the attribution the budgeted
	// sampler uses to demote the one expensive counter instead of its
	// whole tier (cost.go).
	costNs []atomic.Int64
}

// BindSet compiles a list of full counter names into a BindSet. Every
// name must resolve; on error the set built so far is discarded. Use
// BindSetLenient to keep unresolved names as StatusCounterUnknown
// placeholders instead.
func (r *Registry) BindSet(fullNames []string) (*BindSet, error) {
	s := &BindSet{
		handles: make([]Handle, len(fullNames)),
		names:   make([]string, len(fullNames)),
	}
	for i, fn := range fullNames {
		h, err := r.Bind(fn)
		if err != nil {
			return nil, fmt.Errorf("core: bind %q: %w", fn, err)
		}
		s.handles[i] = h
		s.names[i] = h.Name()
	}
	return s, nil
}

// BindSetLenient compiles a list of full counter names, keeping names
// that fail to resolve as unbound handles that evaluate to
// StatusCounterUnknown. This is what the parcel server uses so one bad
// name in a bulk subscription degrades that slot, not the whole set.
func (r *Registry) BindSetLenient(fullNames []string) *BindSet {
	s := &BindSet{
		handles: make([]Handle, len(fullNames)),
		names:   make([]string, len(fullNames)),
	}
	for i, fn := range fullNames {
		h, _ := r.Bind(fn)
		s.handles[i] = h
		s.names[i] = h.Name()
	}
	return s
}

// BindActive compiles the current active set (in its sorted order) into
// a BindSet, the fast-path equivalent of looping EvaluateActive.
func (r *Registry) BindActive() *BindSet {
	snap := r.active.Load()
	s := &BindSet{
		handles: make([]Handle, len(snap.counters)),
		names:   append([]string(nil), snap.names...),
	}
	for i, c := range snap.counters {
		s.handles[i] = Handle{r: r, c: c, name: snap.names[i]}
	}
	return s
}

// Len returns the number of counters in the set.
func (s *BindSet) Len() int { return len(s.handles) }

// Names returns the canonical full names in bind order. The slice is
// shared with the set; callers must not modify it.
func (s *BindSet) Names() []string { return s.names }

// Handle returns the i-th handle in bind order.
func (s *BindSet) Handle(i int) Handle { return s.handles[i] }

// EvaluateBatch evaluates every counter in the set into dst, reusing its
// backing array when it has capacity, and returns the filled slice in
// bind order. With a pre-grown dst a steady-state sampling loop
// allocates nothing. Pass nil to let the first call size the buffer.
// The sweep's wall cost is metered into /counters{...}/cost/*.
func (s *BindSet) EvaluateBatch(dst []Value, reset bool) []Value {
	if cap(dst) < len(s.handles) {
		dst = make([]Value, len(s.handles))
	} else {
		dst = dst[:len(s.handles)]
	}
	start := now()
	if s.costNs != nil {
		// Per-handle attribution: clock reads are chained (each slot's
		// end is the next slot's start), so the whole sweep pays one
		// extra clock read per counter, not two.
		prev := start
		for i := range s.handles {
			dst[i] = s.handles[i].Evaluate(reset)
			t := now()
			EWMAUpdate(&s.costNs[i], t.Sub(prev).Nanoseconds())
			prev = t
		}
		if len(s.handles) > 0 {
			if r := s.handles[0].r; r != nil {
				r.noteEvalCost(prev.Sub(start).Nanoseconds(), len(s.handles))
			}
		}
		return dst
	}
	for i := range s.handles {
		dst[i] = s.handles[i].Evaluate(reset)
	}
	if len(s.handles) > 0 {
		if r := s.handles[0].r; r != nil {
			r.noteEvalCost(now().Sub(start).Nanoseconds(), len(s.handles))
		}
	}
	return dst
}
