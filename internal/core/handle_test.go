package core

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

func testRawCounter(i int64) *RawCounter {
	n := Name{Object: "runtime", Counter: "count/tasks"}.
		WithInstances(LocalityInstance(0, "worker-thread", i)...)
	return NewRawCounter(n, Info{TypeName: "/runtime/count/tasks", Unit: UnitEvents})
}

func TestHandleEvaluate(t *testing.T) {
	r := NewRegistry()
	c := testRawCounter(0)
	r.MustRegister(c)
	c.Add(7)

	h, err := r.Bind(c.Name().String())
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if !h.Valid() {
		t.Fatal("handle should be valid")
	}
	if h.Name() != c.Name().String() {
		t.Fatalf("handle name = %q, want %q", h.Name(), c.Name().String())
	}
	v := h.Evaluate(false)
	if v.Raw != 7 || v.Status != StatusValid || v.Name != c.Name().String() {
		t.Fatalf("Evaluate = %+v", v)
	}
	// Evaluate-and-reset through the handle.
	if v := h.Evaluate(true); v.Raw != 7 {
		t.Fatalf("evaluate-and-reset read %d, want 7", v.Raw)
	}
	if v := h.Evaluate(false); v.Raw != 0 {
		t.Fatalf("after reset read %d, want 0", v.Raw)
	}
}

func TestHandleUnknown(t *testing.T) {
	r := NewRegistry()
	h, err := r.Bind("/nosuch{locality#0/total}/count/thing")
	if err == nil {
		t.Fatal("Bind of unknown counter should error")
	}
	if h.Valid() {
		t.Fatal("unbound handle should not be valid")
	}
	v := h.Evaluate(false)
	if v.Status != StatusCounterUnknown {
		t.Fatalf("unbound Evaluate status = %v, want CounterUnknown", v.Status)
	}
	if v.Name != "/nosuch{locality#0/total}/count/thing" {
		t.Fatalf("unbound Evaluate name = %q", v.Name)
	}
}

func TestHandlePanicIsolation(t *testing.T) {
	r := NewRegistry()
	bad := &panicCounter{name: Name{Object: "test", Counter: "count/bad"}.
		WithInstances(LocalityInstance(0, "total", -1)...), panicValue: true}
	r.MustRegister(bad)
	h, err := r.Bind(bad.name.String())
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	before := r.EvalErrors()
	v := h.Evaluate(false)
	if v.Status != StatusInvalidData {
		t.Fatalf("panicking handle Evaluate status = %v, want InvalidData", v.Status)
	}
	if r.EvalErrors() != before+1 {
		t.Fatalf("EvalErrors = %d, want %d", r.EvalErrors(), before+1)
	}
}

func TestBindSet(t *testing.T) {
	r := NewRegistry()
	c0, c1 := testRawCounter(0), testRawCounter(1)
	r.MustRegister(c0)
	r.MustRegister(c1)
	c0.Add(10)
	c1.Add(20)

	// Deliberately bind in reverse-sorted order: batch results must keep
	// bind order, not name order.
	names := []string{c1.Name().String(), c0.Name().String()}
	s, err := r.BindSet(names)
	if err != nil {
		t.Fatalf("BindSet: %v", err)
	}
	if s.Len() != 2 {
		t.Fatalf("Len = %d", s.Len())
	}
	vals := s.EvaluateBatch(nil, false)
	if len(vals) != 2 || vals[0].Raw != 20 || vals[1].Raw != 10 {
		t.Fatalf("EvaluateBatch = %+v", vals)
	}
	if vals[0].Name != names[0] || vals[1].Name != names[1] {
		t.Fatalf("batch order broken: %q, %q", vals[0].Name, vals[1].Name)
	}

	// The destination buffer is reused when it has capacity.
	again := s.EvaluateBatch(vals, false)
	if &again[0] != &vals[0] {
		t.Fatal("EvaluateBatch did not reuse the destination buffer")
	}

	// Strict binding fails on any unknown name.
	if _, err := r.BindSet([]string{names[0], "/nosuch{locality#0/total}/count/x"}); err == nil {
		t.Fatal("strict BindSet should fail on unknown names")
	}

	// Lenient binding degrades the unknown slot only.
	ls := r.BindSetLenient([]string{names[0], "/nosuch{locality#0/total}/count/x"})
	lv := ls.EvaluateBatch(nil, false)
	if lv[0].Status != StatusValid || lv[1].Status != StatusCounterUnknown {
		t.Fatalf("lenient batch = %+v", lv)
	}
}

func TestBindActive(t *testing.T) {
	r := NewRegistry()
	c0, c1 := testRawCounter(0), testRawCounter(1)
	r.MustRegister(c0)
	r.MustRegister(c1)
	for _, c := range []Counter{c1, c0} {
		if _, err := r.AddActive(c.Name().String()); err != nil {
			t.Fatalf("AddActive: %v", err)
		}
	}
	s := r.BindActive()
	if s.Len() != 2 {
		t.Fatalf("BindActive Len = %d", s.Len())
	}
	c0.Add(1)
	c1.Add(2)
	got := s.EvaluateBatch(nil, false)
	want := r.EvaluateActive(false)
	if len(got) != len(want) {
		t.Fatalf("batch %d values, active %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Name != want[i].Name || got[i].Raw != want[i].Raw {
			t.Fatalf("batch[%d] = %+v, active = %+v", i, got[i], want[i])
		}
	}
}

// TestHandleAllocs locks in the PR's headline property: the compiled
// read path allocates nothing at steady state.
func TestHandleAllocs(t *testing.T) {
	r := NewRegistry()
	c := testRawCounter(0)
	r.MustRegister(c)
	h, err := r.Bind(c.Name().String())
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Evaluate(false) }); n != 0 {
		t.Fatalf("Handle.Evaluate allocates %v per run, want 0", n)
	}

	s, err := r.BindSet([]string{c.Name().String()})
	if err != nil {
		t.Fatalf("BindSet: %v", err)
	}
	dst := make([]Value, 0, s.Len())
	if n := testing.AllocsPerRun(1000, func() { dst = s.EvaluateBatch(dst, false) }); n != 0 {
		t.Fatalf("EvaluateBatch allocates %v per run, want 0", n)
	}

	buf := make([]Value, 0, 8)
	if n := testing.AllocsPerRun(1000, func() { buf = r.EvaluateActiveInto(buf, false) }); n != 0 {
		t.Fatalf("EvaluateActiveInto allocates %v per run, want 0", n)
	}
}

// TestRegistryShardStress exercises Register/Remove/AddActive/
// RemoveActive/Evaluate/EvaluateActive concurrently across shards. Its
// value is under -race: the sharded instance maps and the lock-free
// active snapshot must stay coherent while mutators run.
func TestRegistryShardStress(t *testing.T) {
	r := NewRegistry()
	const fixed = 8
	for i := 0; i < fixed; i++ {
		c := testRawCounter(int64(i))
		r.MustRegister(c)
		if _, err := r.AddActive(c.Name().String()); err != nil {
			t.Fatalf("AddActive: %v", err)
		}
	}

	dur := 300 * time.Millisecond
	if testing.Short() {
		dur = 50 * time.Millisecond
	}
	stop := make(chan struct{})
	var failures atomic.Int64
	var wg sync.WaitGroup

	// Churners: register/activate/deactivate/remove a private counter.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := int64(0); ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				n := Name{Object: "stress", Counter: "count/churn"}.
					WithInstances(LocalityInstance(int64(g), "worker-thread", i%16)...)
				c := NewRawCounter(n, Info{TypeName: "/stress/count/churn"})
				if err := r.Register(c); err != nil {
					continue // sibling churner briefly owns this slot
				}
				key := n.String()
				if _, err := r.AddActive(key); err != nil {
					failures.Add(1)
				}
				r.RemoveActive(key)
				r.Remove(key)
			}
		}(g)
	}
	// Samplers: the lock-free read paths.
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var buf []Value
			fixedName := testRawCounter(0).Name().String()
			for {
				select {
				case <-stop:
					return
				default:
				}
				buf = r.EvaluateActiveInto(buf, false)
				for i := 1; i < len(buf); i++ {
					if buf[i-1].Name >= buf[i].Name {
						failures.Add(1)
					}
				}
				if _, err := r.Evaluate(fixedName, false); err != nil {
					failures.Add(1)
				}
				_ = r.Active()
			}
		}()
	}

	time.Sleep(dur)
	close(stop)
	wg.Wait()
	if f := failures.Load(); f != 0 {
		t.Fatalf("%d consistency failures under concurrent churn", f)
	}
	// The fixed counters must all still be present and active.
	active := r.Active()
	count := 0
	for _, n := range active {
		if len(n) >= 8 && n[:8] == "/runtime" {
			count++
		}
	}
	if count != fixed {
		t.Fatalf("fixed active counters = %d, want %d (active: %v)", count, fixed, active)
	}
}

// BenchmarkEvaluateString measures string-keyed Evaluate with the exact
// canonical name: the shard-map fast path, no ParseName.
func BenchmarkEvaluateString(b *testing.B) {
	r := NewRegistry()
	c := testRawCounter(0)
	r.MustRegister(c)
	name := c.Name().String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Evaluate(name, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEvaluateParsed measures the pre-fast-path behaviour —
// ParseName on every call followed by the parsed-name lookup — to
// quantify what the exact-match fast path saves.
func BenchmarkEvaluateParsed(b *testing.B) {
	r := NewRegistry()
	c := testRawCounter(0)
	r.MustRegister(c)
	name := c.Name().String()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		n, err := ParseName(name)
		if err != nil {
			b.Fatal(err)
		}
		cc, err := r.get(n)
		if err != nil {
			b.Fatal(err)
		}
		_ = r.safeValue(cc, false)
	}
}

// BenchmarkHandleEvaluate measures the compiled fast path.
func BenchmarkHandleEvaluate(b *testing.B) {
	r := NewRegistry()
	c := testRawCounter(0)
	r.MustRegister(c)
	h, err := r.Bind(c.Name().String())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = h.Evaluate(false)
	}
}

// BenchmarkEvaluateBatch measures a full active-set sweep through a
// BindSet with a reused buffer — the sampling loop's steady state.
func BenchmarkEvaluateBatch(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		c := testRawCounter(int64(i))
		r.MustRegister(c)
		if _, err := r.AddActive(c.Name().String()); err != nil {
			b.Fatal(err)
		}
	}
	s := r.BindActive()
	dst := make([]Value, 0, s.Len())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dst = s.EvaluateBatch(dst, false)
	}
}

// BenchmarkEvaluateActive measures the allocating convenience sweep for
// comparison with BenchmarkEvaluateBatch.
func BenchmarkEvaluateActive(b *testing.B) {
	r := NewRegistry()
	for i := 0; i < 8; i++ {
		c := testRawCounter(int64(i))
		r.MustRegister(c)
		if _, err := r.AddActive(c.Name().String()); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = r.EvaluateActive(false)
	}
}
