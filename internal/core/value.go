package core

import (
	"fmt"
	"time"
)

// Status describes the outcome of evaluating a counter, mirroring the HPX
// counter status codes.
type Status int

const (
	// StatusValid means the value is meaningful.
	StatusValid Status = iota
	// StatusNewData means the value is meaningful and was refreshed since
	// the previous query.
	StatusNewData
	// StatusInvalidData means the counter exists but could not produce a
	// value (e.g. the underlying event source is gone).
	StatusInvalidData
	// StatusCounterUnknown means no such counter instance exists.
	StatusCounterUnknown
	// StatusStale means the value is a previously captured reading served
	// from a cache because the owning locality is currently unreachable.
	// The Value's Time field still carries the original capture time, so
	// consumers can compute the reading's age; aggregations should treat
	// stale values as explicit gaps, not fresh data.
	StatusStale
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusValid:
		return "valid"
	case StatusNewData:
		return "new-data"
	case StatusInvalidData:
		return "invalid-data"
	case StatusCounterUnknown:
		return "unknown"
	case StatusStale:
		return "stale"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Value is the result of one counter evaluation. It matches the HPX wire
// format: a raw integer payload with an optional scaling divisor, so that
// values survive serialization (see package parcel) without floating-point
// round-trips.
type Value struct {
	// Name is the full instance name the value was read from.
	Name string `json:"name"`
	// Raw is the integer payload.
	Raw int64 `json:"value"`
	// Scaling divides Raw to obtain the real value; 0 or 1 mean unscaled.
	Scaling int64 `json:"scaling,omitempty"`
	// Inverse indicates the real value is Scaling/Raw instead of
	// Raw/Scaling.
	Inverse bool `json:"inverse,omitempty"`
	// Count is the number of underlying events the value aggregates
	// (e.g. number of tasks averaged over).
	Count int64 `json:"count,omitempty"`
	// Time is when the value was captured.
	Time time.Time `json:"time"`
	// Status qualifies the value.
	Status Status `json:"status"`
}

// Float64 returns the scaled value as a float.
func (v Value) Float64() float64 {
	s := v.Scaling
	if s == 0 {
		s = 1
	}
	if v.Inverse {
		if v.Raw == 0 {
			return 0
		}
		return float64(s) / float64(v.Raw)
	}
	return float64(v.Raw) / float64(s)
}

// Int64 returns the scaled value truncated to an integer.
func (v Value) Int64() int64 { return int64(v.Float64()) }

// Valid reports whether the value may be used.
func (v Value) Valid() bool { return v.Status == StatusValid || v.Status == StatusNewData }

// Stale reports whether the value is a cached reading from an
// unreachable locality.
func (v Value) Stale() bool { return v.Status == StatusStale }

// Age returns how old the reading is at the given instant — most useful
// for stale values, whose Time is the original capture time.
func (v Value) Age(now time.Time) time.Duration { return now.Sub(v.Time) }

// Unit labels for counter metadata.
const (
	UnitNone         = ""
	UnitNanoseconds  = "ns"
	UnitBytes        = "bytes"
	UnitEvents       = "events"
	UnitPercent      = "%"
	UnitBytesPerSec  = "bytes/s"
	UnitEventsPerSec = "events/s"
)

// Info describes a counter type: its metadata as reported by discovery.
type Info struct {
	// TypeName is the counter-type name, e.g. "/threads/time/average".
	TypeName string `json:"type_name"`
	// HelpText is a one-line description shown by --list-counters.
	HelpText string `json:"help_text"`
	// Unit is the unit of the scaled value.
	Unit string `json:"unit,omitempty"`
	// Version of the counter interface.
	Version string `json:"version,omitempty"`
}
