package core

// Aggregation digests: the per-counter fold an aggregation-tree node
// (internal/agas/tree) reports for its whole subtree. A Digest is keyed
// by a counter name whose locality index is wildcarded — every locality's
// /threads{locality#N/total}/idle-rate folds into one
// /threads{locality#*/total}/idle-rate entry — and carries the moments a
// reduction can maintain without seeing individual samples again:
// sum/min/max/count (avg is derived), the event count, how many folded
// samples were stale, and optionally the merged value distribution for
// histogram-backed counters, so the tree root can answer fleet-wide
// quantiles exactly as a single locality answers its own.
//
// Digests are associative and commutative under Merge, which is what
// makes the k-ary reduction correct regardless of tree shape: folding
// children {A,B} then C equals folding {A,C} then B.

import "time"

// Digest is one counter's aggregate over a subtree of localities.
type Digest struct {
	// Key is the counter name with the locality index wildcarded, e.g.
	// /threads{locality#*/total}/idle-rate.
	Key string `json:"key"`
	// Sum, Min and Max are over the folded per-locality values
	// (Value.Float64 — scaling applied).
	Sum float64 `json:"sum"`
	Min float64 `json:"min"`
	Max float64 `json:"max"`
	// Count is the number of per-locality samples folded in.
	Count int64 `json:"count"`
	// Events sums the folded samples' Value.Count fields (observations
	// behind averages, parcels behind parcel counters, ...).
	Events int64 `json:"events,omitempty"`
	// Stale counts folded samples that were StatusStale — cached
	// last-known readings from localities that missed a round. The
	// StatusStale composition rule: a digest is served stale only when
	// *everything* under it is stale (Stale == Count); anything fresher
	// makes it a partial-but-live aggregate.
	Stale int64 `json:"stale,omitempty"`
	// Hist is the merged value distribution for histogram-backed
	// counters, enabling fleet-wide quantiles at the root. Counts are
	// trailing-zero trimmed on the wire (HistogramSnapshot.Compact);
	// Merge accepts mismatched lengths.
	Hist *HistogramSnapshot `json:"hist,omitempty"`
}

// FoldValue folds one locality's sample into the digest. Only values
// that carry data fold — valid, new-data and stale ones; unknown and
// invalid samples are gaps and leave the digest untouched. Reports
// whether the value was folded.
func (d *Digest) FoldValue(v Value) bool {
	switch v.Status {
	case StatusValid, StatusNewData, StatusStale:
	default:
		return false
	}
	f := v.Float64()
	if d.Count == 0 {
		d.Min, d.Max = f, f
	} else {
		if f < d.Min {
			d.Min = f
		}
		if f > d.Max {
			d.Max = f
		}
	}
	d.Sum += f
	d.Count++
	d.Events += v.Count
	if v.Status == StatusStale {
		d.Stale++
	}
	return true
}

// Merge folds another digest (a child subtree's aggregate for the same
// key) into d. Merge is commutative and associative; an empty operand
// is a no-op.
func (d *Digest) Merge(o Digest) {
	if o.Count == 0 && o.Hist == nil {
		return
	}
	if o.Count > 0 {
		if d.Count == 0 {
			d.Min, d.Max = o.Min, o.Max
		} else {
			if o.Min < d.Min {
				d.Min = o.Min
			}
			if o.Max > d.Max {
				d.Max = o.Max
			}
		}
		d.Sum += o.Sum
		d.Count += o.Count
		d.Events += o.Events
		d.Stale += o.Stale
	}
	if o.Hist != nil {
		// Merge into a fresh snapshot rather than in place: Digest is
		// copied by value through fold pipelines, and mutating a shared
		// *HistogramSnapshot would corrupt the operand digest.
		var merged HistogramSnapshot
		if d.Hist != nil {
			merged.Merge(*d.Hist)
		}
		merged.Merge(*o.Hist)
		d.Hist = &merged
	}
}

// MarkStale reclassifies every folded sample as stale — applied by a
// parent when the child that reported this digest has itself missed a
// round, so the whole subtree's data is last-known rather than current.
func (d *Digest) MarkStale() { d.Stale = d.Count }

// Avg returns the mean of the folded values (0 when empty).
func (d Digest) Avg() float64 {
	if d.Count == 0 {
		return 0
	}
	return d.Sum / float64(d.Count)
}

// AllStale reports the StatusStale composition outcome: true when every
// folded sample under the digest is stale.
func (d Digest) AllStale() bool { return d.Count > 0 && d.Stale == d.Count }

// Values renders the digest as exported counter values, appended to dst:
// one value per statistic, named by the digest key with the statistic as
// a trailing parameter (…@sum, @avg, @min, @max, @count, and @stale when
// any folded sample was stale), so the existing /metrics and /series
// handlers export them with a distinguishing params label. Fractional
// statistics use the arithmetics plane's fixed-point convention
// (raw = value×statScale, scaling = statScale). Values are StatusStale
// only under the composition rule (AllStale); a partially-stale
// aggregate stays valid and reports its stale share in @stale.
func (d Digest) Values(at time.Time, dst []Value) []Value {
	n, err := ParseName(d.Key)
	if err != nil {
		return dst
	}
	status := StatusValid
	if d.AllStale() {
		status = StatusStale
	}
	stat := func(param string, raw, scaling int64) Value {
		sn := n
		if sn.Parameters != "" {
			sn.Parameters += "," + param
		} else {
			sn.Parameters = param
		}
		return Value{
			Name: sn.String(), Raw: raw, Scaling: scaling,
			Count: d.Count, Time: at, Status: status,
		}
	}
	fixed := func(param string, v float64) Value {
		return stat(param, int64(v*statScale), statScale)
	}
	dst = append(dst,
		fixed("sum", d.Sum),
		fixed("avg", d.Avg()),
		fixed("min", d.Min),
		fixed("max", d.Max),
		stat("count", d.Count, 0),
	)
	if d.Stale > 0 {
		dst = append(dst, stat("stale", d.Stale, 0))
	}
	return dst
}

// WildcardLocality rewrites a full counter name's leading locality#N
// instance to the locality#* wildcard — the canonical digest key, under
// which every locality's instance of one counter folds together.
func WildcardLocality(fullName string) string {
	n, err := ParseName(fullName)
	if err != nil {
		return fullName
	}
	if len(n.Instances) == 0 || n.Instances[0].Name != "locality" {
		return fullName
	}
	n.Instances[0].Wildcard = true
	n.Instances[0].HasIndex = true
	n.Instances[0].Index = 0
	return n.String()
}

// LocalityFullName builds the concrete per-locality instance name for a
// counter type path ("/threads/idle-rate") under the conventional
// {locality#loc/total} instance — the name an aggregation-tree node
// binds locally for the type paths it is configured to sample.
func LocalityFullName(typePath string, loc int64) (string, error) {
	n, err := ParseName(typePath)
	if err != nil {
		return "", err
	}
	full := n.WithInstances(LocalityInstance(loc, "total", -1)...)
	return full.String(), nil
}

// DistributionSnapshotter is implemented by counters that can hand out a
// mergeable copy of their underlying value distribution. The aggregation
// tree uses it to carry full histograms upward, so quantiles survive the
// reduction instead of degrading to means.
type DistributionSnapshotter interface {
	HistogramSnapshot() HistogramSnapshot
}
