package core

// Satellite coverage for HistogramSnapshot.Merge — the fold the
// aggregation tree leans on. Properties: merge commutes, totals add,
// the merged quantile stays within the bucketing scheme's relative
// error of the exact quantile of the union, mismatched bucket-table
// lengths merge losslessly, and merging snapshots taken concurrently
// with recording is race-free and self-consistent.

import (
	"math"
	"math/rand"
	"sort"
	"sync"
	"testing"
)

// histQuantileRelError bounds the log-linear bucketing's relative error:
// bucket width is 1/16 of the value's octave, and the reported midpoint
// sits within half a bucket of any member, so ~1/32 ≈ 3.2%; 7% leaves
// slack for the nearest-rank step at small N.
const histQuantileRelError = 0.07

func exactQuantile(sorted []int64, q float64) int64 {
	rank := int(q*float64(len(sorted)) + 0.5)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

func TestHistogramMergeProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		na, nb := 1+rng.Intn(400), 1+rng.Intn(400)
		var ha, hb Histogram
		all := make([]int64, 0, na+nb)
		record := func(h *Histogram, n int) {
			for i := 0; i < n; i++ {
				// Mix magnitudes so the two histograms occupy different
				// bucket ranges — the interesting merge case.
				v := rng.Int63n(int64(1) << uint(3+rng.Intn(30)))
				h.Record(v)
				all = append(all, v)
			}
		}
		record(&ha, na)
		record(&hb, nb)

		sa, sb := ha.Snapshot(), hb.Snapshot()

		// Merge commutes.
		ab := sa
		ab.Counts = append([]int64(nil), sa.Counts...)
		ab.Merge(sb)
		ba := sb
		ba.Counts = append([]int64(nil), sb.Counts...)
		ba.Merge(sa)
		if ab.N != ba.N || ab.Sum != ba.Sum {
			t.Fatalf("trial %d: merge order changed totals: %d/%d vs %d/%d",
				trial, ab.N, ab.Sum, ba.N, ba.Sum)
		}
		for i := range ab.Counts {
			if ab.Counts[i] != ba.Counts[i] {
				t.Fatalf("trial %d: merge order changed bucket %d", trial, i)
			}
		}

		// Totals add.
		if ab.N != sa.N+sb.N || ab.Sum != sa.Sum+sb.Sum {
			t.Fatalf("trial %d: totals do not add: %d != %d+%d", trial, ab.N, sa.N, sb.N)
		}

		// Quantile error bounded against the exact union quantile.
		sort.Slice(all, func(i, j int) bool { return all[i] < all[j] })
		for _, q := range []float64{0.5, 0.9, 0.99} {
			got, ok := ab.Quantile(q)
			if !ok {
				t.Fatalf("trial %d: merged quantile(%g) empty", trial, q)
			}
			want := exactQuantile(all, q)
			bound := histQuantileRelError * float64(want)
			if bound < 1 { // integer buckets at tiny values
				bound = 1
			}
			if math.Abs(float64(got-want)) > bound {
				t.Fatalf("trial %d: quantile(%g) = %d, exact %d (bound %g)",
					trial, q, got, want, bound)
			}
		}
	}
}

// TestHistogramMergeMismatchedBuckets covers compacted wire snapshots
// and peers built with a different bucket count: shorter into longer,
// longer into shorter, and into the nil zero value.
func TestHistogramMergeMismatchedBuckets(t *testing.T) {
	var h Histogram
	for i := int64(0); i < 100; i++ {
		h.Record(i)
	}
	full := h.Snapshot()
	short := full.Compact()
	if len(short.Counts) >= len(full.Counts) {
		t.Fatalf("compact did not shrink: %d vs %d", len(short.Counts), len(full.Counts))
	}
	if short.N != full.N || short.Sum != full.Sum {
		t.Fatalf("compact changed totals: %+v", short)
	}

	// Short into long.
	a := h.Snapshot()
	a.Merge(short)
	if a.N != 200 || a.Sum != 2*full.Sum {
		t.Fatalf("short-into-long totals: %+v", a)
	}

	// Long into short: the receiver must grow, not panic.
	b := full.Compact()
	b.Merge(full)
	if b.N != 200 || len(b.Counts) != len(full.Counts) {
		t.Fatalf("long-into-short: N=%d len=%d", b.N, len(b.Counts))
	}
	for i := range full.Counts {
		if b.Counts[i] != 2*full.Counts[i] {
			t.Fatalf("long-into-short bucket %d: %d != %d", i, b.Counts[i], 2*full.Counts[i])
		}
	}

	// Into the zero value.
	var zero HistogramSnapshot
	zero.Merge(short)
	if zero.N != 100 {
		t.Fatalf("zero-value merge: %+v", zero)
	}
	q, ok := zero.Quantile(0.5)
	if !ok || q < 40 || q > 60 {
		t.Fatalf("median after zero-value merge = %d", q)
	}
}

// TestHistogramMergeConcurrentSnapshots merges snapshots taken while
// recorders are running. Each snapshot must be internally consistent
// (bucket sum == N) even though it races the writers, and so must any
// merge of such snapshots.
func TestHistogramMergeConcurrentSnapshots(t *testing.T) {
	var h Histogram
	const writers = 4
	const perWriter = 20000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < perWriter; i++ {
				h.Record(rng.Int63n(1 << 20))
			}
		}(int64(w))
	}
	snapshots := make(chan HistogramSnapshot, 64)
	var rg sync.WaitGroup
	rg.Add(1)
	go func() {
		defer rg.Done()
		for {
			s := h.Snapshot()
			select {
			case snapshots <- s:
			case <-stop:
				return
			}
		}
	}()
	wg.Wait()
	close(stop)
	rg.Wait()
	close(snapshots)

	var merged HistogramSnapshot
	taken := 0
	for s := range snapshots {
		var sum int64
		for _, c := range s.Counts {
			sum += c
		}
		if sum != s.N {
			t.Fatalf("torn snapshot: bucket sum %d != N %d", sum, s.N)
		}
		merged.Merge(s.Compact())
		taken++
	}
	if taken == 0 {
		t.Fatal("no snapshots taken")
	}
	// The final state must account for every recorded value.
	final := h.Snapshot()
	if final.N != writers*perWriter {
		t.Fatalf("final N = %d, want %d", final.N, writers*perWriter)
	}
}
