package core

import (
	"sync"
	"sync/atomic"
	"time"
)

// Counter is the uniform interface every performance counter exposes.
// Consumers never need to know what a counter measures: the command-line
// printer, the policy engine and the remote monitor all operate on this
// interface alone.
type Counter interface {
	// Name returns the full instance name of the counter.
	Name() Name
	// Info returns the counter-type metadata.
	Info() Info
	// Value evaluates the counter. If reset is true the counter's state
	// is atomically reset as part of the same evaluation (the HPX
	// "evaluate and reset" idiom the paper uses between samples).
	Value(reset bool) Value
	// Reset clears the counter's state without reading it.
	Reset()
}

// Startable is implemented by counters that need background activity
// (e.g. periodic sampling for rolling statistics). The registry starts a
// counter when it is added to the active set and stops it when removed.
type Startable interface {
	Start()
	Stop()
}

// now is replaceable for tests.
var now = time.Now

// ---------------------------------------------------------------------------
// Raw counter: a monotonically adjustable integer event count.

// RawCounter is a thread-safe integer counter. The zero value is unusable;
// use NewRawCounter.
type RawCounter struct {
	name Name
	// nameStr caches name.String() so Value is allocation-free: the
	// canonical name is rendered once at construction, not per sample.
	nameStr string
	info    Info
	value   atomic.Int64
}

// NewRawCounter creates a raw counter with the given full name and info.
func NewRawCounter(name Name, info Info) *RawCounter {
	return &RawCounter{name: name, nameStr: name.String(), info: info}
}

// NewLocalityRaw builds a raw counter under the conventional
// /object{locality#loc/total}/counter instance name — the shape every
// self-observation plane (parcels, agas, the remote-spawn plane) uses
// for its per-locality event counters.
func NewLocalityRaw(object, counter string, loc int64, help, unit string) *RawCounter {
	cn := Name{Object: object, Counter: counter}.
		WithInstances(LocalityInstance(loc, "total", -1)...)
	return NewRawCounter(cn, Info{
		TypeName: "/" + object + "/" + counter, HelpText: help,
		Unit: unit, Version: "1.0",
	})
}

// Add increments the counter by delta (may be negative).
func (c *RawCounter) Add(delta int64) { c.value.Add(delta) }

// Inc increments the counter by one.
func (c *RawCounter) Inc() { c.value.Add(1) }

// Set stores an absolute value.
func (c *RawCounter) Set(v int64) { c.value.Store(v) }

// Load returns the current value without producing a Value record.
func (c *RawCounter) Load() int64 { return c.value.Load() }

// Name implements Counter.
func (c *RawCounter) Name() Name { return c.name }

// Info implements Counter.
func (c *RawCounter) Info() Info { return c.info }

// Value implements Counter.
func (c *RawCounter) Value(reset bool) Value {
	var raw int64
	if reset {
		raw = c.value.Swap(0)
	} else {
		raw = c.value.Load()
	}
	return Value{Name: c.nameStr, Raw: raw, Time: now(), Status: StatusValid}
}

// Reset implements Counter.
func (c *RawCounter) Reset() { c.value.Store(0) }

// ---------------------------------------------------------------------------
// Func counter: wraps an arbitrary sampling function.

// FuncCounter adapts a plain function into a Counter. The function is
// invoked on every evaluation; an optional reset function supports the
// evaluate-and-reset idiom.
type FuncCounter struct {
	name    Name
	nameStr string
	info    Info
	scaling int64
	sample  func() int64
	reset   func()
}

// NewFuncCounter creates a counter backed by sample. reset may be nil if
// the underlying quantity cannot be reset (Reset is then a no-op).
// scaling, if > 1, is attached to every produced Value.
func NewFuncCounter(name Name, info Info, scaling int64, sample func() int64, reset func()) *FuncCounter {
	return &FuncCounter{name: name, nameStr: name.String(), info: info, scaling: scaling, sample: sample, reset: reset}
}

// Name implements Counter.
func (c *FuncCounter) Name() Name { return c.name }

// Info implements Counter.
func (c *FuncCounter) Info() Info { return c.info }

// Value implements Counter.
func (c *FuncCounter) Value(reset bool) Value {
	raw := c.sample()
	if reset && c.reset != nil {
		c.reset()
	}
	return Value{Name: c.nameStr, Raw: raw, Scaling: c.scaling, Time: now(), Status: StatusValid}
}

// Reset implements Counter.
func (c *FuncCounter) Reset() {
	if c.reset != nil {
		c.reset()
	}
}

// ---------------------------------------------------------------------------
// Average counter: accumulates (sum, count) pairs and reports sum/count.

// AverageCounter reports the mean of accumulated samples, like HPX's
// /threads/time/average. The producer calls Record for every event; the
// consumer reads the mean. Value(reset=true) atomically snapshots and
// clears the accumulation.
type AverageCounter struct {
	name    Name
	nameStr string
	info    Info

	mu    sync.Mutex
	sum   int64
	count int64
}

// NewAverageCounter creates an averaging counter.
func NewAverageCounter(name Name, info Info) *AverageCounter {
	return &AverageCounter{name: name, nameStr: name.String(), info: info}
}

// Record accumulates one sample.
func (c *AverageCounter) Record(v int64) {
	c.mu.Lock()
	c.sum += v
	c.count++
	c.mu.Unlock()
}

// RecordN accumulates a pre-aggregated batch of n samples summing to sum.
func (c *AverageCounter) RecordN(sum, n int64) {
	c.mu.Lock()
	c.sum += sum
	c.count += n
	c.mu.Unlock()
}

// Name implements Counter.
func (c *AverageCounter) Name() Name { return c.name }

// Info implements Counter.
func (c *AverageCounter) Info() Info { return c.info }

// Value implements Counter. The returned Value carries the sum in Raw and
// the sample count in both Scaling and Count, so Float64 yields the mean
// while consumers needing the total can use Raw directly.
func (c *AverageCounter) Value(reset bool) Value {
	c.mu.Lock()
	sum, count := c.sum, c.count
	if reset {
		c.sum, c.count = 0, 0
	}
	c.mu.Unlock()
	scaling := count
	if scaling == 0 {
		scaling = 1
	}
	return Value{Name: c.nameStr, Raw: sum, Scaling: scaling, Count: count, Time: now(), Status: StatusValid}
}

// Reset implements Counter.
func (c *AverageCounter) Reset() {
	c.mu.Lock()
	c.sum, c.count = 0, 0
	c.mu.Unlock()
}

// ---------------------------------------------------------------------------
// Elapsed-time counter.

// ElapsedTimeCounter reports nanoseconds since creation or since the last
// reset — HPX's /runtime/uptime.
type ElapsedTimeCounter struct {
	name    Name
	nameStr string
	info    Info
	mu      sync.Mutex
	start   time.Time
}

// NewElapsedTimeCounter creates an elapsed-time counter starting now.
func NewElapsedTimeCounter(name Name, info Info) *ElapsedTimeCounter {
	return &ElapsedTimeCounter{name: name, nameStr: name.String(), info: info, start: now()}
}

// Name implements Counter.
func (c *ElapsedTimeCounter) Name() Name { return c.name }

// Info implements Counter.
func (c *ElapsedTimeCounter) Info() Info { return c.info }

// Value implements Counter.
func (c *ElapsedTimeCounter) Value(reset bool) Value {
	t := now()
	c.mu.Lock()
	elapsed := t.Sub(c.start).Nanoseconds()
	if reset {
		c.start = t
	}
	c.mu.Unlock()
	return Value{Name: c.nameStr, Raw: elapsed, Time: t, Status: StatusValid}
}

// Reset implements Counter.
func (c *ElapsedTimeCounter) Reset() {
	c.mu.Lock()
	c.start = now()
	c.mu.Unlock()
}
