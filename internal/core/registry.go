package core

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
)

// Factory creates a counter instance for a parsed full name. The registry
// passes itself so meta counters can resolve their base counters.
type Factory func(name Name, r *Registry) (Counter, error)

// Discoverer enumerates the full names of the instances a counter type
// currently supports, used to expand wildcard queries.
type Discoverer func(r *Registry) []Name

type typeEntry struct {
	info     Info
	factory  Factory
	discover Discoverer
}

// instanceShards is the number of instance-map shards. Counter lookups
// hash the full name onto a shard so concurrent samplers, Register and
// Remove contend per shard instead of on one registry-wide mutex. Must
// be a power of two.
const instanceShards = 16

// instShard is one slice of the instance map with its own lock.
type instShard struct {
	mu        sync.RWMutex
	instances map[string]Counter
}

// activeSnapshot is the immutable, name-sorted view of the active set.
// Mutators build a fresh snapshot under activeMu and publish it with one
// atomic store; EvaluateActive/ResetActive/Active read it without taking
// any lock, so samplers never contend with each other or with Register.
type activeSnapshot struct {
	names    []string
	counters []Counter
}

var emptyActive = &activeSnapshot{}

// costShards is the number of independent histograms the sampling-cost
// meter spreads its recordings over, so concurrent samplers do not
// serialise on one set of bucket cache lines. Merged on read. Must be a
// power of two.
const costShards = 4

// Registry holds the counter types and live counter instances of one
// locality. It is safe for concurrent use. Instances are sharded by
// name hash; the active set is published as an immutable sorted
// snapshot so the sampling read path is lock-free.
type Registry struct {
	typesMu sync.RWMutex
	types   map[string]*typeEntry

	shards [instanceShards]instShard

	// activeMu serialises active-set mutation; activeSet is the mutable
	// membership map and active the published read-only snapshot.
	// activeGen increments on every published change so samplers can
	// cache derived structures (tier splits, bind sets) and rebuild only
	// when membership actually moved.
	activeMu  sync.Mutex
	activeSet map[string]Counter
	active    atomic.Pointer[activeSnapshot]
	activeGen atomic.Uint64

	// evalErrors counts counter evaluations that panicked and were
	// converted to StatusInvalidData, exposed as the
	// /counters{locality#0/total}/count/errors self-counter.
	evalErrors atomic.Int64

	// Sampling-cost self-observation: every metered evaluation sweep
	// (Evaluate, EvaluateActive, EvaluateActiveInto, BindSet batches)
	// books its own wall cost here, so the telemetry plane can budget
	// the very thing it spends. Exposed as the
	// /counters{locality#0/total}/cost/{eval-ns,per-counter} counters.
	costSweeps   atomic.Int64
	costCounters atomic.Int64
	costNs       atomic.Int64
	costSeq      atomic.Uint64
	costHists    [costShards]Histogram
}

// NewRegistry creates an empty registry with the meta counter families
// (/statistics/..., /arithmetics/...) pre-registered, plus the
// /counters/count/errors self-counter tracking evaluation panics.
func NewRegistry() *Registry {
	r := &Registry{
		types:     make(map[string]*typeEntry),
		activeSet: make(map[string]Counter),
	}
	for i := range r.shards {
		r.shards[i].instances = make(map[string]Counter)
	}
	r.active.Store(emptyActive)
	registerStatistics(r)
	registerArithmetics(r)
	errName := Name{Object: "counters", Counter: "count/errors"}.
		WithInstances(LocalityInstance(0, "total", -1)...)
	errInfo := Info{TypeName: "/counters/count/errors",
		HelpText: "counter evaluations that panicked (value reported as invalid-data)",
		Unit:     UnitEvents, Version: "1.0"}
	r.MustRegister(NewFuncCounter(errName, errInfo, 0,
		r.evalErrors.Load, func() { r.evalErrors.Store(0) }))
	registerEvalCost(r)
	return r
}

// shardFor hashes a full counter name onto its instance shard (FNV-1a).
func (r *Registry) shardFor(key string) *instShard {
	var h uint32 = 2166136261
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &r.shards[h&(instanceShards-1)]
}

// lookup finds a registered instance by its exact canonical full name
// without parsing it — the hot-path entry for already-known counters.
func (r *Registry) lookup(key string) (Counter, bool) {
	s := r.shardFor(key)
	s.mu.RLock()
	c, ok := s.instances[key]
	s.mu.RUnlock()
	return c, ok
}

// EvalErrors returns the number of counter evaluations that panicked
// since creation (or the last reset of the self-counter).
func (r *Registry) EvalErrors() int64 { return r.evalErrors.Load() }

// safeValue evaluates one counter, isolating panics: a panicking Value
// yields a StatusInvalidData result for that counter only and bumps the
// registry's error self-counter, so one broken provider cannot abort a
// whole evaluation sweep.
func (r *Registry) safeValue(c Counter, reset bool) (v Value) {
	defer func() {
		if rec := recover(); rec != nil {
			r.evalErrors.Add(1)
			v = Value{Name: c.Name().String(), Time: now(), Status: StatusInvalidData}
		}
	}()
	return c.Value(reset)
}

// safeReset resets one counter, absorbing panics like safeValue.
func (r *Registry) safeReset(c Counter) {
	defer func() {
		if rec := recover(); rec != nil {
			r.evalErrors.Add(1)
		}
	}()
	c.Reset()
}

// closeCounter releases a counter that lost a registration race and will
// never be served, so factory-held resources are not leaked.
func closeCounter(c Counter) {
	switch x := c.(type) {
	case interface{ Close() error }:
		_ = x.Close()
	case interface{ Close() }:
		x.Close()
	case Startable:
		x.Stop()
	}
}

// RegisterType registers a counter type. Instances are created lazily by
// factory when a full name below this type is first queried. discover may
// be nil if the type cannot enumerate its instances.
func (r *Registry) RegisterType(info Info, factory Factory, discover Discoverer) error {
	n, err := ParseName(info.TypeName)
	if err != nil {
		return err
	}
	if n.IsFull() {
		return fmt.Errorf("core: type name %q must not carry an instance", info.TypeName)
	}
	r.typesMu.Lock()
	defer r.typesMu.Unlock()
	key := n.TypeName()
	if _, dup := r.types[key]; dup {
		return fmt.Errorf("core: counter type %q already registered", key)
	}
	r.types[key] = &typeEntry{info: info, factory: factory, discover: discover}
	return nil
}

// MustRegisterType is RegisterType that panics on error, for package
// initialization of fixed counter sets.
func (r *Registry) MustRegisterType(info Info, factory Factory, discover Discoverer) {
	if err := r.RegisterType(info, factory, discover); err != nil {
		panic(err)
	}
}

// Register adds a pre-built counter instance (typically one owned by the
// runtime that feeds it directly). The instance's type is implicitly
// registered if unknown.
func (r *Registry) Register(c Counter) error {
	name := c.Name()
	if !name.IsFull() {
		return fmt.Errorf("core: instance name %q must carry an instance part", name)
	}
	key := name.String()
	s := r.shardFor(key)
	s.mu.Lock()
	if _, dup := s.instances[key]; dup {
		s.mu.Unlock()
		return fmt.Errorf("core: counter instance %q already registered", key)
	}
	s.instances[key] = c
	s.mu.Unlock()
	tn := name.TypeName()
	r.typesMu.Lock()
	if _, ok := r.types[tn]; !ok {
		info := c.Info()
		if info.TypeName == "" {
			info.TypeName = tn
		}
		r.types[tn] = &typeEntry{info: info}
	}
	r.typesMu.Unlock()
	return nil
}

// MustRegister is Register that panics on error.
func (r *Registry) MustRegister(c Counter) {
	if err := r.Register(c); err != nil {
		panic(err)
	}
}

// Remove deletes a counter instance (and drops it from the active set).
// Handles bound to the instance keep reading it; Bind again to observe
// the removal.
func (r *Registry) Remove(fullName string) {
	r.activeMu.Lock()
	if c, ok := r.activeSet[fullName]; ok {
		delete(r.activeSet, fullName)
		r.publishActiveLocked()
		r.activeMu.Unlock()
		if s, ok := c.(Startable); ok {
			s.Stop()
		}
	} else {
		r.activeMu.Unlock()
	}
	s := r.shardFor(fullName)
	s.mu.Lock()
	delete(s.instances, fullName)
	s.mu.Unlock()
}

// Get returns the counter instance for a full name, creating it through
// the registered type factory if it does not exist yet. An exact
// canonical spelling of a registered instance resolves without parsing.
func (r *Registry) Get(fullName string) (Counter, error) {
	if c, ok := r.lookup(fullName); ok {
		return c, nil
	}
	n, err := ParseName(fullName)
	if err != nil {
		return nil, err
	}
	return r.get(n)
}

func (r *Registry) get(n Name) (Counter, error) {
	key := n.String()
	if c, ok := r.lookup(key); ok {
		return c, nil
	}
	r.typesMu.RLock()
	entry := r.types[n.TypeName()]
	r.typesMu.RUnlock()
	// Parameterized names identify concrete counters even without an
	// instance part (the arithmetics family: /arithmetics/add@c1,c2).
	if !n.IsFull() && n.Parameters == "" {
		return nil, fmt.Errorf("core: %q names a counter type, not an instance", key)
	}
	if entry == nil || entry.factory == nil {
		return nil, fmt.Errorf("core: unknown counter %q", key)
	}
	c, err := entry.factory(n, r)
	if err != nil {
		return nil, err
	}
	s := r.shardFor(key)
	s.mu.Lock()
	if existing, ok := s.instances[key]; ok {
		// Lost a creation race: two goroutines resolved the same name
		// concurrently and both ran the factory. First registration
		// wins — every caller must see the same instance, or resets
		// and stateful counters would split across twins. The loser is
		// closed (if it holds resources) and discarded.
		s.mu.Unlock()
		closeCounter(c)
		return existing, nil
	}
	s.instances[key] = c
	s.mu.Unlock()
	return c, nil
}

// Evaluate reads one counter by full name. A panicking Counter.Value is
// isolated: the result carries StatusInvalidData and the registry's
// /counters/count/errors self-counter is incremented. Exact canonical
// names of registered instances take a fast path that skips name
// parsing entirely; callers on a sampling loop should prefer Bind and
// Handle.Evaluate, which skip the map lookup as well.
func (r *Registry) Evaluate(fullName string, reset bool) (Value, error) {
	start := now()
	if c, ok := r.lookup(fullName); ok {
		v := r.safeValue(c, reset)
		r.noteEvalCost(now().Sub(start).Nanoseconds(), 1)
		return v, nil
	}
	c, err := r.Get(fullName)
	if err != nil {
		return Value{Name: fullName, Status: StatusCounterUnknown}, err
	}
	v := r.safeValue(c, reset)
	r.noteEvalCost(now().Sub(start).Nanoseconds(), 1)
	return v, nil
}

// Types returns the metadata of all registered counter types, sorted by
// type name, as shown by --list-counters.
func (r *Registry) Types() []Info {
	r.typesMu.RLock()
	infos := make([]Info, 0, len(r.types))
	for _, e := range r.types {
		infos = append(infos, e.info)
	}
	r.typesMu.RUnlock()
	sort.Slice(infos, func(i, j int) bool { return infos[i].TypeName < infos[j].TypeName })
	return infos
}

// Discover expands a (possibly wildcarded) counter name into the full
// names of all matching instances: registered instances plus the instances
// enumerated by matching types' Discoverers. The result is sorted and
// deduplicated.
func (r *Registry) Discover(pattern string) ([]Name, error) {
	pn, err := ParseName(pattern)
	if err != nil {
		return nil, err
	}
	seen := make(map[string]Name)

	for i := range r.shards {
		s := &r.shards[i]
		s.mu.RLock()
		for key, c := range s.instances {
			if MatchPattern(pn, c.Name()) {
				seen[key] = c.Name()
			}
		}
		s.mu.RUnlock()
	}
	var discoverers []Discoverer
	r.typesMu.RLock()
	for tn, e := range r.types {
		if e.discover == nil {
			continue
		}
		t, err := ParseName(tn)
		if err != nil {
			continue
		}
		if pn.Object != "*" && pn.Object != t.Object {
			continue
		}
		if !matchCounterPath(pn.Counter, t.Counter) {
			continue
		}
		discoverers = append(discoverers, e.discover)
	}
	r.typesMu.RUnlock()

	for _, d := range discoverers {
		for _, n := range d(r) {
			if MatchPattern(pn, n) {
				seen[n.String()] = n
			}
		}
	}

	names := make([]Name, 0, len(seen))
	keys := make([]string, 0, len(seen))
	for k := range seen {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		names = append(names, seen[k])
	}
	return names, nil
}

// ---------------------------------------------------------------------------
// Active set: the HPX evaluate_active_counters / reset_active_counters API.

// ActiveGeneration returns a counter that increments every time the
// published active set changes. Samplers that derive per-tier bind sets
// or other views from the active set compare generations to rebuild
// only on real membership changes.
func (r *Registry) ActiveGeneration() uint64 { return r.activeGen.Load() }

// publishActiveLocked rebuilds the sorted immutable snapshot from the
// membership map. Caller holds activeMu.
func (r *Registry) publishActiveLocked() {
	r.activeGen.Add(1)
	if len(r.activeSet) == 0 {
		r.active.Store(emptyActive)
		return
	}
	snap := &activeSnapshot{
		names:    make([]string, 0, len(r.activeSet)),
		counters: make([]Counter, 0, len(r.activeSet)),
	}
	for k := range r.activeSet {
		snap.names = append(snap.names, k)
	}
	sort.Strings(snap.names)
	for _, k := range snap.names {
		snap.counters = append(snap.counters, r.activeSet[k])
	}
	r.active.Store(snap)
}

// AddActive resolves the (possibly wildcarded) name and adds all matching
// counters to the active set, starting any Startable ones. It returns the
// full names added.
func (r *Registry) AddActive(pattern string) ([]string, error) {
	names, err := r.Discover(pattern)
	if err != nil {
		return nil, err
	}
	if len(names) == 0 {
		// Not discoverable: try to instantiate the exact name directly.
		n, perr := ParseName(pattern)
		if perr == nil && n.IsFull() && !hasWildcard(n) {
			names = []Name{n}
		} else {
			return nil, fmt.Errorf("core: no counters match %q", pattern)
		}
	}
	added := make([]string, 0, len(names))
	var started []Startable
	publish := func() {
		r.activeMu.Lock()
		r.publishActiveLocked()
		r.activeMu.Unlock()
		for _, s := range started {
			s.Start()
		}
	}
	for _, n := range names {
		c, err := r.get(n)
		if err != nil {
			publish()
			return added, err
		}
		key := n.String()
		r.activeMu.Lock()
		_, already := r.activeSet[key]
		if !already {
			r.activeSet[key] = c
		}
		r.activeMu.Unlock()
		if !already {
			if s, ok := c.(Startable); ok {
				started = append(started, s)
			}
			added = append(added, key)
		}
	}
	publish()
	return added, nil
}

// RemoveActive removes a counter from the active set, stopping it if
// Startable.
func (r *Registry) RemoveActive(fullName string) {
	r.activeMu.Lock()
	c, ok := r.activeSet[fullName]
	if ok {
		delete(r.activeSet, fullName)
		r.publishActiveLocked()
	}
	r.activeMu.Unlock()
	if ok {
		if s, ok := c.(Startable); ok {
			s.Stop()
		}
	}
}

// EvaluateActive evaluates every counter in the active set, optionally
// resetting each as part of the same read. Results are ordered by name.
// A counter whose Value panics does not abort the sweep: its entry
// carries StatusInvalidData and the remaining counters are evaluated
// normally. The read is lock-free against the registry: it walks the
// published snapshot, so concurrent Register/Remove/AddActive never
// block a sampler.
func (r *Registry) EvaluateActive(reset bool) []Value {
	snap := r.active.Load()
	values := make([]Value, len(snap.counters))
	start := now()
	for i, c := range snap.counters {
		values[i] = r.safeValue(c, reset)
	}
	r.noteEvalCost(now().Sub(start).Nanoseconds(), len(snap.counters))
	return values
}

// EvaluateActiveInto is EvaluateActive writing into a caller-provided
// buffer, reused across samples: dst is grown only when the active set
// outgrows its capacity, so a steady-state sampling loop allocates
// nothing. Returns the filled slice (dst's backing array when it was
// large enough).
func (r *Registry) EvaluateActiveInto(dst []Value, reset bool) []Value {
	snap := r.active.Load()
	if cap(dst) < len(snap.counters) {
		dst = make([]Value, len(snap.counters))
	} else {
		dst = dst[:len(snap.counters)]
	}
	start := now()
	for i, c := range snap.counters {
		dst[i] = r.safeValue(c, reset)
	}
	r.noteEvalCost(now().Sub(start).Nanoseconds(), len(snap.counters))
	return dst
}

// ResetActive resets every counter in the active set without reading it.
func (r *Registry) ResetActive() {
	snap := r.active.Load()
	for _, c := range snap.counters {
		r.safeReset(c)
	}
}

// Active returns the full names in the active set, sorted.
func (r *Registry) Active() []string {
	snap := r.active.Load()
	return append([]string(nil), snap.names...)
}

// StopActive stops all Startable counters in the active set and clears it.
func (r *Registry) StopActive() {
	r.activeMu.Lock()
	counters := make([]Counter, 0, len(r.activeSet))
	for _, c := range r.activeSet {
		counters = append(counters, c)
	}
	r.activeSet = make(map[string]Counter)
	r.publishActiveLocked()
	r.activeMu.Unlock()
	for _, c := range counters {
		if s, ok := c.(Startable); ok {
			s.Stop()
		}
	}
}

func hasWildcard(n Name) bool {
	if n.Object == "*" || strings.Contains("/"+n.Counter+"/", "/*/") || strings.HasSuffix(n.Counter, "/*") || n.Counter == "*" {
		return true
	}
	for _, i := range n.Instances {
		if i.Wildcard || i.Name == "*" {
			return true
		}
	}
	return false
}
