package core

import (
	"fmt"
	"strconv"
	"strings"
)

// Instance is one element of the instance path inside the braces of a full
// counter name, e.g. "locality#0" or "worker-thread#3" or "total".
type Instance struct {
	// Name is the instance name, e.g. "locality" or "total".
	Name string
	// Index is the instance index following '#'. Valid only if HasIndex.
	Index int64
	// HasIndex reports whether an explicit '#index' was present.
	HasIndex bool
	// Wildcard reports that the index was '*' (all instances).
	Wildcard bool
}

// String formats the instance element in counter-name syntax.
func (i Instance) String() string {
	switch {
	case i.Wildcard:
		return i.Name + "#*"
	case i.HasIndex:
		return i.Name + "#" + strconv.FormatInt(i.Index, 10)
	default:
		return i.Name
	}
}

// Name is a parsed counter name.
//
// A counter *type* name has no instance part: /threads/time/average.
// A *full* (instance) name carries the instance path in braces:
// /threads{locality#0/total}/time/average.
//
// Meta counters (statistics, arithmetics) embed one or more complete
// counter names: the statistics family places the base counter name inside
// the braces (/statistics{/threads{locality#0/total}/count/cumulative}/average@100),
// while the arithmetics family lists operand counters after '@'.
type Name struct {
	// Object is the top-level object, e.g. "threads", "agas", "papi".
	Object string
	// Instances is the instance path, outermost first. Empty for a pure
	// counter-type name.
	Instances []Instance
	// BaseCounter holds the embedded full counter name for meta counters
	// whose instance part is itself a counter name (statistics family).
	// When set, Instances is empty.
	BaseCounter string
	// Counter is the counter path below the object, e.g. "time/average".
	Counter string
	// Parameters is the text after '@' (may contain commas and full
	// counter names for arithmetic counters). Empty if absent.
	Parameters string
}

// IsFull reports whether the name identifies a concrete counter instance
// (it has an instance path or an embedded base counter).
func (n Name) IsFull() bool { return len(n.Instances) > 0 || n.BaseCounter != "" }

// TypeName returns the counter-type portion of the name:
// "/object/counterpath" with instance part and parameters removed.
func (n Name) TypeName() string {
	return "/" + n.Object + "/" + n.Counter
}

// String formats the name back into counter-name syntax. Parsing the
// result yields an identical Name (round-trip property, tested with
// testing/quick).
func (n Name) String() string {
	var b strings.Builder
	b.WriteByte('/')
	b.WriteString(n.Object)
	if n.BaseCounter != "" {
		b.WriteByte('{')
		b.WriteString(n.BaseCounter)
		b.WriteByte('}')
	} else if len(n.Instances) > 0 {
		b.WriteByte('{')
		for i, inst := range n.Instances {
			if i > 0 {
				b.WriteByte('/')
			}
			b.WriteString(inst.String())
		}
		b.WriteByte('}')
	}
	b.WriteByte('/')
	b.WriteString(n.Counter)
	if n.Parameters != "" {
		b.WriteByte('@')
		b.WriteString(n.Parameters)
	}
	return b.String()
}

// WithInstances returns a copy of n carrying the given instance path.
func (n Name) WithInstances(insts ...Instance) Name {
	c := n
	c.Instances = insts
	c.BaseCounter = ""
	return c
}

// LocalityInstance builds the conventional two-level instance path
// {locality#loc/name#idx}; pass idx < 0 for an unindexed second element
// (e.g. "total").
func LocalityInstance(loc int64, name string, idx int64) []Instance {
	second := Instance{Name: name}
	if idx >= 0 {
		second.Index = idx
		second.HasIndex = true
	}
	return []Instance{{Name: "locality", Index: loc, HasIndex: true}, second}
}

// ParseName parses a counter name in HPX syntax. It accepts both
// counter-type names and full instance names, including nested counter
// names inside the braces (statistics counters) and '*' instance
// wildcards.
func ParseName(s string) (Name, error) {
	var n Name
	if s == "" || s[0] != '/' {
		return n, fmt.Errorf("core: counter name %q must start with '/'", s)
	}
	rest := s[1:]

	// Object: up to '{' or '/'.
	end := strings.IndexAny(rest, "{/")
	if end <= 0 {
		return n, fmt.Errorf("core: counter name %q lacks an object segment", s)
	}
	n.Object = rest[:end]
	rest = rest[end:]

	if rest[0] == '{' {
		body, tail, err := matchBrace(rest)
		if err != nil {
			return n, fmt.Errorf("core: counter name %q: %w", s, err)
		}
		if strings.HasPrefix(body, "/") {
			// Embedded full counter name (statistics family). Validate it.
			if _, err := ParseName(body); err != nil {
				return n, fmt.Errorf("core: embedded counter in %q: %w", s, err)
			}
			n.BaseCounter = body
		} else {
			insts, err := parseInstancePath(body)
			if err != nil {
				return n, fmt.Errorf("core: counter name %q: %w", s, err)
			}
			n.Instances = insts
		}
		rest = tail
	}

	if len(rest) == 0 || rest[0] != '/' {
		return n, fmt.Errorf("core: counter name %q lacks a counter path", s)
	}
	rest = rest[1:]
	if at := strings.IndexByte(rest, '@'); at >= 0 {
		n.Counter = rest[:at]
		n.Parameters = rest[at+1:]
	} else {
		n.Counter = rest
	}
	if n.Counter == "" {
		return n, fmt.Errorf("core: counter name %q has an empty counter path", s)
	}
	for _, seg := range strings.Split(n.Counter, "/") {
		if seg == "" {
			return n, fmt.Errorf("core: counter name %q has an empty counter path segment", s)
		}
	}
	return n, nil
}

// matchBrace consumes a balanced {...} group at the start of s and returns
// the body and the remaining tail.
func matchBrace(s string) (body, tail string, err error) {
	depth := 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{':
			depth++
		case '}':
			depth--
			if depth == 0 {
				return s[1:i], s[i+1:], nil
			}
		}
	}
	return "", "", fmt.Errorf("unbalanced '{' in instance specification")
}

func parseInstancePath(body string) ([]Instance, error) {
	if body == "" {
		return nil, fmt.Errorf("empty instance specification")
	}
	parts := strings.Split(body, "/")
	insts := make([]Instance, 0, len(parts))
	for _, p := range parts {
		inst, err := parseInstance(p)
		if err != nil {
			return nil, err
		}
		insts = append(insts, inst)
	}
	return insts, nil
}

func parseInstance(p string) (Instance, error) {
	var inst Instance
	hash := strings.IndexByte(p, '#')
	if hash < 0 {
		if p == "" {
			return inst, fmt.Errorf("empty instance element")
		}
		inst.Name = p
		return inst, nil
	}
	inst.Name = p[:hash]
	idx := p[hash+1:]
	if inst.Name == "" {
		return inst, fmt.Errorf("instance element %q has an empty name", p)
	}
	if idx == "*" {
		inst.Wildcard = true
		inst.HasIndex = true
		return inst, nil
	}
	v, err := strconv.ParseInt(idx, 10, 64)
	if err != nil || v < 0 {
		return inst, fmt.Errorf("instance element %q has an invalid index", p)
	}
	inst.Index = v
	inst.HasIndex = true
	return inst, nil
}

// MatchPattern reports whether the full counter name matches the pattern.
// The pattern may use '*' as a whole instance index ("worker-thread#*"),
// as a whole instance element, as a whole counter-path segment
// ("/threads/count/*"), or as a whole object. Matching is structural, not
// textual, so equivalent spellings compare equal.
func MatchPattern(pattern, name Name) bool {
	if pattern.Object != "*" && pattern.Object != name.Object {
		return false
	}
	if !matchCounterPath(pattern.Counter, name.Counter) {
		return false
	}
	if pattern.BaseCounter != "" {
		return pattern.BaseCounter == name.BaseCounter
	}
	if len(pattern.Instances) == 0 {
		// A type-only pattern matches any instance of the type.
		return true
	}
	if len(pattern.Instances) != len(name.Instances) {
		return false
	}
	for i, pi := range pattern.Instances {
		ni := name.Instances[i]
		if pi.Name != "*" && pi.Name != ni.Name {
			return false
		}
		if pi.Wildcard || pi.Name == "*" {
			continue
		}
		if pi.HasIndex != ni.HasIndex || (pi.HasIndex && pi.Index != ni.Index) {
			return false
		}
	}
	return true
}

func matchCounterPath(pattern, path string) bool {
	if pattern == "*" {
		return true
	}
	ps := strings.Split(pattern, "/")
	ns := strings.Split(path, "/")
	if len(ps) != len(ns) {
		return false
	}
	for i := range ps {
		if ps[i] != "*" && ps[i] != ns[i] {
			return false
		}
	}
	return true
}
