package core

import (
	"fmt"
	"math"
	"strings"
)

// arithmeticsOps lists the operations of the /arithmetics counter family:
// /arithmetics/add@<counter1>,<counter2>,... evaluates all operand
// counters and combines their scaled values.
var arithmeticsOps = []string{"add", "subtract", "multiply", "divide", "mean"}

func registerArithmetics(r *Registry) {
	for _, op := range arithmeticsOps {
		op := op
		info := Info{
			TypeName: "/arithmetics/" + op,
			HelpText: "combines the values of its operand counters with '" + op +
				"' (/arithmetics/" + op + "@<counter1>,<counter2>,...)",
			Version: "1.0",
		}
		r.MustRegisterType(info, func(n Name, reg *Registry) (Counter, error) {
			return newArithmeticCounter(n, op, reg)
		}, nil)
	}
}

// ArithmeticCounter combines the values of several operand counters. The
// paper uses such derived counters for ratios (e.g. overhead per task).
type ArithmeticCounter struct {
	name     Name
	nameStr  string
	info     Info
	op       string
	operands []Counter
}

func newArithmeticCounter(n Name, op string, r *Registry) (*ArithmeticCounter, error) {
	names := splitCounterList(n.Parameters)
	if len(names) < 2 && op != "mean" || len(names) == 0 {
		return nil, fmt.Errorf("core: arithmetic counter %q needs at least two operand counters", n)
	}
	operands := make([]Counter, 0, len(names))
	for _, on := range names {
		c, err := r.Get(on)
		if err != nil {
			return nil, fmt.Errorf("core: arithmetic counter %q: operand %q: %w", n, on, err)
		}
		operands = append(operands, c)
	}
	return &ArithmeticCounter{
		name: n, nameStr: n.String(),
		info: Info{TypeName: n.TypeName(), HelpText: op + " of " + strings.Join(names, ", ")},
		op:   op, operands: operands,
	}, nil
}

// splitCounterList splits a comma-separated list of counter names, being
// careful not to split inside braces (statistics operands embed commas).
func splitCounterList(s string) []string {
	var out []string
	depth, start := 0, 0
	for i := 0; i < len(s); i++ {
		switch s[i] {
		case '{':
			depth++
		case '}':
			depth--
		case ',':
			if depth == 0 {
				if p := strings.TrimSpace(s[start:i]); p != "" {
					out = append(out, p)
				}
				start = i + 1
			}
		}
	}
	if p := strings.TrimSpace(s[start:]); p != "" {
		out = append(out, p)
	}
	return out
}

// Name implements Counter.
func (c *ArithmeticCounter) Name() Name { return c.name }

// Info implements Counter.
func (c *ArithmeticCounter) Info() Info { return c.info }

// Value implements Counter. Raw carries the result in fixed-point with
// scaling statScale. reset propagates to every operand. The combination
// is folded as the operands are read, so evaluation allocates nothing.
func (c *ArithmeticCounter) Value(reset bool) Value {
	status := StatusValid
	var res float64
	if c.op == "multiply" {
		res = 1
	}
	divByZero := false
	for i, op := range c.operands {
		ov := op.Value(reset)
		if !ov.Valid() {
			status = StatusInvalidData
		}
		v := ov.Float64()
		switch c.op {
		case "add", "mean":
			res += v
		case "subtract":
			if i == 0 {
				res = v
			} else {
				res -= v
			}
		case "multiply":
			res *= v
		case "divide":
			switch {
			case i == 0:
				res = v
			case divByZero:
				// already zeroed; keep evaluating (and resetting)
				// the remaining operands without dividing
			case v == 0:
				status = StatusInvalidData
				divByZero = true
				res = 0
			default:
				res /= v
			}
		}
	}
	if c.op == "mean" && len(c.operands) > 0 {
		res /= float64(len(c.operands))
	}
	return Value{
		Name:    c.nameStr,
		Raw:     int64(math.Round(res * statScale)),
		Scaling: statScale,
		Count:   int64(len(c.operands)),
		Time:    now(),
		Status:  status,
	}
}

// Reset implements Counter: resets every operand.
func (c *ArithmeticCounter) Reset() {
	for _, op := range c.operands {
		op.Reset()
	}
}
