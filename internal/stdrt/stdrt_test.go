package stdrt

import (
	"errors"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

func TestSpawnBasic(t *testing.T) {
	rt := New()
	f := Spawn(rt, func() int { return 42 })
	if got := f.Get(); got != 42 {
		t.Fatalf("Get = %d", got)
	}
	if rt.Launched() != 1 {
		t.Fatalf("launched = %d", rt.Launched())
	}
	if rt.Live() != 0 {
		t.Fatalf("live after completion = %d", rt.Live())
	}
}

func TestSpawnManyConcurrent(t *testing.T) {
	rt := New()
	const n = 500
	var ran atomic.Int64
	block := make(chan struct{})
	fs := make([]*Future[int], n)
	for i := range fs {
		fs[i] = Spawn(rt, func() int {
			ran.Add(1)
			<-block
			return 1
		})
	}
	// Every task has its own thread: all should be live concurrently.
	deadline := time.After(5 * time.Second)
	for ran.Load() != n {
		select {
		case <-deadline:
			t.Fatalf("only %d/%d tasks started concurrently", ran.Load(), n)
		case <-time.After(time.Millisecond):
		}
	}
	if rt.Live() != n || rt.Peak() < n {
		t.Fatalf("live = %d peak = %d", rt.Live(), rt.Peak())
	}
	close(block)
	for _, f := range fs {
		f.Get()
	}
	if rt.Live() != 0 {
		t.Fatalf("live after join = %d", rt.Live())
	}
}

func TestResourceExhaustion(t *testing.T) {
	// A tiny memory limit: the 4th live thread must fail, reproducing
	// the paper's pthread-exhaustion aborts.
	rt := New(WithModel(Model{StackBytes: 8 << 20, MemoryLimit: 3 * (8 << 20)}))
	block := make(chan struct{})
	var ok []*Future[int]
	for i := 0; i < 3; i++ {
		f := Spawn(rt, func() int { <-block; return 0 })
		if f.Err() != nil {
			t.Fatalf("launch %d failed early: %v", i, f.Err())
		}
		ok = append(ok, f)
	}
	// Give the three threads time to start.
	time.Sleep(5 * time.Millisecond)
	bad := Spawn(rt, func() int { return 0 })
	if bad.Err() == nil {
		t.Fatal("4th launch did not fail")
	}
	if !errors.Is(bad.Err(), ErrResourcesExhausted) {
		t.Fatalf("err = %v", bad.Err())
	}
	if rt.Failed() != 1 {
		t.Fatalf("failed = %d", rt.Failed())
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("Get on failed launch did not panic")
			}
		}()
		bad.Get()
	}()
	close(block)
	for _, f := range ok {
		f.Get()
	}
	// After the join, capacity is available again.
	if f := Spawn(rt, func() int { return 5 }); f.Get() != 5 {
		t.Fatal("post-drain launch failed")
	}
}

func TestPanicPropagation(t *testing.T) {
	rt := New()
	f := Spawn(rt, func() int { panic("task-panic") })
	defer func() {
		if r := recover(); r != "task-panic" {
			t.Fatalf("recovered %v", r)
		}
	}()
	f.Get()
}

func TestCreateCostSpin(t *testing.T) {
	rt := New(WithModel(Model{CreateCost: 2 * time.Millisecond, StackBytes: 1, MemoryLimit: 0}))
	start := time.Now()
	f := Spawn(rt, func() int { return 0 })
	if elapsed := time.Since(start); elapsed < 2*time.Millisecond {
		t.Fatalf("launch returned after %v, create cost not applied", elapsed)
	}
	f.Get()
}

func TestWaitAndReady(t *testing.T) {
	rt := New()
	release := make(chan struct{})
	f := Spawn(rt, func() int { <-release; return 1 })
	if f.Ready() {
		t.Fatal("ready before completion")
	}
	close(release)
	f.Wait()
	if !f.Ready() {
		t.Fatal("not ready after Wait")
	}
}

func TestCounters(t *testing.T) {
	rt := New(WithLocality(0))
	reg := core.NewRegistry()
	if err := rt.RegisterCounters(reg); err != nil {
		t.Fatalf("RegisterCounters: %v", err)
	}
	block := make(chan struct{})
	fs := make([]*Future[int], 4)
	for i := range fs {
		fs[i] = Spawn(rt, func() int { <-block; return 0 })
	}
	time.Sleep(2 * time.Millisecond)
	v, err := reg.Evaluate("/stdthreads{locality#0/total}/count/live", false)
	if err != nil || v.Raw != 4 {
		t.Fatalf("live counter = %+v (%v)", v, err)
	}
	v, _ = reg.Evaluate("/stdthreads{locality#0/total}/memory/stack-reserved", false)
	if v.Raw != 4*(8<<20) {
		t.Fatalf("stack-reserved = %d", v.Raw)
	}
	close(block)
	for _, f := range fs {
		f.Get()
	}
	v, _ = reg.Evaluate("/stdthreads{locality#0/total}/count/peak", false)
	if v.Raw < 4 {
		t.Fatalf("peak = %d", v.Raw)
	}
	v, _ = reg.Evaluate("/stdthreads{locality#0/total}/count/launched", true)
	if v.Raw != 4 {
		t.Fatalf("launched = %d", v.Raw)
	}
	v, _ = reg.Evaluate("/stdthreads{locality#0/total}/count/launched", false)
	if v.Raw != 0 {
		t.Fatalf("launched after reset = %d", v.Raw)
	}
}

func TestDefaultModelMatchesPaperCeiling(t *testing.T) {
	m := DefaultModel()
	ceiling := m.MemoryLimit / m.StackBytes
	// The paper observes failures at 80k–97k live pthreads.
	if ceiling < 80000 || ceiling > 97000 {
		t.Fatalf("default thread ceiling %d outside the paper's 80k–97k window", ceiling)
	}
}

func TestRealOSThreads(t *testing.T) {
	// With RealOSThreads every task gets a dedicated kernel thread; the
	// results stay correct and the lifecycle (create-execute-destroy)
	// completes.
	m := DefaultModel()
	m.RealOSThreads = true
	rt := New(WithModel(m))
	const n = 16
	fs := make([]*Future[int], n)
	for i := range fs {
		i := i
		fs[i] = Spawn(rt, func() int { return i * i })
	}
	for i, f := range fs {
		if got := f.Get(); got != i*i {
			t.Fatalf("task %d = %d", i, got)
		}
	}
	if rt.Live() != 0 {
		t.Fatalf("live after join = %d", rt.Live())
	}
}
