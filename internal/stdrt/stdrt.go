// Package stdrt reproduces the execution model of GCC's std::async that
// the paper uses as its baseline: one operating-system thread per task,
// created at launch and destroyed at completion, with kernel-mediated
// scheduling and an 8 MiB stack reservation per thread.
//
// On this reproduction's host the model is realised with one goroutine
// per task plus a calibrated cost model (see Model): a configurable
// thread-creation delay is spun at launch, every live task accounts a
// virtual stack reservation, and when the reserved virtual memory exceeds
// the model's address-space budget the runtime fails the launch — exactly
// the failure mode the paper observes for NQueens, Health, Fib and UTS,
// where 80k–97k live pthreads exhaust the machine before the benchmark
// completes. The substitution is documented in DESIGN.md §5.
package stdrt

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Model is the pthread cost model applied to every task launch.
type Model struct {
	// RealOSThreads pins every task's goroutine to a dedicated OS
	// thread (runtime.LockOSThread), making the baseline a true
	// thread-per-task runtime on real hosts. The Go runtime then
	// creates and destroys one kernel thread per task, reproducing the
	// GCC std::async behaviour physically rather than analytically.
	// Off by default: with fine-grained benchmarks this is exactly as
	// catastrophic as the paper describes.
	RealOSThreads bool
	// CreateCost is the thread creation+destruction cost spun on the
	// launching goroutine (pthread_create + kernel bookkeeping). The
	// paper's platform measures 10–25 µs per create at scale.
	CreateCost time.Duration
	// StackBytes is the virtual-memory reservation per live thread
	// (glibc default: 8 MiB).
	StackBytes int64
	// MemoryLimit is the address-space budget; launches that would
	// exceed it fail with ErrResourcesExhausted. The paper's node has
	// 128 GiB RAM; with kernel and allocator overheads ≈ 90k live
	// 8 MiB-stacked threads are the observed ceiling.
	MemoryLimit int64
}

// DefaultModel matches the paper's test platform.
func DefaultModel() Model {
	return Model{
		CreateCost:  0, // real spin disabled by default; the simulator applies virtual cost
		StackBytes:  8 << 20,
		MemoryLimit: 90000 * (8 << 20),
	}
}

// ErrResourcesExhausted is the failure std::async surfaces (as
// std::system_error) when no further thread can be created.
var ErrResourcesExhausted = errors.New("stdrt: resource temporarily unavailable (thread limit)")

// Runtime is the thread-per-task runtime.
type Runtime struct {
	model    Model
	locality int64

	live     atomic.Int64
	peak     atomic.Int64
	launched atomic.Int64
	failed   atomic.Int64
}

// Option configures a Runtime.
type Option func(*Runtime)

// WithModel overrides the pthread cost model.
func WithModel(m Model) Option {
	return func(rt *Runtime) { rt.model = m }
}

// WithLocality sets the locality id used in counter instance names.
func WithLocality(id int64) Option {
	return func(rt *Runtime) { rt.locality = id }
}

// New creates a runtime with the default model.
func New(opts ...Option) *Runtime {
	rt := &Runtime{model: DefaultModel()}
	for _, o := range opts {
		o(rt)
	}
	return rt
}

// Future holds the result of one thread-backed task.
type Future[T any] struct {
	done  chan struct{}
	value T
	err   error
	panic any
}

// Spawn launches fn on its own "thread". A nil error return means the
// thread was created; the returned future's Get re-raises task panics and
// returns ErrResourcesExhausted errors recorded at launch.
func Spawn[T any](rt *Runtime, fn func() T) *Future[T] {
	f := &Future[T]{done: make(chan struct{})}
	// Account the stack reservation before the thread exists, as the
	// kernel would.
	reserved := rt.live.Add(1) * rt.model.StackBytes
	if rt.model.MemoryLimit > 0 && reserved > rt.model.MemoryLimit {
		rt.live.Add(-1)
		rt.failed.Add(1)
		f.err = fmt.Errorf("%w: %d live threads reserve %d bytes",
			ErrResourcesExhausted, rt.live.Load(), reserved)
		close(f.done)
		return f
	}
	rt.launched.Add(1)
	for {
		p := rt.peak.Load()
		cur := rt.live.Load()
		if cur <= p || rt.peak.CompareAndSwap(p, cur) {
			break
		}
	}
	if rt.model.CreateCost > 0 {
		spin(rt.model.CreateCost)
	}
	go func() {
		if rt.model.RealOSThreads {
			// Dedicate a kernel thread to this task. Exiting the
			// goroutine while locked destroys the thread, completing
			// the create-execute-destroy lifecycle of GCC's std::async.
			runtime.LockOSThread()
		}
		defer func() {
			rt.live.Add(-1)
			if r := recover(); r != nil {
				f.panic = r
			}
			close(f.done)
		}()
		f.value = fn()
	}()
	return f
}

// Get waits for the task and returns its value. It re-raises task panics;
// a launch failure panics with the recorded error, matching the
// std::system_error abort the paper's baseline exhibits.
func (f *Future[T]) Get() T {
	<-f.done
	if f.err != nil {
		panic(f.err)
	}
	if f.panic != nil {
		panic(f.panic)
	}
	return f.value
}

// Err returns the launch error, if any, without waiting.
func (f *Future[T]) Err() error {
	select {
	case <-f.done:
		return f.err
	default:
		return nil
	}
}

// Wait blocks until completion or launch failure.
func (f *Future[T]) Wait() { <-f.done }

// Ready reports whether Get would not block.
func (f *Future[T]) Ready() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// Live returns the number of currently live task threads.
func (rt *Runtime) Live() int64 { return rt.live.Load() }

// Peak returns the high-water mark of live threads.
func (rt *Runtime) Peak() int64 { return rt.peak.Load() }

// Launched returns the cumulative number of threads created.
func (rt *Runtime) Launched() int64 { return rt.launched.Load() }

// Failed returns the number of launches rejected for resource exhaustion.
func (rt *Runtime) Failed() int64 { return rt.failed.Load() }

// Model returns the active cost model.
func (rt *Runtime) Model() Model { return rt.model }

// RegisterCounters exposes the baseline's thread statistics through the
// same counter framework, under the /stdthreads object:
//
//	/stdthreads{locality#L/total}/count/live
//	/stdthreads{locality#L/total}/count/peak
//	/stdthreads{locality#L/total}/count/launched
//	/stdthreads{locality#L/total}/count/failed
//	/stdthreads{locality#L/total}/memory/stack-reserved
func (rt *Runtime) RegisterCounters(reg *core.Registry) error {
	specs := []struct {
		counter, help, unit string
		read                func() int64
		reset               func()
	}{
		{"count/live", "live task threads", core.UnitEvents, rt.Live, nil},
		{"count/peak", "peak live task threads", core.UnitEvents, rt.Peak,
			func() { rt.peak.Store(rt.live.Load()) }},
		{"count/launched", "cumulative threads created", core.UnitEvents, rt.Launched,
			func() { rt.launched.Store(0) }},
		{"count/failed", "launches rejected for resource exhaustion", core.UnitEvents, rt.Failed,
			func() { rt.failed.Store(0) }},
		{"memory/stack-reserved", "virtual memory reserved for thread stacks", core.UnitBytes,
			func() int64 { return rt.live.Load() * rt.model.StackBytes }, nil},
	}
	for _, s := range specs {
		name := core.Name{Object: "stdthreads", Counter: s.counter}.
			WithInstances(core.LocalityInstance(rt.locality, "total", -1)...)
		info := core.Info{TypeName: "/stdthreads/" + s.counter, HelpText: s.help,
			Unit: s.unit, Version: "1.0"}
		if err := reg.Register(core.NewFuncCounter(name, info, 0, s.read, s.reset)); err != nil {
			return err
		}
	}
	return nil
}

// spin busy-waits for d, modelling CPU cost that sleep would hide.
func spin(d time.Duration) {
	end := time.Now().Add(d)
	for time.Now().Before(end) {
	}
}
