// Package perfcli is the command-line convenience layer the paper
// describes in §IV: every binary in this repository can list available
// counter types, query a set of counters once at exit, or sample them
// periodically to the screen or a CSV file — without the application
// adjusting its behaviour at runtime (that is package apex's job).
//
// The flags mirror HPX's:
//
//	-list-counters                 list counter types and exit
//	-print-counter NAME            query NAME (repeatable, wildcards ok)
//	-print-counter-interval DUR    sample every DUR instead of once at exit
//	-print-counter-destination F   write CSV to file F instead of stdout
package perfcli

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/core"
)

// counterList is a repeatable -print-counter flag.
type counterList []string

// String implements flag.Value.
func (c *counterList) String() string { return strings.Join(*c, ",") }

// Set implements flag.Value.
func (c *counterList) Set(v string) error {
	if v == "" {
		return fmt.Errorf("perfcli: empty counter name")
	}
	*c = append(*c, v)
	return nil
}

// Options carries the parsed counter flags.
type Options struct {
	// ListCounters lists counter types and stops.
	ListCounters bool
	// Counters are the -print-counter patterns.
	Counters counterList
	// Interval enables periodic sampling when > 0.
	Interval time.Duration
	// Destination is the CSV output file ("" = stdout).
	Destination string
	// Reset evaluates-and-resets on each sample (per-interval deltas,
	// the paper's per-sample measurement style).
	Reset bool
}

// Bind registers the flags on fs and returns the options that Parse
// will fill.
func Bind(fs *flag.FlagSet) *Options {
	o := &Options{}
	fs.BoolVar(&o.ListCounters, "list-counters", false,
		"list available performance counter types and exit")
	fs.Var(&o.Counters, "print-counter",
		"performance counter to query (repeatable; wildcards allowed)")
	fs.DurationVar(&o.Interval, "print-counter-interval", 0,
		"sample the selected counters periodically at this interval")
	fs.StringVar(&o.Destination, "print-counter-destination", "",
		"write counter CSV to this file instead of stdout")
	fs.BoolVar(&o.Reset, "print-counter-reset", false,
		"reset counters after each sample (per-interval deltas)")
	return o
}

// Session is an activated counter printer.
type Session struct {
	reg    *core.Registry
	out    io.Writer
	file   *os.File
	reset  bool
	header sync.Once

	mu   sync.Mutex
	buf  []core.Value // reused per sample; a sampling tick allocates nothing
	stop chan struct{}
	wg   sync.WaitGroup
}

// ListTo writes the counter-type listing (--list-counters output).
func ListTo(w io.Writer, reg *core.Registry) {
	infos := reg.Types()
	sort.Slice(infos, func(i, j int) bool { return infos[i].TypeName < infos[j].TypeName })
	fmt.Fprintf(w, "Available counter types (%d):\n", len(infos))
	for _, info := range infos {
		unit := info.Unit
		if unit != "" {
			unit = " [" + unit + "]"
		}
		fmt.Fprintf(w, "  %-55s %s%s\n", info.TypeName, info.HelpText, unit)
	}
}

// Start activates the options against a registry: it resolves the
// counter patterns into the active set and, if an interval is set,
// launches the periodic sampler. The caller must Close the session (the
// final sample prints at Close, as HPX prints at shutdown).
//
// When o.ListCounters is set, the listing is written and (nil, nil) is
// returned: the caller should exit.
func (o *Options) Start(reg *core.Registry) (*Session, error) {
	var out io.Writer = os.Stdout
	var f *os.File
	if o.ListCounters {
		ListTo(out, reg)
		return nil, nil
	}
	if len(o.Counters) == 0 {
		return nil, nil
	}
	if o.Destination != "" {
		var err error
		f, err = os.Create(o.Destination)
		if err != nil {
			return nil, fmt.Errorf("perfcli: %w", err)
		}
		out = f
	}
	s := &Session{reg: reg, out: out, file: f, reset: o.Reset}
	for _, pattern := range o.Counters {
		if _, err := reg.AddActive(pattern); err != nil {
			s.closeFile()
			return nil, err
		}
	}
	if o.Interval > 0 {
		// The goroutine must watch the channel made here, not re-read
		// s.stop (Close nils the field before closing the channel).
		stop := make(chan struct{})
		s.stop = stop
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			t := time.NewTicker(o.Interval)
			defer t.Stop()
			for {
				select {
				case <-stop:
					return
				case <-t.C:
					s.Sample()
				}
			}
		}()
	}
	return s, nil
}

// Sample evaluates the active set once and appends the CSV rows.
func (s *Session) Sample() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.buf = s.reg.EvaluateActiveInto(s.buf[:0], s.reset)
	values := s.buf
	s.header.Do(func() {
		fmt.Fprintln(s.out, "counter,timestamp,value,count,status")
	})
	for _, v := range values {
		fmt.Fprintf(s.out, "%s,%s,%g,%d,%s\n",
			v.Name, v.Time.Format(time.RFC3339Nano), v.Float64(), v.Count, v.Status)
	}
}

// Close stops periodic sampling, prints the final sample, and releases
// the output file.
func (s *Session) Close() error {
	s.mu.Lock()
	stop := s.stop
	s.stop = nil
	s.mu.Unlock()
	if stop != nil {
		close(stop)
		s.wg.Wait()
	}
	s.Sample()
	return s.closeFile()
}

func (s *Session) closeFile() error {
	if s.file != nil {
		err := s.file.Close()
		s.file = nil
		return err
	}
	return nil
}
