package perfcli

import (
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func newRegistry(t *testing.T) (*core.Registry, *core.RawCounter) {
	t.Helper()
	reg := core.NewRegistry()
	c := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative", HelpText: "tasks executed", Unit: core.UnitEvents})
	reg.MustRegister(c)
	return reg, c
}

func TestBindFlags(t *testing.T) {
	fs := flag.NewFlagSet("test", flag.ContinueOnError)
	o := Bind(fs)
	err := fs.Parse([]string{
		"-print-counter", "/threads{locality#0/total}/count/cumulative",
		"-print-counter", "/threads/count/*",
		"-print-counter-interval", "50ms",
		"-print-counter-destination", "out.csv",
		"-print-counter-reset",
	})
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if len(o.Counters) != 2 || o.Interval != 50*time.Millisecond ||
		o.Destination != "out.csv" || !o.Reset {
		t.Fatalf("options = %+v", o)
	}
	if o.Counters.String() == "" {
		t.Fatal("counterList String empty")
	}
	if err := o.Counters.Set(""); err == nil {
		t.Fatal("empty counter accepted")
	}
}

func TestListCounters(t *testing.T) {
	reg, _ := newRegistry(t)
	var sb strings.Builder
	ListTo(&sb, reg)
	out := sb.String()
	if !strings.Contains(out, "/threads/count/cumulative") ||
		!strings.Contains(out, "tasks executed") {
		t.Fatalf("listing = %q", out)
	}
}

func TestStartListMode(t *testing.T) {
	reg, _ := newRegistry(t)
	o := &Options{ListCounters: true}
	s, err := o.Start(reg)
	if err != nil || s != nil {
		t.Fatalf("list mode: %v, %v", s, err)
	}
}

func TestStartNoCounters(t *testing.T) {
	reg, _ := newRegistry(t)
	s, err := (&Options{}).Start(reg)
	if err != nil || s != nil {
		t.Fatalf("no counters: %v, %v", s, err)
	}
}

func TestCSVOutputToFile(t *testing.T) {
	reg, c := newRegistry(t)
	dest := filepath.Join(t.TempDir(), "counters.csv")
	o := &Options{
		Counters:    counterList{"/threads{locality#0/total}/count/cumulative"},
		Destination: dest,
		Reset:       true,
	}
	s, err := o.Start(reg)
	if err != nil {
		t.Fatalf("Start: %v", err)
	}
	c.Add(5)
	s.Sample()
	c.Add(9)
	if err := s.Close(); err != nil { // final sample at close
		t.Fatalf("Close: %v", err)
	}
	data, err := os.ReadFile(dest)
	if err != nil {
		t.Fatal(err)
	}
	out := string(data)
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + two samples
		t.Fatalf("csv lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "counter,timestamp,value,count,status" {
		t.Fatalf("header = %q", lines[0])
	}
	if !strings.Contains(lines[1], ",5,") || !strings.Contains(lines[2], ",9,") {
		t.Fatalf("samples wrong (reset between samples?):\n%s", out)
	}
}

func TestPeriodicSampling(t *testing.T) {
	reg, c := newRegistry(t)
	c.Add(1)
	dest := filepath.Join(t.TempDir(), "periodic.csv")
	o := &Options{
		Counters:    counterList{"/threads{locality#0/total}/count/cumulative"},
		Destination: dest,
		Interval:    2 * time.Millisecond,
	}
	s, err := o.Start(reg)
	if err != nil {
		t.Fatal(err)
	}
	time.Sleep(20 * time.Millisecond)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	data, _ := os.ReadFile(dest)
	lines := strings.Split(strings.TrimSpace(string(data)), "\n")
	if len(lines) < 4 { // header + several periodic samples + final
		t.Fatalf("periodic sampling produced %d lines", len(lines))
	}
}

func TestStartErrors(t *testing.T) {
	reg, _ := newRegistry(t)
	if _, err := (&Options{Counters: counterList{"/nosuch{locality#0/total}/x#"}}).Start(reg); err == nil {
		t.Fatal("bad counter pattern accepted")
	}
	if _, err := (&Options{
		Counters:    counterList{"/threads{locality#0/total}/count/cumulative"},
		Destination: "/nonexistent-dir/file.csv",
	}).Start(reg); err == nil {
		t.Fatal("unwritable destination accepted")
	}
}
