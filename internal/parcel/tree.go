package parcel

// Aggregation-tree wire ops: the transport half of the k-ary counter
// reduction overlay (internal/agas/tree). A child node folds its
// subtree into one bounded TreeDigest and ships it upward with
// tree_push; a monitor (or a parent rebuilding state) reads a node's
// folded view with tree_pull. Both ops are idempotent: pushes are
// generation-keyed (the receiver keeps only the newest digest per child
// subtree) and pulls are reads, so the client's usual reconnect/retry/
// breaker machinery applies unchanged — which is what makes the overlay
// repairable with the existing fault plane.

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/core"
)

// ErrNoTreeNode reports a tree op against a locality that has no
// aggregation-tree node attached (SetTreeNode never called, or called
// with nil). Distinct from transport failure: the peer is up, it just
// isn't part of an overlay.
var ErrNoTreeNode = errors.New("parcel: no aggregation-tree node on this locality")

// TreeDigest is the wire form of one subtree's folded counter state:
// the per-counter digests plus the explicit freshness the parent needs
// to compose staleness — the subtree root's sample generation and fold
// time, how many localities contributed, and whether anything below
// already missed a round.
type TreeDigest struct {
	// Root is the locality id of the subtree root; Rank its position in
	// the overlay's deterministic k-ary layout.
	Root int64 `json:"root"`
	Rank int   `json:"rank"`
	// Gen is the subtree root's sample generation, incremented per fold.
	// Receivers drop digests whose generation is not newer than the one
	// they hold (push idempotency).
	Gen int64 `json:"gen"`
	// Time is when the subtree root performed this fold; parents derive
	// subtree age from it.
	Time time.Time `json:"time"`
	// Localities counts the locality samples folded in; Depth is the
	// folded subtree's height in edges.
	Localities int `json:"localities"`
	Depth      int `json:"depth"`
	// Partial reports that some subtree below missed a round: its data
	// is stale in the fold or dropped from it entirely.
	Partial bool `json:"partial,omitempty"`
	// StaleLocalities counts folded locality samples that are cached
	// last-known values rather than current readings.
	StaleLocalities int `json:"stale_localities,omitempty"`
	// Reparents sums the re-parenting repairs performed below here.
	Reparents int64 `json:"reparents,omitempty"`
	// Entries are the per-counter digests, keyed by locality-wildcarded
	// counter name, sorted by key.
	Entries []core.Digest `json:"entries"`
}

// maxTreeEntries bounds one pushed or pulled digest, mirroring the bulk
// plane's name bound: a parcel stays O(counter types), never O(fleet).
const maxTreeEntries = maxBulkNames

// codeTreeNone classifies tree ops against a server with no attached
// tree node.
const codeTreeNone = "tree_none"

// TreeNode is the server-side delegate for the aggregation-tree ops —
// implemented by tree.Node.
type TreeNode interface {
	// TreePush accepts one child subtree's digest.
	TreePush(d *TreeDigest) error
	// TreeSnapshot returns this node's latest folded view.
	TreeSnapshot() (*TreeDigest, error)
}

// treeNodeHolder wraps the interface for atomic.Value (which needs a
// consistent concrete type).
type treeNodeHolder struct{ tn TreeNode }

// SetTreeNode attaches (or, with nil, detaches) the aggregation-tree
// delegate served at tree_push/tree_pull. Safe to call while serving.
func (s *Server) SetTreeNode(tn TreeNode) { s.treeNode.Store(treeNodeHolder{tn}) }

func (s *Server) treeNodeRef() TreeNode {
	h, _ := s.treeNode.Load().(treeNodeHolder)
	return h.tn
}

func (s *Server) treePush(req request) response {
	tn := s.treeNodeRef()
	if tn == nil {
		return response{Error: "parcel: no aggregation-tree node on this locality", Code: codeTreeNone}
	}
	if req.Tree == nil {
		s.meters.errors.Inc()
		return response{Error: (&ProtocolError{Reason: "tree_push without a digest"}).Error(), Code: codeProtocol}
	}
	if len(req.Tree.Entries) > maxTreeEntries {
		s.meters.errors.Inc()
		return response{Error: fmt.Sprintf("parcel: tree_push limited to %d entries", maxTreeEntries), Code: codeProtocol}
	}
	if err := tn.TreePush(req.Tree); err != nil {
		return response{Error: err.Error()}
	}
	return response{}
}

func (s *Server) treePull(request) response {
	tn := s.treeNodeRef()
	if tn == nil {
		return response{Error: "parcel: no aggregation-tree node on this locality", Code: codeTreeNone}
	}
	d, err := tn.TreeSnapshot()
	if err != nil {
		return response{Error: err.Error()}
	}
	return response{Tree: d}
}

// TreePush delivers a subtree digest to the peer's tree node. Bounded
// like every parcel; idempotent, so the transport retries it across
// reconnects.
func (c *Client) TreePush(ctx context.Context, d *TreeDigest) error {
	if d == nil {
		return fmt.Errorf("parcel: nil tree digest")
	}
	if len(d.Entries) > maxTreeEntries {
		return fmt.Errorf("parcel: tree digest exceeds %d entries", maxTreeEntries)
	}
	resp, err := c.roundTripContext(ctx, request{Op: "tree_push", Tree: d})
	return treeErr(resp, err)
}

// TreePull reads the peer's latest folded subtree view.
func (c *Client) TreePull(ctx context.Context) (*TreeDigest, error) {
	resp, err := c.roundTripContext(ctx, request{Op: "tree_pull"})
	if err := treeErr(resp, err); err != nil {
		return nil, err
	}
	if resp.Tree == nil {
		return nil, fmt.Errorf("parcel: empty tree_pull response")
	}
	return resp.Tree, nil
}

// treeErr maps a tree op's wire outcome onto the typed vocabulary.
func treeErr(resp response, err error) error {
	if err == nil {
		return nil
	}
	if resp.Code == codeTreeNone {
		return fmt.Errorf("%w: %s", ErrNoTreeNode, resp.Error)
	}
	return err
}
