package parcel

// Tests of the bulk counter sampling path: bind_bulk/evaluate_bulk wire
// ops, the one-round-trip-per-sample guarantee (asserted against the
// client's own parcel meters), re-binding across reconnects, the
// per-counter fallback against servers without the ops, and stale
// partial results during a partition.

import (
	"bufio"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/parcel/chaos"
)

// newBulkFixture starts a server over a registry with n raw counters
// and returns their full names with a connected client.
func newBulkFixture(t *testing.T, n int, opts ClientOptions) ([]string, []*core.RawCounter, *Server, *Client) {
	t.Helper()
	reg := core.NewRegistry()
	names := make([]string, n)
	counters := make([]*core.RawCounter, n)
	for i := 0; i < n; i++ {
		cn := core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "worker-thread", int64(i))...)
		c := core.NewRawCounter(cn, core.Info{TypeName: "/threads/count/cumulative"})
		c.Add(int64(100 + i))
		reg.MustRegister(c)
		names[i] = cn.String()
		counters[i] = c
	}
	srv, err := Serve("127.0.0.1:0", reg, 0)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := DialContext(context.Background(), srv.Addr(), nil, 1, opts)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return names, counters, srv, cli
}

// TestEvaluateBulkOneRoundTrip is the acceptance criterion: after the
// one-time bind, sampling K counters costs exactly one request/response
// exchange, measured by the client's own /parcels count/sent meter.
func TestEvaluateBulkOneRoundTrip(t *testing.T) {
	const k = 16
	names, counters, _, cli := newBulkFixture(t, k, ClientOptions{})
	set := cli.NewBulkSet(names)

	// First evaluation pays the bind: two round trips.
	before := cli.meters.sent.Load()
	vals, err := set.Evaluate(false)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if got := cli.meters.sent.Load() - before; got != 2 {
		t.Fatalf("first bulk sample sent %d parcels, want 2 (bind + evaluate)", got)
	}
	if len(vals) != k {
		t.Fatalf("got %d values, want %d", len(vals), k)
	}
	for i, v := range vals {
		if v.Name != names[i] {
			t.Fatalf("value %d is %q, want %q (bulk results must keep bind order)", i, v.Name, names[i])
		}
		if v.Raw != int64(100+i) || v.Status != core.StatusValid {
			t.Fatalf("value %d = %+v", i, v)
		}
	}

	// Steady state: one round trip per sample, K counters each.
	const samples = 10
	before = cli.meters.sent.Load()
	for s := 0; s < samples; s++ {
		if _, err := set.Evaluate(false); err != nil {
			t.Fatalf("sample %d: %v", s, err)
		}
	}
	if got := cli.meters.sent.Load() - before; got != samples {
		t.Fatalf("%d bulk samples sent %d parcels, want exactly %d (1 round trip per sample)",
			samples, got, samples)
	}

	// Evaluate-and-reset applies remotely through the bulk path.
	if _, err := set.Evaluate(true); err != nil {
		t.Fatal(err)
	}
	for i, c := range counters {
		if c.Load() != 0 {
			t.Fatalf("counter %d not reset through bulk evaluate", i)
		}
	}
}

// TestEvaluateBulkConvenience exercises Client.EvaluateBulk's cached
// set: repeated calls with the same names reuse one server-side set.
func TestEvaluateBulkConvenience(t *testing.T) {
	names, _, _, cli := newBulkFixture(t, 4, ClientOptions{})
	if _, err := cli.EvaluateBulk(names, false); err != nil {
		t.Fatalf("EvaluateBulk: %v", err)
	}
	before := cli.meters.sent.Load()
	for i := 0; i < 5; i++ {
		if _, err := cli.EvaluateBulk(names, false); err != nil {
			t.Fatal(err)
		}
	}
	if got := cli.meters.sent.Load() - before; got != 5 {
		t.Fatalf("cached bulk set sent %d parcels for 5 samples, want 5", got)
	}
}

// TestEvaluateBulkLenientBinding: an unknown name degrades its slot to
// StatusCounterUnknown; the rest of the set reads normally.
func TestEvaluateBulkLenientBinding(t *testing.T) {
	names, _, _, cli := newBulkFixture(t, 2, ClientOptions{})
	withBad := append([]string{names[0]}, "/nosuch{locality#0/total}/count/thing", names[1])
	vals, err := cli.NewBulkSet(withBad).Evaluate(false)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if len(vals) != 3 {
		t.Fatalf("got %d values", len(vals))
	}
	if vals[0].Status != core.StatusValid || vals[2].Status != core.StatusValid {
		t.Fatalf("good slots = %v / %v", vals[0].Status, vals[2].Status)
	}
	if vals[1].Status != core.StatusCounterUnknown {
		t.Fatalf("bad slot status = %v, want CounterUnknown", vals[1].Status)
	}
}

// TestEvaluateBulkRebindAfterReconnect: the server-side set dies with
// the connection; the client must re-bind transparently and keep
// sampling at one round trip per sample afterwards.
func TestEvaluateBulkRebindAfterReconnect(t *testing.T) {
	names, _, _, cli := newBulkFixture(t, 8, ClientOptions{})
	set := cli.NewBulkSet(names)
	if _, err := set.Evaluate(false); err != nil {
		t.Fatalf("warm-up: %v", err)
	}
	firstID := set.id

	// Sever the connection behind the client's back.
	cli.mu.Lock()
	cli.dropConnLocked()
	cli.mu.Unlock()

	vals, err := set.Evaluate(false)
	if err != nil {
		t.Fatalf("post-reconnect Evaluate: %v", err)
	}
	if len(vals) != 8 || vals[0].Status != core.StatusValid {
		t.Fatalf("post-reconnect values = %+v", vals)
	}
	if set.id == firstID && set.gen == 1 {
		t.Fatal("set was not re-bound after reconnect")
	}
	// And steady state is one round trip again.
	before := cli.meters.sent.Load()
	if _, err := set.Evaluate(false); err != nil {
		t.Fatal(err)
	}
	if got := cli.meters.sent.Load() - before; got != 1 {
		t.Fatalf("post-rebind sample cost %d round trips, want 1", got)
	}
}

// TestEvaluateBulkStaleDuringPartition: a partitioned endpoint serves
// the whole set from the last-known-value cache, values tagged
// StatusStale, uncached names as explicit StatusCounterUnknown gaps.
func TestEvaluateBulkStaleDuringPartition(t *testing.T) {
	reg := core.NewRegistry()
	var names []string
	var counters []*core.RawCounter
	for i := 0; i < 3; i++ {
		cn := core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "worker-thread", int64(i))...)
		c := core.NewRawCounter(cn, core.Info{TypeName: "/threads/count/cumulative"})
		c.Add(int64(10 * (i + 1)))
		reg.MustRegister(c)
		names = append(names, cn.String())
		counters = append(counters, c)
	}
	srv, err := Serve("127.0.0.1:0", reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	inj := chaos.New(chaos.Config{})
	cli, err := DialContext(context.Background(), srv.Addr(), nil, 1, ClientOptions{
		Timeout: 200 * time.Millisecond, Retries: 1,
		BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond,
		BreakerThreshold: -1, ServeStale: true, Dialer: inj.Dialer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	// Warm the cache for the first two names only; the third never binds.
	warm := cli.NewBulkSet(names[:2])
	if _, err := warm.Evaluate(false); err != nil {
		t.Fatalf("warm-up: %v", err)
	}

	inj.Partition(true)
	counters[0].Add(1) // remote moves on; the cache cannot see it

	full := cli.NewBulkSet(names)
	vals, err := full.Evaluate(false)
	if err != nil {
		t.Fatalf("partitioned bulk evaluate returned error: %v", err)
	}
	if vals[0].Status != core.StatusStale || vals[0].Raw != 10 {
		t.Fatalf("cached slot = %+v, want stale 10", vals[0])
	}
	if vals[1].Status != core.StatusStale || vals[1].Raw != 20 {
		t.Fatalf("cached slot = %+v, want stale 20", vals[1])
	}
	if vals[2].Status != core.StatusCounterUnknown {
		t.Fatalf("uncached slot = %+v, want CounterUnknown gap", vals[2])
	}

	inj.Partition(false)
	healed, err := full.Evaluate(false)
	if err != nil {
		t.Fatalf("post-heal: %v", err)
	}
	if healed[0].Status != core.StatusValid || healed[0].Raw != 11 {
		t.Fatalf("post-heal slot = %+v, want fresh 11", healed[0])
	}
}

// legacyServer speaks the parcel protocol but predates the bulk ops:
// bind_bulk/evaluate_bulk get the stock "unknown op" error, evaluate
// works. It stands in for an old locality a new monitor attaches to.
func legacyServer(t *testing.T, reg *core.Registry) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			go func(conn net.Conn) {
				defer conn.Close()
				rd := bufio.NewReader(conn)
				for {
					line, err := rd.ReadBytes('\n')
					if err != nil {
						return
					}
					var req request
					var resp response
					if err := json.Unmarshal(line, &req); err != nil {
						resp.Error = "malformed"
					} else if req.Op == "evaluate" {
						v, err := reg.Evaluate(req.Name, req.Reset)
						if err != nil {
							resp.Error = err.Error()
						} else {
							resp.Value = &v
						}
					} else {
						resp.Error = fmt.Sprintf("parcel: unknown op %q", req.Op)
					}
					out, _ := json.Marshal(resp)
					if _, err := conn.Write(append(out, '\n')); err != nil {
						return
					}
				}
			}(conn)
		}
	}()
	return ln
}

// TestEvaluateBulkFallbackAgainstOldServer: against a server without
// the bulk ops the set silently degrades to one Evaluate per counter —
// correct results, no error, Fallback() reported.
func TestEvaluateBulkFallbackAgainstOldServer(t *testing.T) {
	reg := core.NewRegistry()
	var names []string
	for i := 0; i < 4; i++ {
		cn := core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "worker-thread", int64(i))...)
		c := core.NewRawCounter(cn, core.Info{TypeName: "/threads/count/cumulative"})
		c.Add(int64(7 * (i + 1)))
		reg.MustRegister(c)
		names = append(names, cn.String())
	}
	ln := legacyServer(t, reg)
	cli, err := Dial(ln.Addr().String(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })

	set := cli.NewBulkSet(names)
	vals, err := set.Evaluate(false)
	if err != nil {
		t.Fatalf("Evaluate against legacy server: %v", err)
	}
	if !set.Fallback() {
		t.Fatal("set did not report per-counter fallback")
	}
	for i, v := range vals {
		if v.Raw != int64(7*(i+1)) || v.Status != core.StatusValid {
			t.Fatalf("fallback value %d = %+v", i, v)
		}
	}
	// Fallback sticks: the next sample goes straight to per-counter
	// (len(names) round trips, no bulk probe).
	before := cli.meters.sent.Load()
	if _, err := set.Evaluate(false); err != nil {
		t.Fatal(err)
	}
	if got := cli.meters.sent.Load() - before; got != int64(len(names)) {
		t.Fatalf("fallback sample sent %d parcels, want %d", got, len(names))
	}
}

// TestBulkLimits: the server bounds per-connection bulk state.
func TestBulkLimits(t *testing.T) {
	names, _, _, cli := newBulkFixture(t, 1, ClientOptions{})
	// Empty set refused.
	if _, err := cli.roundTrip(request{Op: "bind_bulk"}); err == nil {
		t.Fatal("empty bind_bulk accepted")
	}
	// Set count per connection bounded.
	for i := 0; i < maxBulkSetsPerConn; i++ {
		if _, err := cli.roundTrip(request{Op: "bind_bulk", Names: names}); err != nil {
			t.Fatalf("bind %d: %v", i, err)
		}
	}
	if _, err := cli.roundTrip(request{Op: "bind_bulk", Names: names}); err == nil {
		t.Fatalf("bind beyond the %d-set limit accepted", maxBulkSetsPerConn)
	}
}
