package parcel

// Distributed spawn: the parcel layer's promotion from "counter reads +
// bare invoke" to a fault-tolerant work plane (docs/FAULTS.md, "Remote
// spawn"). A spawn ships an action invocation with a per-spawn
// idempotency key and the client's remaining deadline budget; the server
// executes it asynchronously in a keyed task table, so
//
//   - a retried spawn after a dropped response executes exactly once
//     (the key dedupes into the existing entry),
//   - the client's deadline propagates: the action runs under a context
//     bounded by the shipped budget,
//   - cancelling the client side sends a best-effort spawn_cancel op and
//     the server abandons the task,
//   - tasks whose client stopped touching them past a lease are reaped
//     as orphans (counted in /runtime{...}/remote/count/orphaned).
//
// Completion is observed by polling, but not one round trip per future:
// each Client runs a single spawn manager goroutine that folds every
// pending key into one spawn_poll op per tick, the same
// one-exchange-per-sample shape the bulk counter plane uses.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// spawnState is the wire form of one spawn's condition.
type spawnState struct {
	Key    string          `json:"key"`
	Action string          `json:"action,omitempty"`
	State  string          `json:"state"` // "running" | "done"
	Result json.RawMessage `json:"result,omitempty"`
	Error  string          `json:"error,omitempty"`
	Code   string          `json:"code,omitempty"`
}

const (
	spawnRunning = "running"
	spawnDone    = "done"
)

// maxSpawnWait caps the server-side spawn_poll completion wait so a
// poll can never hold a handler (and the client's serialised
// connection) hostage.
const maxSpawnWait = 2 * time.Second

// maxSpawnPollKeys bounds one spawn_poll's key list, mirroring
// maxBulkNames.
const maxSpawnPollKeys = 4096

// ---------------------------------------------------------------------------
// Server side: the keyed task table.

// spawnTask is one remote spawn living in the server's table.
type spawnTask struct {
	key    string
	action string
	cancel context.CancelFunc
	done   chan struct{}

	// Written exactly once (completeOnce) before done closes.
	completeOnce sync.Once
	result       json.RawMessage
	errMsg       string
	errCode      string

	lastTouch atomic.Int64 // unix nanos of the client's last spawn/poll/cancel
	doneAt    atomic.Int64 // unix nanos of completion; 0 while running
	orphaned  atomic.Bool
}

func (t *spawnTask) running() bool { return t.doneAt.Load() == 0 }

// complete resolves the task once; later calls (a cancelled action body
// returning after the reaper force-completed it) are no-ops.
func (t *spawnTask) complete(result json.RawMessage, errMsg, errCode string) {
	t.completeOnce.Do(func() {
		t.result = result
		t.errMsg = errMsg
		t.errCode = errCode
		t.doneAt.Store(time.Now().UnixNano())
		close(t.done)
	})
}

// state snapshots the task for the wire.
func (t *spawnTask) state() spawnState {
	st := spawnState{Key: t.key, Action: t.action, State: spawnRunning}
	select {
	case <-t.done:
		st.State = spawnDone
		st.Result = t.result
		st.Error = t.errMsg
		st.Code = t.errCode
	default:
	}
	return st
}

// spawnTable is the server-level spawn state: alive across connections
// (a retried spawn typically arrives on a fresh connection after a
// fault), bounded, and leased.
type spawnTable struct {
	opts     ServerOptions
	orphaned *core.RawCounter

	mu    sync.Mutex
	tasks map[string]*spawnTask
	// completedCh is closed and replaced whenever any task completes —
	// the broadcast spawn_poll waits on.
	completedCh chan struct{}
}

func newSpawnTable(opts ServerOptions, orphaned *core.RawCounter) *spawnTable {
	return &spawnTable{
		opts:        opts,
		orphaned:    orphaned,
		tasks:       make(map[string]*spawnTask),
		completedCh: make(chan struct{}),
	}
}

// lookup returns the task for key, refreshing its lease.
func (tb *spawnTable) lookup(key string) *spawnTask {
	tb.mu.Lock()
	t := tb.tasks[key]
	tb.mu.Unlock()
	if t != nil {
		t.lastTouch.Store(time.Now().UnixNano())
	}
	return t
}

// notifyCompleted wakes every poller blocked on any key.
func (tb *spawnTable) notifyCompleted() {
	tb.mu.Lock()
	close(tb.completedCh)
	tb.completedCh = make(chan struct{})
	tb.mu.Unlock()
}

// waitCh returns the current broadcast channel.
func (tb *spawnTable) waitCh() <-chan struct{} {
	tb.mu.Lock()
	defer tb.mu.Unlock()
	return tb.completedCh
}

// reap is the orphan/retention sweep loop; it exits when closed closes.
func (tb *spawnTable) reap(wg *sync.WaitGroup, closed <-chan struct{}) {
	defer wg.Done()
	period := tb.opts.SpawnLease / 4
	if tb.opts.SpawnLease <= 0 || period > time.Second {
		period = time.Second
	}
	if period < 5*time.Millisecond {
		period = 5 * time.Millisecond
	}
	tick := time.NewTicker(period)
	defer tick.Stop()
	for {
		select {
		case <-closed:
			return
		case <-tick.C:
			tb.sweep(time.Now())
		}
	}
}

// sweep cancels orphaned running tasks and evicts completed entries past
// retention.
func (tb *spawnTable) sweep(now time.Time) {
	var orphans []*spawnTask
	tb.mu.Lock()
	for key, t := range tb.tasks {
		if t.running() {
			if tb.opts.SpawnLease > 0 && now.UnixNano()-t.lastTouch.Load() > int64(tb.opts.SpawnLease) {
				orphans = append(orphans, t)
			}
			continue
		}
		if now.UnixNano()-t.doneAt.Load() > int64(tb.opts.SpawnRetention) {
			delete(tb.tasks, key)
		}
	}
	tb.mu.Unlock()
	for _, t := range orphans {
		if t.orphaned.CompareAndSwap(false, true) {
			tb.orphaned.Inc()
			t.cancel()
			// Force-complete so a non-cooperative action body cannot keep
			// the entry "running" (and re-orphanable) forever; if the body
			// later returns, its complete() is a no-op.
			t.complete(nil, "parcel: spawn orphaned: client lease expired", codeCancelled)
			tb.notifyCompleted()
		}
	}
}

// spawn handles the spawn op: dedupe by key, or admit and launch.
func (s *Server) spawn(req request) response {
	if req.Key == "" {
		return response{Error: "parcel: spawn needs an idempotency key", Code: codeProtocol}
	}
	m, _ := s.actions.Load().(*ActionMap)
	if m == nil {
		return response{Error: "parcel: this server exposes no actions", Code: codeActionUnknown}
	}
	fn := m.lookup(req.Action)
	if fn == nil {
		return response{Error: fmt.Sprintf("parcel: unknown action %q", req.Action), Code: codeActionUnknown}
	}

	tb := s.spawns
	tb.mu.Lock()
	if t := tb.tasks[req.Key]; t != nil {
		// Dedupe: the retried spawn of a non-idempotent action observes
		// the one existing execution instead of starting a second.
		tb.mu.Unlock()
		t.lastTouch.Store(time.Now().UnixNano())
		st := t.state()
		return response{Spawn: &st}
	}
	if len(tb.tasks) >= tb.opts.MaxSpawnTasks {
		tb.mu.Unlock()
		return response{Error: fmt.Sprintf("parcel: spawn table full (%d tasks)", tb.opts.MaxSpawnTasks), Code: codeSpawnLimit}
	}
	var ctx context.Context
	var cancel context.CancelFunc
	if req.BudgetMS > 0 {
		// Deadline propagation: the client shipped its remaining budget;
		// the action runs under it even if the client dies.
		ctx, cancel = context.WithTimeout(s.baseCtx, time.Duration(req.BudgetMS)*time.Millisecond)
	} else {
		ctx, cancel = context.WithCancel(s.baseCtx)
	}
	t := &spawnTask{key: req.Key, action: req.Action, cancel: cancel, done: make(chan struct{})}
	t.lastTouch.Store(time.Now().UnixNano())
	tb.tasks[req.Key] = t
	tb.mu.Unlock()

	// The action body runs off the handler goroutine so the connection
	// stays responsive (polls, cancels, other spawns). Not on s.wg: a
	// stuck body must not wedge Close — its scope dies with baseCtx.
	go func() {
		defer cancel()
		result, err := runAction(ctx, req.Action, fn, req.Arg)
		switch {
		case err == nil:
			t.complete(result, "", "")
		case ctx.Err() != nil:
			t.complete(nil, "parcel: spawn cancelled: "+ctx.Err().Error(), codeCancelled)
		default:
			code := codeActionError
			var pe *actionPanicError
			if errors.As(err, &pe) {
				code = codeActionPanic
			}
			t.complete(nil, err.Error(), code)
		}
		tb.notifyCompleted()
	}()
	st := t.state()
	return response{Spawn: &st}
}

// spawnPoll handles the spawn_poll op: report the state of every listed
// key, waiting up to WaitMS (capped) for at least one of the running
// ones to complete first.
func (s *Server) spawnPoll(req request) response {
	if len(req.Keys) == 0 {
		return response{Error: "parcel: spawn_poll needs at least one key", Code: codeProtocol}
	}
	if len(req.Keys) > maxSpawnPollKeys {
		return response{Error: fmt.Sprintf("parcel: spawn_poll limited to %d keys", maxSpawnPollKeys), Code: codeProtocol}
	}
	wait := time.Duration(req.WaitMS) * time.Millisecond
	if wait > maxSpawnWait {
		wait = maxSpawnWait
	}
	deadline := time.Now().Add(wait)
	for {
		states := make([]spawnState, len(req.Keys))
		anyDone := false
		ch := s.spawns.waitCh()
		for i, key := range req.Keys {
			t := s.spawns.lookup(key)
			if t == nil {
				states[i] = spawnState{Key: key, State: spawnDone,
					Error: "parcel: no spawn with key " + key, Code: codeSpawnUnknown}
				anyDone = true
				continue
			}
			states[i] = t.state()
			if states[i].State == spawnDone {
				anyDone = true
			}
		}
		remaining := time.Until(deadline)
		if anyDone || remaining <= 0 {
			return response{Spawns: states}
		}
		// Nothing resolved yet: block on the table-wide completion
		// broadcast (or the wait budget) and re-examine. The channel was
		// captured before the scan, so a completion between scan and wait
		// is not lost.
		timer := time.NewTimer(remaining)
		select {
		case <-ch:
		case <-timer.C:
		case <-s.closed:
		}
		timer.Stop()
		select {
		case <-s.closed:
			return response{Spawns: states}
		default:
		}
	}
}

// spawnCancel handles the spawn_cancel op — best-effort, idempotent.
func (s *Server) spawnCancel(req request) response {
	if req.Key == "" {
		return response{Error: "parcel: spawn_cancel needs a key", Code: codeProtocol}
	}
	t := s.spawns.lookup(req.Key)
	if t == nil {
		return response{Error: "parcel: no spawn with key " + req.Key, Code: codeSpawnUnknown}
	}
	t.cancel()
	t.complete(nil, "parcel: spawn cancelled by client", codeCancelled)
	s.spawns.notifyCompleted()
	st := t.state()
	return response{Spawn: &st}
}

// ---------------------------------------------------------------------------
// Client side.

// Typed spawn/action failures, so callers classify without string
// matching (the agas spawn router's failover decisions depend on this).
var (
	// ErrActionUnknown reports that the target registers no action with
	// the requested name — distinct from the action running and failing.
	ErrActionUnknown = errors.New("parcel: unknown action")
	// ErrSpawnCancelled reports a spawn the server abandoned: client
	// cancel op, shipped budget expiry, or orphan lease.
	ErrSpawnCancelled = errors.New("parcel: remote spawn cancelled")
	// ErrSpawnUnknown reports a poll/cancel for a key the server does not
	// hold — after a server restart or retention eviction. The spawn
	// definitely is not running there; re-spawning under the same key is
	// safe.
	ErrSpawnUnknown = errors.New("parcel: unknown spawn key")
	// ErrSpawnLimit reports a refused spawn: the server's table is full.
	ErrSpawnLimit = errors.New("parcel: spawn table full")
	// ErrSpawnLost reports a spawn whose server became unreachable for
	// longer than the client poller's patience; whether it ran is
	// unknowable from this side.
	ErrSpawnLost = errors.New("parcel: spawn lost: server unreachable")
)

// ActionError is an error returned (or panicked) by the remote action
// body itself: the spawn plane and transport worked.
type ActionError struct {
	Action string
	Msg    string
	Panic  bool
}

// Error implements error.
func (e *ActionError) Error() string {
	if e.Panic {
		return fmt.Sprintf("parcel: action %q panicked: %s", e.Action, e.Msg)
	}
	return fmt.Sprintf("parcel: action %q: %s", e.Action, e.Msg)
}

// SpawnStatus is the client-side view of one spawn.
type SpawnStatus struct {
	// Done reports whether the spawn reached a terminal state.
	Done bool
	// Result is the action's JSON result when Done with a nil Err.
	Result json.RawMessage
	// Err classifies a terminal failure: *ActionError, ErrActionUnknown,
	// ErrSpawnCancelled, ErrSpawnUnknown or ErrSpawnLimit (wrapped).
	Err error
}

// spawnErr maps a wire state onto the typed error vocabulary, counting
// action-level faults on the client's meters.
func (c *Client) spawnErr(action string, code, msg string) error {
	switch code {
	case codeActionUnknown:
		c.meters.actionUnknown.Inc()
		return fmt.Errorf("%w %q: %s", ErrActionUnknown, action, msg)
	case codeActionError:
		c.meters.actionErrors.Inc()
		return &ActionError{Action: action, Msg: msg}
	case codeActionPanic:
		c.meters.actionErrors.Inc()
		return &ActionError{Action: action, Msg: msg, Panic: true}
	case codeCancelled:
		return fmt.Errorf("%w: %s", ErrSpawnCancelled, msg)
	case codeSpawnUnknown:
		return fmt.Errorf("%w: %s", ErrSpawnUnknown, msg)
	case codeSpawnLimit:
		return fmt.Errorf("%w: %s", ErrSpawnLimit, msg)
	default:
		return &ServerError{Msg: msg}
	}
}

func stateToStatus(c *Client, action string, st spawnState) SpawnStatus {
	out := SpawnStatus{Done: st.State == spawnDone}
	if !out.Done {
		return out
	}
	if st.Error != "" || st.Code != "" {
		out.Err = c.spawnErr(action, st.Code, st.Error)
		return out
	}
	out.Result = st.Result
	return out
}

// budgetMS converts ctx's remaining deadline into the wire budget: 0
// means unbounded, and a sub-millisecond remainder still ships 1ms so an
// almost-expired deadline doesn't degrade to "no deadline".
func budgetMS(ctx context.Context) int64 {
	dl, ok := ctx.Deadline()
	if !ok {
		return 0
	}
	ms := time.Until(dl).Milliseconds()
	if ms <= 0 {
		return 1
	}
	return ms
}

// SpawnAction launches one remote spawn attempt under key. The request
// is sent exactly once — the transport never blindly re-sends it — so a
// transport error leaves the execution ambiguous and the caller decides:
// re-issuing SpawnAction with the same key is always safe (the server
// dedupes), which is how the spawn plane retries non-idempotent actions.
func (c *Client) SpawnAction(ctx context.Context, action string, arg json.RawMessage, key string) (SpawnStatus, error) {
	resp, err := c.roundTripContext(ctx, request{
		Op: "spawn", Action: action, Arg: arg, Key: key, BudgetMS: budgetMS(ctx),
	})
	if err != nil {
		var se *ServerError
		if errors.As(err, &se) {
			return SpawnStatus{Done: true, Err: c.spawnErr(action, resp.Code, se.Msg)},
				nil
		}
		return SpawnStatus{}, err
	}
	if resp.Spawn == nil {
		return SpawnStatus{}, &ProtocolError{Reason: "spawn response carries no state"}
	}
	return stateToStatus(c, action, *resp.Spawn), nil
}

// PollSpawns reports the state of every key in one round trip, letting
// the server hold the request up to wait for a completion first.
func (c *Client) PollSpawns(ctx context.Context, keys []string, wait time.Duration) (map[string]SpawnStatus, error) {
	resp, err := c.roundTripContext(ctx, request{
		Op: "spawn_poll", Keys: keys, WaitMS: wait.Milliseconds(),
	})
	if err != nil {
		return nil, err
	}
	out := make(map[string]SpawnStatus, len(resp.Spawns))
	for _, st := range resp.Spawns {
		out[st.Key] = stateToStatus(c, st.Action, st)
	}
	return out, nil
}

// CancelSpawn asks the server to abandon a spawn — best effort: an
// unreachable server just means the orphan lease will reap it.
func (c *Client) CancelSpawn(ctx context.Context, key string) error {
	_, err := c.roundTripContext(ctx, request{Op: "spawn_cancel", Key: key})
	var se *ServerError
	if errors.As(err, &se) {
		// Cancelling an already-evicted spawn is success, not failure.
		return nil
	}
	return err
}

// ---------------------------------------------------------------------------
// The spawn manager: one poll loop per client multiplexing every
// pending spawn into a single spawn_poll per tick.

// spawnPollPatience is how many consecutive failed poll exchanges the
// manager tolerates before declaring every pending spawn lost — the
// never-hang backstop for futures waited on without any deadline.
const spawnPollPatience = 50

// spawnMgr tracks this client's in-flight spawns.
type spawnMgr struct {
	c *Client

	mu      sync.Mutex
	pending map[string]chan SpawnStatus // key → 1-buffered delivery channel
	running bool
	pollErr int // consecutive failed poll exchanges
}

func (c *Client) mgr() *spawnMgr {
	c.spawnMu.Lock()
	defer c.spawnMu.Unlock()
	if c.spawns == nil {
		c.spawns = &spawnMgr{c: c, pending: make(map[string]chan SpawnStatus)}
	}
	return c.spawns
}

// register enrols a key; the returned channel delivers its terminal
// status exactly once. Starts the poll loop if it is not running.
func (m *spawnMgr) register(key string) chan SpawnStatus {
	ch := make(chan SpawnStatus, 1)
	m.mu.Lock()
	m.pending[key] = ch
	if !m.running {
		m.running = true
		go m.loop()
	}
	m.mu.Unlock()
	return ch
}

// deregister abandons a key (the waiter gave up); no delivery follows.
func (m *spawnMgr) deregister(key string) {
	m.mu.Lock()
	delete(m.pending, key)
	m.mu.Unlock()
}

// snapshot returns up to maxSpawnPollKeys pending keys.
func (m *spawnMgr) snapshot() []string {
	m.mu.Lock()
	defer m.mu.Unlock()
	keys := make([]string, 0, len(m.pending))
	for k := range m.pending {
		if len(keys) == maxSpawnPollKeys {
			break
		}
		keys = append(keys, k)
	}
	return keys
}

// deliver resolves one pending key.
func (m *spawnMgr) deliver(key string, st SpawnStatus) {
	m.mu.Lock()
	ch := m.pending[key]
	delete(m.pending, key)
	m.mu.Unlock()
	if ch != nil {
		ch <- st
	}
}

// loop polls while anything is pending, then parks (running=false).
func (m *spawnMgr) loop() {
	const pollWait = 150 * time.Millisecond
	for {
		keys := m.snapshot()
		if len(keys) == 0 {
			m.mu.Lock()
			if len(m.pending) == 0 {
				m.running = false
				m.mu.Unlock()
				return
			}
			m.mu.Unlock()
			continue
		}
		if m.c.isClosed() {
			for _, k := range keys {
				m.deliver(k, SpawnStatus{Done: true, Err: ErrClientClosed})
			}
			continue
		}
		states, err := m.c.PollSpawns(context.Background(), keys, pollWait)
		if err != nil {
			m.mu.Lock()
			m.pollErr++
			exhausted := m.pollErr >= spawnPollPatience
			m.mu.Unlock()
			if exhausted {
				// The endpoint has been unreachable for the whole patience
				// window: every pending spawn resolves as lost rather than
				// hanging a deadline-less waiter forever.
				for _, k := range keys {
					m.deliver(k, SpawnStatus{Done: true,
						Err: fmt.Errorf("%w: %v", ErrSpawnLost, err)})
				}
				m.mu.Lock()
				m.pollErr = 0
				m.mu.Unlock()
				continue
			}
			// Transient (or breaker-open fast-fail): pace the retry so an
			// open breaker does not spin the loop.
			time.Sleep(pollWait)
			continue
		}
		m.mu.Lock()
		m.pollErr = 0
		m.mu.Unlock()
		for key, st := range states {
			if st.Done {
				m.deliver(key, st)
			}
		}
	}
}

// WaitSpawn waits for the spawn under key to reach a terminal state,
// sharing the client's single multiplexed poll loop with every other
// in-flight spawn. If ctx ends first, a best-effort cancel op is sent
// and ctx's error returned. The wait itself can never hang: an endpoint
// that stays unreachable resolves the status as ErrSpawnLost.
func (c *Client) WaitSpawn(ctx context.Context, key string) (SpawnStatus, error) {
	m := c.mgr()
	ch := m.register(key)
	select {
	case st := <-ch:
		return st, nil
	case <-ctx.Done():
		m.deregister(key)
		// Drain a delivery that raced the deregistration.
		select {
		case st := <-ch:
			return st, nil
		default:
		}
		cctx, cancel := context.WithTimeout(context.Background(), time.Second)
		defer cancel()
		_ = c.CancelSpawn(cctx, key)
		return SpawnStatus{}, ctx.Err()
	}
}

// spawnKey generates a client-unique idempotency key.
func (c *Client) spawnKey() string {
	return fmt.Sprintf("s%x-%x", c.spawnEpoch, c.spawnSeq.Add(1))
}

// spawnAttempts is how many times SpawnJSON re-issues a spawn whose
// outcome is ambiguous (transport failure) before giving up.
const spawnAttempts = 3

// SpawnJSON runs a remote action through the spawn plane end to end on
// this client: spawn with a fresh idempotency key (retrying the same key
// after ambiguous transport failures — the dedupe table makes that safe
// for non-idempotent actions), deadline budget shipped from ctx, then a
// multiplexed wait. Cancelling ctx cancels the remote task best-effort.
// Unlike Invoke, a retried SpawnJSON never double-executes.
func (c *Client) SpawnJSON(ctx context.Context, action string, arg json.RawMessage) (json.RawMessage, error) {
	key := c.spawnKey()
	var lastErr error
	for attempt := 0; attempt < spawnAttempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st, err := c.SpawnAction(ctx, action, arg, key)
		if err != nil {
			lastErr = err
			c.meters.retries.Inc()
			continue
		}
		if st.Done {
			return st.Result, st.Err
		}
		st, err = c.WaitSpawn(ctx, key)
		if err != nil {
			return nil, err
		}
		return st.Result, st.Err
	}
	// Still ambiguous after every attempt: bound the server-side work.
	cctx, cancel := context.WithTimeout(context.Background(), time.Second)
	defer cancel()
	_ = c.CancelSpawn(cctx, key)
	return nil, lastErr
}

// SpawnOn launches a remote action through the fault-tolerant spawn
// plane and returns a future — the distributed analogue of taskrt's
// Async, superseding InvokeAsync for anything that may be retried or
// cancelled. For replica failover across localities, use
// agas.SpawnRemoteCtx instead.
func SpawnOn[A, R any](ctx context.Context, c *Client, action string, arg A) *RemoteFuture[R] {
	f := &RemoteFuture[R]{done: make(chan struct{})}
	raw, err := json.Marshal(arg)
	if err != nil {
		f.err = fmt.Errorf("parcel: spawn %q argument marshal: %w", action, err)
		close(f.done)
		return f
	}
	go func() {
		defer close(f.done)
		res, err := c.SpawnJSON(ctx, action, raw)
		if err != nil {
			f.err = err
			return
		}
		if len(res) > 0 {
			f.err = json.Unmarshal(res, &f.value)
		}
	}()
	return f
}
