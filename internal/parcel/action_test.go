package parcel

import (
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/core"
)

// fibArg/fibRes exercise typed action marshalling.
type fibArg struct {
	N int `json:"n"`
}
type fibRes struct {
	Value int64 `json:"value"`
}

func fibPlain(n int) int64 {
	if n < 2 {
		return int64(n)
	}
	return fibPlain(n-1) + fibPlain(n-2)
}

func newActionFixture(t *testing.T) (*ActionMap, *Client) {
	t.Helper()
	reg := core.NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	actions := NewActionMap()
	srv.WithActions(actions)
	cli, err := Dial(srv.Addr(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return actions, cli
}

func TestInvokeTypedAction(t *testing.T) {
	actions, cli := newActionFixture(t)
	err := RegisterAction(actions, "fib", func(a fibArg) (fibRes, error) {
		return fibRes{Value: fibPlain(a.N)}, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	var res fibRes
	if err := cli.Invoke("fib", fibArg{N: 20}, &res); err != nil {
		t.Fatal(err)
	}
	if res.Value != 6765 {
		t.Fatalf("remote fib(20) = %d", res.Value)
	}
}

func TestInvokeAsyncFuture(t *testing.T) {
	actions, cli := newActionFixture(t)
	if err := RegisterAction(actions, "square", func(n int) (int, error) {
		return n * n, nil
	}); err != nil {
		t.Fatal(err)
	}
	fs := make([]*RemoteFuture[int], 8)
	for i := range fs {
		fs[i] = InvokeAsync[int, int](cli, "square", i)
	}
	for i, f := range fs {
		v, err := f.Get()
		if err != nil || v != i*i {
			t.Fatalf("square(%d) = %d, %v", i, v, err)
		}
		if !f.Ready() {
			t.Fatal("not ready after Get")
		}
	}
}

func TestInvokeErrors(t *testing.T) {
	actions, cli := newActionFixture(t)
	if err := RegisterAction(actions, "fail", func(struct{}) (int, error) {
		return 0, fmt.Errorf("deliberate failure")
	}); err != nil {
		t.Fatal(err)
	}
	if err := cli.Invoke("fail", struct{}{}, nil); err == nil ||
		!strings.Contains(err.Error(), "deliberate failure") {
		t.Fatalf("action error not propagated: %v", err)
	}
	if err := cli.Invoke("nope", nil, nil); err == nil ||
		!strings.Contains(err.Error(), "unknown action") {
		t.Fatalf("unknown action: %v", err)
	}
	// Malformed argument JSON reaches the decoder as a type error.
	if err := cli.Invoke("fail", "not-a-struct", nil); err == nil {
		t.Fatal("type-mismatched argument accepted")
	}
}

func TestInvokeWithoutActionTable(t *testing.T) {
	reg := core.NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := Dial(srv.Addr(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	if err := cli.Invoke("anything", nil, nil); err == nil ||
		!strings.Contains(err.Error(), "no actions") {
		t.Fatalf("invoke on action-less server: %v", err)
	}
}

func TestActionRegistration(t *testing.T) {
	m := NewActionMap()
	if err := m.Register("", func(json.RawMessage) (any, error) { return nil, nil }); err == nil {
		t.Fatal("empty name accepted")
	}
	if err := m.Register("x", nil); err == nil {
		t.Fatal("nil function accepted")
	}
	if err := m.Register("x", func(json.RawMessage) (any, error) { return 1, nil }); err != nil {
		t.Fatal(err)
	}
	if err := m.Register("x", func(json.RawMessage) (any, error) { return 2, nil }); err == nil {
		t.Fatal("duplicate accepted")
	}
	if names := m.Names(); len(names) != 1 || names[0] != "x" {
		t.Fatalf("names = %v", names)
	}
}

func TestConcurrentInvocations(t *testing.T) {
	actions, cli := newActionFixture(t)
	if err := RegisterAction(actions, "echo", func(s string) (string, error) {
		return s, nil
	}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			want := fmt.Sprintf("msg-%d", i)
			var got string
			if err := cli.Invoke("echo", want, &got); err != nil || got != want {
				t.Errorf("echo: %q, %v", got, err)
			}
		}(i)
	}
	wg.Wait()
}

func TestServerSurvivesGarbage(t *testing.T) {
	// A malformed request line yields an error response, not a dead
	// server.
	_, cli := newActionFixture(t)
	cli.mu.Lock()
	if _, err := cli.conn.Write([]byte("this is not json\n")); err != nil {
		cli.mu.Unlock()
		t.Fatal(err)
	}
	line, err := cli.rd.ReadBytes('\n')
	cli.mu.Unlock()
	if err != nil || !strings.Contains(string(line), "malformed") {
		t.Fatalf("garbage handling: %q %v", line, err)
	}
	// The connection keeps working.
	if _, err := cli.Types(); err != nil {
		t.Fatalf("connection dead after garbage: %v", err)
	}
}
