package parcel

// Bulk counter sampling: a BulkSet ships its counter names to the server
// once (bind_bulk) and thereafter samples all of them in a single
// request/response round trip per call (evaluate_bulk) — K counters for
// the wire cost of one, instead of the K round trips of per-counter
// Evaluate. Against servers predating the bulk ops the set transparently
// degrades to the per-counter loop, so a new monitor can watch an old
// locality.

import (
	"context"
	"errors"
	"strings"

	"repro/internal/core"
)

// BulkSet is a fixed set of remote counters sampled together. It is the
// remote analogue of core.BindSet: names are resolved (and shipped) once
// at bind time, evaluation is one round trip. Safe for concurrent use.
//
// The server compiles the set into per-connection state, so a reconnect
// invalidates it; the set re-binds automatically (tracked via the
// client's connection generation, with the server's "unknown bulk set"
// error as the backstop).
type BulkSet struct {
	c     *Client
	names []string

	stMu     chan struct{} // 1-token semaphore serialising bind state
	id       int64
	gen      uint64 // connection generation the set was bound on
	bound    bool
	fallback bool // server lacks the bulk ops; use per-counter Evaluate
}

// NewBulkSet prepares a bulk sampling set over the given full counter
// names. No network traffic happens until the first Evaluate; binding is
// lenient — a name the server cannot resolve occupies its slot with
// StatusCounterUnknown instead of failing the set.
func (c *Client) NewBulkSet(names []string) *BulkSet {
	s := &BulkSet{
		c:     c,
		names: append([]string(nil), names...),
		stMu:  make(chan struct{}, 1),
	}
	s.stMu <- struct{}{}
	return s
}

// Names returns the counter names in the set, in result order.
func (s *BulkSet) Names() []string { return append([]string(nil), s.names...) }

// Fallback reports whether the set degraded to per-counter sampling
// because the server does not implement the bulk ops.
func (s *BulkSet) Fallback() bool {
	<-s.stMu
	f := s.fallback
	s.stMu <- struct{}{}
	return f
}

// lock acquires the set's bind state, honouring ctx.
func (s *BulkSet) lock(ctx context.Context) error {
	select {
	case <-s.stMu:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Evaluate samples every counter in the set, optionally resetting each
// as part of the same read: one round trip on a bulk-capable server.
func (s *BulkSet) Evaluate(reset bool) ([]core.Value, error) {
	return s.EvaluateContext(context.Background(), reset)
}

// EvaluateContext is Evaluate under a caller deadline. Results keep the
// set's name order. With ServeStale enabled on the client, an
// unreachable endpoint yields the last-known value per counter with
// Status core.StatusStale (names never successfully read report
// StatusCounterUnknown) and a nil error as long as at least one counter
// could be served — the partial-results contract of docs/FAULTS.md.
func (s *BulkSet) EvaluateContext(ctx context.Context, reset bool) ([]core.Value, error) {
	if err := s.lock(ctx); err != nil {
		return nil, err
	}
	defer func() { s.stMu <- struct{}{} }()
	if s.fallback {
		return s.evaluatePerCounter(ctx, reset)
	}
	// Re-bind on first use and after any reconnect (the server-side set
	// lives in per-connection state). The generation check avoids a
	// round trip that is known to fail; the unknown-set error below
	// catches the race where the connection dies between check and send.
	for attempt := 0; attempt < 2; attempt++ {
		if !s.bound || s.gen != s.c.connGen.Load() {
			if err := s.bindLocked(ctx); err != nil {
				if s.fallback {
					return s.evaluatePerCounter(ctx, reset)
				}
				return s.maybeStale(err)
			}
		}
		resp, err := s.c.roundTripContext(ctx, request{Op: "evaluate_bulk", SetID: s.id, Reset: reset})
		switch {
		case err == nil:
			for _, v := range resp.Values {
				if v.Status == core.StatusValid || v.Status == core.StatusNewData {
					s.c.cacheStore(v.Name, v)
				}
			}
			return resp.Values, nil
		case isUnknownBulkSet(err):
			// The server lost the set (reconnect landed between our
			// generation check and the exchange); bind again and retry.
			s.bound = false
		case isUnknownOp(err):
			s.fallback = true
			return s.evaluatePerCounter(ctx, reset)
		default:
			return s.maybeStale(err)
		}
	}
	return s.maybeStale(&ServerError{Msg: errUnknownBulkSet})
}

// bindLocked ships the name set to the server. Caller holds the state
// semaphore. An old server answering "unknown op" flips the set into
// per-counter fallback.
func (s *BulkSet) bindLocked(ctx context.Context) error {
	// Capture the generation before the exchange: if the bind itself
	// rides a fresh connection, the response belongs to that connection
	// and the generation observed after success is the right one to pin.
	resp, err := s.c.roundTripContext(ctx, request{Op: "bind_bulk", Names: s.names})
	if err != nil {
		if isUnknownOp(err) {
			s.fallback = true
		}
		return err
	}
	s.id = resp.SetID
	s.gen = s.c.connGen.Load()
	s.bound = true
	return nil
}

// evaluatePerCounter is the compatibility path against servers without
// the bulk ops: one round trip per counter, same result shape. The
// client's own stale/retry machinery applies per counter.
func (s *BulkSet) evaluatePerCounter(ctx context.Context, reset bool) ([]core.Value, error) {
	values := make([]core.Value, len(s.names))
	var lastErr error
	ok := 0
	for i, name := range s.names {
		v, err := s.c.EvaluateContext(ctx, name, reset)
		values[i] = v
		if err != nil {
			lastErr = err
			if ctx.Err() != nil {
				return values, ctx.Err()
			}
			continue
		}
		ok++
	}
	if ok == 0 && lastErr != nil {
		return values, lastErr
	}
	return values, nil
}

// maybeStale serves the whole set from the client's last-known-value
// cache after a transport failure, mirroring EvaluateContext's stale
// semantics across a batch: cached names come back as StatusStale with
// their original capture time, uncached names as StatusCounterUnknown.
// The error is swallowed only if stale serving is on, the failure is a
// transport one, and at least one counter could be served.
func (s *BulkSet) maybeStale(err error) ([]core.Value, error) {
	if !s.c.opts.ServeStale || !staleOK(err) {
		return nil, err
	}
	values := make([]core.Value, len(s.names))
	served := 0
	for i, name := range s.names {
		if v, ok := s.c.cacheLoad(name); ok {
			v.Status = core.StatusStale
			values[i] = v
			served++
		} else {
			values[i] = core.Value{Name: name, Status: core.StatusCounterUnknown}
		}
	}
	if served == 0 {
		return nil, err
	}
	return values, nil
}

// EvaluateBulk samples the named counters in one round trip (after a
// one-time bind per connection), caching the compiled set for repeated
// calls with the same name list — the convenience entry point used by
// agas.EvaluateAcross. For a long-lived sampling loop, hold a NewBulkSet
// directly.
func (c *Client) EvaluateBulk(names []string, reset bool) ([]core.Value, error) {
	return c.EvaluateBulkContext(context.Background(), names, reset)
}

// EvaluateBulkContext is EvaluateBulk under a caller deadline.
func (c *Client) EvaluateBulkContext(ctx context.Context, names []string, reset bool) ([]core.Value, error) {
	key := strings.Join(names, "\x00")
	c.bulkMu.Lock()
	if c.bulkSets == nil {
		c.bulkSets = make(map[string]*BulkSet)
	}
	s, ok := c.bulkSets[key]
	if !ok {
		s = c.NewBulkSet(names)
		c.bulkSets[key] = s
	}
	c.bulkMu.Unlock()
	return s.EvaluateContext(ctx, reset)
}

// isUnknownOp matches the server error produced for an op the server
// does not implement — how the client detects a pre-bulk peer.
func isUnknownOp(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && strings.Contains(se.Msg, "unknown op")
}

// isUnknownBulkSet matches the server error for a bulk set id the
// connection no longer holds.
func isUnknownBulkSet(err error) bool {
	var se *ServerError
	return errors.As(err, &se) && strings.Contains(se.Msg, errUnknownBulkSet)
}
