// Package chaos is a deterministic fault-injection transport for the
// parcel layer: it wraps net.Conn / net.Listener / a dial function and
// — driven by a seeded PRNG or explicit fault budgets — delays, drops,
// truncates and corrupts parcel frames, or partitions the endpoint
// entirely. It lets every fault-tolerance path (retries, deadlines,
// circuit breaker, stale serving) be exercised in-process and
// reproducibly, with exact injected-fault counts to assert against.
//
// Faults fire on Write, i.e. per parcel frame, since both client and
// server emit one Write (or bufio flush) per parcel:
//
//   - delay: the frame is delivered only after Delay has passed — the
//     writer returns immediately, modelling network latency, so a
//     reader's deadline still governs how long the caller blocks.
//   - drop: the connection is closed mid-exchange without delivering
//     the frame.
//   - truncate: half the frame is delivered, then the connection is
//     closed — a mid-frame connection drop.
//   - corrupt: one non-delimiter byte is flipped and the frame
//     delivered in full — the peer sees syntactically broken JSON.
//   - partition: every write on existing connections fails and new
//     dials are refused until the partition heals.
package chaos

import (
	"context"
	"errors"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Injected-fault sentinel errors, as seen by the faulted writer.
var (
	// ErrInjectedDrop reports a connection killed before the frame left.
	ErrInjectedDrop = errors.New("chaos: injected connection drop")
	// ErrInjectedTruncate reports a connection killed mid-frame.
	ErrInjectedTruncate = errors.New("chaos: injected mid-frame truncation")
	// ErrPartitioned reports a refused dial or write while partitioned.
	ErrPartitioned = errors.New("chaos: endpoint partitioned")
)

// Config sets the probabilistic fault mix. Probabilities are evaluated
// per frame in the order drop, delay, truncate, corrupt over a single
// roll, so their sum must be ≤ 1.
type Config struct {
	// Seed fixes the PRNG; the same seed yields the same fault schedule.
	Seed int64
	// DropProb is the probability a frame's connection is dropped.
	DropProb float64
	// DelayProb is the probability a frame is delivered Delay late.
	DelayProb float64
	// Delay is how late a delayed frame arrives.
	Delay time.Duration
	// TruncateProb is the probability a frame is cut mid-way.
	TruncateProb float64
	// CorruptProb is the probability one byte of a frame is flipped.
	CorruptProb float64
}

// Stats is a snapshot of injected-fault counts.
type Stats struct {
	Delays, Drops, Truncates, Corrupts, Refusals int64
}

type fault int

const (
	faultNone fault = iota
	faultDrop
	faultDelay
	faultTruncate
	faultCorrupt
)

// Injector decides, deterministically, which frames fault. One
// injector may back any number of connections; the fault schedule is
// the interleaving-independent sequence of PRNG rolls plus whatever
// explicit budgets (ForceDrop etc.) are outstanding.
type Injector struct {
	cfg Config

	mu  sync.Mutex
	rng *rand.Rand

	partitioned atomic.Bool

	// Explicit budgets consumed before any probabilistic roll — for
	// table tests that need "exactly the next N frames fault".
	forceDrops, forceDelays, forceTruncs, forceCorrupts atomic.Int64

	delays, drops, truncates, corrupts, refusals atomic.Int64
}

// New builds an injector for the given fault mix.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}
}

// Partition cuts (true) or heals (false) the endpoint: dials are
// refused and writes on live wrapped connections fail.
func (in *Injector) Partition(on bool) { in.partitioned.Store(on) }

// Partitioned reports whether the endpoint is currently cut off.
func (in *Injector) Partitioned() bool { return in.partitioned.Load() }

// ForceDrop makes the next n frames drop, ahead of any probability.
func (in *Injector) ForceDrop(n int) { in.forceDrops.Add(int64(n)) }

// ForceDelay makes the next n frames arrive Delay late.
func (in *Injector) ForceDelay(n int) { in.forceDelays.Add(int64(n)) }

// ForceTruncate makes the next n frames cut off mid-way.
func (in *Injector) ForceTruncate(n int) { in.forceTruncs.Add(int64(n)) }

// ForceCorrupt makes the next n frames carry one flipped byte.
func (in *Injector) ForceCorrupt(n int) { in.forceCorrupts.Add(int64(n)) }

// Stats snapshots how many faults have actually been injected.
func (in *Injector) Stats() Stats {
	return Stats{
		Delays:    in.delays.Load(),
		Drops:     in.drops.Load(),
		Truncates: in.truncates.Load(),
		Corrupts:  in.corrupts.Load(),
		Refusals:  in.refusals.Load(),
	}
}

// takeBudget consumes one unit of an explicit fault budget.
func takeBudget(b *atomic.Int64) bool {
	for {
		n := b.Load()
		if n <= 0 {
			return false
		}
		if b.CompareAndSwap(n, n-1) {
			return true
		}
	}
}

// roll decides the fate of one frame.
func (in *Injector) roll() fault {
	switch {
	case takeBudget(&in.forceDrops):
		return faultDrop
	case takeBudget(&in.forceDelays):
		return faultDelay
	case takeBudget(&in.forceTruncs):
		return faultTruncate
	case takeBudget(&in.forceCorrupts):
		return faultCorrupt
	}
	c := in.cfg
	if c.DropProb == 0 && c.DelayProb == 0 && c.TruncateProb == 0 && c.CorruptProb == 0 {
		return faultNone
	}
	in.mu.Lock()
	r := in.rng.Float64()
	in.mu.Unlock()
	switch {
	case r < c.DropProb:
		return faultDrop
	case r < c.DropProb+c.DelayProb:
		return faultDelay
	case r < c.DropProb+c.DelayProb+c.TruncateProb:
		return faultTruncate
	case r < c.DropProb+c.DelayProb+c.TruncateProb+c.CorruptProb:
		return faultCorrupt
	default:
		return faultNone
	}
}

// Wrap puts one connection behind the injector.
func (in *Injector) Wrap(c net.Conn) net.Conn { return &conn{Conn: c, in: in} }

// Dialer returns a parcel.ClientOptions.Dialer that dials TCP and
// wraps every connection; dials are refused while partitioned.
func (in *Injector) Dialer() func(ctx context.Context, addr string) (net.Conn, error) {
	var d net.Dialer
	return func(ctx context.Context, addr string) (net.Conn, error) {
		if in.partitioned.Load() {
			in.refusals.Add(1)
			return nil, ErrPartitioned
		}
		c, err := d.DialContext(ctx, "tcp", addr)
		if err != nil {
			return nil, err
		}
		return in.Wrap(c), nil
	}
}

// Listen wraps a listener so every accepted connection faults — the
// server-side mirror of Dialer, for parcel.NewServer.
func (in *Injector) Listen(l net.Listener) net.Listener { return &listener{Listener: l, in: in} }

type listener struct {
	net.Listener
	in *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	if l.in.partitioned.Load() {
		l.in.refusals.Add(1)
		c.Close()
		return nil, ErrPartitioned
	}
	return l.in.Wrap(c), nil
}

// conn applies the injector's verdicts to each written frame.
type conn struct {
	net.Conn
	in *Injector
}

func (c *conn) Write(p []byte) (int, error) {
	if c.in.partitioned.Load() {
		c.in.refusals.Add(1)
		c.Conn.Close()
		return 0, ErrPartitioned
	}
	switch c.in.roll() {
	case faultDrop:
		c.in.drops.Add(1)
		c.Conn.Close()
		return 0, ErrInjectedDrop
	case faultDelay:
		c.in.delays.Add(1)
		// Deliver late from the writer's point of view: the frame is in
		// flight, the writer unblocked, and the reader's deadline — not
		// this sleep — bounds how long anyone waits.
		data := append([]byte(nil), p...)
		inner := c.Conn
		time.AfterFunc(c.in.cfg.Delay, func() {
			inner.SetWriteDeadline(time.Now().Add(time.Second))
			inner.Write(data)
		})
		return len(p), nil
	case faultTruncate:
		c.in.truncates.Add(1)
		n, _ := c.Conn.Write(p[:len(p)/2])
		c.Conn.Close()
		return n, ErrInjectedTruncate
	case faultCorrupt:
		c.in.corrupts.Add(1)
		data := append([]byte(nil), p...)
		flipNonDelimiter(data)
		return c.Conn.Write(data)
	default:
		return c.Conn.Write(p)
	}
}

// flipNonDelimiter corrupts one byte while preserving the newline
// framing, so the peer reads a complete — but broken — parcel.
func flipNonDelimiter(p []byte) {
	for i := range p {
		if p[i] != '\n' {
			p[i] ^= 0x20
			return
		}
	}
}
