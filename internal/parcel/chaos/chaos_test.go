package chaos

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"
)

// pipeServer accepts one connection and echoes lines back.
func pipeServer(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ln.Close() })
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func(c net.Conn) {
				defer c.Close()
				buf := make([]byte, 1024)
				for {
					n, err := c.Read(buf)
					if err != nil {
						return
					}
					if _, err := c.Write(buf[:n]); err != nil {
						return
					}
				}
			}(c)
		}
	}()
	return ln
}

func TestSeededScheduleIsDeterministic(t *testing.T) {
	cfg := Config{Seed: 42, DropProb: 0.2, DelayProb: 0.1, CorruptProb: 0.1}
	a, b := New(cfg), New(cfg)
	for i := 0; i < 1000; i++ {
		if fa, fb := a.roll(), b.roll(); fa != fb {
			t.Fatalf("roll %d diverged: %v vs %v", i, fa, fb)
		}
	}
	// And a different seed diverges somewhere.
	c := New(Config{Seed: 43, DropProb: 0.2, DelayProb: 0.1, CorruptProb: 0.1})
	same := true
	for i := 0; i < 1000; i++ {
		if a.roll() != c.roll() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical schedules")
	}
}

func TestForcedFaultsFireExactly(t *testing.T) {
	in := New(Config{}) // no probabilistic faults
	in.ForceDrop(2)
	in.ForceCorrupt(1)
	got := []fault{in.roll(), in.roll(), in.roll(), in.roll()}
	want := []fault{faultDrop, faultDrop, faultCorrupt, faultNone}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("roll sequence = %v, want %v", got, want)
		}
	}
	st := in.Stats()
	if st.Drops != 0 || st.Corrupts != 0 {
		t.Fatalf("stats counted rolls that never hit a conn: %+v", st)
	}
}

func TestDropClosesConnection(t *testing.T) {
	ln := pipeServer(t)
	in := New(Config{})
	cc, err := in.Dialer()(context.Background(), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	if _, err := cc.Write([]byte("ok\n")); err != nil {
		t.Fatalf("clean write: %v", err)
	}
	in.ForceDrop(1)
	if _, err := cc.Write([]byte("doomed\n")); !errors.Is(err, ErrInjectedDrop) {
		t.Fatalf("dropped write error = %v", err)
	}
	if st := in.Stats(); st.Drops != 1 {
		t.Fatalf("drop not counted: %+v", st)
	}
	// The underlying connection is dead.
	if _, err := cc.Read(make([]byte, 1)); err == nil {
		t.Fatal("read on dropped connection succeeded")
	}
}

func TestDelayDeliversLate(t *testing.T) {
	ln := pipeServer(t)
	in := New(Config{Delay: 150 * time.Millisecond})
	cc, err := in.Dialer()(context.Background(), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	in.ForceDelay(1)
	start := time.Now()
	if _, err := cc.Write([]byte("late\n")); err != nil {
		t.Fatalf("delayed write should not error: %v", err)
	}
	if since := time.Since(start); since > 50*time.Millisecond {
		t.Fatalf("delayed write blocked the writer for %v", since)
	}
	buf := make([]byte, 16)
	cc.SetReadDeadline(time.Now().Add(2 * time.Second))
	n, err := cc.Read(buf)
	if err != nil || string(buf[:n]) != "late\n" {
		t.Fatalf("echo after delay = %q, %v", buf[:n], err)
	}
	if since := time.Since(start); since < 140*time.Millisecond {
		t.Fatalf("frame arrived after only %v, want ≥ Delay", since)
	}
}

func TestCorruptFlipsByteKeepsFraming(t *testing.T) {
	ln := pipeServer(t)
	in := New(Config{})
	cc, err := in.Dialer()(context.Background(), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	in.ForceCorrupt(1)
	if _, err := cc.Write([]byte("abc\n")); err != nil {
		t.Fatalf("corrupted write should still deliver: %v", err)
	}
	buf := make([]byte, 16)
	cc.SetReadDeadline(time.Now().Add(time.Second))
	n, err := cc.Read(buf)
	if err != nil {
		t.Fatal(err)
	}
	got := string(buf[:n])
	if got == "abc\n" {
		t.Fatal("frame arrived uncorrupted")
	}
	if got[len(got)-1] != '\n' {
		t.Fatalf("corruption broke framing: %q", got)
	}
}

func TestPartitionRefusesDialsAndWrites(t *testing.T) {
	ln := pipeServer(t)
	in := New(Config{})
	dial := in.Dialer()
	cc, err := dial(context.Background(), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	in.Partition(true)
	if _, err := dial(context.Background(), ln.Addr().String()); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("dial during partition = %v", err)
	}
	if _, err := cc.Write([]byte("x\n")); !errors.Is(err, ErrPartitioned) {
		t.Fatalf("write during partition = %v", err)
	}
	if st := in.Stats(); st.Refusals != 2 {
		t.Fatalf("refusals = %d, want 2", st.Refusals)
	}
	in.Partition(false)
	cc2, err := dial(context.Background(), ln.Addr().String())
	if err != nil {
		t.Fatalf("dial after heal: %v", err)
	}
	cc2.Close()
}

func TestTruncateCutsMidFrame(t *testing.T) {
	ln := pipeServer(t)
	in := New(Config{})
	cc, err := in.Dialer()(context.Background(), ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer cc.Close()
	in.ForceTruncate(1)
	n, err := cc.Write([]byte("0123456789\n"))
	if !errors.Is(err, ErrInjectedTruncate) {
		t.Fatalf("truncated write error = %v", err)
	}
	if n == 0 || n >= 11 {
		t.Fatalf("truncated write delivered %d bytes, want partial frame", n)
	}
}
