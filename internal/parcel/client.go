package parcel

// The fault-tolerant client side of the parcel transport. Every remote
// call runs under a deadline (context and/or per-attempt timeout), the
// single TCP connection is re-established transparently after a
// failure, idempotent requests are retried with exponential backoff and
// jitter, a circuit breaker fast-fails a persistently dead endpoint,
// and — when enabled — Evaluate serves last-known values tagged
// core.StatusStale while the endpoint is unreachable, so a monitor
// degrades instead of dying with the thing it observes.

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"math/rand"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// ServerError is an error reported by the remote server itself: the
// transport worked, the request did not. Server errors are never
// retried and never trip the circuit breaker.
type ServerError struct{ Msg string }

// Error implements error.
func (e *ServerError) Error() string { return e.Msg }

// ErrClientClosed is returned by calls on a closed client.
var ErrClientClosed = errors.New("parcel: client closed")

// DialError marks a transport failure where no request reached the
// endpoint at all — the (re-)dial itself failed. The distinction
// matters to the spawn plane: a spawn that failed with a DialError (or
// ErrCircuitOpen) definitely did not execute and may be redirected to a
// replica, while any other transport failure is ambiguous and must be
// retried on the same endpoint under the same idempotency key.
type DialError struct{ Err error }

// Error implements error, passing the underlying dial failure through
// unchanged.
func (e *DialError) Error() string { return e.Err.Error() }

// Unwrap exposes the underlying failure to errors.Is/As.
func (e *DialError) Unwrap() error { return e.Err }

// ClientOptions tunes the client's fault tolerance. The zero value
// selects the defaults noted on each field.
type ClientOptions struct {
	// Timeout is the per-attempt deadline covering write + read of one
	// exchange (and a reconnect, if needed). Default 10s; negative
	// disables. A context deadline, when earlier, wins.
	Timeout time.Duration
	// Retries is how many times an idempotent request is re-sent after a
	// transport failure (total attempts = Retries+1). Default 2;
	// negative disables retries.
	Retries int
	// BackoffBase is the first retry delay; it doubles per retry up to
	// BackoffCap, with ±50% jitter. Defaults 25ms and 1s.
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// BreakerThreshold is the number of consecutive transport failures
	// that opens the circuit breaker. Default 5; negative disables the
	// breaker.
	BreakerThreshold int
	// BreakerCooldown is how long the breaker stays open before letting
	// one probe through (half-open). Default 2s.
	BreakerCooldown time.Duration
	// ServeStale makes Evaluate return the last successfully read value
	// — Status core.StatusStale, original capture Time preserved —
	// instead of an error while the endpoint is unreachable.
	ServeStale bool
	// Seed seeds the jitter PRNG so failure schedules are reproducible;
	// 0 uses a fixed default seed.
	Seed int64
	// Dialer overrides how connections are (re-)established — the hook
	// for fault injection (package chaos). Default net.Dialer.
	Dialer func(ctx context.Context, addr string) (net.Conn, error)
}

func (o ClientOptions) withDefaults() ClientOptions {
	if o.Timeout == 0 {
		o.Timeout = 10 * time.Second
	}
	if o.Retries == 0 {
		o.Retries = 2
	} else if o.Retries < 0 {
		o.Retries = 0
	}
	if o.BackoffBase <= 0 {
		o.BackoffBase = 25 * time.Millisecond
	}
	if o.BackoffCap <= 0 {
		o.BackoffCap = time.Second
	}
	if o.BreakerThreshold == 0 {
		o.BreakerThreshold = 5
	}
	if o.BreakerCooldown <= 0 {
		o.BreakerCooldown = 2 * time.Second
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.Dialer == nil {
		var d net.Dialer
		o.Dialer = func(ctx context.Context, addr string) (net.Conn, error) {
			return d.DialContext(ctx, "tcp", addr)
		}
	}
	return o
}

// Client queries a remote registry. It is safe for concurrent use; each
// request/response pair is serialised on the single connection, which
// is re-dialled transparently after transport failures.
type Client struct {
	addr    string
	opts    ClientOptions
	meters  *meters
	breaker *breaker

	mu   sync.Mutex // serialises exchanges; guards conn, rd, rng
	conn net.Conn
	rd   *bufio.Reader
	rng  *rand.Rand

	// connGen counts connection establishments. Bulk sets record the
	// generation they were bound on; a mismatch means the server-side
	// set died with the old connection and the client re-binds before
	// sampling instead of burning a round trip on a known failure.
	connGen atomic.Uint64

	bulkMu   sync.Mutex
	bulkSets map[string]*BulkSet // EvaluateBulk's cache, keyed by joined names

	// The spawn plane (spawn.go): the manager multiplexing in-flight
	// spawn polls, and the idempotency-key source.
	spawnMu    sync.Mutex
	spawns     *spawnMgr
	spawnEpoch int64
	spawnSeq   atomic.Int64

	cacheMu sync.Mutex
	cache   map[string]core.Value

	closeMu sync.Mutex
	closed  bool
}

// Dial connects to a parcel server with default fault tolerance. Pass a
// registry and locality to register the client's own parcel counters,
// or nil to skip.
func Dial(addr string, reg *core.Registry, locality int64) (*Client, error) {
	return DialContext(context.Background(), addr, reg, locality, ClientOptions{})
}

// DialContext connects with explicit fault-tolerance options; the
// context bounds the initial dial.
func DialContext(ctx context.Context, addr string, reg *core.Registry, locality int64, opts ClientOptions) (*Client, error) {
	opts = opts.withDefaults()
	m, err := newMeters(reg, locality, reg != nil)
	if err != nil {
		return nil, err
	}
	var gauge *core.RawCounter
	if reg != nil {
		gauge = newParcelCounter(locality, "breaker/state",
			"circuit breaker state (0 closed, 1 open, 2 half-open)", core.UnitNone)
		if err := reg.Register(gauge); err != nil {
			return nil, err
		}
	}
	c := &Client{
		addr:       addr,
		opts:       opts,
		meters:     m,
		breaker:    newBreaker(opts.BreakerThreshold, opts.BreakerCooldown, gauge),
		rng:        rand.New(rand.NewSource(opts.Seed)),
		cache:      make(map[string]core.Value),
		spawnEpoch: time.Now().UnixNano(),
	}
	dctx, cancel := c.attemptContext(ctx)
	defer cancel()
	conn, err := opts.Dialer(dctx, addr)
	if err != nil {
		return nil, err
	}
	c.conn = conn
	c.rd = bufio.NewReader(conn)
	c.connGen.Add(1)
	return c, nil
}

// Close closes the connection; in-flight calls fail and future calls
// return ErrClientClosed.
func (c *Client) Close() error {
	c.closeMu.Lock()
	c.closed = true
	c.closeMu.Unlock()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		return nil
	}
	err := c.conn.Close()
	c.conn = nil
	c.rd = nil
	return err
}

func (c *Client) isClosed() bool {
	c.closeMu.Lock()
	defer c.closeMu.Unlock()
	return c.closed
}

// attemptContext derives the deadline of one attempt: the earlier of
// the caller's context deadline and now+Timeout.
func (c *Client) attemptContext(ctx context.Context) (context.Context, context.CancelFunc) {
	if c.opts.Timeout > 0 {
		return context.WithTimeout(ctx, c.opts.Timeout)
	}
	return context.WithCancel(ctx)
}

// roundTrip performs one exchange without external deadline — the
// compatibility entry point; the per-attempt Timeout still applies.
func (c *Client) roundTrip(req request) (response, error) {
	return c.roundTripContext(context.Background(), req)
}

// roundTripContext performs one request/response exchange with
// reconnect, retry (idempotent requests only), backoff and breaker.
func (c *Client) roundTripContext(ctx context.Context, req request) (response, error) {
	out, err := json.Marshal(req)
	if err != nil {
		return response{}, err
	}
	out = append(out, '\n')
	attempts := 1
	if req.idempotent() {
		attempts += c.opts.Retries
	}
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return response{}, err
		}
		if c.isClosed() {
			return response{}, ErrClientClosed
		}
		if !c.breaker.allow() {
			// Fast-fail: don't touch the network while the breaker is
			// open. Not counted as a transport error — nothing was sent.
			return response{}, ErrCircuitOpen
		}
		resp, err := c.attempt(ctx, out)
		if err == nil {
			c.breaker.record(true)
			if resp.Error != "" {
				// The server answered: transport is healthy, the request
				// itself failed. Never retried.
				return resp, &ServerError{Msg: resp.Error}
			}
			return resp, nil
		}
		lastErr = err
		c.meters.errors.Inc()
		if isTimeout(err) {
			c.meters.timeouts.Inc()
		}
		c.breaker.record(false)
		if ctx.Err() != nil {
			return response{}, ctx.Err()
		}
		if attempt+1 < attempts {
			c.meters.retries.Inc()
			if !c.backoff(ctx, attempt) {
				return response{}, ctx.Err()
			}
		}
	}
	return response{}, lastErr
}

// attempt performs exactly one exchange on the current connection,
// dialling a fresh one if needed; any failure tears the connection down
// so the next attempt starts clean.
func (c *Client) attempt(ctx context.Context, frame []byte) (response, error) {
	actx, cancel := c.attemptContext(ctx)
	defer cancel()
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.conn == nil {
		if c.isClosed() {
			return response{}, ErrClientClosed
		}
		conn, err := c.opts.Dialer(actx, c.addr)
		if err != nil {
			// Typed: nothing was sent, so the request definitely did not
			// execute — the spawn plane's licence to fail over.
			return response{}, &DialError{Err: mapDeadline(ctx, err)}
		}
		c.conn = conn
		c.rd = bufio.NewReader(conn)
		c.connGen.Add(1)
	}
	if dl, ok := actx.Deadline(); ok {
		c.conn.SetDeadline(dl)
	} else {
		c.conn.SetDeadline(time.Time{})
	}
	if _, err := c.conn.Write(frame); err != nil {
		c.dropConnLocked()
		return response{}, mapDeadline(ctx, err)
	}
	c.meters.sent.Inc()
	c.meters.dataSent.Add(int64(len(frame)))
	line, err := c.rd.ReadBytes('\n')
	if err != nil {
		c.dropConnLocked()
		return response{}, mapDeadline(ctx, err)
	}
	c.meters.received.Inc()
	c.meters.dataReceived.Add(int64(len(line)))
	var resp response
	if err := json.Unmarshal(line, &resp); err != nil {
		// A garbled response leaves the stream unframed; reconnect.
		c.dropConnLocked()
		return response{}, err
	}
	return resp, nil
}

func (c *Client) dropConnLocked() {
	if c.conn != nil {
		c.conn.Close()
		c.conn = nil
		c.rd = nil
	}
}

// backoff sleeps the exponential-backoff delay for the given attempt
// with ±50% jitter, bounded by ctx; it reports false if ctx expired.
func (c *Client) backoff(ctx context.Context, attempt int) bool {
	d := c.opts.BackoffBase << uint(attempt)
	if d > c.opts.BackoffCap || d <= 0 {
		d = c.opts.BackoffCap
	}
	c.mu.Lock()
	jittered := d/2 + time.Duration(c.rng.Int63n(int64(d)))
	c.mu.Unlock()
	t := time.NewTimer(jittered)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// isTimeout classifies deadline-shaped transport failures.
func isTimeout(err error) bool {
	if errors.Is(err, context.DeadlineExceeded) || errors.Is(err, os.ErrDeadlineExceeded) {
		return true
	}
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}

// mapDeadline converts an I/O timeout caused by the *caller's* expired
// context into context.DeadlineExceeded, so deadline misses surface
// uniformly regardless of which layer noticed first.
func mapDeadline(ctx context.Context, err error) error {
	if !isTimeout(err) {
		return err
	}
	if ctx.Err() != nil {
		return ctx.Err()
	}
	// The net poller can observe the shared deadline instant before the
	// context's own timer callback has run, so ctx.Err() may still be
	// nil for a miss that is genuinely the caller's: decide by clock.
	if d, ok := ctx.Deadline(); ok && !time.Now().Before(d) {
		return context.DeadlineExceeded
	}
	return err
}

// cacheStore remembers the last good reading of one counter.
func (c *Client) cacheStore(name string, v core.Value) {
	c.cacheMu.Lock()
	c.cache[name] = v
	c.cacheMu.Unlock()
}

func (c *Client) cacheLoad(name string) (core.Value, bool) {
	c.cacheMu.Lock()
	defer c.cacheMu.Unlock()
	v, ok := c.cache[name]
	return v, ok
}

// staleOK reports whether err is the kind of failure stale serving may
// paper over: the endpoint is unreachable (transport error or open
// breaker), as opposed to the server rejecting the request.
func staleOK(err error) bool {
	var se *ServerError
	return !errors.As(err, &se) && !errors.Is(err, ErrClientClosed)
}

// Evaluate reads one remote counter, optionally resetting it.
func (c *Client) Evaluate(name string, reset bool) (core.Value, error) {
	return c.EvaluateContext(context.Background(), name, reset)
}

// EvaluateContext is Evaluate under a caller deadline. With ServeStale
// enabled, an unreachable endpoint yields the last-known value with
// Status core.StatusStale (original capture Time preserved) and a nil
// error instead of failing.
func (c *Client) EvaluateContext(ctx context.Context, name string, reset bool) (core.Value, error) {
	resp, err := c.roundTripContext(ctx, request{Op: "evaluate", Name: name, Reset: reset})
	if err == nil {
		if resp.Value == nil {
			return core.Value{Name: name, Status: core.StatusInvalidData},
				errors.New("parcel: empty evaluate response")
		}
		c.cacheStore(name, *resp.Value)
		return *resp.Value, nil
	}
	if c.opts.ServeStale && staleOK(err) {
		if v, ok := c.cacheLoad(name); ok {
			v.Status = core.StatusStale
			return v, nil
		}
	}
	return core.Value{Name: name, Status: core.StatusCounterUnknown}, err
}

// Discover expands a counter pattern remotely.
func (c *Client) Discover(pattern string) ([]string, error) {
	return c.DiscoverContext(context.Background(), pattern)
}

// DiscoverContext is Discover under a caller deadline.
func (c *Client) DiscoverContext(ctx context.Context, pattern string) ([]string, error) {
	resp, err := c.roundTripContext(ctx, request{Op: "discover", Pattern: pattern})
	return resp.Names, err
}

// Types lists the remote registry's counter types.
func (c *Client) Types() ([]core.Info, error) {
	return c.TypesContext(context.Background())
}

// TypesContext is Types under a caller deadline.
func (c *Client) TypesContext(ctx context.Context) ([]core.Info, error) {
	resp, err := c.roundTripContext(ctx, request{Op: "types"})
	return resp.Infos, err
}

// AddActive adds counters to the remote active set.
func (c *Client) AddActive(pattern string) ([]string, error) {
	return c.AddActiveContext(context.Background(), pattern)
}

// AddActiveContext is AddActive under a caller deadline.
func (c *Client) AddActiveContext(ctx context.Context, pattern string) ([]string, error) {
	resp, err := c.roundTripContext(ctx, request{Op: "add_active", Pattern: pattern})
	return resp.Names, err
}

// EvaluateActive evaluates the remote active set.
func (c *Client) EvaluateActive(reset bool) ([]core.Value, error) {
	return c.EvaluateActiveContext(context.Background(), reset)
}

// EvaluateActiveContext is EvaluateActive under a caller deadline.
func (c *Client) EvaluateActiveContext(ctx context.Context, reset bool) ([]core.Value, error) {
	resp, err := c.roundTripContext(ctx, request{Op: "evaluate_active", Reset: reset})
	return resp.Values, err
}

// ResetActive resets the remote active set.
func (c *Client) ResetActive() error {
	_, err := c.roundTripContext(context.Background(), request{Op: "reset_active"})
	return err
}

// BreakerState returns the circuit breaker's current state.
func (c *Client) BreakerState() BreakerState { return c.breaker.state() }

// FaultCounts is a snapshot of the client's fault-plane counters — the
// same numbers exposed as /parcels{...}/count/{errors,retries,timeouts}.
type FaultCounts struct {
	Errors, Retries, Timeouts int64
}

// FaultCounts snapshots the client's transport failure counters.
func (c *Client) FaultCounts() FaultCounts {
	return FaultCounts{
		Errors:   c.meters.errors.Load(),
		Retries:  c.meters.retries.Load(),
		Timeouts: c.meters.timeouts.Load(),
	}
}

// RemoteCounter adapts one remote counter to the local core.Counter
// interface, so meta counters and tooling can consume remote data
// transparently — the uniformity the paper's framework is built on.
type RemoteCounter struct {
	client  *Client
	name    core.Name
	nameStr string
	info    core.Info
}

// NewRemoteCounter builds a counter proxy for a full remote name.
func NewRemoteCounter(client *Client, fullName string) (*RemoteCounter, error) {
	n, err := core.ParseName(fullName)
	if err != nil {
		return nil, err
	}
	return &RemoteCounter{
		client:  client,
		name:    n,
		nameStr: n.String(),
		info:    core.Info{TypeName: n.TypeName(), HelpText: "remote proxy for " + fullName},
	}, nil
}

// Name implements core.Counter.
func (r *RemoteCounter) Name() core.Name { return r.name }

// Info implements core.Counter.
func (r *RemoteCounter) Info() core.Info { return r.info }

// Value implements core.Counter. With ServeStale enabled on the client,
// an unreachable endpoint yields the last reading as StatusStale.
func (r *RemoteCounter) Value(reset bool) core.Value {
	v, err := r.client.Evaluate(r.nameStr, reset)
	if err != nil {
		return core.Value{Name: r.nameStr, Status: core.StatusInvalidData}
	}
	return v
}

// Reset implements core.Counter.
func (r *RemoteCounter) Reset() { _, _ = r.client.Evaluate(r.nameStr, true) }
