package parcel

// A per-endpoint circuit breaker: after BreakerThreshold consecutive
// transport failures the client stops touching the network and
// fast-fails with ErrCircuitOpen, until BreakerCooldown elapses and one
// probe request is let through (half-open). A successful probe closes
// the breaker; a failed one re-opens it. Server-reported errors never
// count — only the transport's health is judged.

import (
	"errors"
	"sync"
	"time"

	"repro/internal/core"
)

// ErrCircuitOpen is returned without touching the network while the
// endpoint's circuit breaker is open.
var ErrCircuitOpen = errors.New("parcel: circuit breaker open")

// BreakerState is the circuit breaker's position, exposed through the
// /parcels{locality#L/total}/breaker/state gauge.
type BreakerState int32

const (
	// BreakerClosed: traffic flows normally.
	BreakerClosed BreakerState = iota
	// BreakerOpen: every call fast-fails until the cooldown elapses.
	BreakerOpen
	// BreakerHalfOpen: one probe is in flight; its outcome decides.
	BreakerHalfOpen
)

// String returns the state name.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	default:
		return "invalid"
	}
}

type breaker struct {
	mu        sync.Mutex
	st        BreakerState
	failures  int // consecutive transport failures while closed
	threshold int // <=0 disables the breaker
	cooldown  time.Duration
	openedAt  time.Time
	gauge     *core.RawCounter // nil when the client registered no counters
}

func newBreaker(threshold int, cooldown time.Duration, gauge *core.RawCounter) *breaker {
	return &breaker{threshold: threshold, cooldown: cooldown, gauge: gauge}
}

// allow reports whether a request may touch the network now. While
// open it flips to half-open once the cooldown has elapsed, admitting
// exactly one probe; concurrent calls keep fast-failing until the probe
// reports back.
func (b *breaker) allow() bool {
	if b.threshold <= 0 {
		return true
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.st {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if time.Since(b.openedAt) >= b.cooldown {
			b.setLocked(BreakerHalfOpen)
			return true
		}
		return false
	default: // BreakerHalfOpen: a probe is already in flight
		return false
	}
}

// record feeds one attempt's transport outcome into the breaker.
func (b *breaker) record(ok bool) {
	if b.threshold <= 0 {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if ok {
		b.failures = 0
		if b.st != BreakerClosed {
			b.setLocked(BreakerClosed)
		}
		return
	}
	switch b.st {
	case BreakerHalfOpen:
		// The probe failed: back to fully open, restart the cooldown.
		b.openedAt = time.Now()
		b.setLocked(BreakerOpen)
	case BreakerClosed:
		b.failures++
		if b.failures >= b.threshold {
			b.openedAt = time.Now()
			b.setLocked(BreakerOpen)
		}
	}
}

func (b *breaker) setLocked(s BreakerState) {
	b.st = s
	if b.gauge != nil {
		b.gauge.Set(int64(s))
	}
}

func (b *breaker) state() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.st
}
