package parcel

// Loopback benchmarks of bulk remote sampling: K counters per sample
// through evaluate_bulk (one round trip) versus the per-counter loop (K
// round trips). TestWriteBulkBenchJSON persists the numbers into
// BENCH_taskrt.json (section "parcel_bulk") via scripts/bench.sh,
// alongside the local grain sweep.

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/core"
)

var bulkBenchKs = []int{1, 16, 128}

// newBulkBenchFixture builds a loopback server exposing n raw counters
// and a connected client, without the testing.T cleanup plumbing.
func newBulkBenchFixture(tb testing.TB, n int) ([]string, *Server, *Client) {
	tb.Helper()
	reg := core.NewRegistry()
	names := make([]string, n)
	for i := 0; i < n; i++ {
		cn := core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "worker-thread", int64(i))...)
		c := core.NewRawCounter(cn, core.Info{TypeName: "/threads/count/cumulative"})
		c.Add(int64(i))
		reg.MustRegister(c)
		names[i] = cn.String()
	}
	srv, err := Serve("127.0.0.1:0", reg, 0)
	if err != nil {
		tb.Fatalf("Serve: %v", err)
	}
	tb.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr(), nil, 1)
	if err != nil {
		tb.Fatalf("Dial: %v", err)
	}
	tb.Cleanup(func() { cli.Close() })
	return names, srv, cli
}

// BenchmarkEvaluateBulk measures one bulk sample of K counters over
// loopback; the round-trips/sample metric is exact (from the client's
// parcel meter) and must stay 1.
func BenchmarkEvaluateBulk(b *testing.B) {
	for _, k := range bulkBenchKs {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			names, _, cli := newBulkBenchFixture(b, k)
			set := cli.NewBulkSet(names)
			if _, err := set.Evaluate(false); err != nil { // bind outside the loop
				b.Fatal(err)
			}
			sentBefore := cli.meters.sent.Load()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := set.Evaluate(false); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			rts := float64(cli.meters.sent.Load()-sentBefore) / float64(b.N)
			b.ReportMetric(rts, "round-trips/sample")
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N)/float64(k), "ns/counter")
		})
	}
}

// BenchmarkEvaluatePerCounter is the pre-bulk access pattern — K
// Evaluate round trips per sample — kept as the comparison baseline.
func BenchmarkEvaluatePerCounter(b *testing.B) {
	for _, k := range bulkBenchKs {
		b.Run(fmt.Sprintf("K=%d", k), func(b *testing.B) {
			names, _, cli := newBulkBenchFixture(b, k)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for _, n := range names {
					if _, err := cli.Evaluate(n, false); err != nil {
						b.Fatal(err)
					}
				}
			}
		})
	}
}

// bulkBenchPoint is one row of the "parcel_bulk" BENCH section.
type bulkBenchPoint struct {
	K                   int     `json:"k"`
	NsPerSample         float64 `json:"ns_per_sample"`
	RoundTripsPerSample float64 `json:"round_trips_per_sample"`
	PerCounterNs        float64 `json:"per_counter_loop_ns_per_sample"`
	PerCounterRTs       float64 `json:"per_counter_loop_round_trips"`
}

type bulkBenchReport struct {
	GeneratedBy string           `json:"generated_by"`
	Transport   string           `json:"transport"`
	CPU         string           `json:"cpu"`
	Points      []bulkBenchPoint `json:"points"`
}

// TestWriteBulkBenchJSON merges the bulk-sampling numbers into the
// "parcel_bulk" section of BENCH_taskrt.json (path in
// TASKRT_BENCH_JSON), preserving all other sections. Driven by
// scripts/bench.sh; skipped otherwise.
func TestWriteBulkBenchJSON(t *testing.T) {
	path := os.Getenv("TASKRT_BENCH_JSON")
	if path == "" {
		t.Skip("set TASKRT_BENCH_JSON=<path> to record the bulk sampling benchmark")
	}
	rep := bulkBenchReport{
		GeneratedBy: "go test -run TestWriteBulkBenchJSON (scripts/bench.sh)",
		Transport:   "tcp loopback",
		CPU:         runtime.GOARCH,
	}
	for _, k := range bulkBenchKs {
		names, _, cli := newBulkBenchFixture(t, k)
		set := cli.NewBulkSet(names)
		if _, err := set.Evaluate(false); err != nil {
			t.Fatal(err)
		}
		const samples = 400
		sentBefore := cli.meters.sent.Load()
		begin := time.Now()
		for i := 0; i < samples; i++ {
			if _, err := set.Evaluate(false); err != nil {
				t.Fatal(err)
			}
		}
		bulkNs := float64(time.Since(begin).Nanoseconds()) / samples
		bulkRTs := float64(cli.meters.sent.Load()-sentBefore) / samples

		sentBefore = cli.meters.sent.Load()
		begin = time.Now()
		for i := 0; i < samples; i++ {
			for _, n := range names {
				if _, err := cli.Evaluate(n, false); err != nil {
					t.Fatal(err)
				}
			}
		}
		loopNs := float64(time.Since(begin).Nanoseconds()) / samples
		loopRTs := float64(cli.meters.sent.Load()-sentBefore) / samples

		rep.Points = append(rep.Points, bulkBenchPoint{
			K: k, NsPerSample: bulkNs, RoundTripsPerSample: bulkRTs,
			PerCounterNs: loopNs, PerCounterRTs: loopRTs,
		})
		t.Logf("K=%d: bulk %.0f ns/sample (%.0f RT), per-counter %.0f ns/sample (%.0f RT)",
			k, bulkNs, bulkRTs, loopNs, loopRTs)
	}

	doc := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(prev, &doc)
	}
	cur, err := json.MarshalIndent(rep, "  ", "  ")
	if err != nil {
		t.Fatal(err)
	}
	doc["parcel_bulk"] = cur
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
