package parcel

// Remote actions: the parcel layer's second job besides counter access.
// HPX applications invoke registered functions ("plain actions") on any
// locality with the same syntax as local calls; here a server exposes
// named actions whose JSON-encoded argument and result travel in
// parcels, and the client side wraps the invocation in a future-shaped
// call. Together with the counter plumbing this gives the paper's
// "unified API for both parallel and distributed applications": spawn
// locally on taskrt, or on another locality through InvokeAsync, and
// observe both through the same counters.

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"sync"
)

// ActionFunc is a registered remote entry point: JSON argument in, JSON
// result out.
type ActionFunc func(arg json.RawMessage) (any, error)

// ActionCtxFunc is a context-aware remote entry point: ctx carries the
// spawning client's propagated deadline budget and cancellation (spawn
// ops) — a long-running action should observe it, so a cancelled or
// orphaned spawn actually stops working.
type ActionCtxFunc func(ctx context.Context, arg json.RawMessage) (any, error)

// ActionMap holds a server's registered actions. Safe for concurrent
// registration and dispatch.
type ActionMap struct {
	mu      sync.RWMutex
	actions map[string]ActionCtxFunc
}

// NewActionMap creates an empty action table.
func NewActionMap() *ActionMap {
	return &ActionMap{actions: make(map[string]ActionCtxFunc)}
}

// Register binds a name to a context-blind function; duplicate names
// error. Prefer RegisterCtx for anything long-running.
func (m *ActionMap) Register(name string, fn ActionFunc) error {
	if fn == nil {
		return fmt.Errorf("parcel: invalid action registration %q", name)
	}
	return m.RegisterCtx(name, func(_ context.Context, raw json.RawMessage) (any, error) {
		return fn(raw)
	})
}

// RegisterCtx binds a name to a context-aware function; duplicate names
// error.
func (m *ActionMap) RegisterCtx(name string, fn ActionCtxFunc) error {
	if name == "" || fn == nil {
		return fmt.Errorf("parcel: invalid action registration %q", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.actions[name]; dup {
		return fmt.Errorf("parcel: action %q already registered", name)
	}
	m.actions[name] = fn
	return nil
}

// RegisterAction adapts a typed Go function into an action: the
// argument is decoded from JSON into A, the result encoded from R.
func RegisterAction[A, R any](m *ActionMap, name string, fn func(A) (R, error)) error {
	return RegisterActionCtx(m, name, func(_ context.Context, a A) (R, error) { return fn(a) })
}

// RegisterActionCtx is RegisterAction for context-aware functions: the
// action observes its spawn's propagated deadline and cancellation.
func RegisterActionCtx[A, R any](m *ActionMap, name string, fn func(context.Context, A) (R, error)) error {
	return m.RegisterCtx(name, func(ctx context.Context, raw json.RawMessage) (any, error) {
		var arg A
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &arg); err != nil {
				return nil, fmt.Errorf("parcel: action %q argument: %w", name, err)
			}
		}
		return fn(ctx, arg)
	})
}

// Names lists the registered action names.
func (m *ActionMap) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.actions))
	for n := range m.actions {
		out = append(out, n)
	}
	return out
}

func (m *ActionMap) lookup(name string) ActionCtxFunc {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.actions[name]
}

// WithActions attaches an action table to a server (call before clients
// invoke; typically right after Serve).
func (s *Server) WithActions(m *ActionMap) *Server {
	s.actions.Store(m)
	return s
}

// actionPanicError marks an action body that panicked; runAction
// recovers it so bad action code can never kill a handler or the
// process.
type actionPanicError struct{ value any }

// Error implements error.
func (e *actionPanicError) Error() string { return fmt.Sprintf("panic: %v", e.value) }

// runAction executes one action body panic-isolated and returns its
// JSON-encoded result. ctx carries the spawn plane's propagated budget
// and cancellation; the bare invoke path passes context.Background().
func runAction(ctx context.Context, name string, fn ActionCtxFunc, arg json.RawMessage) (raw json.RawMessage, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &actionPanicError{value: r}
		}
	}()
	result, err := fn(ctx, arg)
	if err != nil {
		return nil, err
	}
	raw, err = json.Marshal(result)
	if err != nil {
		return nil, fmt.Errorf("parcel: action %q result marshal: %w", name, err)
	}
	return raw, nil
}

// invoke dispatches one action request on the server.
func (s *Server) invoke(req request) response {
	m, _ := s.actions.Load().(*ActionMap)
	if m == nil {
		return response{Error: "parcel: this server exposes no actions", Code: codeActionUnknown}
	}
	fn := m.lookup(req.Action)
	if fn == nil {
		return response{Error: fmt.Sprintf("parcel: unknown action %q (have %v)", req.Action, m.Names()), Code: codeActionUnknown}
	}
	raw, err := runAction(context.Background(), req.Action, fn, req.Arg)
	if err != nil {
		code := codeActionError
		var pe *actionPanicError
		if errors.As(err, &pe) {
			code = codeActionPanic
		}
		return response{Error: err.Error(), Code: code}
	}
	return response{Result: raw}
}

// Invoke calls a remote action synchronously, decoding the result into
// out (pass nil to discard it).
func (c *Client) Invoke(action string, arg any, out any) error {
	return c.InvokeContext(context.Background(), action, arg, out)
}

// InvokeContext is Invoke under a caller deadline. Invocations are
// never retried — the client cannot know whether a lost response means
// the action ran — so a transport failure surfaces after one attempt.
// (The spawn plane — SpawnOn, Client.SpawnJSON — lifts that restriction
// via idempotency keys.)
//
// Failures reported by the server come back typed: ErrActionUnknown
// (wrapped) when the target registers no such action, *ActionError when
// the action body itself returned an error or panicked. Each class is
// counted separately, under /parcels{...}/count/action-unknown and
// /parcels{...}/count/action-errors respectively.
func (c *Client) InvokeContext(ctx context.Context, action string, arg any, out any) error {
	var raw json.RawMessage
	if arg != nil {
		b, err := json.Marshal(arg)
		if err != nil {
			return fmt.Errorf("parcel: action %q argument marshal: %w", action, err)
		}
		raw = b
	}
	resp, err := c.roundTripContext(ctx, request{Op: "invoke", Action: action, Arg: raw})
	if err != nil {
		var se *ServerError
		if errors.As(err, &se) {
			return c.actionErr(action, resp.Code, se.Msg)
		}
		return err
	}
	if out != nil && len(resp.Result) > 0 {
		return json.Unmarshal(resp.Result, out)
	}
	return nil
}

// actionErr types a server-reported invoke failure, preferring the
// wire's machine-readable code and falling back to the legacy message
// shape for servers predating the Code field.
func (c *Client) actionErr(action, code, msg string) error {
	if code == "" {
		// Legacy server: classify by the historical message prefixes.
		switch {
		case strings.Contains(msg, "unknown action"), strings.Contains(msg, "no actions"):
			code = codeActionUnknown
		default:
			code = codeActionError
		}
	}
	return c.spawnErr(action, code, msg)
}

// RemoteFuture carries an in-flight remote invocation.
type RemoteFuture[R any] struct {
	done  chan struct{}
	value R
	err   error
}

// Get waits for the remote result.
//
// Deprecated: Get blocks unboundedly even when the caller holds a
// deadline; use GetContext so an abandoned wait is always bounded. Get
// remains safe on futures whose launch context carried a deadline (the
// future resolves when the deadline lapses), but GetContext makes the
// bound explicit at the wait site.
func (f *RemoteFuture[R]) Get() (R, error) {
	<-f.done
	return f.value, f.err
}

// GetContext waits for the remote result until ctx is done, whichever
// comes first; an abandoned wait returns ctx.Err() with R's zero value.
// Abandoning the wait does not cancel the remote work — the context the
// future was launched under governs that.
func (f *RemoteFuture[R]) GetContext(ctx context.Context) (R, error) {
	select {
	case <-f.done:
		return f.value, f.err
	case <-ctx.Done():
		var zero R
		return zero, ctx.Err()
	}
}

// Err waits for the future and reports how the invocation completed:
// nil, a typed action failure (*ActionError, ErrActionUnknown), a spawn
// outcome (ErrSpawnCancelled, ErrSpawnLost) or a transport error.
func (f *RemoteFuture[R]) Err() error {
	<-f.done
	return f.err
}

// Ready reports whether Get would not block.
func (f *RemoteFuture[R]) Ready() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// InvokeAsync launches a remote action and returns immediately with a
// future — the distributed analogue of taskrt's Async.
func InvokeAsync[A, R any](c *Client, action string, arg A) *RemoteFuture[R] {
	return InvokeAsyncContext[A, R](context.Background(), c, action, arg)
}

// InvokeAsyncContext is InvokeAsync under a caller deadline: the
// future's Get reports ctx's error if the deadline lapses before the
// remote result arrives.
func InvokeAsyncContext[A, R any](ctx context.Context, c *Client, action string, arg A) *RemoteFuture[R] {
	f := &RemoteFuture[R]{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		f.err = c.InvokeContext(ctx, action, arg, &f.value)
	}()
	return f
}
