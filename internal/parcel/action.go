package parcel

// Remote actions: the parcel layer's second job besides counter access.
// HPX applications invoke registered functions ("plain actions") on any
// locality with the same syntax as local calls; here a server exposes
// named actions whose JSON-encoded argument and result travel in
// parcels, and the client side wraps the invocation in a future-shaped
// call. Together with the counter plumbing this gives the paper's
// "unified API for both parallel and distributed applications": spawn
// locally on taskrt, or on another locality through InvokeAsync, and
// observe both through the same counters.

import (
	"context"
	"encoding/json"
	"fmt"
	"sync"
)

// ActionFunc is a registered remote entry point: JSON argument in, JSON
// result out.
type ActionFunc func(arg json.RawMessage) (any, error)

// ActionMap holds a server's registered actions. Safe for concurrent
// registration and dispatch.
type ActionMap struct {
	mu      sync.RWMutex
	actions map[string]ActionFunc
}

// NewActionMap creates an empty action table.
func NewActionMap() *ActionMap {
	return &ActionMap{actions: make(map[string]ActionFunc)}
}

// Register binds a name to a function; duplicate names error.
func (m *ActionMap) Register(name string, fn ActionFunc) error {
	if name == "" || fn == nil {
		return fmt.Errorf("parcel: invalid action registration %q", name)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.actions[name]; dup {
		return fmt.Errorf("parcel: action %q already registered", name)
	}
	m.actions[name] = fn
	return nil
}

// RegisterAction adapts a typed Go function into an action: the
// argument is decoded from JSON into A, the result encoded from R.
func RegisterAction[A, R any](m *ActionMap, name string, fn func(A) (R, error)) error {
	return m.Register(name, func(raw json.RawMessage) (any, error) {
		var arg A
		if len(raw) > 0 {
			if err := json.Unmarshal(raw, &arg); err != nil {
				return nil, fmt.Errorf("parcel: action %q argument: %w", name, err)
			}
		}
		return fn(arg)
	})
}

// Names lists the registered action names.
func (m *ActionMap) Names() []string {
	m.mu.RLock()
	defer m.mu.RUnlock()
	out := make([]string, 0, len(m.actions))
	for n := range m.actions {
		out = append(out, n)
	}
	return out
}

func (m *ActionMap) lookup(name string) ActionFunc {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.actions[name]
}

// WithActions attaches an action table to a server (call before clients
// invoke; typically right after Serve).
func (s *Server) WithActions(m *ActionMap) *Server {
	s.actions.Store(m)
	return s
}

// invoke dispatches one action request on the server.
func (s *Server) invoke(req request) response {
	m, _ := s.actions.Load().(*ActionMap)
	if m == nil {
		return response{Error: "parcel: this server exposes no actions"}
	}
	fn := m.lookup(req.Action)
	if fn == nil {
		return response{Error: fmt.Sprintf("parcel: unknown action %q (have %v)", req.Action, m.Names())}
	}
	result, err := fn(req.Arg)
	if err != nil {
		return response{Error: err.Error()}
	}
	raw, err := json.Marshal(result)
	if err != nil {
		return response{Error: "parcel: action result marshal: " + err.Error()}
	}
	return response{Result: raw}
}

// Invoke calls a remote action synchronously, decoding the result into
// out (pass nil to discard it).
func (c *Client) Invoke(action string, arg any, out any) error {
	return c.InvokeContext(context.Background(), action, arg, out)
}

// InvokeContext is Invoke under a caller deadline. Invocations are
// never retried — the client cannot know whether a lost response means
// the action ran — so a transport failure surfaces after one attempt.
func (c *Client) InvokeContext(ctx context.Context, action string, arg any, out any) error {
	var raw json.RawMessage
	if arg != nil {
		b, err := json.Marshal(arg)
		if err != nil {
			return fmt.Errorf("parcel: action %q argument marshal: %w", action, err)
		}
		raw = b
	}
	resp, err := c.roundTripContext(ctx, request{Op: "invoke", Action: action, Arg: raw})
	if err != nil {
		return err
	}
	if out != nil && len(resp.Result) > 0 {
		return json.Unmarshal(resp.Result, out)
	}
	return nil
}

// RemoteFuture carries an in-flight remote invocation.
type RemoteFuture[R any] struct {
	done  chan struct{}
	value R
	err   error
}

// Get waits for the remote result.
func (f *RemoteFuture[R]) Get() (R, error) {
	<-f.done
	return f.value, f.err
}

// Ready reports whether Get would not block.
func (f *RemoteFuture[R]) Ready() bool {
	select {
	case <-f.done:
		return true
	default:
		return false
	}
}

// InvokeAsync launches a remote action and returns immediately with a
// future — the distributed analogue of taskrt's Async.
func InvokeAsync[A, R any](c *Client, action string, arg A) *RemoteFuture[R] {
	return InvokeAsyncContext[A, R](context.Background(), c, action, arg)
}

// InvokeAsyncContext is InvokeAsync under a caller deadline: the
// future's Get reports ctx's error if the deadline lapses before the
// remote result arrives.
func InvokeAsyncContext[A, R any](ctx context.Context, c *Client, action string, arg A) *RemoteFuture[R] {
	f := &RemoteFuture[R]{done: make(chan struct{})}
	go func() {
		defer close(f.done)
		f.err = c.InvokeContext(ctx, action, arg, &f.value)
	}()
	return f
}
