package parcel

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

// stubTreeNode is a TreeNode double that keeps the newest generation it
// was pushed, like the real aggregation-tree node.
type stubTreeNode struct {
	mu     sync.Mutex
	pushes int
	last   *TreeDigest
}

func (s *stubTreeNode) TreePush(d *TreeDigest) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.pushes++
	if s.last == nil || d.Gen > s.last.Gen {
		s.last = d
	}
	return nil
}

func (s *stubTreeNode) TreeSnapshot() (*TreeDigest, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.last == nil {
		return nil, errors.New("no digest yet")
	}
	return s.last, nil
}

func TestTreePushPullRoundTrip(t *testing.T) {
	_, _, srv, cli := newServerFixture(t)
	tn := &stubTreeNode{}
	srv.SetTreeNode(tn)

	hist := core.HistogramSnapshot{Counts: []int64{3, 0, 2}, N: 5, Sum: 12}
	d := &TreeDigest{
		Root: 7, Rank: 3, Gen: 1, Time: time.Now(),
		Localities: 5, Depth: 2, Partial: true, StaleLocalities: 1,
		Reparents: 2,
		Entries: []core.Digest{{
			Key: "/threads{locality#*/total}/idle-rate",
			Sum: 10, Min: 1, Max: 4, Count: 5, Stale: 1,
			Hist: &hist,
		}},
	}
	if err := cli.TreePush(context.Background(), d); err != nil {
		t.Fatalf("TreePush: %v", err)
	}

	got, err := cli.TreePull(context.Background())
	if err != nil {
		t.Fatalf("TreePull: %v", err)
	}
	if got.Root != 7 || got.Rank != 3 || got.Gen != 1 {
		t.Fatalf("identity lost over the wire: %+v", got)
	}
	if got.Localities != 5 || got.Depth != 2 || !got.Partial ||
		got.StaleLocalities != 1 || got.Reparents != 2 {
		t.Fatalf("freshness lost over the wire: %+v", got)
	}
	if len(got.Entries) != 1 {
		t.Fatalf("entries = %+v", got.Entries)
	}
	e := got.Entries[0]
	if e.Key != d.Entries[0].Key || e.Sum != 10 || e.Count != 5 || e.Stale != 1 {
		t.Fatalf("digest entry lost over the wire: %+v", e)
	}
	if e.Hist == nil || e.Hist.N != 5 || e.Hist.Sum != 12 {
		t.Fatalf("histogram lost over the wire: %+v", e.Hist)
	}
}

func TestTreeOpsWithoutNode(t *testing.T) {
	_, _, _, cli := newServerFixture(t)
	err := cli.TreePush(context.Background(), &TreeDigest{Gen: 1})
	if !errors.Is(err, ErrNoTreeNode) {
		t.Fatalf("push without node: err = %v, want ErrNoTreeNode", err)
	}
	if _, err := cli.TreePull(context.Background()); !errors.Is(err, ErrNoTreeNode) {
		t.Fatalf("pull without node: err = %v, want ErrNoTreeNode", err)
	}
}

func TestTreePushBounds(t *testing.T) {
	_, _, srv, cli := newServerFixture(t)
	srv.SetTreeNode(&stubTreeNode{})

	// Client-side bound: an oversized digest never leaves the process.
	big := &TreeDigest{Gen: 1, Entries: make([]core.Digest, maxTreeEntries+1)}
	if err := cli.TreePush(context.Background(), big); err == nil {
		t.Fatal("oversized digest accepted client-side")
	}
	if err := cli.TreePush(context.Background(), nil); err == nil {
		t.Fatal("nil digest accepted")
	}

	// Server-side bound: a hand-rolled oversized request is rejected as a
	// protocol error, not dispatched to the node.
	srvBefore := srv.meters.errors.Load()
	resp, err := cli.roundTripContext(context.Background(), request{Op: "tree_push", Tree: big})
	if err == nil {
		t.Fatalf("server accepted oversized digest: %+v", resp)
	}
	if resp.Code != codeProtocol {
		t.Fatalf("oversized push code = %q (err %v), want protocol", resp.Code, err)
	}
	if srv.meters.errors.Load() <= srvBefore {
		t.Fatal("oversized push not metered as a server error")
	}
	if _, err := cli.roundTripContext(context.Background(), request{Op: "tree_push"}); err == nil {
		t.Fatal("server accepted tree_push without a digest")
	}
}

func TestTreePushGenerationKeyed(t *testing.T) {
	_, _, srv, cli := newServerFixture(t)
	tn := &stubTreeNode{}
	srv.SetTreeNode(tn)

	// A re-delivered older generation (the retry/reconnect case that makes
	// the op idempotent) must not displace the newer digest.
	for _, gen := range []int64{2, 1, 2} {
		d := &TreeDigest{Root: 1, Gen: gen, Localities: int(gen)}
		if err := cli.TreePush(context.Background(), d); err != nil {
			t.Fatalf("TreePush gen %d: %v", gen, err)
		}
	}
	got, err := cli.TreePull(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got.Gen != 2 || got.Localities != 2 {
		t.Fatalf("stale generation displaced newer digest: %+v", got)
	}
	tn.mu.Lock()
	pushes := tn.pushes
	tn.mu.Unlock()
	if pushes != 3 {
		t.Fatalf("pushes = %d, want 3", pushes)
	}

	// Detach: ops fail cleanly again.
	srv.SetTreeNode(nil)
	if _, err := cli.TreePull(context.Background()); err == nil {
		t.Fatal("pull after detach succeeded")
	}
}
