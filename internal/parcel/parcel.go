// Package parcel is the network transport of the reproduction: a small
// TCP protocol (newline-delimited JSON parcels) that lets one process
// query the performance counters of another — the paper's remote
// counter access and the transport a distributed monitor (cmd/perfmon)
// attaches through.
//
// The transport is built to be *non-fatal to the application it
// observes* (docs/FAULTS.md): every remote call carries a deadline, the
// client transparently reconnects and retries idempotent requests with
// exponential backoff, a circuit breaker fast-fails a dead endpoint,
// and the client can serve last-known counter values tagged
// core.StatusStale while a locality is unreachable. The server bounds
// request sizes and applies per-connection read/write deadlines so a
// slow or malicious peer cannot wedge a handler.
//
// Parcel traffic — and the fault plane itself — is counted: both ends
// expose /parcels{locality#L/total}/count/{sent,received,errors,
// retries,timeouts}, /parcels{locality#L/total}/data/{sent,received}
// and the client a /parcels{locality#L/total}/breaker/state gauge,
// mirroring HPX's parcelport counter group. A monitor can watch the
// monitor.
package parcel

import (
	"bufio"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// request is one parcel from client to server.
type request struct {
	Op      string          `json:"op"` // "evaluate", "evaluate_active", "discover", "types", "reset_active", "add_active", "invoke", "bind_bulk", "evaluate_bulk", "spawn", "spawn_poll", "spawn_cancel"
	Name    string          `json:"name,omitempty"`
	Pattern string          `json:"pattern,omitempty"`
	Reset   bool            `json:"reset,omitempty"`
	Action  string          `json:"action,omitempty"`
	Arg     json.RawMessage `json:"arg,omitempty"`
	Names   []string        `json:"names,omitempty"`  // bind_bulk: counter names to compile
	SetID   int64           `json:"set_id,omitempty"` // evaluate_bulk: bulk set to sample

	// Distributed-spawn fields (docs/FAULTS.md, "Remote spawn").
	Key      string   `json:"key,omitempty"`       // spawn/spawn_cancel: per-spawn idempotency key
	Keys     []string `json:"keys,omitempty"`      // spawn_poll: keys to report on
	BudgetMS int64    `json:"budget_ms,omitempty"` // spawn: client's remaining deadline budget
	WaitMS   int64    `json:"wait_ms,omitempty"`   // spawn_poll: server-side completion wait window

	// Aggregation-tree field (tree.go): tree_push carries one subtree
	// digest from a child to its parent.
	Tree *TreeDigest `json:"tree,omitempty"`
}

// idempotent reports whether the request can be safely re-sent after a
// transport failure: the client cannot know whether the server executed
// a request whose response was lost, so only side-effect-free requests
// may be retried blindly. Reads with reset, active-set mutation and
// action invocation are never retried.
func (r request) idempotent() bool {
	switch r.Op {
	case "evaluate", "evaluate_active", "evaluate_bulk":
		return !r.Reset
	case "discover", "types", "bind_bulk":
		// bind_bulk only compiles a name set into per-connection state;
		// re-binding after a lost response is harmless.
		return true
	case "spawn_poll", "spawn_cancel":
		// Polling is a read; cancelling twice cancels once. Note "spawn"
		// itself is NOT here: re-sending it is safe thanks to the
		// server's idempotency-key dedupe table, but the retry is owned
		// (and counted) by the spawn plane, not re-sent blindly by the
		// transport.
		return true
	case "tree_pull":
		return true
	case "tree_push":
		// Generation-keyed: the receiver keeps only the newest digest per
		// child subtree, so re-delivering one after a lost response is a
		// no-op (tree.go).
		return true
	default: // add_active, reset_active, invoke, spawn, unknown ops
		return false
	}
}

// response is one parcel from server to client.
type response struct {
	Error  string          `json:"error,omitempty"`
	Code   string          `json:"code,omitempty"` // machine-readable error class (codeActionUnknown, ...)
	Value  *core.Value     `json:"value,omitempty"`
	Values []core.Value    `json:"values,omitempty"`
	Names  []string        `json:"names,omitempty"`
	Infos  []core.Info     `json:"infos,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
	SetID  int64           `json:"set_id,omitempty"`  // bind_bulk: id of the compiled set
	Spawn  *spawnState     `json:"spawn,omitempty"`   // spawn/spawn_cancel: state of that spawn
	Spawns []spawnState    `json:"spawns,omitempty"`  // spawn_poll: state per polled key
	Tree   *TreeDigest     `json:"tree,omitempty"`    // tree_pull: the receiver's folded view
}

// Machine-readable error classes carried in response.Code, so clients
// classify failures without string matching (legacy servers omit the
// field and clients fall back to substring heuristics).
const (
	codeProtocol      = "protocol"       // malformed/oversized parcel
	codeActionUnknown = "action_unknown" // no such action registered
	codeActionError   = "action_error"   // the action body returned an error
	codeActionPanic   = "action_panic"   // the action body panicked
	codeCancelled     = "cancelled"      // spawn cancelled (cancel op, budget, orphan lease)
	codeSpawnUnknown  = "spawn_unknown"  // no spawn with that key on this server
	codeSpawnLimit    = "spawn_limit"    // server's spawn table is full
)

// ProtocolError is a typed wire-protocol violation: oversized or
// malformed parcels. The server reports it in the response and keeps
// the connection alive — bad input must never kill a handler.
type ProtocolError struct{ Reason string }

// Error implements error.
func (e *ProtocolError) Error() string { return "parcel: protocol: " + e.Reason }

// ErrParcelTooLarge is returned (and reported to the peer) when a
// request line exceeds the server's maximum parcel size.
var ErrParcelTooLarge = &ProtocolError{Reason: "parcel exceeds maximum size"}

// meters counts parcels, bytes and faults on one endpoint.
type meters struct {
	sent, received         *core.RawCounter
	dataSent, dataReceived *core.RawCounter
	errors                 *core.RawCounter // transport/protocol failures
	retries                *core.RawCounter // re-sent idempotent requests
	timeouts               *core.RawCounter // deadline-exceeded failures (subset of errors)

	// Client-side action fault split (never incremented by servers):
	// unknown-action rejections vs errors returned by the action body.
	actionUnknown *core.RawCounter
	actionErrors  *core.RawCounter
}

func newMeters(reg *core.Registry, locality int64, register bool) (*meters, error) {
	m := &meters{}
	mk := func(counter, help, unit string) (*core.RawCounter, error) {
		c := newParcelCounter(locality, counter, help, unit)
		if register {
			if err := reg.Register(c); err != nil {
				return nil, err
			}
		}
		return c, nil
	}
	var err error
	if m.sent, err = mk("count/sent", "parcels sent", core.UnitEvents); err != nil {
		return nil, err
	}
	if m.received, err = mk("count/received", "parcels received", core.UnitEvents); err != nil {
		return nil, err
	}
	if m.dataSent, err = mk("data/sent", "parcel bytes sent", core.UnitBytes); err != nil {
		return nil, err
	}
	if m.dataReceived, err = mk("data/received", "parcel bytes received", core.UnitBytes); err != nil {
		return nil, err
	}
	if m.errors, err = mk("count/errors", "failed parcel exchanges (transport or protocol)", core.UnitEvents); err != nil {
		return nil, err
	}
	if m.retries, err = mk("count/retries", "idempotent parcel requests re-sent after a failure", core.UnitEvents); err != nil {
		return nil, err
	}
	if m.timeouts, err = mk("count/timeouts", "parcel exchanges that exceeded their deadline", core.UnitEvents); err != nil {
		return nil, err
	}
	if m.actionUnknown, err = mk("count/action-unknown", "invocations of actions the target does not register", core.UnitEvents); err != nil {
		return nil, err
	}
	if m.actionErrors, err = mk("count/action-errors", "invocations whose action body returned an error", core.UnitEvents); err != nil {
		return nil, err
	}
	return m, nil
}

func newParcelCounter(locality int64, counter, help, unit string) *core.RawCounter {
	return core.NewLocalityRaw("parcels", counter, locality, help, unit)
}

// ServerOptions tunes the server's defensive limits. The zero value
// selects the defaults noted on each field.
type ServerOptions struct {
	// ReadTimeout is the maximum idle time waiting for the next request
	// on a connection before it is closed. Default 2m; negative disables.
	ReadTimeout time.Duration
	// WriteTimeout is the per-response write budget. Default 10s;
	// negative disables.
	WriteTimeout time.Duration
	// MaxParcelSize bounds one request line in bytes; oversized parcels
	// get an ErrParcelTooLarge response and the rest of the line is
	// discarded. Default 1 MiB.
	MaxParcelSize int
	// SpawnLease is the orphan threshold for remote spawns: a running
	// spawn whose client has not touched it (spawn/poll/cancel) for this
	// long is cancelled and counted orphaned. Default 30s; negative
	// disables reaping.
	SpawnLease time.Duration
	// SpawnRetention is how long a completed spawn's result stays
	// available for dedupe and late polls. Default 2m.
	SpawnRetention time.Duration
	// MaxSpawnTasks bounds the spawn table (running + retained entries);
	// further spawns are refused with codeSpawnLimit. Default 4096.
	MaxSpawnTasks int
}

// DefaultMaxParcelSize bounds a request line when ServerOptions leaves
// MaxParcelSize zero.
const DefaultMaxParcelSize = 1 << 20

func (o ServerOptions) withDefaults() ServerOptions {
	if o.ReadTimeout == 0 {
		o.ReadTimeout = 2 * time.Minute
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.MaxParcelSize <= 0 {
		o.MaxParcelSize = DefaultMaxParcelSize
	}
	if o.SpawnLease == 0 {
		o.SpawnLease = 30 * time.Second
	}
	if o.SpawnRetention <= 0 {
		o.SpawnRetention = 2 * time.Minute
	}
	if o.MaxSpawnTasks <= 0 {
		o.MaxSpawnTasks = 4096
	}
	return o
}

// Server exposes a registry's counters over TCP.
type Server struct {
	reg      *core.Registry
	listener net.Listener
	meters   *meters
	opts     ServerOptions
	actions  atomic.Value // *ActionMap
	wg       sync.WaitGroup

	// treeNode, when set (SetTreeNode), serves the aggregation-tree ops
	// tree_push/tree_pull (tree.go).
	treeNode atomic.Value // treeNodeHolder

	// spawns is the distributed-spawn task table (spawn.go): keyed by
	// idempotency key, leased against orphaning. baseCtx parents every
	// spawned action so Close cancels them all.
	spawns     *spawnTable
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	conns  map[net.Conn]struct{}
	closed chan struct{}
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") exposing reg with
// default options. The server's parcel counters are registered into the
// same registry under the given locality id, so they are remotely
// queryable themselves.
func Serve(addr string, reg *core.Registry, locality int64) (*Server, error) {
	return ServeOptions(addr, reg, locality, ServerOptions{})
}

// ServeOptions is Serve with explicit defensive limits.
func ServeOptions(addr string, reg *core.Registry, locality int64, opts ServerOptions) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	return NewServer(ln, reg, locality, opts)
}

// NewServer serves on an existing listener — the hook for wrapping the
// accept path in a fault-injection listener (package chaos).
func NewServer(ln net.Listener, reg *core.Registry, locality int64, opts ServerOptions) (*Server, error) {
	m, err := newMeters(reg, locality, true)
	if err != nil {
		ln.Close()
		return nil, err
	}
	s := &Server{
		reg: reg, listener: ln, meters: m, opts: opts.withDefaults(),
		conns: make(map[net.Conn]struct{}), closed: make(chan struct{}),
	}
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	orphaned := core.NewLocalityRaw("runtime", "remote/count/orphaned", locality,
		"remote spawns cancelled because their client lease expired", core.UnitEvents)
	if err := reg.Register(orphaned); err != nil {
		ln.Close()
		s.baseCancel()
		return nil, err
	}
	s.spawns = newSpawnTable(s.opts, orphaned)
	s.wg.Add(1)
	go s.acceptLoop()
	s.wg.Add(1)
	go s.spawns.reap(&s.wg, s.closed)
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops the server: it closes the listener and every live
// connection, then waits for all handlers. Safe to call more than once.
func (s *Server) Close() error {
	s.mu.Lock()
	select {
	case <-s.closed:
		s.mu.Unlock()
		s.wg.Wait()
		return nil
	default:
	}
	close(s.closed)
	err := s.listener.Close()
	// Force-close live connections so handlers blocked in a read return
	// immediately instead of wedging wg.Wait until the peer goes away.
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	// Cancel every in-flight spawned action; their goroutines are not on
	// the waitgroup (a stuck action must not wedge Close), but their
	// scopes die with the server.
	s.baseCancel()
	s.wg.Wait()
	return err
}

// track registers a new connection; it refuses (and the caller must
// close) connections accepted after Close started, which closes the
// window where an in-flight accept could leak a handler past wg.Wait.
func (s *Server) track(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case <-s.closed:
		return false
	default:
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrack(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		if !s.track(conn) {
			conn.Close()
			return
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

// Bounds on per-connection bulk-set state, so a misbehaving client
// cannot grow server memory without limit.
const (
	maxBulkSetsPerConn = 64
	maxBulkNames       = 4096
)

// errUnknownBulkSet prefixes the server error for an evaluate_bulk
// against a set id the connection does not hold (typically after a
// reconnect); clients match on it to re-bind transparently.
const errUnknownBulkSet = "parcel: unknown bulk set"

// connState is the per-connection server state: compiled bulk sets and
// a reused evaluation buffer. It lives and dies with one handler
// goroutine, so no locking is needed.
type connState struct {
	bulkSets  map[int64]*core.BindSet
	nextSetID int64
	bulkBuf   []core.Value
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer s.untrack(conn)
	defer conn.Close()
	rd := bufio.NewReader(conn)
	wr := bufio.NewWriter(conn)
	st := &connState{}
	for {
		if s.opts.ReadTimeout > 0 {
			conn.SetReadDeadline(time.Now().Add(s.opts.ReadTimeout))
		}
		line, err := readBoundedLine(rd, s.opts.MaxParcelSize)
		var resp response
		switch {
		case err == nil:
			s.meters.received.Inc()
			s.meters.dataReceived.Add(int64(len(line)))
			resp = s.processLine(line, st)
		case errors.Is(err, ErrParcelTooLarge):
			// The oversized line was drained; report and keep serving.
			s.meters.errors.Inc()
			resp.Error = fmt.Sprintf("%s (%d bytes max)", ErrParcelTooLarge.Error(), s.opts.MaxParcelSize)
		default:
			return // connection gone or idle deadline hit
		}
		out, err := json.Marshal(resp)
		if err != nil {
			out = []byte(`{"error":"parcel: response marshal failure"}`)
		}
		out = append(out, '\n')
		if s.opts.WriteTimeout > 0 {
			conn.SetWriteDeadline(time.Now().Add(s.opts.WriteTimeout))
		}
		if _, err := wr.Write(out); err != nil {
			return
		}
		if err := wr.Flush(); err != nil {
			return
		}
		s.meters.sent.Inc()
		s.meters.dataSent.Add(int64(len(out)))
	}
}

// readBoundedLine reads one newline-terminated request, refusing lines
// over max bytes. On an oversized line it discards through the next
// newline and returns ErrParcelTooLarge, leaving the stream aligned on
// the following request.
func readBoundedLine(rd *bufio.Reader, max int) ([]byte, error) {
	var buf []byte
	for {
		chunk, err := rd.ReadSlice('\n')
		buf = append(buf, chunk...)
		switch {
		case err == nil:
			if len(buf) > max {
				return nil, ErrParcelTooLarge
			}
			return buf, nil
		case errors.Is(err, bufio.ErrBufferFull):
			if len(buf) > max {
				return nil, drainLine(rd)
			}
		default:
			return buf, err
		}
	}
}

// drainLine discards input through the next newline, then reports the
// oversized parcel; a transport error while draining wins, since the
// connection is unusable anyway.
func drainLine(rd *bufio.Reader) error {
	for {
		_, err := rd.ReadSlice('\n')
		switch {
		case err == nil:
			return ErrParcelTooLarge
		case errors.Is(err, bufio.ErrBufferFull):
			// keep draining
		default:
			return err
		}
	}
}

// processLine decodes one request line and dispatches it — the server's
// whole per-request decode path, factored out so FuzzParcelDecode can
// drive it directly: malformed parcels must yield a ProtocolError
// response, never a panic or a dead handler.
func (s *Server) processLine(line []byte, st *connState) response {
	var req request
	if jerr := json.Unmarshal(line, &req); jerr != nil {
		s.meters.errors.Inc()
		perr := &ProtocolError{Reason: "malformed request: " + jerr.Error()}
		return response{Error: perr.Error(), Code: codeProtocol}
	}
	return s.dispatch(req, st)
}

func (s *Server) dispatch(req request, st *connState) response {
	switch req.Op {
	case "bind_bulk":
		// Compile the named counters once for this connection; later
		// evaluate_bulk requests sample the whole set in one exchange.
		// Binding is lenient: an unresolvable name degrades its slot to
		// StatusCounterUnknown instead of failing the set.
		if len(req.Names) == 0 {
			return response{Error: "parcel: bind_bulk needs at least one name"}
		}
		if len(req.Names) > maxBulkNames {
			return response{Error: fmt.Sprintf("parcel: bind_bulk limited to %d names", maxBulkNames)}
		}
		if st.bulkSets == nil {
			st.bulkSets = make(map[int64]*core.BindSet)
		}
		if len(st.bulkSets) >= maxBulkSetsPerConn {
			return response{Error: fmt.Sprintf("parcel: at most %d bulk sets per connection", maxBulkSetsPerConn)}
		}
		st.nextSetID++
		st.bulkSets[st.nextSetID] = s.reg.BindSetLenient(req.Names)
		return response{SetID: st.nextSetID, Names: st.bulkSets[st.nextSetID].Names()}
	case "evaluate_bulk":
		set, ok := st.bulkSets[req.SetID]
		if !ok {
			return response{Error: fmt.Sprintf("%s %d", errUnknownBulkSet, req.SetID)}
		}
		st.bulkBuf = set.EvaluateBatch(st.bulkBuf, req.Reset)
		return response{Values: st.bulkBuf}
	case "evaluate":
		v, err := s.reg.Evaluate(req.Name, req.Reset)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Value: &v}
	case "discover":
		names, err := s.reg.Discover(req.Pattern)
		if err != nil {
			return response{Error: err.Error()}
		}
		out := make([]string, len(names))
		for i, n := range names {
			out[i] = n.String()
		}
		return response{Names: out}
	case "types":
		return response{Infos: s.reg.Types()}
	case "add_active":
		added, err := s.reg.AddActive(req.Pattern)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Names: added}
	case "evaluate_active":
		return response{Values: s.reg.EvaluateActive(req.Reset)}
	case "reset_active":
		s.reg.ResetActive()
		return response{}
	case "invoke":
		return s.invoke(req)
	case "spawn":
		return s.spawn(req)
	case "spawn_poll":
		return s.spawnPoll(req)
	case "spawn_cancel":
		return s.spawnCancel(req)
	case "tree_push":
		return s.treePush(req)
	case "tree_pull":
		return s.treePull(req)
	default:
		return response{Error: fmt.Sprintf("parcel: unknown op %q", req.Op)}
	}
}
