// Package parcel is the network transport of the reproduction: a small
// TCP protocol (newline-delimited JSON parcels) that lets one process
// query the performance counters of another — the paper's remote
// counter access and the transport a distributed monitor (cmd/perfmon)
// attaches through.
//
// Parcel traffic is itself counted: both ends expose
// /parcels{locality#L/total}/count/{sent,received} and
// /parcels{locality#L/total}/data/{sent,received} counters, mirroring
// HPX's parcelport counter group.
package parcel

import (
	"bufio"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"

	"repro/internal/core"
)

// request is one parcel from client to server.
type request struct {
	Op      string          `json:"op"` // "evaluate", "evaluate_active", "discover", "types", "reset_active", "add_active", "invoke"
	Name    string          `json:"name,omitempty"`
	Pattern string          `json:"pattern,omitempty"`
	Reset   bool            `json:"reset,omitempty"`
	Action  string          `json:"action,omitempty"`
	Arg     json.RawMessage `json:"arg,omitempty"`
}

// response is one parcel from server to client.
type response struct {
	Error  string          `json:"error,omitempty"`
	Value  *core.Value     `json:"value,omitempty"`
	Values []core.Value    `json:"values,omitempty"`
	Names  []string        `json:"names,omitempty"`
	Infos  []core.Info     `json:"infos,omitempty"`
	Result json.RawMessage `json:"result,omitempty"`
}

// meters counts parcels and bytes on one endpoint.
type meters struct {
	sent, received         *core.RawCounter
	dataSent, dataReceived *core.RawCounter
}

func newMeters(reg *core.Registry, locality int64, register bool) (*meters, error) {
	m := &meters{}
	mk := func(counter, help, unit string) (*core.RawCounter, error) {
		cn := core.Name{Object: "parcels", Counter: counter}.
			WithInstances(core.LocalityInstance(locality, "total", -1)...)
		c := core.NewRawCounter(cn, core.Info{
			TypeName: "/parcels/" + counter, HelpText: help, Unit: unit, Version: "1.0",
		})
		if register {
			if err := reg.Register(c); err != nil {
				return nil, err
			}
		}
		return c, nil
	}
	var err error
	if m.sent, err = mk("count/sent", "parcels sent", core.UnitEvents); err != nil {
		return nil, err
	}
	if m.received, err = mk("count/received", "parcels received", core.UnitEvents); err != nil {
		return nil, err
	}
	if m.dataSent, err = mk("data/sent", "parcel bytes sent", core.UnitBytes); err != nil {
		return nil, err
	}
	if m.dataReceived, err = mk("data/received", "parcel bytes received", core.UnitBytes); err != nil {
		return nil, err
	}
	return m, nil
}

// Server exposes a registry's counters over TCP.
type Server struct {
	reg      *core.Registry
	listener net.Listener
	meters   *meters
	actions  atomic.Value // *ActionMap
	wg       sync.WaitGroup
	closed   chan struct{}
}

// Serve starts a server on addr (e.g. "127.0.0.1:0") exposing reg. The
// server's parcel counters are registered into the same registry under
// the given locality id, so they are remotely queryable themselves.
func Serve(addr string, reg *core.Registry, locality int64) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	m, err := newMeters(reg, locality, true)
	if err != nil {
		ln.Close()
		return nil, err
	}
	s := &Server{reg: reg, listener: ln, meters: m, closed: make(chan struct{})}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the bound address.
func (s *Server) Addr() string { return s.listener.Addr().String() }

// Close stops the server and waits for connection handlers.
func (s *Server) Close() error {
	close(s.closed)
	err := s.listener.Close()
	s.wg.Wait()
	return err
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.listener.Accept()
		if err != nil {
			select {
			case <-s.closed:
				return
			default:
				continue
			}
		}
		s.wg.Add(1)
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer s.wg.Done()
	defer conn.Close()
	rd := bufio.NewReader(conn)
	wr := bufio.NewWriter(conn)
	for {
		line, err := rd.ReadBytes('\n')
		if err != nil {
			return
		}
		s.meters.received.Inc()
		s.meters.dataReceived.Add(int64(len(line)))
		var req request
		var resp response
		if err := json.Unmarshal(line, &req); err != nil {
			resp.Error = "parcel: malformed request: " + err.Error()
		} else {
			resp = s.dispatch(req)
		}
		out, err := json.Marshal(resp)
		if err != nil {
			out = []byte(`{"error":"parcel: response marshal failure"}`)
		}
		out = append(out, '\n')
		if _, err := wr.Write(out); err != nil {
			return
		}
		if err := wr.Flush(); err != nil {
			return
		}
		s.meters.sent.Inc()
		s.meters.dataSent.Add(int64(len(out)))
	}
}

func (s *Server) dispatch(req request) response {
	switch req.Op {
	case "evaluate":
		v, err := s.reg.Evaluate(req.Name, req.Reset)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Value: &v}
	case "discover":
		names, err := s.reg.Discover(req.Pattern)
		if err != nil {
			return response{Error: err.Error()}
		}
		out := make([]string, len(names))
		for i, n := range names {
			out[i] = n.String()
		}
		return response{Names: out}
	case "types":
		return response{Infos: s.reg.Types()}
	case "add_active":
		added, err := s.reg.AddActive(req.Pattern)
		if err != nil {
			return response{Error: err.Error()}
		}
		return response{Names: added}
	case "evaluate_active":
		return response{Values: s.reg.EvaluateActive(req.Reset)}
	case "reset_active":
		s.reg.ResetActive()
		return response{}
	case "invoke":
		return s.invoke(req)
	default:
		return response{Error: fmt.Sprintf("parcel: unknown op %q", req.Op)}
	}
}

// Client queries a remote registry. It is safe for concurrent use; each
// request/response pair is serialised on the single connection.
type Client struct {
	mu     sync.Mutex
	conn   net.Conn
	rd     *bufio.Reader
	meters *meters
}

// Dial connects to a parcel server. Pass a registry and locality to
// register the client's own parcel counters, or nil to skip.
func Dial(addr string, reg *core.Registry, locality int64) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	var m *meters
	if reg != nil {
		if m, err = newMeters(reg, locality, true); err != nil {
			conn.Close()
			return nil, err
		}
	} else {
		if m, err = newMeters(nil, locality, false); err != nil {
			conn.Close()
			return nil, err
		}
	}
	return &Client{conn: conn, rd: bufio.NewReader(conn), meters: m}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

func (c *Client) roundTrip(req request) (response, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	out, err := json.Marshal(req)
	if err != nil {
		return response{}, err
	}
	out = append(out, '\n')
	if _, err := c.conn.Write(out); err != nil {
		return response{}, err
	}
	c.meters.sent.Inc()
	c.meters.dataSent.Add(int64(len(out)))
	line, err := c.rd.ReadBytes('\n')
	if err != nil {
		return response{}, err
	}
	c.meters.received.Inc()
	c.meters.dataReceived.Add(int64(len(line)))
	var resp response
	if err := json.Unmarshal(line, &resp); err != nil {
		return response{}, err
	}
	if resp.Error != "" {
		return resp, errors.New(resp.Error)
	}
	return resp, nil
}

// Evaluate reads one remote counter, optionally resetting it.
func (c *Client) Evaluate(name string, reset bool) (core.Value, error) {
	resp, err := c.roundTrip(request{Op: "evaluate", Name: name, Reset: reset})
	if err != nil {
		return core.Value{Name: name, Status: core.StatusCounterUnknown}, err
	}
	if resp.Value == nil {
		return core.Value{Name: name, Status: core.StatusInvalidData},
			errors.New("parcel: empty evaluate response")
	}
	return *resp.Value, nil
}

// Discover expands a counter pattern remotely.
func (c *Client) Discover(pattern string) ([]string, error) {
	resp, err := c.roundTrip(request{Op: "discover", Pattern: pattern})
	return resp.Names, err
}

// Types lists the remote registry's counter types.
func (c *Client) Types() ([]core.Info, error) {
	resp, err := c.roundTrip(request{Op: "types"})
	return resp.Infos, err
}

// AddActive adds counters to the remote active set.
func (c *Client) AddActive(pattern string) ([]string, error) {
	resp, err := c.roundTrip(request{Op: "add_active", Pattern: pattern})
	return resp.Names, err
}

// EvaluateActive evaluates the remote active set.
func (c *Client) EvaluateActive(reset bool) ([]core.Value, error) {
	resp, err := c.roundTrip(request{Op: "evaluate_active", Reset: reset})
	return resp.Values, err
}

// ResetActive resets the remote active set.
func (c *Client) ResetActive() error {
	_, err := c.roundTrip(request{Op: "reset_active"})
	return err
}

// RemoteCounter adapts one remote counter to the local core.Counter
// interface, so meta counters and tooling can consume remote data
// transparently — the uniformity the paper's framework is built on.
type RemoteCounter struct {
	client *Client
	name   core.Name
	info   core.Info
}

// NewRemoteCounter builds a counter proxy for a full remote name.
func NewRemoteCounter(client *Client, fullName string) (*RemoteCounter, error) {
	n, err := core.ParseName(fullName)
	if err != nil {
		return nil, err
	}
	return &RemoteCounter{
		client: client,
		name:   n,
		info:   core.Info{TypeName: n.TypeName(), HelpText: "remote proxy for " + fullName},
	}, nil
}

// Name implements core.Counter.
func (r *RemoteCounter) Name() core.Name { return r.name }

// Info implements core.Counter.
func (r *RemoteCounter) Info() core.Info { return r.info }

// Value implements core.Counter.
func (r *RemoteCounter) Value(reset bool) core.Value {
	v, err := r.client.Evaluate(r.name.String(), reset)
	if err != nil {
		return core.Value{Name: r.name.String(), Status: core.StatusInvalidData}
	}
	return v
}

// Reset implements core.Counter.
func (r *RemoteCounter) Reset() { _, _ = r.client.Evaluate(r.name.String(), true) }
