package parcel

// FuzzParcelDecode drives the server's whole per-request decode path —
// processLine, exactly what a connection handler feeds it — with
// arbitrary bytes. The contract under fuzzing: a malformed parcel
// yields a ProtocolError-coded response, a well-formed one yields a
// normal response, and NOTHING panics or wedges the handler. The spawn
// ops ride the same path, so hostile keys, key lists and budgets are
// covered too.

import (
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/core"
)

func FuzzParcelDecode(f *testing.F) {
	// Well-formed requests for every op, so mutation explores the
	// dispatch paths and not just the JSON error path.
	seeds := []string{
		`{"op":"types"}`,
		`{"op":"discover","name":"/threads{locality#0/worker-thread#*}/time/average"}`,
		`{"op":"evaluate","name":"/threads{locality#0/total}/count/cumulative"}`,
		`{"op":"evaluate","name":"/threads{locality#0/total}/count/cumulative","reset":true}`,
		`{"op":"bind_bulk","names":["/threads{locality#0/total}/count/cumulative"]}`,
		`{"op":"evaluate_bulk","set":1}`,
		`{"op":"evaluate_bulk","names":["/threads{locality#0/total}/count/cumulative"]}`,
		`{"op":"unbind_bulk","set":1}`,
		`{"op":"invoke","action":"echo","arg":"hi"}`,
		`{"op":"invoke","action":"missing"}`,
		`{"op":"spawn","action":"echo","arg":3,"key":"k1","budget_ms":50}`,
		`{"op":"spawn","action":"echo","key":""}`,
		`{"op":"spawn_poll","keys":["k1","k2"],"wait_ms":0}`,
		`{"op":"spawn_poll","keys":[]}`,
		`{"op":"spawn_cancel","key":"k1"}`,
		`{"op":"nonsense"}`,
		`{"op":"spawn","key":` + strings.Repeat(`[`, 64) + strings.Repeat(`]`, 64) + `}`,
		`not json at all`,
		`{"op":"spawn",`,
		`{}`,
		``,
		"\x00\xff\xfe",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}

	reg := core.NewRegistry()
	c := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative"})
	reg.MustRegister(c)
	srv, err := Serve("127.0.0.1:0", reg, 0)
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { srv.Close() })
	actions := NewActionMap()
	if err := RegisterAction(actions, "echo", func(v json.RawMessage) (json.RawMessage, error) {
		return v, nil
	}); err != nil {
		f.Fatal(err)
	}
	srv.WithActions(actions)

	f.Fuzz(func(t *testing.T, line []byte) {
		st := &connState{}
		resp := srv.processLine(line, st)
		var probe request
		if json.Unmarshal(line, &probe) != nil {
			// Malformed JSON MUST come back as a protocol error the
			// client can classify — never a silent success.
			if resp.Code != codeProtocol || resp.Error == "" {
				t.Fatalf("malformed line %q → %+v, want coded protocol error", line, resp)
			}
		}
		// Whatever happened, the response must survive the wire encode
		// the handler performs next.
		if _, err := json.Marshal(resp); err != nil {
			t.Fatalf("unmarshalable response for %q: %v", line, err)
		}
	})
}
