package parcel_test

// Integration of the AGAS resolver with remote localities: the same
// EvaluateCounter call transparently routes to an in-process registry
// or across TCP, purely from the locality#N prefix of the counter name
// — the paper's location-transparent counter access, end to end.
//
// External test package: agas imports parcel (the spawn router), so
// in-package tests here must not import agas back.

import (
	"testing"

	"repro/internal/agas"
	"repro/internal/core"
	"repro/internal/parcel"
)

func TestResolverRoutesAcrossProcessesByName(t *testing.T) {
	// Locality 0: in-process.
	local := agas.NewLocality(0, "local")
	c0 := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative"})
	local.Registry().MustRegister(c0)
	c0.Add(11)

	// Locality 1: behind a parcel server.
	remoteReg := core.NewRegistry()
	c1 := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(1, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative"})
	remoteReg.MustRegister(c1)
	c1.Add(22)
	srv, err := parcel.Serve("127.0.0.1:0", remoteReg, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := parcel.Dial(srv.Addr(), nil, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	resolver := agas.NewResolver()
	if err := resolver.Bind(local); err != nil {
		t.Fatal(err)
	}
	if err := resolver.BindRemote(1, cli); err != nil {
		t.Fatal(err)
	}

	// Identical API, different transports, selected by the name alone.
	v0, err := resolver.EvaluateCounter("/threads{locality#0/total}/count/cumulative", false)
	if err != nil || v0.Raw != 11 {
		t.Fatalf("local route: %+v %v", v0, err)
	}
	v1, err := resolver.EvaluateCounter("/threads{locality#1/total}/count/cumulative", false)
	if err != nil || v1.Raw != 22 {
		t.Fatalf("remote route: %+v %v", v1, err)
	}
	// Evaluate-and-reset crosses the wire too.
	if _, err := resolver.EvaluateCounter("/threads{locality#1/total}/count/cumulative", true); err != nil {
		t.Fatal(err)
	}
	if c1.Load() != 0 {
		t.Fatal("remote reset did not apply")
	}
	// Collisions rejected.
	if err := resolver.BindRemote(0, cli); err == nil {
		t.Fatal("remote binding over a local id accepted")
	}
	if err := resolver.BindRemote(1, cli); err == nil {
		t.Fatal("duplicate remote binding accepted")
	}
}
