package parcel

// Chaos-driven tests of the fault-tolerance layer: every fault class
// the chaos injector can produce (delay past the deadline, mid-frame
// connection drop, corrupted JSON, partition) against the client's
// deadline / retry / breaker / stale-serving machinery. All run under
// -race in CI.

import (
	"context"
	"errors"
	"net"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/parcel/chaos"
)

const faultCounterName = "/threads{locality#0/total}/count/cumulative"

// newFaultFixture starts a real server and connects a client through a
// chaos injector.
func newFaultFixture(t *testing.T, cfg chaos.Config, opts ClientOptions) (*core.RawCounter, *Server, *chaos.Injector, *Client) {
	t.Helper()
	reg := core.NewRegistry()
	c := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative", HelpText: "tasks"})
	reg.MustRegister(c)
	srv, err := Serve("127.0.0.1:0", reg, 0)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	inj := chaos.New(cfg)
	opts.Dialer = inj.Dialer()
	cli, err := DialContext(context.Background(), srv.Addr(), nil, 1, opts)
	if err != nil {
		t.Fatalf("DialContext: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return c, srv, inj, cli
}

// TestDeadlineAgainstSilentServer is the acceptance criterion: a server
// that accepts but never responds must yield context.DeadlineExceeded
// within deadline + 100ms — no remote call can block past its deadline.
func TestDeadlineAgainstSilentServer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			// Swallow requests, never answer.
			go func(c net.Conn) {
				buf := make([]byte, 1024)
				for {
					if _, err := c.Read(buf); err != nil {
						c.Close()
						return
					}
				}
			}(conn)
		}
	}()

	cli, err := DialContext(context.Background(), ln.Addr().String(), nil, 0,
		ClientOptions{Timeout: 10 * time.Second, Retries: -1})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	const deadline = 200 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, err = cli.EvaluateContext(ctx, faultCounterName, false)
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v, want context.DeadlineExceeded", err)
	}
	if elapsed > deadline+100*time.Millisecond {
		t.Fatalf("call blocked %v, want ≤ deadline+100ms", elapsed)
	}
	if fc := cli.FaultCounts(); fc.Timeouts != 1 || fc.Errors != 1 {
		t.Fatalf("fault counters = %+v, want 1 timeout / 1 error", fc)
	}
}

// TestFaultClasses is the satellite's table: one injected fault class
// per row, asserting the client recovers and its retry/timeout/error
// counters match the injected fault counts exactly.
func TestFaultClasses(t *testing.T) {
	const timeout = 150 * time.Millisecond
	rows := []struct {
		name    string
		inject  func(*chaos.Injector)
		want    FaultCounts
		wantInj func(chaos.Stats) int64 // injected-fault count to cross-check
	}{
		{
			name:    "connection drop",
			inject:  func(in *chaos.Injector) { in.ForceDrop(1) },
			want:    FaultCounts{Errors: 1, Retries: 1, Timeouts: 0},
			wantInj: func(s chaos.Stats) int64 { return s.Drops },
		},
		{
			name:    "mid-frame truncation",
			inject:  func(in *chaos.Injector) { in.ForceTruncate(1) },
			want:    FaultCounts{Errors: 1, Retries: 1, Timeouts: 0},
			wantInj: func(s chaos.Stats) int64 { return s.Truncates },
		},
		{
			name:    "delay past deadline",
			inject:  func(in *chaos.Injector) { in.ForceDelay(1) },
			want:    FaultCounts{Errors: 1, Retries: 1, Timeouts: 1},
			wantInj: func(s chaos.Stats) int64 { return s.Delays },
		},
	}
	for _, row := range rows {
		t.Run(row.name, func(t *testing.T) {
			counter, _, inj, cli := newFaultFixture(t,
				chaos.Config{Delay: 4 * timeout},
				ClientOptions{Timeout: timeout, Retries: 2, BackoffBase: 5 * time.Millisecond, BackoffCap: 10 * time.Millisecond})
			counter.Add(77)
			// Clean exchange first, so the fault hits an established
			// connection, not the initial dial.
			if _, err := cli.Evaluate(faultCounterName, false); err != nil {
				t.Fatalf("pre-fault evaluate: %v", err)
			}
			row.inject(inj)
			v, err := cli.Evaluate(faultCounterName, false)
			if err != nil || v.Raw != 77 {
				t.Fatalf("post-fault evaluate = %+v, %v; want recovery via retry", v, err)
			}
			if fc := cli.FaultCounts(); fc != row.want {
				t.Fatalf("fault counters = %+v, want %+v", fc, row.want)
			}
			if got := row.wantInj(inj.Stats()); got != 1 {
				t.Fatalf("injector reports %d faults of this class, want 1", got)
			}
		})
	}
}

// TestCorruptedRequestIsServerErrorNotRetried: a corrupted frame still
// reaches the server, which answers with a typed protocol error. That
// is an application-level failure — the transport is healthy — so it
// must not be retried, must not trip the breaker, and must not kill the
// server's connection handler.
func TestCorruptedRequestIsServerErrorNotRetried(t *testing.T) {
	counter, _, inj, cli := newFaultFixture(t, chaos.Config{},
		ClientOptions{Timeout: time.Second, Retries: 3})
	counter.Add(5)
	inj.ForceCorrupt(1)
	_, err := cli.Evaluate(faultCounterName, false)
	var se *ServerError
	if !errors.As(err, &se) || !strings.Contains(err.Error(), "malformed") {
		t.Fatalf("corrupted request error = %v, want ServerError about malformed input", err)
	}
	if fc := cli.FaultCounts(); fc != (FaultCounts{}) {
		t.Fatalf("server-reported error moved transport fault counters: %+v", fc)
	}
	if st := cli.BreakerState(); st != BreakerClosed {
		t.Fatalf("breaker state = %v after server error, want closed", st)
	}
	// Same connection, next request: the handler survived the garbage.
	if v, err := cli.Evaluate(faultCounterName, false); err != nil || v.Raw != 5 {
		t.Fatalf("evaluate after corruption = %+v, %v", v, err)
	}
}

// TestStaleServingDuringPartition: with ServeStale, a partitioned
// endpoint yields the last-known value tagged StatusStale with its
// original capture time, and fresh values resume after the heal.
func TestStaleServingDuringPartition(t *testing.T) {
	counter, _, inj, cli := newFaultFixture(t, chaos.Config{},
		ClientOptions{Timeout: 200 * time.Millisecond, Retries: 1,
			BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond,
			BreakerThreshold: -1, ServeStale: true})
	counter.Add(42)
	fresh, err := cli.Evaluate(faultCounterName, false)
	if err != nil || fresh.Raw != 42 {
		t.Fatalf("fresh evaluate = %+v, %v", fresh, err)
	}

	inj.Partition(true)
	counter.Add(1) // the remote moves on; our cache cannot see it
	stale, err := cli.Evaluate(faultCounterName, false)
	if err != nil {
		t.Fatalf("stale serving returned error: %v", err)
	}
	if stale.Status != core.StatusStale || !stale.Stale() || stale.Raw != 42 {
		t.Fatalf("stale value = %+v, want cached 42 tagged stale", stale)
	}
	if !stale.Time.Equal(fresh.Time) {
		t.Fatalf("stale value lost its capture time: %v vs %v", stale.Time, fresh.Time)
	}
	if age := stale.Age(time.Now()); age <= 0 {
		t.Fatalf("stale age = %v, want positive", age)
	}

	// A counter never successfully read has no cache entry: explicit gap.
	if _, err := cli.Evaluate("/threads{locality#0/total}/count/nonexistent", false); err == nil {
		t.Fatal("uncached counter served during partition")
	}

	inj.Partition(false)
	healed, err := cli.Evaluate(faultCounterName, false)
	if err != nil || healed.Raw != 43 || healed.Status == core.StatusStale {
		t.Fatalf("post-heal evaluate = %+v, %v; want fresh 43", healed, err)
	}
}

// TestBreakerTransitions drives the circuit breaker through
// closed → open → fast-fail → half-open probe → closed.
func TestBreakerTransitions(t *testing.T) {
	reg := core.NewRegistry() // monitor-side registry: watch the watcher
	const cooldown = 150 * time.Millisecond
	counter, _, inj, cli := func() (*core.RawCounter, *Server, *chaos.Injector, *Client) {
		t.Helper()
		serverReg := core.NewRegistry()
		c := core.NewRawCounter(
			core.Name{Object: "threads", Counter: "count/cumulative"}.
				WithInstances(core.LocalityInstance(0, "total", -1)...),
			core.Info{TypeName: "/threads/count/cumulative"})
		serverReg.MustRegister(c)
		srv, err := Serve("127.0.0.1:0", serverReg, 0)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { srv.Close() })
		inj := chaos.New(chaos.Config{})
		cli, err := DialContext(context.Background(), srv.Addr(), reg, 1, ClientOptions{
			Timeout: 200 * time.Millisecond, Retries: -1,
			BreakerThreshold: 2, BreakerCooldown: cooldown,
			Dialer: inj.Dialer(),
		})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { cli.Close() })
		return c, srv, inj, cli
	}()
	counter.Add(9)

	breakerGauge := func() int64 {
		v, err := reg.Evaluate("/parcels{locality#1/total}/breaker/state", false)
		if err != nil {
			t.Fatalf("breaker gauge: %v", err)
		}
		return v.Raw
	}

	if cli.BreakerState() != BreakerClosed || breakerGauge() != int64(BreakerClosed) {
		t.Fatalf("initial breaker state = %v / gauge %d", cli.BreakerState(), breakerGauge())
	}

	inj.Partition(true)
	for i := 0; i < 2; i++ {
		if _, err := cli.Evaluate(faultCounterName, false); err == nil {
			t.Fatal("partitioned evaluate succeeded")
		}
	}
	if cli.BreakerState() != BreakerOpen || breakerGauge() != int64(BreakerOpen) {
		t.Fatalf("breaker after %d failures = %v / gauge %d, want open", 2, cli.BreakerState(), breakerGauge())
	}

	// Open breaker fast-fails without touching the network.
	before := inj.Stats().Refusals
	start := time.Now()
	if _, err := cli.Evaluate(faultCounterName, false); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("open-breaker error = %v, want ErrCircuitOpen", err)
	}
	if d := time.Since(start); d > 50*time.Millisecond {
		t.Fatalf("fast-fail took %v", d)
	}
	if inj.Stats().Refusals != before {
		t.Fatal("open breaker still touched the network")
	}

	// After the cooldown one probe goes through; with the partition
	// healed it succeeds and closes the breaker.
	inj.Partition(false)
	time.Sleep(cooldown + 20*time.Millisecond)
	v, err := cli.Evaluate(faultCounterName, false)
	if err != nil || v.Raw != 9 {
		t.Fatalf("half-open probe = %+v, %v", v, err)
	}
	if cli.BreakerState() != BreakerClosed || breakerGauge() != int64(BreakerClosed) {
		t.Fatalf("breaker after probe = %v / gauge %d, want closed", cli.BreakerState(), breakerGauge())
	}

	// A failed probe re-opens: partition again, wait out the cooldown.
	inj.Partition(true)
	for i := 0; i < 2; i++ {
		cli.Evaluate(faultCounterName, false)
	}
	time.Sleep(cooldown + 20*time.Millisecond)
	if _, err := cli.Evaluate(faultCounterName, false); err == nil {
		t.Fatal("probe through partition succeeded")
	}
	if cli.BreakerState() != BreakerOpen {
		t.Fatalf("breaker after failed probe = %v, want open", cli.BreakerState())
	}
}

// TestPartitionDuringEvaluateLoop: the satellite's "partition during
// Evaluate loop" row — a sampling loop keeps producing values (stale
// through the outage, fresh after) without a single error.
func TestPartitionDuringEvaluateLoop(t *testing.T) {
	counter, _, inj, cli := newFaultFixture(t, chaos.Config{},
		ClientOptions{Timeout: 100 * time.Millisecond, Retries: 1,
			BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond,
			BreakerThreshold: -1, ServeStale: true})
	counter.Add(3)
	var statuses []core.Status
	for i := 0; i < 15; i++ {
		switch i {
		case 5:
			inj.Partition(true)
		case 10:
			inj.Partition(false)
		}
		v, err := cli.Evaluate(faultCounterName, false)
		if err != nil {
			t.Fatalf("sample %d errored: %v", i, err)
		}
		statuses = append(statuses, v.Status)
	}
	for i, st := range statuses {
		wantStale := i >= 5 && i < 10
		if wantStale && st != core.StatusStale {
			t.Fatalf("sample %d status = %v, want stale (statuses %v)", i, st, statuses)
		}
		if !wantStale && st == core.StatusStale {
			t.Fatalf("sample %d status = %v, want fresh (statuses %v)", i, st, statuses)
		}
	}
}

// TestOversizedParcel: the server bounds request size, answers with the
// typed protocol error, and keeps the connection serving.
func TestOversizedParcel(t *testing.T) {
	reg := core.NewRegistry()
	c := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative"})
	reg.MustRegister(c)
	c.Add(4)
	srv, err := ServeOptions("127.0.0.1:0", reg, 0, ServerOptions{MaxParcelSize: 4096})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	cli, err := DialContext(context.Background(), srv.Addr(), nil, 1,
		ClientOptions{Timeout: time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	_, err = cli.Discover(strings.Repeat("x", 64<<10))
	var se *ServerError
	if !errors.As(err, &se) || !strings.Contains(err.Error(), "exceeds maximum size") {
		t.Fatalf("oversized parcel error = %v, want typed size error", err)
	}
	// The handler survived and the stream is still framed.
	if v, err := cli.Evaluate(faultCounterName, false); err != nil || v.Raw != 4 {
		t.Fatalf("evaluate after oversize = %+v, %v", v, err)
	}
	// The violation is visible on the server's own error counter.
	if ev, err := reg.Evaluate("/parcels{locality#0/total}/count/errors", false); err != nil || ev.Raw != 1 {
		t.Fatalf("server error counter = %+v, %v; want 1", ev, err)
	}
}

// TestChaosAcceptanceScenario is the headline acceptance criterion:
// 10% drops + 5% delays-past-deadline injected under a 100-sample
// monitoring loop — zero crashes, ≥90% successful-or-stale samples, and
// client fault counters matching the injected fault counts exactly.
func TestChaosAcceptanceScenario(t *testing.T) {
	const timeout = 100 * time.Millisecond
	counter, _, inj, cli := newFaultFixture(t,
		chaos.Config{Seed: 20260806, DropProb: 0.10, DelayProb: 0.05, Delay: 3 * timeout},
		ClientOptions{Timeout: timeout, Retries: 3,
			BackoffBase: 2 * time.Millisecond, BackoffCap: 10 * time.Millisecond,
			BreakerThreshold: 50, ServeStale: true, Seed: 7})
	counter.Add(1)

	var good, stale, failed int
	for i := 0; i < 100; i++ {
		v, err := cli.Evaluate(faultCounterName, false)
		switch {
		case err != nil:
			failed++
		case v.Status == core.StatusStale:
			stale++
		default:
			good++
		}
	}
	if good+stale < 90 {
		t.Fatalf("successful-or-stale = %d+%d, want ≥ 90 of 100", good, stale)
	}
	if failed > 0 && good == 0 {
		t.Fatalf("loop effectively crashed: %d failures, no successes", failed)
	}

	fc, st := cli.FaultCounts(), inj.Stats()
	if st.Drops == 0 || st.Delays == 0 {
		t.Fatalf("chaos injected nothing (%+v) — seed no longer exercises the test", st)
	}
	if fc.Timeouts != st.Delays {
		t.Fatalf("timeout counter = %d, injected delays = %d", fc.Timeouts, st.Delays)
	}
	if fc.Errors != st.Drops+st.Delays {
		t.Fatalf("error counter = %d, injected faults = %d", fc.Errors, st.Drops+st.Delays)
	}
	// Every failed attempt is retried unless it exhausted the sample's
	// budget; each stale/failed sample burns exactly one final attempt.
	if want := fc.Errors - int64(stale+failed); fc.Retries != want {
		t.Fatalf("retry counter = %d, want %d (errors %d, stale %d, failed %d)",
			fc.Retries, want, fc.Errors, stale, failed)
	}
}

// TestIdempotencyClassification pins which requests may be blind-
// retried: reads without reset only — never invoke or mutations.
func TestIdempotencyClassification(t *testing.T) {
	rows := []struct {
		req  request
		want bool
	}{
		{request{Op: "evaluate"}, true},
		{request{Op: "evaluate", Reset: true}, false},
		{request{Op: "evaluate_active"}, true},
		{request{Op: "evaluate_active", Reset: true}, false},
		{request{Op: "discover"}, true},
		{request{Op: "types"}, true},
		{request{Op: "add_active"}, false},
		{request{Op: "reset_active"}, false},
		{request{Op: "invoke"}, false},
	}
	for _, row := range rows {
		if got := row.req.idempotent(); got != row.want {
			t.Errorf("idempotent(%q reset=%v) = %v, want %v", row.req.Op, row.req.Reset, got, row.want)
		}
	}
}

// TestInvokeNeverRetried: a dropped invoke surfaces the transport error
// after one attempt — the client must not blind-retry actions.
func TestInvokeNeverRetried(t *testing.T) {
	serverReg := core.NewRegistry()
	srv, err := Serve("127.0.0.1:0", serverReg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	calls := 0
	am := NewActionMap()
	if err := RegisterAction(am, "count", func(struct{}) (int, error) {
		calls++
		return calls, nil
	}); err != nil {
		t.Fatal(err)
	}
	srv.WithActions(am)

	inj := chaos.New(chaos.Config{})
	cli, err := DialContext(context.Background(), srv.Addr(), nil, 1, ClientOptions{
		Timeout: 300 * time.Millisecond, Retries: 5, Dialer: inj.Dialer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	inj.ForceDrop(1)
	if err := cli.Invoke("count", struct{}{}, nil); err == nil {
		t.Fatal("dropped invoke reported success")
	}
	if fc := cli.FaultCounts(); fc.Retries != 0 || fc.Errors != 1 {
		t.Fatalf("invoke fault counters = %+v, want 1 error / 0 retries", fc)
	}
	if err := cli.Invoke("count", struct{}{}, nil); err != nil {
		t.Fatalf("invoke after reconnect: %v", err)
	}
	if calls != 1 {
		t.Fatalf("action ran %d times, want exactly 1 (no blind retry)", calls)
	}
}

// TestDeadlineCoversReconnect: when the server is gone entirely, a
// context deadline still bounds the whole retry/redial dance.
func TestDeadlineCoversReconnect(t *testing.T) {
	reg := core.NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := DialContext(context.Background(), srv.Addr(), nil, 1, ClientOptions{
		Timeout: 5 * time.Second, Retries: 10,
		BackoffBase: 10 * time.Millisecond, BackoffCap: 50 * time.Millisecond,
		BreakerThreshold: -1,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	srv.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 250*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = cli.EvaluateContext(ctx, faultCounterName, false)
	if err == nil {
		t.Fatal("evaluate against closed server succeeded")
	}
	if d := time.Since(start); d > 600*time.Millisecond {
		t.Fatalf("retry dance overran its context deadline: %v", d)
	}
}

// TestFaultPlaneIsObservable: the client's error/retry/timeout counters
// are real registered counters — the paper's own mechanism watching the
// fault plane.
func TestFaultPlaneIsObservable(t *testing.T) {
	serverReg := core.NewRegistry()
	c := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative"})
	serverReg.MustRegister(c)
	srv, err := Serve("127.0.0.1:0", serverReg, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()

	monitorReg := core.NewRegistry()
	inj := chaos.New(chaos.Config{})
	cli, err := DialContext(context.Background(), srv.Addr(), monitorReg, 1, ClientOptions{
		Timeout: 300 * time.Millisecond, Retries: 2,
		BackoffBase: time.Millisecond, BackoffCap: 2 * time.Millisecond,
		Dialer: inj.Dialer(),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	inj.ForceDrop(1)
	if _, err := cli.Evaluate(faultCounterName, false); err != nil {
		t.Fatalf("evaluate with one drop: %v", err)
	}
	for counterName, want := range map[string]int64{
		"/parcels{locality#1/total}/count/errors":  1,
		"/parcels{locality#1/total}/count/retries": 1,
		"/parcels{locality#1/total}/breaker/state": int64(BreakerClosed),
	} {
		v, err := monitorReg.Evaluate(counterName, false)
		if err != nil {
			t.Fatalf("%s: %v", counterName, err)
		}
		if v.Raw != want {
			t.Fatalf("%s = %d, want %d", counterName, v.Raw, want)
		}
	}
	// Discovery sees the fault plane too.
	names, err := monitorReg.Discover("/parcels/count/timeouts")
	if err != nil || len(names) != 1 {
		t.Fatalf("Discover timeouts = %v, %v", names, err)
	}
}
