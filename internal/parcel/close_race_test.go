package parcel

// The Server.Close contract under concurrency: Close must return even
// with idle or mid-request connections open (it force-closes them), a
// handler accepted concurrently with Close must never leak past
// wg.Wait, and double Close is safe. Run in CI under -race.

import (
	"context"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func closeWithin(t *testing.T, srv *Server, d time.Duration) {
	t.Helper()
	done := make(chan error, 1)
	go func() { done <- srv.Close() }()
	select {
	case <-done:
	case <-time.After(d):
		t.Fatal("Server.Close did not return — leaked handler or wedged accept loop")
	}
}

// TestServeDialCloseCycle cycles Serve/Dial/Close with a concurrent
// in-flight request, 100 times; any handler leaked past wg.Wait or
// unsynchronised accept/close ordering shows up under -race or as a
// hang.
func TestServeDialCloseCycle(t *testing.T) {
	name := "/threads{locality#0/total}/count/cumulative"
	for i := 0; i < 100; i++ {
		reg := core.NewRegistry()
		c := core.NewRawCounter(
			core.Name{Object: "threads", Counter: "count/cumulative"}.
				WithInstances(core.LocalityInstance(0, "total", -1)...),
			core.Info{TypeName: "/threads/count/cumulative"})
		reg.MustRegister(c)
		srv, err := Serve("127.0.0.1:0", reg, 0)
		if err != nil {
			t.Fatalf("cycle %d Serve: %v", i, err)
		}
		cli, err := DialContext(context.Background(), srv.Addr(), nil, 1,
			ClientOptions{Timeout: 2 * time.Second, Retries: -1, BreakerThreshold: -1})
		if err != nil {
			t.Fatalf("cycle %d Dial: %v", i, err)
		}
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Races the Close below: success and failure are both fine,
			// hanging or a race report is not.
			cli.Evaluate(name, false)
		}()
		closeWithin(t, srv, 5*time.Second)
		wg.Wait()
		cli.Close()
	}
}

// TestCloseWithIdleConnection: an idle client holds its connection
// open; Close must not wait for the peer to go away.
func TestCloseWithIdleConnection(t *testing.T) {
	reg := core.NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	cli, err := Dial(srv.Addr(), nil, 1)
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()
	// Establish the server-side handler by exchanging one parcel.
	if _, err := cli.Types(); err != nil {
		t.Fatal(err)
	}
	closeWithin(t, srv, 2*time.Second)
}

// TestDoubleClose: Close twice (including concurrently) is safe.
func TestDoubleClose(t *testing.T) {
	reg := core.NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			srv.Close()
		}()
	}
	wg.Wait()
	closeWithin(t, srv, time.Second)
}

// TestDialAfterClose: connections racing into a closing server are
// refused or dropped, never serviced by a leaked handler.
func TestDialAfterClose(t *testing.T) {
	reg := core.NewRegistry()
	srv, err := Serve("127.0.0.1:0", reg, 0)
	if err != nil {
		t.Fatal(err)
	}
	addr := srv.Addr()
	closeWithin(t, srv, time.Second)
	cli, err := DialContext(context.Background(), addr, nil, 1,
		ClientOptions{Timeout: 300 * time.Millisecond, Retries: -1, BreakerThreshold: -1})
	if err != nil {
		return // refused outright: fine
	}
	defer cli.Close()
	if _, err := cli.Types(); err == nil {
		t.Fatal("request serviced by a closed server")
	}
}
