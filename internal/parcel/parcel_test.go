package parcel

import (
	"sync"
	"testing"

	"repro/internal/core"
)

// newServerFixture starts a server over a registry holding one raw
// counter and returns both plus a connected client.
func newServerFixture(t *testing.T) (*core.Registry, *core.RawCounter, *Server, *Client) {
	t.Helper()
	reg := core.NewRegistry()
	c := core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative", HelpText: "tasks"})
	reg.MustRegister(c)
	srv, err := Serve("127.0.0.1:0", reg, 0)
	if err != nil {
		t.Fatalf("Serve: %v", err)
	}
	t.Cleanup(func() { srv.Close() })
	cli, err := Dial(srv.Addr(), nil, 1)
	if err != nil {
		t.Fatalf("Dial: %v", err)
	}
	t.Cleanup(func() { cli.Close() })
	return reg, c, srv, cli
}

func TestRemoteEvaluate(t *testing.T) {
	_, c, _, cli := newServerFixture(t)
	c.Add(123)
	v, err := cli.Evaluate("/threads{locality#0/total}/count/cumulative", false)
	if err != nil {
		t.Fatalf("Evaluate: %v", err)
	}
	if v.Raw != 123 {
		t.Fatalf("remote value = %+v", v)
	}
	// Evaluate-and-reset works across the wire.
	if _, err := cli.Evaluate("/threads{locality#0/total}/count/cumulative", true); err != nil {
		t.Fatal(err)
	}
	if c.Load() != 0 {
		t.Fatal("remote reset did not apply")
	}
}

func TestRemoteEvaluateError(t *testing.T) {
	_, _, _, cli := newServerFixture(t)
	if _, err := cli.Evaluate("/nosuch{locality#0/total}/counter", false); err == nil {
		t.Fatal("unknown counter did not error")
	}
	if _, err := cli.Evaluate("garbage", false); err == nil {
		t.Fatal("garbage name did not error")
	}
}

func TestRemoteDiscoverAndTypes(t *testing.T) {
	_, _, _, cli := newServerFixture(t)
	names, err := cli.Discover("/threads/count/cumulative")
	if err != nil || len(names) != 1 {
		t.Fatalf("Discover = %v, %v", names, err)
	}
	infos, err := cli.Types()
	if err != nil {
		t.Fatalf("Types: %v", err)
	}
	found := false
	for _, i := range infos {
		if i.TypeName == "/threads/count/cumulative" {
			found = true
		}
	}
	if !found {
		t.Fatalf("counter type missing from %d remote types", len(infos))
	}
}

func TestRemoteActiveSet(t *testing.T) {
	_, c, _, cli := newServerFixture(t)
	added, err := cli.AddActive("/threads{locality#0/total}/count/cumulative")
	if err != nil || len(added) != 1 {
		t.Fatalf("AddActive = %v, %v", added, err)
	}
	c.Add(7)
	vals, err := cli.EvaluateActive(true)
	if err != nil || len(vals) != 1 || vals[0].Raw != 7 {
		t.Fatalf("EvaluateActive = %v, %v", vals, err)
	}
	c.Add(9)
	if err := cli.ResetActive(); err != nil {
		t.Fatal(err)
	}
	if c.Load() != 0 {
		t.Fatal("remote ResetActive did not apply")
	}
}

func TestParcelCountersOnServer(t *testing.T) {
	reg, _, _, cli := newServerFixture(t)
	if _, err := cli.Types(); err != nil { // generate some traffic
		t.Fatal(err)
	}
	recv, err := reg.Evaluate("/parcels{locality#0/total}/count/received", false)
	if err != nil {
		t.Fatalf("parcel counter: %v", err)
	}
	if recv.Raw == 0 {
		t.Fatal("server received-parcel counter is zero")
	}
	data, _ := reg.Evaluate("/parcels{locality#0/total}/data/sent", false)
	if data.Raw == 0 {
		t.Fatal("server data/sent counter is zero")
	}
}

func TestRemoteCounterProxy(t *testing.T) {
	_, c, _, cli := newServerFixture(t)
	c.Add(55)
	rc, err := NewRemoteCounter(cli, "/threads{locality#0/total}/count/cumulative")
	if err != nil {
		t.Fatalf("NewRemoteCounter: %v", err)
	}
	if got := rc.Value(false); got.Raw != 55 {
		t.Fatalf("proxy value = %+v", got)
	}
	if rc.Info().TypeName != "/threads/count/cumulative" {
		t.Fatalf("proxy info = %+v", rc.Info())
	}
	// A proxy is a core.Counter: meta counters can consume it. Register
	// it into a local registry and read it through /statistics.
	local := core.NewRegistry()
	local.MustRegister(rc)
	sc, err := local.Get("/statistics{/threads{locality#0/total}/count/cumulative}/max@100")
	if err != nil {
		t.Fatalf("statistics over proxy: %v", err)
	}
	sc.(*core.StatisticsCounter).Sample()
	if got := sc.Value(false).Float64(); got != 55 {
		t.Fatalf("statistics over remote = %v", got)
	}
	rc.Reset()
	if c.Load() != 0 {
		t.Fatal("proxy Reset did not reach the server")
	}
	if _, err := NewRemoteCounter(cli, "garbage"); err == nil {
		t.Fatal("bad name accepted")
	}
}

func TestConcurrentClients(t *testing.T) {
	_, c, srv, _ := newServerFixture(t)
	c.Add(1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(srv.Addr(), nil, 2)
			if err != nil {
				t.Errorf("Dial: %v", err)
				return
			}
			defer cli.Close()
			for j := 0; j < 20; j++ {
				if _, err := cli.Evaluate("/threads{locality#0/total}/count/cumulative", false); err != nil {
					t.Errorf("Evaluate: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestUnknownOp(t *testing.T) {
	_, _, _, cli := newServerFixture(t)
	if _, err := cli.roundTrip(request{Op: "bogus"}); err == nil {
		t.Fatal("unknown op accepted")
	}
}
