package parcel

// The spawn plane's contract, tested without chaos first: exactly-once
// execution under key dedupe and retries, deadline/cancel propagation
// into the action body, orphan reaping, typed failures, and the
// multiplexed poll loop under fan-out. The chaos-driven soak lives in
// package agas (it needs the router on top).

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/parcel/chaos"
)

// newSpawnFixture starts a server with an action table and optional
// chaos in the dial path.
func newSpawnFixture(t *testing.T, sopts ServerOptions, cfg *chaos.Config) (*ActionMap, *core.Registry, *Server, *chaos.Injector, *Client) {
	t.Helper()
	reg := core.NewRegistry()
	srv, err := ServeOptions("127.0.0.1:0", reg, 0, sopts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	actions := NewActionMap()
	srv.WithActions(actions)
	var inj *chaos.Injector
	copts := ClientOptions{Timeout: 2 * time.Second}
	if cfg != nil {
		inj = chaos.New(*cfg)
		copts.Dialer = inj.Dialer()
	}
	cli, err := DialContext(context.Background(), srv.Addr(), nil, 1, copts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cli.Close() })
	return actions, reg, srv, inj, cli
}

func TestSpawnJSONRoundTrip(t *testing.T) {
	actions, _, _, _, cli := newSpawnFixture(t, ServerOptions{}, nil)
	if err := RegisterAction(actions, "double", func(n int) (int, error) {
		return 2 * n, nil
	}); err != nil {
		t.Fatal(err)
	}
	res, err := cli.SpawnJSON(context.Background(), "double", json.RawMessage("21"))
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "42" {
		t.Fatalf("result = %s", res)
	}
}

func TestSpawnDedupeByKey(t *testing.T) {
	actions, _, _, _, cli := newSpawnFixture(t, ServerOptions{}, nil)
	var execs atomic.Int64
	if err := RegisterAction(actions, "count", func(struct{}) (int64, error) {
		return execs.Add(1), nil
	}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	// The same key spawned repeatedly dedupes into one execution — the
	// exactly-once guarantee a non-idempotent action depends on.
	for i := 0; i < 5; i++ {
		if _, err := cli.SpawnAction(ctx, "count", nil, "same-key"); err != nil {
			t.Fatal(err)
		}
	}
	st, err := cli.WaitSpawn(ctx, "same-key")
	if err != nil || st.Err != nil {
		t.Fatal(err, st.Err)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("action executed %d times, want exactly once", got)
	}
}

func TestSpawnExactlyOnceAcrossTransportRetry(t *testing.T) {
	cfg := chaos.Config{}
	actions, _, _, inj, cli := newSpawnFixture(t, ServerOptions{}, &cfg)
	var execs atomic.Int64
	if err := RegisterAction(actions, "once", func(struct{}) (int64, error) {
		return execs.Add(1), nil
	}); err != nil {
		t.Fatal(err)
	}
	// Warm the connection so the forced drop hits the spawn exchange,
	// not the dial.
	if _, err := cli.Types(); err != nil {
		t.Fatal(err)
	}
	// Drop exactly one connection mid-exchange: the spawn op's response
	// is lost, the outcome ambiguous, and SpawnJSON must re-issue the
	// same key rather than hang or double-run.
	inj.ForceDrop(1)
	res, err := cli.SpawnJSON(context.Background(), "once", nil)
	if err != nil {
		t.Fatal(err)
	}
	if string(res) != "1" {
		t.Fatalf("result = %s", res)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("action executed %d times across retry, want exactly once", got)
	}
	if fc := cli.FaultCounts(); fc.Retries < 1 {
		t.Fatalf("fault counters = %+v, want ≥1 retry recorded", fc)
	}
}

func TestSpawnDeadlinePropagatesToActionBody(t *testing.T) {
	actions, _, _, _, cli := newSpawnFixture(t, ServerOptions{}, nil)
	bodySawCancel := make(chan struct{})
	if err := RegisterActionCtx(actions, "stall", func(ctx context.Context, _ struct{}) (int, error) {
		<-ctx.Done() // cooperative: run until the shipped budget lapses
		close(bodySawCancel)
		return 0, ctx.Err()
	}); err != nil {
		t.Fatal(err)
	}
	const budget = 250 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), budget)
	defer cancel()
	start := time.Now()
	_, err := cli.SpawnJSON(ctx, "stall", nil)
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("deadline-bounded stalling spawn returned nil error")
	}
	// Either shape is a correct bound: the remote side cancelling the
	// body on the shipped budget, or the local ctx lapsing mid-wait.
	if !errors.Is(err, ErrSpawnCancelled) && !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error = %v", err)
	}
	if elapsed > budget+time.Second {
		t.Fatalf("spawn resolved after %v, want ≈%v", elapsed, budget)
	}
	select {
	case <-bodySawCancel:
	case <-time.After(2 * time.Second):
		t.Fatal("action body never observed the propagated deadline")
	}
}

func TestSpawnClientCancelReachesServer(t *testing.T) {
	actions, _, _, _, cli := newSpawnFixture(t, ServerOptions{}, nil)
	bodySawCancel := make(chan struct{})
	if err := RegisterActionCtx(actions, "stall", func(ctx context.Context, _ struct{}) (int, error) {
		<-ctx.Done()
		close(bodySawCancel)
		return 0, ctx.Err()
	}); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := cli.SpawnJSON(ctx, "stall", nil)
		done <- err
	}()
	time.Sleep(100 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("error = %v, want context.Canceled", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("cancelled spawn never resolved locally")
	}
	// The local cancel ships a best-effort spawn_cancel op; the remote
	// body must actually stop.
	select {
	case <-bodySawCancel:
	case <-time.After(2 * time.Second):
		t.Fatal("remote action body kept running after client cancel")
	}
}

func TestSpawnOrphanReaped(t *testing.T) {
	sopts := ServerOptions{SpawnLease: 80 * time.Millisecond}
	actions, reg, _, _, cli := newSpawnFixture(t, sopts, nil)
	bodySawCancel := make(chan struct{})
	if err := RegisterActionCtx(actions, "stall", func(ctx context.Context, _ struct{}) (int, error) {
		<-ctx.Done()
		close(bodySawCancel)
		return 0, ctx.Err()
	}); err != nil {
		t.Fatal(err)
	}
	// Spawn, then never poll again: the client "dies". Past the lease
	// the reaper must cancel the body and count the orphan.
	if _, err := cli.SpawnAction(context.Background(), "stall", nil, "abandoned"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-bodySawCancel:
	case <-time.After(3 * time.Second):
		t.Fatal("orphaned action body was never reaped")
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		v, err := reg.Evaluate("/runtime{locality#0/total}/remote/count/orphaned", false)
		if err != nil {
			t.Fatal(err)
		}
		if v.Raw == 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("orphaned counter = %d, want 1", v.Raw)
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The orphaned entry resolves cancelled for a client that comes
	// back asking.
	st, err := cli.WaitSpawn(context.Background(), "abandoned")
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(st.Err, ErrSpawnCancelled) {
		t.Fatalf("orphaned spawn status = %v, want ErrSpawnCancelled", st.Err)
	}
}

func TestSpawnTypedFailures(t *testing.T) {
	// Completed entries stay in the table for the retention window (a
	// retried key must find them), so the limit covers the two failed
	// spawns below plus the stalling occupant.
	actions, _, _, _, cli := newSpawnFixture(t, ServerOptions{MaxSpawnTasks: 3}, nil)
	if err := RegisterAction(actions, "fail", func(struct{}) (int, error) {
		return 0, fmt.Errorf("deliberate failure")
	}); err != nil {
		t.Fatal(err)
	}
	if err := RegisterActionCtx(actions, "stall", func(ctx context.Context, _ struct{}) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	}); err != nil {
		t.Fatal(err)
	}
	if err := RegisterAction(actions, "boom", func(struct{}) (int, error) {
		panic("kaboom")
	}); err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	// Unknown action: typed, and provably not executing.
	_, err := cli.SpawnJSON(ctx, "nope", nil)
	if !errors.Is(err, ErrActionUnknown) {
		t.Fatalf("unknown action error = %v", err)
	}

	// Action-returned error: *ActionError, transport fine.
	_, err = cli.SpawnJSON(ctx, "fail", nil)
	var ae *ActionError
	if !errors.As(err, &ae) || ae.Panic || ae.Action != "fail" {
		t.Fatalf("action error = %v", err)
	}

	// Panicking body: isolated into *ActionError{Panic} — the server
	// survives (later requests on this same fixture prove it).
	_, err = cli.SpawnJSON(ctx, "boom", nil)
	if !errors.As(err, &ae) || !ae.Panic {
		t.Fatalf("panic error = %v", err)
	}

	// Table full: the single slot is occupied by a stalling spawn, the
	// next key is refused typed.
	if _, err := cli.SpawnAction(ctx, "stall", nil, "occupant"); err != nil {
		t.Fatal(err)
	}
	st, err := cli.SpawnAction(ctx, "stall", nil, "overflow")
	if err != nil {
		t.Fatal(err)
	}
	if !errors.Is(st.Err, ErrSpawnLimit) {
		t.Fatalf("overflow status = %v, want ErrSpawnLimit", st.Err)
	}
	if err := cli.CancelSpawn(ctx, "occupant"); err != nil {
		t.Fatal(err)
	}

	// Polling a key the server never admitted: typed ErrSpawnUnknown.
	sts, err := cli.PollSpawns(ctx, []string{"never-was"}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if st := sts["never-was"]; !st.Done || !errors.Is(st.Err, ErrSpawnUnknown) {
		t.Fatalf("unknown key status = %+v", st)
	}
}

func TestSpawnFanOutMultiplexed(t *testing.T) {
	actions, _, _, _, cli := newSpawnFixture(t, ServerOptions{}, nil)
	if err := RegisterAction(actions, "square", func(n int) (int, error) {
		time.Sleep(time.Duration(n%7) * time.Millisecond)
		return n * n, nil
	}); err != nil {
		t.Fatal(err)
	}
	// 200 concurrent futures share ONE poll loop on ONE connection; a
	// per-future blocking poll would serialize into minutes.
	const fan = 200
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	futs := make([]*RemoteFuture[int], fan)
	for i := range futs {
		futs[i] = SpawnOn[int, int](ctx, cli, "square", i)
	}
	for i, f := range futs {
		v, err := f.GetContext(ctx)
		if err != nil || v != i*i {
			t.Fatalf("square(%d) = %d, %v", i, v, err)
		}
	}
}

func TestSpawnGetContextBoundsAbandonedWait(t *testing.T) {
	actions, _, _, _, cli := newSpawnFixture(t, ServerOptions{}, nil)
	if err := RegisterActionCtx(actions, "stall", func(ctx context.Context, _ struct{}) (int, error) {
		<-ctx.Done()
		return 0, ctx.Err()
	}); err != nil {
		t.Fatal(err)
	}
	f := SpawnOn[struct{}, int](context.Background(), cli, "stall", struct{}{})
	wctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	if _, err := f.GetContext(wctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("abandoned wait = %v, want context.DeadlineExceeded", err)
	}
	if f.Ready() {
		t.Fatal("future resolved by an abandoned wait")
	}
}
