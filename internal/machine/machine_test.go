package machine

import (
	"strings"
	"testing"
)

func TestIvyBridgePreset(t *testing.T) {
	m := IvyBridge()
	if err := m.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if m.TotalCores() != 20 {
		t.Fatalf("TotalCores = %d", m.TotalCores())
	}
	if m.CacheLineBytes != 64 {
		t.Fatalf("cache line = %d", m.CacheLineBytes)
	}
	ceiling := m.StdThreadCeiling
	if ceiling < 80000 || ceiling > 97000 {
		t.Fatalf("thread ceiling %d outside the paper's observed 80k–97k", ceiling)
	}
	oh1 := m.HPXOverheadNs(1)
	if oh1 < 500 || oh1 > 1000 {
		t.Fatalf("1-core HPX overhead %v ns outside the paper's 0.5–1 µs", oh1)
	}
	if !strings.Contains(m.String(), "2 sockets x 10 cores") {
		t.Fatalf("String() = %q", m.String())
	}
}

func TestSocketsUsed(t *testing.T) {
	m := IvyBridge()
	cases := map[int]int{0: 0, 1: 1, 10: 1, 11: 2, 20: 2, 25: 2}
	for cores, want := range cases {
		if got := m.SocketsUsed(cores); got != want {
			t.Errorf("SocketsUsed(%d) = %d want %d", cores, got, want)
		}
	}
	if m.SpansSockets(10) || !m.SpansSockets(11) {
		t.Error("SpansSockets boundary wrong")
	}
}

func TestBandwidthCapacityFirstTouch(t *testing.T) {
	m := IvyBridge()
	one := m.BandwidthCapacity(10)
	two := m.BandwidthCapacity(20)
	if one != m.SocketBandwidth {
		t.Fatalf("single-socket capacity = %v", one)
	}
	// The second socket adds only the interconnect-limited remote
	// fraction, not a full socket.
	if two <= one || two >= 2*one {
		t.Fatalf("dual-socket capacity = %v (one = %v)", two, one)
	}
}

func TestHPXOverheadGrowsWithCores(t *testing.T) {
	m := IvyBridge()
	prev := 0.0
	for _, k := range []int{1, 5, 10, 11, 20} {
		oh := m.HPXOverheadNs(k)
		if oh <= prev {
			t.Fatalf("overhead not monotone at %d cores: %v <= %v", k, oh, prev)
		}
		prev = oh
	}
	// Crossing the socket boundary jumps.
	if m.HPXOverheadNs(11) < 1.4*m.HPXOverheadNs(10) {
		t.Fatal("no socket-boundary overhead jump")
	}
}

func TestHPXContentionShape(t *testing.T) {
	m := IvyBridge()
	if m.HPXContentionNs(1) != 0 {
		t.Fatal("1-core contention nonzero")
	}
	within := m.HPXContentionNs(10)
	beyond := m.HPXContentionNs(11) - within
	perLocal := within / 9
	if beyond <= perLocal {
		t.Fatalf("remote contention per core (%v) not steeper than local (%v)", beyond, perLocal)
	}
	if m.HPXContentionNs(20) <= m.HPXContentionNs(11) {
		t.Fatal("contention not monotone past the socket boundary")
	}
}

func TestStdCreateContention(t *testing.T) {
	m := IvyBridge()
	if m.StdCreateNs(0) != m.StdThreadCreateNs {
		t.Fatal("creation cost at 0 live threads")
	}
	if m.StdCreateNs(50000) <= m.StdCreateNs(100) {
		t.Fatal("creation cost does not grow with live threads")
	}
}

func TestValidate(t *testing.T) {
	bad := IvyBridge()
	bad.Sockets = 0
	if bad.Validate() == nil {
		t.Error("zero sockets accepted")
	}
	bad = IvyBridge()
	bad.SocketBandwidth = 0
	if bad.Validate() == nil {
		t.Error("zero bandwidth accepted")
	}
	bad = IvyBridge()
	bad.CacheLineBytes = 0
	if bad.Validate() == nil {
		t.Error("zero cache line accepted")
	}
}

func TestEpycPreset(t *testing.T) {
	m := EpycRome()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if m.TotalCores() != 64 {
		t.Fatalf("cores = %d", m.TotalCores())
	}
	if !m.SpansSockets(33) || m.SpansSockets(32) {
		t.Fatal("socket boundary wrong")
	}
}

func TestPresets(t *testing.T) {
	p := Presets()
	if len(p) != 2 {
		t.Fatalf("presets = %v", p)
	}
	for name, m := range p {
		if err := m.Validate(); err != nil {
			t.Errorf("preset %s invalid: %v", name, err)
		}
	}
}
