// Package machine models the execution platform the simulator (package
// sim) schedules on: core/socket topology, clock, memory system and the
// calibrated cost parameters of the two runtime models. The shipped
// IvyBridge preset describes the paper's test node (Table III: dual
// socket Intel Ivy Bridge E5-2670 v2, 2×10 cores, 2.50/2.80 GHz, 64-byte
// cache lines, 128 GiB RAM).
package machine

import "fmt"

// Machine describes one node.
type Machine struct {
	// Name labels the platform in reports.
	Name string
	// Sockets and CoresPerSocket give the topology; the paper's strong
	// scaling fills socket 0 first, so runs with more than CoresPerSocket
	// cores span the socket boundary.
	Sockets        int
	CoresPerSocket int
	// ClockGHz is the nominal core frequency.
	ClockGHz float64
	// CacheLineBytes is the coherence granule; off-core request counters
	// convert to bytes with this factor (the paper multiplies counts by
	// 64).
	CacheLineBytes int64
	// RAMBytes is installed memory.
	RAMBytes int64

	// SocketBandwidth is the sustainable off-core bandwidth of one
	// socket's memory controllers in bytes/second. Total capacity grows
	// with the number of sockets in use.
	SocketBandwidth float64
	// CrossSocketPenalty stretches memory-bound work once the active
	// cores span sockets (remote-NUMA latency and coherence traffic).
	// 0.25 means up to +25% on fully memory-bound work.
	CrossSocketPenalty float64
	// RemoteBandwidthFraction is the extra bandwidth the second socket
	// contributes. The benchmarks allocate on socket 0 (first touch), so
	// cores on socket 1 reach memory through the interconnect: capacity
	// grows by only this fraction of a socket's bandwidth per extra
	// socket, not by a full socket.
	RemoteBandwidthFraction float64

	// HPX scheduler cost model.
	//
	// HPXTaskOverheadNs is the base cost of scheduling one lightweight
	// task (enqueue, dequeue, context setup). The paper measures
	// 500–1000 ns on its platform.
	HPXTaskOverheadNs float64
	// HPXStealContention adds overhead per additional active core
	// (queue polling and steal attempts): overhead grows by this factor
	// times (cores-1).
	HPXStealContention float64
	// HPXCrossSocketOverhead multiplies task overhead once cores span
	// sockets (steals traverse the interconnect).
	HPXCrossSocketOverhead float64
	// HPXLocalContentionNs is the per-task execution-time inflation per
	// additional core on the same socket (cache and queue pressure from
	// concurrent fine-grained scheduling) — the paper's observed growth
	// of the /threads/time/average counter with core count.
	HPXLocalContentionNs float64
	// HPXRemoteContentionNs is the much larger per-task inflation per
	// core beyond the socket boundary (remote caches, interconnect
	// coherence). This is what turns the very fine-grained benchmarks'
	// scaling curves upward past 10 cores (Figures 5, 6, 11, 12).
	HPXRemoteContentionNs float64

	// std::async (pthread-per-task) cost model.
	//
	// StdThreadCreateNs is pthread create+join cost paid in the spawning
	// thread.
	StdThreadCreateNs float64
	// StdCreateContention grows creation cost with the number of live
	// threads (kernel run-queue and allocator lock contention), per
	// 1000 live threads.
	StdCreateContention float64
	// StdOversubscription stretches running work when more threads than
	// cores are runnable (context-switch and cache-pollution cost), per
	// unit of log2 oversubscription.
	StdOversubscription float64
	// StdStackBytes is the per-thread stack reservation.
	StdStackBytes int64
	// StdThreadCeiling is the number of live threads at which creation
	// fails (address space / kernel limits). The paper observes failures
	// at 80k–97k live pthreads.
	StdThreadCeiling int64
}

// IvyBridge returns the paper's test platform (Table III) with cost
// parameters calibrated to the paper's measurements (Table V task
// overheads, Figures 8–14 shapes).
func IvyBridge() Machine {
	return Machine{
		Name:           "Intel Ivy Bridge E5-2670v2 (2 x 10 cores)",
		Sockets:        2,
		CoresPerSocket: 10,
		ClockGHz:       2.8,
		CacheLineBytes: 64,
		RAMBytes:       128 << 30,

		SocketBandwidth:         40e9, // sustainable stream-like bytes/s per socket
		CrossSocketPenalty:      0.35,
		RemoteBandwidthFraction: 0.30,

		HPXTaskOverheadNs:      550,
		HPXStealContention:     0.025,
		HPXCrossSocketOverhead: 1.6,
		HPXLocalContentionNs:   70,
		HPXRemoteContentionNs:  450,

		StdThreadCreateNs:   17000,
		StdCreateContention: 0.08,
		StdOversubscription: 0.01,
		StdStackBytes:       8 << 20,
		StdThreadCeiling:    90000,
	}
}

// EpycRome returns a forward-looking platform: a dual-socket 2×32-core
// AMD Rome-class node with far more memory bandwidth and cores than the
// paper's testbed. Running the suite on it shows how the paper's
// granularity thresholds shift on a machine where the socket boundary
// sits at 32 cores: the very fine benchmarks gain headroom, the
// bandwidth-bound ones saturate later.
func EpycRome() Machine {
	return Machine{
		Name:           "AMD EPYC Rome-class (2 x 32 cores)",
		Sockets:        2,
		CoresPerSocket: 32,
		ClockGHz:       2.5,
		CacheLineBytes: 64,
		RAMBytes:       512 << 30,

		SocketBandwidth:         120e9,
		CrossSocketPenalty:      0.25,
		RemoteBandwidthFraction: 0.45,

		HPXTaskOverheadNs:      350,
		HPXStealContention:     0.012,
		HPXCrossSocketOverhead: 1.4,
		HPXLocalContentionNs:   35,
		HPXRemoteContentionNs:  220,

		StdThreadCreateNs:   12000,
		StdCreateContention: 0.08,
		StdOversubscription: 0.01,
		StdStackBytes:       8 << 20,
		StdThreadCeiling:    350000,
	}
}

// Presets maps the machine names accepted on command lines.
func Presets() map[string]Machine {
	return map[string]Machine{
		"ivybridge": IvyBridge(),
		"epyc":      EpycRome(),
	}
}

// TotalCores returns Sockets*CoresPerSocket.
func (m Machine) TotalCores() int { return m.Sockets * m.CoresPerSocket }

// SocketsUsed returns how many sockets a run on the given number of
// cores touches under fill-first-socket pinning (the paper's affinity).
func (m Machine) SocketsUsed(cores int) int {
	if cores <= 0 {
		return 0
	}
	s := (cores + m.CoresPerSocket - 1) / m.CoresPerSocket
	if s > m.Sockets {
		s = m.Sockets
	}
	return s
}

// SpansSockets reports whether the given core count crosses the socket
// boundary.
func (m Machine) SpansSockets(cores int) bool { return m.SocketsUsed(cores) > 1 }

// BandwidthCapacity returns the off-core bandwidth available to a run on
// the given number of cores, in bytes/second. Memory is first-touch
// allocated on socket 0, so extra sockets add only RemoteBandwidthFraction
// of a socket's bandwidth each (interconnect-limited remote access).
func (m Machine) BandwidthCapacity(cores int) float64 {
	extra := float64(m.SocketsUsed(cores) - 1)
	return m.SocketBandwidth * (1 + extra*m.RemoteBandwidthFraction)
}

// HPXOverheadNs returns the modelled per-task scheduling overhead of the
// lightweight runtime at the given concurrency.
func (m Machine) HPXOverheadNs(cores int) float64 {
	oh := m.HPXTaskOverheadNs * (1 + m.HPXStealContention*float64(cores-1))
	if m.SpansSockets(cores) {
		oh *= m.HPXCrossSocketOverhead
	}
	return oh
}

// HPXContentionNs returns the per-task execution-time inflation at the
// given concurrency: a local term per same-socket core plus a steeper
// remote term per core beyond the socket boundary.
func (m Machine) HPXContentionNs(cores int) float64 {
	local := cores
	if local > m.CoresPerSocket {
		local = m.CoresPerSocket
	}
	c := m.HPXLocalContentionNs * float64(local-1)
	if cores > m.CoresPerSocket {
		c += m.HPXRemoteContentionNs * float64(cores-m.CoresPerSocket)
	}
	return c
}

// StdCreateNs returns the modelled pthread creation cost with the given
// number of threads already live.
func (m Machine) StdCreateNs(live int64) float64 {
	return m.StdThreadCreateNs * (1 + m.StdCreateContention*float64(live)/1000)
}

// Validate reports configuration errors.
func (m Machine) Validate() error {
	switch {
	case m.Sockets <= 0 || m.CoresPerSocket <= 0:
		return fmt.Errorf("machine: topology %dx%d invalid", m.Sockets, m.CoresPerSocket)
	case m.SocketBandwidth <= 0:
		return fmt.Errorf("machine: socket bandwidth %v invalid", m.SocketBandwidth)
	case m.CacheLineBytes <= 0:
		return fmt.Errorf("machine: cache line %d invalid", m.CacheLineBytes)
	}
	return nil
}

// String summarises the platform.
func (m Machine) String() string {
	return fmt.Sprintf("%s: %d sockets x %d cores @ %.2f GHz, %d GiB RAM",
		m.Name, m.Sockets, m.CoresPerSocket, m.ClockGHz, m.RAMBytes>>30)
}
