package apex

import (
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/taskrt"
)

func newFixture(t *testing.T) (*core.Registry, *core.RawCounter, *Engine) {
	t.Helper()
	reg := core.NewRegistry()
	c := core.NewRawCounter(
		core.Name{Object: "app", Counter: "load"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/app/load"})
	reg.MustRegister(c)
	return reg, c, NewEngine(reg)
}

func TestPolicyValidation(t *testing.T) {
	_, _, e := newFixture(t)
	bad := []*Policy{
		{Name: "no-counter", Period: time.Second, Rule: func(core.Value) bool { return true }, Action: func(core.Value) {}},
		{Name: "no-rule", Counter: "/app{locality#0/total}/load", Period: time.Second, Action: func(core.Value) {}},
		{Name: "no-action", Counter: "/app{locality#0/total}/load", Period: time.Second, Rule: func(core.Value) bool { return true }},
		{Name: "no-period", Counter: "/app{locality#0/total}/load", Rule: func(core.Value) bool { return true }, Action: func(core.Value) {}},
		{Name: "bad-counter", Counter: "/nosuch{locality#0/total}/x", Period: time.Second, Rule: func(core.Value) bool { return true }, Action: func(core.Value) {}},
	}
	for _, p := range bad {
		if err := e.AddPolicy(p); err == nil {
			t.Errorf("policy %q accepted", p.Name)
		}
	}
}

func TestPollFiresOnRule(t *testing.T) {
	_, c, e := newFixture(t)
	fired := 0
	err := e.AddPolicy(&Policy{
		Name:    "high-load",
		Counter: "/app{locality#0/total}/load",
		Period:  time.Hour, // Poll drives it; the timer never ticks
		Rule:    func(v core.Value) bool { return v.Float64() > 100 },
		Action:  func(core.Value) { fired++ },
	})
	if err != nil {
		t.Fatalf("AddPolicy: %v", err)
	}
	e.Poll()
	if fired != 0 {
		t.Fatal("fired below threshold")
	}
	c.Set(500)
	e.Poll()
	e.Poll()
	if fired != 2 {
		t.Fatalf("fired %d times", fired)
	}
	events := e.Events()
	if len(events) != 2 || events[0].Policy != "high-load" || events[0].Value.Raw != 500 {
		t.Fatalf("events = %+v", events)
	}
}

func TestEngineStartStop(t *testing.T) {
	_, c, e := newFixture(t)
	c.Set(999)
	fired := make(chan struct{}, 64)
	if err := e.AddPolicy(&Policy{
		Name:    "tick",
		Counter: "/app{locality#0/total}/load",
		Period:  time.Millisecond,
		Rule:    func(v core.Value) bool { return v.Float64() > 0 },
		Action:  func(core.Value) { fired <- struct{}{} },
	}); err != nil {
		t.Fatal(err)
	}
	e.Start()
	e.Start() // idempotent
	select {
	case <-fired:
	case <-time.After(2 * time.Second):
		t.Fatal("policy never fired under Start")
	}
	e.Stop()
	e.Stop() // idempotent
}

func TestIdleThrottlePolicy(t *testing.T) {
	rt := taskrt.New(taskrt.WithWorkers(4))
	defer rt.Shutdown()
	reg := core.NewRegistry()
	if err := rt.RegisterCounters(reg); err != nil {
		t.Fatal(err)
	}
	e := NewEngine(reg)
	p := IdleThrottlePolicy(rt, time.Millisecond, 1000, 8000)
	if err := e.AddPolicy(p); err != nil {
		t.Fatalf("AddPolicy: %v", err)
	}
	// The runtime idles: the idle-rate is ~100% (10000), so repeated
	// polls must step the concurrency limit down to 1.
	time.Sleep(20 * time.Millisecond)
	for i := 0; i < 10; i++ {
		e.Poll()
	}
	if got := rt.ConcurrencyLimit(); got != 1 {
		t.Fatalf("throttled limit = %d want 1", got)
	}
	if len(e.Events()) == 0 {
		t.Fatal("no throttle events recorded")
	}
	// The throttled runtime must still execute tasks correctly.
	f := taskrt.AsyncF(rt, func() int { return 11 })
	if got := f.Get(); got != 11 {
		t.Fatalf("task under throttle = %d", got)
	}
}

func TestIdleThrottleRaisesUnderLoad(t *testing.T) {
	rt := taskrt.New(taskrt.WithWorkers(4))
	defer rt.Shutdown()
	reg := core.NewRegistry()
	if err := rt.RegisterCounters(reg); err != nil {
		t.Fatal(err)
	}
	rt.SetConcurrencyLimit(2)
	e := NewEngine(reg)
	// The two throttled workers idle at 100%, so the total idle-rate
	// sits near 50% while the active pair is saturated; a raise
	// threshold of 60% captures that state.
	if err := e.AddPolicy(IdleThrottlePolicy(rt, time.Millisecond, 6000, 9999)); err != nil {
		t.Fatal(err)
	}
	// Saturate the runtime, then reset the idle accounting so the
	// sampled window reflects the busy phase.
	stop := make(chan struct{})
	var fs []*taskrt.Future[int]
	for i := 0; i < 8; i++ {
		fs = append(fs, taskrt.AsyncF(rt, func() int { <-stop; return 0 }))
	}
	name := core.Name{Object: "threads", Counter: "idle-rate"}.
		WithInstances(core.LocalityInstance(0, "total", -1)...)
	if _, err := reg.Evaluate(name.String(), true); err != nil { // reset window
		t.Fatal(err)
	}
	time.Sleep(10 * time.Millisecond)
	e.Poll()
	if got := rt.ConcurrencyLimit(); got != 3 {
		t.Fatalf("limit after busy poll = %d want 3", got)
	}
	close(stop)
	for _, f := range fs {
		f.Get()
	}
}

func TestThresholdPolicy(t *testing.T) {
	reg, c, e := newFixture(t)
	_ = reg
	var above, below int
	pAbove := ThresholdPolicy("hi", "/app{locality#0/total}/load", time.Hour, 100, true,
		func(core.Value) { above++ })
	pBelow := ThresholdPolicy("lo", "/app{locality#0/total}/load", time.Hour, 10, false,
		func(core.Value) { below++ })
	if err := e.AddPolicy(pAbove); err != nil {
		t.Fatal(err)
	}
	if err := e.AddPolicy(pBelow); err != nil {
		t.Fatal(err)
	}
	c.Set(5)
	e.Poll() // below 10 -> lo fires
	c.Set(50)
	e.Poll() // between -> neither
	c.Set(500)
	e.Poll() // above 100 -> hi fires
	if above != 1 || below != 1 {
		t.Fatalf("above=%d below=%d", above, below)
	}
}

func TestPanickingPolicyContained(t *testing.T) {
	_, c, e := newFixture(t)
	c.Set(1)
	healthy := 0
	if err := e.AddPolicy(&Policy{
		Name: "bomb", Counter: "/app{locality#0/total}/load", Period: time.Hour,
		Rule:   func(core.Value) bool { return true },
		Action: func(core.Value) { panic("policy bug") },
	}); err != nil {
		t.Fatal(err)
	}
	if err := e.AddPolicy(&Policy{
		Name: "healthy", Counter: "/app{locality#0/total}/load", Period: time.Hour,
		Rule:   func(core.Value) bool { return true },
		Action: func(core.Value) { healthy++ },
	}); err != nil {
		t.Fatal(err)
	}
	e.Poll() // must not panic the test
	e.Poll()
	if healthy != 2 {
		t.Fatalf("healthy policy ran %d times next to the bomb", healthy)
	}
	var panics int
	for _, ev := range e.Events() {
		if ev.Panicked {
			panics++
		}
	}
	if panics != 2 {
		t.Fatalf("panic events = %d", panics)
	}
}
