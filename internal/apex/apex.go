// Package apex is a miniature of the APEX introspection and adaptivity
// library the paper points to in its outlook (§VII): a policy engine
// that periodically samples performance counters through the uniform
// counter framework and executes user-defined actions when rule
// conditions hold — closing the loop from measurement to runtime
// adaptation.
//
// The shipped IdleThrottlePolicy demonstrates the paper's motivating use
// case: watch /threads{...}/idle-rate and throttle the task runtime's
// active worker count when cores mostly idle, releasing them again when
// the runtime saturates.
package apex

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/taskrt"
)

// Policy is one measure→decide→act rule.
type Policy struct {
	// Name identifies the policy in the event log.
	Name string
	// Counter is the full name of the counter to sample.
	Counter string
	// Period is the sampling interval.
	Period time.Duration
	// Rule inspects the sampled value and decides whether to act.
	Rule func(v core.Value) bool
	// Action executes when Rule returns true.
	Action func(v core.Value)
}

// Event records one policy firing.
type Event struct {
	// Policy names the rule that fired.
	Policy string
	// Value is the counter sample that triggered it.
	Value core.Value
	// Time is when the action ran.
	Time time.Time
	// Panicked marks an event where the rule or action panicked; the
	// engine contained it and the policy keeps running.
	Panicked bool
}

// Engine samples counters and drives policies. Create with NewEngine,
// register policies, then Start.
type Engine struct {
	reg *core.Registry

	mu       sync.Mutex
	policies []*Policy
	events   []Event
	stop     chan struct{}
	wg       sync.WaitGroup
}

// NewEngine creates an engine over a counter registry.
func NewEngine(reg *core.Registry) *Engine {
	return &Engine{reg: reg}
}

// AddPolicy validates and registers a policy. Policies added after
// Start are picked up only by the next Start.
func (e *Engine) AddPolicy(p *Policy) error {
	if p.Counter == "" || p.Rule == nil || p.Action == nil || p.Period <= 0 {
		return fmt.Errorf("apex: policy %q incomplete", p.Name)
	}
	if _, err := e.reg.Get(p.Counter); err != nil {
		return fmt.Errorf("apex: policy %q: %w", p.Name, err)
	}
	e.mu.Lock()
	e.policies = append(e.policies, p)
	e.mu.Unlock()
	return nil
}

// Start launches one sampling loop per policy.
func (e *Engine) Start() {
	e.mu.Lock()
	defer e.mu.Unlock()
	if e.stop != nil {
		return
	}
	e.stop = make(chan struct{})
	for _, p := range e.policies {
		p := p
		e.wg.Add(1)
		go e.run(p)
	}
}

// Stop halts all sampling loops and waits for them.
func (e *Engine) Stop() {
	e.mu.Lock()
	stop := e.stop
	e.stop = nil
	e.mu.Unlock()
	if stop != nil {
		close(stop)
		e.wg.Wait()
	}
}

// Events returns a copy of the action log.
func (e *Engine) Events() []Event {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append([]Event(nil), e.events...)
}

func (e *Engine) run(p *Policy) {
	defer e.wg.Done()
	e.mu.Lock()
	stop := e.stop
	e.mu.Unlock()
	ticker := time.NewTicker(p.Period)
	defer ticker.Stop()
	for {
		select {
		case <-stop:
			return
		case <-ticker.C:
			e.tick(p)
		}
	}
}

// tick samples the policy's counter once and applies the rule; exported
// through Poll for deterministic tests. A panicking rule or action is
// contained: the policy keeps running on later ticks and the panic is
// recorded as a failure event — a broken policy must not take down the
// application it is tuning.
func (e *Engine) tick(p *Policy) {
	c, err := e.reg.Get(p.Counter)
	if err != nil {
		return
	}
	v := c.Value(false)
	if !v.Valid() {
		return
	}
	fired, panicked := e.apply(p, v)
	if !fired && !panicked {
		return
	}
	ev := Event{Policy: p.Name, Value: v, Time: time.Now(), Panicked: panicked}
	e.mu.Lock()
	e.events = append(e.events, ev)
	e.mu.Unlock()
}

// apply runs rule+action under a recover barrier.
func (e *Engine) apply(p *Policy, v core.Value) (fired, panicked bool) {
	defer func() {
		if recover() != nil {
			panicked = true
		}
	}()
	if !p.Rule(v) {
		return false, false
	}
	p.Action(v)
	return true, false
}

// Poll runs every registered policy once, synchronously — the
// deterministic path tests and batch tools use instead of Start's
// timers.
func (e *Engine) Poll() {
	e.mu.Lock()
	policies := append([]*Policy(nil), e.policies...)
	e.mu.Unlock()
	for _, p := range policies {
		e.tick(p)
	}
}

// ThresholdPolicy builds the common rule shape: fire action when the
// counter's value crosses the threshold in the given direction.
func ThresholdPolicy(name, counter string, period time.Duration, threshold float64, above bool, action func(core.Value)) *Policy {
	return &Policy{
		Name:    name,
		Counter: counter,
		Period:  period,
		Rule: func(v core.Value) bool {
			if above {
				return v.Float64() > threshold
			}
			return v.Float64() < threshold
		},
		Action: action,
	}
}

// IdleThrottlePolicy builds the paper's motivating adaptation: sample
// the runtime's total idle-rate (in 0.01% units) every period; when it
// exceeds highIdle the concurrency limit steps down (never below 1),
// and when it falls below lowIdle the limit steps back up.
func IdleThrottlePolicy(rt *taskrt.Runtime, period time.Duration, lowIdle, highIdle float64) *Policy {
	counter := core.Name{Object: "threads", Counter: "idle-rate"}.
		WithInstances(core.LocalityInstance(rt.Locality(), "total", -1)...).String()
	return &Policy{
		Name:    "idle-throttle",
		Counter: counter,
		Period:  period,
		Rule: func(v core.Value) bool {
			r := v.Float64()
			return r > highIdle || r < lowIdle
		},
		Action: func(v core.Value) {
			limit := rt.ConcurrencyLimit()
			if v.Float64() > highIdle && limit > 1 {
				rt.SetConcurrencyLimit(limit - 1)
			} else if v.Float64() < lowIdle && limit < rt.NumWorkers() {
				rt.SetConcurrencyLimit(limit + 1)
			}
		},
	}
}
