package stats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"strings"
	"testing"
	"testing/quick"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{5, 1, 3})
	if s.N != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 || s.Mean != 3 {
		t.Fatalf("summary = %+v", s)
	}
	if s.Stddev != math.Sqrt(8.0/3.0) {
		t.Fatalf("stddev = %v", s.Stddev)
	}
}

func TestSummarizeEvenMedian(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4})
	if s.Median != 2.5 {
		t.Fatalf("median = %v", s.Median)
	}
	if s.Q1 != 1.75 || s.Q3 != 3.25 {
		t.Fatalf("quartiles = %v %v", s.Q1, s.Q3)
	}
}

func TestSummarizeEdgeCases(t *testing.T) {
	if Summarize(nil) != (Summary{}) {
		t.Fatal("nil input not zero")
	}
	one := Summarize([]float64{7})
	if one.Median != 7 || one.Min != 7 || one.Max != 7 || one.Stddev != 0 {
		t.Fatalf("single sample = %+v", one)
	}
}

func TestSummarizeDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	Summarize(in)
	if !reflect.DeepEqual(in, []float64{3, 1, 2}) {
		t.Fatal("input mutated")
	}
}

func TestRepeat(t *testing.T) {
	i := 0.0
	s := Repeat(20, func() float64 { i++; return i })
	if s.N != 20 || s.Median != 10.5 || s.Min != 1 || s.Max != 20 {
		t.Fatalf("repeat summary = %+v", s)
	}
	if Repeat(0, func() float64 { return 1 }) != (Summary{}) {
		t.Fatal("Repeat(0) not zero")
	}
}

func TestSummaryString(t *testing.T) {
	s := Summarize([]float64{1, 2, 3})
	str := s.String()
	if !strings.Contains(str, "median 2") || !strings.Contains(str, "n=3") {
		t.Fatalf("String() = %q", str)
	}
}

// TestMedianPropertyQuick: the median is always within [min, max] and at
// least half the samples lie on each side.
func TestMedianPropertyQuick(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 200,
		Values: func(args []reflect.Value, r *rand.Rand) {
			n := 1 + r.Intn(50)
			xs := make([]float64, n)
			for i := range xs {
				xs[i] = r.Float64() * 1000
			}
			args[0] = reflect.ValueOf(xs)
		},
	}
	prop := func(xs []float64) bool {
		s := Summarize(xs)
		if s.Median < s.Min || s.Median > s.Max {
			return false
		}
		sorted := append([]float64(nil), xs...)
		sort.Float64s(sorted)
		var below, above int
		for _, x := range sorted {
			if x <= s.Median {
				below++
			}
			if x >= s.Median {
				above++
			}
		}
		return below*2 >= len(xs) && above*2 >= len(xs)
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}
