// Package stats implements the paper's measurement protocol: repeated
// samples per experiment with medians reported (the paper takes 20
// samples and presents medians of execution times and counter values).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary condenses a set of samples.
type Summary struct {
	// N is the sample count.
	N int
	// Median is the reported statistic (the paper's choice).
	Median float64
	// Mean, Min, Max and Stddev complete the picture.
	Mean   float64
	Min    float64
	Max    float64
	Stddev float64
	// Q1 and Q3 are the quartiles.
	Q1 float64
	Q3 float64
}

// Summarize computes a Summary of the samples. An empty input yields the
// zero Summary.
func Summarize(samples []float64) Summary {
	if len(samples) == 0 {
		return Summary{}
	}
	s := append([]float64(nil), samples...)
	sort.Float64s(s)
	var sum float64
	for _, v := range s {
		sum += v
	}
	mean := sum / float64(len(s))
	var ss float64
	for _, v := range s {
		d := v - mean
		ss += d * d
	}
	return Summary{
		N:      len(s),
		Median: quantile(s, 0.5),
		Mean:   mean,
		Min:    s[0],
		Max:    s[len(s)-1],
		Stddev: math.Sqrt(ss / float64(len(s))),
		Q1:     quantile(s, 0.25),
		Q3:     quantile(s, 0.75),
	}
}

// quantile interpolates the q-quantile of sorted data.
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(pos)
	frac := pos - float64(lo)
	if lo+1 >= len(sorted) {
		return sorted[len(sorted)-1]
	}
	return sorted[lo]*(1-frac) + sorted[lo+1]*frac
}

// Repeat runs f n times and summarises the returned values — the
// paper's 20-samples-then-median protocol is Repeat(20, run).
func Repeat(n int, f func() float64) Summary {
	if n <= 0 {
		return Summary{}
	}
	samples := make([]float64, n)
	for i := range samples {
		samples[i] = f()
	}
	return Summarize(samples)
}

// String formats the summary compactly.
func (s Summary) String() string {
	return fmt.Sprintf("median %.4g (n=%d, mean %.4g, min %.4g, max %.4g, stddev %.3g)",
		s.Median, s.N, s.Mean, s.Min, s.Max, s.Stddev)
}
