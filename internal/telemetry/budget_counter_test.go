package telemetry

// Tests for surgical per-counter demotion: the budget controller parks
// the single most expensive counter (per-handle cost attribution)
// before it demotes a whole tier, and restores it last on the way out.

import (
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

// newAttributionFixture builds a registry whose active set holds one
// deliberately expensive normal-tier counter among cheap peers.
func newAttributionFixture(t *testing.T) (*core.Registry, string) {
	t.Helper()
	reg := core.NewRegistry()
	mk := func(counter string, inst []core.Instance, slow bool) string {
		n := core.Name{Object: "threads", Counter: counter}.WithInstances(inst...)
		var fn func() int64
		if slow {
			fn = func() int64 { time.Sleep(200 * time.Microsecond); return 1 }
		} else {
			fn = func() int64 { return 1 }
		}
		reg.MustRegister(core.NewFuncCounter(n,
			core.Info{TypeName: "/threads/" + counter}, 0, fn, nil))
		if _, err := reg.AddActive(n.String()); err != nil {
			t.Fatal(err)
		}
		return n.String()
	}
	total := core.LocalityInstance(0, "total", -1)
	mk("count/cumulative", total, false)
	mk("idle-rate", total, false)
	slow := mk("time/average", total, true) // normal tier, expensive
	return reg, slow
}

func TestParkMostExpensiveCounter(t *testing.T) {
	reg, slow := newAttributionFixture(t)
	ts := newTieredSource(reg, DefaultTiers, false)
	ts.attributeCost = true

	// Warm the attribution EWMAs.
	for i := 0; i < 8; i++ {
		ts.sample()
	}
	if !ts.parkMostExpensive() {
		t.Fatal("nothing parked despite cost data")
	}
	parked := ts.demotedCounters()
	if len(parked) != 1 || parked[0] != slow {
		t.Fatalf("parked %v, want exactly [%s]", parked, slow)
	}

	// The parked counter is really excluded; its cheap tier-mates keep
	// being sampled (the surgical property).
	vals := ts.sample()
	var sawSlow, sawCheap bool
	for _, v := range vals {
		if v.Name == slow {
			sawSlow = true
		}
		if strings.Contains(v.Name, "idle-rate") {
			sawCheap = true
		}
	}
	if sawSlow {
		t.Fatal("parked counter still sampled")
	}
	if !sawCheap {
		t.Fatal("tier-mate of parked counter dropped too")
	}

	// Restore brings it back.
	if !ts.unparkLast() {
		t.Fatal("unpark failed")
	}
	vals = ts.sample()
	sawSlow = false
	for _, v := range vals {
		if v.Name == slow {
			sawSlow = true
		}
	}
	if !sawSlow {
		t.Fatal("restored counter not sampled")
	}
	if ts.unparkLast() {
		t.Fatal("unpark with nothing parked reported success")
	}
}

func TestParkNeverTakesCritical(t *testing.T) {
	reg := core.NewRegistry()
	// Only a critical counter is active — and it is expensive.
	n := core.Name{Object: "runtime", Counter: "health/events"}.
		WithInstances(core.LocalityInstance(0, "total", -1)...)
	reg.MustRegister(core.NewFuncCounter(n,
		core.Info{TypeName: "/runtime/health/events"}, 0,
		func() int64 { time.Sleep(100 * time.Microsecond); return 1 }, nil))
	if _, err := reg.AddActive(n.String()); err != nil {
		t.Fatal(err)
	}
	ts := newTieredSource(reg, DefaultTiers, false)
	ts.attributeCost = true
	for i := 0; i < 8; i++ {
		ts.sample()
	}
	if ts.parkMostExpensive() {
		t.Fatal("parked a critical-tier counter")
	}
}

func TestControllerShedsCounterBeforeTier(t *testing.T) {
	var shed, restored, level int
	cost := int64(0)
	bc := NewBudgetController(BudgetControllerConfig{
		Budget:       Budget{Fraction: 0.01, Window: time.Second, PromoteAfter: 1},
		BaseInterval: 100 * time.Millisecond,
		Cost:         func() int64 { return cost },
		Levels:       2,
		SetLevel:     func(l int) { level = l },
		ShedCounter: func() bool {
			if shed >= 2 { // park limit: fall through to tiers
				return false
			}
			shed++
			return true
		},
		RestoreCounter: func() bool {
			if restored >= shed {
				return false
			}
			restored++
			return true
		},
	})

	t0 := time.Unix(0, 0)
	bc.Tick(t0) // arm
	over := func(sec int) {
		cost += int64(0.02 * 1e9) // 2% of one core for the window
		bc.Tick(t0.Add(time.Duration(sec) * time.Second))
	}
	under := func(sec int) {
		bc.Tick(t0.Add(time.Duration(sec) * time.Second))
	}

	// Two over-budget windows park two counters; the tier is untouched.
	over(1)
	over(2)
	if shed != 2 || level != 0 {
		t.Fatalf("after 2 degrades: shed=%d level=%d, want 2 and 0", shed, level)
	}
	if bc.DemotedCounters() != 2 {
		t.Fatalf("demoted-counters gauge = %d, want 2", bc.DemotedCounters())
	}

	// Third degrade: shed refuses (limit), so the tier goes.
	over(3)
	if level != 1 {
		t.Fatalf("after shed limit: level = %d, want 1", level)
	}

	// Easing: tier comes back first, parked counters last.
	under(4)
	if level != 0 {
		t.Fatalf("first ease should re-promote tier, level = %d", level)
	}
	under(5)
	under(6)
	if restored != 2 {
		t.Fatalf("restored = %d, want 2", restored)
	}
	if bc.DemotedCounters() != 0 {
		t.Fatalf("demoted-counters gauge = %d, want 0", bc.DemotedCounters())
	}
	// Fully restored: further ease steps are no-ops.
	under(7)
	if restored != 2 || level != 0 {
		t.Fatalf("ease past baseline changed state: restored=%d level=%d", restored, level)
	}
}

func TestBudgetedCollectorParksExpensiveCounter(t *testing.T) {
	reg, slow := newAttributionFixture(t)
	s := NewSampler(64)
	bc := NewBudgetedCollector(s, reg, 10*time.Millisecond,
		Budget{Fraction: 0.0001, Window: 50 * time.Millisecond, PromoteAfter: 1000}, false)

	// Drive sampling + control synchronously (no goroutines): arm the
	// window, warm the attribution (accruing metered cost), then tick
	// the controller over budget.
	t0 := time.Unix(0, 0)
	bc.Controller.Tick(t0)
	for i := 0; i < 8; i++ {
		bc.tiers.sample()
	}
	bc.Controller.Tick(t0.Add(time.Second))
	names := bc.DemotedCounters()
	if len(names) != 1 || names[0] != slow {
		t.Fatalf("budgeted collector parked %v, want [%s]", names, slow)
	}
	if bc.Controller.DemotedCounters() != 1 {
		t.Fatalf("gauge = %d, want 1", bc.Controller.DemotedCounters())
	}
}
