package telemetry

// HTTP export: GET /metrics serves the latest sample of every series in
// the Prometheus text exposition format (version 0.0.4); GET /series
// serves the full ring of every series as JSON for ad-hoc dashboards.
// Only the Go standard library is used.

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"strings"

	"repro/internal/core"
)

// Handler returns an http.Handler exposing the sampler:
//
//	GET /metrics  Prometheus text format, latest point per series
//	GET /series   JSON: {"series":[{"name":...,"points":[{"t","v","n"}]}]}
func Handler(s *Sampler) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, s)
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		_ = enc.Encode(struct {
			Series []Series `json:"series"`
		}{Series: s.Snapshot()})
	})
	return mux
}

// promMetric is one exportable sample: a sanitized metric name, its
// label set, and the value.
type promMetric struct {
	name   string
	labels string
	value  float64
}

// WritePrometheus renders the latest point of every series in the
// Prometheus text format. HPX-style counter names map onto metric
// names and labels:
//
//	/threads{locality#0/worker-thread#3}/time/average
//	  -> taskrt_threads_time_average{locality="0",instance="worker-thread#3"}
//	/statistics{<base>}/percentile@95
//	  -> taskrt_statistics_percentile{base="<base>",params="95"}
//
// Counter names that do not parse are exported whole under
// taskrt_counter{name="..."} rather than dropped.
func WritePrometheus(w interface{ Write([]byte) (int, error) }, s *Sampler) {
	byMetric := map[string][]promMetric{}
	var order []string
	for _, series := range s.Latest() {
		m := toPromMetric(series.Name, series.Points[0].Value)
		if _, seen := byMetric[m.name]; !seen {
			order = append(order, m.name)
		}
		byMetric[m.name] = append(byMetric[m.name], m)
	}
	sort.Strings(order)
	for _, name := range order {
		fmt.Fprintf(w, "# HELP %s performance counter %s\n", name, name)
		fmt.Fprintf(w, "# TYPE %s gauge\n", name)
		for _, m := range byMetric[name] {
			fmt.Fprintf(w, "%s%s %s\n", m.name, m.labels,
				strconv.FormatFloat(m.value, 'g', -1, 64))
		}
	}
}

func toPromMetric(counter string, value float64) promMetric {
	n, err := core.ParseName(counter)
	if err != nil {
		return promMetric{
			name:   "taskrt_counter",
			labels: `{name="` + escapeLabel(counter) + `"}`,
			value:  value,
		}
	}
	name := sanitizeMetricName("taskrt" + n.TypeName())
	var labels []string
	for _, inst := range n.Instances {
		if inst.Name == "locality" && inst.HasIndex {
			labels = append(labels, `locality="`+strconv.FormatInt(inst.Index, 10)+`"`)
			continue
		}
		labels = append(labels, `instance="`+escapeLabel(inst.String())+`"`)
	}
	if n.BaseCounter != "" {
		labels = append(labels, `base="`+escapeLabel(n.BaseCounter)+`"`)
	}
	if n.Parameters != "" {
		labels = append(labels, `params="`+escapeLabel(n.Parameters)+`"`)
	}
	ls := ""
	if len(labels) > 0 {
		ls = "{" + strings.Join(labels, ",") + "}"
	}
	return promMetric{name: name, labels: ls, value: value}
}

// sanitizeMetricName maps a counter type path onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_:], collapsing runs of other
// characters into single underscores.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	lastUnderscore := false
	for _, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && b.Len() > 0)
		if !ok {
			if !lastUnderscore && b.Len() > 0 {
				b.WriteByte('_')
				lastUnderscore = true
			}
			continue
		}
		b.WriteRune(r)
		lastUnderscore = r == '_'
	}
	return strings.TrimSuffix(b.String(), "_")
}

// escapeLabel escapes a Prometheus label value (backslash, quote,
// newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
