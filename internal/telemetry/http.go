package telemetry

// HTTP export: GET /metrics serves the latest sample of every series in
// the Prometheus text exposition format (version 0.0.4); GET /series
// serves the full ring of every series as JSON for ad-hoc dashboards.
// Only the Go standard library is used.
//
// The exposition path is built not to tax the application it observes:
// counter-name → metric/label conversion is memoized (names are stable
// for the life of the process), and each render reuses a pooled output
// buffer plus append-based number formatting, so a steady-state scrape
// allocates nothing beyond what net/http itself needs.

import (
	"encoding/json"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"

	"repro/internal/core"
)

// HandlerOption extends Handler with optional endpoints.
type HandlerOption func(*http.ServeMux)

// WithFlight serves fr's captured ring at GET /flight — JSON by
// default, CSV with ?format=csv — next to /metrics and /series, so an
// operator can pull the around-the-anomaly capture without touching
// the process.
func WithFlight(fr *FlightRecorder) HandlerOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc("/flight", func(w http.ResponseWriter, r *http.Request) {
			if r.URL.Query().Get("format") == "csv" {
				w.Header().Set("Content-Type", "text/csv; charset=utf-8")
				_ = fr.WriteCSV(w)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = fr.WriteJSON(w)
		})
	}
}

// WithJSON serves the value fn returns at GET path as JSON. It is the
// generic escape hatch for structured views that are not time series —
// e.g. an aggregation-tree topology dump. fn runs per request; an error
// maps to 503 so scrapers can tell "momentarily unavailable" from "gone".
func WithJSON(path string, fn func() (any, error)) HandlerOption {
	return func(mux *http.ServeMux) {
		mux.HandleFunc(path, func(w http.ResponseWriter, r *http.Request) {
			v, err := fn()
			if err != nil {
				http.Error(w, err.Error(), http.StatusServiceUnavailable)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			_ = json.NewEncoder(w).Encode(v)
		})
	}
}

// Handler returns an http.Handler exposing the sampler:
//
//	GET /metrics  Prometheus text format, latest point per series
//	GET /series   JSON: {"series":[{"name":...,"points":[{"t","v","n"}]}]}
//	GET /flight   flight-recorder ring (with WithFlight)
func Handler(s *Sampler, opts ...HandlerOption) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		WritePrometheus(w, s)
	})
	mux.HandleFunc("/series", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		_ = enc.Encode(struct {
			Series []Series `json:"series"`
		}{Series: s.Snapshot()})
	})
	for _, o := range opts {
		o(mux)
	}
	return mux
}

// promMetric is the conversion of one counter name: a sanitized metric
// name and its rendered label set. Values are not part of it — the
// conversion is cached per counter name, the value changes per scrape.
type promMetric struct {
	name   string
	labels string
}

// promCache memoizes counter-name → promMetric conversions. Counter
// names never change meaning once registered, so entries are permanent.
var promCache sync.Map // string -> *promMetric

func cachedPromMetric(counter string) *promMetric {
	if v, ok := promCache.Load(counter); ok {
		return v.(*promMetric)
	}
	m := toPromMetric(counter)
	promCache.Store(counter, m)
	return m
}

// promSample is one row of a render: the cached conversion, the series'
// first-observation index (sort tie-break) and the sampled value.
type promSample struct {
	m   *promMetric
	idx int
	val float64
}

// promSamples sorts by metric name, then first-observation order within
// a metric. Methods are on the pointer so sort.Sort takes the pooled
// slice without an interface-conversion allocation.
type promSamples []promSample

func (p *promSamples) Len() int      { return len(*p) }
func (p *promSamples) Swap(i, j int) { (*p)[i], (*p)[j] = (*p)[j], (*p)[i] }
func (p *promSamples) Less(i, j int) bool {
	if (*p)[i].m.name != (*p)[j].m.name {
		return (*p)[i].m.name < (*p)[j].m.name
	}
	return (*p)[i].idx < (*p)[j].idx
}

// renderState is the reusable scratch of one exposition render, pooled
// so concurrent scrapes don't contend and repeated scrapes don't
// reallocate.
type renderState struct {
	out     []byte
	samples promSamples
}

var renderPool = sync.Pool{New: func() any { return new(renderState) }}

// WritePrometheus renders the latest point of every series in the
// Prometheus text format. HPX-style counter names map onto metric
// names and labels:
//
//	/threads{locality#0/worker-thread#3}/time/average
//	  -> taskrt_threads_time_average{locality="0",instance="worker-thread#3"}
//	/statistics{<base>}/percentile@95
//	  -> taskrt_statistics_percentile{base="<base>",params="95"}
//
// Counter names that do not parse are exported whole under
// taskrt_counter{name="..."} rather than dropped.
func WritePrometheus(w interface{ Write([]byte) (int, error) }, s *Sampler) {
	st := renderPool.Get().(*renderState)
	st.out = st.out[:0]
	st.samples = st.samples[:0]

	s.forEachLatest(func(name string, p Point) {
		st.samples = append(st.samples, promSample{
			m: cachedPromMetric(name), idx: len(st.samples), val: p.Value,
		})
	})
	sort.Sort(&st.samples)

	prev := ""
	for _, sm := range st.samples {
		if sm.m.name != prev {
			st.out = append(st.out, "# HELP "...)
			st.out = append(st.out, sm.m.name...)
			st.out = append(st.out, " performance counter "...)
			st.out = append(st.out, sm.m.name...)
			st.out = append(st.out, "\n# TYPE "...)
			st.out = append(st.out, sm.m.name...)
			st.out = append(st.out, " gauge\n"...)
			prev = sm.m.name
		}
		st.out = append(st.out, sm.m.name...)
		st.out = append(st.out, sm.m.labels...)
		st.out = append(st.out, ' ')
		st.out = strconv.AppendFloat(st.out, sm.val, 'g', -1, 64)
		st.out = append(st.out, '\n')
	}
	_, _ = w.Write(st.out)
	renderPool.Put(st)
}

func toPromMetric(counter string) *promMetric {
	n, err := core.ParseName(counter)
	if err != nil {
		return &promMetric{
			name:   "taskrt_counter",
			labels: `{name="` + escapeLabel(counter) + `"}`,
		}
	}
	name := sanitizeMetricName("taskrt" + n.TypeName())
	var labels []string
	for _, inst := range n.Instances {
		if inst.Name == "locality" && inst.Wildcard {
			// Fleet-folded series span every locality; a wildcard index
			// must not masquerade as locality 0.
			labels = append(labels, `locality="*"`)
			continue
		}
		if inst.Name == "locality" && inst.HasIndex {
			labels = append(labels, `locality="`+strconv.FormatInt(inst.Index, 10)+`"`)
			continue
		}
		labels = append(labels, `instance="`+escapeLabel(inst.String())+`"`)
	}
	if n.BaseCounter != "" {
		labels = append(labels, `base="`+escapeLabel(n.BaseCounter)+`"`)
	}
	if n.Parameters != "" {
		labels = append(labels, `params="`+escapeLabel(n.Parameters)+`"`)
	}
	ls := ""
	if len(labels) > 0 {
		ls = "{" + strings.Join(labels, ",") + "}"
	}
	return &promMetric{name: name, labels: ls}
}

// sanitizeMetricName maps a counter type path onto the Prometheus
// metric-name alphabet [a-zA-Z0-9_:], collapsing runs of other
// characters into single underscores.
func sanitizeMetricName(s string) string {
	var b strings.Builder
	lastUnderscore := false
	for _, r := range s {
		ok := r == '_' || r == ':' ||
			(r >= 'a' && r <= 'z') || (r >= 'A' && r <= 'Z') ||
			(r >= '0' && r <= '9' && b.Len() > 0)
		if !ok {
			if !lastUnderscore && b.Len() > 0 {
				b.WriteByte('_')
				lastUnderscore = true
			}
			continue
		}
		b.WriteRune(r)
		lastUnderscore = r == '_'
	}
	return strings.TrimSuffix(b.String(), "_")
}

// escapeLabel escapes a Prometheus label value (backslash, quote,
// newline).
func escapeLabel(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return strings.ReplaceAll(s, "\n", `\n`)
}
