package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func flightVals(n int, raw int64) []core.Value {
	vals := make([]core.Value, n)
	for i := range vals {
		vals[i] = core.Value{Name: "/threads{locality#0/total}/count/cumulative",
			Raw: raw, Time: time.Unix(1, 0), Status: core.StatusValid}
	}
	return vals
}

// TestFlightStateMachine: idle → burst on trigger, burst frames marked,
// exactly one frame carries the trigger reason, burst lapses into
// cooldown (where triggers are suppressed — the anti-flap hysteresis),
// and cooldown lapses back to idle where a new trigger arms again.
func TestFlightStateMachine(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{
		Frames: 32, Window: time.Second, Cooldown: 2 * time.Second,
	})
	t0 := time.Unix(100, 0)

	fr.Record(t0, flightVals(2, 1)) // pre-trigger context
	if fr.burstingAt(t0) {
		t.Fatal("bursting before any trigger")
	}
	if !fr.triggerAt(t0.Add(100*time.Millisecond), "stalled_task") {
		t.Fatal("idle trigger rejected")
	}
	if !fr.burstingAt(t0.Add(200 * time.Millisecond)) {
		t.Fatal("not bursting after trigger")
	}
	// Trigger during the burst: coalesced (counted, no new window).
	if !fr.triggerAt(t0.Add(300*time.Millisecond), "backlog_growth") {
		t.Fatal("coalesced trigger should report captured")
	}
	fr.Record(t0.Add(300*time.Millisecond), flightVals(2, 2))
	fr.Record(t0.Add(400*time.Millisecond), flightVals(2, 3))
	// Window ends 1s after the trigger; cooldown runs 2s more.
	if fr.burstingAt(t0.Add(1200 * time.Millisecond)) {
		t.Fatal("still bursting past the window")
	}
	if fr.triggerAt(t0.Add(1500*time.Millisecond), "flappy") {
		t.Fatal("cooldown trigger not suppressed")
	}
	fr.Record(t0.Add(1500*time.Millisecond), flightVals(2, 4))
	// Past cooldown (trigger+window+cooldown = t0+3.1s): idle again.
	if !fr.triggerAt(t0.Add(3500*time.Millisecond), "second_episode") {
		t.Fatal("post-cooldown trigger rejected")
	}

	if fr.Triggers() != 3 || fr.Suppressed() != 1 {
		t.Fatalf("triggers=%d suppressed=%d, want 3/1", fr.Triggers(), fr.Suppressed())
	}
	d := fr.Snapshot()
	if d.Frames != 4 {
		t.Fatalf("frames = %d, want 4", d.Frames)
	}
	var trigFrames []string
	burst := 0
	for _, f := range d.Ring {
		if f.Trigger != "" {
			trigFrames = append(trigFrames, f.Trigger)
		}
		if f.Burst {
			burst++
		}
	}
	if len(trigFrames) != 1 || trigFrames[0] != "stalled_task" {
		t.Fatalf("trigger frames = %v, want exactly [stalled_task]", trigFrames)
	}
	if burst != 2 {
		t.Fatalf("burst frames = %d, want 2 (the two in-window records)", burst)
	}
}

// TestFlightRingWraps: the ring keeps the newest Frames frames, oldest
// first in the dump.
func TestFlightRingWraps(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Frames: 8})
	t0 := time.Unix(100, 0)
	for i := 0; i < 20; i++ {
		fr.Record(t0.Add(time.Duration(i)*time.Millisecond), flightVals(1, int64(i)))
	}
	d := fr.Snapshot()
	if d.Frames != 8 {
		t.Fatalf("frames = %d, want 8", d.Frames)
	}
	if first, last := d.Ring[0].Values[0].Value, d.Ring[7].Values[0].Value; first != 12 || last != 19 {
		t.Fatalf("ring holds [%g..%g], want [12..19] oldest-first", first, last)
	}
	if fr.Recorded() != 20 {
		t.Fatalf("recorded = %d, want 20", fr.Recorded())
	}
}

// TestFlightTruncation: a batch larger than MaxCounters is clipped and
// counted, never grown (the record path may not allocate).
func TestFlightTruncation(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Frames: 4, MaxCounters: 3})
	fr.Record(time.Unix(1, 0), flightVals(10, 1))
	d := fr.Snapshot()
	if len(d.Ring[0].Values) != 3 {
		t.Fatalf("frame holds %d values, want 3", len(d.Ring[0].Values))
	}
	if d.Truncated != 7 {
		t.Fatalf("truncated = %d, want 7", d.Truncated)
	}
}

// TestFlightBurstInterval: ≥10× the base rate, with a floor.
func TestFlightBurstInterval(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{})
	if got := fr.BurstInterval(100 * time.Millisecond); got != 10*time.Millisecond {
		t.Fatalf("burst interval = %v, want 10ms", got)
	}
	if got := fr.BurstInterval(100 * time.Microsecond); got != 50*time.Microsecond {
		t.Fatalf("burst interval floor = %v, want 50µs", got)
	}
	if cfg := fr.Config(); cfg.Burst < 10 {
		t.Fatalf("default burst multiplier = %d, want >= 10", cfg.Burst)
	}
}

// TestFlightDumpFormats: the JSON dump round-trips and the CSV dump has
// a header plus one row per value, with commas in trigger reasons
// quoted.
func TestFlightDumpFormats(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Frames: 8})
	t0 := time.Unix(100, 0)
	fr.Record(t0, flightVals(2, 7))
	fr.triggerAt(t0.Add(time.Millisecond), "stalled, worker#0")
	fr.Record(t0.Add(2*time.Millisecond), flightVals(2, 8))

	var jb strings.Builder
	if err := fr.WriteJSON(&jb); err != nil {
		t.Fatal(err)
	}
	var d FlightDump
	if err := json.Unmarshal([]byte(jb.String()), &d); err != nil {
		t.Fatalf("dump is not valid JSON: %v", err)
	}
	if d.Frames != 2 || d.Burst != 1 || d.Triggers != 1 {
		t.Fatalf("dump = %+v", d)
	}

	var cb strings.Builder
	if err := fr.WriteCSV(&cb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(cb.String()), "\n")
	if lines[0] != "time,frame,burst,trigger,name,value,count,status" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if len(lines) != 5 { // header + 2 frames × 2 values
		t.Fatalf("csv rows = %d, want 5", len(lines))
	}
	if !strings.Contains(cb.String(), `"stalled, worker#0"`) {
		t.Fatalf("comma in trigger reason not quoted:\n%s", cb.String())
	}
}

// TestFlightHTTP: /flight serves the dump as JSON (and CSV on demand)
// next to /metrics and /series.
func TestFlightHTTP(t *testing.T) {
	s := NewSampler(8)
	s.Observe("/threads{locality#0/total}/count/cumulative", Point{Time: time.Unix(1, 0), Value: 1})
	fr := NewFlightRecorder(FlightConfig{Frames: 8})
	fr.Record(time.Unix(100, 0), flightVals(1, 42))
	srv := httptest.NewServer(Handler(s, WithFlight(fr)))
	defer srv.Close()

	get := func(path string) (*httptest.ResponseRecorder, string) {
		t.Helper()
		resp, err := srv.Client().Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var b strings.Builder
		buf := make([]byte, 4096)
		for {
			n, err := resp.Body.Read(buf)
			b.Write(buf[:n])
			if err != nil {
				break
			}
		}
		if resp.StatusCode != 200 {
			t.Fatalf("GET %s = %d", path, resp.StatusCode)
		}
		return nil, b.String()
	}

	_, body := get("/flight")
	var d FlightDump
	if err := json.Unmarshal([]byte(body), &d); err != nil || d.Frames != 1 {
		t.Fatalf("/flight JSON: %v (%d frames)", err, d.Frames)
	}
	_, csv := get("/flight?format=csv")
	if !strings.HasPrefix(csv, "time,frame,burst,trigger,") {
		t.Fatalf("/flight?format=csv = %q", csv)
	}
	_, metrics := get("/metrics")
	if !strings.Contains(metrics, "taskrt_threads_count_cumulative") {
		t.Fatal("/metrics missing alongside /flight")
	}
}

// TestCollectorFlightBurst: with a recorder attached, a trigger flips
// the running collector to burst rate — the ring gains frames at ≥10×
// the base cadence — and every sampled batch lands in the ring.
func TestCollectorFlightBurst(t *testing.T) {
	reg := core.NewRegistry()
	reg.MustRegister(core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative"}))
	if _, err := reg.AddActive("/threads{locality#0/total}/count/cumulative"); err != nil {
		t.Fatal(err)
	}
	s := NewSampler(64)
	// Base 200ms: without the burst, ~2 frames land in 500ms.
	c := NewCollector(s, RegistrySource(reg, false), 200*time.Millisecond)
	fr := NewFlightRecorder(FlightConfig{Frames: 256, Window: 450 * time.Millisecond})
	c.EnableFlight(fr)
	if c.Flight() != fr {
		t.Fatal("Flight() does not return the attached recorder")
	}
	c.Start()
	defer c.Stop()

	if !c.TriggerFlight("test burst") {
		t.Fatal("trigger rejected")
	}
	time.Sleep(500 * time.Millisecond)
	d := fr.Snapshot()
	// 450ms window at 20ms burst cadence ≈ 22 frames; ≥10 proves the
	// ≥10× escalation against the 2 base-rate frames.
	if d.Burst < 10 {
		t.Fatalf("burst frames in window = %d, want >= 10 (≥10× base rate)", d.Burst)
	}
	if fr.Recorded() < int64(d.Burst) {
		t.Fatalf("recorded %d < burst %d", fr.Recorded(), d.Burst)
	}
	// TriggerFlight without a recorder attached reports false.
	c2 := NewCollector(NewSampler(4), RegistrySource(reg, false), time.Second)
	if c2.TriggerFlight("nothing attached") {
		t.Fatal("TriggerFlight with no recorder must report false")
	}
}

// TestFlightRecordConcurrent: Record/Trigger/Snapshot race-free under
// concurrent use (meaningful under -race).
func TestFlightRecordConcurrent(t *testing.T) {
	fr := NewFlightRecorder(FlightConfig{Frames: 64})
	var wg sync.WaitGroup
	t0 := time.Unix(100, 0)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			vals := flightVals(4, int64(g))
			for i := 0; i < 200; i++ {
				fr.Record(t0.Add(time.Duration(g*200+i)*time.Millisecond), vals)
				if i%50 == 0 {
					fr.triggerAt(t0.Add(time.Duration(g*200+i)*time.Millisecond), "race")
					fr.Snapshot()
				}
			}
		}(g)
	}
	wg.Wait()
	if fr.Recorded() != 800 {
		t.Fatalf("recorded = %d, want 800", fr.Recorded())
	}
}
