// Package telemetry is the live export plane over the performance
// counter system: a fixed-capacity time-series sampler that any counter
// source (a local registry, or a remote application reached over
// parcel) feeds, and an HTTP handler that serves the recent series as a
// Prometheus text exposition and as a JSON snapshot. The paper's
// counters answer one query at a time; this layer turns the same
// counters into something a dashboard can watch while the application
// runs, without the application adjusting its behaviour.
package telemetry

import (
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Point is one observation of one counter.
type Point struct {
	// Time is when the sample was taken.
	Time time.Time `json:"t"`
	// Value is the scaled counter value.
	Value float64 `json:"v"`
	// Count is the counter's observation count (0 when the counter
	// does not carry one).
	Count int64 `json:"n,omitempty"`
}

// Series is a named sequence of points, oldest first.
type Series struct {
	Name   string  `json:"name"`
	Points []Point `json:"points"`
}

// ring is a fixed-capacity point buffer.
type ring struct {
	buf  []Point
	next int
	full bool
}

func (r *ring) push(p Point) {
	r.buf[r.next] = p
	r.next++
	if r.next == len(r.buf) {
		r.next = 0
		r.full = true
	}
}

// last returns the newest point without copying the ring.
func (r *ring) last() (Point, bool) {
	if r.next == 0 && !r.full {
		return Point{}, false
	}
	i := r.next - 1
	if i < 0 {
		i = len(r.buf) - 1
	}
	return r.buf[i], true
}

func (r *ring) points() []Point {
	if !r.full {
		return append([]Point(nil), r.buf[:r.next]...)
	}
	out := make([]Point, 0, len(r.buf))
	out = append(out, r.buf[r.next:]...)
	return append(out, r.buf[:r.next]...)
}

// DefaultCapacity is the per-series ring capacity when NewSampler is
// given a non-positive one: at a one-second sampling interval this
// keeps ~5 minutes of history per counter.
const DefaultCapacity = 300

// Sampler keeps the most recent points of every observed series. All
// methods are safe for concurrent use; a sampling loop feeds it while
// HTTP handlers snapshot it.
type Sampler struct {
	mu       sync.Mutex
	capacity int
	series   map[string]*ring
	order    []string // first-observation order, for stable output
}

// NewSampler creates a sampler keeping up to capacity points per
// series (DefaultCapacity when capacity <= 0).
func NewSampler(capacity int) *Sampler {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	return &Sampler{capacity: capacity, series: make(map[string]*ring)}
}

// Observe appends one point to the named series, evicting the oldest
// point once the series is at capacity.
func (s *Sampler) Observe(name string, p Point) {
	s.mu.Lock()
	r := s.series[name]
	if r == nil {
		r = &ring{buf: make([]Point, s.capacity)}
		s.series[name] = r
		s.order = append(s.order, name)
	}
	r.push(p)
	s.mu.Unlock()
}

// ObserveValue folds one counter evaluation into the matching series.
// Invalid values are dropped: a counter that cannot answer right now
// (no data yet, target unreachable) leaves a gap instead of a zero.
func (s *Sampler) ObserveValue(v core.Value) {
	if !v.Valid() {
		return
	}
	t := v.Time
	if t.IsZero() {
		t = time.Now()
	}
	s.Observe(v.Name, Point{Time: t, Value: v.Float64(), Count: v.Count})
}

// Snapshot copies all series in first-observation order.
func (s *Sampler) Snapshot() []Series {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Series, 0, len(s.order))
	for _, name := range s.order {
		out = append(out, Series{Name: name, Points: s.series[name].points()})
	}
	return out
}

// Latest returns the most recent point of each series, in
// first-observation order. ok is false for a series observed but
// currently empty (cannot happen through Observe, but kept total).
func (s *Sampler) Latest() []Series {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Series, 0, len(s.order))
	for _, name := range s.order {
		p, ok := s.series[name].last()
		if !ok {
			continue
		}
		out = append(out, Series{Name: name, Points: []Point{p}})
	}
	return out
}

// forEachLatest visits the newest point of every series in
// first-observation order without copying rings or building Series —
// the allocation-free walk behind the Prometheus renderer.
func (s *Sampler) forEachLatest(fn func(name string, p Point)) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, name := range s.order {
		if p, ok := s.series[name].last(); ok {
			fn(name, p)
		}
	}
}

// ---------------------------------------------------------------------------
// Collector: periodic sampling of a counter source.

// Source yields one batch of counter values per tick. RegistrySource
// adapts a local registry's active set; perfmon adapts its parcel
// client the same way for remote targets.
type Source func() []core.Value

// RegistrySource samples a registry's active counter set. With reset,
// every sample evaluates-and-resets (per-interval deltas, the paper's
// per-sample measurement style). The closure reuses one value buffer
// across ticks, so steady-state sampling does not allocate; the
// returned slice is only valid until the next call.
func RegistrySource(reg *core.Registry, reset bool) Source {
	var buf []core.Value
	return func() []core.Value {
		buf = reg.EvaluateActiveInto(buf[:0], reset)
		return buf
	}
}

// MinInterval is the floor for the collector's steady-state sampling
// interval. Flight-recorder bursts may go below it (bounded by
// FlightRecorder.BurstInterval's own floor).
const MinInterval = time.Millisecond

// Collector drives a Source into a Sampler. The interval can be changed
// while running (SetInterval) — the budget controller's actuator — and
// an attached FlightRecorder both receives every sampled batch and
// overrides the interval to burst rate while a burst window is open.
type Collector struct {
	sampler *Sampler
	src     Source

	interval atomic.Int64 // current steady-state interval, ns
	kick     chan struct{}
	flight   atomic.Pointer[FlightRecorder]

	// sampleMu serializes pulls from the source: SampleOnce is public
	// and may race the sampling loop, and sources reuse one value
	// buffer across calls.
	sampleMu sync.Mutex

	mu   sync.Mutex
	stop chan struct{}
	wg   sync.WaitGroup
}

// NewCollector creates a collector sampling src into s every interval
// (minimum MinInterval; 1s when interval <= 0).
func NewCollector(s *Sampler, src Source, interval time.Duration) *Collector {
	if interval <= 0 {
		interval = time.Second
	}
	if interval < MinInterval {
		interval = MinInterval
	}
	c := &Collector{sampler: s, src: src, kick: make(chan struct{}, 1)}
	c.interval.Store(int64(interval))
	return c
}

// Interval returns the current steady-state sampling interval.
func (c *Collector) Interval() time.Duration {
	return time.Duration(c.interval.Load())
}

// SetInterval changes the sampling interval, effective immediately —
// a running loop re-arms its timer rather than sleeping out the old
// interval. Clamped to MinInterval.
func (c *Collector) SetInterval(d time.Duration) {
	if d < MinInterval {
		d = MinInterval
	}
	c.interval.Store(int64(d))
	c.kickLoop()
}

// EnableFlight attaches a flight recorder: every subsequent sample is
// recorded into its ring, and while the recorder is bursting the loop
// samples at burst rate. Pass nil to detach.
func (c *Collector) EnableFlight(fr *FlightRecorder) {
	c.flight.Store(fr)
	c.kickLoop()
}

// Flight returns the attached flight recorder, or nil.
func (c *Collector) Flight() *FlightRecorder { return c.flight.Load() }

// TriggerFlight arms the attached recorder's burst and immediately
// re-arms the sampling loop at burst rate (no waiting out the current
// steady-state sleep). Reports whether the burst is capturing; false
// with no recorder attached or while cooldown suppresses the trigger.
func (c *Collector) TriggerFlight(reason string) bool {
	fr := c.flight.Load()
	if fr == nil {
		return false
	}
	ok := fr.Trigger(reason)
	if ok {
		c.kickLoop()
	}
	return ok
}

// kickLoop wakes the sampling loop to re-evaluate its interval.
func (c *Collector) kickLoop() {
	select {
	case c.kick <- struct{}{}:
	default:
	}
}

// effectiveInterval is what the loop actually sleeps: burst rate while
// the flight recorder is in a burst window, the steady-state interval
// otherwise.
func (c *Collector) effectiveInterval() time.Duration {
	d := time.Duration(c.interval.Load())
	if fr := c.flight.Load(); fr != nil && fr.Bursting() {
		return fr.BurstInterval(d)
	}
	return d
}

// SampleOnce pulls one batch from the source immediately, feeding the
// sampler and (when attached) the flight recorder.
func (c *Collector) SampleOnce() {
	c.sampleMu.Lock()
	vals := c.src()
	for _, v := range vals {
		c.sampler.ObserveValue(v)
	}
	if fr := c.flight.Load(); fr != nil {
		fr.Record(time.Now(), vals)
	}
	c.sampleMu.Unlock()
}

// Start begins periodic sampling (idempotent). The first batch is
// taken synchronously so the export plane is never empty after Start.
// After a Stop, Start resumes into the same sampler — series and their
// history are kept.
func (c *Collector) Start() {
	c.mu.Lock()
	if c.stop != nil {
		c.mu.Unlock()
		return
	}
	stop := make(chan struct{})
	c.stop = stop
	c.mu.Unlock()
	c.SampleOnce()
	c.wg.Add(1)
	go func() {
		defer c.wg.Done()
		t := time.NewTimer(c.effectiveInterval())
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case <-c.kick:
				if !t.Stop() {
					select {
					case <-t.C:
					default:
					}
				}
				t.Reset(c.effectiveInterval())
			case <-t.C:
				c.SampleOnce()
				t.Reset(c.effectiveInterval())
			}
		}
	}()
}

// Stop ends periodic sampling (idempotent). It does not take the sample
// lock, so it cannot deadlock against an in-flight SampleOnce; it
// returns once the loop goroutine has exited.
func (c *Collector) Stop() {
	c.mu.Lock()
	stop := c.stop
	c.stop = nil
	c.mu.Unlock()
	if stop != nil {
		close(stop)
		c.wg.Wait()
	}
}
