package telemetry

// Benchmark record for the budgeted-sampling plane: run a 1µs-grain
// task workload on the real runtime with the budgeted collector armed
// at a 1% overhead budget, let the controller converge, and record the
// convergence trajectory and final measured overhead into the
// "telemetry_budget" section of BENCH_taskrt.json. The assertion —
// measured overhead at or under budget after convergence — runs here
// too, so regenerating the record is also the acceptance check.

import (
	"encoding/json"
	"os"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/taskrt"
)

type telemetryBudgetReport struct {
	GeneratedBy       string  `json:"generated_by"`
	Workers           int     `json:"workers"`
	GrainUs           float64 `json:"workload_grain_us"`
	BudgetPct         float64 `json:"budget_pct"`
	BaseIntervalMs    float64 `json:"base_interval_ms"`
	WindowMs          float64 `json:"window_ms"`
	ConvergedWindows  int     `json:"converged_after_windows"`
	FinalOverheadPct  float64 `json:"final_measured_overhead_pct"`
	FinalIntervalMs   float64 `json:"final_interval_ms"`
	FinalLevel        int     `json:"final_degradation_level"`
	Demotions         int64   `json:"demotions"`
	EvalCostNsPerSwp  float64 `json:"eval_cost_ns_per_sweep"`
	ActiveCounters    int     `json:"active_counters_full_set"`
	TasksPerSecond    float64 `json:"workload_tasks_per_second"`
}

// TestWriteTelemetryBudgetJSON regenerates the "telemetry_budget"
// section of BENCH_taskrt.json (path in TASKRT_BENCH_JSON), preserving
// every other top-level section. Driven by scripts/bench.sh; skipped
// otherwise. Every number here is a timing — run on a quiet machine.
func TestWriteTelemetryBudgetJSON(t *testing.T) {
	path := os.Getenv("TASKRT_BENCH_JSON")
	if path == "" {
		t.Skip("set TASKRT_BENCH_JSON=<path> to regenerate the benchmark record")
	}
	workers := runtime.GOMAXPROCS(0)
	const (
		grain        = time.Microsecond // the paper's finest-grain regime
		budgetPct    = 1.0
		baseInterval = MinInterval // start deliberately hot: 1ms sweeps
		window       = 50 * time.Millisecond
		maxWindows   = 60
	)

	rt := taskrt.New(taskrt.WithWorkers(workers))
	defer rt.Shutdown()
	reg := core.NewRegistry()
	if err := rt.RegisterCounters(reg); err != nil {
		t.Fatal(err)
	}
	for _, pat := range []string{
		"/runtime{locality#0/total}/health/events",
		"/threads{locality#0/total}/count/cumulative",
		"/threads{locality#0/total}/time/average",
		"/threads{locality#0/total}/idle-rate",
		"/threads{locality#0/worker-thread#*}/count/cumulative",
		"/threads{locality#0/worker-thread#*}/time/average",
		"/counters{locality#0/total}/cost/eval-ns",
		"/counters{locality#0/total}/cost/per-counter",
	} {
		if _, err := reg.AddActive(pat); err != nil {
			t.Fatalf("%s: %v", pat, err)
		}
	}
	// One deliberately expensive debug-tier counter: the over-budget
	// condition the controller must degrade its way out of (the
	// "telemetry degradation" scenario from FAULTS.md).
	exp := core.Name{Object: "threads", Counter: "statistics/expensive"}.
		WithInstances(core.LocalityInstance(0, "total", -1)...)
	reg.MustRegister(core.NewFuncCounter(exp, core.Info{TypeName: "/threads/statistics/expensive"}, 1,
		func() int64 {
			time.Sleep(200 * time.Microsecond)
			return 1
		}, nil))
	if _, err := reg.AddActive(exp.String()); err != nil {
		t.Fatal(err)
	}
	fullSet := len(reg.EvaluateActive(false))

	// The 1µs-grain workload: spawn-and-join spinning tasks for the
	// whole measurement. The generator yields between spawns so the
	// workload does not saturate every core — on a saturated machine
	// wall-clock cost metering measures scheduler delay, not sampling
	// work, and no sampling rate is "affordable".
	stopWork := make(chan struct{})
	var wg sync.WaitGroup
	var tasks int64
	var tasksMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			n := int64(0)
			for {
				select {
				case <-stopWork:
					tasksMu.Lock()
					tasks += n
					tasksMu.Unlock()
					return
				default:
				}
				f := taskrt.AsyncF(rt, func() int {
					for begin := time.Now(); time.Since(begin) < grain; {
					}
					return 1
				})
				f.Get()
				n++
				time.Sleep(200 * time.Microsecond)
			}
		}()
	}
	workStart := time.Now()

	col := NewBudgetedCollector(NewSampler(256), reg, baseInterval,
		Budget{Fraction: budgetPct / 100, Window: window}, false)
	col.Start()

	// Convergence: first window after which the controller holds the
	// overhead at or under budget.
	converged := -1
	for w := 1; w <= maxWindows; w++ {
		time.Sleep(window)
		if col.Controller.HeadroomPPM() >= 0 && col.Controller.OverheadPPM() > 0 {
			converged = w
			break
		}
	}

	// Final overhead: a clean trailing measurement from the registry's
	// own cost meter, after the controller settled.
	_, _, ns0 := reg.SamplingCost()
	t0 := time.Now()
	time.Sleep(4 * window)
	_, _, ns1 := reg.SamplingCost()
	elapsed := time.Since(t0)
	finalPct := 100 * float64(ns1-ns0) / float64(elapsed.Nanoseconds())

	col.Stop()
	close(stopWork)
	wg.Wait()
	workElapsed := time.Since(workStart)

	sweeps, _, costNs := reg.SamplingCost()
	perSweep := 0.0
	if sweeps > 0 {
		perSweep = float64(costNs) / float64(sweeps)
	}
	rep := telemetryBudgetReport{
		GeneratedBy:      "go test -run TestWriteTelemetryBudgetJSON (scripts/bench.sh)",
		Workers:          workers,
		GrainUs:          float64(grain) / float64(time.Microsecond),
		BudgetPct:        budgetPct,
		BaseIntervalMs:   float64(baseInterval) / float64(time.Millisecond),
		WindowMs:         float64(window) / float64(time.Millisecond),
		ConvergedWindows: converged,
		FinalOverheadPct: finalPct,
		FinalIntervalMs:  float64(col.Interval()) / float64(time.Millisecond),
		FinalLevel:       col.Controller.Level(),
		Demotions:        col.Controller.Demotions(),
		EvalCostNsPerSwp: perSweep,
		ActiveCounters:   fullSet,
		TasksPerSecond:   float64(tasks) / workElapsed.Seconds(),
	}
	t.Logf("telemetry_budget: %+v", rep)

	// The acceptance assertion: the controller found a configuration at
	// or under the 1%% budget.
	if converged < 0 {
		t.Errorf("budget controller did not converge within %d windows (overhead %d ppm)",
			maxWindows, col.Controller.OverheadPPM())
	}
	// Allow scheduling jitter on the trailing measurement: the budget
	// is 1%, the dead band upper edge; 1.5% here means control failed.
	if finalPct > 1.5*budgetPct {
		t.Errorf("final measured overhead %.3f%% exceeds budget %.1f%%", finalPct, budgetPct)
	}

	doc := map[string]json.RawMessage{}
	if prev, err := os.ReadFile(path); err == nil {
		_ = json.Unmarshal(prev, &doc)
	}
	cur, err := json.MarshalIndent(rep, "  ", "  ")
	if err != nil {
		t.Fatal(err)
	}
	doc["telemetry_budget"] = cur
	out, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, append(out, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	t.Logf("wrote %s", path)
}
