package telemetry

import (
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
)

// budgetTestRegistry builds a registry with counters across all three
// tiers: a critical health counter, normal totals, per-worker debug
// counters, and one deliberately expensive debug FuncCounter whose
// evaluation sleeps for expensiveCost.
func budgetTestRegistry(t testing.TB, expensiveCost time.Duration) (*core.Registry, *atomic.Int64) {
	t.Helper()
	reg := core.NewRegistry()
	reg.MustRegister(core.NewRawCounter(
		core.Name{Object: "runtime", Counter: "health/events"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/runtime/health/events"}))
	reg.MustRegister(core.NewRawCounter(
		core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/count/cumulative"}))
	for i := 0; i < 4; i++ {
		reg.MustRegister(core.NewRawCounter(
			core.Name{Object: "threads", Counter: "count/cumulative"}.
				WithInstances(core.LocalityInstance(0, "worker-thread", int64(i))...),
			core.Info{TypeName: "/threads/count/cumulative"}))
	}
	var evals atomic.Int64
	reg.MustRegister(core.NewFuncCounter(
		core.Name{Object: "threads", Counter: "time/average"}.
			WithInstances(core.LocalityInstance(0, "worker-thread", 0)...),
		core.Info{TypeName: "/threads/time/average"}, 0,
		func() int64 {
			evals.Add(1)
			if expensiveCost > 0 {
				time.Sleep(expensiveCost)
			}
			return 1
		}, nil))
	for _, p := range []string{
		"/runtime{locality#0/total}/health/events",
		"/threads{locality#0/total}/count/cumulative",
		"/threads{locality#0/worker-thread#*}/count/cumulative",
		"/threads{locality#0/worker-thread#0}/time/average",
	} {
		if _, err := reg.AddActive(p); err != nil {
			t.Fatalf("AddActive(%q): %v", p, err)
		}
	}
	return reg, &evals
}

func TestDefaultTiers(t *testing.T) {
	cases := []struct {
		name string
		want Priority
	}{
		{"/runtime{locality#0/total}/health/events", PriorityCritical},
		{"/runtime{locality#0/total}/health/callback-errors", PriorityCritical},
		{"/counters{locality#0/total}/cost/eval-ns", PriorityCritical},
		{"/telemetry{locality#0/total}/budget/headroom", PriorityCritical},
		{"/telemetry{locality#0/total}/flight/triggers", PriorityCritical},
		{"/counters{locality#0/total}/count/errors", PriorityCritical},
		{"/threads{locality#0/total}/count/cumulative", PriorityNormal},
		{"/threads{locality#0/total}/idle-rate", PriorityNormal},
		{"/threads{locality#0/worker-thread#3}/count/cumulative", PriorityDebug},
		{"/statistics{/threads{locality#0/total}/time/average}/percentile@95", PriorityDebug},
	}
	for _, c := range cases {
		if got := DefaultTiers(c.name); got != c.want {
			t.Errorf("DefaultTiers(%q) = %s, want %s", c.name, got, c.want)
		}
	}
}

// TestTieredSourceLevels: level 0 samples everything, level 1 drops
// exactly the debug tier, level 2 leaves only critical — and a
// registry change (new counter in the active set) is picked up through
// the generation check.
func TestTieredSourceLevels(t *testing.T) {
	reg, _ := budgetTestRegistry(t, 0)
	ts := newTieredSource(reg, DefaultTiers, false)

	count := func(lvl int, substr string) (total, match int) {
		ts.setLevel(lvl)
		for _, v := range ts.sample() {
			total++
			if strings.Contains(v.Name, substr) {
				match++
			}
		}
		return
	}

	all, debug := count(0, "worker-thread#")
	if all != 7 || debug != 5 {
		t.Fatalf("level 0: %d values (%d debug), want 7 (5)", all, debug)
	}
	lvl1, debug1 := count(1, "worker-thread#")
	if lvl1 != 2 || debug1 != 0 {
		t.Fatalf("level 1: %d values (%d debug), want 2 (0)", lvl1, debug1)
	}
	lvl2, _ := count(2, "")
	if lvl2 != 1 {
		t.Fatalf("level 2: %d values, want 1 (critical only)", lvl2)
	}
	v := ts.sample()[0]
	if !strings.Contains(v.Name, "/health/") {
		t.Fatalf("level 2 kept %q, want the critical health counter", v.Name)
	}

	// Active-set change rebuilds the sets.
	reg.MustRegister(core.NewRawCounter(
		core.Name{Object: "threads", Counter: "idle-rate"}.
			WithInstances(core.LocalityInstance(0, "total", -1)...),
		core.Info{TypeName: "/threads/idle-rate"}))
	if _, err := reg.AddActive("/threads{locality#0/total}/idle-rate"); err != nil {
		t.Fatal(err)
	}
	if got, _ := count(0, ""); got != 8 {
		t.Fatalf("after AddActive: %d values, want 8", got)
	}

	// setTier override moves a counter between tiers.
	ts.setTier("/threads{locality#0/total}/idle-rate", PriorityDebug)
	if got, _ := count(1, ""); got != 2 {
		t.Fatalf("after override, level 1: %d values, want 2", got)
	}
}

// TestBudgetControllerDemotionOrder drives the controller with a
// synthetic cost source and asserts the exact degradation ladder:
// debug demoted first, then normal, then interval doubling — and
// critical is never dropped (level never exceeds Levels).
func TestBudgetControllerDemotionOrder(t *testing.T) {
	var cost int64
	var levels []int
	var intervals []time.Duration
	base := 10 * time.Millisecond
	bc := NewBudgetController(BudgetControllerConfig{
		Budget:       Budget{Fraction: 0.01, Window: time.Second, MaxInterval: 40 * time.Millisecond},
		BaseInterval: base,
		Cost:         func() int64 { return cost },
		SetInterval:  func(d time.Duration) { intervals = append(intervals, d) },
		Levels:       2,
		SetLevel:     func(l int) { levels = append(levels, l) },
	})
	t0 := time.Unix(0, 0)
	bc.Tick(t0) // arm
	for i := 1; i <= 6; i++ {
		cost += int64(100 * time.Millisecond) // 10% of one core: far over 1%
		bc.Tick(t0.Add(time.Duration(i) * time.Second))
	}
	if want := []int{1, 2}; len(levels) != 2 || levels[0] != 1 || levels[1] != 2 {
		t.Fatalf("level sequence = %v, want %v (debug first, then normal, never critical)", levels, want)
	}
	if len(intervals) != 2 || intervals[0] != 20*time.Millisecond || intervals[1] != 40*time.Millisecond {
		t.Fatalf("interval sequence = %v, want [20ms 40ms] (doubling after tiers exhausted)", intervals)
	}
	if bc.Level() != 2 {
		t.Fatalf("final level = %d, want 2 (critical tier still sampled)", bc.Level())
	}
	if bc.Demotions() != 4 {
		t.Fatalf("demotions = %d, want 4", bc.Demotions())
	}
	// Saturated: further over-budget windows change nothing.
	cost += int64(100 * time.Millisecond)
	bc.Tick(t0.Add(7 * time.Second))
	if bc.Level() != 2 || bc.Interval() != 40*time.Millisecond {
		t.Fatal("saturated controller kept degrading")
	}
	if bc.HeadroomPPM() >= 0 {
		t.Fatalf("headroom = %d ppm, want negative while over budget", bc.HeadroomPPM())
	}
}

// TestBudgetControllerPromotionHysteresis: easing requires PromoteAfter
// consecutive under-half-budget windows, restores in reverse order
// (interval first, then tiers), and a degrade right after an ease
// doubles the required calm stretch.
func TestBudgetControllerPromotionHysteresis(t *testing.T) {
	var cost int64
	base := 10 * time.Millisecond
	bc := NewBudgetController(BudgetControllerConfig{
		Budget:       Budget{Fraction: 0.01, Window: time.Second, MaxInterval: 20 * time.Millisecond, PromoteAfter: 2},
		BaseInterval: base,
		Cost:         func() int64 { return cost },
		SetInterval:  func(time.Duration) {},
		Levels:       2,
		SetLevel:     func(int) {},
	})
	t0 := time.Unix(0, 0)
	tick := func(i int, overNs int64) {
		cost += overNs
		bc.Tick(t0.Add(time.Duration(i) * time.Second))
	}
	over := int64(100 * time.Millisecond) // 10%
	calm := int64(time.Millisecond)       // 0.1% < half of 1%

	bc.Tick(t0) // arm the first window
	i := 0
	for n := 0; n < 3; n++ { // degrade to level 2 + one interval double
		i++
		tick(i, over)
	}
	if bc.Level() != 2 || bc.Interval() != 20*time.Millisecond {
		t.Fatalf("setup: level=%d interval=%v", bc.Level(), bc.Interval())
	}
	// One calm window is not enough (PromoteAfter=2).
	i++
	tick(i, calm)
	if bc.Interval() != 20*time.Millisecond {
		t.Fatal("eased after a single calm window despite PromoteAfter=2")
	}
	// Second calm window: interval restores first.
	i++
	tick(i, calm)
	if bc.Interval() != base || bc.Level() != 2 {
		t.Fatalf("first ease: interval=%v level=%d, want %v/2 (interval restores before tiers)",
			bc.Interval(), bc.Level(), base)
	}
	// Immediate re-degrade = flap: PromoteAfter doubles to 4.
	i++
	tick(i, over)
	if bc.Interval() != 20*time.Millisecond {
		t.Fatal("flap did not re-stretch the interval")
	}
	for n := 0; n < 3; n++ {
		i++
		tick(i, calm)
	}
	if bc.Interval() == base {
		t.Fatalf("eased after 3 calm windows; flap backoff should require 4")
	}
	i++
	tick(i, calm)
	if bc.Interval() != base {
		t.Fatal("4th calm window after flap should have eased the interval")
	}
	if bc.Promotions() != 2 {
		t.Fatalf("promotions = %d, want 2", bc.Promotions())
	}
}

// TestBudgetConvergence is the acceptance test: a deliberately
// expensive (sleeping) FuncCounter pushes measured sampling overhead
// far past a 1% budget; within a handful of controller windows the
// demotion ladder must bring the *measured* overhead back under
// budget — surgically parking the expensive counter when attribution
// has pinned it, or demoting debug (where it lives) before normal —
// and never touching critical.
func TestBudgetConvergence(t *testing.T) {
	reg, evals := budgetTestRegistry(t, 2*time.Millisecond)
	s := NewSampler(64)
	// 5ms sampling interval × 2ms-per-eval counter ≈ 40% overhead,
	// 40× over the 1% budget. Windows are short so the test converges
	// in well under a second.
	bcol := NewBudgetedCollector(s, reg, 5*time.Millisecond,
		Budget{Fraction: 0.01, Window: 100 * time.Millisecond}, false)
	bcol.Controller.RegisterCounters(reg)
	bcol.Start()
	defer bcol.Stop()

	const maxTicks = 20 // controller windows allowed before convergence
	deadline := time.After(time.Duration(maxTicks) * 100 * time.Millisecond * 2)
	for {
		demoted := bcol.Controller.Level() >= 1 || bcol.Controller.DemotedCounters() >= 1
		if demoted && bcol.Controller.OverheadPPM() > 0 &&
			bcol.Controller.HeadroomPPM() >= 0 {
			break
		}
		select {
		case <-deadline:
			t.Fatalf("no convergence: level=%d overhead=%dppm headroom=%dppm demotions=%d",
				bcol.Controller.Level(), bcol.Controller.OverheadPPM(),
				bcol.Controller.HeadroomPPM(), bcol.Controller.Demotions())
		case <-time.After(10 * time.Millisecond):
		}
	}
	if bcol.Controller.Level() > 2 {
		t.Fatalf("level = %d, critical tier must never demote", bcol.Controller.Level())
	}

	// The expensive counter is debug-tier: once demoted it must stop
	// being evaluated entirely.
	settled := evals.Load()
	time.Sleep(150 * time.Millisecond)
	if got := evals.Load(); got != settled {
		t.Fatalf("demoted expensive counter still evaluated (%d -> %d)", settled, got)
	}

	// Critical counters keep flowing after convergence.
	var healthPts, budgetPts int
	for _, series := range s.Snapshot() {
		switch {
		case strings.Contains(series.Name, "/health/events"):
			healthPts = len(series.Points)
		case strings.Contains(series.Name, "/budget/headroom"):
			budgetPts = len(series.Points)
		}
	}
	if healthPts == 0 {
		t.Fatal("critical health counter vanished from the sampler")
	}
	if budgetPts == 0 {
		t.Fatal("budget self-counters not sampled")
	}
}
