package telemetry

import (
	"sync"
	"testing"
	"time"

	"repro/internal/core"
)

func pointCount(snap []Series) int {
	n := 0
	for _, se := range snap {
		n += len(se.Points)
	}
	return n
}

// TestCollectorSetIntervalRuntime: shrinking the interval on a running
// collector takes effect immediately — the loop re-arms instead of
// sleeping out the old interval.
func TestCollectorSetIntervalRuntime(t *testing.T) {
	reg := newTestRegistry(t)
	s := NewSampler(128)
	// Start glacial: at 1h the loop would take one synchronous sample
	// and then sleep forever.
	c := NewCollector(s, RegistrySource(reg, false), time.Hour)
	if c.Interval() != time.Hour {
		t.Fatalf("interval = %v", c.Interval())
	}
	c.Start()
	defer c.Stop()

	c.SetInterval(5 * time.Millisecond)
	if c.Interval() != 5*time.Millisecond {
		t.Fatalf("interval after set = %v", c.Interval())
	}
	deadline := time.Now().Add(2 * time.Second)
	for pointCount(s.Snapshot()) < 5 {
		if time.Now().After(deadline) {
			t.Fatalf("interval change did not take effect: %d points",
				pointCount(s.Snapshot()))
		}
		time.Sleep(2 * time.Millisecond)
	}
	// Clamp: anything under MinInterval floors there.
	c.SetInterval(time.Nanosecond)
	if c.Interval() != MinInterval {
		t.Fatalf("interval not clamped: %v", c.Interval())
	}
}

// TestCollectorStopStartReuse: a stopped collector can be started again
// and keeps sampling into the same sampler — series history survives
// the restart.
func TestCollectorStopStartReuse(t *testing.T) {
	reg := newTestRegistry(t)
	s := NewSampler(128)
	c := NewCollector(s, RegistrySource(reg, false), 5*time.Millisecond)

	waitPoints := func(min int) {
		t.Helper()
		deadline := time.Now().Add(2 * time.Second)
		for pointCount(s.Snapshot()) < min {
			if time.Now().After(deadline) {
				t.Fatalf("timed out at %d points, want >= %d", pointCount(s.Snapshot()), min)
			}
			time.Sleep(2 * time.Millisecond)
		}
	}
	c.Start()
	waitPoints(2)
	c.Stop()
	mark := pointCount(s.Snapshot())
	time.Sleep(30 * time.Millisecond)
	if got := pointCount(s.Snapshot()); got != mark {
		t.Fatalf("stopped collector still sampling: %d -> %d", mark, got)
	}

	c.Start() // reuse: same sampler, same source
	waitPoints(mark + 2)
	c.Stop()
	if got := pointCount(s.Snapshot()); got < mark {
		t.Fatalf("restart lost history: %d < %d", got, mark)
	}
}

// TestCollectorStopNoDeadlock: Stop while a sample is in flight (slow
// source) and while SampleOnce races from other goroutines must return
// promptly — Stop does not take the sample lock.
func TestCollectorStopNoDeadlock(t *testing.T) {
	reg := newTestRegistry(t)
	s := NewSampler(16)
	inner := RegistrySource(reg, false)
	var slowMu sync.Mutex // sources share a buffer; serialize the copies
	slow := func() []core.Value {
		time.Sleep(50 * time.Millisecond)
		slowMu.Lock()
		defer slowMu.Unlock()
		return append([]core.Value(nil), inner()...)
	}
	c := NewCollector(s, slow, 2*time.Millisecond)
	c.Start()

	var wg sync.WaitGroup
	for i := 0; i < 3; i++ {
		wg.Add(1)
		go func() { defer wg.Done(); c.SampleOnce() }()
	}
	time.Sleep(10 * time.Millisecond) // loop is mid-pull

	done := make(chan struct{})
	go func() { c.Stop(); close(done) }()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("Stop deadlocked against in-flight samples")
	}
	wg.Wait()
	c.Stop() // idempotent after the fact
}
