package telemetry

// Steady-state allocation contracts of the export plane: scraping
// /metrics and ticking a RegistrySource must not allocate once the
// name-conversion cache and pooled render buffers are warm, so the
// telemetry plane cannot perturb the application it measures.

import (
	"fmt"
	"io"
	"testing"
	"time"

	"repro/internal/core"
)

func warmSampler(tb testing.TB, series int) *Sampler {
	tb.Helper()
	s := NewSampler(16)
	now := time.Now()
	for i := 0; i < series; i++ {
		name := fmt.Sprintf("/threads{locality#0/worker-thread#%d}/count/cumulative", i)
		s.Observe(name, Point{Time: now, Value: float64(i)})
	}
	// One unparsable name keeps the taskrt_counter fallback on the path.
	s.Observe("not a counter name", Point{Time: now, Value: 1})
	return s
}

func TestWritePrometheusAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates inside sync.Pool/sync.Map")
	}
	s := warmSampler(t, 24)
	WritePrometheus(io.Discard, s) // warm promCache + render pool
	n := testing.AllocsPerRun(200, func() { WritePrometheus(io.Discard, s) })
	if n != 0 {
		t.Fatalf("WritePrometheus allocates %v per scrape at steady state, want 0", n)
	}
}

func TestRegistrySourceAllocs(t *testing.T) {
	reg := core.NewRegistry()
	for i := 0; i < 8; i++ {
		cn := core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "worker-thread", int64(i))...)
		reg.MustRegister(core.NewRawCounter(cn, core.Info{TypeName: "/threads/count/cumulative"}))
	}
	if _, err := reg.AddActive("/threads{locality#0/worker-thread#*}/count/cumulative"); err != nil {
		t.Fatal(err)
	}
	src := RegistrySource(reg, false)
	if got := len(src()); got != 8 {
		t.Fatalf("source yields %d values, want 8", got)
	}
	n := testing.AllocsPerRun(200, func() { src() })
	if n != 0 {
		t.Fatalf("RegistrySource tick allocates %v per run at steady state, want 0", n)
	}
}

func TestFlightRecordAllocs(t *testing.T) {
	// The flight recorder exists to capture the moments the runtime is
	// already unhealthy — allocating on the record path would perturb
	// exactly the state it is trying to preserve. The ring is
	// pre-allocated at arm time; Record must stay zero-alloc even while
	// bursting, wrapping, and truncating.
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	fr := NewFlightRecorder(FlightConfig{Frames: 16, MaxCounters: 4})
	vals := flightVals(8, 7) // > MaxCounters: truncation path included
	t0 := time.Unix(100, 0)
	fr.triggerAt(t0, "alloc test") // burst path included
	i := 0
	n := testing.AllocsPerRun(200, func() {
		i++
		fr.Record(t0.Add(time.Duration(i)*time.Millisecond), vals)
	})
	if n != 0 {
		t.Fatalf("flight Record allocates %v per frame, want 0", n)
	}
}

func TestCollectorSampleWithFlightAllocs(t *testing.T) {
	// The full per-tick observe path — registry sweep, sampler ring
	// append, flight ring copy — at steady state. time.Now() inside
	// SampleOnce is the only runtime call and does not allocate.
	if raceEnabled {
		t.Skip("race instrumentation allocates")
	}
	reg := core.NewRegistry()
	for i := 0; i < 8; i++ {
		cn := core.Name{Object: "threads", Counter: "count/cumulative"}.
			WithInstances(core.LocalityInstance(0, "worker-thread", int64(i))...)
		reg.MustRegister(core.NewRawCounter(cn, core.Info{TypeName: "/threads/count/cumulative"}))
	}
	if _, err := reg.AddActive("/threads{locality#0/worker-thread#*}/count/cumulative"); err != nil {
		t.Fatal(err)
	}
	s := NewSampler(4) // small ring: eviction path included
	c := NewCollector(s, RegistrySource(reg, false), time.Second)
	fr := NewFlightRecorder(FlightConfig{Frames: 32, MaxCounters: 16})
	c.EnableFlight(fr)
	c.TriggerFlight("alloc test")
	for i := 0; i < 8; i++ { // warm the sampler's series map
		c.SampleOnce()
	}
	n := testing.AllocsPerRun(200, func() { c.SampleOnce() })
	if n != 0 {
		t.Fatalf("collector sample with flight attached allocates %v per tick, want 0", n)
	}
}

func TestWritePrometheusPoolReuse(t *testing.T) {
	// Renders from a pool-warmed state must be byte-identical to a cold
	// render: pooled scratch may not leak rows between scrapes.
	s := warmSampler(t, 4)
	var cold captureWriter
	WritePrometheus(&cold, s)
	big := warmSampler(t, 64)
	var scratch captureWriter
	WritePrometheus(&scratch, big) // grows the pooled buffers
	var warm captureWriter
	WritePrometheus(&warm, s)
	if string(cold.buf) != string(warm.buf) {
		t.Fatalf("pooled render differs from cold render:\ncold:\n%s\nwarm:\n%s", cold.buf, warm.buf)
	}
}

type captureWriter struct{ buf []byte }

func (c *captureWriter) Write(p []byte) (int, error) {
	c.buf = append(c.buf, p...)
	return len(p), nil
}
