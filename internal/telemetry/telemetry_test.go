package telemetry

import (
	"encoding/json"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
)

func TestSamplerRingEviction(t *testing.T) {
	s := NewSampler(3)
	base := time.Unix(100, 0)
	for i := 0; i < 5; i++ {
		s.Observe("c", Point{Time: base.Add(time.Duration(i) * time.Second), Value: float64(i)})
	}
	snap := s.Snapshot()
	if len(snap) != 1 || snap[0].Name != "c" {
		t.Fatalf("snapshot = %+v", snap)
	}
	pts := snap[0].Points
	if len(pts) != 3 {
		t.Fatalf("points = %d want 3 (capacity)", len(pts))
	}
	// Oldest first, oldest two evicted.
	for i, p := range pts {
		if p.Value != float64(i+2) {
			t.Fatalf("point %d = %v, want %v", i, p.Value, i+2)
		}
	}
	latest := s.Latest()
	if len(latest) != 1 || len(latest[0].Points) != 1 || latest[0].Points[0].Value != 4 {
		t.Fatalf("latest = %+v", latest)
	}
}

func TestSamplerObserveValueSkipsInvalid(t *testing.T) {
	s := NewSampler(0)
	s.ObserveValue(core.Value{Name: "a", Raw: 1, Status: core.StatusInvalidData})
	s.ObserveValue(core.Value{Name: "a", Raw: 7, Time: time.Unix(1, 0), Status: core.StatusValid})
	snap := s.Snapshot()
	if len(snap) != 1 || len(snap[0].Points) != 1 || snap[0].Points[0].Value != 7 {
		t.Fatalf("snapshot = %+v", snap)
	}
}

func newTestRegistry(t *testing.T) *core.Registry {
	t.Helper()
	r := core.NewRegistry()
	name, err := core.ParseName("/threads{locality#0/total}/count/cumulative")
	if err != nil {
		t.Fatal(err)
	}
	c := core.NewRawCounter(name, core.Info{Unit: core.UnitEvents})
	r.MustRegister(c)
	c.Set(42)
	if _, err := r.AddActive(name.String()); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestCollectorWithRegistrySource(t *testing.T) {
	reg := newTestRegistry(t)
	s := NewSampler(8)
	c := NewCollector(s, RegistrySource(reg, false), 10*time.Millisecond)
	c.Start()
	defer c.Stop()
	deadline := time.Now().Add(2 * time.Second)
	for {
		snap := s.Snapshot()
		if len(snap) == 1 && len(snap[0].Points) >= 2 {
			if snap[0].Points[0].Value != 42 {
				t.Fatalf("sampled value = %v", snap[0].Points[0].Value)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("collector produced no samples: %+v", snap)
		}
		time.Sleep(5 * time.Millisecond)
	}
	c.Stop()
	c.Stop() // idempotent
}

func TestPrometheusExport(t *testing.T) {
	s := NewSampler(4)
	now := time.Unix(1, 0)
	s.Observe("/threads{locality#0/total}/count/cumulative", Point{Time: now, Value: 42})
	s.Observe("/threads{locality#0/worker-thread#3}/time/average", Point{Time: now, Value: 1500.5})
	s.Observe("/statistics{/threads{locality#0/total}/time/average}/percentile@95", Point{Time: now, Value: 2000})
	s.Observe("not a counter name", Point{Time: now, Value: 1})

	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var sb strings.Builder
	buf := make([]byte, 64<<10)
	for {
		n, err := res.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	body := sb.String()
	if ct := res.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	for _, want := range []string{
		"# TYPE taskrt_threads_count_cumulative gauge",
		`taskrt_threads_count_cumulative{locality="0",instance="total"} 42`,
		`taskrt_threads_time_average{locality="0",instance="worker-thread#3"} 1500.5`,
		`taskrt_statistics_percentile{base="/threads{locality#0/total}/time/average\",params=\"95"`,
		`taskrt_counter{name="not a counter name"} 1`,
	} {
		// The percentile line's params come from the parsed name; check
		// the pieces separately below instead of a brittle whole-line
		// match.
		if strings.Contains(want, "percentile") {
			continue
		}
		if !strings.Contains(body, want) {
			t.Fatalf("missing %q in:\n%s", want, body)
		}
	}
	if !strings.Contains(body, "taskrt_statistics_percentile{") ||
		!strings.Contains(body, `params="95"`) {
		t.Fatalf("percentile metric malformed:\n%s", body)
	}
	// Every non-comment line is name{labels} value, value after the
	// last space (label values may themselves contain spaces).
	for _, line := range strings.Split(strings.TrimSpace(body), "\n") {
		if strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			t.Fatalf("malformed exposition line %q", line)
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Fatalf("non-numeric value in line %q: %v", line, err)
		}
	}
}

func TestSeriesJSON(t *testing.T) {
	s := NewSampler(4)
	s.Observe("/runtime{locality#0/total}/uptime", Point{Time: time.Unix(5, 0), Value: 9})
	srv := httptest.NewServer(Handler(s))
	defer srv.Close()
	res, err := srv.Client().Get(srv.URL + "/series")
	if err != nil {
		t.Fatal(err)
	}
	defer res.Body.Close()
	var got struct {
		Series []Series `json:"series"`
	}
	if err := json.NewDecoder(res.Body).Decode(&got); err != nil {
		t.Fatal(err)
	}
	if len(got.Series) != 1 || got.Series[0].Name != "/runtime{locality#0/total}/uptime" {
		t.Fatalf("series = %+v", got.Series)
	}
	if pts := got.Series[0].Points; len(pts) != 1 || pts[0].Value != 9 {
		t.Fatalf("points = %+v", got.Series[0].Points)
	}
}

func TestSanitizeMetricName(t *testing.T) {
	for in, want := range map[string]string{
		"taskrt/threads/time/average": "taskrt_threads_time_average",
		"taskrt/idle-rate":            "taskrt_idle_rate",
		"taskrt//x":                   "taskrt_x",
	} {
		if got := sanitizeMetricName(in); got != want {
			t.Fatalf("sanitize(%q) = %q want %q", in, got, want)
		}
	}
}
