package telemetry

// Overhead-budgeted sampling (ScALPEL-style): the collector is given a
// budget — a maximum fraction of one core that observation may cost —
// and a closed-loop controller keeps the *measured* sampling cost (the
// registry's own /counters{...}/cost meters) inside it. Degradation is
// graceful and ordered: debug-tier counters are demoted first, then
// normal-tier, then the sampling interval stretches; critical counters
// are never dropped. Recovery is the reverse, gated by hysteresis so a
// workload hovering at the budget edge cannot make the sampler flap.

import (
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// Priority is a counter's sampling tier, assigned when the budgeted
// collector binds the active set. Under budget pressure lower tiers are
// demoted (stop being sampled) before higher ones.
type Priority uint8

const (
	// PriorityCritical counters are never demoted: health, error and
	// budget self-counters — the ones that explain an incident.
	PriorityCritical Priority = iota
	// PriorityNormal is the default tier.
	PriorityNormal
	// PriorityDebug counters (per-worker breakdowns, percentile
	// series) are the first to go under pressure.
	PriorityDebug

	numPriorities = 3
)

func (p Priority) String() string {
	switch p {
	case PriorityCritical:
		return "critical"
	case PriorityNormal:
		return "normal"
	case PriorityDebug:
		return "debug"
	}
	return fmt.Sprintf("priority(%d)", uint8(p))
}

// DefaultTiers classifies a full counter name into a sampling tier:
// self-observation, health and error counters are critical (they must
// survive any degradation — they are what a post-incident flight dump
// is read for); per-worker instances and statistics/percentile series
// are debug; everything else is normal.
func DefaultTiers(name string) Priority {
	switch {
	case strings.Contains(name, "/cost/"),
		strings.Contains(name, "/budget/"),
		strings.Contains(name, "/flight/"),
		strings.Contains(name, "/health/"),
		strings.Contains(name, "/count/errors"):
		return PriorityCritical
	case strings.Contains(name, "worker-thread#"),
		strings.HasPrefix(name, "/statistics{"),
		strings.Contains(name, "percentile"):
		return PriorityDebug
	}
	return PriorityNormal
}

// Budget bounds what sampling may cost.
type Budget struct {
	// Fraction is the maximum fraction of one core the metered
	// sampling cost may consume (0.01 = 1%). Defaults to 0.01.
	Fraction float64
	// Window is the controller's decision period: cost is averaged
	// over it and at most one degrade/ease action is taken per window.
	// Defaults to 1s.
	Window time.Duration
	// MaxInterval caps interval stretching (the last degradation
	// stage). Defaults to 64× the collector's base interval.
	MaxInterval time.Duration
	// PromoteAfter is how many consecutive under-half-budget windows
	// must pass before the controller eases one step back. Doubles
	// (up to 32) every time an ease is followed promptly by another
	// degrade — the anti-flap hysteresis. Defaults to 3.
	PromoteAfter int
}

func (b Budget) withDefaults(base time.Duration) Budget {
	if b.Fraction <= 0 {
		b.Fraction = 0.01
	}
	if b.Window <= 0 {
		b.Window = time.Second
	}
	if b.MaxInterval <= 0 {
		b.MaxInterval = 64 * base
	}
	if b.MaxInterval < base {
		b.MaxInterval = base
	}
	if b.PromoteAfter <= 0 {
		b.PromoteAfter = 3
	}
	return b
}

// BudgetControllerConfig wires a BudgetController to the thing it
// regulates. Cost and BaseInterval are required; Levels/SetLevel are
// optional (a remote monitor like perfmon has no tiers to demote and
// regulates rate only).
type BudgetControllerConfig struct {
	Budget Budget
	// BaseInterval is the undegraded sampling interval.
	BaseInterval time.Duration
	// Cost returns the cumulative metered sampling cost in
	// nanoseconds (monotone non-decreasing between windows).
	Cost func() int64
	// SetInterval is called whenever the controller changes the
	// sampling interval.
	SetInterval func(time.Duration)
	// Levels is the number of demotion levels available (2 for the
	// tiered source: drop debug, then drop normal). 0 disables tier
	// demotion and the controller regulates by interval alone.
	Levels int
	// SetLevel is called whenever the demotion level changes.
	SetLevel func(int)
	// ShedCounter, when set, is tried BEFORE tier demotion on each
	// degrade step: park the single most expensive counter (per-handle
	// cost attribution) instead of dropping a whole tier. It reports
	// whether it shed anything — false (no cost data yet, park limit
	// reached) falls through to tier demotion.
	ShedCounter func() bool
	// RestoreCounter is the inverse, tried as the LAST ease step once
	// interval and tiers are fully restored. Reports whether a parked
	// counter was restored.
	RestoreCounter func() bool
}

// BudgetController is the closed loop: feed it Tick(now) at any cadence
// (it acts at most once per Budget.Window) and it drives the measured
// sampling overhead back under budget by demoting tiers, then
// stretching the interval — and eases back out, reverse order, with
// hysteresis. It is passive and time-explicit, so it works equally for
// the local budgeted collector and perfmon's remote sampling loop, and
// is deterministic under test.
type BudgetController struct {
	cfg    BudgetControllerConfig
	budget Budget

	mu           sync.Mutex
	lastTick     time.Time
	lastCost     int64
	level        int
	interval     time.Duration
	underCount   int
	promoteAfter int
	lastEase     time.Time

	overheadPPM    atomic.Int64
	headroomPPM    atomic.Int64
	intervalNs     atomic.Int64
	levelNow       atomic.Int64
	demotions      atomic.Int64
	promotions     atomic.Int64
	counterDemoted atomic.Int64
}

// NewBudgetController builds a controller; panics if cfg.Cost or
// cfg.BaseInterval is unset (they are programming errors, not runtime
// conditions).
func NewBudgetController(cfg BudgetControllerConfig) *BudgetController {
	if cfg.Cost == nil {
		panic("telemetry: BudgetController needs a Cost source")
	}
	if cfg.BaseInterval <= 0 {
		panic("telemetry: BudgetController needs a positive BaseInterval")
	}
	if cfg.Levels > 0 && cfg.SetLevel == nil {
		panic("telemetry: Levels > 0 requires SetLevel")
	}
	b := cfg.Budget.withDefaults(cfg.BaseInterval)
	bc := &BudgetController{
		cfg:          cfg,
		budget:       b,
		interval:     cfg.BaseInterval,
		promoteAfter: b.PromoteAfter,
	}
	bc.intervalNs.Store(cfg.BaseInterval.Nanoseconds())
	bc.headroomPPM.Store(int64(b.Fraction * 1e6))
	return bc
}

// Tick advances the control loop. Call it as often as convenient; a
// decision is made only when a full Budget.Window has elapsed since the
// last one. The first call only arms the window.
func (bc *BudgetController) Tick(t time.Time) {
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if bc.lastTick.IsZero() {
		bc.lastTick = t
		bc.lastCost = bc.cfg.Cost()
		return
	}
	elapsed := t.Sub(bc.lastTick)
	if elapsed < bc.budget.Window {
		return
	}
	cur := bc.cfg.Cost()
	delta := cur - bc.lastCost
	bc.lastTick = t
	bc.lastCost = cur
	if delta < 0 { // cost meter was reset underneath us; re-arm
		return
	}
	overhead := float64(delta) / float64(elapsed.Nanoseconds())
	bc.overheadPPM.Store(int64(overhead * 1e6))
	bc.headroomPPM.Store(int64((bc.budget.Fraction - overhead) * 1e6))
	switch {
	case overhead > bc.budget.Fraction:
		bc.degradeLocked(t)
	case overhead < bc.budget.Fraction/2:
		bc.underCount++
		if bc.underCount >= bc.promoteAfter {
			bc.easeLocked(t)
		}
	default:
		// Inside [half, full] budget: hold position. This dead band
		// is half the hysteresis — the other half is PromoteAfter.
		bc.underCount = 0
	}
}

// degradeLocked sheds one step of sampling cost: demote the next tier
// (debug before normal, never critical), and only once no tier is left
// to demote, double the interval up to MaxInterval.
func (bc *BudgetController) degradeLocked(t time.Time) {
	bc.underCount = 0
	// Flap guard: degrading right after easing means the ease was
	// premature — require a longer calm stretch before the next one.
	if !bc.lastEase.IsZero() && t.Sub(bc.lastEase) <= 2*bc.budget.Window {
		if bc.promoteAfter < 32 {
			bc.promoteAfter *= 2
		}
	}
	switch {
	case bc.cfg.ShedCounter != nil && bc.cfg.ShedCounter():
		// Surgical first: park the one counter the attribution EWMA
		// blames, keeping the rest of its tier sampled.
		bc.counterDemoted.Add(1)
		bc.demotions.Add(1)
	case bc.level < bc.cfg.Levels:
		bc.level++
		bc.levelNow.Store(int64(bc.level))
		bc.cfg.SetLevel(bc.level)
		bc.demotions.Add(1)
	case bc.interval < bc.budget.MaxInterval:
		bc.interval *= 2
		if bc.interval > bc.budget.MaxInterval {
			bc.interval = bc.budget.MaxInterval
		}
		bc.intervalNs.Store(bc.interval.Nanoseconds())
		if bc.cfg.SetInterval != nil {
			bc.cfg.SetInterval(bc.interval)
		}
		bc.demotions.Add(1)
	}
	// Fully saturated (critical-only at MaxInterval): nothing left to
	// shed; the budget counters keep reporting the excess.
}

// easeLocked restores one step, reverse of degradation: shrink a
// stretched interval back toward base first, then promote tiers.
func (bc *BudgetController) easeLocked(t time.Time) {
	bc.underCount = 0
	bc.lastEase = t
	switch {
	case bc.interval > bc.cfg.BaseInterval:
		bc.interval /= 2
		if bc.interval < bc.cfg.BaseInterval {
			bc.interval = bc.cfg.BaseInterval
		}
		bc.intervalNs.Store(bc.interval.Nanoseconds())
		if bc.cfg.SetInterval != nil {
			bc.cfg.SetInterval(bc.interval)
		}
		bc.promotions.Add(1)
	case bc.level > 0:
		bc.level--
		bc.levelNow.Store(int64(bc.level))
		bc.cfg.SetLevel(bc.level)
		bc.promotions.Add(1)
	case bc.cfg.RestoreCounter != nil && bc.cfg.RestoreCounter():
		// Parked counters come back last — they were the single most
		// expensive, so they are the first to re-blow the budget.
		bc.counterDemoted.Add(-1)
		bc.promotions.Add(1)
	}
}

// OverheadPPM returns the last window's measured sampling overhead in
// parts-per-million of one core.
func (bc *BudgetController) OverheadPPM() int64 { return bc.overheadPPM.Load() }

// HeadroomPPM returns budget minus measured overhead, in ppm (negative
// while over budget).
func (bc *BudgetController) HeadroomPPM() int64 { return bc.headroomPPM.Load() }

// Interval returns the interval the controller currently commands.
func (bc *BudgetController) Interval() time.Duration {
	return time.Duration(bc.intervalNs.Load())
}

// Level returns the current demotion level (0 = nothing demoted).
func (bc *BudgetController) Level() int { return int(bc.levelNow.Load()) }

// Demotions returns the cumulative count of degradation steps taken.
func (bc *BudgetController) Demotions() int64 { return bc.demotions.Load() }

// Promotions returns the cumulative count of easing steps taken.
func (bc *BudgetController) Promotions() int64 { return bc.promotions.Load() }

// DemotedCounters returns how many individual counters are currently
// parked by surgical (per-counter) demotion.
func (bc *BudgetController) DemotedCounters() int64 { return bc.counterDemoted.Load() }

// RegisterCounters self-exports the controller's state as
// /telemetry{locality#0/total}/budget/* counters on reg and adds them
// to the active set, so the budget plane is visible through the very
// plane it regulates (they are critical-tier by DefaultTiers). Already-
// registered names are left in place.
func (bc *BudgetController) RegisterCounters(reg *core.Registry) {
	register := func(counter, help, unit string, sample func() int64) {
		n := core.Name{Object: "telemetry", Counter: counter}.
			WithInstances(core.LocalityInstance(0, "total", -1)...)
		c := core.NewFuncCounter(n, core.Info{
			TypeName: "/telemetry/" + counter,
			HelpText: help,
			Unit:     unit,
			Version:  "1.0",
		}, 0, sample, nil)
		if err := reg.Register(c); err != nil {
			return
		}
		_, _ = reg.AddActive(n.String())
	}
	register("budget/overhead", "measured sampling overhead, ppm of one core",
		core.UnitNone, bc.OverheadPPM)
	register("budget/headroom", "budget minus measured overhead, ppm (negative = over)",
		core.UnitNone, bc.HeadroomPPM)
	register("budget/rate", "controller-commanded sampling interval",
		core.UnitNanoseconds, bc.intervalNs.Load)
	register("budget/level", "current demotion level (0 = full set)",
		core.UnitNone, bc.levelNow.Load)
	register("budget/demotions", "cumulative degradation steps (counter parks + tier demotions + interval stretches)",
		core.UnitEvents, bc.demotions.Load)
	register("budget/demoted-counters", "individual counters currently parked by per-counter demotion",
		core.UnitNone, bc.counterDemoted.Load)
	register("budget/promotions", "cumulative easing steps",
		core.UnitEvents, bc.promotions.Load)
}

// ---------------------------------------------------------------------------
// tieredSource: the active set split by priority, evaluated by level.

// tieredSource samples a registry's active set through per-tier compiled
// bind sets, skipping demoted tiers. The sets are rebuilt only when the
// registry's active generation changes, so the steady-state sample path
// stays allocation-free.
type tieredSource struct {
	reg      *core.Registry
	classify func(string) Priority
	reset    bool
	// burst reports whether the flight recorder is bursting: a burst
	// captures the full set regardless of demotion level — the window
	// is bounded, so the budget claim stays honest.
	burst func() bool

	// attributeCost enables per-handle EWMA cost metering on the built
	// sets, the signal behind surgical per-counter demotion. One extra
	// clock read per counter per sweep.
	attributeCost bool

	level atomic.Int32

	mu        sync.Mutex
	overrides map[string]Priority
	gen       uint64
	built     bool
	sets      [numPriorities]*core.BindSet
	scratch   [numPriorities][]core.Value
	buf       []core.Value
	// parked holds individually demoted counters (excluded from the
	// rebuilt sets); parkOrder is the LIFO restore order.
	parked    map[string]bool
	parkOrder []string
}

func newTieredSource(reg *core.Registry, classify func(string) Priority, reset bool) *tieredSource {
	if classify == nil {
		classify = DefaultTiers
	}
	return &tieredSource{reg: reg, classify: classify, reset: reset}
}

func (ts *tieredSource) setLevel(l int) { ts.level.Store(int32(l)) }

// setTier pins one counter name to a tier, overriding the classifier,
// and forces a rebuild on the next sample.
func (ts *tieredSource) setTier(name string, p Priority) {
	ts.mu.Lock()
	if ts.overrides == nil {
		ts.overrides = make(map[string]Priority)
	}
	ts.overrides[name] = p
	ts.built = false
	ts.mu.Unlock()
}

func (ts *tieredSource) tierOf(name string) Priority {
	if p, ok := ts.overrides[name]; ok {
		if p >= numPriorities {
			p = PriorityDebug
		}
		return p
	}
	p := ts.classify(name)
	if p >= numPriorities {
		p = PriorityDebug
	}
	return p
}

func (ts *tieredSource) rebuildLocked(gen uint64) {
	var names [numPriorities][]string
	for _, n := range ts.reg.Active() {
		if ts.parked[n] {
			continue
		}
		p := ts.tierOf(n)
		names[p] = append(names[p], n)
	}
	for p := range ts.sets {
		ts.sets[p] = ts.reg.BindSetLenient(names[p])
		if ts.attributeCost {
			ts.sets[p].EnableCostMetering()
		}
	}
	ts.gen = gen
	ts.built = true
}

// maxParkedCounters caps surgical demotion: past this many parks the
// cost clearly isn't one hot counter, and the controller falls back to
// tier demotion.
const maxParkedCounters = 8

// parkMostExpensive demotes the single most expensive non-critical
// counter according to the per-handle cost EWMAs. Reports false when
// there is no attribution data yet or the park limit is reached —
// the controller then degrades a whole tier instead.
func (ts *tieredSource) parkMostExpensive() bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if !ts.built || !ts.attributeCost || len(ts.parked) >= maxParkedCounters {
		return false
	}
	best, bestNs := "", int64(0)
	// Critical-tier counters are never parked, same as they are never
	// tier-demoted.
	for p := PriorityNormal; p <= PriorityDebug; p++ {
		set := ts.sets[p]
		if set == nil {
			continue
		}
		if i, ns := set.MostExpensive(nil); i >= 0 && ns > bestNs {
			best, bestNs = set.Names()[i], ns
		}
	}
	if best == "" {
		return false
	}
	if ts.parked == nil {
		ts.parked = make(map[string]bool)
	}
	ts.parked[best] = true
	ts.parkOrder = append(ts.parkOrder, best)
	ts.built = false // rebuild without it on the next sample
	return true
}

// unparkLast restores the most recently parked counter (LIFO — the
// first parked was the most expensive and returns last). Reports false
// when nothing is parked.
func (ts *tieredSource) unparkLast() bool {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if len(ts.parkOrder) == 0 {
		return false
	}
	last := ts.parkOrder[len(ts.parkOrder)-1]
	ts.parkOrder = ts.parkOrder[:len(ts.parkOrder)-1]
	delete(ts.parked, last)
	ts.built = false
	return true
}

// demotedCounters returns the currently parked names, most recent last.
func (ts *tieredSource) demotedCounters() []string {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	return append([]string(nil), ts.parkOrder...)
}

// sample is the collector Source: evaluate every non-demoted tier into
// one reused buffer. Demoted tiers are not evaluated at all — their
// cost genuinely disappears, which is what lets the controller converge.
func (ts *tieredSource) sample() []core.Value {
	ts.mu.Lock()
	defer ts.mu.Unlock()
	if gen := ts.reg.ActiveGeneration(); !ts.built || gen != ts.gen {
		ts.rebuildLocked(gen)
	}
	lvl := int(ts.level.Load())
	if ts.burst != nil && ts.burst() {
		lvl = 0
	}
	ts.buf = ts.buf[:0]
	for p := 0; p < numPriorities; p++ {
		// Level l drops the lowest l tiers: 1 drops debug, 2 drops
		// normal too; critical would need level 3, which no
		// controller is configured to reach.
		if lvl >= numPriorities-p {
			continue
		}
		ts.scratch[p] = ts.sets[p].EvaluateBatch(ts.scratch[p][:0], ts.reset)
		ts.buf = append(ts.buf, ts.scratch[p]...)
	}
	return ts.buf
}

// ---------------------------------------------------------------------------
// BudgetedCollector: collector + tiered source + controller, wired.

// BudgetedCollector is a Collector whose sampling cost is closed-loop
// regulated to stay inside a Budget. The embedded Collector serves the
// usual sampler plane; Controller exposes the loop's state.
type BudgetedCollector struct {
	*Collector
	Controller *BudgetController

	tiers *tieredSource

	mu      sync.Mutex
	stopCtl chan struct{}
	wg      sync.WaitGroup
}

// NewBudgetedCollector samples reg's active set into s every interval,
// regulated to b. With reset, samples evaluate-and-reset. The budget's
// cost signal is reg's own /counters{...}/cost meter, so anything else
// evaluating counters on reg (an HTTP scrape, an ad-hoc query) counts
// against the same budget — the controller regulates total observation
// cost, not just its own.
func NewBudgetedCollector(s *Sampler, reg *core.Registry, interval time.Duration, b Budget, reset bool) *BudgetedCollector {
	ts := newTieredSource(reg, DefaultTiers, reset)
	ts.attributeCost = true
	col := NewCollector(s, ts.sample, interval)
	ctl := NewBudgetController(BudgetControllerConfig{
		Budget:       b,
		BaseInterval: col.Interval(),
		Cost: func() int64 {
			_, _, ns := reg.SamplingCost()
			return ns
		},
		SetInterval:    col.SetInterval,
		Levels:         numPriorities - 1, // drop debug, then normal; never critical
		SetLevel:       ts.setLevel,
		ShedCounter:    ts.parkMostExpensive,
		RestoreCounter: ts.unparkLast,
	})
	bc := &BudgetedCollector{Collector: col, Controller: ctl, tiers: ts}
	ts.burst = func() bool {
		fr := col.flight.Load()
		return fr != nil && fr.Bursting()
	}
	return bc
}

// SetTier pins one counter to a tier, overriding DefaultTiers.
func (bc *BudgetedCollector) SetTier(name string, p Priority) { bc.tiers.setTier(name, p) }

// DemotedCounters lists the individually parked counters, most recent
// last (the /telemetry{...}/budget/demoted-counters gauge counts them).
func (bc *BudgetedCollector) DemotedCounters() []string { return bc.tiers.demotedCounters() }

// Start begins sampling and the control loop (idempotent).
func (bc *BudgetedCollector) Start() {
	bc.Collector.Start()
	bc.mu.Lock()
	defer bc.mu.Unlock()
	if bc.stopCtl != nil {
		return
	}
	stop := make(chan struct{})
	bc.stopCtl = stop
	bc.wg.Add(1)
	go func() {
		defer bc.wg.Done()
		// Tick at half the window so a full window is always seen
		// within one period of elapsing; the controller itself acts
		// at most once per window.
		t := time.NewTicker(bc.Controller.budget.Window / 2)
		defer t.Stop()
		for {
			select {
			case <-stop:
				return
			case now := <-t.C:
				bc.Controller.Tick(now)
			}
		}
	}()
}

// Stop ends the control loop and sampling (idempotent).
func (bc *BudgetedCollector) Stop() {
	bc.mu.Lock()
	stop := bc.stopCtl
	bc.stopCtl = nil
	bc.mu.Unlock()
	if stop != nil {
		close(stop)
		bc.wg.Wait()
	}
	bc.Collector.Stop()
}
