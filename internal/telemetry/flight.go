package telemetry

// Flight recorder: "collect cheap always, collect deep on anomaly." A
// pre-allocated frame ring rides along the normal sampling loop at base
// rate; when a watchdog health event (or an explicit Trigger) fires,
// the collector flips to a high-rate (≥10× base) full-set burst for a
// bounded window, so the expensive data exists exactly when something
// went wrong. The ring always holds the frames *around* the trigger —
// pre-trigger context at base rate, the burst at burst rate — and is
// dumpable as JSON or CSV without stopping the application.
//
// Everything on the record path is allocation-free: frames and their
// value arrays are allocated once at construction, Record copies values
// in place, and the state machine is advanced by the timestamps it is
// handed. Hysteresis: triggers during a burst coalesce into it (no
// window extension), and a cooldown after each burst suppresses
// re-triggering, so a flapping health event cannot pin the sampler at
// burst rate.

import (
	"encoding/json"
	"io"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/core"
)

// FlightConfig sizes the recorder.
type FlightConfig struct {
	// Frames is the ring capacity. Default 512.
	Frames int
	// MaxCounters is the per-frame value capacity; values beyond it
	// are dropped (counted in truncated). Default 256.
	MaxCounters int
	// Burst is the rate multiplier during a burst window (the
	// collector samples at interval/Burst). Default and floor 10.
	Burst int
	// Window is how long a burst lasts. Default 2s.
	Window time.Duration
	// Cooldown suppresses new triggers after a burst ends. Default =
	// Window.
	Cooldown time.Duration
}

func (c FlightConfig) withDefaults() FlightConfig {
	if c.Frames <= 0 {
		c.Frames = 512
	}
	if c.MaxCounters <= 0 {
		c.MaxCounters = 256
	}
	if c.Burst < 10 {
		c.Burst = 10
	}
	if c.Window <= 0 {
		c.Window = 2 * time.Second
	}
	if c.Cooldown <= 0 {
		c.Cooldown = c.Window
	}
	return c
}

// flight recorder states.
const (
	flightIdle = iota
	flightBurst
	flightCooldown
)

// flightFrame is one recorded sample batch. vals is allocated once at
// construction and reused in place.
type flightFrame struct {
	t       time.Time
	trigger string // non-empty on the frame that armed a burst
	burst   bool
	vals    []core.Value
}

// FlightRecorder is the ring plus its burst state machine. All methods
// are safe for concurrent use.
type FlightRecorder struct {
	cfg FlightConfig

	mu        sync.Mutex
	frames    []flightFrame
	next      int
	full      bool
	state     int
	stateEnds time.Time // when the current burst/cooldown lapses
	trigAt    time.Time
	trigWhy   string

	triggers   atomic.Int64 // accepted (armed or coalesced)
	suppressed atomic.Int64 // rejected during cooldown
	recorded   atomic.Int64 // frames recorded, cumulative
	truncated  atomic.Int64 // values dropped for exceeding MaxCounters
	bursting   atomic.Int64 // 0/1 gauge
}

// NewFlightRecorder pre-allocates the ring; nothing on the Record or
// Trigger path allocates afterwards.
func NewFlightRecorder(cfg FlightConfig) *FlightRecorder {
	cfg = cfg.withDefaults()
	fr := &FlightRecorder{cfg: cfg, frames: make([]flightFrame, cfg.Frames)}
	for i := range fr.frames {
		fr.frames[i].vals = make([]core.Value, 0, cfg.MaxCounters)
	}
	return fr
}

// Config returns the recorder's effective (defaulted) configuration.
func (fr *FlightRecorder) Config() FlightConfig { return fr.cfg }

// advanceLocked moves the state machine to time t.
func (fr *FlightRecorder) advanceLocked(t time.Time) {
	for {
		switch fr.state {
		case flightBurst:
			if t.Before(fr.stateEnds) {
				return
			}
			fr.state = flightCooldown
			fr.stateEnds = fr.stateEnds.Add(fr.cfg.Cooldown)
			fr.bursting.Store(0)
		case flightCooldown:
			if t.Before(fr.stateEnds) {
				return
			}
			fr.state = flightIdle
			return
		default:
			return
		}
	}
}

// Trigger arms a burst: from idle it starts one; during a burst it
// coalesces (counted, window not extended); during cooldown it is
// suppressed. Returns true when the anomaly will be (or already is
// being) captured at burst rate.
func (fr *FlightRecorder) Trigger(reason string) bool {
	return fr.triggerAt(time.Now(), reason)
}

func (fr *FlightRecorder) triggerAt(t time.Time, reason string) bool {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	fr.advanceLocked(t)
	switch fr.state {
	case flightIdle:
		fr.state = flightBurst
		fr.stateEnds = t.Add(fr.cfg.Window)
		fr.trigAt = t
		fr.trigWhy = reason
		fr.bursting.Store(1)
		fr.triggers.Add(1)
		return true
	case flightBurst:
		fr.triggers.Add(1)
		return true
	default: // cooldown: hysteresis — no back-to-back bursts
		fr.suppressed.Add(1)
		return false
	}
}

// Bursting reports whether the recorder is inside a burst window; the
// collector samples at interval/Burst while it is.
func (fr *FlightRecorder) Bursting() bool { return fr.burstingAt(time.Now()) }

func (fr *FlightRecorder) burstingAt(t time.Time) bool {
	fr.mu.Lock()
	fr.advanceLocked(t)
	b := fr.state == flightBurst
	fr.mu.Unlock()
	return b
}

// BurstInterval returns the sampling interval to use while bursting,
// given the collector's base interval: base/Burst, floored at 50µs so a
// pathological base cannot spin the loop.
func (fr *FlightRecorder) BurstInterval(base time.Duration) time.Duration {
	d := base / time.Duration(fr.cfg.Burst)
	if d < 50*time.Microsecond {
		d = 50 * time.Microsecond
	}
	return d
}

// Record appends one frame to the ring (allocation-free). The frame is
// marked burst while a burst window is open; the first frame at or
// after the trigger carries its reason.
func (fr *FlightRecorder) Record(t time.Time, vals []core.Value) {
	fr.mu.Lock()
	fr.advanceLocked(t)
	f := &fr.frames[fr.next]
	fr.next++
	if fr.next == len(fr.frames) {
		fr.next = 0
		fr.full = true
	}
	f.t = t
	f.burst = fr.state == flightBurst
	f.trigger = ""
	if f.burst && fr.trigWhy != "" && !t.Before(fr.trigAt) {
		f.trigger = fr.trigWhy
		fr.trigWhy = "" // the reason rides on exactly one frame
	}
	n := len(vals)
	if n > cap(f.vals) {
		fr.truncated.Add(int64(n - cap(f.vals)))
		n = cap(f.vals)
	}
	f.vals = f.vals[:n]
	copy(f.vals, vals[:n])
	fr.mu.Unlock()
	fr.recorded.Add(1)
}

// Triggers returns the cumulative count of accepted triggers.
func (fr *FlightRecorder) Triggers() int64 { return fr.triggers.Load() }

// Suppressed returns the cumulative count of cooldown-suppressed
// triggers.
func (fr *FlightRecorder) Suppressed() int64 { return fr.suppressed.Load() }

// Recorded returns the cumulative count of recorded frames.
func (fr *FlightRecorder) Recorded() int64 { return fr.recorded.Load() }

// FlightValue is one counter observation inside a dumped frame.
type FlightValue struct {
	Name   string  `json:"name"`
	Value  float64 `json:"v"`
	Count  int64   `json:"n,omitempty"`
	Status string  `json:"status,omitempty"` // omitted when valid
}

// FlightFrame is one dumped sample batch.
type FlightFrame struct {
	Time    time.Time     `json:"t"`
	Burst   bool          `json:"burst,omitempty"`
	Trigger string        `json:"trigger,omitempty"`
	Values  []FlightValue `json:"values"`
}

// FlightDump is the recorder's captured ring, oldest frame first.
type FlightDump struct {
	Captured   time.Time     `json:"captured"`
	Frames     int           `json:"frames"`
	Burst      int           `json:"burst_frames"`
	Triggers   int64         `json:"triggers"`
	Suppressed int64         `json:"suppressed"`
	Truncated  int64         `json:"truncated_values,omitempty"`
	Ring       []FlightFrame `json:"ring"`
}

// Snapshot copies the ring out, oldest first. This is the read path —
// it allocates freely; the record path never does.
func (fr *FlightRecorder) Snapshot() FlightDump {
	fr.mu.Lock()
	defer fr.mu.Unlock()
	d := FlightDump{
		Captured:   time.Now(),
		Triggers:   fr.triggers.Load(),
		Suppressed: fr.suppressed.Load(),
		Truncated:  fr.truncated.Load(),
	}
	emit := func(f *flightFrame) {
		if f.t.IsZero() {
			return
		}
		df := FlightFrame{Time: f.t, Burst: f.burst, Trigger: f.trigger,
			Values: make([]FlightValue, 0, len(f.vals))}
		for _, v := range f.vals {
			fv := FlightValue{Name: v.Name, Value: v.Float64(), Count: v.Count}
			if !v.Valid() {
				fv.Status = v.Status.String()
			}
			df.Values = append(df.Values, fv)
		}
		if df.Burst {
			d.Burst++
		}
		d.Ring = append(d.Ring, df)
	}
	if fr.full {
		for i := fr.next; i < len(fr.frames); i++ {
			emit(&fr.frames[i])
		}
	}
	for i := 0; i < fr.next; i++ {
		emit(&fr.frames[i])
	}
	d.Frames = len(d.Ring)
	return d
}

// WriteJSON dumps the ring as indented JSON.
func (fr *FlightRecorder) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(fr.Snapshot())
}

// WriteCSV dumps the ring as CSV, one row per counter value:
// time,frame,burst,trigger,name,value,count,status.
func (fr *FlightRecorder) WriteCSV(w io.Writer) error {
	d := fr.Snapshot()
	buf := make([]byte, 0, 256)
	buf = append(buf, "time,frame,burst,trigger,name,value,count,status\n"...)
	if _, err := w.Write(buf); err != nil {
		return err
	}
	for i, f := range d.Ring {
		for _, v := range f.Values {
			buf = buf[:0]
			buf = f.Time.AppendFormat(buf, time.RFC3339Nano)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, int64(i), 10)
			buf = append(buf, ',')
			buf = strconv.AppendBool(buf, f.Burst)
			buf = append(buf, ',')
			buf = append(buf, csvEscape(f.Trigger)...)
			buf = append(buf, ',')
			buf = append(buf, csvEscape(v.Name)...)
			buf = append(buf, ',')
			buf = strconv.AppendFloat(buf, v.Value, 'g', -1, 64)
			buf = append(buf, ',')
			buf = strconv.AppendInt(buf, v.Count, 10)
			buf = append(buf, ',')
			buf = append(buf, v.Status...)
			buf = append(buf, '\n')
			if _, err := w.Write(buf); err != nil {
				return err
			}
		}
	}
	return nil
}

func csvEscape(s string) string {
	for i := 0; i < len(s); i++ {
		if c := s[i]; c == ',' || c == '"' || c == '\n' {
			q := strconv.Quote(s)
			return q
		}
	}
	return s
}

// RegisterCounters self-exports the recorder's state as
// /telemetry{locality#0/total}/flight/* counters on reg and adds them
// to the active set (critical-tier by DefaultTiers, so a budget squeeze
// never hides whether the recorder fired). Already-registered names are
// left in place.
func (fr *FlightRecorder) RegisterCounters(reg *core.Registry) {
	register := func(counter, help, unit string, sample func() int64) {
		n := core.Name{Object: "telemetry", Counter: counter}.
			WithInstances(core.LocalityInstance(0, "total", -1)...)
		c := core.NewFuncCounter(n, core.Info{
			TypeName: "/telemetry/" + counter,
			HelpText: help,
			Unit:     unit,
			Version:  "1.0",
		}, 0, sample, nil)
		if err := reg.Register(c); err != nil {
			return
		}
		_, _ = reg.AddActive(n.String())
	}
	register("flight/triggers", "flight-recorder triggers accepted (armed or coalesced into a burst)",
		core.UnitEvents, fr.triggers.Load)
	register("flight/suppressed", "flight-recorder triggers suppressed by cooldown hysteresis",
		core.UnitEvents, fr.suppressed.Load)
	register("flight/frames", "flight-recorder frames recorded, cumulative",
		core.UnitEvents, fr.recorded.Load)
	register("flight/bursting", "1 while a burst window is open",
		core.UnitNone, func() int64 {
			if fr.Bursting() {
				return 1
			}
			return 0
		})
}
