package inncabs

import (
	"math"
	"math/cmplx"
	"testing"
)

// naiveDFT is the O(n^2) definition, the ground truth for fftSeq.
func naiveDFT(a []complex128) []complex128 {
	n := len(a)
	out := make([]complex128, n)
	for k := 0; k < n; k++ {
		for j := 0; j < n; j++ {
			out[k] += a[j] * cmplx.Rect(1, -2*math.Pi*float64(k*j)/float64(n))
		}
	}
	return out
}

func TestFFTSeqAgainstNaiveDFT(t *testing.T) {
	for _, n := range []int{1, 2, 4, 16, 64} {
		a := fftInput(n)
		want := naiveDFT(a)
		fftSeq(a)
		for k := range a {
			if cmplx.Abs(a[k]-want[k]) > 1e-6*float64(n) {
				t.Fatalf("n=%d bin %d: %v != %v", n, k, a[k], want[k])
			}
		}
	}
}

func TestFFTRecursiveMatchesIterative(t *testing.T) {
	rt := hpxTestRuntime(t, 2)
	for _, n := range []int{128, 1024} {
		par := fftInput(n)
		seq := fftInput(n)
		fftTask(rt, par, 32)
		fftSeq(seq)
		for k := range par {
			if cmplx.Abs(par[k]-seq[k]) > 1e-6*float64(n) {
				t.Fatalf("n=%d bin %d: recursive %v != iterative %v", n, k, par[k], seq[k])
			}
		}
	}
}

func TestFFTParseval(t *testing.T) {
	// Parseval: sum |X_k|^2 = n * sum |x_j|^2 for the unnormalised DFT.
	n := 512
	x := fftInput(n)
	var inEnergy float64
	for _, v := range x {
		inEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	fftSeq(x)
	var outEnergy float64
	for _, v := range x {
		outEnergy += real(v)*real(v) + imag(v)*imag(v)
	}
	if math.Abs(outEnergy-float64(n)*inEnergy)/outEnergy > 1e-9 {
		t.Fatalf("Parseval violated: %v vs %v", outEnergy, float64(n)*inEnergy)
	}
}

func TestFFTImpulse(t *testing.T) {
	// The DFT of a unit impulse is flat ones.
	a := make([]complex128, 64)
	a[0] = 1
	fftSeq(a)
	for k, v := range a {
		if cmplx.Abs(v-1) > 1e-9 {
			t.Fatalf("impulse bin %d = %v", k, v)
		}
	}
}

func TestFFTChecksumDetectsCorruption(t *testing.T) {
	a := fftInput(1024)
	fftSeq(a)
	good := fftChecksum(a)
	a[100] += complex(50, 0)
	if fftChecksum(a) == good {
		t.Fatal("checksum blind to a corrupted bin")
	}
}
