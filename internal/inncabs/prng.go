package inncabs

import "repro/internal/sim"

// splitmix64 is the deterministic PRNG used for all benchmark inputs, so
// every run of a given size computes the same problem and checksum.
type splitmix64 struct{ state uint64 }

func newPRNG(seed uint64) *splitmix64 { return &splitmix64{state: seed} }

func (s *splitmix64) next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// intn returns a value in [0, n).
func (s *splitmix64) intn(n int) int {
	return int(s.next() % uint64(n))
}

// float64n returns a value in [0, 1).
func (s *splitmix64) float64n() float64 {
	return float64(s.next()>>11) / (1 << 53)
}

// hash64 mixes a single value (stateless splitmix step), used by UTS to
// derive child counts from node ids.
func hash64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// ---------------------------------------------------------------------------
// Graph-building helpers shared by the TaskGraph generators.

// fanoutGraph is the loop-like skeleton: one root spawning count leaves
// of workNs each, with off-core traffic at the given intensity.
func fanoutGraph(label string, count int, workNs int64, intensity float64) *sim.Graph {
	root := &sim.Node{}
	bytes := taskBytes(intensity, workNs)
	root.Children = make([]*sim.Node, count)
	for i := range root.Children {
		root.Children[i] = sim.Leaf(workNs, bytes)
	}
	return &sim.Graph{Label: label, Root: root}
}

// binaryTreeGraph is the recursive-balanced skeleton: a binary recursion
// of the given depth. Leaves carry leafNs of work; interior nodes carry
// divide work before the spawn and merge work after the join, both
// proportional to their subtree's leaf count times perLeafMergeNs.
func binaryTreeGraph(label string, depth int, leafNs, perLeafMergeNs int64, intensity float64) *sim.Graph {
	var build func(d int) *sim.Node
	build = func(d int) *sim.Node {
		if d == 0 {
			return sim.Leaf(leafNs, taskBytes(intensity, leafNs))
		}
		leaves := int64(1) << uint(d)
		merge := leaves * perLeafMergeNs
		n := &sim.Node{
			PostNs:    merge,
			PostBytes: taskBytes(intensity, merge),
			Children:  []*sim.Node{build(d - 1), build(d - 1)},
		}
		return n
	}
	return &sim.Graph{Label: label, Root: build(depth)}
}

// unbalancedTreeGraph is the recursive-unbalanced skeleton: child counts
// drawn per node from a geometric-like distribution seeded
// deterministically, capped to maxNodes total.
func unbalancedTreeGraph(label string, seed uint64, maxNodes int, maxChildren, depth int, workNs int64, intensity float64) *sim.Graph {
	prng := newPRNG(seed)
	bytes := taskBytes(intensity, workNs)
	budget := maxNodes - 1
	var build func(d int, atRoot bool) *sim.Node
	build = func(d int, atRoot bool) *sim.Node {
		n := sim.Leaf(workNs, bytes)
		if d == 0 {
			return n
		}
		kids := prng.intn(maxChildren + 1)
		if atRoot && kids < 2 {
			kids = 2 // the search always branches at the first level
		}
		for i := 0; i < kids && budget > 0; i++ {
			budget--
			n.Children = append(n.Children, build(d-1, false))
		}
		return n
	}
	return &sim.Graph{Label: label, Root: build(depth, true)}
}
