package inncabs

import (
	"testing"

	"repro/internal/taskrt"
)

// TestAllPoliciesProduceIdenticalResults runs the whole suite under
// every launch policy (the paper's Table IV policy comparison): results
// must not depend on how tasks are launched.
func TestAllPoliciesProduceIdenticalResults(t *testing.T) {
	rt := taskrt.New(taskrt.WithWorkers(2))
	t.Cleanup(rt.Shutdown)
	for _, policy := range []taskrt.Policy{taskrt.Async, taskrt.Sync, taskrt.Fork, taskrt.Deferred, taskrt.Optional} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			hrt := &HPXRuntime{RT: rt, Policy: policy}
			for _, b := range All() {
				if got, want := b.Run(hrt, Test), b.RefChecksum(Test); got != want {
					t.Fatalf("%s under %v: %d want %d", b.Name, policy, got, want)
				}
			}
		})
	}
}
