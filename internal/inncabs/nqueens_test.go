package inncabs

import "testing"

func TestQueensSeqKnownCounts(t *testing.T) {
	// Known solution counts for the n-queens problem.
	want := map[int]int64{1: 1, 2: 0, 3: 0, 4: 2, 5: 10, 6: 4, 7: 40, 8: 92, 9: 352, 10: 724}
	for n, count := range want {
		if got := queensSeq(n, make([]int8, n), 0); got != count {
			t.Errorf("queensSeq(%d) = %d want %d", n, got, count)
		}
	}
}

func TestQueensOK(t *testing.T) {
	pos := []int8{1, 3, 0} // queens at (0,1), (1,3), (2,0)
	cases := []struct {
		row, col int
		want     bool
	}{
		{3, 1, false}, // same column as row 0
		{3, 0, false}, // same column as row 2
		{3, 2, false}, // diagonal from (1,3)... and adjacent diagonal of (2,0)? check: (2,0)->(3,1) diag; (3,2): from (1,3): |3-1|=2,|2-3|=1 no; from (2,0): |3-2|=1, |2-0|=2 no; from (0,1): |3-0|=3, |2-1|=1 no -> true actually
	}
	_ = cases
	if queensOK(pos, 3, 1) {
		t.Error("column conflict with row 0 not detected")
	}
	if queensOK(pos, 3, 0) {
		t.Error("column conflict with row 2 not detected")
	}
	if queensOK(pos, 3, 4) {
		t.Error("diagonal conflict with (1,3) not detected")
	}
	if !queensOK(pos, 3, 2) {
		t.Error("legal placement rejected")
	}
}

func TestQueensTaskMatchesSeq(t *testing.T) {
	rt := hpxTestRuntime(t, 2)
	for _, depth := range []int{0, 1, 2, 4} {
		if got := queensTask(rt, 8, make([]int8, 8), 0, depth); got != 92 {
			t.Errorf("parallelDepth=%d: count = %d want 92", depth, got)
		}
	}
}

func TestNQueensRefTable(t *testing.T) {
	for _, s := range []Size{Test, Small, Medium, Paper} {
		if nqueensRef(s) == 0 {
			t.Errorf("no reference count for size %v (n=%d)", s, nqueensSize(s).n)
		}
	}
}
