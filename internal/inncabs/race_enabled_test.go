//go:build race

package inncabs

const raceEnabled = true
