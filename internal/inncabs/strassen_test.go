package inncabs

import (
	"math"
	"testing"
)

func TestMatMulNaiveIdentity(t *testing.T) {
	n := 8
	a, _ := strassenInput(n)
	id := newMatrix(n)
	for i := 0; i < n; i++ {
		id.set(i, i, 1)
	}
	c := matMulNaive(a, id)
	for i := range c.data {
		if c.data[i] != a.data[i] {
			t.Fatalf("A*I != A at %d", i)
		}
	}
	c = matMulNaive(id, a)
	for i := range c.data {
		if c.data[i] != a.data[i] {
			t.Fatalf("I*A != A at %d", i)
		}
	}
}

func TestStrassenMatchesNaive(t *testing.T) {
	rt := hpxTestRuntime(t, 2)
	for _, n := range []int{16, 32, 64} {
		a, b := strassenInput(n)
		want := matMulNaive(a, b)
		got := strassenMul(rt, a, b, 8)
		var maxErr float64
		for i := range want.data {
			if e := math.Abs(got.data[i] - want.data[i]); e > maxErr {
				maxErr = e
			}
		}
		if maxErr > 1e-9*float64(n) {
			t.Fatalf("n=%d: max elementwise error %g", n, maxErr)
		}
	}
}

func TestQuadrantRoundTrip(t *testing.T) {
	a, _ := strassenInput(8)
	out := newMatrix(8)
	for qi := 0; qi < 2; qi++ {
		for qj := 0; qj < 2; qj++ {
			out.setQuadrant(qi, qj, a.quadrant(qi, qj))
		}
	}
	for i := range a.data {
		if out.data[i] != a.data[i] {
			t.Fatalf("quadrant round-trip differs at %d", i)
		}
	}
}

func TestMatAddSub(t *testing.T) {
	a, b := strassenInput(4)
	s := matAdd(a, b)
	d := matSub(s, b)
	for i := range a.data {
		if math.Abs(d.data[i]-a.data[i]) > 1e-12 {
			t.Fatalf("(a+b)-b != a at %d", i)
		}
	}
}

func TestStrassenAtAccessors(t *testing.T) {
	m := newMatrix(3)
	m.set(1, 2, 7.5)
	if m.at(1, 2) != 7.5 || m.at(0, 0) != 0 {
		t.Fatal("at/set broken")
	}
}

func TestStrassenGraphSevenAry(t *testing.T) {
	g := strassenGraph(Test) // 2 levels: 1 + 7 + 49 nodes
	if got := g.Stats().Tasks; got != 57 {
		t.Fatalf("graph tasks = %d want 57", got)
	}
}
