package inncabs

import (
	"sync/atomic"

	"repro/internal/sim"
)

// Floorplan: branch-and-bound placement of rectangular cells onto a
// grid, minimising the bounding-box semi-perimeter. Each branch places
// the next cell in one of its shapes at one of the candidate anchors and
// spawns a task per alternative; a shared atomic best bound prunes.
// Recursive unbalanced with atomic pruning, very fine grain (Table V:
// 4.60 µs).
//
// The paper notes a reproduction subtlety: the std::async global queue
// explores in an order that finds good bounds earlier, so a fair
// comparison fixes the amount of exploration. Our deterministic
// reproduction explores the full pruned space on every runtime, so the
// result is order independent.

type floorplanParams struct {
	gridW, gridH  int
	cells         int
	parallelDepth int
}

func floorplanSize(s Size) floorplanParams {
	switch s {
	case Test:
		return floorplanParams{gridW: 12, gridH: 12, cells: 5, parallelDepth: 2}
	case Small:
		return floorplanParams{gridW: 16, gridH: 16, cells: 6, parallelDepth: 2}
	case Medium:
		return floorplanParams{gridW: 20, gridH: 20, cells: 7, parallelDepth: 3}
	default: // Paper: input.15 (15 cells); scaled to 8
		return floorplanParams{gridW: 24, gridH: 24, cells: 8, parallelDepth: 3}
	}
}

// cellShape is one width x height alternative for a cell.
type cellShape struct{ w, h int }

// floorplanCells derives each cell's shape alternatives deterministically.
func floorplanCells(p floorplanParams) [][]cellShape {
	prng := newPRNG(0xF100)
	cells := make([][]cellShape, p.cells)
	for i := range cells {
		// Areas are products of two grid-feasible factors, so every
		// cell has at least one legal shape.
		area := (prng.intn(3) + 2) * (prng.intn(4) + 2)
		var shapes []cellShape
		for w := 1; w <= area; w++ {
			if area%w == 0 {
				h := area / w
				if w <= p.gridW && h <= p.gridH {
					shapes = append(shapes, cellShape{w, h})
				}
			}
		}
		cells[i] = shapes
	}
	return cells
}

// floorplanState is one partial placement: an occupancy bitmap per row
// plus the bounding box so far.
type floorplanState struct {
	p    floorplanParams
	rows []uint64 // one bit per column, gridW <= 64
	maxX int
	maxY int
}

func newFloorplanState(p floorplanParams) *floorplanState {
	return &floorplanState{p: p, rows: make([]uint64, p.gridH)}
}

func (s *floorplanState) clone() *floorplanState {
	c := &floorplanState{p: s.p, rows: make([]uint64, len(s.rows)), maxX: s.maxX, maxY: s.maxY}
	copy(c.rows, s.rows)
	return c
}

// fits reports whether shape fits with its top-left corner at (x, y).
func (s *floorplanState) fits(x, y int, sh cellShape) bool {
	if x+sh.w > s.p.gridW || y+sh.h > s.p.gridH {
		return false
	}
	mask := ((uint64(1) << sh.w) - 1) << x
	for r := y; r < y+sh.h; r++ {
		if s.rows[r]&mask != 0 {
			return false
		}
	}
	return true
}

// place marks the shape's area occupied and grows the bounding box.
func (s *floorplanState) place(x, y int, sh cellShape) {
	mask := ((uint64(1) << sh.w) - 1) << x
	for r := y; r < y+sh.h; r++ {
		s.rows[r] |= mask
	}
	if x+sh.w > s.maxX {
		s.maxX = x + sh.w
	}
	if y+sh.h > s.maxY {
		s.maxY = y + sh.h
	}
}

// anchors enumerates candidate positions: the origin plus positions
// adjacent to the current bounding box edges (the classic floorplan
// anchor set, keeping the branching factor bounded).
func (s *floorplanState) anchors() [][2]int {
	if s.maxX == 0 {
		return [][2]int{{0, 0}}
	}
	var out [][2]int
	for y := 0; y <= s.maxY && y < s.p.gridH; y++ {
		out = append(out, [2]int{s.maxX, y})
	}
	for x := 0; x <= s.maxX && x < s.p.gridW; x++ {
		out = append(out, [2]int{x, s.maxY})
	}
	return out
}

// bound is the semi-perimeter of the bounding box.
func (s *floorplanState) bound() int { return s.maxX + s.maxY }

// floorplanSearch explores placements of cells[idx:], pruning on best.
func floorplanSearch(rt Runtime, cells [][]cellShape, s *floorplanState, idx int, best *atomic.Int64, parallelDepth int) {
	if int64(s.bound()) >= best.Load() {
		return // prune: the box only grows
	}
	if idx == len(cells) {
		for {
			cur := best.Load()
			b := int64(s.bound())
			if b >= cur || best.CompareAndSwap(cur, b) {
				return
			}
		}
	}
	var futures []Future
	for _, sh := range cells[idx] {
		for _, a := range s.anchors() {
			if !s.fits(a[0], a[1], sh) {
				continue
			}
			next := s.clone()
			next.place(a[0], a[1], sh)
			if idx < parallelDepth {
				futures = append(futures, rt.Async(func() any {
					floorplanSearch(rt, cells, next, idx+1, best, parallelDepth)
					return nil
				}))
			} else {
				floorplanSearch(rt, cells, next, idx+1, best, parallelDepth)
			}
		}
	}
	for _, f := range futures {
		f.Get()
	}
}

func floorplanRunOn(rt Runtime, size Size) int64 {
	p := floorplanSize(size)
	cells := floorplanCells(p)
	var best atomic.Int64
	best.Store(int64(p.gridW + p.gridH + 1))
	floorplanSearch(rt, cells, newFloorplanState(p), 0, &best, p.parallelDepth)
	return best.Load()
}

func floorplanRun(rt Runtime, size Size) int64 { return floorplanRunOn(rt, size) }

func floorplanRef(size Size) int64 { return floorplanRunOn(sequentialRuntime{}, size) }

// floorplanGraph: irregular pruned tree at the 4.6 µs grain.
func floorplanGraph(size Size) *sim.Graph {
	maxNodes := map[Size]int{Test: 500, Small: 4000, Medium: 30000, Paper: 169708}[size]
	return unbalancedTreeGraph("floorplan", 0xF100, maxNodes, 9, 8, grainNs(4.60), floorplanIntensity)
}

// floorplanIntensity: bitmap clones dominate: ~1.5 GB/s.
const floorplanIntensity = 1.5e9

var floorplanBenchmark = register(&Benchmark{
	Name:            "floorplan",
	Class:           "Recursive Unbalanced",
	Sync:            "atomic pruning",
	Granularity:     "very fine",
	PaperTaskUs:     4.60,
	PaperStdScaling: "to 10",
	PaperHPXScaling: "to 10",
	MemIntensity:    floorplanIntensity,
	Run:             floorplanRun,
	RefChecksum:     floorplanRef,
	TaskGraph:       floorplanGraph,
})
