package inncabs

// One testing.B benchmark per suite member on the real work-stealing
// runtime at Test size: end-to-end spawn/execute/join cost of each
// benchmark's actual task structure (not the simulator).

import (
	"runtime"
	"testing"

	"repro/internal/taskrt"
)

func benchReal(b *testing.B, name string) {
	bm, err := ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	rt := taskrt.New(taskrt.WithWorkers(runtime.GOMAXPROCS(0)))
	defer rt.Shutdown()
	hrt := NewHPX(rt)
	want := bm.RefChecksum(Test)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := bm.Run(hrt, Test); got != want {
			b.Fatalf("checksum %d want %d", got, want)
		}
	}
}

func BenchmarkRealAlignment(b *testing.B) { benchReal(b, "alignment") }
func BenchmarkRealHealth(b *testing.B)    { benchReal(b, "health") }
func BenchmarkRealSparseLU(b *testing.B)  { benchReal(b, "sparselu") }
func BenchmarkRealFFT(b *testing.B)       { benchReal(b, "fft") }
func BenchmarkRealFib(b *testing.B)       { benchReal(b, "fib") }
func BenchmarkRealPyramids(b *testing.B)  { benchReal(b, "pyramids") }
func BenchmarkRealSort(b *testing.B)      { benchReal(b, "sort") }
func BenchmarkRealStrassen(b *testing.B)  { benchReal(b, "strassen") }
func BenchmarkRealFloorplan(b *testing.B) { benchReal(b, "floorplan") }
func BenchmarkRealNQueens(b *testing.B)   { benchReal(b, "nqueens") }
func BenchmarkRealQAP(b *testing.B)       { benchReal(b, "qap") }
func BenchmarkRealUTS(b *testing.B)       { benchReal(b, "uts") }
func BenchmarkRealIntersim(b *testing.B)  { benchReal(b, "intersim") }
func BenchmarkRealRound(b *testing.B)     { benchReal(b, "round") }
