package inncabs

import (
	"context"
	"sync"

	"repro/internal/sim"
)

// SparseLU: LU factorization of a sparse blocked matrix (the BOTS
// kernel the original suite ports). The matrix is NB×NB blocks of
// BS×BS doubles with a deterministic sparsity pattern; each elimination
// step k runs lu0 on the diagonal block, then forward/backward
// substitutions on row k and column k as one task each, then the bmod
// updates of the trailing submatrix as one task per block, with a join
// per phase. Loop-like, no synchronization inside tasks, coarse grain
// (Table V: 988 µs); Table I counts 11099 tasks.

type sparseluParams struct {
	nb int // blocks per side
	bs int // block dimension
}

func sparseluSize(s Size) sparseluParams {
	switch s {
	case Test:
		return sparseluParams{nb: 6, bs: 8}
	case Small:
		return sparseluParams{nb: 10, bs: 16}
	case Medium:
		return sparseluParams{nb: 20, bs: 24}
	case Huge:
		// Long factorization for cancellation tests.
		return sparseluParams{nb: 48, bs: 64}
	default: // Paper: 50x50 blocks of 100x100; scaled to 30x30 of 32
		return sparseluParams{nb: 30, bs: 32}
	}
}

// blockMatrix is an NB×NB matrix of optional BS×BS blocks; nil means a
// structurally zero block.
type blockMatrix struct {
	nb, bs int
	blocks [][]float64
}

func (m *blockMatrix) at(i, j int) []float64     { return m.blocks[i*m.nb+j] }
func (m *blockMatrix) set(i, j int, b []float64) { m.blocks[i*m.nb+j] = b }

// sparseluInput builds the BOTS-style pattern: the diagonal, first row
// and first column are populated, plus a pseudo-random ~35% of the rest.
func sparseluInput(p sparseluParams) *blockMatrix {
	m := &blockMatrix{nb: p.nb, bs: p.bs, blocks: make([][]float64, p.nb*p.nb)}
	prng := newPRNG(0x51CE)
	for i := 0; i < p.nb; i++ {
		for j := 0; j < p.nb; j++ {
			use := i == j || i == 0 || j == 0 || prng.float64n() < 0.35
			if !use {
				continue
			}
			b := make([]float64, p.bs*p.bs)
			for x := 0; x < p.bs; x++ {
				for y := 0; y < p.bs; y++ {
					b[x*p.bs+y] = prng.float64n()
					if i == j && x == y {
						b[x*p.bs+y] += float64(2 * p.bs) // diagonal dominance
					}
				}
			}
			m.set(i, j, b)
		}
	}
	return m
}

// lu0 factorises a diagonal block in place (Doolittle, no pivoting; the
// input is diagonally dominant).
func lu0(a []float64, bs int) {
	for k := 0; k < bs; k++ {
		for i := k + 1; i < bs; i++ {
			a[i*bs+k] /= a[k*bs+k]
			aik := a[i*bs+k]
			for j := k + 1; j < bs; j++ {
				a[i*bs+j] -= aik * a[k*bs+j]
			}
		}
	}
}

// fwd applies L(diag)^-1 to a row block: solves L*x = b in place.
func fwd(diag, b []float64, bs int) {
	for k := 0; k < bs; k++ {
		for i := k + 1; i < bs; i++ {
			lik := diag[i*bs+k]
			for j := 0; j < bs; j++ {
				b[i*bs+j] -= lik * b[k*bs+j]
			}
		}
	}
}

// bdiv applies U(diag)^-1 from the right to a column block: solves
// x*U = b in place.
func bdiv(diag, b []float64, bs int) {
	for k := 0; k < bs; k++ {
		dkk := diag[k*bs+k]
		for i := 0; i < bs; i++ {
			b[i*bs+k] /= dkk
		}
		for j := k + 1; j < bs; j++ {
			dkj := diag[k*bs+j]
			for i := 0; i < bs; i++ {
				b[i*bs+j] -= b[i*bs+k] * dkj
			}
		}
	}
}

// bmod subtracts row*col from the trailing block, allocating it if it
// was structurally zero (fill-in).
func bmod(row, col, inner []float64, bs int) []float64 {
	if inner == nil {
		inner = make([]float64, bs*bs)
	}
	for i := 0; i < bs; i++ {
		for k := 0; k < bs; k++ {
			cik := col[i*bs+k]
			if cik == 0 {
				continue
			}
			for j := 0; j < bs; j++ {
				inner[i*bs+j] -= cik * row[k*bs+j]
			}
		}
	}
	return inner
}

// sparseluFactor runs the blocked factorization, spawning one task per
// block operation within each dependence level.
func sparseluFactor(rt Runtime, m *blockMatrix) {
	bs := m.bs
	// Each dependence level's fan-out (the substitution phase, then the
	// trailing update) is one batch transaction; Table V's 988 µs grain
	// rides along as the inline hint.
	const sparseluGrainNs = 988 * 1000
	for k := 0; k < m.nb; k++ {
		lu0(m.at(k, k), bs)
		diag := m.at(k, k)
		var phase []func() any
		for j := k + 1; j < m.nb; j++ {
			if b := m.at(k, j); b != nil {
				b := b
				phase = append(phase, func() any { fwd(diag, b, bs); return nil })
			}
		}
		for i := k + 1; i < m.nb; i++ {
			if b := m.at(i, k); b != nil {
				b := b
				phase = append(phase, func() any { bdiv(diag, b, bs); return nil })
			}
		}
		for _, f := range asyncAll(rt, sparseluGrainNs, phase) {
			f.Get()
		}
		var mods []func() any
		for i := k + 1; i < m.nb; i++ {
			col := m.at(i, k)
			if col == nil {
				continue
			}
			for j := k + 1; j < m.nb; j++ {
				row := m.at(k, j)
				if row == nil {
					continue
				}
				i, j := i, j
				mods = append(mods, func() any {
					m.set(i, j, bmod(row, col, m.at(i, j), bs))
					return nil
				})
			}
		}
		for _, f := range asyncAll(rt, sparseluGrainNs, mods) {
			f.Get()
		}
	}
}

// sparseluChecksum sums all entries coarsely rounded (the parallel and
// sequential factorizations perform identical arithmetic, but rounding
// keeps the checksum portable).
func sparseluChecksum(m *blockMatrix) int64 {
	var s float64
	for _, b := range m.blocks {
		for _, v := range b {
			s += v
		}
	}
	return int64(s)
}

func sparseluRun(rt Runtime, size Size) int64 {
	m := sparseluInput(sparseluSize(size))
	sparseluFactor(rt, m)
	return sparseluChecksum(m)
}

// sparseluFactorCtx is the cancellable factorization: the context is
// checked at every elimination step and between the substitution and
// update phases; block tasks join the cancellation tree and dropped
// tasks surface as errors at the phase joins.
func sparseluFactorCtx(ctx context.Context, rt Runtime, m *blockMatrix) error {
	bs := m.bs
	join := func(phase []Future) error {
		var firstErr error
		for _, f := range phase {
			v, err := getErr(f)
			if err == nil {
				if e, ok := v.(error); ok {
					err = e
				}
			}
			if err != nil && firstErr == nil {
				firstErr = err
			}
		}
		return firstErr
	}
	for k := 0; k < m.nb; k++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		lu0(m.at(k, k), bs)
		diag := m.at(k, k)
		var phase []Future
		for j := k + 1; j < m.nb; j++ {
			if b := m.at(k, j); b != nil {
				b := b
				phase = append(phase, asyncCtx(ctx, rt, func() any { fwd(diag, b, bs); return nil }))
			}
		}
		for i := k + 1; i < m.nb; i++ {
			if b := m.at(i, k); b != nil {
				b := b
				phase = append(phase, asyncCtx(ctx, rt, func() any { bdiv(diag, b, bs); return nil }))
			}
		}
		if err := join(phase); err != nil {
			return err
		}
		var mods []Future
		for i := k + 1; i < m.nb; i++ {
			col := m.at(i, k)
			if col == nil {
				continue
			}
			for j := k + 1; j < m.nb; j++ {
				row := m.at(k, j)
				if row == nil {
					continue
				}
				i, j := i, j
				mods = append(mods, asyncCtx(ctx, rt, func() any {
					m.set(i, j, bmod(row, col, m.at(i, j), bs))
					return nil
				}))
			}
		}
		if err := join(mods); err != nil {
			return err
		}
	}
	return nil
}

func sparseluRunCtx(ctx context.Context, rt Runtime, size Size) (int64, error) {
	m := sparseluInput(sparseluSize(size))
	if err := sparseluFactorCtx(ctx, rt, m); err != nil {
		return 0, err
	}
	return sparseluChecksum(m), nil
}

// sequentialRuntime runs every Async inline; used for reference results.
type sequentialRuntime struct{}

type readyFuture struct{ v any }

func (f readyFuture) Get() any { return f.v }

// Async implements Runtime by executing fn immediately.
func (sequentialRuntime) Async(fn func() any) Future { return readyFuture{fn()} }

// NewMutex implements Runtime.
func (sequentialRuntime) NewMutex() sync.Locker { return &sync.Mutex{} }

// Name implements Runtime.
func (sequentialRuntime) Name() string { return "sequential" }

func sparseluRef(size Size) int64 {
	m := sparseluInput(sparseluSize(size))
	sparseluFactor(sequentialRuntime{}, m)
	return sparseluChecksum(m)
}

// sparseluGraph: nb elimination steps; step k fans out ~2(nb-k) substitution
// tasks then ~0.35(nb-k)^2 update tasks, each at the 988 µs grain.
func sparseluGraph(size Size) *sim.Graph {
	p := sparseluSize(size)
	nb := p.nb
	if size == Paper {
		nb = 40 // approach the paper's 11k tasks
	}
	work := grainNs(988)
	bytes := taskBytes(sparseluIntensity, work)
	root := &sim.Node{Serial: true}
	for k := 0; k < nb-1; k++ {
		r := nb - 1 - k
		subst := &sim.Node{PreNs: work} // lu0 runs serially before the fan-out
		for t := 0; t < 2*r; t++ {
			subst.Children = append(subst.Children, sim.Leaf(work/2, bytes/2))
		}
		updates := &sim.Node{}
		n := int(float64(r*r)*0.45) + 1
		for t := 0; t < n; t++ {
			updates.Children = append(updates.Children, sim.Leaf(work, bytes))
		}
		// Step k: lu0 + substitutions join, then the trailing updates.
		step := &sim.Node{Serial: true, Children: []*sim.Node{subst, updates}}
		root.Children = append(root.Children, step)
	}
	return &sim.Graph{Label: "sparselu", Root: root}
}

// sparseluIntensity: blocked dgemm-like updates: ~1.5 GB/s per core.
const sparseluIntensity = 1.5e9

var sparseluBenchmark = register(&Benchmark{
	Name:            "sparselu",
	Class:           "Loop Like",
	Sync:            "none",
	Granularity:     "coarse",
	PaperTaskUs:     988,
	PaperStdScaling: "to 20",
	PaperHPXScaling: "to 20",
	MemIntensity:    sparseluIntensity,
	Run:             sparseluRun,
	RunCtx:          sparseluRunCtx,
	RefChecksum:     sparseluRef,
	TaskGraph:       sparseluGraph,
})
